// Package snowbma is a full reproduction of "Bitstream Modification
// Attack on SNOW 3G" (Moraitis & Dubrova, DATE 2020) as a Go library.
//
// It contains every system the paper's experiments rest on — the SNOW 3G
// cipher, a gate-level RTL generator, a k-LUT technology mapper, the
// Xilinx 7-series bitstream format, a device simulator that configures
// itself from raw bitstream bytes — plus the paper's contribution: the
// FINDLUT search (Algorithm 1), the key-independent bitstream
// exploration technique, end-to-end key extraction, and the trivial-cut
// countermeasure with its complexity analysis.
//
// This file is the facade a downstream user works with:
//
//	victim, _ := snowbma.BuildVictim(snowbma.VictimConfig{Key: key})
//	report, _ := snowbma.Attack(ctx, victim, iv, snowbma.WithLogf(log.Printf))
//	fmt.Printf("recovered key %08x\n", report.Key)
//
// The context-first entrypoints (Attack, CensusAttack, FindLUTs,
// RunCampaignContext) take functional options (WithLanes,
// WithTelemetry, WithLogf, WithParallel) and honor cancellation at the
// attack's phase and sweep-chunk checkpoints. The older fixed-signature
// functions (RunAttack, RunAttackLanes, RunAttackTraced, ...) remain as
// deprecated wrappers over them.
//
// The sub-packages under internal/ carry the implementation; their doc
// comments map each module to the paper sections it reproduces (see
// DESIGN.md for the inventory).
package snowbma

import (
	"context"
	"fmt"
	"io"

	"snowbma/internal/boolfn"
	"snowbma/internal/campaign"
	"snowbma/internal/core"
	"snowbma/internal/device"
	"snowbma/internal/hdl"
	"snowbma/internal/obs"
	"snowbma/internal/snow3g"
	"snowbma/internal/victim"
)

// Key is a 128-bit SNOW 3G key as four 32-bit words k0..k3 (the paper's
// order: γ loads s4 = k0, ..., s7 = k3).
type Key = snow3g.Key

// IV is a 128-bit initialization vector as four 32-bit words iv0..iv3.
type IV = snow3g.IV

// PaperKey is the key recovered in the paper's Table V — the ETSI
// SNOW 3G test-set key.
var PaperKey = Key{0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48}

// PaperIV is the IV implied by Table V through the γ(K, IV) structure.
var PaperIV = IV{0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F}

// Keystream runs the reference software cipher (the paper's "software
// model") and returns n keystream words.
func Keystream(key Key, iv IV, n int) []uint32 {
	c := snow3g.New(snow3g.Fault{})
	c.Init(key, iv)
	return c.KeystreamWords(n)
}

// FaultyKeystream runs the software model with the paper's fault
// configuration (used to predict Tables III and IV).
func FaultyKeystream(key Key, iv IV, fsmStuckInit, fsmStuckKeystream, lfsrZero bool, n int) []uint32 {
	c := snow3g.New(snow3g.Fault{
		FSMStuckInit:      fsmStuckInit,
		FSMStuckKeystream: fsmStuckKeystream,
		LFSRZeroLoad:      lfsrZero,
	})
	c.Init(key, iv)
	return c.KeystreamWords(n)
}

// VictimConfig describes the FPGA implementation to synthesize.
type VictimConfig struct {
	// Key is baked into the bitstream (attack model assumption 2).
	Key Key
	// Protected applies the Section VII-A countermeasure during
	// technology mapping, with the paper's hand-picked five decoy words.
	Protected bool
	// AutoProtectBits, when nonzero, plans the countermeasure
	// automatically instead: decoy XORs are selected from the design
	// until the Lemma VII-A bound reaches this security level.
	AutoProtectBits int
	// Encrypt wraps the bitstream in the AES + HMAC envelope of Fig. 1
	// using the given keys (any non-nil value enables encryption).
	Encrypt *EncryptionKeys
	// PadFrames adds empty fabric frames (larger bitstream).
	PadFrames int
	// Seed drives the deterministic placement (0 picks a default).
	Seed int64
}

// EncryptionKeys are the bitstream protection keys: K_E lives in device
// eFuses, K_A is stored inside the encrypted image (Fig. 1).
type EncryptionKeys struct {
	KE [32]byte
	KA [32]byte
}

// Victim bundles the simulated device with its design metadata.
type Victim struct {
	Device *device.FPGA
	// Image is the programmed flash content.
	Image []byte
	// LUTs is the number of logical LUTs after mapping.
	LUTs int
	// Depth is the mapped LUT depth; CriticalPathNs the modelled
	// critical path (paper Section VII-A compares 6.313 vs 7.514 ns).
	Depth          int
	CriticalPathNs float64
	// CriticalEndpoint names the path endpoint (register or output).
	CriticalEndpoint string
}

// BuildVictim synthesizes the SNOW 3G design (RTL generation, technology
// mapping, placement, bitstream assembly) and programs a simulated FPGA
// with it, through the shared internal/victim pipeline (the same one the
// campaign engine and the job service use).
func BuildVictim(cfg VictimConfig) (*Victim, error) {
	vcfg := victim.Config{
		Key:             cfg.Key,
		Protected:       cfg.Protected,
		AutoProtectBits: cfg.AutoProtectBits,
		PadFrames:       cfg.PadFrames,
		Seed:            cfg.Seed,
	}
	if cfg.Encrypt != nil {
		vcfg.Encrypt = &victim.Keys{KE: cfg.Encrypt.KE, KA: cfg.Encrypt.KA}
	}
	v, err := victim.Build(vcfg)
	if err != nil {
		return nil, fmt.Errorf("snowbma: %w", err)
	}
	return &Victim{
		Device:           v.Device,
		Image:            v.Image,
		LUTs:             v.LUTs,
		Depth:            v.Depth,
		CriticalPathNs:   v.CriticalPathNs,
		CriticalEndpoint: v.CriticalEndpoint,
	}, nil
}

// Keystream drives the victim's cipher protocol with the given IV.
func (v *Victim) Keystream(iv IV, n int) []uint32 {
	return hdl.GenerateKeystream(v.Device, iv, n)
}

// Report is the attack outcome (re-exported from the core package).
type Report = core.Report

// BatchStats is the bitsliced candidate-sweep accounting of a run:
// fabric passes and lanes executed by the simulator, kept separate from
// Report.Loads (modeled hardware reconfigurations, one per candidate).
type BatchStats = core.BatchStats

// MaxLanes is the lane capacity of the bitsliced candidate sweep: how
// many virtual devices one simulator pass evaluates at most. Each
// 64-lane block costs one register-slot word, so passes are cheapest at
// multiples of 64.
const MaxLanes = device.MaxLanes

// DefaultLanes is the sweep width entrypoints use when WithLanes is not
// given: 128 lanes (two register-slot words), wide enough to cover the
// standard attack's ~100-member candidate families in a single fabric
// pass.
const DefaultLanes = core.DefaultLanes

// ErrLanes is returned (wrapped) for out-of-range candidate-sweep
// widths — by WithLanes-carrying entrypoints, the CLI and the campaign
// and service configs, all through the same validator.
var ErrLanes = core.ErrLanes

// ErrCancelled is returned (wrapped) when a context-first entrypoint is
// cancelled: the attack stops at its next checkpoint (between phases
// and candidate-sweep chunks), restores the victim's original
// bitstream, and reports no key.
var ErrCancelled = core.ErrCancelled

// ValidateLanes reports whether n is a legal candidate-sweep width
// (1..MaxLanes), wrapping ErrLanes when it is not.
func ValidateLanes(n int) error { return core.ValidateLanes(n) }

// Option configures a context-first entrypoint (Attack, CensusAttack,
// FindLUTs).
type Option func(*options)

type options struct {
	lanes    int
	tel      *Telemetry
	logf     func(string, ...any)
	parallel int
	noDedup  bool
}

func buildOptions(opts []Option) options {
	o := options{lanes: DefaultLanes}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithLanes sets the candidate-sweep width: how many modified bitstream
// variants one bitsliced simulator pass evaluates (1..MaxLanes; 1
// forces the scalar path, widths above 64 span multiple register-slot
// words). The width changes only wall-clock time —
// Report.Loads and HardwareEstimate model per-candidate hardware
// reconfigurations and are invariant under it. Out-of-range widths fail
// the entrypoint with an error wrapping ErrLanes.
func WithLanes(n int) Option { return func(o *options) { o.lanes = n } }

// WithTelemetry attaches an observability handle: every attack phase,
// scanner pass, sweep chunk and device event is recorded into tel's
// tracer and metrics registry.
func WithTelemetry(tel *Telemetry) Option { return func(o *options) { o.tel = tel } }

// WithLogf attaches a printf-style progress logger.
func WithLogf(logf func(string, ...any)) Option { return func(o *options) { o.logf = logf } }

// WithParallel bounds the FindLUTs and CensusCorpus scan worker pools
// (0 = all CPUs). Attack entrypoints ignore it.
func WithParallel(n int) Option { return func(o *options) { o.parallel = n } }

// WithDedup toggles the content-addressed frame memo of CensusCorpus
// (on by default): identical frame windows across — and within —
// designs are scanned once and served from the memo after. The census
// results are identical either way; only the work changes. Other
// entrypoints ignore it.
func WithDedup(on bool) Option { return func(o *options) { o.noDedup = !on } }

// Attack executes the complete bitstream modification attack against
// the victim: probe flash (decrypting via the side-channel oracle when
// needed), disable the CRC, FINDLUT + verification for the z_t and
// feedback paths, the key-independent exploration, fault injection and
// LFSR rewind. Cancelling ctx stops the attack at its next checkpoint
// — between phases and between candidate-sweep chunks — with an error
// wrapping ErrCancelled, after restoring the original bitstream.
func Attack(ctx context.Context, v *Victim, iv IV, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	atk, err := newAttack(ctx, v, iv, o)
	if err != nil {
		return nil, err
	}
	return atk.Run()
}

// newAttack assembles a configured core attack from facade options.
func newAttack(ctx context.Context, v *Victim, iv IV, o options) (*core.Attack, error) {
	atk, err := core.NewAttack(v.Device, iv, o.logf)
	if err != nil {
		return nil, err
	}
	if err := atk.SetLanes(o.lanes); err != nil {
		return nil, err
	}
	atk.SetTelemetry(o.tel)
	atk.SetContext(ctx)
	return atk, nil
}

// Telemetry is the unified observability handle of an attack run: a
// phase-span tracer, a metrics registry backing the report counters, and
// an optional structured logger. A nil *Telemetry disables everything at
// zero cost.
type Telemetry = obs.Telemetry

// NewTelemetry creates a telemetry handle with a fresh span tracer and
// metrics registry.
func NewTelemetry() *Telemetry { return obs.New() }

// WriteTrace streams the telemetry handle's span tree and a metrics
// snapshot to w as NDJSON (one JSON object per line; see internal/obs
// for the line schema and tools/tracestat for the analyzer). A nil
// handle writes only the schema meta line.
func WriteTrace(w io.Writer, tel *Telemetry) error {
	if tel == nil {
		return obs.WriteNDJSON(w, nil, nil)
	}
	return obs.WriteNDJSON(w, tel.Tracer, tel.Metrics)
}

// CensusAttack executes the catalogue-free variant: target LUT classes
// are discovered from the extracted-LUT census by their XOR structure
// and all fault tables are derived from the class functions — no
// Table II guessing. See core.RunCensusGuided. Cancellation behaves as
// in Attack.
func CensusAttack(ctx context.Context, v *Victim, iv IV, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	atk, err := newAttack(ctx, v, iv, o)
	if err != nil {
		return nil, err
	}
	return atk.RunCensusGuided()
}

// CampaignConfig parameterizes a randomized attack campaign: how many
// scenarios, the worker-pool width, the master seed, whether chaos
// fault-injection scenarios are mixed in, and an optional pinned
// candidate-sweep lane width.
type CampaignConfig = campaign.Config

// CampaignReport is the deterministic outcome of a campaign: one
// classified result per scenario plus the aggregate verdict tally.
// Identical (Seed, Runs, Chaos, Lanes) inputs marshal to byte-identical
// JSON regardless of the worker-pool width.
type CampaignReport = campaign.Report

// RunCampaign generates CampaignConfig.Runs randomized end-to-end
// attack scenarios from the master seed — fresh design placement, key,
// IV, lane width, optional countermeasure / bitstream encryption /
// injected fault per scenario — executes each over a bounded worker
// pool with a golden-model conformance pre-check, and aggregates the
// typed verdicts (key recovered / clean failure / invariant violation).
func RunCampaign(cfg CampaignConfig) (*CampaignReport, error) {
	return campaign.Run(cfg)
}

// RunCampaignContext is RunCampaign with cancellation: when ctx is
// cancelled, no new scenarios start, in-flight attacks stop at their
// next checkpoint, and the call returns an error wrapping ErrCancelled
// instead of a partial report.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig) (*CampaignReport, error) {
	return campaign.RunContext(ctx, cfg)
}

// CandidateCount is one row of the Table II / Table VI measurement.
type CandidateCount = core.CandidateCount

// ScanStats describes what the batch scan engine did during a search:
// functions batched, candidates compiled, anchor probes and hits, deep
// comparisons, worker-pool size and per-phase wall time.
type ScanStats = core.ScanStats

// CountCandidates runs FINDLUT on the victim's bitstream for every
// Table II candidate function and reports match counts.
func CountCandidates(v *Victim, iv IV) ([]CandidateCount, error) {
	rows, _, err := CountCandidatesStats(v, iv)
	return rows, err
}

// CountCandidatesStats is CountCandidates plus the scan-engine counters
// of the single batch pass that produced the table.
func CountCandidatesStats(v *Victim, iv IV) ([]CandidateCount, ScanStats, error) {
	atk, err := core.NewAttack(v.Device, iv, nil)
	if err != nil {
		return nil, ScanStats{}, err
	}
	rows := atk.CountCandidates()
	return rows, atk.Report().Scan, nil
}

// FindLUTs searches a raw bitstream for LUTs implementing the Boolean
// expression (paper notation over a1..a6, e.g. "(a1^a2^a3)a4a5!a6") or
// a raw INIT literal ("64'hFFF7F7FF00080800"), and returns the byte
// indexes of all candidates plus the scan-engine counters — the FINDLUT
// tool described in the paper's contribution list. The scan is one
// bounded bitstream pass; cancellation is honored at the pass boundary
// with an error wrapping ErrCancelled.
func FindLUTs(ctx context.Context, bits []byte, expr string, opts ...Option) ([]int, ScanStats, error) {
	o := buildOptions(opts)
	f, err := boolfn.ParseAuto(expr)
	if err != nil {
		return nil, ScanStats{}, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, ScanStats{}, fmt.Errorf("%w: %v", ErrCancelled, cerr)
	}
	s := core.NewScanner(core.FindOptions{Parallel: o.parallel})
	s.SetTelemetry(o.tel)
	s.AddFunction("f", f)
	res := s.Scan(bits)
	matches := res.Matches["f"]
	out := make([]int, len(matches))
	for i, m := range matches {
		out[i] = m.Index
	}
	return out, res.Stats, nil
}

// DualXORHits runs the Section VII-B search over [lo, hi) byte positions
// (hi ≤ 0 scans to the end): dual-output LUTs with a 2-input XOR in one
// half.
func DualXORHits(bits []byte, lo, hi int) []int {
	return core.FindDualXOR(bits, lo, hi)
}

// DualXORHitsStats is DualXORHits plus the scan-engine counters —
// notably how many probe positions the blank-fabric prefilter rejected
// before a 64-bit decode.
func DualXORHitsStats(bits []byte, lo, hi int) ([]int, ScanStats) {
	s := core.NewScanner(core.FindOptions{})
	s.AddDualXOR("w", lo, hi)
	res := s.Scan(bits)
	return res.DualHits["w"], res.Stats
}

// SearchEffortBits returns log2 of the exhaustive effort of locating m
// targets among m+r identically-shaped candidates (Section VII-C).
func SearchEffortBits(m, r int) float64 { return core.SearchEffort(m, r) }

// LemmaBoundBits returns the Lemma VII-A upper bound, as log2.
func LemmaBoundBits(m, r int) float64 { return core.LemmaBound(m, r) }

// MinDecoyRatio returns the smallest x with r = m·x decoys reaching the
// requested security level (the paper's x ≥ 16/e − 1 ≈ 4.9 for 2¹²⁸).
func MinDecoyRatio(m, securityBits int) int { return core.MinDecoyRatio(m, securityBits) }

// RecoverKey rewinds a 16-word faulty keystream (FSM output stuck at 0)
// to the initial LFSR state and extracts the key and IV.
func RecoverKey(z []uint32) (Key, IV, error) {
	k, iv, _, err := snow3g.RecoverFromKeystream(z)
	return k, iv, err
}

// UEA2Encrypt applies the 3GPP confidentiality function f8 (UEA2 /
// 128-EEA1, whose core is SNOW 3G — the deployment context the paper's
// introduction motivates) to data in place. Being a stream cipher, the
// same call decrypts.
func UEA2Encrypt(ck [16]byte, count, bearer, direction uint32, data []byte) {
	snow3g.F8(snow3g.ConfidentialityKey(ck), count, bearer, direction, data, len(data)*8)
}

// UIA2MAC computes the 3GPP integrity function f9 (UIA2 / 128-EIA1)
// 32-bit message authentication code.
func UIA2MAC(ik [16]byte, count, fresh, direction uint32, data []byte) uint32 {
	return snow3g.F9(snow3g.IntegrityKey(ik), count, fresh, direction, data, len(data)*8)
}

// CipherKeyToBytes converts a recovered word-form key into the 16-byte
// 3GPP CK/IK layout (first byte = most significant byte of k3).
func CipherKeyToBytes(k Key) [16]byte { return snow3g.KeyToBytes(k) }
