module snowbma

go 1.22
