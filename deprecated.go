package snowbma

import "context"

// The pre-PR5 fixed-signature entrypoints, kept for source
// compatibility. Every one is a thin one-line delegate to the
// corresponding context-first options entrypoint; options_test.go pins
// them result-equivalent to the calls they expand to.

// RunAttack executes the attack at the full sweep width.
//
// Deprecated: use Attack with WithLogf.
func RunAttack(v *Victim, iv IV, logf func(string, ...any)) (*Report, error) {
	return Attack(context.Background(), v, iv, WithLogf(logf))
}

// RunAttackLanes is RunAttack with an explicit candidate-sweep width.
//
// Deprecated: use Attack with WithLanes.
func RunAttackLanes(v *Victim, iv IV, logf func(string, ...any), lanes int) (*Report, error) {
	return Attack(context.Background(), v, iv, WithLogf(logf), WithLanes(lanes))
}

// RunAttackTraced is RunAttackLanes with a telemetry handle attached.
//
// Deprecated: use Attack with WithLanes and WithTelemetry.
func RunAttackTraced(v *Victim, iv IV, logf func(string, ...any), lanes int, tel *Telemetry) (*Report, error) {
	return Attack(context.Background(), v, iv, WithLogf(logf), WithLanes(lanes), WithTelemetry(tel))
}

// RunCensusAttack executes the census attack at the full sweep width.
//
// Deprecated: use CensusAttack with WithLogf.
func RunCensusAttack(v *Victim, iv IV, logf func(string, ...any)) (*Report, error) {
	return CensusAttack(context.Background(), v, iv, WithLogf(logf))
}

// RunCensusAttackLanes is RunCensusAttack with an explicit
// candidate-sweep width.
//
// Deprecated: use CensusAttack with WithLanes.
func RunCensusAttackLanes(v *Victim, iv IV, logf func(string, ...any), lanes int) (*Report, error) {
	return CensusAttack(context.Background(), v, iv, WithLogf(logf), WithLanes(lanes))
}

// RunCensusAttackTraced is RunCensusAttackLanes with a telemetry handle
// attached.
//
// Deprecated: use CensusAttack with WithLanes and WithTelemetry.
func RunCensusAttackTraced(v *Victim, iv IV, logf func(string, ...any), lanes int, tel *Telemetry) (*Report, error) {
	return CensusAttack(context.Background(), v, iv, WithLogf(logf), WithLanes(lanes), WithTelemetry(tel))
}

// FindFunction searches a raw bitstream for LUTs implementing expr.
//
// Deprecated: use FindLUTs.
func FindFunction(bits []byte, expr string) ([]int, error) {
	out, _, err := FindLUTs(context.Background(), bits, expr)
	return out, err
}

// FindFunctionStats is FindFunction with an explicit worker count
// (0 = all CPUs) and the scan-engine counters of the pass.
//
// Deprecated: use FindLUTs with WithParallel.
func FindFunctionStats(bits []byte, expr string, parallel int) ([]int, ScanStats, error) {
	return FindLUTs(context.Background(), bits, expr, WithParallel(parallel))
}

// FindFunctionTraced is FindFunctionStats with a telemetry handle
// attached to the scan engine (scan.pass/compile/walk spans). tel may be
// nil.
//
// Deprecated: use FindLUTs with WithParallel and WithTelemetry.
func FindFunctionTraced(bits []byte, expr string, parallel int, tel *Telemetry) ([]int, ScanStats, error) {
	return FindLUTs(context.Background(), bits, expr, WithParallel(parallel), WithTelemetry(tel))
}
