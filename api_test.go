package snowbma

import (
	"testing"
)

func TestBuildVictimDeterministicPerSeed(t *testing.T) {
	a, err := BuildVictim(VictimConfig{Key: PaperKey, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildVictim(VictimConfig{Key: PaperKey, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Image) != len(b.Image) {
		t.Fatal("same seed produced different image sizes")
	}
	for i := range a.Image {
		if a.Image[i] != b.Image[i] {
			t.Fatalf("same seed produced different images at byte %d", i)
		}
	}
	c, err := BuildVictim(VictimConfig{Key: PaperKey, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Image) == len(c.Image)
	if same {
		diff := false
		for i := range a.Image {
			if a.Image[i] != c.Image[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical placements")
	}
}

func TestBuildVictimPadFrames(t *testing.T) {
	small, err := BuildVictim(VictimConfig{Key: PaperKey})
	if err != nil {
		t.Fatal(err)
	}
	big, err := BuildVictim(VictimConfig{Key: PaperKey, PadFrames: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Image) <= len(small.Image) {
		t.Fatal("PadFrames did not grow the image")
	}
	// Both must still behave identically.
	zs := small.Keystream(PaperIV, 2)
	zb := big.Keystream(PaperIV, 2)
	if zs[0] != zb[0] || zs[1] != zb[1] {
		t.Fatal("padding changed behaviour")
	}
}

func TestFindFunctionExpressions(t *testing.T) {
	v, err := BuildVictim(VictimConfig{Key: PaperKey})
	if err != nil {
		t.Fatal(err)
	}
	flash := v.Device.ReadFlash()
	hits, err := FindFunction(flash, "(a1^a2^a3)a4a5!a6")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) < 32 {
		t.Fatalf("found %d f2 hits, want ≥ 32", len(hits))
	}
	if _, err := FindFunction(flash, "a7 + nonsense"); err == nil {
		t.Fatal("bad expression accepted")
	}
}

func TestVictimMetadataPopulated(t *testing.T) {
	v, err := BuildVictim(VictimConfig{Key: PaperKey})
	if err != nil {
		t.Fatal(err)
	}
	if v.LUTs < 500 || v.Depth < 2 || v.CriticalPathNs <= 0 || v.CriticalEndpoint == "" {
		t.Fatalf("victim metadata incomplete: %+v", v)
	}
}

func TestEncryptedVictimFlashUnreadable(t *testing.T) {
	enc := &EncryptionKeys{}
	enc.KE[0], enc.KA[0] = 1, 2
	v, err := BuildVictim(VictimConfig{Key: PaperKey, Encrypt: enc})
	if err != nil {
		t.Fatal(err)
	}
	// The flash image must not expose the plain packets: FindFunction
	// over ciphertext finds none of the 32 f2 LUTs (probabilistically;
	// a single accidental hit would still fail the 32 threshold).
	hits, err := FindFunction(v.Device.ReadFlash(), "(a1^a2^a3)a4a5!a6")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) >= 32 {
		t.Fatalf("ciphertext leaked %d f2-pattern hits", len(hits))
	}
}

func TestRecoverKeyRejectsGarbage(t *testing.T) {
	z := make([]uint32, 16)
	for i := range z {
		z[i] = 0xFFFFFFFF
	}
	if _, _, err := RecoverKey(z); err == nil {
		t.Fatal("garbage keystream accepted")
	}
}

func TestUIA2MACConsistency(t *testing.T) {
	ik := CipherKeyToBytes(PaperKey)
	msg := []byte("integrity protected payload")
	a := UIA2MAC(ik, 1, 2, 0, msg)
	b := UIA2MAC(ik, 1, 2, 0, msg)
	if a != b {
		t.Fatal("UIA2 MAC not deterministic")
	}
	msg[0] ^= 1
	if UIA2MAC(ik, 1, 2, 0, msg) == a {
		t.Fatal("UIA2 MAC insensitive to the message")
	}
}
