GO ?= go

.PHONY: all build vet test tier1 race bench bench-json fuzz clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# tier1 is the CI gate: clean build, vet, and the full suite under the
# race detector (the batch scanner and FindDualXOR run worker pools).
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./internal/core/...

bench:
	$(GO) test -bench=. -benchmem .

# bench-json runs the batch-vs-scalar sweep benchmarks and commits the
# numbers as machine-readable JSON (the EXPERIMENTS.md evidence file).
BENCH_PR2 = BenchmarkAttackEndToEnd|BenchmarkCandidateSweep|BenchmarkClockBatch|BenchmarkScannerBatchVsSequential|BenchmarkFindLUT10MB
bench-json:
	$(GO) test -run xxx -bench '$(BENCH_PR2)' -benchtime 10x . \
		| $(GO) run ./tools/benchjson -o BENCH_PR2.json
	@cat BENCH_PR2.json

# Short fuzz pass over the scanner differential target.
fuzz:
	$(GO) test ./internal/core/ -run FuzzScannerDifferential -fuzz FuzzScannerDifferential -fuzztime 30s

clean:
	$(GO) clean -testcache
