GO ?= go

.PHONY: all build vet test tier1 race bench bench-json trace-smoke fuzz clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# tier1 is the CI gate: clean build, vet, and the full suite under the
# race detector (the batch scanner and FindDualXOR run worker pools).
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./internal/core/...

bench:
	$(GO) test -bench=. -benchmem .

# bench-json runs the evidence benchmarks and commits the numbers as
# machine-readable JSON (the EXPERIMENTS.md evidence file). PR3 adds the
# traced end-to-end variant, so batch-64 vs batch-64-traced in
# BENCH_PR3.json pins the telemetry overhead (budget: <5%).
BENCH_PR2 = BenchmarkAttackEndToEnd|BenchmarkCandidateSweep|BenchmarkClockBatch|BenchmarkScannerBatchVsSequential|BenchmarkFindLUT10MB
BENCH_PR3 = BenchmarkAttackEndToEnd
bench-json:
	$(GO) test -run xxx -bench '$(BENCH_PR3)' -benchtime 10x . \
		| $(GO) run ./tools/benchjson -o BENCH_PR3.json
	@cat BENCH_PR3.json

# trace-smoke exercises the observability path end to end: run the
# attack with -trace, then feed the NDJSON through the independent
# tracestat decoder. Either tool failing (or an empty trace) fails the
# target — this is the CI guard that the trace format and its reader
# never drift apart.
trace-smoke:
	$(GO) run ./cmd/snowbma attack -trace /tmp/snowbma-trace.ndjson > /dev/null
	@test -s /tmp/snowbma-trace.ndjson || { echo "empty trace"; exit 1; }
	$(GO) run ./tools/tracestat /tmp/snowbma-trace.ndjson
	$(GO) test -run xxx -bench 'BenchmarkAttackEndToEnd/batch-64' -benchtime 3x .

# Short fuzz pass over the scanner differential target.
fuzz:
	$(GO) test ./internal/core/ -run FuzzScannerDifferential -fuzz FuzzScannerDifferential -fuzztime 30s

clean:
	$(GO) clean -testcache
