GO ?= go

.PHONY: all build vet test tier1 race bench fuzz clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# tier1 is the CI gate: clean build, vet, and the full suite under the
# race detector (the batch scanner and FindDualXOR run worker pools).
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./internal/core/...

bench:
	$(GO) test -bench=. -benchmem .

# Short fuzz pass over the scanner differential target.
fuzz:
	$(GO) test ./internal/core/ -run FuzzScannerDifferential -fuzz FuzzScannerDifferential -fuzztime 30s

clean:
	$(GO) clean -testcache
