GO ?= go

.PHONY: all build vet test tier1 race bench bench-json bench-check trace-smoke campaign-smoke serve-smoke sse-smoke fleet-smoke census-smoke fuzz clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# tier1 is the CI gate: clean build, vet, and the full suite under the
# race detector (the batch scanner and FindDualXOR run worker pools).
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./internal/core/...

bench:
	$(GO) test -bench=. -benchmem .

# bench-json runs the evidence benchmarks and commits the numbers as
# machine-readable JSON (the EXPERIMENTS.md evidence file). PR3 adds the
# traced end-to-end variant, so batch-64 vs batch-64-traced in
# BENCH_PR3.json pins the telemetry overhead (budget: <5%). PR4 adds
# campaign throughput (full synthesize→attack→verify scenarios per
# second) at pool width 1 vs all CPUs. PR5 adds end-to-end service
# throughput (full attack jobs per second through the job engine on a
# saturated worker pool against a cache-warm victim). PR6 re-runs the
# fabric and scanner evidence: ClockBatch's lanes-64 vs lanes-64-walker
# ratio is the compiled-evaluator acceptance number, and the
# ScannerBatchVsSequential pair replaces BENCH_PR2's inverted MB/s
# figures (that harness rebuilt the scanner inside the timed loop and
# credited the batch pass with 1/21st of its logical bytes). PR7 adds
# the multi-word widths: ClockBatch/lanes-{128,256} per-lane scaling,
# the >64-candidate width-aware sweep (BenchmarkCandidateSweepWide in
# internal/core, one 128-lane pass vs the 64-lane double-pass), and the
# batch-128 end-to-end attack; both packages' output merges into
# BENCH_PR7.json. PR8 adds the live-streaming variant: batch-64-streamed
# runs the traced attack with every event published onto the EventBus
# and one SSE subscriber draining the firehose over real HTTP, so the
# batch-64 vs batch-64-streamed ratio in BENCH_PR8.json pins the full
# live-observability overhead (budget: <5%). PR9 adds fleet scaling:
# BenchmarkFleetThroughput drives device-bound jobs (one modelled attack
# rig per worker process, 300ms occupancy each) through the coordinator
# at 1, 2 and 4 workers — jobs/sec at workers-4 must be ≥3x workers-1 —
# and re-runs the single-process BenchmarkServiceThroughput so the
# durable store + fairness scheduler's overhead shows against the PR5
# baseline in the same file. PR10 adds census-at-scale:
# BenchmarkCorpusCensus streams the same seeded corpus through the
# shared engine with dedup on and off, and through the two per-design
# sequential paths (a fresh FINDLUT pass per design, and the full
# attack per design) — dedup-on designs/sec must be ≥3x
# sequential-attack, the headline amortization number of the corpus
# subsystem.
BENCH_PR2 = BenchmarkAttackEndToEnd|BenchmarkCandidateSweep|BenchmarkClockBatch|BenchmarkScannerBatchVsSequential|BenchmarkFindLUT10MB
BENCH_PR3 = BenchmarkAttackEndToEnd
BENCH_PR4 = BenchmarkCampaignThroughput
BENCH_PR5 = BenchmarkServiceThroughput
BENCH_PR6 = BenchmarkClockBatch|BenchmarkCandidateSweep|BenchmarkScannerBatchVsSequential
BENCH_PR7 = BenchmarkClockBatch|BenchmarkCandidateSweep|BenchmarkAttackEndToEnd
BENCH_PR8 = BenchmarkAttackEndToEnd
BENCH_PR9 = BenchmarkServiceThroughput|BenchmarkFleetThroughput
BENCH_PR10 = BenchmarkCorpusCensus
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkCorpusCensus' -benchtime 2s -timeout 20m ./internal/corpus/ \
		| $(GO) run ./tools/benchjson -o BENCH_PR10.json
	@cat BENCH_PR10.json

# bench-check is the regression gate on three headline figures: the
# compiled fabric's lanes-64 ns/lane-cycle must stay within 10% of the
# committed PR6 baseline, single-process service throughput must stay
# within 35% of the PR5 baseline now that every job transition also
# rides the durable store and the fairness scheduler, and dedup-on
# corpus census throughput (designs/sec — a higher-is-better metric, so
# the gate flips to -min-ratio) must stay within 30% of the committed
# PR10 baseline, which itself pins the ≥3x amortization over the
# per-design sequential attack. Multiple counts, best run — the gate
# measures capability, not scheduler noise on a shared box.
bench-check:
	$(GO) test -run xxx -bench 'BenchmarkClockBatch/lanes-64$$' -benchtime 5000x -count 5 . \
		| $(GO) run ./tools/benchjson -baseline BENCH_PR6.json \
			-name 'BenchmarkClockBatch/lanes-64' -metric ns/lane-cycle -max-ratio 1.10
	$(GO) test -run xxx -bench 'BenchmarkServiceThroughput$$' -benchtime 10x -count 3 ./internal/service/ \
		| $(GO) run ./tools/benchjson -baseline BENCH_PR5.json \
			-name 'BenchmarkServiceThroughput' -metric ns/op -max-ratio 1.35
	$(GO) test -run xxx -bench 'BenchmarkCorpusCensus/dedup-on$$' -benchtime 1s -count 3 ./internal/corpus/ \
		| $(GO) run ./tools/benchjson -baseline BENCH_PR10.json \
			-name 'BenchmarkCorpusCensus/dedup-on' -metric designs/sec -min-ratio 0.70

# trace-smoke exercises the observability path end to end: run the
# attack with -trace, then feed the NDJSON through the independent
# tracestat decoder. Either tool failing (or an empty trace) fails the
# target — this is the CI guard that the trace format and its reader
# never drift apart.
trace-smoke:
	$(GO) run ./cmd/snowbma attack -trace /tmp/snowbma-trace.ndjson > /dev/null
	@test -s /tmp/snowbma-trace.ndjson || { echo "empty trace"; exit 1; }
	$(GO) run ./tools/tracestat /tmp/snowbma-trace.ndjson
	$(GO) test -run xxx -bench 'BenchmarkAttackEndToEnd/batch-64' -benchtime 3x .

# campaign-smoke runs a seeded 25-scenario chaos campaign under the race
# detector: every fault must surface as a typed error (never a wrong key
# or a panic) and every clean scenario must recover the key, or the
# campaign exits non-zero. The JSON report lands in /tmp for inspection.
campaign-smoke:
	$(GO) run -race ./cmd/snowbma campaign -runs 25 -chaos -seed 7 -parallel 2 \
		-json /tmp/snowbma-campaign.json
	@test -s /tmp/snowbma-campaign.json || { echo "empty campaign report"; exit 1; }

# serve-smoke is the end-to-end serving exercise under the race
# detector: concurrent attack jobs over HTTP recover correct keys
# through one cached victim build, queue overflow surfaces as a typed
# 429, a running campaign job is cancelled mid-flight, and shutdown
# drains the rest without leaking a goroutine.
serve-smoke:
	$(GO) test -race -count=1 -v -run 'TestServeSmoke|TestServeOnLifecycle' \
		./internal/service ./cmd/snowbma

# sse-smoke exercises the live event streams end to end under the race
# detector: mid-job join with ring-buffer catch-up, Last-Event-ID
# resume, slow-subscriber drop accounting, firehose close on shutdown,
# and the differential check that the SSE stream reconstructs the same
# phase tree as the NDJSON trace of the same job. The obstop dashboard's
# independent SSE decoder and render model run against synthetic frames.
sse-smoke:
	$(GO) test -race -count=1 -v \
		-run 'TestJobEvents|TestFirehose|TestSlowSubscriber|TestSSEPhaseTree' \
		./internal/service
	$(GO) test -count=1 ./tools/obstop/

# fleet-smoke is the crash-recovery exercise under the race detector:
# real worker processes (the test binary re-execs itself) behind the
# sharding coordinator, one worker SIGKILLed mid-campaign with live
# jobs, its leases expiring and the jobs reassigned, the worker
# restarting on the same durable store and rejoining — and every job
# reaching a terminal state exactly once (the event log is audited for
# duplicate terminal transitions).
fleet-smoke:
	$(GO) test -race -count=1 -v -timeout 5m \
		-run 'TestFleetKillRestartSmoke|TestFleetLeaseReassignment' ./internal/fleet/

# census-smoke is the census-at-scale exercise under the race detector:
# a seeded 200-design corpus streams through the shared scan engine with
# content-addressed dedup, and the report invariants are checked exactly
# — every fourth design carries the countermeasure and must census to 0
# target-class LUTs (covered), every other design to exactly 32
# (exposed), dedup must actually hit, and the frame accounting must
# balance. The fleet sharding path (composite corpus job split across
# two real worker processes, merged report equal to the single-engine
# run) and the CLI surface ride along.
census-smoke:
	$(GO) test -race -count=1 -v -timeout 15m \
		-run 'TestCorpusCensusSmoke|TestCorpusDifferential|TestCorpusIncrementalRescan' \
		./internal/corpus/
	$(GO) test -race -count=1 -v -timeout 10m \
		-run 'TestFleetCorpusSharding|TestErrorShapeParity' ./internal/fleet/
	$(GO) run ./cmd/snowbma census -corpus -n 8 -seed 3 -json /tmp/snowbma-corpus.json > /dev/null
	@test -s /tmp/snowbma-corpus.json || { echo "empty corpus report"; exit 1; }

# Short fuzz passes over the differential targets: the batch scanner
# vs FindLUT, and the compiled fabric program vs the graph walker.
fuzz:
	$(GO) test ./internal/core/ -run FuzzScannerDifferential -fuzz FuzzScannerDifferential -fuzztime 30s
	$(GO) test ./internal/device/ -run FuzzProgramDifferential -fuzz FuzzProgramDifferential -fuzztime 30s

clean:
	$(GO) clean -testcache
