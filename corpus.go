package snowbma

import (
	"context"
	"fmt"

	"snowbma/internal/corpus"
)

// Census at scale: the paper evaluates FINDLUT against one bitstream;
// the fleet-scale threat model triages thousands. CensusCorpus streams
// a corpus of designs through one shared scan engine — the candidate
// catalogue compiles once, and with dedup on (the default) every
// distinct frame window is scanned once corpus-wide — and reports which
// designs genuinely expose the W-XOR target and which the Section VII-A
// countermeasure covers.

// CorpusDesign is one corpus member: a stable ID plus the plaintext
// bitstream image to scan.
type CorpusDesign = corpus.Design

// CorpusSource streams designs into CensusCorpus. SeededCorpus and
// DirCorpus build the two standard sources; any implementation of
// Next() (CorpusDesign, bool, error) works.
type CorpusSource = corpus.Source

// CorpusReport is the deterministic corpus-wide vulnerability report:
// designs scanned, W-XOR exposure and countermeasure coverage counts,
// dedup hit rate, per-design results.
type CorpusReport = corpus.Report

// CorpusResult is one design's row of the report.
type CorpusResult = corpus.DesignResult

// SeededCorpus streams n synthesized designs derived deterministically
// from a master seed: every (seed, index) pair fixes one design's key,
// placement and padding, and every fourth design carries the
// countermeasure — so one corpus measures coverage alongside exposure.
func SeededCorpus(n int, seed int64) CorpusSource {
	return corpus.NewSeeded(corpus.SeedOptions{Designs: n, Seed: seed})
}

// DirCorpus streams every regular file of a directory as one design, in
// sorted name order. Encrypted images are rejected — the census scans
// plaintext bytes.
func DirCorpus(dir string) (CorpusSource, error) {
	src, err := corpus.NewDir(dir)
	if err != nil {
		return nil, fmt.Errorf("snowbma: %w", err)
	}
	return src, nil
}

// CensusCorpus runs the census-at-scale pass: every design of src is
// scanned for the W-XOR target by one shared engine and classified by
// its extracted-LUT census. Options: WithDedup (content-addressed frame
// memo, on by default), WithParallel (scan worker pool), WithTelemetry
// (per-design progress events and the census span), WithLogf.
// Cancelling ctx stops between designs with an error wrapping
// ErrCancelled.
func CensusCorpus(ctx context.Context, src CorpusSource, opts ...Option) (*CorpusReport, error) {
	o := buildOptions(opts)
	if err := ValidateLanes(o.lanes); err != nil {
		// The census never sweeps candidates, but an explicit WithLanes
		// out of range is still a caller bug worth failing loudly on.
		return nil, err
	}
	cen, err := corpus.New(corpus.Options{
		NoDedup:  o.noDedup,
		Parallel: o.parallel,
		Tel:      o.tel,
		Logf:     o.logf,
	})
	if err != nil {
		return nil, fmt.Errorf("snowbma: %w", err)
	}
	return cen.Run(ctx, src)
}
