// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark is named after the experiment it drives;
// EXPERIMENTS.md records the paper-vs-measured comparison. Run with
//
//	go test -bench=. -benchmem .
package snowbma

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/core"
	"snowbma/internal/device"
	"snowbma/internal/hdl"
	"snowbma/internal/mapper"
	"snowbma/internal/obs"
	"snowbma/internal/snow3g"
)

// Shared fixtures, built once.
var (
	fixOnce     sync.Once
	fixUnprot   *Victim
	fixProt     *Victim
	fixBig      []byte // ~10 MB bitstream for the FINDLUT timing claim
	fixTableIV  []uint32
	fixBuildErr error
)

func fixtures(b *testing.B) (*Victim, *Victim, []byte) {
	b.Helper()
	fixOnce.Do(func() {
		fixUnprot, fixBuildErr = BuildVictim(VictimConfig{Key: PaperKey})
		if fixBuildErr != nil {
			return
		}
		fixProt, fixBuildErr = BuildVictim(VictimConfig{Key: PaperKey, Protected: true})
		if fixBuildErr != nil {
			return
		}
		// ~10 MB image: the paper's "less than 10 MB ... less than 4 sec"
		// FINDLUT claim (Section VI-B).
		var big *Victim
		big, fixBuildErr = BuildVictim(VictimConfig{Key: PaperKey, PadFrames: 24500})
		if fixBuildErr != nil {
			return
		}
		fixBig = big.Image
		fixTableIV = FaultyKeystream(PaperKey, PaperIV, true, true, false, 16)
	})
	if fixBuildErr != nil {
		b.Fatal(fixBuildErr)
	}
	return fixUnprot, fixProt, fixBig
}

// BenchmarkXiTableI measures the ξ truth-table permutation of Table I.
func BenchmarkXiTableI(b *testing.B) {
	tt := boolfn.TT(0x123456789ABCDEF0)
	for i := 0; i < b.N; i++ {
		tt = bitstream.XiInv(bitstream.Xi(tt))
	}
	_ = tt
}

// BenchmarkTableII regenerates the Table II candidate counts: FINDLUT
// over all 21 catalogue functions on the unprotected bitstream.
func BenchmarkTableII(b *testing.B) {
	u, _, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CountCandidates(u, PaperIV); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII measures producing the key-independent keystream on
// the software model (the verification reference of Section VI-D).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FaultyKeystream(PaperKey, PaperIV, true, false, true, 16)
	}
}

// BenchmarkTableIV measures the faulty keystream with the FSM output
// stuck at 0 in both phases (the key-extraction input).
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FaultyKeystream(PaperKey, PaperIV, true, true, false, 16)
	}
}

// BenchmarkTableV measures key extraction: rewinding the LFSR 33 steps
// from the Table IV keystream and reading the key out of S⁰.
func BenchmarkTableV(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RecoverKey(fixTableIV); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVI regenerates the protected-design measurement: the 21
// candidate searches plus the dual-output XOR sweep of Section VII-B.
func BenchmarkTableVI(b *testing.B) {
	_, p, _ := fixtures(b)
	flash := p.Device.ReadFlash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CountCandidates(p, PaperIV); err != nil {
			b.Fatal(err)
		}
		DualXORHits(flash, 0, 0)
	}
}

// BenchmarkFindLUT10MB checks the paper's Section VI-B runtime claim:
// FINDLUT for one 6-variable function over a ~10 MB bitstream in under
// 4 seconds (ours runs orders of magnitude faster per op; the bench
// reports bytes/s).
func BenchmarkFindLUT10MB(b *testing.B) {
	_, _, big := fixtures(b)
	b.SetBytes(int64(len(big)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.FindLUT(big, boolfn.F2, core.FindOptions{})
	}
}

// BenchmarkEndToEndAttack measures the complete Section VI attack: all
// FINDLUT passes, ~47 faulty bitstream loads with keystream collection,
// and the LFSR rewind.
func BenchmarkEndToEndAttack(b *testing.B) {
	u, _, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := RunAttack(u, PaperIV, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Key != PaperKey {
			b.Fatal("wrong key")
		}
	}
}

// BenchmarkAttackEndToEnd contrasts the candidate-sweep widths on the
// complete attack: lanes-1 evaluates every faulty bitstream on the
// scalar device (one full load + settle walk per candidate), lanes-64
// packs up to 64 candidates into each bitsliced fabric pass. Both
// recover the same key with identical Report.Loads; only wall-clock
// changes — the ratio is the PR's headline speedup. The traced variant
// reruns the batch width with a live telemetry handle (fresh tracer,
// metrics registry, span per phase and per chunk) so batch-64 vs
// batch-64-traced pins the observability overhead — the budget is <5%.
// The streamed variant additionally publishes every span and progress
// event onto an EventBus with one live SSE subscriber draining the
// firehose over real HTTP (ISSUE 8): batch-64 vs batch-64-streamed pins
// the full live-streaming overhead against the same <5% budget.
func BenchmarkAttackEndToEnd(b *testing.B) {
	u, _, _ := fixtures(b)
	for _, bc := range []struct {
		name     string
		lanes    int
		traced   bool
		streamed bool
	}{
		{"scalar-1", 1, false, false},
		{"batch-64", 64, false, false},
		// The two-word width: sweeps above 64 candidates collapse to
		// half the fabric passes (ISSUE 7).
		{"batch-128", 128, false, false},
		{"batch-64-traced", 64, true, false},
		{"batch-64-streamed", 64, true, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var bus *obs.EventBus
			if bc.streamed {
				bus = obs.NewEventBus(obs.DefaultEventBuffer)
				srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					obs.ServeSSE(w, r, bus, obs.SSEOptions{})
				}))
				resp, err := http.Get(srv.URL)
				if err != nil {
					b.Fatal(err)
				}
				drained := make(chan struct{})
				go func() {
					io.Copy(io.Discard, resp.Body)
					close(drained)
				}()
				b.Cleanup(func() {
					bus.Close() // ends the SSE stream, then the server
					<-drained
					resp.Body.Close()
					srv.Close()
				})
				b.ResetTimer()
			}
			for i := 0; i < b.N; i++ {
				var rep *Report
				var err error
				if bc.traced {
					tel := NewTelemetry()
					if bus != nil {
						tel.AttachBus(bus, "bench")
					}
					rep, err = RunAttackTraced(u, PaperIV, nil, bc.lanes, tel)
				} else {
					rep, err = RunAttackLanes(u, PaperIV, nil, bc.lanes)
				}
				if err != nil {
					b.Fatal(err)
				}
				if rep.Key != PaperKey {
					b.Fatal("wrong key")
				}
			}
		})
	}
}

// BenchmarkCandidateSweep isolates the candidate-verification phase the
// tentpole targets: the z-path sweep (Section VI-C.1, ~35 candidate
// trials) with the FINDLUT scan warmed outside the timer, so the
// scalar-vs-batch ratio measures only load+keystream evaluation.
func BenchmarkCandidateSweep(b *testing.B) {
	u, _, _ := fixtures(b)
	defer func() {
		if err := u.Device.Load(u.Device.ReadFlash()); err != nil {
			b.Fatal(err)
		}
	}()
	for _, bc := range []struct {
		name  string
		lanes int
	}{{"scalar-1", 1}, {"batch-64", 64}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				atk, err := core.NewAttack(u.Device, PaperIV, nil)
				if err != nil {
					b.Fatal(err)
				}
				if err := atk.SetLanes(bc.lanes); err != nil {
					b.Fatal(err)
				}
				atk.CountCandidates() // shared single-pass scan, untimed
				b.StartTimer()
				if err := atk.VerifyZPath(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClockBatch measures the bitsliced evaluator's cycle cost and
// reports ns per lane-cycle: at 64 lanes one settle walk advances 64
// virtual devices, so the per-lane figure is the amortized cost the
// candidate sweeps pay. The scalar device's Clock is the baseline.
func BenchmarkClockBatch(b *testing.B) {
	u, _, _ := fixtures(b)
	img := u.Device.ReadFlash()
	for _, bc := range []struct {
		name   string
		lanes  int
		walker bool
	}{
		{"lanes-1", 1, false},
		{"lanes-64", 64, false},
		// The multi-word widths: one settle advances 128/256 virtual
		// devices over two/four register words per slot. The per-lane
		// figure must stay within 1.3× of lanes-64 (ISSUE 7 acceptance).
		{"lanes-128", 128, false},
		{"lanes-256", 256, false},
		// The interpreting graph walker the compiled program replaced,
		// kept benchmarkable via SetWalker: the lanes-64 vs
		// lanes-64-walker ratio is PR 6's acceptance number.
		{"lanes-64-walker", 64, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			f := device.New([bitstream.KeySize]byte{})
			batch, err := f.LoadPatched(img, make([]bitstream.PatchSet, bc.lanes))
			if err != nil {
				b.Fatal(err)
			}
			batch.SetWalker(bc.walker)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch.ClockBatch()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(bc.lanes), "ns/lane-cycle")
		})
	}
	b.Run("scalar-clock", func(b *testing.B) {
		f := device.New([bitstream.KeySize]byte{})
		if err := f.Load(img); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Clock()
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/lane-cycle")
	})
}

// BenchmarkCriticalPath measures the timing analysis that backs the
// 6.313 ns → 7.514 ns comparison of Section VII-A.
func BenchmarkCriticalPath(b *testing.B) {
	d := hdl.Build(hdl.Config{Key: PaperKey})
	r, err := mapper.Map(d.N, mapper.Options{K: 6, Boundaries: d.Boundaries})
	if err != nil {
		b.Fatal(err)
	}
	model := mapper.DefaultDelays()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Timing(model)
	}
}

// BenchmarkComplexitySweep measures the Lemma VII-A analysis across
// decoy ratios (Section VII-A table in the countermeasure example).
func BenchmarkComplexitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for x := 1; x <= 8; x++ {
			core.LemmaBound(32, 32*x)
			core.SearchEffort(32, 32*x)
		}
		core.MinDecoyRatio(32, 128)
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkFindLUTSymmetry quantifies the permutation-deduplication
// optimization: Algorithm 1 as written iterates all k! input orders,
// while deduplicating identical permuted truth tables shrinks the
// candidate set (f2's XOR symmetry gives a 12x reduction).
func BenchmarkFindLUTSymmetry(b *testing.B) {
	u, _, _ := fixtures(b)
	img := u.Device.ReadFlash()
	b.Run("dedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FindLUT(img, boolfn.F2, core.FindOptions{})
		}
	})
	b.Run("allperms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FindLUT(img, boolfn.F2, core.FindOptions{NoPermDedup: true})
		}
	})
}

// BenchmarkFindLUTParallel compares the single-goroutine scan with the
// parallel scan.
func BenchmarkFindLUTParallel(b *testing.B) {
	_, _, big := fixtures(b)
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(big)))
		for i := 0; i < b.N; i++ {
			core.FindLUT(big, boolfn.F2, core.FindOptions{Parallel: 1})
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(int64(len(big)))
		for i := 0; i < b.N; i++ {
			core.FindLUT(big, boolfn.F2, core.FindOptions{})
		}
	})
}

// BenchmarkScannerBatchVsSequential quantifies the single-pass batch
// engine: all 21 Table II candidate functions resolved in one shared
// Scanner walk versus 21 separate FindLUT passes over the same image
// (what the Table II / Table VI flows cost before the batch engine).
func BenchmarkScannerBatchVsSequential(b *testing.B) {
	u, _, _ := fixtures(b)
	img := u.Device.ReadFlash()
	cands := boolfn.Candidates()
	b.Run("batch", func(b *testing.B) {
		// One query set over many images is the serving scenario: build
		// the scanner once and time steady-state scans. Count the same
		// logical work as the sequential flow (21 function-searches over
		// the image) so the MB/s figures are comparable — the BENCH_PR2
		// "inversion" was this harness crediting the batch pass with one
		// image's bytes for 21 functions' work, and rebuilding the
		// scanner inside the timed loop.
		s := core.NewScanner(core.FindOptions{})
		for _, c := range cands {
			s.AddFunction(c.Name, c.TT)
		}
		s.Scan(img) // compile the anchor index outside the timer
		b.SetBytes(int64(len(img)) * int64(len(cands)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Scan(img)
		}
	})
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(len(img)) * int64(len(cands)))
		for i := 0; i < b.N; i++ {
			for _, c := range cands {
				core.FindLUT(img, c.TT, core.FindOptions{})
			}
		}
	})
}

// BenchmarkKeyIndependentVsBrute contrasts the cost of one probe in the
// key-independent procedure (a bitstream load + 16 keystream words)
// against one hypothesis test of the 3^32 brute-force alternative (a
// software keystream comparison): the techniques differ in *count*
// (2 loads vs 3^32 tests), and this bench pins the per-step costs used
// in EXPERIMENTS.md's extrapolation.
func BenchmarkKeyIndependentVsBrute(b *testing.B) {
	u, _, _ := fixtures(b)
	img := u.Device.ReadFlash()
	b.Run("probe-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := u.Device.Load(img); err != nil {
				b.Fatal(err)
			}
			u.Keystream(PaperIV, 16)
		}
	})
	b.Run("brute-hypothesis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FaultyKeystream(PaperKey, PaperIV, true, true, false, 16)
		}
	})
}

// BenchmarkCountermeasureSweep maps the protected design at several
// decoy ratios and reports the area/depth cost of the countermeasure.
func BenchmarkCountermeasureSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := hdl.Build(hdl.Config{Key: PaperKey, Protected: true})
		if _, err := mapper.Map(d.N, mapper.Options{K: 6,
			TrivialCuts: d.TrivialCuts, Boundaries: d.Boundaries}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesisFlow measures the full victim build (RTL generation,
// mapping, packing, placement, bitstream assembly, device programming).
func BenchmarkSynthesisFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildVictim(VictimConfig{Key: PaperKey}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchFixturesHealthy keeps `go test .` meaningful at the root: the
// fixtures must build and the 10 MB image must really be ≥ 9.5 MB.
func TestBenchFixturesHealthy(t *testing.T) {
	v, err := BuildVictim(VictimConfig{Key: PaperKey})
	if err != nil {
		t.Fatal(err)
	}
	z := v.Keystream(PaperIV, 2)
	want := Keystream(PaperKey, PaperIV, 2)
	if z[0] != want[0] || z[1] != want[1] {
		t.Fatal("fixture victim produces wrong keystream")
	}
}

func TestPaperConstants(t *testing.T) {
	// γ(PaperKey, PaperIV) must equal the paper's Table V state.
	s0 := snow3g.Gamma(PaperKey, PaperIV)
	if s0[15] != 0xA283B85C || s0[12] != 0x868A081B || s0[10] != 0xB5CC2DCA || s0[9] != 0x6131B8A0 {
		t.Fatalf("PaperIV inconsistent with Table V: %08x", s0)
	}
}

func TestAutoProtectDefeatsAttack(t *testing.T) {
	v, err := BuildVictim(VictimConfig{Key: PaperKey, AutoProtectBits: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Functionality preserved.
	z := v.Keystream(PaperIV, 2)
	want := Keystream(PaperKey, PaperIV, 2)
	if z[0] != want[0] || z[1] != want[1] {
		t.Fatal("auto-protected victim produces wrong keystream")
	}
	if _, err := RunAttack(v, PaperIV, nil); err == nil {
		t.Fatal("attack succeeded against the auto-planned countermeasure")
	}
}

// BenchmarkCensus measures the census-guided discovery sweep (extraction
// + P-class grouping + XOR-structure filtering).
func BenchmarkCensus(b *testing.B) {
	u, _, _ := fixtures(b)
	img := u.Device.ReadFlash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CensusCandidates(img, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiff measures differential bitstream analysis.
func BenchmarkDiff(b *testing.B) {
	u, _, _ := fixtures(b)
	a := u.Device.ReadFlash()
	c := append([]byte(nil), a...)
	c[len(c)/2] ^= 0xFF
	b.SetBytes(int64(len(a)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Diff(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyFormal measures the BDD equivalence proof of the full
// mapped SNOW 3G design.
func BenchmarkVerifyFormal(b *testing.B) {
	d := hdl.Build(hdl.Config{Key: PaperKey})
	r, err := mapper.Map(d.N, mapper.Options{K: 6, Boundaries: d.Boundaries})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.VerifyFormal(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatrixVsTableRecovery contrasts the two key-extraction
// derivations: GF(2) matrix algebra vs the byte-table rewind.
func BenchmarkMatrixVsTableRecovery(b *testing.B) {
	z := FaultyKeystream(PaperKey, PaperIV, true, true, false, 16)
	b.Run("matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := snow3g.RecoverFromKeystreamMatrix(z); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := RecoverKey(z); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReadback measures configuration readback regeneration.
func BenchmarkReadback(b *testing.B) {
	u, _, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Device.Readback(); err != nil {
			b.Fatal(err)
		}
	}
}
