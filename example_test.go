package snowbma_test

import (
	"fmt"

	"snowbma"
)

// The software model reproduces the ETSI SNOW 3G test-set keystream for
// the paper's key and IV.
func ExampleKeystream() {
	z := snowbma.Keystream(snowbma.PaperKey, snowbma.PaperIV, 2)
	fmt.Printf("%08x %08x\n", z[0], z[1])
	// Output: abee9704 7ac31373
}

// With the FSM output stuck at 0 (the injected fault), the keystream is
// the raw LFSR state and the paper's Table IV appears verbatim.
func ExampleFaultyKeystream() {
	z := snowbma.FaultyKeystream(snowbma.PaperKey, snowbma.PaperIV, true, true, false, 3)
	fmt.Printf("%08x %08x %08x\n", z[0], z[1], z[2])
	// Output: 3ffe4851 35d1c393 5914acef
}

// Sixteen faulty keystream words rewind to the key (paper Table V).
func ExampleRecoverKey() {
	z := snowbma.FaultyKeystream(snowbma.PaperKey, snowbma.PaperIV, true, true, false, 16)
	key, iv, err := snowbma.RecoverKey(z)
	if err != nil {
		panic(err)
	}
	fmt.Printf("key %08x %08x %08x %08x\n", key[0], key[1], key[2], key[3])
	fmt.Printf("iv  %08x %08x %08x %08x\n", iv[0], iv[1], iv[2], iv[3])
	// Output:
	// key 2bd6459f 82c5b300 952c4910 4881ff48
	// iv  ea024714 ad5c4d84 df1f9b25 1c0bf45f
}

// The key-independent keystream (fault β) is identical for every key —
// the paper's Table III.
func ExampleFaultyKeystream_keyIndependent() {
	anyKey := snowbma.Key{0xDEAD, 0xBEEF, 0xCAFE, 0xF00D}
	z := snowbma.FaultyKeystream(anyKey, snowbma.PaperIV, true, false, true, 2)
	fmt.Printf("%08x %08x\n", z[0], z[1])
	// Output: a1fb4788 e4382f8e
}

// Lemma VII-A: five decoy words per target word reach 2^128.
func ExampleMinDecoyRatio() {
	fmt.Println(snowbma.MinDecoyRatio(32, 128))
	// Output: 5
}

// Section VII-C: selecting the 32 real targets among 171 candidates.
func ExampleSearchEffortBits() {
	fmt.Printf("2^%.0f\n", snowbma.SearchEffortBits(32, 171-32))
	// Output: 2^115
}

// UEA2 encryption is an involution under the same parameters.
func ExampleUEA2Encrypt() {
	ck := snowbma.CipherKeyToBytes(snowbma.PaperKey)
	msg := []byte("sample frame")
	snowbma.UEA2Encrypt(ck, 7, 3, 0, msg)
	snowbma.UEA2Encrypt(ck, 7, 3, 0, msg)
	fmt.Println(string(msg))
	// Output: sample frame
}
