// Countermeasure evaluates the paper's Section VII defence: the target
// XOR word and five decoy XOR words are forced to trivial cuts during
// technology mapping, so each becomes an indistinguishable 2-input XOR
// LUT. The example regenerates the Table VI measurement, the dual-output
// XOR search, the complexity analysis, and the timing cost.
package main

import (
	"fmt"
	"log"

	"snowbma"
)

func main() {
	fmt.Println("== synthesizing protected and unprotected victims ==")
	unprot, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: snowbma.PaperKey})
	if err != nil {
		log.Fatal(err)
	}
	prot, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: snowbma.PaperKey, Protected: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unprotected: %4d LUTs, depth %d, critical path %.3f ns (%s)\n",
		unprot.LUTs, unprot.Depth, unprot.CriticalPathNs, unprot.CriticalEndpoint)
	fmt.Printf("protected:   %4d LUTs, depth %d, critical path %.3f ns (%s)\n",
		prot.LUTs, prot.Depth, prot.CriticalPathNs, prot.CriticalEndpoint)
	fmt.Println("(paper: 6.313 ns unprotected → 7.514 ns protected; the feedback path becomes critical)")

	fmt.Println("\n== Table II vs Table VI: candidate counts ==")
	rowsU, err := snowbma.CountCandidates(unprot, snowbma.PaperIV)
	if err != nil {
		log.Fatal(err)
	}
	rowsP, err := snowbma.CountCandidates(prot, snowbma.PaperIV)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("function | unprotected n | protected n")
	for i := range rowsU {
		fmt.Printf("%-8s | %13d | %d\n", rowsU[i].Name, rowsU[i].Count, rowsP[i].Count)
	}

	fmt.Println("\n== Section VII-B: dual-output XOR search on the protected bitstream ==")
	flash := prot.Device.ReadFlash()
	hits := snowbma.DualXORHits(flash, 0, 0)
	fmt.Printf("unconstrained search: %d candidate positions (paper: 481)\n", len(hits))
	fmt.Printf("locating the 32 real targets among them costs ≈ 2^%.1f trials (paper: 2^115)\n",
		snowbma.SearchEffortBits(32, len(hits)-32))

	fmt.Println("\n== Lemma VII-A: how many decoys are needed ==")
	fmt.Printf("minimal decoy ratio for 2^128 at m = 32: x = %d (paper: x ≥ 16/e − 1 ≈ 4.9)\n",
		snowbma.MinDecoyRatio(32, 128))
	for x := 1; x <= 6; x++ {
		fmt.Printf("  x=%d: bound 2^%6.1f, exact 2^%6.1f\n",
			x, snowbma.LemmaBoundBits(32, 32*x), snowbma.SearchEffortBits(32, 32*x))
	}

	fmt.Println("\n== attacking the protected implementation ==")
	if _, err := snowbma.RunAttack(prot, snowbma.PaperIV, nil); err != nil {
		fmt.Printf("attack failed, as the countermeasure intends:\n  %v\n", err)
	} else {
		fmt.Println("UNEXPECTED: attack succeeded against the protected design")
	}
}
