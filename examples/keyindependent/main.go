// Keyindependent demonstrates the paper's Section VI-D technique: by
// additionally forcing the LFSR to load the all-0 vector (fault β), the
// faulty keystream becomes independent of the key, which collapses the
// 3^32 search for the XOR input pairs into two keystream computations.
// The example shows (1) the key-independent keystream equals the paper's
// Table III for *any* key, and (2) the cost comparison.
package main

import (
	"fmt"
	"log"
	"math"

	"snowbma"
)

// tableIII is the key-independent keystream printed in the paper.
var tableIII = []uint32{
	0xa1fb4788, 0xe4382f8e, 0x3b72471c, 0x33ebb59a,
	0x32ac43c7, 0x5eebfd82, 0x3a325fd4, 0x1e1d7001,
	0xb7f15767, 0x3282c5b0, 0x103da78f, 0xe42761e4,
	0xc6ded1bb, 0x089fa36c, 0x01c7c690, 0xbf921256,
}

func main() {
	fmt.Println("== key-independent keystream (software model) ==")
	keys := []snowbma.Key{
		snowbma.PaperKey,
		{0, 0, 0, 0},
		{0xDEADBEEF, 0xCAFEF00D, 0x01234567, 0x89ABCDEF},
	}
	for _, k := range keys {
		z := snowbma.FaultyKeystream(k, snowbma.PaperIV, true, false, true, 16)
		same := true
		for i := range z {
			if z[i] != tableIII[i] {
				same = false
			}
		}
		fmt.Printf("key %08x...: matches paper Table III: %v\n", k[0], same)
	}

	fmt.Println("\n== the same keystream observed on the faulted device ==")
	victim, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: snowbma.PaperKey})
	if err != nil {
		log.Fatal(err)
	}
	report, err := snowbma.RunAttack(victim, snowbma.PaperIV, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i, w := range report.KeyIndependent {
		marker := "  "
		if w == tableIII[i] {
			marker = "=="
		}
		fmt.Printf("z%-2d device %08x %s paper %08x\n", i+1, w, marker, tableIII[i])
	}

	fmt.Println("\n== why it matters ==")
	brute := 32 * math.Log2(3) // 3^32 combinations of XOR input pairs
	fmt.Printf("without key independence: identify the v inputs of 32 LUTs by\n")
	fmt.Printf("  exhaustive search over 3^32 ≈ 2^%.1f combinations\n", brute)
	fmt.Printf("with key independence:    2 keystream computations\n")
	fmt.Printf("this attack used %d bitstream loads in total\n", report.Loads)
}
