// Encrypted walks the attack model of Section IV-A against a bitstream
// protected with the 7-series MAC-then-encrypt scheme (Fig 1): the AES
// key K_E is recovered by a (simulated) side-channel attack, decryption
// exposes the HMAC key K_A stored in plaintext inside the envelope, and
// the modified bitstream is re-authenticated and re-encrypted — so
// encryption and authentication do not stop the fault attack.
package main

import (
	"fmt"
	"log"

	"snowbma"
)

func main() {
	secret := snowbma.Key{0x00112233, 0x44556677, 0x8899AABB, 0xCCDDEEFF}
	enc := &snowbma.EncryptionKeys{}
	for i := range enc.KE {
		enc.KE[i] = byte(0x5A ^ i)
		enc.KA[i] = byte(0xC3 + i)
	}

	fmt.Println("== synthesizing victim with encrypted + authenticated bitstream ==")
	victim, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: secret, Encrypt: enc})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flash image: %d bytes (AES-256-CBC, HMAC-SHA256, K_A stored twice inside)\n\n",
		len(victim.Image))

	iv := snowbma.IV{1, 2, 3, 4}
	fmt.Println("== running the attack through the encryption envelope ==")
	report, err := snowbma.RunAttack(victim, iv, func(f string, a ...any) {
		fmt.Printf("  %s\n", fmt.Sprintf(f, a...))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nencrypted image attacked: %v\n", report.Encrypted)
	fmt.Printf("recovered key: %08x %08x %08x %08x (correct: %v, verified: %v)\n",
		report.Key[0], report.Key[1], report.Key[2], report.Key[3],
		report.Key == secret, report.Verified)
	fmt.Printf("every faulty load was re-sealed with the recovered K_A; %d loads total\n", report.Loads)
}
