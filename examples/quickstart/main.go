// Quickstart: synthesize an unprotected SNOW 3G FPGA implementation with
// a secret key baked into the bitstream, then recover the key purely by
// modifying bitstream bytes and watching the keystream — the paper's
// headline result.
package main

import (
	"fmt"
	"log"

	"snowbma"
)

func main() {
	// The victim's secret: in the attack model this key lives only
	// inside the bitstream (here: the ETSI test key the paper recovers).
	secret := snowbma.PaperKey

	fmt.Println("== synthesizing victim ==")
	victim, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: secret})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bitstream: %d bytes, %d LUTs, critical path %.3f ns (%s)\n\n",
		len(victim.Image), victim.LUTs, victim.CriticalPathNs, victim.CriticalEndpoint)

	// Sanity: the device encrypts like the reference software model.
	iv := snowbma.PaperIV
	hw := victim.Keystream(iv, 4)
	sw := snowbma.Keystream(secret, iv, 4)
	fmt.Println("== device vs software model (healthy) ==")
	for i := range hw {
		fmt.Printf("z%d  device %08x  model %08x\n", i+1, hw[i], sw[i])
	}

	fmt.Println("\n== running the bitstream modification attack ==")
	report, err := snowbma.RunAttack(victim, iv, func(f string, a ...any) {
		fmt.Printf("  %s\n", fmt.Sprintf(f, a...))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecovered key: %08x %08x %08x %08x\n",
		report.Key[0], report.Key[1], report.Key[2], report.Key[3])
	fmt.Printf("matches the secret: %v (verified against clean keystream: %v)\n",
		report.Key == secret, report.Verified)
	fmt.Printf("total bitstream loads used: %d\n", report.Loads)
}
