// Intercept shows why the paper's attack matters operationally: SNOW 3G
// is the core of the 3GPP UEA2/128-EEA1 confidentiality algorithm, so a
// key extracted from one compromised device decrypts the traffic it
// protected. The scenario: a base-station crypto accelerator (our victim
// FPGA) encrypts frames with f8; the attacker records the ciphertext,
// later gets supply-chain access to the device, runs the bitstream
// modification attack, and decrypts the recorded traffic.
package main

import (
	"fmt"
	"log"

	"snowbma"
)

func main() {
	// The device key, provisioned into the bitstream at the factory.
	secret := snowbma.Key{0x310354BC, 0x77FF1299, 0x8086AB0D, 0x55E23D11}
	ck := snowbma.CipherKeyToBytes(secret)

	// --- Before the attack: traffic is recorded but unreadable. ---
	frames := [][]byte{
		[]byte("subscriber 262-01-1234: location update accepted"),
		[]byte("SMS: meet at the usual place at nine"),
		[]byte("RRC: handover to cell 0x0BEE complete"),
	}
	type captured struct {
		count, bearer, dir uint32
		ct                 []byte
	}
	var wire []captured
	for i, f := range frames {
		ct := append([]byte(nil), f...)
		snowbma.UEA2Encrypt(ck, uint32(1000+i), 5, 0, ct)
		wire = append(wire, captured{uint32(1000 + i), 5, 0, ct})
	}
	fmt.Println("== recorded ciphertext frames (attacker cannot read) ==")
	for i, c := range wire {
		fmt.Printf("frame %d: %x...\n", i, c.ct[:16])
	}

	// --- Supply-chain access: the device is attacked. ---
	fmt.Println("\n== device obtained; running the bitstream modification attack ==")
	victim, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: secret})
	if err != nil {
		log.Fatal(err)
	}
	report, err := snowbma.RunAttack(victim, snowbma.IV{0xA, 0xB, 0xC, 0xD}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered key: %08x %08x %08x %08x (verified=%v, %d loads)\n",
		report.Key[0], report.Key[1], report.Key[2], report.Key[3],
		report.Verified, report.Loads)

	// --- The recorded traffic falls. ---
	fmt.Println("\n== decrypting the recorded traffic with the recovered key ==")
	ckRecovered := snowbma.CipherKeyToBytes(report.Key)
	for i, c := range wire {
		pt := append([]byte(nil), c.ct...)
		snowbma.UEA2Encrypt(ckRecovered, c.count, c.bearer, c.dir, pt)
		fmt.Printf("frame %d: %q\n", i, pt)
	}

	// Integrity protection falls with the same key material.
	msg := []byte("RRC: release connection")
	mac := snowbma.UIA2MAC(ckRecovered, 77, 0x616C7445, 1, msg)
	fmt.Printf("\nattacker can now also forge UIA2 MACs, e.g. %08x for %q\n", mac, msg)
}
