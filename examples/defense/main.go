// Defense is the designer-side playbook: protect a SNOW 3G design with
// the automatically planned Section VII-A countermeasure, then audit the
// result with the attacker's own tooling — candidate counts (Table VI),
// the census shortlist, the dual-output XOR search — and quantify both
// the security margin (Lemma VII-A) and the cost (LUTs, critical path).
package main

import (
	"fmt"
	"log"

	"snowbma"
)

func main() {
	key := snowbma.PaperKey

	fmt.Println("== baseline: unprotected implementation ==")
	base, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: key})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d LUTs, critical path %.3f ns\n", base.LUTs, base.CriticalPathNs)
	if rep, err := snowbma.RunAttack(base, snowbma.PaperIV, nil); err == nil {
		fmt.Printf("audit: ATTACK SUCCEEDS in %d loads — key %08x... exposed\n",
			rep.Loads, rep.Key[0])
	}

	fmt.Println("\n== hardening: auto-planned countermeasure for 2^128 ==")
	hard, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: key, AutoProtectBits: 128})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d LUTs (+%d), critical path %.3f ns (%+.3f ns)\n",
		hard.LUTs, hard.LUTs-base.LUTs, hard.CriticalPathNs,
		hard.CriticalPathNs-base.CriticalPathNs)

	fmt.Println("\n== auditing the hardened bitstream with attacker tooling ==")
	rows, err := snowbma.CountCandidates(hard, snowbma.PaperIV)
	if err != nil {
		log.Fatal(err)
	}
	feedbackHits := 0
	for _, r := range rows {
		if r.Path == "s15" {
			feedbackHits += r.Count
		}
	}
	fmt.Printf("Table-II-style feedback candidates: %d (unprotected design: 32 true targets)\n",
		feedbackHits)
	hits := snowbma.DualXORHits(hard.Device.ReadFlash(), 0, 0)
	fmt.Printf("dual-output XOR population: %d; locating 32 targets costs 2^%.1f\n",
		len(hits), snowbma.SearchEffortBits(32, len(hits)-32))

	fmt.Println("\n== the attack against the hardened device ==")
	if _, err := snowbma.RunAttack(hard, snowbma.PaperIV, nil); err != nil {
		fmt.Printf("attack fails: %v\n", err)
	} else {
		fmt.Println("UNEXPECTED: attack still succeeds")
	}
	fmt.Println("\nfunctionality check:", keystreamsEqual(
		hard.Keystream(snowbma.PaperIV, 4),
		snowbma.Keystream(key, snowbma.PaperIV, 4)))
}

func keystreamsEqual(a, b []uint32) string {
	for i := range a {
		if a[i] != b[i] {
			return "FAILED — hardening changed the cipher"
		}
	}
	return "hardened device still produces the correct keystream"
}
