package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"snowbma/internal/core"
)

func TestParseWords(t *testing.T) {
	got, err := parseWords("0x1,2,deadbeef,0", [4]uint32{9, 9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if got != [4]uint32{1, 2, 0xDEADBEEF, 0} {
		t.Fatalf("parseWords = %08x", got)
	}
	def := [4]uint32{7, 7, 7, 7}
	got, err = parseWords("", def)
	if err != nil || got != def {
		t.Fatal("empty string should yield the default")
	}
	if _, err := parseWords("1,2,3", def); err == nil {
		t.Fatal("accepted 3 words")
	}
	if _, err := parseWords("1,2,3,zz", def); err == nil {
		t.Fatal("accepted non-hex word")
	}
}

func TestSynthFindInspectExtractFlow(t *testing.T) {
	dir := t.TempDir()
	bit := filepath.Join(dir, "dut.bit")
	if err := cmdSynth([]string{"-o", bit}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(bit); err != nil || fi.Size() < 10000 {
		t.Fatalf("synth output missing or too small: %v", err)
	}
	if err := cmdFindLUT([]string{"-bits", bit, "-f", "(a1^a2^a3)a4a5!a6"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInspect([]string{"-bits", bit}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExtract([]string{"-bits", bit, "-census"}); err != nil {
		t.Fatal(err)
	}
	vcd := filepath.Join(dir, "dut.vcd")
	if err := cmdTrace([]string{"-o", vcd, "-n", "2"}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(vcd); err != nil || fi.Size() == 0 {
		t.Fatal("trace produced no waveform")
	}
}

func TestCmdKeystreamAndComplexity(t *testing.T) {
	if err := cmdKeystream([]string{"-n", "2", "-stuck-init", "-zero-lfsr"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdComplexity([]string{"-m", "32", "-bits", "128"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdFindLUT([]string{}); err == nil {
		t.Fatal("findlut without -bits should fail")
	}
	if err := cmdInspect([]string{}); err == nil {
		t.Fatal("inspect without -bits should fail")
	}
	if err := cmdExtract([]string{}); err == nil {
		t.Fatal("extract without -bits should fail")
	}
	if err := cmdFindLUT([]string{"-bits", "/nonexistent"}); err == nil {
		t.Fatal("findlut on missing file should fail")
	}
}

func TestCmdFlagValidation(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.bit")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		run  func() error
	}{
		{"findlut empty bitstream", func() error { return cmdFindLUT([]string{"-bits", empty}) }},
		{"inspect empty bitstream", func() error { return cmdInspect([]string{"-bits", empty}) }},
		{"extract empty bitstream", func() error { return cmdExtract([]string{"-bits", empty}) }},
		{"census empty bitstream", func() error { return cmdCensus([]string{"-bits", empty}) }},
		{"verify empty bitstream", func() error { return cmdVerify([]string{"-bits", empty}) }},
		{"diff empty bitstream", func() error { return cmdDiff([]string{"-a", empty, "-b", empty}) }},
		{"findlut negative -parallel", func() error {
			return cmdFindLUT([]string{"-bits", empty, "-parallel", "-3"})
		}},
		{"synth negative -pad", func() error { return cmdSynth([]string{"-pad", "-1", "-o", os.DevNull}) }},
		{"synth negative -autoprotect", func() error {
			return cmdSynth([]string{"-autoprotect", "-8", "-o", os.DevNull})
		}},
		{"keystream zero -n", func() error { return cmdKeystream([]string{"-n", "0"}) }},
		{"trace zero -n", func() error { return cmdTrace([]string{"-n", "0"}) }},
		{"census zero -min", func() error { return cmdCensus([]string{"-bits", empty, "-min", "0"}) }},
		{"verify zero -ivs", func() error { return cmdVerify([]string{"-bits", empty, "-ivs", "0"}) }},
		{"verify zero -n", func() error { return cmdVerify([]string{"-bits", empty, "-n", "-2"}) }},
		{"attack zero -lanes", func() error { return cmdAttack([]string{"-lanes", "0"}) }},
		{"attack negative -lanes", func() error { return cmdAttack([]string{"-lanes", "-4"}) }},
		{"attack oversized -lanes", func() error { return cmdAttack([]string{"-lanes", "257"}) }},
		{"census attack oversized -lanes", func() error {
			return cmdAttack([]string{"-census", "-lanes", "300"})
		}},
	} {
		if err := tc.run(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCmdFindLUTStatsAndParallel(t *testing.T) {
	dir := t.TempDir()
	bit := filepath.Join(dir, "dut.bit")
	if err := cmdSynth([]string{"-o", bit}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFindLUT([]string{"-bits", bit, "-stats", "-parallel", "2"}); err != nil {
		t.Fatalf("findlut -stats -parallel 2 failed: %v", err)
	}
}

func TestCmdAttackEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("attack CLI test skipped in -short mode")
	}
	if err := cmdAttack([]string{"-lanes", "32", "-stats"}); err != nil {
		t.Fatalf("attack command failed: %v", err)
	}
}

func TestCmdAttackLanesErrorMessage(t *testing.T) {
	// Lane validation is unified across CLI, facade, campaign and service:
	// the command wraps the shared core.ErrLanes instead of formatting its
	// own bound.
	err := cmdAttack([]string{"-lanes", "257"})
	if !errors.Is(err, core.ErrLanes) {
		t.Fatalf("attack -lanes 257 = %v, want core.ErrLanes", err)
	}
	if err := cmdCampaign([]string{"-lanes", "257", "-runs", "1"}); !errors.Is(err, core.ErrLanes) {
		t.Fatalf("campaign -lanes 257 = %v, want core.ErrLanes", err)
	}
}

func TestCmdRepro(t *testing.T) {
	if testing.Short() {
		t.Skip("repro runner skipped in -short mode")
	}
	if err := cmdRepro(nil); err != nil {
		t.Fatalf("repro runner failed: %v", err)
	}
}

func TestCmdVerifyAndDiff(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.bit")
	b := filepath.Join(dir, "b.bit")
	if err := cmdSynth([]string{"-o", a}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSynth([]string{"-o", b, "-key", "1,2,3,4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-bits", a, "-ivs", "2", "-n", "4"}); err != nil {
		t.Fatalf("verify of a healthy bitstream failed: %v", err)
	}
	// Wrong key must fail verification.
	if err := cmdVerify([]string{"-bits", b, "-ivs", "1", "-n", "2"}); err == nil {
		t.Fatal("verify accepted a device keyed differently from the model")
	}
	if err := cmdDiff([]string{"-a", a, "-b", b}); err != nil {
		t.Fatalf("diff failed: %v", err)
	}
	if err := cmdCensus([]string{"-bits", a, "-min", "16"}); err != nil {
		t.Fatalf("census failed: %v", err)
	}
}

func TestCmdExport(t *testing.T) {
	dir := t.TempDir()
	blif := filepath.Join(dir, "d.blif")
	st := filepath.Join(dir, "d.netlist")
	if err := cmdExport([]string{"-blif", blif, "-structural", st}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{blif, st} {
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Fatalf("export output %s missing", f)
		}
	}
	if err := cmdExport(nil); err == nil {
		t.Fatal("export with no outputs accepted")
	}
}
