package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"snowbma"
)

func TestCmdCensusCorpus(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "corpus.json")
	if err := cmdCensus([]string{"-corpus", "-n", "5", "-seed", "9", "-json", out, "-stats"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep snowbma.CorpusReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("corpus JSON report: %v", err)
	}
	if rep.Designs != 5 || len(rep.Results) != 5 {
		t.Fatalf("report covers %d designs (%d rows), want 5", rep.Designs, len(rep.Results))
	}
	if rep.Exposed+rep.Covered != rep.Designs {
		t.Fatalf("exposed %d + covered %d != designs %d", rep.Exposed, rep.Covered, rep.Designs)
	}

	// Directory ingest over one synthesized bitstream.
	bit := filepath.Join(dir, "dut.bit")
	if err := cmdSynth([]string{"-o", bit}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCensus([]string{"-corpus", "-dir", dir2Of(t, bit)}); err != nil {
		t.Fatal(err)
	}
}

// dir2Of copies the file into a fresh directory holding only bitstreams,
// so DirCorpus does not trip over the JSON report sitting next to it.
func dir2Of(t *testing.T, file string) string {
	t.Helper()
	d := t.TempDir()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(d, filepath.Base(file)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCmdCensusCorpusValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"zero designs", []string{"-corpus", "-n", "0"}},
		{"negative seed", []string{"-corpus", "-seed", "-3"}},
		{"negative parallel", []string{"-corpus", "-parallel", "-1"}},
		{"corpus with bits", []string{"-corpus", "-bits", "x.bit"}},
		{"missing dir", []string{"-corpus", "-dir", "/nonexistent-corpus-dir"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := cmdCensus(tc.args); err == nil {
				t.Fatalf("census %v should fail", tc.args)
			}
		})
	}
}
