// Command snowbma is the command-line front end of the reproduction:
// synthesize victim bitstreams, search them with FINDLUT, regenerate the
// paper's tables and run the complete key-recovery attack.
//
// Usage:
//
//	snowbma synth      [-protected] [-key k0,k1,k2,k3] [-pad N] [-seed N] [-o out.bit]
//	snowbma attack     [-protected] [-encrypted] [-census] [-lanes N] [-stats] [-trace file] [-key ...] [-iv ...] [-v]
//	snowbma campaign   [-runs N] [-parallel N] [-seed N] [-chaos] [-lanes N] [-json file]
//	snowbma findlut    -bits file [-f expr] [-parallel N] [-stats] [-trace file]
//	snowbma census     -bits file [-min N] | -corpus [-n N] [-seed N] [-dir dir] [-dedup=false] [-json file] [-stats]
//	snowbma table2     [-key ...] [-stats]
//	snowbma table6     [-key ...] [-stats]
//	snowbma keystream  [-key ...] [-iv ...] [-n 16] [-stuck-init] [-stuck-gen] [-zero-lfsr]
//	snowbma inspect    -bits file
//	snowbma complexity [-m 32] [-bits 128]
//	snowbma serve      [-addr host:port] [-workers N] [-queue N] [-drain 1m] [-store dir] [-tenants a=3,b=1] [-rig-latency 300ms] [-q]
//	snowbma fleet      -workers url1,url2,... [-addr host:port] [-health 250ms] [-lease 1s] [-q]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"math/rand"

	"snowbma"
	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/core"
	"snowbma/internal/device"
	"snowbma/internal/hdl"
	"snowbma/internal/mapper"
	"snowbma/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "synth":
		err = cmdSynth(args)
	case "attack":
		err = cmdAttack(args)
	case "findlut":
		err = cmdFindLUT(args)
	case "table2":
		err = cmdTable(args, false)
	case "table6":
		err = cmdTable(args, true)
	case "keystream":
		err = cmdKeystream(args)
	case "inspect":
		err = cmdInspect(args)
	case "extract":
		err = cmdExtract(args)
	case "trace":
		err = cmdTrace(args)
	case "census":
		err = cmdCensus(args)
	case "repro":
		err = cmdRepro(args)
	case "diff":
		err = cmdDiff(args)
	case "verify":
		err = cmdVerify(args)
	case "export":
		err = cmdExport(args)
	case "complexity":
		err = cmdComplexity(args)
	case "campaign":
		err = cmdCampaign(args)
	case "serve":
		err = cmdServe(args)
	case "fleet":
		err = cmdFleet(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "snowbma:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: snowbma <command> [flags]

commands:
  synth       synthesize a SNOW 3G victim bitstream
  attack      run the full bitstream modification attack
  findlut     search a bitstream for a Boolean function (Algorithm 1)
  table2      regenerate the Table II candidate counts (unprotected)
  table6      regenerate the Table VI counts + dual-XOR search (protected)
  keystream   run the software model (optionally faulted)
  inspect     dump the packet structure of a bitstream
  extract     decode all LUT truth tables from a bitstream ([14]-style)
  trace       run the device and dump a VCD waveform of its pins
  census      shortlist XOR-structured LUT classes; -corpus runs the census at scale
  repro       regenerate every paper table/figure in one run
  diff        classify the differences between two bitstreams by region
  verify      boot a bitstream and check it against the software model
  export      write the mapped design as BLIF and structural netlist
  complexity  countermeasure complexity analysis (Lemma VII-A)
  campaign    run a randomized attack campaign (optionally with chaos faults)
  serve       run the attack-as-a-service HTTP job engine
  fleet       shard jobs across serve workers with crash recovery`)
	os.Exit(2)
}

func parseWords(s string, def [4]uint32) ([4]uint32, error) {
	if s == "" {
		return def, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return def, fmt.Errorf("want 4 comma-separated hex words, got %q", s)
	}
	var out [4]uint32
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimPrefix(strings.TrimSpace(p), "0x"), 16, 32)
		if err != nil {
			return def, err
		}
		out[i] = uint32(v)
	}
	return out, nil
}

// readBitstream loads a bitstream argument, rejecting the two ways a
// path flag silently produces garbage downstream: an unset -bits flag
// and an existing-but-empty file (FINDLUT on zero bytes "succeeds" with
// zero matches, which reads like a clean negative result).
func readBitstream(cmd, path string) ([]byte, error) {
	if path == "" {
		return nil, fmt.Errorf("%s: -bits required (path to a bitstream file)", cmd)
	}
	bits, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(bits) == 0 {
		return nil, fmt.Errorf("%s: %s is empty (0 bytes) — not a bitstream", cmd, path)
	}
	return bits, nil
}

// ErrTracePath is the named validation error for the -trace flag, in
// the same spirit as core.ErrLanes: callers (and tests) can match it
// with errors.Is regardless of the wrapping command.
var ErrTracePath = errors.New("invalid -trace path")

// traceFlag registers the shared -trace flag.
func traceFlag(fs *flag.FlagSet) *string {
	return fs.String("trace", "", "write an NDJSON telemetry trace (phase spans + metrics) to this file")
}

// openTrace validates the -trace argument and opens the output file up
// front, so an unwritable path fails before any attack work instead of
// after it. An unset flag returns a nil file (tracing off); an
// explicitly empty or unwritable path is a named ErrTracePath error.
func openTrace(cmd string, fs *flag.FlagSet, path string) (*os.File, error) {
	set := false
	fs.Visit(func(fl *flag.Flag) {
		if fl.Name == "trace" {
			set = true
		}
	})
	if !set {
		return nil, nil
	}
	if path == "" {
		return nil, fmt.Errorf("%s: %w: path must not be empty", cmd, ErrTracePath)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("%s: %w: %v", cmd, ErrTracePath, err)
	}
	return f, nil
}

// writeTrace exports tel to the open trace file and closes it. Export
// and close errors fail the command — a truncated trace must not pass
// silently.
func writeTrace(f *os.File, tel *snowbma.Telemetry) error {
	if f == nil {
		return nil
	}
	if err := snowbma.WriteTrace(f, tel); err != nil {
		f.Close()
		return fmt.Errorf("writing trace %s: %w", f.Name(), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing trace %s: %w", f.Name(), err)
	}
	fmt.Printf("wrote trace %s\n", f.Name())
	return nil
}

// positive validates an integer flag that must be ≥ 1.
func positive(cmd, name string, v int) error {
	if v < 1 {
		return fmt.Errorf("%s: -%s must be at least 1, got %d", cmd, name, v)
	}
	return nil
}

func keyFlag(fs *flag.FlagSet) *string {
	return fs.String("key", "", "key words k0,k1,k2,k3 in hex (default: the paper's ETSI test key)")
}

func ivFlag(fs *flag.FlagSet) *string {
	return fs.String("iv", "", "IV words iv0,iv1,iv2,iv3 in hex (default: the paper's IV)")
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	protected := fs.Bool("protected", false, "apply the Section VII-A countermeasure")
	autoBits := fs.Int("autoprotect", 0, "plan the countermeasure automatically for this security level (bits)")
	pad := fs.Int("pad", 0, "extra empty fabric frames")
	out := fs.String("o", "snow3g.bit", "output file")
	seed := fs.Int64("seed", 0, "placement seed (0 picks the default)")
	keyStr := keyFlag(fs)
	_ = fs.Parse(args)
	if *pad < 0 {
		return fmt.Errorf("synth: -pad must be non-negative, got %d", *pad)
	}
	if *autoBits < 0 {
		return fmt.Errorf("synth: -autoprotect must be non-negative, got %d", *autoBits)
	}
	if err := validateSeed("synth", *seed); err != nil {
		return err
	}
	key, err := parseWords(*keyStr, snowbma.PaperKey)
	if err != nil {
		return err
	}
	v, err := snowbma.BuildVictim(snowbma.VictimConfig{
		Key: key, Protected: *protected, AutoProtectBits: *autoBits, PadFrames: *pad, Seed: *seed,
	})
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, v.Image, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d bytes, %d LUTs, depth %d, critical path %.3f ns (%s)\n",
		*out, len(v.Image), v.LUTs, v.Depth, v.CriticalPathNs, v.CriticalEndpoint)
	return nil
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	protected := fs.Bool("protected", false, "attack the protected implementation")
	encrypted := fs.Bool("encrypted", false, "victim uses an encrypted bitstream")
	verbose := fs.Bool("v", false, "log attack progress")
	census := fs.Bool("census", false, "use census-guided discovery instead of the Table II catalogue")
	lanes := fs.Int("lanes", snowbma.DefaultLanes, "candidate-sweep width: simulator lanes per fabric pass (1 = scalar, up to 256)")
	stats := fs.Bool("stats", false, "print scan-engine and batch-sweep counters even on failure")
	tracePath := traceFlag(fs)
	keyStr := keyFlag(fs)
	ivStr := ivFlag(fs)
	_ = fs.Parse(args)
	if err := core.ValidateLanes(*lanes); err != nil {
		return fmt.Errorf("attack: -lanes: %w", err)
	}
	traceFile, err := openTrace("attack", fs, *tracePath)
	if err != nil {
		return err
	}
	key, err := parseWords(*keyStr, snowbma.PaperKey)
	if err != nil {
		return err
	}
	iv, err := parseWords(*ivStr, snowbma.PaperIV)
	if err != nil {
		return err
	}
	cfg := snowbma.VictimConfig{Key: key, Protected: *protected}
	if *encrypted {
		cfg.Encrypt = &snowbma.EncryptionKeys{
			KE: [32]byte{0xE0, 0x01, 0x72}, KA: [32]byte{0xA4, 0x99, 0x55},
		}
	}
	victim, err := snowbma.BuildVictim(cfg)
	if err != nil {
		return err
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(f string, a ...any) { fmt.Printf("  [attack] "+f+"\n", a...) }
	}
	var tel *snowbma.Telemetry
	if traceFile != nil || *stats {
		tel = snowbma.NewTelemetry()
	}
	var rep *snowbma.Report
	if *census {
		rep, err = snowbma.RunCensusAttackTraced(victim, iv, logf, *lanes, tel)
	} else {
		rep, err = snowbma.RunAttackTraced(victim, iv, logf, *lanes, tel)
	}
	// The trace is written whatever the attack outcome — a failed run's
	// trace is exactly the one worth reading — and a truncated trace
	// fails the command even when the attack succeeded.
	if terr := writeTrace(traceFile, tel); terr != nil {
		return terr
	}
	if err != nil {
		if rep != nil {
			fmt.Print(report.CandidateTable(rep.CandidateTable))
			if *stats {
				fmt.Print(report.ScanStats(rep.Scan))
				fmt.Print(report.BatchStats(rep.Batch))
				fmt.Print(report.FabricStats(rep.Fabric))
				fmt.Print(report.Trace(tel))
			}
		}
		return fmt.Errorf("attack failed (as expected for -protected): %w", err)
	}
	// The success report carries the scan and batch-sweep sections.
	fmt.Print(report.Attack(rep))
	if *stats {
		fmt.Print(report.Trace(tel))
	}
	if *verbose {
		fmt.Println("\nidentified covers (Fig 5 analogue):")
		fmt.Print(report.Fig5(rep))
	}
	return nil
}

func cmdFindLUT(args []string) error {
	fs := flag.NewFlagSet("findlut", flag.ExitOnError)
	file := fs.String("bits", "", "bitstream file")
	expr := fs.String("f", "(a1^a2^a3)a4a5!a6", "Boolean function over a1..a6, or an INIT literal 64'h...")
	parallel := fs.Int("parallel", 0, "scan worker goroutines (0 = all CPUs)")
	stats := fs.Bool("stats", false, "print scan-engine counters")
	tracePath := traceFlag(fs)
	_ = fs.Parse(args)
	if *parallel < 0 {
		return fmt.Errorf("findlut: -parallel must be non-negative, got %d (0 means all CPUs)", *parallel)
	}
	traceFile, err := openTrace("findlut", fs, *tracePath)
	if err != nil {
		return err
	}
	bits, err := readBitstream("findlut", *file)
	if err != nil {
		return err
	}
	var tel *snowbma.Telemetry
	if traceFile != nil || *stats {
		tel = snowbma.NewTelemetry()
	}
	hits, st, err := snowbma.FindFunctionTraced(bits, *expr, *parallel, tel)
	if err != nil {
		return err
	}
	if terr := writeTrace(traceFile, tel); terr != nil {
		return terr
	}
	fmt.Printf("%d candidate LUTs for %s:\n", len(hits), *expr)
	for _, l := range hits {
		fmt.Printf("  byte index %d\n", l)
	}
	if *stats {
		fmt.Print(report.ScanStats(st))
		fmt.Print(report.Trace(tel))
	}
	return nil
}

func cmdTable(args []string, protected bool) error {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	keyStr := keyFlag(fs)
	stats := fs.Bool("stats", false, "print scan-engine counters")
	_ = fs.Parse(args)
	key, err := parseWords(*keyStr, snowbma.PaperKey)
	if err != nil {
		return err
	}
	victim, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: key, Protected: protected})
	if err != nil {
		return err
	}
	rows, scan, err := snowbma.CountCandidatesStats(victim, snowbma.PaperIV)
	if err != nil {
		return err
	}
	fmt.Print(report.CandidateTable(rows))
	if protected {
		flash := victim.Device.ReadFlash()
		all, dualScan := snowbma.DualXORHitsStats(flash, 0, 0)
		window := snowbma.DualXORHits(flash, 0, 200000)
		fmt.Printf("\ndual-output XOR search (Section VII-B):\n")
		fmt.Printf("  unconstrained: %d hits (paper: 481)\n", len(all))
		fmt.Printf("  first 200000 byte positions: %d hits (paper: 203)\n", len(window))
		fmt.Printf("  selection effort: 2^%.1f (paper: C(171,32) ≈ 2^115)\n",
			snowbma.SearchEffortBits(32, len(all)-32))
		scan.Accumulate(dualScan)
	}
	if *stats {
		fmt.Print(report.ScanStats(scan))
	}
	return nil
}

func cmdKeystream(args []string) error {
	fs := flag.NewFlagSet("keystream", flag.ExitOnError)
	keyStr := keyFlag(fs)
	ivStr := ivFlag(fs)
	n := fs.Int("n", 16, "keystream words")
	stuckInit := fs.Bool("stuck-init", false, "FSM output stuck at 0 during initialization")
	stuckGen := fs.Bool("stuck-gen", false, "FSM output stuck at 0 during keystream generation")
	zeroLFSR := fs.Bool("zero-lfsr", false, "load the all-0 vector instead of γ(K, IV)")
	_ = fs.Parse(args)
	if err := positive("keystream", "n", *n); err != nil {
		return err
	}
	key, err := parseWords(*keyStr, snowbma.PaperKey)
	if err != nil {
		return err
	}
	iv, err := parseWords(*ivStr, snowbma.PaperIV)
	if err != nil {
		return err
	}
	z := snowbma.FaultyKeystream(key, iv, *stuckInit, *stuckGen, *zeroLFSR, *n)
	fmt.Print(report.Keystream(z))
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	file := fs.String("bits", "", "bitstream file")
	_ = fs.Parse(args)
	bits, err := readBitstream("inspect", *file)
	if err != nil {
		return err
	}
	if bitstream.IsEncrypted(bits) {
		fmt.Println("encrypted image (AES-256-CBC + HMAC envelope, Fig 1)")
		return nil
	}
	p, err := bitstream.ParsePackets(bits)
	if err != nil {
		return err
	}
	fmt.Printf("total size:   %d bytes\n", len(bits))
	fmt.Printf("sync word at: byte %d\n", p.SyncOffset-4)
	fmt.Printf("FDRI data:    offset %d, %d bytes (%d frames of %d words)\n",
		p.FDRIOffset, p.FDRILen, p.FDRILen/bitstream.FrameBytes, bitstream.WordsPerFrame)
	if p.CRCOffset >= 0 {
		fmt.Printf("CRC write at: byte %d, value %08x", p.CRCOffset, p.CRCValue)
		if err := bitstream.CheckCRC(bits); err != nil {
			fmt.Printf("  (INVALID: %v)", err)
		} else {
			fmt.Printf("  (valid)")
		}
		fmt.Println()
	} else {
		fmt.Println("CRC:          disabled (no 0x30000001 write)")
	}
	return nil
}

func cmdExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	file := fs.String("bits", "", "bitstream file")
	census := fs.Bool("census", false, "print the P-class census instead of each LUT")
	_ = fs.Parse(args)
	bits, err := readBitstream("extract", *file)
	if err != nil {
		return err
	}
	luts, err := bitstream.ExtractLUTs(bits)
	if err != nil {
		return err
	}
	if *census {
		hist := bitstream.Histogram(luts)
		fmt.Printf("%d LUTs in %d P-equivalence classes\n", len(luts), len(hist))
		type row struct {
			n     int
			canon boolfn.TT
		}
		var rows []row
		for canon, n := range hist {
			rows = append(rows, row{n, canon})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
		for _, r := range rows {
			if r.n >= 8 {
				fmt.Printf("  %4d × %s\n", r.n, boolfn.Minimize(r.canon))
			}
		}
		return nil
	}
	fmt.Printf("%d occupied LUT slots:\n", len(luts))
	for _, l := range luts {
		kind := "single"
		if l.Dual {
			kind = "dual?"
		}
		fmt.Printf("  frame %3d slot %2d %s %-6s %s = %s\n",
			l.Loc.Frame, l.Loc.Slot, l.Loc.Type, kind, l.Init, boolfn.Minimize(l.Init))
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("o", "snow3g.vcd", "output VCD file")
	n := fs.Int("n", 8, "keystream words to generate while tracing")
	keyStr := keyFlag(fs)
	ivStr := ivFlag(fs)
	_ = fs.Parse(args)
	if err := positive("trace", "n", *n); err != nil {
		return err
	}
	key, err := parseWords(*keyStr, snowbma.PaperKey)
	if err != nil {
		return err
	}
	iv, err := parseWords(*ivStr, snowbma.PaperIV)
	if err != nil {
		return err
	}
	victim, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: key})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	ins, outs := hdl.KeystreamPins()
	tr := hdl.NewTraceDevice(victim.Device, f, ins, outs)
	hdl.GenerateKeystream(tr, iv, *n)
	cycles, err := tr.Close()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d cycles, %d signals\n", *out, cycles, len(ins)+len(outs))
	return nil
}

func cmdCensus(args []string) error {
	fs := flag.NewFlagSet("census", flag.ExitOnError)
	file := fs.String("bits", "", "bitstream file")
	min := fs.Int("min", 8, "minimum class population")
	tracePath := traceFlag(fs)
	corpusMode := fs.Bool("corpus", false, "census a whole corpus of designs instead of one bitstream")
	n := fs.Int("n", 50, "corpus mode: seeded designs to synthesize")
	seed := fs.Int64("seed", 1, "corpus mode: master seed; identical seeds reproduce the report")
	dir := fs.String("dir", "", "corpus mode: census every bitstream file of this directory instead of synthesizing")
	dedup := fs.Bool("dedup", true, "corpus mode: content-addressed frame dedup")
	parallel := fs.Int("parallel", 0, "corpus mode: scan worker-pool width (0 = all CPUs)")
	jsonOut := fs.String("json", "", "corpus mode: write the corpus report as JSON to this file")
	stats := fs.Bool("stats", false, "corpus mode: print accumulated scan-engine counters")
	_ = fs.Parse(args)
	if *corpusMode {
		if *file != "" {
			return errors.New("census: -corpus and -bits are mutually exclusive (use -dir to ingest files)")
		}
		return runCensusCorpus(fs, corpusOpts{
			n: *n, seed: *seed, dir: *dir, dedup: *dedup, parallel: *parallel,
			jsonOut: *jsonOut, stats: *stats, tracePath: *tracePath,
		})
	}
	if err := positive("census", "min", *min); err != nil {
		return err
	}
	traceFile, err := openTrace("census", fs, *tracePath)
	if err != nil {
		return err
	}
	bits, err := readBitstream("census", *file)
	if err != nil {
		return err
	}
	var tel *snowbma.Telemetry
	if traceFile != nil {
		tel = snowbma.NewTelemetry()
	}
	span := tel.StartSpan("census.scan")
	classes, err := core.CensusCandidates(bits, *min)
	span.SetAttr("bytes", len(bits))
	span.SetAttr("classes", len(classes))
	span.End()
	if err != nil {
		return err
	}
	tel.Gauge("census.classes").Set(float64(len(classes)))
	if terr := writeTrace(traceFile, tel); terr != nil {
		return terr
	}
	fmt.Printf("%d XOR-structured classes with ≥ %d members:\n", len(classes), *min)
	for _, c := range classes {
		fmt.Printf("  %4d × %s  (xor groups %v)\n", c.Count, c.Expr, c.Groups)
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	blifOut := fs.String("blif", "", "write the mapped LUT network as BLIF")
	structOut := fs.String("structural", "", "write the gate-level netlist as structural text")
	protected := fs.Bool("protected", false, "export the protected variant")
	keyStr := keyFlag(fs)
	_ = fs.Parse(args)
	key, err := parseWords(*keyStr, snowbma.PaperKey)
	if err != nil {
		return err
	}
	d := hdl.Build(hdl.Config{Key: key, Protected: *protected})
	opts := mapper.Options{K: 6, Boundaries: d.Boundaries}
	if *protected {
		opts.TrivialCuts = d.TrivialCuts
	}
	r, err := mapper.Map(d.N, opts)
	if err != nil {
		return err
	}
	if *blifOut != "" {
		f, err := os.Create(*blifOut)
		if err != nil {
			return err
		}
		if err := mapper.WriteBLIF(f, r, "snow3g"); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d LUTs)\n", *blifOut, len(r.LUTs))
	}
	if *structOut != "" {
		f, err := os.Create(*structOut)
		if err != nil {
			return err
		}
		if err := d.N.WriteStructural(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d nodes)\n", *structOut, d.N.NumNodes())
	}
	if *blifOut == "" && *structOut == "" {
		return fmt.Errorf("export: nothing to do; pass -blif and/or -structural")
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	file := fs.String("bits", "", "bitstream file")
	n := fs.Int("n", 16, "keystream words per IV")
	trials := fs.Int("ivs", 8, "random IVs to compare")
	keyStr := keyFlag(fs)
	_ = fs.Parse(args)
	if err := positive("verify", "n", *n); err != nil {
		return err
	}
	if err := positive("verify", "ivs", *trials); err != nil {
		return err
	}
	bits, err := readBitstream("verify", *file)
	if err != nil {
		return err
	}
	key, err := parseWords(*keyStr, snowbma.PaperKey)
	if err != nil {
		return err
	}
	dev := device.New([32]byte{})
	if err := dev.Program(bits); err != nil {
		return fmt.Errorf("verify: configuration failed: %w", err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < *trials; trial++ {
		iv := snowbma.IV{rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32()}
		got := hdl.GenerateKeystream(dev, iv, *n)
		want := snowbma.Keystream(key, iv, *n)
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("verify: IV %08x...: word %d is %08x, model says %08x",
					iv[0], i+1, got[i], want[i])
			}
		}
	}
	fmt.Printf("verified: device matches the SNOW 3G model on %d IVs x %d words\n", *trials, *n)
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fileA := fs.String("a", "", "first bitstream")
	fileB := fs.String("b", "", "second bitstream")
	_ = fs.Parse(args)
	if *fileA == "" || *fileB == "" {
		return fmt.Errorf("diff: -a and -b required")
	}
	a, err := os.ReadFile(*fileA)
	if err != nil {
		return err
	}
	b, err := os.ReadFile(*fileB)
	if err != nil {
		return err
	}
	if len(a) == 0 || len(b) == 0 {
		return fmt.Errorf("diff: refusing to compare an empty bitstream file")
	}
	rep, err := core.Diff(a, b)
	if err != nil {
		return err
	}
	fmt.Println("differing bytes by region:")
	for _, region := range []core.DiffRegion{core.DiffPackets, core.DiffHeaderFrame,
		core.DiffCLB, core.DiffDescription, core.DiffBRAM} {
		if n := rep.Bytes[region]; n > 0 {
			fmt.Printf("  %-12s %d\n", region, n)
		}
	}
	if len(rep.LUTSlots) > 0 {
		fmt.Printf("modified LUT slots (%d):\n", len(rep.LUTSlots))
		for _, l := range rep.LUTSlots {
			fmt.Printf("  frame %3d slot %2d (%s)\n", l.Frame, l.Slot, l.Type)
		}
	}
	if len(rep.BRAMOffsets) > 0 {
		fmt.Printf("modified BRAM bytes: %d (first at region offset %d)\n",
			len(rep.BRAMOffsets), rep.BRAMOffsets[0])
	}
	return nil
}

func cmdComplexity(args []string) error {
	fs := flag.NewFlagSet("complexity", flag.ExitOnError)
	m := fs.Int("m", 32, "number of target nodes with the same function")
	bits := fs.Int("bits", 128, "required security level (bits)")
	_ = fs.Parse(args)
	fmt.Printf("targets m = %d, required security 2^%d\n", *m, *bits)
	fmt.Printf("paper lower bound on decoy ratio: 16/e - 1 ≈ 4.89\n")
	x := snowbma.MinDecoyRatio(*m, *bits)
	fmt.Printf("minimal integer decoy ratio x: %d (r = %d decoys)\n", x, *m*x)
	fmt.Println("\n  x |  r   | Lemma VII-A bound | exact C(m+r, m)")
	for i := 1; i <= x+2; i++ {
		r := *m * i
		fmt.Printf("  %d | %4d | 2^%-15.1f | 2^%.1f\n",
			i, r, snowbma.LemmaBoundBits(*m, r), snowbma.SearchEffortBits(*m, r))
	}
	return nil
}
