package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"snowbma"
	"snowbma/internal/report"
)

// corpusOpts carries the census -corpus flag values out of cmdCensus.
type corpusOpts struct {
	n         int
	seed      int64
	dir       string
	dedup     bool
	parallel  int
	jsonOut   string
	stats     bool
	tracePath string
}

// runCensusCorpus is the census-at-scale mode of the census subcommand:
// it streams a corpus — n seeded synthesized designs, or every bitstream
// file of -dir — through one shared scan engine and prints the
// fleet-wide vulnerability report.
func runCensusCorpus(fs *flag.FlagSet, o corpusOpts) error {
	if o.dir == "" {
		if o.n < 1 {
			return fmt.Errorf("census: -n must be at least 1, got %d", o.n)
		}
		if err := validateSeed("census", o.seed); err != nil {
			return err
		}
	}
	if o.parallel < 0 {
		return fmt.Errorf("census: -parallel must be non-negative, got %d (0 means all CPUs)", o.parallel)
	}
	traceFile, err := openTrace("census", fs, o.tracePath)
	if err != nil {
		return err
	}

	var src snowbma.CorpusSource
	if o.dir != "" {
		if src, err = snowbma.DirCorpus(o.dir); err != nil {
			return err
		}
	} else {
		src = snowbma.SeededCorpus(o.n, o.seed)
	}

	opts := []snowbma.Option{
		snowbma.WithDedup(o.dedup),
		snowbma.WithParallel(o.parallel),
	}
	var tel *snowbma.Telemetry
	if traceFile != nil {
		tel = snowbma.NewTelemetry()
		opts = append(opts, snowbma.WithTelemetry(tel))
	}
	rep, err := snowbma.CensusCorpus(context.Background(), src, opts...)
	if err != nil {
		return err
	}
	if terr := writeTrace(traceFile, tel); terr != nil {
		return terr
	}
	if o.jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("census: encoding corpus report: %w", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(o.jsonOut, data, 0o644); err != nil {
			return fmt.Errorf("census: writing corpus report: %w", err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", o.jsonOut, len(data))
	}
	fmt.Print(report.Corpus(rep))
	if o.stats {
		fmt.Print(report.ScanStats(rep.Scan))
	}
	return nil
}
