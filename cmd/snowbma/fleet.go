package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"snowbma/internal/fleet"
)

// cmdFleet runs the sharded-fleet coordinator: jobs submitted to its
// HTTP API are routed across `snowbma serve` worker processes by
// consistent hash of the victim design, with health checks, lease-based
// ownership and reassignment when a worker dies. Workers are named
// w0, w1, ... in the order given.
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8348", "coordinator listen address")
	workersFlag := fs.String("workers", "", "comma-separated worker base URLs (or name=url pairs)")
	health := fs.Duration("health", fleet.DefaultHealthInterval, "worker health-check interval")
	lease := fs.Duration("lease", 0, "job lease TTL before reassignment (0 = 4x health interval)")
	quiet := fs.Bool("q", false, "suppress fleet event logging")
	_ = fs.Parse(args)
	if *workersFlag == "" {
		return fmt.Errorf("fleet: -workers required (comma-separated worker URLs; start them with `snowbma serve`)")
	}
	if *health <= 0 {
		return fmt.Errorf("fleet: -health must be positive, got %v", *health)
	}
	workers := map[string]string{}
	for i, part := range strings.Split(*workersFlag, ",") {
		part = strings.TrimSpace(part)
		name, url, ok := strings.Cut(part, "=")
		if !ok {
			name, url = fmt.Sprintf("w%d", i), part
		}
		if name == "" || url == "" {
			return fmt.Errorf("fleet: bad -workers entry %q", part)
		}
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		workers[name] = strings.TrimSuffix(url, "/")
	}
	logf := func(f string, a ...any) { fmt.Fprintf(os.Stderr, "[fleet] "+f+"\n", a...) }
	if *quiet {
		logf = func(string, ...any) {}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	c := fleet.New(fleet.Config{
		Workers:        workers,
		HealthInterval: *health,
		LeaseTTL:       *lease,
		Logf:           logf,
	})
	srv := &http.Server{Handler: c.Handler()}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logf("coordinating %d workers on %s", len(workers), ln.Addr())

	select {
	case sig := <-stop:
		logf("received %v, stopping", sig)
	case err := <-errc:
		c.Shutdown(context.Background()) //nolint:errcheck
		return fmt.Errorf("fleet: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.Shutdown(ctx) }()
	if err := c.Shutdown(ctx); err != nil {
		<-httpDone
		return fmt.Errorf("fleet: shutdown: %w", err)
	}
	if err := <-httpDone; err != nil {
		logf("http shutdown: %v", err)
	}
	logf("stopped")
	return nil
}
