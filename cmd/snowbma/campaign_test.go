package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestCmdCampaignFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want error
	}{
		{"negative seed", []string{"-runs", "1", "-seed", "-1"}, ErrSeedFlag},
		{"very negative seed", []string{"-runs", "1", "-seed", "-999999"}, ErrSeedFlag},
		{"chaos without runs", []string{"-chaos"}, ErrChaosFlag},
		{"chaos with only seed", []string{"-chaos", "-seed", "3"}, ErrChaosFlag},
		{"zero runs", []string{"-runs", "0"}, ErrRunsFlag},
		{"negative runs", []string{"-runs", "-5"}, ErrRunsFlag},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := cmdCampaign(tc.args)
			if !errors.Is(err, tc.want) {
				t.Fatalf("cmdCampaign(%v) = %v, want %v", tc.args, err, tc.want)
			}
		})
	}
	// Precedence: chaos-without-runs fires before the runs bound, so the
	// caller is told about the missing contract first.
	if err := cmdCampaign([]string{"-chaos", "-seed", "-1"}); !errors.Is(err, ErrChaosFlag) {
		t.Fatalf("chaos+bad seed = %v, want ErrChaosFlag first", err)
	}
	// -chaos with an explicit -runs is the supported spelling; the runs
	// value itself must still validate.
	if err := cmdCampaign([]string{"-chaos", "-runs", "0"}); !errors.Is(err, ErrRunsFlag) {
		t.Fatalf("chaos with zero runs = %v, want ErrRunsFlag", err)
	}
	if err := cmdCampaign([]string{"-runs", "1", "-parallel", "-2"}); err == nil {
		t.Fatal("negative -parallel accepted")
	}
	if err := cmdCampaign([]string{"-runs", "1", "-lanes", "257"}); err == nil {
		t.Fatal("oversized -lanes accepted")
	}
}

func TestCmdSynthSeedValidation(t *testing.T) {
	if err := cmdSynth([]string{"-seed", "-1", "-o", os.DevNull}); !errors.Is(err, ErrSeedFlag) {
		t.Fatalf("synth -seed -1 = %v, want ErrSeedFlag", err)
	}
}

func TestCmdCampaignEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign CLI test skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "campaign.json")
	if err := cmdCampaign([]string{"-runs", "3", "-seed", "8", "-parallel", "1", "-json", out}); err != nil {
		t.Fatalf("campaign run failed: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("campaign JSON not written: %v", err)
	}
	var rep struct {
		Schema  int `json:"schema"`
		Runs    int `json:"runs"`
		Results []struct {
			Verdict string `json:"verdict"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("campaign JSON does not parse: %v", err)
	}
	if rep.Schema != 1 || rep.Runs != 3 || len(rep.Results) != 3 {
		t.Fatalf("campaign JSON shape wrong: schema=%d runs=%d results=%d",
			rep.Schema, rep.Runs, len(rep.Results))
	}
}
