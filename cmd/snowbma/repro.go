package main

import (
	"flag"
	"fmt"

	"snowbma"
	"snowbma/internal/hdl"
	"snowbma/internal/mapper"
	"snowbma/internal/report"
)

// cmdRepro regenerates every table and figure of the paper in one run —
// the executable companion of EXPERIMENTS.md.
func cmdRepro(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ExitOnError)
	_ = fs.Parse(args)

	fmt.Println("=== Table I: ξ LUT bit permutation ===")
	fmt.Println("pinned by TestXiTableIStructure (64/64 rows + closed form); spot row: F[0] → B[63]")

	fmt.Println("\n=== synthesizing victims (unprotected / protected) ===")
	unprot, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: snowbma.PaperKey})
	if err != nil {
		return err
	}
	prot, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: snowbma.PaperKey, Protected: true})
	if err != nil {
		return err
	}
	fmt.Printf("unprotected: %d bytes, %d LUTs, depth %d\n", len(unprot.Image), unprot.LUTs, unprot.Depth)
	fmt.Printf("protected:   %d bytes, %d LUTs, depth %d\n", len(prot.Image), prot.LUTs, prot.Depth)

	fmt.Println("\n=== Table II: candidate counts (unprotected) ===")
	rowsU, err := snowbma.CountCandidates(unprot, snowbma.PaperIV)
	if err != nil {
		return err
	}
	fmt.Print(report.CandidateTable(rowsU))

	fmt.Println("\n=== attack (Sections VI-C/D, Tables III, IV, V) ===")
	rep, err := snowbma.RunAttack(unprot, snowbma.PaperIV, nil)
	if err != nil {
		return err
	}
	fmt.Print(report.Attack(rep))
	fmt.Println("\nidentified covers (Fig 5 analogue, LUT1 excerpt):")
	excerpt := *rep
	if len(excerpt.LUT1) > 4 {
		excerpt.LUT1 = excerpt.LUT1[:4]
	}
	if len(excerpt.LUT2) > 2 {
		excerpt.LUT2 = excerpt.LUT2[:2]
	}
	if len(excerpt.LUT3) > 2 {
		excerpt.LUT3 = excerpt.LUT3[:2]
	}
	fmt.Print(report.Fig5(&excerpt))

	fmt.Println("\n=== Table VI: candidate counts (protected) + Section VII-B search ===")
	rowsP, err := snowbma.CountCandidates(prot, snowbma.PaperIV)
	if err != nil {
		return err
	}
	fmt.Print(report.CandidateTable(rowsP))
	hits := snowbma.DualXORHits(prot.Device.ReadFlash(), 0, 0)
	fmt.Printf("dual-output XOR hits: %d (paper: 481); selection effort 2^%.1f (paper: 2^115)\n",
		len(hits), snowbma.SearchEffortBits(32, len(hits)-32))
	if _, err := snowbma.RunAttack(prot, snowbma.PaperIV, nil); err != nil {
		fmt.Printf("attack on protected design fails: %v\n", err)
	} else {
		fmt.Println("UNEXPECTED: attack succeeded on the protected design")
	}

	fmt.Println("\n=== Section VII-A: timing (paper: 6.313 ns → 7.514 ns) ===")
	for _, variant := range []struct {
		name      string
		protected bool
	}{{"unprotected", false}, {"protected", true}} {
		d := hdl.Build(hdl.Config{Key: snowbma.PaperKey, Protected: variant.protected})
		opts := mapper.Options{K: 6, Boundaries: d.Boundaries}
		if variant.protected {
			opts.TrivialCuts = d.TrivialCuts
		}
		r, err := mapper.Map(d.N, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%s slowest paths:\n%s", variant.name,
			report.Timing(r.TopPaths(mapper.DefaultDelays(), 3)))
	}

	fmt.Println("\n=== Section VII-A: Lemma bound (x ≥ 16/e − 1 ≈ 4.9) ===")
	fmt.Printf("minimal decoy ratio for 2^128 at m=32: x = %d\n", snowbma.MinDecoyRatio(32, 128))
	for x := 4; x <= 6; x++ {
		fmt.Printf("  x=%d: bound 2^%.1f, exact 2^%.1f\n",
			x, snowbma.LemmaBoundBits(32, 32*x), snowbma.SearchEffortBits(32, 32*x))
	}
	fmt.Println("\nall artefacts regenerated; see EXPERIMENTS.md for the paper comparison")
	return nil
}
