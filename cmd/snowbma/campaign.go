package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"snowbma"
	"snowbma/internal/core"
	"snowbma/internal/report"
)

var (
	// ErrSeedFlag is the named validation error for a negative -seed:
	// scenario generation treats the seed as a reproducibility handle,
	// and a negative one is invariably a mistyped flag rather than an
	// intentional campaign identity.
	ErrSeedFlag = errors.New("invalid -seed value")
	// ErrChaosFlag is the named validation error for -chaos without an
	// explicit -runs: chaos campaigns assert statistical properties, so
	// the caller must say how many scenarios back the assertion.
	ErrChaosFlag = errors.New("-chaos requires an explicit -runs")
	// ErrRunsFlag is the named validation error for a non-positive -runs.
	ErrRunsFlag = errors.New("invalid -runs value")
)

// flagSet reports whether the named flag was passed explicitly.
func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(fl *flag.Flag) {
		if fl.Name == name {
			set = true
		}
	})
	return set
}

// validateSeed rejects negative -seed values with the named error.
func validateSeed(cmd string, seed int64) error {
	if seed < 0 {
		return fmt.Errorf("%s: %w: must be non-negative, got %d", cmd, ErrSeedFlag, seed)
	}
	return nil
}

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	runs := fs.Int("runs", 100, "number of randomized scenarios to execute")
	parallel := fs.Int("parallel", 0, "worker-pool width (0 = all CPUs)")
	seed := fs.Int64("seed", 1, "master seed; identical seeds reproduce the report byte for byte")
	chaos := fs.Bool("chaos", false, "mix seeded fault-injection scenarios into the campaign")
	jsonOut := fs.String("json", "", "write the campaign report as JSON to this file")
	lanes := fs.Int("lanes", 0, "pin the candidate-sweep width for every scenario (0 = randomize)")
	_ = fs.Parse(args)
	if *chaos && !flagSet(fs, "runs") {
		return fmt.Errorf("campaign: %w (say how many scenarios back the chaos assertion)", ErrChaosFlag)
	}
	if *runs < 1 {
		return fmt.Errorf("campaign: %w: must be at least 1, got %d", ErrRunsFlag, *runs)
	}
	if err := validateSeed("campaign", *seed); err != nil {
		return err
	}
	if *parallel < 0 {
		return fmt.Errorf("campaign: -parallel must be non-negative, got %d (0 means all CPUs)", *parallel)
	}
	// 0 means "randomize per scenario"; anything else must be a valid
	// sweep width, checked by the same validator every layer shares.
	if *lanes != 0 {
		if err := core.ValidateLanes(*lanes); err != nil {
			return fmt.Errorf("campaign: -lanes: %w", err)
		}
	}
	tel := snowbma.NewTelemetry()
	rep, err := snowbma.RunCampaign(snowbma.CampaignConfig{
		Runs: *runs, Parallel: *parallel, Seed: *seed, Chaos: *chaos, Lanes: *lanes, Tel: tel,
	})
	if err != nil {
		return err
	}
	if *jsonOut != "" {
		data, err := rep.JSON()
		if err != nil {
			return fmt.Errorf("campaign: encoding report: %w", err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return fmt.Errorf("campaign: writing report: %w", err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *jsonOut, len(data))
	}
	fmt.Print(report.Campaign(rep))
	if !rep.Healthy() {
		return fmt.Errorf("campaign: %d invariant violations, %d unexpected verdicts",
			rep.Aggregate.InvariantViolations, rep.Aggregate.Unexpected)
	}
	return nil
}
