package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"snowbma/internal/service"
	"snowbma/internal/store"
)

// ErrServeFlag is the named validation error for serve's pool-shape
// flags, matchable with errors.Is regardless of which flag tripped it.
var ErrServeFlag = errors.New("invalid serve flag")

// cmdServe runs the attack-as-a-service HTTP endpoint: a bounded
// worker pool consuming attack/census/findlut/campaign jobs from a
// bounded queue, with job lifecycle endpoints, /metrics and /healthz.
// SIGINT/SIGTERM triggers a graceful drain bounded by -drain.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8347", "listen address")
	workers := fs.Int("workers", 0, "worker-pool width (0 = min(NumCPU, 4))")
	queue := fs.Int("queue", 0, "bounded job-queue depth (0 = 16)")
	cache := fs.Int("cache", 0, "victim build-cache capacity (0 = default)")
	drain := fs.Duration("drain", time.Minute, "graceful-shutdown drain deadline")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/")
	quiet := fs.Bool("q", false, "suppress job lifecycle logging")
	storeDir := fs.String("store", "", "durable job store directory (WAL); restart replays incomplete jobs")
	tenants := fs.String("tenants", "", "tenant contracts: name=weight[:maxqueued[:priority]],... (unlisted tenants get weight 1)")
	rigLatency := fs.Duration("rig-latency", 0, "modelled per-job occupancy of one physical attack rig (0 = off)")
	_ = fs.Parse(args)
	for _, f := range []struct {
		name string
		v    int
	}{{"workers", *workers}, {"queue", *queue}, {"cache", *cache}} {
		if f.v < 0 {
			return fmt.Errorf("serve: %w: -%s must be non-negative, got %d (0 means the default)",
				ErrServeFlag, f.name, f.v)
		}
	}
	if *drain <= 0 {
		return fmt.Errorf("serve: %w: -drain must be positive, got %v", ErrServeFlag, *drain)
	}
	logf := func(f string, a ...any) { fmt.Fprintf(os.Stderr, "[serve] "+f+"\n", a...) }
	if *quiet {
		logf = func(string, ...any) {}
	}
	if *rigLatency < 0 {
		return fmt.Errorf("serve: %w: -rig-latency must be non-negative, got %v", ErrServeFlag, *rigLatency)
	}
	tc, err := parseTenants(*tenants)
	if err != nil {
		return fmt.Errorf("serve: %w: -tenants: %v", ErrServeFlag, err)
	}
	cfg := service.Config{
		Workers: *workers, QueueDepth: *queue, CacheSize: *cache, Logf: logf,
		Tenants: tc, RigLatency: *rigLatency,
	}
	if *storeDir != "" {
		st, err := store.OpenDir(*storeDir)
		if err != nil {
			return fmt.Errorf("serve: open store: %w", err)
		}
		cfg.Store = st
		logf("durable store at %s (%d records replayed on open)", st.Path(), st.Count())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return serveOn(ln, cfg, *drain, *pprofOn, logf, nil)
}

// parseTenants decodes the -tenants flag: a comma-separated list of
// name=weight[:maxqueued[:priority]] contracts.
func parseTenants(s string) (map[string]service.TenantConfig, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]service.TenantConfig{}
	for _, part := range strings.Split(s, ",") {
		name, contract, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("want name=weight[:maxqueued[:priority]], got %q", part)
		}
		fields := strings.Split(contract, ":")
		if len(fields) > 3 {
			return nil, fmt.Errorf("too many fields in %q", part)
		}
		var tc service.TenantConfig
		for i, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("%q: %v", part, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("%q: negative value", part)
			}
			switch i {
			case 0:
				tc.Weight = v
			case 1:
				tc.MaxQueued = v
			case 2:
				tc.Priority = v
			}
		}
		out[name] = tc
	}
	return out, nil
}

// serveOn runs the engine's HTTP handler on an already-bound listener
// until a termination signal (or a send on stop, which tests use in
// place of SIGINT), then drains the job queue within the deadline. When
// pprofOn is set, the Go profiling endpoints mount under /debug/pprof/
// (explicit registrations on the engine mux — nothing rides the
// package-global DefaultServeMux, and nothing is exposed by default).
func serveOn(ln net.Listener, cfg service.Config, drain time.Duration,
	pprofOn bool, logf func(string, ...any), stop chan os.Signal) error {
	eng, err := service.Open(cfg)
	if err != nil {
		ln.Close()
		return fmt.Errorf("serve: %w", err)
	}
	handler := eng.Handler()
	if pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("GET /debug/pprof/", httppprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", httppprof.Trace)
		handler = mux
		logf("pprof profiling enabled under /debug/pprof/")
	}
	srv := &http.Server{Handler: handler}
	if stop == nil {
		stop = make(chan os.Signal, 1)
	}
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logf("listening on %s", ln.Addr())

	select {
	case sig := <-stop:
		logf("received %v, draining (deadline %v)", sig, drain)
	case err := <-errc:
		// Listener failure before any signal: shut the engine down hard
		// and surface the serve error.
		eng.Shutdown(context.Background())
		return fmt.Errorf("serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// srv.Shutdown closes the listener immediately but then blocks until
	// every active connection finishes — and live SSE streams only end
	// when the engine drain closes the event bus. Run both shutdowns
	// concurrently: no new connections are accepted while the drain
	// finishes the jobs, then the bus close ends the streams and the
	// HTTP side completes.
	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.Shutdown(ctx) }()
	if err := eng.Shutdown(ctx); err != nil {
		<-httpDone
		return fmt.Errorf("serve: drain: %w", err)
	}
	if err := <-httpDone; err != nil {
		logf("http shutdown: %v", err)
	}
	logf("drained cleanly")
	return nil
}
