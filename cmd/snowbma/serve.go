package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"snowbma/internal/service"
)

// ErrServeFlag is the named validation error for serve's pool-shape
// flags, matchable with errors.Is regardless of which flag tripped it.
var ErrServeFlag = errors.New("invalid serve flag")

// cmdServe runs the attack-as-a-service HTTP endpoint: a bounded
// worker pool consuming attack/census/findlut/campaign jobs from a
// bounded queue, with job lifecycle endpoints, /metrics and /healthz.
// SIGINT/SIGTERM triggers a graceful drain bounded by -drain.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8347", "listen address")
	workers := fs.Int("workers", 0, "worker-pool width (0 = min(NumCPU, 4))")
	queue := fs.Int("queue", 0, "bounded job-queue depth (0 = 16)")
	cache := fs.Int("cache", 0, "victim build-cache capacity (0 = default)")
	drain := fs.Duration("drain", time.Minute, "graceful-shutdown drain deadline")
	quiet := fs.Bool("q", false, "suppress job lifecycle logging")
	_ = fs.Parse(args)
	for _, f := range []struct {
		name string
		v    int
	}{{"workers", *workers}, {"queue", *queue}, {"cache", *cache}} {
		if f.v < 0 {
			return fmt.Errorf("serve: %w: -%s must be non-negative, got %d (0 means the default)",
				ErrServeFlag, f.name, f.v)
		}
	}
	if *drain <= 0 {
		return fmt.Errorf("serve: %w: -drain must be positive, got %v", ErrServeFlag, *drain)
	}
	logf := func(f string, a ...any) { fmt.Fprintf(os.Stderr, "[serve] "+f+"\n", a...) }
	if *quiet {
		logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return serveOn(ln, service.Config{
		Workers: *workers, QueueDepth: *queue, CacheSize: *cache, Logf: logf,
	}, *drain, logf, nil)
}

// serveOn runs the engine's HTTP handler on an already-bound listener
// until a termination signal (or a send on stop, which tests use in
// place of SIGINT), then drains the job queue within the deadline.
func serveOn(ln net.Listener, cfg service.Config, drain time.Duration,
	logf func(string, ...any), stop chan os.Signal) error {
	eng := service.New(cfg)
	srv := &http.Server{Handler: eng.Handler()}
	if stop == nil {
		stop = make(chan os.Signal, 1)
	}
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logf("listening on %s", ln.Addr())

	select {
	case sig := <-stop:
		logf("received %v, draining (deadline %v)", sig, drain)
	case err := <-errc:
		// Listener failure before any signal: shut the engine down hard
		// and surface the serve error.
		eng.Shutdown(context.Background())
		return fmt.Errorf("serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Stop accepting connections first, then drain queued/running jobs.
	if err := srv.Shutdown(ctx); err != nil {
		logf("http shutdown: %v", err)
	}
	if err := eng.Shutdown(ctx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	logf("drained cleanly")
	return nil
}
