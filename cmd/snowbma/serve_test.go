package main

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"os"
	"testing"
	"time"

	"snowbma/internal/service"
)

func TestCmdServeFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "-1"},
		{"-queue", "-2"},
		{"-cache", "-1"},
		{"-drain", "0s"},
		{"-drain", "-1s"},
	} {
		if err := cmdServe(args); !errors.Is(err, ErrServeFlag) {
			t.Errorf("serve %v = %v, want ErrServeFlag", args, err)
		}
	}
	// An unbindable address must fail before any engine work.
	if err := cmdServe([]string{"-addr", "256.0.0.0:1", "-q"}); err == nil {
		t.Error("serve accepted an unbindable address")
	}
}

// TestServeOnLifecycle boots the real serve loop on an ephemeral port,
// checks /healthz over the wire, then stops it through the signal
// channel path used by SIGINT/SIGTERM.
func TestServeOnLifecycle(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- serveOn(ln, service.Config{Workers: 1, QueueDepth: 1},
			time.Minute, true, func(string, ...any) {}, stop)
	}()

	url := "http://" + ln.Addr().String()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			var hz struct {
				Status string `json:"status"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&hz)
			resp.Body.Close()
			if derr != nil || hz.Status != "ok" {
				t.Fatalf("healthz = %+v, %v", hz, derr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// -pprof mounted the profiling index alongside the API.
	if resp, err := http.Get(url + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pprof index = %d, want 200", resp.StatusCode)
		}
	}
	// The engine API still resolves through the wrapping mux.
	if resp, err := http.Get(url + "/metrics"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics behind pprof mux = %d, want 200", resp.StatusCode)
		}
	}

	// Hold a live SSE firehose connection across the shutdown: the drain
	// must not wait for the stream to end on its own (the bus close ends
	// it), so serveOn still returns promptly — the regression here was
	// srv.Shutdown blocking on the SSE connection until the drain
	// deadline before the engine ever closed the bus.
	sseResp, err := http.Get(url + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	sseClosed := make(chan struct{})
	go func() {
		defer close(sseClosed)
		buf := make([]byte, 1024)
		for {
			if _, err := sseResp.Body.Read(buf); err != nil {
				return
			}
		}
	}()

	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveOn = %v, want clean drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serveOn did not return after the stop signal")
	}
	select {
	case <-sseClosed:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream still open after shutdown")
	}
}
