// Command tracestat analyzes an NDJSON attack trace written by the
// -trace flag (internal/obs.WriteNDJSON). It reconstructs the span tree
// and prints a per-phase wall-time breakdown, the bitstream-load budget,
// and the cache hit rates that decide the attack's hardware cost — so a
// committed trace can be inspected (and diffed across PRs) without
// rerunning the attack.
//
// Usage:
//
//	go run ./tools/tracestat trace.ndjson
//	go run ./tools/tracestat < trace.ndjson
//
// tracestat keeps its own decoder rather than importing internal/obs:
// the NDJSON schema (version 1) is the contract, and an independent
// reader is the cheapest proof that the format is self-describing.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// Event mirrors one NDJSON trace line. The field set matches
// internal/obs.Event; unknown fields are ignored so newer traces with
// additive fields still parse.
type Event struct {
	Type    string         `json:"type"`
	Version int            `json:"version"`
	ID      int            `json:"id"`
	Parent  int            `json:"parent"`
	Name    string         `json:"name"`
	StartUS float64        `json:"start_us"`
	DurUS   float64        `json:"dur_us"`
	Attrs   map[string]any `json:"attrs"`
	Value   float64        `json:"value"`
	Count   int64          `json:"count"`
	Sum     float64        `json:"sum"`
	Min     float64        `json:"min"`
	Max     float64        `json:"max"`
}

// Span is one reconstructed node of the trace tree.
type Span struct {
	Event
	Children []*Span
}

// Hist is an exported histogram snapshot.
type Hist struct {
	Count         int64
	Sum, Min, Max float64
}

// Trace is a fully decoded trace document.
type Trace struct {
	Version  int
	Roots    []*Span
	Counters map[string]float64
	Gauges   map[string]float64
	Hists    map[string]Hist
}

// DecodeLine parses a single NDJSON line. Blank lines yield a zero
// Event with an empty Type, which callers skip.
func DecodeLine(line []byte) (Event, error) {
	var ev Event
	line = []byte(strings.TrimSpace(string(line)))
	if len(line) == 0 {
		return ev, nil
	}
	if err := json.Unmarshal(line, &ev); err != nil {
		return ev, err
	}
	return ev, nil
}

// Decode reads a whole NDJSON stream and rebuilds the span tree from
// the id/parent links. Lines with unknown types are ignored (forward
// compatibility); a span that names a missing parent becomes a root so
// a truncated trace still renders.
func Decode(r io.Reader) (*Trace, error) {
	t := &Trace{
		Counters: map[string]float64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]Hist{},
	}
	byID := map[int]*Span{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		ev, err := DecodeLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		switch ev.Type {
		case "":
			// blank line
		case "meta":
			t.Version = ev.Version
		case "span":
			if ev.ID <= 0 {
				return nil, fmt.Errorf("line %d: span without a positive id", lineNo)
			}
			s := &Span{Event: ev}
			// Resolve the parent BEFORE registering the span: a
			// corrupt line with id == parent must not become its own
			// child (that cycle would hang every tree walk).
			parent := byID[ev.Parent]
			byID[ev.ID] = s
			if parent != nil {
				parent.Children = append(parent.Children, s)
			} else {
				t.Roots = append(t.Roots, s)
			}
		case "counter":
			t.Counters[ev.Name] = ev.Value
		case "gauge":
			t.Gauges[ev.Name] = ev.Value
		case "hist":
			t.Hists[ev.Name] = Hist{Count: ev.Count, Sum: ev.Sum, Min: ev.Min, Max: ev.Max}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// dur renders microseconds as a rounded time.Duration.
func dur(us float64) time.Duration {
	return time.Duration(us*1e3) * time.Nanosecond
}

// phaseRow is one line of the per-phase table.
type phaseRow struct {
	Name  string
	Wall  float64 // µs
	Spans int     // descendant span count (self included)
}

// descendants counts s and everything under it.
func descendants(s *Span) int {
	n := 1
	for _, c := range s.Children {
		n += descendants(c)
	}
	return n
}

// Phases flattens the direct children of every root into the per-phase
// table the report prints: phase name, wall time, subtree span count.
func Phases(t *Trace) []phaseRow {
	var rows []phaseRow
	for _, root := range t.Roots {
		for _, c := range root.Children {
			rows = append(rows, phaseRow{Name: c.Name, Wall: c.DurUS, Spans: descendants(c)})
		}
	}
	return rows
}

// rate formats hits/(hits+misses) as a percentage, tolerating zero
// totals.
func rate(hits, misses float64) string {
	total := hits + misses
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%% (%d/%d)", 100*hits/total, int64(hits), int64(total))
}

// Summary renders the analysis: trace shape, per-phase wall times, the
// load budget and the cache economics.
func Summary(t *Trace) string {
	var b strings.Builder
	total := 0
	for _, r := range t.Roots {
		total += descendants(r)
	}
	fmt.Fprintf(&b, "trace version %d: %d root span(s), %d spans total\n",
		t.Version, len(t.Roots), total)
	for _, r := range t.Roots {
		fmt.Fprintf(&b, "root %-28s %v\n", r.Name, dur(r.DurUS).Round(time.Microsecond))
	}

	if rows := Phases(t); len(rows) > 0 {
		b.WriteString("phase                              wall        spans\n")
		for _, row := range rows {
			fmt.Fprintf(&b, "  %-32s %-11v %d\n",
				row.Name, dur(row.Wall).Round(time.Microsecond), row.Spans)
		}
	}

	if loads, ok := t.Counters["attack.loads"]; ok {
		fmt.Fprintf(&b, "bitstream loads:       %d", int64(loads))
		if dl, ok := t.Counters["device.loads"]; ok {
			fmt.Fprintf(&b, " (device observed %d)", int64(dl))
		}
		b.WriteString("\n")
	}

	// Per-attack traces mirror the catalogue cache as scan.catalogue_*;
	// core.catalogue.* appears only when the process-wide registry was
	// exported. Prefer whichever the trace carries.
	catHits, catMisses := t.Counters["scan.catalogue_hits"], t.Counters["scan.catalogue_misses"]
	if catHits+catMisses == 0 {
		catHits, catMisses = t.Counters["core.catalogue.hits"], t.Counters["core.catalogue.misses"]
	}
	fmt.Fprintf(&b, "catalogue cache:       %s\n", rate(catHits, catMisses))
	fmt.Fprintf(&b, "incremental reseal:    %s\n",
		rate(t.Counters["bitstream.reseal.incremental"], t.Counters["bitstream.reseal.full"]))
	fmt.Fprintf(&b, "incremental crc:       %s\n",
		rate(t.Counters["bitstream.crc.incremental"], t.Counters["bitstream.crc.full"]))

	if h, ok := t.Hists["batch.lanes_per_pass"]; ok && h.Count > 0 {
		fmt.Fprintf(&b, "batch lanes/pass:      mean %.1f, min %d, max %d over %d pass(es)\n",
			h.Sum/float64(h.Count), int64(h.Min), int64(h.Max), h.Count)
	}
	if u, ok := t.Gauges["batch.lane_utilisation"]; ok {
		fmt.Fprintf(&b, "batch lane utilisation %.1f%%\n", 100*u)
	}

	// Hot leaf spans: where the wall time actually burns.
	leafUS := map[string]float64{}
	leafN := map[string]int{}
	var walk func(s *Span)
	walk = func(s *Span) {
		if len(s.Children) == 0 {
			leafUS[s.Name] += s.DurUS
			leafN[s.Name]++
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	names := make([]string, 0, len(leafUS))
	for n := range leafUS {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return leafUS[names[i]] > leafUS[names[j]] })
	if len(names) > 0 {
		b.WriteString("hot leaf spans:\n")
		for i, n := range names {
			if i == 5 {
				break
			}
			fmt.Fprintf(&b, "  %-32s %-11v ×%d\n",
				n, dur(leafUS[n]).Round(time.Microsecond), leafN[n])
		}
	}
	return b.String()
}

func main() {
	var in io.Reader = os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	t, err := Decode(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
	fmt.Print(Summary(t))
}
