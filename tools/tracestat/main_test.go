package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleTrace = `{"type":"meta","version":1}
{"type":"span","id":1,"name":"attack.run","start_us":10,"dur_us":60000,"attrs":{"loads":47,"verified":true}}
{"type":"span","id":2,"parent":1,"name":"attack.batch_scan","start_us":12,"dur_us":35000}
{"type":"span","id":3,"parent":2,"name":"scan.pass","start_us":13,"dur_us":34000}
{"type":"span","id":4,"parent":3,"name":"scan.chunk","start_us":14,"dur_us":20000}
{"type":"span","id":5,"parent":1,"name":"attack.extract_key","start_us":50000,"dur_us":900}
{"type":"counter","name":"attack.loads","value":47}
{"type":"counter","name":"core.catalogue.hits","value":30}
{"type":"counter","name":"core.catalogue.misses","value":10}
{"type":"counter","name":"bitstream.crc.incremental","value":40}
{"type":"counter","name":"bitstream.crc.full","value":8}
{"type":"gauge","name":"batch.lane_utilisation","value":0.25}
{"type":"hist","name":"batch.lanes_per_pass","count":4,"sum":44,"min":1,"max":39}
`

func TestDecodeTree(t *testing.T) {
	tr, err := Decode(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version != 1 {
		t.Fatalf("version = %d, want 1", tr.Version)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "attack.run" {
		t.Fatalf("expected single attack.run root, got %+v", tr.Roots)
	}
	root := tr.Roots[0]
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Children))
	}
	if descendants(root) != 5 {
		t.Fatalf("descendants = %d, want 5", descendants(root))
	}
	if root.Children[0].Children[0].Children[0].Name != "scan.chunk" {
		t.Fatal("scan.chunk not nested under scan.pass")
	}
	if tr.Counters["attack.loads"] != 47 {
		t.Fatalf("attack.loads = %v", tr.Counters["attack.loads"])
	}
	h := tr.Hists["batch.lanes_per_pass"]
	if h.Count != 4 || h.Sum != 44 || h.Max != 39 {
		t.Fatalf("hist = %+v", h)
	}
}

func TestSummaryContent(t *testing.T) {
	tr, err := Decode(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	out := Summary(tr)
	for _, want := range []string{
		"trace version 1: 1 root span(s), 5 spans total",
		"attack.batch_scan",
		"attack.extract_key",
		"bitstream loads:       47",
		"catalogue cache:       75.0% (30/40)",
		"incremental crc:       83.3% (40/48)",
		"incremental reseal:    n/a",
		"batch lanes/pass:      mean 11.0, min 1, max 39 over 4 pass(es)",
		"batch lane utilisation 25.0%",
		"hot leaf spans:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestDecodeOrphanBecomesRoot(t *testing.T) {
	// A truncated trace can reference a parent id that never appeared;
	// the span must surface as a root instead of vanishing.
	tr, err := Decode(strings.NewReader(
		`{"type":"span","id":7,"parent":3,"name":"scan.walk","dur_us":5}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "scan.walk" {
		t.Fatalf("orphan span not promoted to root: %+v", tr.Roots)
	}
}

func TestDecodeRejectsBadSpan(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"type":"span","name":"x"}` + "\n")); err == nil {
		t.Fatal("span without id accepted")
	}
	if _, err := Decode(strings.NewReader(`{not json}` + "\n")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestDecodeSkipsBlankAndUnknown(t *testing.T) {
	tr, err := Decode(strings.NewReader("\n\n" +
		`{"type":"future-kind","name":"whatever","value":3}` + "\n" +
		`{"type":"counter","name":"attack.loads","value":9}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Counters["attack.loads"] != 9 {
		t.Fatal("counter after unknown-type line lost")
	}
}

// FuzzDecodeLine hammers the NDJSON line decoder: arbitrary input must
// either fail cleanly or produce an event that re-encodes as valid JSON
// and decodes to the same typed fields (round-trip stability).
func FuzzDecodeLine(f *testing.F) {
	for _, line := range strings.Split(sampleTrace, "\n") {
		f.Add(line)
	}
	f.Add("")
	f.Add("   ")
	f.Add(`{"type":"span","id":-1}`)
	f.Add(`{"type":"hist","count":9007199254740993}`)
	f.Add(`{"type":"span","attrs":{"nested":{"deep":[1,2,{"x":null}]}}}`)
	f.Fuzz(func(t *testing.T, line string) {
		ev, err := DecodeLine([]byte(line))
		if err != nil {
			return
		}
		blob, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("decoded event does not re-encode: %v", err)
		}
		again, err := DecodeLine(blob)
		if err != nil {
			t.Fatalf("re-encoded event does not decode: %v (blob %s)", err, blob)
		}
		if again.Type != ev.Type || again.ID != ev.ID || again.Parent != ev.Parent ||
			again.Name != ev.Name || again.Count != ev.Count {
			t.Fatalf("round trip diverged: %+v vs %+v", ev, again)
		}
	})
}

// FuzzDecode feeds arbitrary multi-line documents through the full
// decoder: it must never panic, and any successfully decoded trace must
// render a summary.
func FuzzDecode(f *testing.F) {
	f.Add(sampleTrace)
	f.Add("{\"type\":\"span\",\"id\":1,\"parent\":1,\"name\":\"self\"}\n")
	f.Add("{\"type\":\"meta\",\"version\":99}\n{\"type\":\"span\",\"id\":2}\n")
	f.Fuzz(func(t *testing.T, doc string) {
		tr, err := Decode(strings.NewReader(doc))
		if err != nil {
			return
		}
		_ = Summary(tr)
	})
}
