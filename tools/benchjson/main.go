// Command benchjson converts `go test -bench` text output into a small
// machine-readable JSON document, so benchmark numbers can be committed
// next to the experiments they back (BENCH_PR2.json) and diffed across
// PRs without scraping free-form logs.
//
// Usage:
//
//	go test -run xxx -bench . | go run ./tools/benchjson -o bench.json
//
// It reads stdin (or a file argument), keeps every "Benchmark..." result
// line including custom ReportMetric units, and passes through the
// goos/goarch/pkg/cpu header fields.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: the name (with any /sub-benchmark and
// -cpu suffix), the iteration count, and every reported metric keyed by
// unit (ns/op, B/op, allocs/op, custom units like ns/lane-cycle).
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole converted run.
type Doc struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// Parse consumes `go test -bench` output. Lines that are not benchmark
// results or header fields are ignored, so mixed test/bench output is
// fine.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if ok {
				doc.Results = append(doc.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseLine splits "BenchmarkName-8  20  123 ns/op  4 B/op ..." into a
// Result. Metric values and units come in pairs after the run count.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, len(res.Metrics) > 0
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	doc, err := Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
