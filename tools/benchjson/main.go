// Command benchjson converts `go test -bench` text output into a small
// machine-readable JSON document, so benchmark numbers can be committed
// next to the experiments they back (BENCH_PR2.json) and diffed across
// PRs without scraping free-form logs.
//
// Usage:
//
//	go test -run xxx -bench . | go run ./tools/benchjson -o bench.json
//
// It reads stdin (or a file argument), keeps every "Benchmark..." result
// line including custom ReportMetric units, and passes through the
// goos/goarch/pkg/cpu header fields.
//
// With -baseline it additionally gates on a regression: the named
// benchmark's metric in the parsed run is compared against the same
// entry in a previously-committed JSON document, and the process exits
// non-zero if current/baseline exceeds -max-ratio:
//
//	go test -run xxx -bench ClockBatch -count 5 . |
//	  go run ./tools/benchjson -baseline BENCH_PR6.json \
//	    -name BenchmarkClockBatch/lanes-64 -metric ns/lane-cycle -max-ratio 1.10
//
// For throughput metrics (designs/sec, MB/s) the gate direction flips:
// -min-ratio fails the run if current/baseline falls BELOW the bound,
// and duplicate entries collapse to their largest value instead of the
// smallest. Passing only -min-ratio disables the default -max-ratio
// time gate; passing both runs both.
//
// Names are matched with any trailing -N GOMAXPROCS suffix stripped,
// and duplicate entries (from -count) collapse to their best value, so
// the gate measures capability, not scheduler noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strconv"
	"strings"
)

// Result is one benchmark line: the name (with any /sub-benchmark and
// -cpu suffix), the iteration count, and every reported metric keyed by
// unit (ns/op, B/op, allocs/op, custom units like ns/lane-cycle).
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole converted run.
type Doc struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// Parse consumes `go test -bench` output. Lines that are not benchmark
// results or header fields are ignored, so mixed test/bench output is
// fine.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			// Concatenated multi-package runs list every package.
			p := strings.TrimPrefix(line, "pkg: ")
			if doc.Pkg == "" {
				doc.Pkg = p
			} else if !slices.Contains(strings.Split(doc.Pkg, ", "), p) {
				doc.Pkg += ", " + p
			}
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if ok {
				doc.Results = append(doc.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseLine splits "BenchmarkName-8  20  123 ns/op  4 B/op ..." into a
// Result. Metric values and units come in pairs after the run count.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, len(res.Metrics) > 0
}

// matchesName reports whether a recorded benchmark name is the wanted
// canonical name, tolerating the trailing -N GOMAXPROCS suffix go test
// appends on some machines. The wanted name itself may end in -digits
// ("lanes-64"), so stripping both sides would be ambiguous; only the
// recorded side may carry one extra numeric segment.
func matchesName(entry, want string) bool {
	if entry == want {
		return true
	}
	suf, ok := strings.CutPrefix(entry, want+"-")
	if !ok || suf == "" {
		return false
	}
	for _, c := range suf {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// bestMetric returns the best value of metric across every entry of doc
// matching name (duplicates come from -count runs). "Best" depends on
// the metric's direction: the smallest value for time-per-work units
// (higherBetter false), the largest for throughput units like
// designs/sec (higherBetter true) — either way the gate measures
// capability, not scheduler noise.
func bestMetric(doc *Doc, name, metric string, higherBetter bool) (float64, bool) {
	best, found := 0.0, false
	for _, r := range doc.Results {
		if !matchesName(r.Name, name) {
			continue
		}
		v, ok := r.Metrics[metric]
		if !ok {
			continue
		}
		if !found || (higherBetter && v > best) || (!higherBetter && v < best) {
			best, found = v, true
		}
	}
	return best, found
}

// gateRatio computes current/baseline for one gate direction, erroring
// if the benchmark is missing on either side.
func gateRatio(doc, baseline *Doc, name, metric string, higherBetter bool) (cur, base float64, err error) {
	cur, ok := bestMetric(doc, name, metric, higherBetter)
	if !ok {
		return 0, 0, fmt.Errorf("%s %s missing from current run", name, metric)
	}
	base, ok = bestMetric(baseline, name, metric, higherBetter)
	if !ok {
		return 0, 0, fmt.Errorf("%s %s missing from baseline", name, metric)
	}
	if base <= 0 {
		return 0, 0, fmt.Errorf("%s %s baseline is %v, cannot ratio", name, metric, base)
	}
	return cur, base, nil
}

// checkRegression gates doc against the baseline document. maxRatio > 0
// gates a lower-is-better metric: fail if current/baseline exceeds it.
// minRatio > 0 gates a higher-is-better metric (throughput): fail if
// current/baseline falls below it. Either may be 0 (gate off), both may
// run.
func checkRegression(doc, baseline *Doc, name, metric string, maxRatio, minRatio float64) error {
	if maxRatio <= 0 && minRatio <= 0 {
		return fmt.Errorf("%s %s: no gate given (-max-ratio or -min-ratio)", name, metric)
	}
	if maxRatio > 0 {
		cur, base, err := gateRatio(doc, baseline, name, metric, false)
		if err != nil {
			return err
		}
		ratio := cur / base
		fmt.Fprintf(os.Stderr, "benchjson: %s %s: current %.4g vs baseline %.4g (ratio %.3f, max %.3f)\n",
			name, metric, cur, base, ratio, maxRatio)
		if ratio > maxRatio {
			return fmt.Errorf("%s %s regressed: %.4g vs baseline %.4g exceeds max ratio %.3f",
				name, metric, cur, base, maxRatio)
		}
	}
	if minRatio > 0 {
		cur, base, err := gateRatio(doc, baseline, name, metric, true)
		if err != nil {
			return err
		}
		ratio := cur / base
		fmt.Fprintf(os.Stderr, "benchjson: %s %s: current %.4g vs baseline %.4g (ratio %.3f, min %.3f)\n",
			name, metric, cur, base, ratio, minRatio)
		if ratio < minRatio {
			return fmt.Errorf("%s %s regressed: %.4g vs baseline %.4g falls below min ratio %.3f",
				name, metric, cur, base, minRatio)
		}
	}
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON document to gate against")
	name := flag.String("name", "", "benchmark name to check against -baseline")
	metric := flag.String("metric", "ns/op", "metric unit compared against -baseline")
	maxRatio := flag.Float64("max-ratio", 1.10, "largest tolerated current/baseline ratio (lower-is-better metrics)")
	minRatio := flag.Float64("min-ratio", 0, "smallest tolerated current/baseline ratio (throughput metrics; 0 = off)")
	flag.Parse()
	// -max-ratio has a default, so a throughput gate that only says
	// -min-ratio must not also trip the time gate: the max gate runs only
	// when no min gate is asked for, or when -max-ratio was explicit.
	maxSet := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "max-ratio" {
			maxSet = true
		}
	})
	if *minRatio > 0 && !maxSet {
		*maxRatio = 0
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	doc, err := Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" && *baseline == "" {
		os.Stdout.Write(enc)
	} else if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base Doc
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := checkRegression(doc, &base, *name, *metric, *maxRatio, *minRatio); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}
