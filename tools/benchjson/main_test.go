package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: snowbma
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCandidateSweep/scalar-1         	      20	  38187869 ns/op
BenchmarkCandidateSweep/batch-64         	      20	   7397025 ns/op
BenchmarkClockBatch/lanes-64             	    1000	     43000 ns/op	       671.9 ns/lane-cycle
--- BENCH: some stray log line
PASS
ok  	snowbma	6.825s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.Pkg != "snowbma" {
		t.Fatalf("header mismatch: %+v", doc)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("expected 3 results, got %d: %+v", len(doc.Results), doc.Results)
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkCandidateSweep/scalar-1" || r.Runs != 20 {
		t.Fatalf("first result mismatch: %+v", r)
	}
	if r.Metrics["ns/op"] != 38187869 {
		t.Fatalf("ns/op mismatch: %v", r.Metrics)
	}
	lane := doc.Results[2]
	if lane.Metrics["ns/lane-cycle"] != 671.9 {
		t.Fatalf("custom metric not parsed: %v", lane.Metrics)
	}
}

func TestMatchesName(t *testing.T) {
	const want = "BenchmarkClockBatch/lanes-64"
	for entry, match := range map[string]bool{
		"BenchmarkClockBatch/lanes-64":    true, // recorded without suffix
		"BenchmarkClockBatch/lanes-64-8":  true, // GOMAXPROCS suffix
		"BenchmarkClockBatch/lanes-64-16": true,
		"BenchmarkClockBatch/lanes-64-":   false,
		"BenchmarkClockBatch/lanes-64-8b": false,
		"BenchmarkClockBatch/lanes-640":   false,
		"BenchmarkClockBatch/lanes-6":     false,
	} {
		if got := matchesName(entry, want); got != match {
			t.Errorf("matchesName(%q, %q) = %v, want %v", entry, want, got, match)
		}
	}
}

func TestCheckRegression(t *testing.T) {
	mk := func(name string, vals ...float64) *Doc {
		d := &Doc{}
		for _, v := range vals {
			d.Results = append(d.Results, Result{
				Name: name, Runs: 1, Metrics: map[string]float64{"ns/lane-cycle": v},
			})
		}
		return d
	}
	base := mk("BenchmarkClockBatch/lanes-64", 86.32)
	// Duplicates collapse to the best run, -N suffixes are ignored.
	cur := mk("BenchmarkClockBatch/lanes-64-8", 95.0, 88.1)
	if err := checkRegression(cur, base, "BenchmarkClockBatch/lanes-64", "ns/lane-cycle", 1.10, 0); err != nil {
		t.Fatalf("within-budget run rejected: %v", err)
	}
	if err := checkRegression(mk("BenchmarkClockBatch/lanes-64", 99.0), base,
		"BenchmarkClockBatch/lanes-64", "ns/lane-cycle", 1.10, 0); err == nil {
		t.Fatal("14%% regression accepted")
	}
	if err := checkRegression(cur, base, "BenchmarkClockBatch/lanes-64", "ns/op", 1.10, 0); err == nil {
		t.Fatal("missing metric accepted")
	}
	if err := checkRegression(cur, &Doc{}, "BenchmarkClockBatch/lanes-64", "ns/lane-cycle", 1.10, 0); err == nil {
		t.Fatal("missing baseline entry accepted")
	}
	if err := checkRegression(cur, base, "BenchmarkClockBatch/lanes-64", "ns/lane-cycle", 0, 0); err == nil {
		t.Fatal("gate-less invocation accepted")
	}
}

func TestCheckThroughputGate(t *testing.T) {
	mk := func(name string, vals ...float64) *Doc {
		d := &Doc{}
		for _, v := range vals {
			d.Results = append(d.Results, Result{
				Name: name, Runs: 1, Metrics: map[string]float64{"designs/sec": v},
			})
		}
		return d
	}
	const name = "BenchmarkCorpusCensus/dedup-on"
	base := mk(name, 66.9)
	// Duplicates collapse to the LARGEST run for a throughput gate: the
	// 70.0 outlier represents capability, the 48.0 is scheduler noise.
	cur := mk(name+"-8", 48.0, 70.0)
	if err := checkRegression(cur, base, name, "designs/sec", 0, 0.70); err != nil {
		t.Fatalf("within-budget throughput rejected: %v", err)
	}
	if err := checkRegression(mk(name, 40.0), base, name, "designs/sec", 0, 0.70); err == nil {
		t.Fatal("40%% throughput regression accepted")
	}
	if err := checkRegression(cur, &Doc{}, name, "designs/sec", 0, 0.70); err == nil {
		t.Fatal("missing baseline entry accepted")
	}
	// Both gates may run together; the min gate must still fail.
	if err := checkRegression(mk(name, 40.0), base, name, "designs/sec", 2.0, 0.70); err == nil {
		t.Fatal("min gate skipped when max gate also set")
	}
}

func TestParseMergesPackageHeaders(t *testing.T) {
	doc, err := Parse(strings.NewReader("pkg: snowbma\npkg: snowbma/internal/core\npkg: snowbma\nBenchmarkX 1 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Pkg != "snowbma, snowbma/internal/core" {
		t.Fatalf("pkg merge: %q", doc.Pkg)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	doc, err := Parse(strings.NewReader("BenchmarkBroken abc 1 ns/op\nBenchmarkNoMetrics 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("malformed lines accepted: %+v", doc.Results)
	}
}
