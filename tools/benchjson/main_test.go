package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: snowbma
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCandidateSweep/scalar-1         	      20	  38187869 ns/op
BenchmarkCandidateSweep/batch-64         	      20	   7397025 ns/op
BenchmarkClockBatch/lanes-64             	    1000	     43000 ns/op	       671.9 ns/lane-cycle
--- BENCH: some stray log line
PASS
ok  	snowbma	6.825s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.Pkg != "snowbma" {
		t.Fatalf("header mismatch: %+v", doc)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("expected 3 results, got %d: %+v", len(doc.Results), doc.Results)
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkCandidateSweep/scalar-1" || r.Runs != 20 {
		t.Fatalf("first result mismatch: %+v", r)
	}
	if r.Metrics["ns/op"] != 38187869 {
		t.Fatalf("ns/op mismatch: %v", r.Metrics)
	}
	lane := doc.Results[2]
	if lane.Metrics["ns/lane-cycle"] != 671.9 {
		t.Fatalf("custom metric not parsed: %v", lane.Metrics)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	doc, err := Parse(strings.NewReader("BenchmarkBroken abc 1 ns/op\nBenchmarkNoMetrics 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("malformed lines accepted: %+v", doc.Results)
	}
}
