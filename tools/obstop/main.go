// Command obstop is a terminal dashboard for a running snowbma attack
// service: it consumes the /events SSE firehose and renders fleet state
// live — per-job lifecycle and phase progress, jobs/sec throughput,
// queue depth, the slowest spans observed, and event-loss accounting.
//
// Usage:
//
//	go run ./tools/obstop -addr http://127.0.0.1:8347
//	go run ./tools/obstop -addr http://127.0.0.1:8347 -once   # one frame, no ANSI
//
// Like tools/tracestat, obstop keeps its own SSE/event decoder instead
// of importing internal/obs: the event-stream schema (bus schema v1) is
// the wire contract, and an independent consumer is the cheapest proof
// it is self-describing. Unknown event types are ignored, so newer
// services with additive events still render.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// Event mirrors one bus event as it crosses the SSE wire (the `data:`
// payload). The field set matches internal/obs.BusEvent; unknown fields
// are ignored.
type Event struct {
	Seq    uint64         `json:"seq"`
	TimeUS float64        `json:"t_us"`
	Type   string         `json:"type"`
	Job    string         `json:"job"`
	Name   string         `json:"name"`
	Span   int            `json:"span"`
	Parent int            `json:"parent"`
	DurUS  float64        `json:"dur_us"`
	Value  float64        `json:"value"`
	Attrs  map[string]any `json:"attrs"`
}

// SSEFrame is one decoded server-sent event.
type SSEFrame struct {
	ID    string
	Event string
	Data  string
}

// ReadSSE decodes SSE frames from r and invokes fn for each complete
// frame. Comment lines (heartbeats) are skipped. Returns on EOF or the
// first read error.
func ReadSSE(r io.Reader, fn func(SSEFrame) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var cur SSEFrame
	flush := func() error {
		if cur.Data == "" {
			cur = SSEFrame{}
			return nil
		}
		err := fn(cur)
		cur = SSEFrame{}
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, ":"):
			// heartbeat / comment
		case strings.HasPrefix(line, "id: "):
			cur.ID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return sc.Err()
}

// JobView is the dashboard's view of one job.
type JobView struct {
	ID       string
	Kind     string
	State    string
	Phase    string  // innermost open span name
	Done     float64 // sweep progress: candidates done
	Total    float64 // sweep progress: candidates total
	RunMS    float64 // terminal run time
	Err      string
	LastSeen time.Time
}

// SpanRec is one completed span, kept for the slowest-spans table.
type SpanRec struct {
	Name  string
	Job   string
	DurMS float64
}

// Model is the accumulated dashboard state. Apply folds events in; the
// renderer reads it. Not safe for concurrent use — the main loop owns
// it.
type Model struct {
	Jobs       map[string]*JobView
	order      []string // job ids, first-seen order
	openPhases map[string]map[int]string // job → span id → name (open spans)
	terminals  []time.Time               // terminal-event times (jobs/sec window)
	QueueDepth float64
	Goroutines float64
	HeapBytes  float64
	Dropped    float64 // bus-wide drops (obs.events_dropped mirror)
	SubDropped float64 // this stream's own loss (drops frames)
	Seq        uint64
	Events     int
	Slowest    []SpanRec
	SlowestCap int
}

// NewModel returns an empty model keeping the top n slowest spans.
func NewModel(n int) *Model {
	return &Model{
		Jobs:       map[string]*JobView{},
		openPhases: map[string]map[int]string{},
		SlowestCap: n,
	}
}

func (m *Model) job(id string, now time.Time) *JobView {
	j, ok := m.Jobs[id]
	if !ok {
		j = &JobView{ID: id, State: "?"}
		m.Jobs[id] = j
		m.order = append(m.order, id)
	}
	j.LastSeen = now
	return j
}

func attrFloat(attrs map[string]any, key string) (float64, bool) {
	v, ok := attrs[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64) // JSON numbers decode as float64
	return f, ok
}

func attrString(attrs map[string]any, key string) string {
	if v, ok := attrs[key].(string); ok {
		return v
	}
	return ""
}

// Apply folds one event into the model at wall-clock time now.
func (m *Model) Apply(ev Event, now time.Time) {
	m.Events++
	if ev.Seq > 0 {
		m.Seq = ev.Seq
	}
	switch ev.Type {
	case "job":
		j := m.job(ev.Job, now)
		j.State = ev.Name
		if k := attrString(ev.Attrs, "kind"); k != "" {
			j.Kind = k
		}
		if e := attrString(ev.Attrs, "error"); e != "" {
			j.Err = e
		}
		if ms, ok := attrFloat(ev.Attrs, "run_ms"); ok {
			j.RunMS = ms
		}
		switch ev.Name {
		case "done", "failed", "cancelled":
			m.terminals = append(m.terminals, now)
			delete(m.openPhases, ev.Job)
		}
	case "span_start":
		if ev.Job == "" {
			return
		}
		j := m.job(ev.Job, now)
		open := m.openPhases[ev.Job]
		if open == nil {
			open = map[int]string{}
			m.openPhases[ev.Job] = open
		}
		open[ev.Span] = ev.Name
		j.Phase = ev.Name
	case "span_end":
		if ev.Job != "" {
			j := m.job(ev.Job, now)
			open := m.openPhases[ev.Job]
			delete(open, ev.Span)
			if j.Phase == ev.Name {
				// Fall back to the parent phase (any still-open span).
				j.Phase = ""
				if name, ok := open[ev.Parent]; ok {
					j.Phase = name
				} else {
					for _, name := range open {
						j.Phase = name
						break
					}
				}
			}
		}
		m.recordSpan(SpanRec{Name: ev.Name, Job: ev.Job, DurMS: ev.DurUS / 1e3})
	case "progress":
		if ev.Job == "" {
			return
		}
		j := m.job(ev.Job, now)
		if ev.Name == "sweep.chunk" {
			j.Done = ev.Value
			if t, ok := attrFloat(ev.Attrs, "total"); ok {
				j.Total = t
			}
		}
	case "gauge":
		switch ev.Name {
		case "service.jobs_queued":
			m.QueueDepth = ev.Value
		case "runtime.goroutines":
			m.Goroutines = ev.Value
		case "runtime.heap_alloc_bytes":
			m.HeapBytes = ev.Value
		}
	case "counter":
		if ev.Name == "obs.events_dropped" {
			m.Dropped = ev.Value
		}
	case "drops":
		m.SubDropped = ev.Value
	}
}

// recordSpan keeps the SlowestCap slowest spans seen so far.
func (m *Model) recordSpan(r SpanRec) {
	m.Slowest = append(m.Slowest, r)
	sort.SliceStable(m.Slowest, func(i, j int) bool { return m.Slowest[i].DurMS > m.Slowest[j].DurMS })
	if len(m.Slowest) > m.SlowestCap {
		m.Slowest = m.Slowest[:m.SlowestCap]
	}
}

// JobsPerSec is the terminal-event rate over the trailing window.
func (m *Model) JobsPerSec(now time.Time, window time.Duration) float64 {
	cut := now.Add(-window)
	i := 0
	for i < len(m.terminals) && m.terminals[i].Before(cut) {
		i++
	}
	m.terminals = m.terminals[i:]
	if len(m.terminals) == 0 {
		return 0
	}
	return float64(len(m.terminals)) / window.Seconds()
}

// activeJobs returns job views, running first, then queued, then
// terminal (most recent first within each class), capped at n.
func (m *Model) activeJobs(n int) []*JobView {
	rank := func(state string) int {
		switch state {
		case "running":
			return 0
		case "queued":
			return 1
		default:
			return 2
		}
	}
	views := make([]*JobView, 0, len(m.order))
	for _, id := range m.order {
		views = append(views, m.Jobs[id])
	}
	sort.SliceStable(views, func(i, j int) bool {
		ri, rj := rank(views[i].State), rank(views[j].State)
		if ri != rj {
			return ri < rj
		}
		return views[i].LastSeen.After(views[j].LastSeen)
	})
	if len(views) > n {
		views = views[:n]
	}
	return views
}

// Render draws one dashboard frame as plain text (no ANSI — the caller
// adds screen clearing). Pure: same model+now → same frame.
func Render(m *Model, now time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "snowbma obstop — seq %d, %d events", m.Seq, m.Events)
	if m.SubDropped > 0 {
		fmt.Fprintf(&b, " (this stream lost %.0f)", m.SubDropped)
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "fleet    %.2f jobs/sec   queue %d   goroutines %.0f   heap %s   bus drops %.0f\n\n",
		m.JobsPerSec(now, time.Minute), int(m.QueueDepth), m.Goroutines,
		fmtBytes(m.HeapBytes), m.Dropped)

	b.WriteString("jobs\n")
	jobs := m.activeJobs(12)
	if len(jobs) == 0 {
		b.WriteString("  (none yet)\n")
	}
	for _, j := range jobs {
		line := fmt.Sprintf("  %-10s %-9s %-9s", j.ID, j.Kind, j.State)
		switch {
		case j.State == "running" && j.Total > 0:
			line += fmt.Sprintf(" %s %3.0f%%  %s", progressBar(j.Done/j.Total, 20),
				100*j.Done/j.Total, j.Phase)
		case j.State == "running":
			line += "  " + j.Phase
		case j.RunMS > 0:
			line += fmt.Sprintf("  %s", fmtMS(j.RunMS))
		}
		if j.Err != "" {
			line += "  ! " + truncate(j.Err, 40)
		}
		b.WriteString(strings.TrimRight(line, " ") + "\n")
	}

	if len(m.Slowest) > 0 {
		b.WriteString("\nslowest spans\n")
		for _, s := range m.Slowest {
			job := s.Job
			if job == "" {
				job = "-"
			}
			fmt.Fprintf(&b, "  %-28s %-10s %s\n", truncate(s.Name, 28), job, fmtMS(s.DurMS))
		}
	}
	return b.String()
}

func progressBar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	full := int(frac * float64(width))
	return "[" + strings.Repeat("#", full) + strings.Repeat(".", width-full) + "]"
}

func fmtMS(ms float64) string {
	switch {
	case ms >= 1000:
		return fmt.Sprintf("%.2fs", ms/1000)
	case ms >= 1:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.0fµs", ms*1000)
	}
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8347", "service base URL")
	refresh := flag.Duration("refresh", 500*time.Millisecond, "redraw interval")
	once := flag.Bool("once", false, "consume until the stream ends, print one frame, exit")
	topN := flag.Int("top", 8, "slowest spans to keep")
	flag.Parse()

	model := NewModel(*topN)
	lastID := ""
	frames := make(chan struct{}, 1)
	poke := func() {
		select {
		case frames <- struct{}{}:
		default:
		}
	}

	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		for {
			err := streamOnce(*addr, lastID, func(f SSEFrame) error {
				if f.ID != "" {
					lastID = f.ID
				}
				var ev Event
				if jsonErr := json.Unmarshal([]byte(f.Data), &ev); jsonErr != nil {
					return nil // additive/unknown payloads are skipped
				}
				model.Apply(ev, time.Now())
				poke()
				return nil
			})
			if *once {
				return
			}
			fmt.Fprintf(os.Stderr, "obstop: stream ended (%v), reconnecting\n", err)
			time.Sleep(time.Second)
		}
	}()

	if *once {
		// Consume the whole stream (it ends when the service shuts the
		// bus down or the connection drops), then print the final frame.
		<-streamDone
		fmt.Print(Render(model, time.Now()))
		return
	}
	tick := time.NewTicker(*refresh)
	defer tick.Stop()
	for {
		select {
		case <-frames:
		case <-tick.C:
		}
		fmt.Print("\x1b[2J\x1b[H" + Render(model, time.Now()))
	}
}

// streamOnce connects to the firehose and consumes it until it closes.
// NOTE: model mutation happens on this goroutine only in -once mode;
// in live mode the render loop reads a model the stream goroutine
// writes — acceptable for a terminal monitor, matching top(1)'s
// tolerance for torn reads, and the reconnect path preserves resume via
// Last-Event-ID.
func streamOnce(addr, lastID string, fn func(SSEFrame) error) error {
	req, err := http.NewRequest("GET", strings.TrimRight(addr, "/")+"/events", nil)
	if err != nil {
		return err
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("obstop: %s returned %s", req.URL, resp.Status)
	}
	return ReadSSE(resp.Body, fn)
}
