package main

import (
	"encoding/json"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseStream builds a synthetic firehose byte stream from events, with a
// heartbeat comment interleaved, the way internal/obs.ServeSSE frames it.
func sseStream(t *testing.T, evs ...Event) string {
	t.Helper()
	var b strings.Builder
	for i, ev := range evs {
		if i == 1 {
			b.WriteString(": hb\n\n")
		}
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Seq > 0 {
			b.WriteString("id: " + strconv.FormatUint(ev.Seq, 10) + "\n")
		}
		b.WriteString("event: " + ev.Type + "\n")
		b.WriteString("data: " + string(data) + "\n\n")
	}
	return b.String()
}

func TestReadSSEDecodesFramesAndSkipsHeartbeats(t *testing.T) {
	in := sseStream(t,
		Event{Seq: 1, Type: "job", Job: "job-0001", Name: "queued", Attrs: map[string]any{"kind": "attack"}},
		Event{Seq: 2, Type: "job", Job: "job-0001", Name: "running"},
		Event{Type: "drops", Value: 7}, // synthetic, no id line
	)
	var frames []SSEFrame
	if err := ReadSSE(strings.NewReader(in), func(f SSEFrame) error {
		frames = append(frames, f)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("decoded %d frames, want 3: %+v", len(frames), frames)
	}
	if frames[0].ID != "1" || frames[0].Event != "job" {
		t.Fatalf("frame 0 = %+v", frames[0])
	}
	if frames[2].ID != "" || frames[2].Event != "drops" {
		t.Fatalf("drops frame = %+v", frames[2])
	}
	var ev Event
	if err := json.Unmarshal([]byte(frames[0].Data), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Job != "job-0001" || ev.Attrs["kind"] != "attack" {
		t.Fatalf("round-tripped event = %+v", ev)
	}
}

func TestReadSSEStopsOnCallbackError(t *testing.T) {
	in := sseStream(t,
		Event{Seq: 1, Type: "job", Name: "queued"},
		Event{Seq: 2, Type: "job", Name: "running"},
	)
	calls := 0
	err := ReadSSE(strings.NewReader(in), func(SSEFrame) error {
		calls++
		return errStop
	})
	if err != errStop || calls != 1 {
		t.Fatalf("err = %v after %d calls, want errStop after 1", err, calls)
	}
}

var errStop = errors.New("stop")

func TestModelJobLifecycleAndPhases(t *testing.T) {
	m := NewModel(4)
	now := time.Unix(1000, 0)
	m.Apply(Event{Seq: 1, Type: "job", Job: "job-0001", Name: "queued",
		Attrs: map[string]any{"kind": "attack"}}, now)
	m.Apply(Event{Seq: 2, Type: "job", Job: "job-0001", Name: "running"}, now)
	m.Apply(Event{Seq: 3, Type: "span_start", Job: "job-0001", Name: "service.job", Span: 1}, now)
	m.Apply(Event{Seq: 4, Type: "span_start", Job: "job-0001", Name: "attack.run", Span: 2, Parent: 1}, now)

	j := m.Jobs["job-0001"]
	if j == nil || j.State != "running" || j.Kind != "attack" {
		t.Fatalf("job view = %+v", j)
	}
	if j.Phase != "attack.run" {
		t.Fatalf("phase = %q, want attack.run", j.Phase)
	}

	// Progress from the sweep.
	m.Apply(Event{Seq: 5, Type: "progress", Job: "job-0001", Name: "sweep.chunk",
		Value: 16, Attrs: map[string]any{"total": float64(64)}}, now)
	if j.Done != 16 || j.Total != 64 {
		t.Fatalf("progress = %v/%v, want 16/64", j.Done, j.Total)
	}

	// Ending the inner span falls back to the parent phase.
	m.Apply(Event{Seq: 6, Type: "span_end", Job: "job-0001", Name: "attack.run",
		Span: 2, Parent: 1, DurUS: 2500}, now)
	if j.Phase != "service.job" {
		t.Fatalf("phase after span_end = %q, want service.job", j.Phase)
	}

	m.Apply(Event{Seq: 7, Type: "job", Job: "job-0001", Name: "done",
		Attrs: map[string]any{"run_ms": 3.5}}, now)
	if j.State != "done" || j.RunMS != 3.5 {
		t.Fatalf("terminal view = %+v", j)
	}
	if got := m.JobsPerSec(now, time.Minute); got != 1.0/60 {
		t.Fatalf("jobs/sec = %v, want 1/60", got)
	}
	// The window slides: a minute later the terminal event has aged out.
	if got := m.JobsPerSec(now.Add(2*time.Minute), time.Minute); got != 0 {
		t.Fatalf("jobs/sec after window = %v, want 0", got)
	}
}

func TestModelFleetGaugesAndDrops(t *testing.T) {
	m := NewModel(4)
	now := time.Unix(1000, 0)
	m.Apply(Event{Seq: 1, Type: "gauge", Name: "service.jobs_queued", Value: 3}, now)
	m.Apply(Event{Seq: 2, Type: "gauge", Name: "runtime.goroutines", Value: 12}, now)
	m.Apply(Event{Seq: 3, Type: "gauge", Name: "runtime.heap_alloc_bytes", Value: 2 << 20}, now)
	m.Apply(Event{Seq: 4, Type: "counter", Name: "obs.events_dropped", Value: 5}, now)
	m.Apply(Event{Type: "drops", Value: 2}, now)
	if m.QueueDepth != 3 || m.Goroutines != 12 || m.Dropped != 5 || m.SubDropped != 2 {
		t.Fatalf("model = %+v", m)
	}
	// Unknown event types are ignored, not fatal (additive schema).
	m.Apply(Event{Seq: 5, Type: "telemetry.v2"}, now)
	if m.Seq != 5 || m.Events != 6 {
		t.Fatalf("seq/events = %d/%d", m.Seq, m.Events)
	}
}

func TestModelSlowestSpansBounded(t *testing.T) {
	m := NewModel(3)
	now := time.Unix(1000, 0)
	for i, dur := range []float64{100, 900, 300, 700, 500} {
		m.Apply(Event{Seq: uint64(i + 1), Type: "span_end", Name: "phase",
			Job: "job-0001", Span: i + 1, DurUS: dur * 1000}, now)
	}
	if len(m.Slowest) != 3 {
		t.Fatalf("kept %d spans, want 3", len(m.Slowest))
	}
	want := []float64{900, 700, 500}
	for i, s := range m.Slowest {
		if s.DurMS != want[i] {
			t.Fatalf("slowest[%d] = %vms, want %v", i, s.DurMS, want[i])
		}
	}
}

func TestRenderFrame(t *testing.T) {
	m := NewModel(4)
	now := time.Unix(1000, 0)
	m.Apply(Event{Seq: 1, Type: "job", Job: "job-0001", Name: "queued",
		Attrs: map[string]any{"kind": "attack"}}, now)
	m.Apply(Event{Seq: 2, Type: "job", Job: "job-0001", Name: "running"}, now)
	m.Apply(Event{Seq: 3, Type: "span_start", Job: "job-0001", Name: "attack.batch_scan", Span: 1}, now)
	m.Apply(Event{Seq: 4, Type: "progress", Job: "job-0001", Name: "sweep.chunk",
		Value: 32, Attrs: map[string]any{"total": float64(64)}}, now)
	m.Apply(Event{Seq: 5, Type: "gauge", Name: "service.jobs_queued", Value: 2}, now)
	m.Apply(Event{Seq: 6, Type: "span_end", Job: "job-0001", Name: "victim.build",
		Span: 7, DurUS: 1234567}, now)
	m.Apply(Event{Seq: 7, Type: "job", Job: "job-0002", Name: "failed",
		Attrs: map[string]any{"kind": "census", "error": "spec: bad window", "run_ms": 4.2}}, now)

	frame := Render(m, now)
	for _, want := range []string{
		"seq 7",
		"queue 2",
		"job-0001",
		"running",
		" 50%",
		"attack.batch_scan",
		"slowest spans",
		"victim.build",
		"1.23s",
		"job-0002",
		"failed",
		"! spec: bad window",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	// Running jobs sort above terminal ones.
	if strings.Index(frame, "job-0001") > strings.Index(frame, "job-0002") {
		t.Fatalf("running job not listed first:\n%s", frame)
	}
}

func TestRenderEmptyModel(t *testing.T) {
	frame := Render(NewModel(4), time.Unix(1000, 0))
	if !strings.Contains(frame, "(none yet)") {
		t.Fatalf("empty frame = %q", frame)
	}
}

func TestProgressBarClamps(t *testing.T) {
	if got := progressBar(-0.5, 10); got != "[..........]" {
		t.Fatalf("underflow bar = %q", got)
	}
	if got := progressBar(1.5, 10); got != "[##########]" {
		t.Fatalf("overflow bar = %q", got)
	}
	if got := progressBar(0.5, 10); got != "[#####.....]" {
		t.Fatalf("half bar = %q", got)
	}
}
