// Command genfuzzcorpus regenerates the committed seed corpora under
// testdata/fuzz/ for the repo's fuzz targets. Committed seeds run on
// every plain `go test`, so the parsers are exercised against real
// synthesized images (not just the tiny in-code f.Add seeds) even when
// nobody runs `go test -fuzz`.
//
// Usage (from the repo root):
//
//	go run ./tools/genfuzzcorpus
//
// Output is deterministic: the victim is synthesized from the paper key
// with the default placement seed, so regeneration is a no-op unless the
// synthesis pipeline itself changed.
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"snowbma"
	"snowbma/internal/bitstream"
	"snowbma/internal/store"
)

// writeCorpus writes one corpus file in Go's `go test fuzz v1` encoding.
func writeCorpus(dir, name string, vals ...any) error {
	var b bytes.Buffer
	b.WriteString("go test fuzz v1\n")
	for _, v := range vals {
		switch t := v.(type) {
		case []byte:
			fmt.Fprintf(&b, "[]byte(%q)\n", t)
		case string:
			fmt.Fprintf(&b, "string(%q)\n", t)
		case byte:
			fmt.Fprintf(&b, "byte(%q)\n", t)
		case int64:
			fmt.Fprintf(&b, "int64(%d)\n", t)
		case uint64:
			fmt.Fprintf(&b, "uint64(%d)\n", t)
		default:
			return fmt.Errorf("unsupported corpus value type %T", v)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), b.Bytes(), 0o644)
}

func main() {
	log.SetFlags(0)
	vic, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: snowbma.PaperKey})
	if err != nil {
		log.Fatalf("synthesize victim: %v", err)
	}
	img := vic.Device.ReadFlash()

	p, err := bitstream.ParsePackets(img)
	if err != nil {
		log.Fatalf("parse packets: %v", err)
	}
	fdri := p.FDRI(img)
	r, err := bitstream.ParseRegions(fdri)
	if err != nil {
		log.Fatalf("parse regions: %v", err)
	}
	desc := fdri[r.DescOff : r.DescOff+r.DescLen]

	var kE, kA [bitstream.KeySize]byte
	kE[0], kA[0] = 1, 2
	var iv [16]byte
	sealed, err := bitstream.Seal(img, kE, kA, iv)
	if err != nil {
		log.Fatalf("seal: %v", err)
	}

	noCRC := append([]byte(nil), img...)
	if err := bitstream.DisableCRC(noCRC); err != nil {
		log.Fatalf("disable CRC: %v", err)
	}

	// store: a realistic durable-fleet log (full job lifecycles across
	// tenants, a recovered re-run, a failure) plus the crash shapes the
	// recovery path must absorb — torn tail, mid-log bit flip, and a
	// length field claiming more bytes than any record may hold.
	wal, err := store.EncodeLog([]store.Record{
		{Seq: 1, TimeUS: 1000, Job: "job-0001", State: "queued", Kind: "attack", Tenant: "acme",
			Spec: json.RawMessage(`{"kind":"attack","tenant":"acme","victim":{"seed":7}}`)},
		{Seq: 2, TimeUS: 1100, Job: "job-0002", State: "queued", Kind: "campaign", Tenant: "free",
			Spec: json.RawMessage(`{"kind":"campaign","campaign":{"runs":3,"seed":11}}`)},
		{Seq: 3, TimeUS: 1200, Job: "job-0001", State: "running"},
		{Seq: 4, TimeUS: 1900, Job: "job-0001", State: "done",
			Result: json.RawMessage(`{"verified":true,"loads":3}`)},
		{Seq: 5, TimeUS: 2000, Job: "job-0002", State: "running"},
		{Seq: 6, TimeUS: 2500, Job: "job-0002", State: "failed", Error: "device wedged"},
		{Seq: 7, TimeUS: 3000, Job: "job-0003", State: "queued", Kind: "attack", Recovered: true,
			Spec: json.RawMessage(`{"kind":"attack"}`)},
	})
	if err != nil {
		log.Fatalf("encode wal: %v", err)
	}
	walTorn := wal[:len(wal)-5]
	walFlip := append([]byte(nil), wal...)
	walFlip[len(walFlip)/3] ^= 0x40
	walHuge := append([]byte(nil), wal[:8]...) // magic only, then a lying length
	walHuge = binary.BigEndian.AppendUint32(walHuge, uint32(store.MaxRecordSize+1))
	walHuge = append(walHuge, 0xDE, 0xAD, 0xBE, 0xEF)

	type entry struct {
		dir, name string
		vals      []any
	}
	entries := []entry{
		// bitstream: the packet walker gets the real image plus headers
		// truncated at interesting boundaries.
		{"internal/bitstream/testdata/fuzz/FuzzParsePackets", "seed-synth-image", []any{img}},
		{"internal/bitstream/testdata/fuzz/FuzzParsePackets", "seed-truncated-header", []any{img[:8]}},
		{"internal/bitstream/testdata/fuzz/FuzzParsePackets", "seed-sealed-envelope", []any{sealed}},
		{"internal/bitstream/testdata/fuzz/FuzzParseRegions", "seed-synth-fdri", []any{fdri}},
		{"internal/bitstream/testdata/fuzz/FuzzParseRegions", "seed-header-frame-only", []any{fdri[:bitstream.FrameBytes]}},
		{"internal/bitstream/testdata/fuzz/FuzzUnmarshalDescription", "seed-synth-description", []any{desc}},
		{"internal/bitstream/testdata/fuzz/FuzzUnmarshalDescription", "seed-truncated-description", []any{desc[:len(desc)/2]}},
		{"internal/bitstream/testdata/fuzz/FuzzOpenEnvelope", "seed-sealed-image", []any{sealed}},
		{"internal/bitstream/testdata/fuzz/FuzzOpenEnvelope", "seed-clipped-tail", []any{sealed[:len(sealed)-16]}},

		// device: a loadable image, its CRC-disabled variant (content
		// mutations get past the checksum) and a one-byte-short copy.
		{"internal/device/testdata/fuzz/FuzzLoad", "seed-synth-image", []any{img}},
		{"internal/device/testdata/fuzz/FuzzLoad", "seed-crc-disabled", []any{noCRC}},
		{"internal/device/testdata/fuzz/FuzzLoad", "seed-short-image", []any{img[:len(img)-1]}},

		// device batch differential: lane counts around the width
		// boundaries with distinct patch/IV seeds.
		{"internal/device/testdata/fuzz/FuzzClockBatchDifferential", "seed-lanes-3", []any{byte(2), int64(99), uint64(0x0011223344556677)}},
		{"internal/device/testdata/fuzz/FuzzClockBatchDifferential", "seed-lanes-63", []any{byte(62), int64(-17), uint64(0xFFFFFFFFFFFFFFFF)}},
		{"internal/device/testdata/fuzz/FuzzClockBatchDifferential", "seed-lanes-wrap", []any{byte(200), int64(5), uint64(0)}},

		// store: the durable job log decoder gets a full multi-tenant
		// lifecycle log and its three canonical corruption shapes.
		{"internal/store/testdata/fuzz/FuzzWALDecode", "seed-fleet-log", []any{wal}},
		{"internal/store/testdata/fuzz/FuzzWALDecode", "seed-torn-tail", []any{walTorn}},
		{"internal/store/testdata/fuzz/FuzzWALDecode", "seed-bit-flip", []any{walFlip}},
		{"internal/store/testdata/fuzz/FuzzWALDecode", "seed-lying-length", []any{walHuge}},

		// boolfn: paper expressions (F8/F19 style), operator soup and
		// near-miss syntax the in-code seeds don't cover.
		{"internal/boolfn/testdata/fuzz/FuzzParse", "seed-z-path", []any{"(a1^a2^a3)a4a5!a6"}},
		{"internal/boolfn/testdata/fuzz/FuzzParse", "seed-f8-style", []any{"a6(a1a2 + !a1a3) + !a6(a1a4 + !a1a5)"}},
		{"internal/boolfn/testdata/fuzz/FuzzParse", "seed-postfix-negation", []any{"a1'a2' ^ (a3 + a4')"}},
		{"internal/boolfn/testdata/fuzz/FuzzParse", "seed-constants", []any{"1 ^ 0 + a1(1)"}},
		{"internal/boolfn/testdata/fuzz/FuzzParse", "seed-deep-nesting", []any{"((((((a1 ^ a2))))))!((a3))"}},
		{"internal/boolfn/testdata/fuzz/FuzzParse", "seed-unbalanced", []any{"((a1 ^ a2"}},
	}
	for _, e := range entries {
		if err := writeCorpus(e.dir, e.name, e.vals...); err != nil {
			log.Fatalf("write %s/%s: %v", e.dir, e.name, err)
		}
	}
	log.Printf("wrote %d corpus files", len(entries))
}
