package snowbma

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// normalizeReport zeroes the report fields that are not part of the
// semantic attack outcome: wall-clock scan timings, the process-wide
// candidate-catalogue cache counters (which depend on what earlier
// tests already compiled), and the width-dependent simulator counters
// (two runs at different sweep widths do the same attack in a
// different number of fabric passes).
func normalizeReport(r *Report) *Report {
	c := r.Clone()
	c.Scan.CompileTime = 0
	c.Scan.ScanTime = 0
	c.Scan.CatalogueHits = 0
	c.Scan.CatalogueMisses = 0
	c.Batch.Width = 0
	c.Batch.Passes = 0
	c.Batch.LaneWords = 0
	return c
}

func buildTestVictim(t *testing.T) *Victim {
	t.Helper()
	v, err := BuildVictim(VictimConfig{Key: PaperKey})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestDeprecatedAttackWrappersEquivalent pins the facade redesign
// contract: every deprecated fixed-signature entrypoint produces a
// report identical to its options-based replacement on the same victim
// design, with and without telemetry attached.
func TestDeprecatedAttackWrappersEquivalent(t *testing.T) {
	ctx := context.Background()

	oldRep, err := RunAttackLanes(buildTestVictim(t), PaperIV, nil, MaxLanes)
	if err != nil {
		t.Fatal(err)
	}
	newRep, err := Attack(ctx, buildTestVictim(t), PaperIV, WithLanes(MaxLanes))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeReport(oldRep), normalizeReport(newRep)) {
		t.Fatalf("RunAttackLanes and Attack reports diverge:\nold: %+v\nnew: %+v", oldRep, newRep)
	}
	if !newRep.Verified || newRep.Key != PaperKey {
		t.Fatalf("options attack failed: verified=%v key=%08x", newRep.Verified, newRep.Key)
	}

	// Traced variant: telemetry must not change the report.
	oldTel, newTel := NewTelemetry(), NewTelemetry()
	oldTraced, err := RunAttackTraced(buildTestVictim(t), PaperIV, nil, 8, oldTel)
	if err != nil {
		t.Fatal(err)
	}
	newTraced, err := Attack(ctx, buildTestVictim(t), PaperIV, WithLanes(8), WithTelemetry(newTel))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeReport(oldTraced), normalizeReport(newTraced)) {
		t.Fatal("RunAttackTraced and Attack(WithTelemetry) reports diverge")
	}
	// Across lane widths only the simulator-side BatchStats may differ;
	// the modeled hardware cost and the recovered secrets are invariant.
	if oldRep.Loads != newTraced.Loads || oldRep.Key != newTraced.Key || oldRep.IV != newTraced.IV {
		t.Fatalf("lane width changed the modeled attack outcome: loads %d vs %d",
			oldRep.Loads, newTraced.Loads)
	}
	if len(newTel.Tracer.Roots()) == 0 {
		t.Fatal("WithTelemetry recorded no spans")
	}
}

func TestDeprecatedCensusWrapperEquivalent(t *testing.T) {
	oldRep, err := RunCensusAttackLanes(buildTestVictim(t), PaperIV, nil, MaxLanes)
	if err != nil {
		t.Fatal(err)
	}
	newRep, err := CensusAttack(context.Background(), buildTestVictim(t), PaperIV)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeReport(oldRep), normalizeReport(newRep)) {
		t.Fatal("RunCensusAttackLanes and CensusAttack reports diverge")
	}
	if !newRep.Verified || newRep.Key != PaperKey {
		t.Fatalf("census attack failed: verified=%v key=%08x", newRep.Verified, newRep.Key)
	}
}

func TestDeprecatedFindFunctionWrapperEquivalent(t *testing.T) {
	flash := buildTestVictim(t).Device.ReadFlash()
	const expr = "(a1^a2^a3)a4a5!a6"
	// Warm the process-wide catalogue cache so both passes see the same
	// cache state.
	if _, err := FindFunction(flash, expr); err != nil {
		t.Fatal(err)
	}
	oldHits, oldStats, err := FindFunctionStats(flash, expr, 2)
	if err != nil {
		t.Fatal(err)
	}
	newHits, newStats, err := FindLUTs(context.Background(), flash, expr, WithParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldHits, newHits) {
		t.Fatalf("match divergence: old %v, new %v", oldHits, newHits)
	}
	oldStats.CompileTime, oldStats.ScanTime = 0, 0
	newStats.CompileTime, newStats.ScanTime = 0, 0
	if !reflect.DeepEqual(oldStats, newStats) {
		t.Fatalf("stats divergence:\nold: %+v\nnew: %+v", oldStats, newStats)
	}
	// INIT-literal dispatch (ParseAuto) still works through both paths.
	if _, err := FindFunction(flash, "64'hFFF7F7FF00080800"); err != nil {
		t.Fatal(err)
	}
}

func TestAttackCancelledViaFacade(t *testing.T) {
	v := buildTestVictim(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Attack(ctx, v, PaperIV); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Attack with cancelled ctx = %v, want ErrCancelled", err)
	}
	if _, err := CensusAttack(ctx, v, PaperIV); !errors.Is(err, ErrCancelled) {
		t.Fatalf("CensusAttack with cancelled ctx = %v, want ErrCancelled", err)
	}
	if _, _, err := FindLUTs(ctx, v.Device.ReadFlash(), "(a1^a2^a3)a4a5!a6"); !errors.Is(err, ErrCancelled) {
		t.Fatalf("FindLUTs with cancelled ctx = %v, want ErrCancelled", err)
	}
	if _, err := RunCampaignContext(ctx, CampaignConfig{Runs: 2, Seed: 1}); !errors.Is(err, ErrCancelled) {
		t.Fatalf("RunCampaignContext with cancelled ctx = %v, want ErrCancelled", err)
	}
}

func TestLaneValidationViaFacade(t *testing.T) {
	v := buildTestVictim(t)
	for _, lanes := range []int{0, -1, MaxLanes + 1} {
		if _, err := Attack(context.Background(), v, PaperIV, WithLanes(lanes)); !errors.Is(err, ErrLanes) {
			t.Fatalf("Attack(WithLanes(%d)) = %v, want ErrLanes", lanes, err)
		}
		if err := ValidateLanes(lanes); !errors.Is(err, ErrLanes) {
			t.Fatalf("ValidateLanes(%d) = %v, want ErrLanes", lanes, err)
		}
	}
	if err := ValidateLanes(MaxLanes); err != nil {
		t.Fatalf("ValidateLanes(MaxLanes) = %v", err)
	}
}
