package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadStructural parses the text format emitted by WriteStructural back
// into a network. The format is line oriented:
//
//	n7 = pi load
//	n9 = xor(n7, n8)
//	n12 = bram[0].bit3 rom[3]
//	output z[0] = n9
//
// BRAM and adder payloads (content, operand lists) are not part of the
// listing, so networks containing them are rejected — the format covers
// the combinational/FF subset used for design interchange in tests and
// tooling.
func ReadStructural(r io.Reader) (*Netlist, error) {
	n := New()
	idMap := map[string]NodeID{"n0": 0, "n1": 1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	var ffFixups []struct {
		q NodeID
		d string
	}
	resolve := func(tok string) (NodeID, error) {
		id, ok := idMap[tok]
		if !ok {
			return Invalid, fmt.Errorf("netlist: line %d references undefined net %q", lineNo, tok)
		}
		return id, nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "ff ") {
			// "ff nQ <= nD": flip-flop data wiring.
			rest := strings.TrimPrefix(line, "ff ")
			parts := strings.SplitN(rest, "<=", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("netlist: line %d: malformed ff wiring", lineNo)
			}
			q, err := resolve(strings.TrimSpace(parts[0]))
			if err != nil {
				return nil, err
			}
			ffFixups = append(ffFixups, struct {
				q NodeID
				d string
			}{q, strings.TrimSpace(parts[1])})
			continue
		}
		if strings.HasPrefix(line, "output ") {
			rest := strings.TrimPrefix(line, "output ")
			parts := strings.SplitN(rest, "=", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("netlist: line %d: malformed output", lineNo)
			}
			src, err := resolve(strings.TrimSpace(parts[1]))
			if err != nil {
				return nil, err
			}
			n.Output(strings.TrimSpace(parts[0]), src)
			continue
		}
		parts := strings.SplitN(line, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("netlist: line %d: malformed definition", lineNo)
		}
		name := strings.TrimSpace(parts[0])
		rhs := strings.TrimSpace(parts[1])
		if !strings.HasPrefix(name, "n") {
			return nil, fmt.Errorf("netlist: line %d: bad net name %q", lineNo, name)
		}
		switch {
		case rhs == "const0 const0" || rhs == "const0":
			idMap[name] = 0
		case rhs == "const1 const1" || rhs == "const1":
			idMap[name] = 1
		case strings.HasPrefix(rhs, "pi "):
			idMap[name] = n.Input(strings.TrimSpace(strings.TrimPrefix(rhs, "pi ")))
		case strings.HasPrefix(rhs, "ffq "):
			fields := strings.Fields(strings.TrimPrefix(rhs, "ffq "))
			init := false
			ffName := ""
			for _, f := range fields {
				switch f {
				case "init0":
				case "init1":
					init = true
				default:
					ffName = f
				}
			}
			idMap[name] = n.NewFF(ffName, init)
		case strings.HasPrefix(rhs, "bram["), strings.HasPrefix(rhs, "carry"):
			return nil, fmt.Errorf("netlist: line %d: %q requires payload not present in the listing", lineNo, rhs)
		default:
			op, argStr, ok := splitCall(rhs)
			if !ok {
				return nil, fmt.Errorf("netlist: line %d: unrecognized %q", lineNo, rhs)
			}
			args, err := parseArgs(argStr)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			ids := make([]NodeID, len(args))
			for i, a := range args {
				if ids[i], err = resolve(a); err != nil {
					return nil, err
				}
			}
			id, err := buildGate(n, op, ids, name)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			idMap[name] = id
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fix := range ffFixups {
		d, ok := idMap[fix.d]
		if !ok {
			return nil, fmt.Errorf("netlist: ffd references undefined net %q", fix.d)
		}
		n.ConnectFF(fix.q, d)
	}
	return n, nil
}

func splitCall(rhs string) (op, args string, ok bool) {
	open := strings.IndexByte(rhs, '(')
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return "", "", false
	}
	return rhs[:open], rhs[open : len(rhs)-0], true
}

// parseArgs parses "(a, b, c)" into tokens.
func parseArgs(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("malformed argument list %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return nil, nil
	}
	parts := strings.Split(inner, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts, nil
}

func buildGate(n *Netlist, op string, args []NodeID, name string) (NodeID, error) {
	want := map[string]int{"and": 2, "or": 2, "xor": 2, "not": 1, "buf": 1, "mux": 3}
	if w, ok := want[op]; !ok {
		return Invalid, fmt.Errorf("unknown op %q", op)
	} else if len(args) != w {
		return Invalid, fmt.Errorf("op %q wants %d args, got %d", op, w, len(args))
	}
	switch op {
	case "and":
		return n.And(args[0], args[1]), nil
	case "or":
		return n.Or(args[0], args[1]), nil
	case "xor":
		return n.Xor(args[0], args[1]), nil
	case "not":
		return n.Not(args[0]), nil
	case "buf":
		return n.Buf(args[0], strings.TrimPrefix(name, "n")), nil
	case "mux":
		return n.Mux(args[0], args[1], args[2]), nil
	}
	return Invalid, fmt.Errorf("unreachable op %q", op)
}
