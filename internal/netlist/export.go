package netlist

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT emits the network in Graphviz DOT form for inspection. Large
// networks render poorly; the intended use is debugging small cones, so
// WriteDOTCone is usually preferable.
func (n *Netlist) WriteDOT(w io.Writer, title string) error {
	ids := make([]NodeID, len(n.Nodes))
	for i := range ids {
		ids[i] = NodeID(i)
	}
	return n.writeDOT(w, title, ids)
}

// WriteDOTCone emits only the transitive fanin cone of root.
func (n *Netlist) WriteDOTCone(w io.Writer, title string, root NodeID) error {
	return n.writeDOT(w, title, n.TrFanin(root))
}

func (n *Netlist) writeDOT(w io.Writer, title string, ids []NodeID) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", title); err != nil {
		return err
	}
	in := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		in[id] = true
	}
	for _, id := range ids {
		nd := n.Nodes[id]
		label := nd.Op.String()
		if nd.Name != "" {
			label = fmt.Sprintf("%s\\n%s", nd.Name, nd.Op)
		}
		shape := "box"
		switch nd.Op {
		case OpPI, OpFFQ, OpBRAMOut, OpConst0, OpConst1:
			shape = "ellipse"
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\" shape=%s];\n", id, label, shape); err != nil {
			return err
		}
		for _, f := range nd.Fanin {
			if in[f] {
				if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", f, id); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteStructural emits a human-readable structural listing, one net per
// line, resembling a flattened structural HDL. It is deterministic and
// used in golden tests.
func (n *Netlist) WriteStructural(w io.Writer) error {
	for id, nd := range n.Nodes {
		var line string
		switch nd.Op {
		case OpConst0, OpConst1, OpPI:
			line = fmt.Sprintf("n%d = %s %s", id, nd.Op, nd.Name)
		case OpFFQ:
			init := "init0"
			if n.FFs[nd.Aux].Init {
				init = "init1"
			}
			line = fmt.Sprintf("n%d = ffq %s %s", id, nd.Name, init)
		case OpBRAMOut:
			line = fmt.Sprintf("n%d = bram[%d].bit%d %s", id, nd.Aux>>8, nd.Aux&0xff, nd.Name)
		default:
			args := make([]string, len(nd.Fanin))
			for i, f := range nd.Fanin {
				args[i] = fmt.Sprintf("n%d", f)
			}
			line = fmt.Sprintf("n%d = %s(%s)", id, nd.Op, strings.Join(args, ", "))
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	for _, ff := range n.FFs {
		if ff.D == Invalid {
			continue
		}
		if _, err := fmt.Fprintf(w, "ff n%d <= n%d\n", ff.Q, ff.D); err != nil {
			return err
		}
	}
	names := n.OutputNames()
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "output %s = n%d\n", name, n.POs[name]); err != nil {
			return err
		}
	}
	return nil
}
