package netlist

import "fmt"

// Word is a little-endian vector of nets: Word[0] is bit 0 (LSB). The
// SNOW 3G datapath is 32 bits wide, but the helpers are width-generic so
// tests can exercise reduced widths.
type Word []NodeID

// InputWord declares w primary inputs named name[0..w-1].
func (n *Netlist) InputWord(name string, w int) Word {
	out := make(Word, w)
	for i := range out {
		out[i] = n.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return out
}

// FFWord declares a register of w flip-flops and returns their Q nets.
func (n *Netlist) FFWord(name string, w int, init uint64) Word {
	out := make(Word, w)
	for i := range out {
		out[i] = n.NewFF(fmt.Sprintf("%s[%d]", name, i), init>>uint(i)&1 == 1)
	}
	return out
}

// ConnectWord wires register q (built with FFWord) to data d.
func (n *Netlist) ConnectWord(q, d Word) {
	if len(q) != len(d) {
		panic("netlist: ConnectWord width mismatch")
	}
	for i := range q {
		n.ConnectFF(q[i], d[i])
	}
}

// ConstWord returns w constant nets encoding v.
func (n *Netlist) ConstWord(v uint64, w int) Word {
	out := make(Word, w)
	for i := range out {
		out[i] = n.Const(v>>uint(i)&1 == 1)
	}
	return out
}

// XorWord returns the bitwise XOR of a and b.
func (n *Netlist) XorWord(a, b Word) Word {
	if len(a) != len(b) {
		panic("netlist: XorWord width mismatch")
	}
	out := make(Word, len(a))
	for i := range out {
		out[i] = n.Xor(a[i], b[i])
	}
	return out
}

// AndWordBit gates every bit of a with the control net s.
func (n *Netlist) AndWordBit(a Word, s NodeID) Word {
	out := make(Word, len(a))
	for i := range out {
		out[i] = n.And(a[i], s)
	}
	return out
}

// NotWord inverts every bit.
func (n *Netlist) NotWord(a Word) Word {
	out := make(Word, len(a))
	for i := range out {
		out[i] = n.Not(a[i])
	}
	return out
}

// MuxWord selects a (s=1) or b (s=0) bitwise.
func (n *Netlist) MuxWord(s NodeID, a, b Word) Word {
	if len(a) != len(b) {
		panic("netlist: MuxWord width mismatch")
	}
	out := make(Word, len(a))
	for i := range out {
		out[i] = n.Mux(s, a[i], b[i])
	}
	return out
}

// AddWord builds a ripple-carry adder modulo 2^w (the ⊞ of SNOW 3G).
// Sum and carry are expressed through 2-input gates so the technology
// mapper sees ordinary logic.
func (n *Netlist) AddWord(a, b Word) Word {
	if len(a) != len(b) {
		panic("netlist: AddWord width mismatch")
	}
	out := make(Word, len(a))
	carry := n.Const(false)
	for i := range a {
		axb := n.Xor(a[i], b[i])
		out[i] = n.Xor(axb, carry)
		// carry' = a·b + carry·(a ⊕ b)
		carry = n.Or(n.And(a[i], b[i]), n.And(carry, axb))
	}
	return out
}

// ShiftLeftBytes returns a shifted left by k bytes with zero fill, the
// "byte shift to the left" of the α⊙ operation.
func (n *Netlist) ShiftLeftBytes(a Word, k int) Word {
	out := make(Word, len(a))
	for i := range out {
		src := i - 8*k
		if src >= 0 {
			out[i] = a[src]
		} else {
			out[i] = n.Const(false)
		}
	}
	return out
}

// ShiftRightBytes returns a shifted right by k bytes with zero fill.
func (n *Netlist) ShiftRightBytes(a Word, k int) Word {
	out := make(Word, len(a))
	for i := range out {
		src := i + 8*k
		if src < len(a) {
			out[i] = a[src]
		} else {
			out[i] = n.Const(false)
		}
	}
	return out
}

// Byte extracts byte k (bits 8k..8k+7) of the word.
func (w Word) Byte(k int) Word { return w[8*k : 8*k+8] }

// OutputWord registers every bit of a word as a named primary output.
func (n *Netlist) OutputWord(name string, w Word) {
	for i, b := range w {
		n.Output(fmt.Sprintf("%s[%d]", name, i), b)
	}
}
