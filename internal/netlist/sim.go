package netlist

import "fmt"

// Sim is a cycle-accurate two-phase simulator: Step evaluates all
// combinational logic for the current register state and inputs, then
// commits the next flip-flop state. Values persist between steps so
// outputs can be probed after each cycle.
type Sim struct {
	n      *Netlist
	values []bool
	regs   []bool
	inputs map[NodeID]bool
}

// NewSim validates the netlist and prepares a simulator with registers in
// their reset state.
func NewSim(n *Netlist) (*Sim, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		n:      n,
		values: make([]bool, len(n.Nodes)),
		regs:   make([]bool, len(n.FFs)),
		inputs: make(map[NodeID]bool),
	}
	s.Reset()
	return s, nil
}

// Reset restores every flip-flop to its init value.
func (s *Sim) Reset() {
	for i, ff := range s.n.FFs {
		s.regs[i] = ff.Init
	}
}

// SetInput assigns a primary input for subsequent steps.
func (s *Sim) SetInput(id NodeID, v bool) {
	if s.n.Nodes[id].Op != OpPI {
		panic(fmt.Sprintf("netlist: SetInput on non-PI node %d", id))
	}
	s.inputs[id] = v
}

// SetInputWord assigns a whole input word from the bits of v.
func (s *Sim) SetInputWord(w Word, v uint64) {
	for i, id := range w {
		s.SetInput(id, v>>uint(i)&1 == 1)
	}
}

// eval computes all node values for the current inputs and register state.
func (s *Sim) eval() {
	nodes := s.n.Nodes
	vals := s.values
	for id := range nodes {
		nd := &nodes[id]
		switch nd.Op {
		case OpConst0:
			vals[id] = false
		case OpConst1:
			vals[id] = true
		case OpPI:
			vals[id] = s.inputs[NodeID(id)]
		case OpFFQ:
			vals[id] = s.regs[nd.Aux]
		case OpBRAMOut:
			ram := &s.n.BRAMs[nd.Aux>>8]
			bit := uint(nd.Aux & 0xff)
			addr := 0
			for i, a := range nd.Fanin {
				if vals[a] {
					addr |= 1 << uint(i)
				}
			}
			vals[id] = ram.Content[addr]>>bit&1 == 1
		case OpAdderOut:
			ad := &s.n.Adders[nd.Aux>>8]
			vals[id] = adderBit(ad, int(nd.Aux&0xff), func(x NodeID) bool { return vals[x] })
		case OpAnd:
			vals[id] = vals[nd.Fanin[0]] && vals[nd.Fanin[1]]
		case OpOr:
			vals[id] = vals[nd.Fanin[0]] || vals[nd.Fanin[1]]
		case OpXor:
			vals[id] = vals[nd.Fanin[0]] != vals[nd.Fanin[1]]
		case OpNot:
			vals[id] = !vals[nd.Fanin[0]]
		case OpBuf:
			vals[id] = vals[nd.Fanin[0]]
		case OpMux:
			if vals[nd.Fanin[0]] {
				vals[id] = vals[nd.Fanin[1]]
			} else {
				vals[id] = vals[nd.Fanin[2]]
			}
		default:
			panic(fmt.Sprintf("netlist: unknown op %v in simulation", nd.Op))
		}
	}
}

// Step runs one clock cycle: evaluate, then latch flip-flop inputs.
func (s *Sim) Step() {
	s.eval()
	for i := range s.n.FFs {
		s.regs[i] = s.values[s.n.FFs[i].D]
	}
}

// Settle evaluates combinational logic without clocking registers,
// letting callers probe Moore outputs for the current state.
func (s *Sim) Settle() { s.eval() }

// Value returns the value of a node after the last eval.
func (s *Sim) Value(id NodeID) bool { return s.values[id] }

// Output returns the named primary output after the last eval.
func (s *Sim) Output(name string) bool {
	id, ok := s.n.POs[name]
	if !ok {
		panic(fmt.Sprintf("netlist: unknown output %q", name))
	}
	return s.values[id]
}

// OutputWord gathers w bits named name[i] into an integer.
func (s *Sim) OutputWord(name string, w int) uint64 {
	var v uint64
	for i := 0; i < w; i++ {
		if s.Output(fmt.Sprintf("%s[%d]", name, i)) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// WordValue gathers the value of an arbitrary word of nets.
func (s *Sim) WordValue(w Word) uint64 {
	var v uint64
	for i, id := range w {
		if s.values[id] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// RegState returns a copy of the flip-flop state for instrumentation.
func (s *Sim) RegState() []bool { return append([]bool(nil), s.regs...) }
