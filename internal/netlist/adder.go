package netlist

import "fmt"

// Adder is a dedicated carry-chain primitive (the CARRY4 analogue of
// Xilinx slices): it computes Sum = (A + B) mod 2^w without consuming
// LUTs. Its configuration is part of the slice wiring, not of LUT truth
// tables, which is why adders never show up in the paper's FINDLUT
// results — modelling them as a primitive keeps the LUT population
// faithful to the hardware.
type Adder struct {
	Name string
	A    []NodeID
	B    []NodeID
	Sum  []NodeID
}

// NewAdder declares a carry-chain adder over equal-width operands and
// returns the sum nets, LSB first. Sum bit i is an OpAdderOut node whose
// fanins are A[0..i] and B[0..i] (the nets its value depends on), keeping
// the topological-evaluation property intact.
func (n *Netlist) NewAdder(name string, a, b Word) Word {
	if len(a) != len(b) {
		panic("netlist: NewAdder width mismatch")
	}
	addIdx := len(n.Adders)
	sum := make(Word, len(a))
	for i := range a {
		fanin := make([]NodeID, 0, 2*(i+1))
		fanin = append(fanin, a[:i+1]...)
		fanin = append(fanin, b[:i+1]...)
		sum[i] = n.addNode(Node{
			Op:    OpAdderOut,
			Fanin: fanin,
			Aux:   int32(addIdx)<<8 | int32(i),
			Name:  fmt.Sprintf("%s[%d]", name, i),
		})
	}
	n.Adders = append(n.Adders, Adder{
		Name: name,
		A:    append(Word(nil), a...),
		B:    append(Word(nil), b...),
		Sum:  sum,
	})
	return sum
}

// adderBit evaluates sum bit `bit` of adder ad given a net-value reader.
func adderBit(ad *Adder, bit int, val func(NodeID) bool) bool {
	carry := false
	for i := 0; i <= bit; i++ {
		av, bv := val(ad.A[i]), val(ad.B[i])
		if i == bit {
			return av != bv != carry
		}
		carry = (av && bv) || (carry && (av != bv))
	}
	panic("unreachable")
}
