// Package netlist models gate-level Boolean networks N = (V, E) in the
// sense of Section II of the paper: nodes are primary inputs, constants,
// logic gates, flip-flop outputs and block-RAM ports; edges are the fanin
// relations. Networks are built through a constructor API that maintains
// the invariant fanin(v) < v in creation order, so the node slice is
// always a valid topological order and combinational evaluation is one
// forward pass.
//
// The package also provides sequential simulation (flip-flops and
// synchronous reset), word-level construction helpers used by the SNOW 3G
// RTL generator, structural hashing, and exports for diagnostics.
package netlist

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within its network. The zero and one constants
// are pre-created so that valid IDs of user logic start at 2.
type NodeID int32

// Invalid is the out-of-band node ID.
const Invalid NodeID = -1

// Op enumerates node kinds.
type Op uint8

const (
	// OpConst0 and OpConst1 are the constant functions.
	OpConst0 Op = iota
	OpConst1
	// OpPI is a primary input.
	OpPI
	// OpFFQ is the output of a D flip-flop (Aux = flip-flop index).
	OpFFQ
	// OpBRAMOut is one data-output bit of a block RAM (Aux packs the RAM
	// index and bit position); fanins are the address bits, LSB first.
	OpBRAMOut
	// OpAdderOut is one sum bit of a carry-chain adder primitive (Aux
	// packs the adder index and bit position); fanins are the operand
	// bits the sum bit depends on.
	OpAdderOut
	// OpAnd, OpOr, OpXor are two-input gates.
	OpAnd
	OpOr
	OpXor
	// OpNot is the inverter.
	OpNot
	// OpMux is the 2-to-1 multiplexer: fanin[0] selects fanin[2] (sel=0)
	// or fanin[1] (sel=1).
	OpMux
	// OpBuf is a buffer, used to give stable names to logical nets.
	OpBuf
)

var opNames = map[Op]string{
	OpConst0: "const0", OpConst1: "const1", OpPI: "pi", OpFFQ: "ffq",
	OpBRAMOut: "bram", OpAdderOut: "carry", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpNot: "not", OpMux: "mux", OpBuf: "buf",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsGate reports whether the op is combinational logic with fanins.
func (o Op) IsGate() bool {
	switch o {
	case OpAnd, OpOr, OpXor, OpNot, OpMux, OpBuf:
		return true
	}
	return false
}

// Node is one vertex of the network.
type Node struct {
	Op    Op
	Fanin []NodeID
	// Aux carries op-specific payload: flip-flop index for OpFFQ, packed
	// (ramIndex<<8 | bit) for OpBRAMOut.
	Aux  int32
	Name string
}

// FF is a D flip-flop. Q is the OpFFQ node exposing its state; D is wired
// later with ConnectFF because registers typically close combinational
// loops.
type FF struct {
	Name string
	D    NodeID
	Q    NodeID
	Init bool
}

// BRAM is a block RAM used as a combinational (asynchronous-read) ROM:
// in the victim design the S-boxes and the MULα/DIVα maps are table
// lookups whose content travels in the bitstream's BRAM frames. The real
// hardware registers the BRAM output; modelling the read as combinational
// is behaviourally equivalent for keystream generation and keeps the
// simulator a single forward pass per cycle.
type BRAM struct {
	Name     string
	AddrBits int
	DataBits int
	// Content[a] holds the data word at address a (low DataBits bits).
	Content []uint64
	Addr    []NodeID
	Out     []NodeID
}

// Netlist is a mutable gate-level network.
type Netlist struct {
	Nodes  []Node
	FFs    []FF
	BRAMs  []BRAM
	Adders []Adder
	// PIs in declaration order; POs are named output nets.
	PIs     []NodeID
	poNames []string
	POs     map[string]NodeID
	// strash dedupes structurally identical gates when enabled.
	strash map[strashKey]NodeID
	// fanoutCount is maintained incrementally for mapper heuristics.
	fanoutCount []int32
}

type strashKey struct {
	op Op
	f0 NodeID
	f1 NodeID
	f2 NodeID
}

// New returns an empty network with the two constants pre-created and
// structural hashing enabled.
func New() *Netlist {
	n := &Netlist{POs: make(map[string]NodeID), strash: make(map[strashKey]NodeID)}
	n.addNode(Node{Op: OpConst0, Name: "const0"})
	n.addNode(Node{Op: OpConst1, Name: "const1"})
	return n
}

// Const returns the node for the constant bit v.
func (n *Netlist) Const(v bool) NodeID {
	if v {
		return 1
	}
	return 0
}

func (n *Netlist) addNode(nd Node) NodeID {
	id := NodeID(len(n.Nodes))
	for _, f := range nd.Fanin {
		if f < 0 || f >= id {
			panic(fmt.Sprintf("netlist: fanin %d of new node %d violates topological construction", f, id))
		}
		n.fanoutCount[f]++
	}
	n.Nodes = append(n.Nodes, nd)
	n.fanoutCount = append(n.fanoutCount, 0)
	return id
}

// Input declares a primary input.
func (n *Netlist) Input(name string) NodeID {
	id := n.addNode(Node{Op: OpPI, Name: name})
	n.PIs = append(n.PIs, id)
	return id
}

// NewFF declares a flip-flop with the given reset value and returns its Q
// node. Wire the data input later with ConnectFF.
func (n *Netlist) NewFF(name string, init bool) NodeID {
	ffIdx := int32(len(n.FFs))
	q := n.addNode(Node{Op: OpFFQ, Aux: ffIdx, Name: name})
	n.FFs = append(n.FFs, FF{Name: name, D: Invalid, Q: q, Init: init})
	return q
}

// ConnectFF wires the data input of the flip-flop whose Q node is q.
func (n *Netlist) ConnectFF(q, d NodeID) {
	nd := n.Nodes[q]
	if nd.Op != OpFFQ {
		panic("netlist: ConnectFF on a non-flip-flop node")
	}
	n.FFs[nd.Aux].D = d
}

// NewBRAM declares a combinational ROM with the given address nets and
// content and returns the data-output nets, LSB first.
func (n *Netlist) NewBRAM(name string, addr []NodeID, dataBits int, content []uint64) []NodeID {
	if len(content) != 1<<len(addr) {
		panic(fmt.Sprintf("netlist: BRAM %s content size %d != 2^%d", name, len(content), len(addr)))
	}
	ramIdx := len(n.BRAMs)
	out := make([]NodeID, dataBits)
	for b := 0; b < dataBits; b++ {
		out[b] = n.addNode(Node{
			Op:    OpBRAMOut,
			Fanin: append([]NodeID(nil), addr...),
			Aux:   int32(ramIdx)<<8 | int32(b),
			Name:  fmt.Sprintf("%s[%d]", name, b),
		})
	}
	n.BRAMs = append(n.BRAMs, BRAM{
		Name: name, AddrBits: len(addr), DataBits: dataBits,
		Content: append([]uint64(nil), content...),
		Addr:    append([]NodeID(nil), addr...),
		Out:     out,
	})
	return out
}

// gate creates (or reuses, through structural hashing) a combinational
// node after constant folding and trivial simplification.
func (n *Netlist) gate(op Op, fanin ...NodeID) NodeID {
	if folded, ok := n.fold(op, fanin); ok {
		return folded
	}
	key := strashKey{op: op, f0: Invalid, f1: Invalid, f2: Invalid}
	// Commutative gates are canonicalized so a&b and b&a share a node.
	if (op == OpAnd || op == OpOr || op == OpXor) && fanin[0] > fanin[1] {
		fanin[0], fanin[1] = fanin[1], fanin[0]
	}
	for i, f := range fanin {
		switch i {
		case 0:
			key.f0 = f
		case 1:
			key.f1 = f
		case 2:
			key.f2 = f
		}
	}
	if id, ok := n.strash[key]; ok {
		return id
	}
	id := n.addNode(Node{Op: op, Fanin: append([]NodeID(nil), fanin...)})
	n.strash[key] = id
	return id
}

// fold applies constant folding and idempotence rules.
func (n *Netlist) fold(op Op, f []NodeID) (NodeID, bool) {
	isC := func(id NodeID) (bool, bool) { // value, isConst
		switch n.Nodes[id].Op {
		case OpConst0:
			return false, true
		case OpConst1:
			return true, true
		}
		return false, false
	}
	switch op {
	case OpNot:
		if v, c := isC(f[0]); c {
			return n.Const(!v), true
		}
		// Double negation cancels.
		if n.Nodes[f[0]].Op == OpNot {
			return n.Nodes[f[0]].Fanin[0], true
		}
	case OpBuf:
		// Buffers are kept only when explicitly named by the caller.
	case OpAnd:
		a, b := f[0], f[1]
		if v, c := isC(a); c {
			if !v {
				return n.Const(false), true
			}
			return b, true
		}
		if v, c := isC(b); c {
			if !v {
				return n.Const(false), true
			}
			return a, true
		}
		if a == b {
			return a, true
		}
	case OpOr:
		a, b := f[0], f[1]
		if v, c := isC(a); c {
			if v {
				return n.Const(true), true
			}
			return b, true
		}
		if v, c := isC(b); c {
			if v {
				return n.Const(true), true
			}
			return a, true
		}
		if a == b {
			return a, true
		}
	case OpXor:
		a, b := f[0], f[1]
		if v, c := isC(a); c {
			if v {
				return n.gate(OpNot, b), true
			}
			return b, true
		}
		if v, c := isC(b); c {
			if v {
				return n.gate(OpNot, a), true
			}
			return a, true
		}
		if a == b {
			return n.Const(false), true
		}
	case OpMux:
		s, t, e := f[0], f[1], f[2]
		if v, c := isC(s); c {
			if v {
				return t, true
			}
			return e, true
		}
		if t == e {
			return t, true
		}
		if vt, ct := isC(t); ct {
			if ve, ce := isC(e); ce {
				if vt && !ve {
					return s, true
				}
				if !vt && ve {
					return n.gate(OpNot, s), true
				}
			}
		}
	}
	return Invalid, false
}

// And, Or, Xor, Not, Mux, Buf build gates with folding and sharing.
func (n *Netlist) And(a, b NodeID) NodeID    { return n.gate(OpAnd, a, b) }
func (n *Netlist) Or(a, b NodeID) NodeID     { return n.gate(OpOr, a, b) }
func (n *Netlist) Xor(a, b NodeID) NodeID    { return n.gate(OpXor, a, b) }
func (n *Netlist) Not(a NodeID) NodeID       { return n.gate(OpNot, a) }
func (n *Netlist) Mux(s, t, e NodeID) NodeID { return n.gate(OpMux, s, t, e) }
func (n *Netlist) Buf(a NodeID, name string) NodeID {
	id := n.addNode(Node{Op: OpBuf, Fanin: []NodeID{a}, Name: name})
	return id
}

// SetName attaches a diagnostic name to a node.
func (n *Netlist) SetName(id NodeID, name string) { n.Nodes[id].Name = name }

// Output marks a node as the primary output with the given name.
func (n *Netlist) Output(name string, id NodeID) {
	if _, dup := n.POs[name]; !dup {
		n.poNames = append(n.poNames, name)
	}
	n.POs[name] = id
}

// OutputNames returns output names in declaration order.
func (n *Netlist) OutputNames() []string {
	return append([]string(nil), n.poNames...)
}

// Fanout returns how many nodes (not POs or FF data inputs) read id.
func (n *Netlist) Fanout(id NodeID) int { return int(n.fanoutCount[id]) }

// NumNodes returns the node count including constants.
func (n *Netlist) NumNodes() int { return len(n.Nodes) }

// Stats summarizes the network composition.
type Stats struct {
	Nodes  int
	Gates  map[Op]int
	FFs    int
	BRAMs  int
	PIs    int
	POs    int
	Levels int
}

// ComputeStats counts node kinds and the combinational depth (unit delay,
// gates only).
func (n *Netlist) ComputeStats() Stats {
	s := Stats{Nodes: len(n.Nodes), Gates: make(map[Op]int), FFs: len(n.FFs),
		BRAMs: len(n.BRAMs), PIs: len(n.PIs), POs: len(n.POs)}
	level := make([]int, len(n.Nodes))
	for id, nd := range n.Nodes {
		if nd.Op.IsGate() {
			s.Gates[nd.Op]++
			max := 0
			for _, f := range nd.Fanin {
				if level[f] > max {
					max = level[f]
				}
			}
			level[id] = max + 1
			if level[id] > s.Levels {
				s.Levels = level[id]
			}
		}
	}
	return s
}

// TrFanin returns the transitive fanin cone of id (gates, stopping at
// PIs, constants, FF outputs and BRAM ports), sorted ascending.
func (n *Netlist) TrFanin(id NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var stack []NodeID
	push := func(v NodeID) {
		if !seen[v] {
			seen[v] = true
			stack = append(stack, v)
		}
	}
	push(id)
	var cone []NodeID
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cone = append(cone, v)
		if n.Nodes[v].Op.IsGate() {
			for _, f := range n.Nodes[v].Fanin {
				push(f)
			}
		}
	}
	sort.Slice(cone, func(i, j int) bool { return cone[i] < cone[j] })
	return cone
}

// Validate checks structural invariants: wired flip-flops, topological
// fanins, known ops. It returns the first violation found.
func (n *Netlist) Validate() error {
	for i, ff := range n.FFs {
		if ff.D == Invalid {
			return fmt.Errorf("netlist: flip-flop %d (%s) has unconnected D", i, ff.Name)
		}
		if ff.D < 0 || int(ff.D) >= len(n.Nodes) {
			return fmt.Errorf("netlist: flip-flop %d D out of range", i)
		}
	}
	for id, nd := range n.Nodes {
		for _, f := range nd.Fanin {
			if f < 0 || f >= NodeID(id) {
				return fmt.Errorf("netlist: node %d fanin %d not topological", id, f)
			}
		}
		switch nd.Op {
		case OpAnd, OpOr, OpXor:
			if len(nd.Fanin) != 2 {
				return fmt.Errorf("netlist: node %d %s arity %d", id, nd.Op, len(nd.Fanin))
			}
		case OpNot, OpBuf:
			if len(nd.Fanin) != 1 {
				return fmt.Errorf("netlist: node %d %s arity %d", id, nd.Op, len(nd.Fanin))
			}
		case OpMux:
			if len(nd.Fanin) != 3 {
				return fmt.Errorf("netlist: node %d mux arity %d", id, len(nd.Fanin))
			}
		}
	}
	for name, po := range n.POs {
		if po < 0 || int(po) >= len(n.Nodes) {
			return fmt.Errorf("netlist: output %s out of range", name)
		}
	}
	return nil
}
