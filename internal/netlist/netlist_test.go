package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstantsPreCreated(t *testing.T) {
	n := New()
	if n.Const(false) != 0 || n.Const(true) != 1 {
		t.Fatal("constants not at IDs 0 and 1")
	}
}

func TestConstantFolding(t *testing.T) {
	n := New()
	a := n.Input("a")
	if n.And(a, n.Const(false)) != n.Const(false) {
		t.Error("a·0 should fold to 0")
	}
	if n.And(a, n.Const(true)) != a {
		t.Error("a·1 should fold to a")
	}
	if n.Or(a, n.Const(true)) != n.Const(true) {
		t.Error("a+1 should fold to 1")
	}
	if n.Xor(a, a) != n.Const(false) {
		t.Error("a⊕a should fold to 0")
	}
	if n.Xor(a, n.Const(false)) != a {
		t.Error("a⊕0 should fold to a")
	}
	if n.Not(n.Not(a)) != a {
		t.Error("double negation should cancel")
	}
	if n.Mux(n.Const(true), a, n.Const(false)) != a {
		t.Error("mux with constant select should fold")
	}
	na := n.Not(a)
	if n.Mux(a, n.Const(false), n.Const(true)) != na {
		t.Error("mux(a, 0, 1) should fold to ¬a")
	}
}

func TestStructuralHashing(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	g1 := n.And(a, b)
	g2 := n.And(b, a) // commuted
	if g1 != g2 {
		t.Fatal("commuted AND not shared")
	}
	g3 := n.Xor(a, b)
	g4 := n.Xor(a, b)
	if g3 != g4 {
		t.Fatal("identical XOR not shared")
	}
}

func TestCombinationalSim(t *testing.T) {
	n := New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	n.Output("f", n.Mux(c, n.Xor(a, b), n.And(a, b)))
	sim, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 8; m++ {
		av, bv, cv := m&1 == 1, m&2 == 2, m&4 == 4
		sim.SetInput(a, av)
		sim.SetInput(b, bv)
		sim.SetInput(c, cv)
		sim.Settle()
		want := av && bv
		if cv {
			want = av != bv
		}
		if sim.Output("f") != want {
			t.Fatalf("m=%d: f=%v, want %v", m, sim.Output("f"), want)
		}
	}
}

func TestFFCounterSequence(t *testing.T) {
	// 2-bit counter built from flip-flops: checks Step latching order.
	n := New()
	q0 := n.NewFF("q0", false)
	q1 := n.NewFF("q1", false)
	n.ConnectFF(q0, n.Not(q0))
	n.ConnectFF(q1, n.Xor(q1, q0))
	n.Output("b0", q0)
	n.Output("b1", q1)
	sim, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 8; cycle++ {
		sim.Settle()
		got := 0
		if sim.Output("b0") {
			got |= 1
		}
		if sim.Output("b1") {
			got |= 2
		}
		if got != cycle%4 {
			t.Fatalf("cycle %d: counter reads %d", cycle, got)
		}
		sim.Step()
	}
}

func TestFFInitValue(t *testing.T) {
	n := New()
	q := n.NewFF("q", true)
	n.ConnectFF(q, n.Const(false))
	n.Output("o", q)
	sim, _ := NewSim(n)
	sim.Settle()
	if !sim.Output("o") {
		t.Fatal("init value not honored")
	}
	sim.Step()
	sim.Settle()
	if sim.Output("o") {
		t.Fatal("FF did not latch new value")
	}
	sim.Reset()
	sim.Settle()
	if !sim.Output("o") {
		t.Fatal("Reset did not restore init value")
	}
}

func TestBRAMLookup(t *testing.T) {
	n := New()
	addr := n.InputWord("addr", 4)
	content := make([]uint64, 16)
	for i := range content {
		content[i] = uint64(i * 7 % 16)
	}
	out := n.NewBRAM("rom", addr, 4, content)
	for i, o := range out {
		n.Output([]string{"o0", "o1", "o2", "o3"}[i], o)
	}
	sim, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		sim.SetInputWord(addr, a)
		sim.Settle()
		got := sim.WordValue(out)
		if got != content[a] {
			t.Fatalf("rom[%d] = %d, want %d", a, got, content[a])
		}
	}
}

func TestBRAMContentSizeChecked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n := New()
	addr := n.InputWord("addr", 4)
	n.NewBRAM("rom", addr, 4, make([]uint64, 8))
}

func TestAddWordMod2w(t *testing.T) {
	n := New()
	a := n.InputWord("a", 8)
	b := n.InputWord("b", 8)
	sum := n.AddWord(a, b)
	n.OutputWord("s", sum)
	sim, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		av, bv := rng.Uint64()&0xff, rng.Uint64()&0xff
		sim.SetInputWord(a, av)
		sim.SetInputWord(b, bv)
		sim.Settle()
		if got := sim.OutputWord("s", 8); got != (av+bv)&0xff {
			t.Fatalf("%d+%d = %d, want %d", av, bv, got, (av+bv)&0xff)
		}
	}
}

func TestAdd32Property(t *testing.T) {
	n := New()
	a := n.InputWord("a", 32)
	b := n.InputWord("b", 32)
	n.OutputWord("s", n.AddWord(a, b))
	sim, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	f := func(av, bv uint32) bool {
		sim.SetInputWord(a, uint64(av))
		sim.SetInputWord(b, uint64(bv))
		sim.Settle()
		return uint32(sim.OutputWord("s", 32)) == av+bv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftBytes(t *testing.T) {
	n := New()
	a := n.InputWord("a", 32)
	n.OutputWord("l", n.ShiftLeftBytes(a, 1))
	n.OutputWord("r", n.ShiftRightBytes(a, 1))
	sim, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	v := uint64(0xDEADBEEF)
	sim.SetInputWord(a, v)
	sim.Settle()
	if got := sim.OutputWord("l", 32); got != (v<<8)&0xFFFFFFFF {
		t.Fatalf("left shift got %08x", got)
	}
	if got := sim.OutputWord("r", 32); got != v>>8 {
		t.Fatalf("right shift got %08x", got)
	}
}

func TestMuxWordAndConstWord(t *testing.T) {
	n := New()
	s := n.Input("s")
	a := n.ConstWord(0xAA, 8)
	b := n.ConstWord(0x55, 8)
	n.OutputWord("m", n.MuxWord(s, a, b))
	sim, _ := NewSim(n)
	sim.SetInput(s, true)
	sim.Settle()
	if sim.OutputWord("m", 8) != 0xAA {
		t.Fatal("mux select 1 wrong")
	}
	sim.SetInput(s, false)
	sim.Settle()
	if sim.OutputWord("m", 8) != 0x55 {
		t.Fatal("mux select 0 wrong")
	}
}

func TestValidateCatchesUnwiredFF(t *testing.T) {
	n := New()
	n.NewFF("q", false)
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted unwired flip-flop")
	}
	if _, err := NewSim(n); err == nil {
		t.Fatal("NewSim accepted unwired flip-flop")
	}
}

func TestTrFaninCone(t *testing.T) {
	n := New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	x := n.Xor(a, b)
	y := n.And(x, c)
	_ = n.Or(a, c) // outside the cone of y
	cone := n.TrFanin(y)
	want := map[NodeID]bool{a: true, b: true, c: true, x: true, y: true}
	if len(cone) != len(want) {
		t.Fatalf("cone size %d, want %d", len(cone), len(want))
	}
	for _, id := range cone {
		if !want[id] {
			t.Fatalf("unexpected node %d in cone", id)
		}
	}
}

func TestStats(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	n.Output("f", n.And(n.Xor(a, b), a))
	s := n.ComputeStats()
	if s.PIs != 2 || s.POs != 1 || s.Gates[OpXor] != 1 || s.Gates[OpAnd] != 1 || s.Levels != 2 {
		t.Fatalf("unexpected stats %+v", s)
	}
}

func TestFanoutCount(t *testing.T) {
	n := New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	x := n.Xor(a, b)
	n.And(x, c)
	n.Or(x, c)
	if n.Fanout(x) != 2 {
		t.Fatalf("fanout(x) = %d, want 2", n.Fanout(x))
	}
}

func TestWriteStructuralDeterministic(t *testing.T) {
	build := func() string {
		n := New()
		a, b := n.Input("a"), n.Input("b")
		n.Output("f", n.Xor(a, b))
		var buf bytes.Buffer
		if err := n.WriteStructural(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if build() != build() {
		t.Fatal("structural output not deterministic")
	}
	if !strings.Contains(build(), "xor") {
		t.Fatal("structural output missing gate")
	}
}

func TestWriteDOTCone(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	f := n.Xor(a, b)
	n.Output("f", f)
	var buf bytes.Buffer
	if err := n.WriteDOTCone(&buf, "test", f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "->") {
		t.Fatalf("DOT output malformed:\n%s", out)
	}
}

func TestTopologicalViolationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n := New()
	n.addNode(Node{Op: OpAnd, Fanin: []NodeID{99, 100}})
}

func BenchmarkSim32BitAdder(b *testing.B) {
	n := New()
	x := n.InputWord("a", 32)
	y := n.InputWord("b", 32)
	n.OutputWord("s", n.AddWord(x, y))
	sim, err := NewSim(n)
	if err != nil {
		b.Fatal(err)
	}
	sim.SetInputWord(x, 0x12345678)
	sim.SetInputWord(y, 0x9ABCDEF0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Settle()
	}
}

func TestAdderPrimitive(t *testing.T) {
	n := New()
	a := n.InputWord("a", 16)
	b := n.InputWord("b", 16)
	sum := n.NewAdder("add", a, b)
	n.OutputWord("s", sum)
	sim, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	f := func(av, bv uint16) bool {
		sim.SetInputWord(a, uint64(av))
		sim.SetInputWord(b, uint64(bv))
		sim.Settle()
		return uint16(sim.OutputWord("s", 16)) == av+bv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAdderMatchesRippleGates(t *testing.T) {
	n := New()
	a := n.InputWord("a", 8)
	b := n.InputWord("b", 8)
	n.OutputWord("prim", n.NewAdder("add", a, b))
	n.OutputWord("gate", n.AddWord(a, b))
	sim, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	for av := uint64(0); av < 256; av += 7 {
		for bv := uint64(0); bv < 256; bv += 11 {
			sim.SetInputWord(a, av)
			sim.SetInputWord(b, bv)
			sim.Settle()
			if sim.OutputWord("prim", 8) != sim.OutputWord("gate", 8) {
				t.Fatalf("adder primitive diverges from ripple gates at %d+%d", av, bv)
			}
		}
	}
}

func TestStructuralRoundTrip(t *testing.T) {
	n := New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	q := n.NewFF("state", true)
	x := n.Xor(a, b)
	m := n.Mux(c, x, q)
	n.ConnectFF(q, m)
	n.Output("out", m)
	n.Output("tap", x)

	var buf bytes.Buffer
	if err := n.WriteStructural(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	back, err := ReadStructural(strings.NewReader(first))
	if err != nil {
		t.Fatalf("ReadStructural: %v\n%s", err, first)
	}
	var buf2 bytes.Buffer
	if err := back.WriteStructural(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatalf("round trip not stable:\n--- first ---\n%s--- second ---\n%s", first, buf2.String())
	}

	// Behavioural equivalence over a few cycles.
	simA, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := NewSim(back)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for cycle := 0; cycle < 16; cycle++ {
		av, bv, cv := rng.Intn(2) == 1, rng.Intn(2) == 1, rng.Intn(2) == 1
		simA.SetInput(a, av)
		simB.SetInput(back.PIs[0], av)
		simA.SetInput(b, bv)
		simB.SetInput(back.PIs[1], bv)
		simA.SetInput(c, cv)
		simB.SetInput(back.PIs[2], cv)
		simA.Settle()
		simB.Settle()
		if simA.Output("out") != simB.Output("out") || simA.Output("tap") != simB.Output("tap") {
			t.Fatalf("cycle %d: outputs diverge", cycle)
		}
		simA.Step()
		simB.Step()
	}
}

func TestReadStructuralErrors(t *testing.T) {
	cases := []string{
		"n5 = xor(n2, n3)",      // undefined nets
		"garbage line",          // no '='
		"n2 = frob(n0, n1)",     // unknown op
		"n2 = xor(n0)",          // wrong arity
		"output x = n99",        // undefined output source
		"ff n0 <= n99",          // undefined ff data
		"n2 = bram[0].bit0 rom", // payload-bearing op
	}
	for _, src := range cases {
		if _, err := ReadStructural(strings.NewReader(src)); err == nil {
			t.Errorf("ReadStructural accepted %q", src)
		}
	}
}

func TestReadStructuralIgnoresCommentsAndBlank(t *testing.T) {
	src := "# a comment\n\nn2 = pi a\nn3 = not(n2)\noutput f = n3\n"
	n, err := ReadStructural(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.PIs) != 1 || len(n.POs) != 1 {
		t.Fatal("parse missed declarations")
	}
}

func TestEmptyNetworkValidAndSimulable(t *testing.T) {
	n := New()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	sim.Settle()
	sim.Step()
}

func TestOutputOverwriteKeepsDeclarationOrder(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	n.Output("f", a)
	n.Output("g", b)
	n.Output("f", b) // redefinition must not duplicate the name
	names := n.OutputNames()
	if len(names) != 2 || names[0] != "f" || names[1] != "g" {
		t.Fatalf("output names %v", names)
	}
	if n.POs["f"] != b {
		t.Fatal("redefinition did not take effect")
	}
}

func TestZeroAddressBRAM(t *testing.T) {
	// Zero-address BRAMs are constants-from-bitstream (the key ROMs).
	n := New()
	out := n.NewBRAM("konst", nil, 8, []uint64{0xA5})
	n.OutputWord("k", Word(out))
	sim, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	sim.Settle()
	if got := sim.OutputWord("k", 8); got != 0xA5 {
		t.Fatalf("constant ROM reads %02x", got)
	}
}

func TestMuxWordWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n := New()
	n.MuxWord(n.Input("s"), n.ConstWord(0, 4), n.ConstWord(0, 5))
}

func TestSimValueAfterPartialEval(t *testing.T) {
	n := New()
	a := n.Input("a")
	x := n.Not(a)
	n.Output("o", x)
	sim, _ := NewSim(n)
	sim.SetInput(a, false)
	sim.Settle()
	if !sim.Value(x) {
		t.Fatal("Value probe wrong")
	}
}

func TestByteHelper(t *testing.T) {
	n := New()
	w := n.InputWord("w", 32)
	b2 := w.Byte(2)
	if len(b2) != 8 || b2[0] != w[16] {
		t.Fatal("Byte() slicing wrong")
	}
}
