package victim

import (
	"sync"
	"testing"

	"snowbma/internal/snow3g"
)

var testKey = snow3g.Key{0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48}

func TestBuildMatchesCachedBuild(t *testing.T) {
	cfg := Config{Key: testKey, Seed: 77}
	direct, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(4)
	cached, err := c.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(direct.Image) != string(cached.Image) {
		t.Fatal("cached build produced a different image")
	}
	if direct.LUTs != cached.LUTs || direct.Depth != cached.Depth ||
		direct.CriticalPathNs != cached.CriticalPathNs ||
		direct.CriticalEndpoint != cached.CriticalEndpoint {
		t.Fatalf("metadata drift: direct %+v vs cached %+v", direct, cached)
	}
}

func TestCacheHitSkipsSynthesisAndIsolatesDevices(t *testing.T) {
	c := NewCache(4)
	cfg := Config{Key: testKey, Seed: 9}
	a, err := c.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	if a.Device == b.Device {
		t.Fatal("cache handed out a shared device")
	}
	// Seed 0 must hit the same entry as the explicit default seed.
	if _, err := c.Build(Config{Key: testKey, Seed: DefaultSeed}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(Config{Key: testKey}); err != nil {
		t.Fatal(err)
	}
	hits2, misses2, _ := c.Stats()
	if misses2 != 2 || hits2 != 2 {
		t.Fatalf("after seed-normalization pair: hits=%d misses=%d, want 2/2", hits2, misses2)
	}
}

func TestCacheConcurrentFirstBuildSynthesizesOnce(t *testing.T) {
	c := NewCache(4)
	cfg := Config{Key: testKey, Seed: 5}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Build(cfg)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, misses, _ := c.Stats(); misses != 1 {
		t.Fatalf("concurrent first builds recorded %d misses, want 1 (one synthesis)", misses)
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewCache(2)
	for seed := int64(1); seed <= 2; seed++ {
		if _, err := c.Build(Config{Key: testKey, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch seed 1 so seed 2 is the LRU entry, then insert a third.
	if _, err := c.Build(Config{Key: testKey, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(Config{Key: testKey, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions=%d, want 1", ev)
	}
	// Seed 1 must still be cached; seed 2 was evicted.
	if _, err := c.Build(Config{Key: testKey, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := c.Stats()
	if hits != 2 || misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 2/3", hits, misses)
	}
}

func TestDeriveKeysDeterministic(t *testing.T) {
	a, b := DeriveKeys(42), DeriveKeys(42)
	if a != b {
		t.Fatal("DeriveKeys not deterministic")
	}
	if a == DeriveKeys(43) {
		t.Fatal("different seeds derived identical keys")
	}
	v, err := Build(Config{Key: testKey, Encrypt: &Keys{KE: a.KE, KA: a.KA}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Device.SideChannelKey() != a.KE {
		t.Fatal("encrypted build did not install K_E into the device eFuses")
	}
}
