package victim

import (
	"sync"
	"testing"

	"snowbma/internal/snow3g"
)

var testKey = snow3g.Key{0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48}

func TestBuildMatchesCachedBuild(t *testing.T) {
	cfg := Config{Key: testKey, Seed: 77}
	direct, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(4)
	cached, err := c.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(direct.Image) != string(cached.Image) {
		t.Fatal("cached build produced a different image")
	}
	if direct.LUTs != cached.LUTs || direct.Depth != cached.Depth ||
		direct.CriticalPathNs != cached.CriticalPathNs ||
		direct.CriticalEndpoint != cached.CriticalEndpoint {
		t.Fatalf("metadata drift: direct %+v vs cached %+v", direct, cached)
	}
}

func TestCacheHitSkipsSynthesisAndIsolatesDevices(t *testing.T) {
	c := NewCache(4)
	cfg := Config{Key: testKey, Seed: 9}
	a, err := c.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	if a.Device == b.Device {
		t.Fatal("cache handed out a shared device")
	}
	// Seed 0 must hit the same entry as the explicit default seed.
	if _, err := c.Build(Config{Key: testKey, Seed: DefaultSeed}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(Config{Key: testKey}); err != nil {
		t.Fatal(err)
	}
	hits2, misses2, _ := c.Stats()
	if misses2 != 2 || hits2 != 2 {
		t.Fatalf("after seed-normalization pair: hits=%d misses=%d, want 2/2", hits2, misses2)
	}
}

func TestCacheConcurrentFirstBuildSynthesizesOnce(t *testing.T) {
	c := NewCache(4)
	cfg := Config{Key: testKey, Seed: 5}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Build(cfg)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, misses, _ := c.Stats(); misses != 1 {
		t.Fatalf("concurrent first builds recorded %d misses, want 1 (one synthesis)", misses)
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewCache(2)
	for seed := int64(1); seed <= 2; seed++ {
		if _, err := c.Build(Config{Key: testKey, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch seed 1 so seed 2 is the LRU entry, then insert a third.
	if _, err := c.Build(Config{Key: testKey, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(Config{Key: testKey, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions=%d, want 1", ev)
	}
	// Seed 1 must still be cached; seed 2 was evicted.
	if _, err := c.Build(Config{Key: testKey, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := c.Stats()
	if hits != 2 || misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 2/3", hits, misses)
	}
}

func TestCacheFailedBuildsCachedAndEvictedFirst(t *testing.T) {
	c := NewCache(2)
	// An unsatisfiable countermeasure budget fails synthesis.
	bad := Config{Key: testKey, AutoProtectBits: 1 << 20, Seed: 40}
	if _, err := c.Build(bad); err == nil {
		t.Fatal("build with an unsatisfiable countermeasure must fail")
	}
	if _, err := c.Build(bad); err == nil {
		t.Fatal("cached failure must keep failing")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1 (failure memoized)", hits, misses)
	}
	// Filling the cache evicts the failed entry before any good one.
	for seed := int64(41); seed <= 42; seed++ {
		if _, err := c.Build(Config{Key: testKey, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions=%d, want 1 (the failed entry)", ev)
	}
	for seed := int64(41); seed <= 42; seed++ {
		if _, err := c.Build(Config{Key: testKey, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if hits, _, _ := c.Stats(); hits != 3 {
		t.Fatalf("hits=%d, want 3 (both good entries survived the eviction)", hits)
	}
}

// Failed builds publish their status while concurrent evictions read
// it; this only proves anything under -race (the seed's eviction
// heuristic read the once-written err field with no happens-before
// edge).
func TestCacheConcurrentFailuresAndEvictions(t *testing.T) {
	c := NewCache(1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				seed := int64(60 + (g+i)%3)
				_, _ = c.Build(Config{Key: testKey, Seed: seed})
				_, _ = c.Build(Config{Key: testKey, Seed: seed, AutoProtectBits: 1 << 20})
			}
		}(g)
	}
	wg.Wait()
}

func TestDeriveKeysDeterministic(t *testing.T) {
	a, b := DeriveKeys(42), DeriveKeys(42)
	if a != b {
		t.Fatal("DeriveKeys not deterministic")
	}
	if a == DeriveKeys(43) {
		t.Fatal("different seeds derived identical keys")
	}
	v, err := Build(Config{Key: testKey, Encrypt: &Keys{KE: a.KE, KA: a.KA}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Device.SideChannelKey() != a.KE {
		t.Fatal("encrypted build did not install K_E into the device eFuses")
	}
}
