// Package victim is the shared victim-build pipeline: RTL generation,
// technology mapping, placement, bitstream assembly and device
// programming, behind one Config. The snowbma facade, the campaign
// engine and the service job engine all synthesize their victims here,
// so "what a victim is" is defined exactly once.
//
// The package also provides a build cache (Cache): synthesis dominates
// the cost of a victim (mapping and placement are orders of magnitude
// slower than programming a device from a finished image), and a
// long-running job service sees the same designs over and over. The
// cache stores the assembled image and the synthesis metadata; every
// hit programs a *fresh* device from the cached bytes, so concurrent
// jobs never share mutable fabric state.
package victim

import (
	"fmt"
	"math/rand"

	"snowbma/internal/bitstream"
	"snowbma/internal/device"
	"snowbma/internal/hdl"
	"snowbma/internal/mapper"
	"snowbma/internal/snow3g"
)

// DefaultSeed is the placement seed used when Config.Seed is zero.
const DefaultSeed = 0x5B0A

// Keys are the bitstream protection keys: K_E lives in device eFuses,
// K_A is stored inside the encrypted image (Fig. 1 of the paper).
type Keys struct {
	KE [bitstream.KeySize]byte
	KA [bitstream.KeySize]byte
}

// DeriveKeys fills a deterministic protection-key pair from a seed —
// the convention scenario generators and job specs use so an encrypted
// victim is fully described by its seed.
func DeriveKeys(seed int64) Keys {
	var k Keys
	kr := rand.New(rand.NewSource(seed ^ 0x6b65797374726d)) // "keystrm"
	kr.Read(k.KE[:])
	kr.Read(k.KA[:])
	return k
}

// Config describes the FPGA implementation to synthesize. It mirrors
// the facade's VictimConfig field for field (the facade converts).
type Config struct {
	// Key is baked into the bitstream (attack model assumption 2).
	Key snow3g.Key
	// Protected applies the Section VII-A countermeasure with the
	// paper's hand-picked five decoy words.
	Protected bool
	// AutoProtectBits, when nonzero, plans the countermeasure
	// automatically to this security level instead.
	AutoProtectBits int
	// Encrypt wraps the bitstream in the AES + HMAC envelope (any
	// non-nil value enables encryption).
	Encrypt *Keys
	// PadFrames adds empty fabric frames (larger bitstream).
	PadFrames int
	// Seed drives the deterministic placement (0 picks DefaultSeed).
	Seed int64
}

// normalized returns the config with defaults applied, so two configs
// describing the same design compare (and cache) equal.
func (cfg Config) normalized() Config {
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeed
	}
	return cfg
}

// Fingerprint is the stable identity string of the design this config
// describes: two configs that synthesize the same victim (after
// normalization) produce the same fingerprint, and any field that
// changes the bitstream changes it. The fleet coordinator uses it as
// the shard key, so jobs for one victim always land on the worker
// whose build cache already holds that image.
func (cfg Config) Fingerprint() string {
	cfg = cfg.normalized()
	enc := byte(0)
	var kE, kA [bitstream.KeySize]byte
	if cfg.Encrypt != nil {
		enc = 1
		kE, kA = cfg.Encrypt.KE, cfg.Encrypt.KA
	}
	return fmt.Sprintf("v1|%x|%t|%d|%d|%d|%d|%x|%x",
		cfg.Key, cfg.Protected, cfg.AutoProtectBits, cfg.PadFrames, cfg.Seed, enc, kE, kA)
}

// Victim bundles the programmed device with its design metadata.
type Victim struct {
	Device *device.FPGA
	// Image is the programmed flash content (sealed when encrypted).
	Image []byte
	// LUTs is the number of logical LUTs after mapping; Depth the
	// mapped LUT depth; CriticalPathNs the modelled critical path.
	LUTs             int
	Depth            int
	CriticalPathNs   float64
	CriticalEndpoint string
}

// Build synthesizes the SNOW 3G design (RTL generation, technology
// mapping, placement, bitstream assembly) and programs a simulated FPGA
// with it.
func Build(cfg Config) (*Victim, error) {
	cfg = cfg.normalized()
	img, meta, err := synthesize(cfg)
	if err != nil {
		return nil, err
	}
	return program(cfg, img, meta)
}

// meta is the synthesis metadata carried alongside a built image.
type meta struct {
	luts             int
	depth            int
	criticalPathNs   float64
	criticalEndpoint string
}

// synthesize runs the expensive half of the pipeline: design
// generation through (optionally sealed) image assembly.
func synthesize(cfg Config) ([]byte, meta, error) {
	d := hdl.Build(hdl.Config{Key: cfg.Key, Protected: cfg.Protected})
	opts := mapper.Options{K: 6, Boundaries: d.Boundaries}
	pol := mapper.PackPolicy{}
	if cfg.Protected {
		opts.TrivialCuts = d.TrivialCuts
		pol = mapper.PackPolicy{Prefer: d.TrivialCuts, PairWithOthers: true}
	}
	if cfg.AutoProtectBits > 0 {
		plan, err := mapper.PlanCountermeasure(d.N, d.V, cfg.AutoProtectBits)
		if err != nil {
			return nil, meta{}, fmt.Errorf("victim: countermeasure planning: %w", err)
		}
		opts.TrivialCuts = plan.TrivialCuts
		pol = mapper.PackPolicy{Prefer: plan.TrivialCuts, PairWithOthers: true}
	}
	r, err := mapper.Map(d.N, opts)
	if err != nil {
		return nil, meta{}, fmt.Errorf("victim: mapping: %w", err)
	}
	phys := mapper.Pack(r, pol)
	img, err := bitstream.Assemble(d.N, phys, bitstream.AssembleOptions{
		Seed: cfg.Seed, PadFrames: cfg.PadFrames,
	})
	if err != nil {
		return nil, meta{}, fmt.Errorf("victim: assembly: %w", err)
	}
	if cfg.Encrypt != nil {
		var cbcIV [16]byte
		img, err = bitstream.Seal(img, cfg.Encrypt.KE, cfg.Encrypt.KA, cbcIV)
		if err != nil {
			return nil, meta{}, fmt.Errorf("victim: sealing: %w", err)
		}
	}
	timing := r.Timing(mapper.DefaultDelays())
	return img, meta{
		luts:             len(r.LUTs),
		depth:            r.Depth,
		criticalPathNs:   timing.Delay,
		criticalEndpoint: timing.Endpoint,
	}, nil
}

// program is the cheap half: a fresh device configured from a finished
// image. device.FPGA.Program copies the image into flash, so the same
// cached bytes can back any number of concurrent victims.
func program(cfg Config, img []byte, m meta) (*Victim, error) {
	var kE [bitstream.KeySize]byte
	if cfg.Encrypt != nil {
		kE = cfg.Encrypt.KE
	}
	fpga := device.New(kE)
	if err := fpga.Program(img); err != nil {
		return nil, fmt.Errorf("victim: programming: %w", err)
	}
	return &Victim{
		Device:           fpga,
		Image:            img,
		LUTs:             m.luts,
		Depth:            m.depth,
		CriticalPathNs:   m.criticalPathNs,
		CriticalEndpoint: m.criticalEndpoint,
	}, nil
}
