package victim

import (
	"sync"

	"snowbma/internal/bitstream"
	"snowbma/internal/obs"
	"snowbma/internal/snow3g"
)

// DefaultCacheSize is the entry cap a zero-configured Cache uses.
const DefaultCacheSize = 16

// cacheKey is the comparable identity of a build: the normalized config
// with the encryption keys flattened out of their pointer.
type cacheKey struct {
	key             snow3g.Key
	protected       bool
	autoProtectBits int
	padFrames       int
	seed            int64
	encrypted       bool
	kE              [bitstream.KeySize]byte
	kA              [bitstream.KeySize]byte
}

func keyOf(cfg Config) cacheKey {
	k := cacheKey{
		key:             cfg.Key,
		protected:       cfg.Protected,
		autoProtectBits: cfg.AutoProtectBits,
		padFrames:       cfg.PadFrames,
		seed:            cfg.Seed,
	}
	if cfg.Encrypt != nil {
		k.encrypted = true
		k.kE = cfg.Encrypt.KE
		k.kA = cfg.Encrypt.KA
	}
	return k
}

// entry is one cached synthesis: the assembled (possibly sealed) image
// plus metadata. once gates the build so concurrent first requests for
// the same design synthesize exactly once. img/meta/err are written
// inside once.Do and safe to read only after it returns; failed is the
// mutex-guarded mirror of err != nil that eviction reads (evictLocked
// runs under c.mu with no happens-before edge to the build goroutine).
type entry struct {
	once    sync.Once
	img     []byte
	meta    meta
	err     error
	failed  bool  // guarded by Cache.mu
	lastUse int64 // tick of the most recent hit, for LRU eviction
}

// Cache memoizes victim synthesis by Config. Every Build hit programs a
// fresh device from the cached image, so callers own their victim
// outright; only the immutable image bytes are shared (FPGA.Program
// copies them into flash). Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*entry
	max     int
	tick    int64
	// Tel optionally mirrors hit/miss/eviction counts into a metrics
	// registry (victim.cache.*). Nil-safe.
	Tel *obs.Telemetry

	hits, misses, evictions int
}

// NewCache creates a cache holding at most max synthesized designs
// (≤ 0 selects DefaultCacheSize). Eviction is least-recently-used.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &Cache{entries: make(map[cacheKey]*entry), max: max}
}

// Stats reports the cache's hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evictions int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// Len reports how many synthesized designs the cache currently holds.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Build returns a freshly programmed victim for cfg, synthesizing the
// design only if no cache entry exists. Failed builds are cached too
// (an unbuildable config stays unbuildable), but do not count against
// the entry cap for long: they are preferred for eviction.
func (c *Cache) Build(cfg Config) (*Victim, error) {
	cfg = cfg.normalized()
	k := keyOf(cfg)

	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &entry{}
		c.evictLocked()
		c.entries[k] = e
		c.misses++
		c.Tel.Counter("victim.cache.misses").Inc()
	} else {
		c.hits++
		c.Tel.Counter("victim.cache.hits").Inc()
	}
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()

	e.once.Do(func() {
		e.img, e.meta, e.err = synthesize(cfg)
	})
	if e.err != nil {
		c.mu.Lock()
		e.failed = true
		c.mu.Unlock()
		return nil, e.err
	}
	return program(cfg, e.img, e.meta)
}

// evictLocked makes room for one more entry. Failed builds go first,
// then the least recently used design. Called with c.mu held.
func (c *Cache) evictLocked() {
	if len(c.entries) < c.max {
		return
	}
	var victim cacheKey
	var oldest int64 = -1
	for k, e := range c.entries {
		if e.failed {
			victim, oldest = k, 0
			break
		}
		if oldest < 0 || e.lastUse < oldest {
			victim, oldest = k, e.lastUse
		}
	}
	if oldest >= 0 {
		delete(c.entries, victim)
		c.evictions++
		c.Tel.Counter("victim.cache.evictions").Inc()
	}
}
