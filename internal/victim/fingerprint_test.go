package victim

import (
	"testing"

	"snowbma/internal/snow3g"
)

// TestFingerprintStability: the shard key must be identical for configs
// that normalize to the same design and must change with any field that
// changes the bitstream — otherwise the fleet would route one victim's
// jobs to different workers (cold caches) or two victims to one key.
func TestFingerprintStability(t *testing.T) {
	key := snow3g.Key{0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48}
	base := Config{Key: key}

	if got, want := base.Fingerprint(), (Config{Key: key, Seed: DefaultSeed}).Fingerprint(); got != want {
		t.Fatalf("zero seed and DefaultSeed fingerprint differently:\n %s\n %s", got, want)
	}
	if base.Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint is not deterministic")
	}

	keys := DeriveKeys(7)
	variants := []Config{
		{Key: key, Protected: true},
		{Key: key, AutoProtectBits: 32},
		{Key: key, PadFrames: 2},
		{Key: key, Seed: 99},
		{Key: key, Encrypt: &keys},
		{Key: snow3g.Key{1}},
	}
	seen := map[string]int{base.Fingerprint(): -1}
	for i, v := range variants {
		fp := v.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("variant %d collides with %d: %s", i, prev, fp)
		}
		seen[fp] = i
	}

	// Distinct Encrypt pointers with equal key material are the same design.
	k2 := DeriveKeys(7)
	a := Config{Key: key, Encrypt: &keys}
	b := Config{Key: key, Encrypt: &k2}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal key material behind distinct pointers must fingerprint equally")
	}
}
