package obs

import (
	"sync"
	"testing"
	"time"
)

func TestEventBusPublishAndSubscribe(t *testing.T) {
	b := NewEventBus(16)
	if seq := b.Publish(BusEvent{Type: EventJob, Name: "queued"}); seq != 1 {
		t.Fatalf("first seq = %d", seq)
	}
	sub, backlog := b.SubscribeFrom(0, 4)
	defer sub.Close()
	if len(backlog) != 1 || backlog[0].Seq != 1 || backlog[0].Name != "queued" {
		t.Fatalf("backlog = %+v", backlog)
	}
	b.Publish(BusEvent{Type: EventJob, Name: "running"})
	select {
	case ev := <-sub.C():
		if ev.Seq != 2 || ev.Name != "running" {
			t.Fatalf("live event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no live event")
	}
}

func TestEventBusRingEviction(t *testing.T) {
	b := NewEventBus(4)
	for i := 0; i < 10; i++ {
		b.Publish(BusEvent{Type: EventProgress})
	}
	_, backlog := b.SubscribeFrom(0, 1)
	if len(backlog) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(backlog))
	}
	// Oldest events evicted: the ring holds seq 7..10 in order.
	for i, ev := range backlog {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("backlog[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestEventBusResumeSemantics(t *testing.T) {
	b := NewEventBus(32)
	for i := 0; i < 5; i++ {
		b.Publish(BusEvent{Type: EventProgress})
	}
	// Resume after seq 3: backlog is 4,5 only.
	sub, backlog := b.SubscribeFrom(3, 1)
	defer sub.Close()
	if len(backlog) != 2 || backlog[0].Seq != 4 || backlog[1].Seq != 5 {
		t.Fatalf("resume backlog = %+v", backlog)
	}
	// Live-only: after = Seq().
	live, none := b.SubscribeFrom(b.Seq(), 1)
	defer live.Close()
	if len(none) != 0 {
		t.Fatalf("live-only backlog = %+v", none)
	}
}

func TestEventBusSlowSubscriberDropsWithoutBlocking(t *testing.T) {
	b := NewEventBus(64)
	sub, _ := b.SubscribeFrom(0, 2) // tiny buffer, never drained
	defer sub.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			b.Publish(BusEvent{Type: EventProgress})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on slow subscriber")
	}
	if d := sub.Drops(); d != 98 {
		t.Fatalf("sub drops = %d, want 98", d)
	}
	if d := b.Dropped(); d != 98 {
		t.Fatalf("bus dropped = %d, want 98", d)
	}
}

func TestEventBusCloseIsIdempotentAndTerminal(t *testing.T) {
	b := NewEventBus(8)
	sub, _ := b.SubscribeFrom(0, 1)
	b.Close()
	b.Close()
	if _, ok := <-sub.C(); ok {
		t.Fatal("subscriber channel not closed on bus close")
	}
	if seq := b.Publish(BusEvent{Type: EventJob}); seq != 0 {
		t.Fatalf("publish after close returned seq %d", seq)
	}
	// Subscribing to a closed bus yields a closed sub but the ring survives.
	sub2, backlog := b.SubscribeFrom(0, 1)
	if _, ok := <-sub2.C(); ok {
		t.Fatal("sub on closed bus not closed")
	}
	if len(backlog) != 0 {
		t.Fatalf("backlog on closed empty bus = %+v", backlog)
	}
	sub.Close() // must not panic after bus close
}

func TestEventBusNilSafe(t *testing.T) {
	var b *EventBus
	if seq := b.Publish(BusEvent{}); seq != 0 {
		t.Fatal("nil bus publish")
	}
	if b.Seq() != 0 || b.Dropped() != 0 {
		t.Fatal("nil bus accessors")
	}
	b.Close()
	sub, backlog := b.SubscribeFrom(0, 1)
	if backlog != nil {
		t.Fatal("nil bus backlog")
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("nil bus sub not closed")
	}
}

func TestEventBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewEventBus(128)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Publish(BusEvent{Type: EventProgress})
			}
		}()
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub, backlog := b.SubscribeFrom(0, 64)
			defer sub.Close()
			_ = backlog
			deadline := time.After(2 * time.Second)
			for i := 0; i < 50; i++ {
				select {
				case _, ok := <-sub.C():
					if !ok {
						return
					}
				case <-deadline:
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := b.Seq(); got != 2000 {
		t.Fatalf("seq after concurrent publish = %d", got)
	}
}

func TestTracerPublishesSpanEvents(t *testing.T) {
	b := NewEventBus(64)
	tel := New()
	tel.AttachBus(b, "job-1")
	root := tel.StartSpan("attack.run")
	child := tel.StartSpan("attack.batch_scan", KV("lanes", 64))
	child.SetAttr("passes", 3)
	child.End()
	root.End()

	_, events := b.SubscribeFrom(0, 1)
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(events), events)
	}
	// start(root), start(child), end(child), end(root)
	if events[0].Type != EventSpanStart || events[0].Name != "attack.run" || events[0].Parent != 0 {
		t.Fatalf("ev0 = %+v", events[0])
	}
	if events[1].Type != EventSpanStart || events[1].Name != "attack.batch_scan" ||
		events[1].Parent != events[0].Span {
		t.Fatalf("ev1 = %+v", events[1])
	}
	if events[1].Attrs["lanes"] != 64 {
		t.Fatalf("start attrs = %+v", events[1].Attrs)
	}
	if events[2].Type != EventSpanEnd || events[2].Span != events[1].Span {
		t.Fatalf("ev2 = %+v", events[2])
	}
	if events[2].Attrs["passes"] != 3 {
		t.Fatalf("end attrs = %+v", events[2].Attrs)
	}
	if events[3].Type != EventSpanEnd || events[3].Span != events[0].Span {
		t.Fatalf("ev3 = %+v", events[3])
	}
	for _, ev := range events {
		if ev.Job != "job-1" {
			t.Fatalf("event missing job tag: %+v", ev)
		}
	}
}

func TestTelemetryPublishNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.Publish(EventProgress, "sweep", 1) // must not panic
	tel2 := New()
	tel2.Publish(EventProgress, "sweep", 1) // no bus attached: no-op
	b := NewEventBus(8)
	tel2.AttachBus(b, "j")
	tel2.Publish(EventProgress, "sweep.chunk", 42, KV("lo", 0), KV("hi", 64))
	_, events := b.SubscribeFrom(0, 1)
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	ev := events[0]
	if ev.Type != EventProgress || ev.Name != "sweep.chunk" || ev.Value != 42 ||
		ev.Job != "j" || ev.Attrs["lo"] != 0 || ev.Attrs["hi"] != 64 {
		t.Fatalf("published event = %+v", ev)
	}
}

func TestMetricsStreamerFlushDeltas(t *testing.T) {
	reg := NewRegistry()
	b := NewEventBus(64)
	ms := NewMetricsStreamer(reg, b, "job-7")

	reg.Counter("attack.loads").Add(5)
	reg.Gauge("scan.workers").Set(8)
	reg.Histogram("ignored").Observe(1) // histograms are not streamed
	if sent := ms.Flush(); sent != 2 {
		t.Fatalf("first flush sent %d, want 2", sent)
	}
	if sent := ms.Flush(); sent != 0 {
		t.Fatalf("unchanged flush sent %d, want 0", sent)
	}
	reg.Counter("attack.loads").Add(3)
	if sent := ms.Flush(); sent != 1 {
		t.Fatalf("delta flush sent %d, want 1", sent)
	}
	_, events := b.SubscribeFrom(0, 1)
	if len(events) != 3 {
		t.Fatalf("bus holds %d events, want 3", len(events))
	}
	last := events[2]
	if last.Type != EventCounter || last.Name != "attack.loads" || last.Value != 8 ||
		last.Attrs["delta"] != float64(3) || last.Job != "job-7" {
		t.Fatalf("delta event = %+v", last)
	}
}

func TestMetricsStreamerStartStop(t *testing.T) {
	reg := NewRegistry()
	b := NewEventBus(64)
	ms := NewMetricsStreamer(reg, b, "")
	stop := ms.Start(5 * time.Millisecond)
	reg.Counter("jobs.done").Inc()
	time.Sleep(30 * time.Millisecond)
	stop()
	stop() // idempotent
	reg.Counter("jobs.done").Inc()
	before := b.Seq()
	// stop already did its final flush; another manual flush picks up the
	// post-stop increment, proving the final flush was synchronous.
	ms.Flush()
	if b.Seq() == before {
		t.Fatal("post-stop increment not flushable")
	}
	_, events := b.SubscribeFrom(0, 1)
	if len(events) < 2 {
		t.Fatalf("expected at least 2 flush events, got %+v", events)
	}
}

func TestRuntimeMetricsPoller(t *testing.T) {
	reg := NewRegistry()
	extraCalls := 0
	stop := StartRuntimeMetrics(reg, time.Hour, func(r *Registry) {
		extraCalls++
		r.Gauge("service.queue_depth").Set(3)
	})
	defer stop()
	// The synchronous first sample means values are visible immediately.
	if v := reg.Gauge("runtime.goroutines").Value(); v < 1 {
		t.Fatalf("runtime.goroutines = %v", v)
	}
	if v := reg.Gauge("runtime.heap_alloc_bytes").Value(); v <= 0 {
		t.Fatalf("runtime.heap_alloc_bytes = %v", v)
	}
	if extraCalls != 1 {
		t.Fatalf("extra sampler calls = %d", extraCalls)
	}
	if v := reg.Gauge("service.queue_depth").Value(); v != 3 {
		t.Fatalf("extra gauge = %v", v)
	}
	stop()
	stop() // idempotent
}
