package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteMetricsText renders metric snapshots in the Prometheus text
// exposition format (text/plain; version 0.0.4), so a /metrics endpoint
// can be scraped without a client library. Metric names translate by
// replacing every '.' with '_' ("attack.loads" → "attack_loads");
// counters gain a _total suffix, plain histograms export their
// count/sum aggregate as a summary plus separate <name>_min and
// <name>_max gauge families, and bucketed histograms export the full
// histogram exposition (<name>_bucket{le="..."} / _sum / _count).
//
// Families are merged on their *exposition* name — after the dot
// translation and kind suffixing — and emitted in sorted family order
// with exactly one # TYPE line each. This is what keeps the output
// scrape-stable: a gauge family created after the first scrape (or in a
// later registry of a multi-registry merge) sorts into place with its
// TYPE line instead of depending on registration order, and two metric
// names that collide after translation ("jobs.done" and "jobs_done")
// merge into one family instead of emitting a duplicate TYPE line and
// repeated sample names, which scrapers reject. When the same metric
// name appears in several registries the values are summed first. In
// the pathological case of two different kinds claiming one family name
// the lexicographically first kind wins and the other is dropped (a
// duplicate family is a protocol violation either way).
func WriteMetricsText(w io.Writer, regs ...*Registry) error {
	type agg struct {
		kind  string
		value float64
		hist  HistValue
		bkt   BucketValue
	}
	// Merge pass: key on (kind, exposition base name) so same-kind
	// collisions — across registries or via the dot translation — sum.
	merged := map[string]*agg{}
	for _, r := range regs {
		for _, m := range r.Snapshot() {
			name := strings.ReplaceAll(m.Name, ".", "_")
			key := m.Kind + "\x00" + name
			a, ok := merged[key]
			if !ok {
				a = &agg{kind: m.Kind}
				merged[key] = a
			}
			a.value += m.Value
			switch m.Kind {
			case "hist":
				// Snapshots with no observations carry zero Min/Max that
				// mean "unset", not "observed 0" — merging them would
				// clobber a populated accumulator's extremes.
				if m.Hist.Count > 0 {
					if a.hist.Count == 0 || m.Hist.Min < a.hist.Min {
						a.hist.Min = m.Hist.Min
					}
					if a.hist.Count == 0 || m.Hist.Max > a.hist.Max {
						a.hist.Max = m.Hist.Max
					}
					a.hist.Count += m.Hist.Count
					a.hist.Sum += m.Hist.Sum
				}
			case "bhist":
				if a.bkt.Bounds == nil {
					a.bkt = m.Buckets
				} else if equalBounds(a.bkt.Bounds, m.Buckets.Bounds) {
					for i := range a.bkt.Counts {
						a.bkt.Counts[i] += m.Buckets.Counts[i]
					}
					a.bkt.Count += m.Buckets.Count
					a.bkt.Sum += m.Buckets.Sum
				}
				// Mismatched bucket ladders under one name cannot merge
				// meaningfully; the first registry's ladder wins.
			}
		}
	}
	// Family pass: expand each merged metric into its exposition
	// families (one TYPE line, then samples), dedupe by family name and
	// sort for a deterministic scrape.
	type family struct {
		name    string
		typ     string
		samples []string
	}
	families := map[string]family{}
	add := func(f family) {
		if _, taken := families[f.name]; taken {
			return // cross-kind family-name collision: first (sorted) wins
		}
		families[f.name] = f
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		a := merged[key]
		name := key[strings.IndexByte(key, 0)+1:]
		switch a.kind {
		case "counter":
			add(family{name: name + "_total", typ: "counter",
				samples: []string{fmt.Sprintf("%s_total %g", name, a.value)}})
		case "gauge":
			add(family{name: name, typ: "gauge",
				samples: []string{fmt.Sprintf("%s %g", name, a.value)}})
		case "hist":
			add(family{name: name, typ: "summary", samples: []string{
				fmt.Sprintf("%s_count %d", name, a.hist.Count),
				fmt.Sprintf("%s_sum %g", name, a.hist.Sum),
			}})
			add(family{name: name + "_min", typ: "gauge",
				samples: []string{fmt.Sprintf("%s_min %g", name, a.hist.Min)}})
			add(family{name: name + "_max", typ: "gauge",
				samples: []string{fmt.Sprintf("%s_max %g", name, a.hist.Max)}})
		case "bhist":
			f := family{name: name, typ: "histogram"}
			cum := int64(0)
			for i, bound := range a.bkt.Bounds {
				cum += a.bkt.Counts[i]
				f.samples = append(f.samples,
					fmt.Sprintf("%s_bucket{le=%q} %d", name, formatBound(bound), cum))
			}
			f.samples = append(f.samples,
				fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", name, a.bkt.Count),
				fmt.Sprintf("%s_sum %g", name, a.bkt.Sum),
				fmt.Sprintf("%s_count %d", name, a.bkt.Count))
			add(f)
		}
	}
	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := families[n]
		if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := fmt.Fprintln(bw, s); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// formatBound renders a bucket bound the way Prometheus expects
// (shortest float representation, no exponent for the usual ladders).
func formatBound(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}
