package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteMetricsText renders metric snapshots in the Prometheus text
// exposition format (text/plain; version 0.0.4), so a /metrics endpoint
// can be scraped without a client library. Metric names translate by
// replacing every '.' with '_' ("attack.loads" → "attack_loads");
// counters gain a _total suffix, histograms export their count/sum
// aggregate as a summary plus separate <name>_min and <name>_max gauge
// families (the Registry histogram is deliberately bucket-free, and a
// summary family may only carry _count/_sum samples, so min/max get
// their own families).
//
// Registries are written in argument order; when the same metric name
// appears in several registries the values are summed first, so the
// output never repeats a sample name (which scrapers reject).
func WriteMetricsText(w io.Writer, regs ...*Registry) error {
	type agg struct {
		kind  string
		value float64
		hist  HistValue
	}
	merged := map[string]*agg{}
	var order []string
	for _, r := range regs {
		for _, m := range r.Snapshot() {
			key := m.Kind + "\x00" + m.Name
			a, ok := merged[key]
			if !ok {
				a = &agg{kind: m.Kind}
				merged[key] = a
				order = append(order, key)
			}
			a.value += m.Value
			// Snapshots with no observations carry zero Min/Max that
			// mean "unset", not "observed 0" — merging them would
			// clobber a populated accumulator's extremes.
			if m.Kind == "hist" && m.Hist.Count > 0 {
				if a.hist.Count == 0 || m.Hist.Min < a.hist.Min {
					a.hist.Min = m.Hist.Min
				}
				if a.hist.Count == 0 || m.Hist.Max > a.hist.Max {
					a.hist.Max = m.Hist.Max
				}
				a.hist.Count += m.Hist.Count
				a.hist.Sum += m.Hist.Sum
			}
		}
	}
	bw := bufio.NewWriter(w)
	for _, key := range order {
		a := merged[key]
		name := strings.ReplaceAll(key[strings.IndexByte(key, 0)+1:], ".", "_")
		var err error
		switch a.kind {
		case "counter":
			_, err = fmt.Fprintf(bw, "# TYPE %s_total counter\n%s_total %g\n", name, name, a.value)
		case "gauge":
			_, err = fmt.Fprintf(bw, "# TYPE %s gauge\n%s %g\n", name, name, a.value)
		case "hist":
			_, err = fmt.Fprintf(bw,
				"# TYPE %s summary\n%s_count %d\n%s_sum %g\n"+
					"# TYPE %s_min gauge\n%s_min %g\n# TYPE %s_max gauge\n%s_max %g\n",
				name, name, a.hist.Count, name, a.hist.Sum,
				name, name, a.hist.Min, name, name, a.hist.Max)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
