package obs

import (
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values should be plain
// data (numbers, strings, bools) so the NDJSON export stays portable.
type Attr struct {
	Key   string
	Value any
}

// KV builds an Attr.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Span is one timed region of the attack. Spans nest: a span started
// while another is open becomes its child. Durations are monotonic
// (time.Since on the monotonic clock), so a span can never report a
// negative duration; an immediately-ended span reports zero.
type Span struct {
	name   string
	start  time.Time
	off    time.Duration // start offset from the tracer epoch
	id     int           // tracer-local id (1-based), for live streaming
	parent int           // parent span id (0 for roots)

	mu       sync.Mutex
	attrs    []Attr
	dur      time.Duration
	ended    bool
	children []*Span
	tracer   *Tracer
}

// ID returns the tracer-local span id (0 for a nil span). Ids are
// assigned in StartSpan order; the live event stream uses them to carry
// the tree shape incrementally (parent before child, always).
func (s *Span) ID() int {
	if s == nil {
		return 0
	}
	return s.id
}

// ParentID returns the id of the span this one nested under at start
// time (0 for roots and nil spans).
func (s *Span) ParentID() int {
	if s == nil {
		return 0
	}
	return s.parent
}

// Name returns the span name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start offset from the tracer epoch.
func (s *Span) Start() time.Duration {
	if s == nil {
		return 0
	}
	return s.off
}

// Duration returns the measured duration: zero until End, then the
// monotonic elapsed time (never negative).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// SetAttr attaches (or appends) an annotation. Safe on a nil span and
// after End.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Attrs returns a copy of the annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the child span list.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// End closes the span, fixing its duration. Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	if d < 0 {
		d = 0 // monotonic clock should prevent this; belt and braces
	}
	s.dur = d
	attrs := append([]Attr(nil), s.attrs...)
	t := s.tracer
	s.mu.Unlock()
	if t != nil {
		t.pop(s)
		t.publish(BusEvent{
			Type:   EventSpanEnd,
			Name:   s.name,
			Span:   s.id,
			Parent: s.parent,
			DurUS:  float64(d.Nanoseconds()) / 1e3,
			Attrs:  attrMap(attrs),
		})
	}
}

// Tracer produces a tree of spans. StartSpan parents the new span under
// the innermost span that is still open (spans open and close like a
// stack in the sequential attack phases; concurrent children started by
// worker goroutines while a phase span is open all attach to that
// phase). All methods are safe for concurrent use and on a nil
// receiver.
type Tracer struct {
	epoch time.Time

	mu     sync.Mutex
	roots  []*Span
	open   []*Span // innermost last
	nextID int
	bus    *EventBus
	busJob string
}

// NewTracer creates a tracer whose epoch is now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// SetBus attaches a live event bus: from now on every StartSpan/End
// publishes a span_start/span_end event tagged with job. The span_start
// events are published under the tracer lock, so their order on the bus
// matches the child order of the span tree — a consumer can rebuild the
// exact tree the NDJSON export will later serialize. A nil bus
// detaches.
func (t *Tracer) SetBus(bus *EventBus, job string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.bus = bus
	t.busJob = job
	t.mu.Unlock()
}

// publish forwards a span event to the attached bus, stamping the job.
func (t *Tracer) publish(ev BusEvent) {
	t.mu.Lock()
	bus, job := t.bus, t.busJob
	t.mu.Unlock()
	if bus == nil {
		return
	}
	ev.Job = job
	bus.Publish(ev)
}

// StartSpan opens a span named name. Returns nil on a nil tracer.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	s := &Span{
		name:   name,
		start:  now,
		off:    now.Sub(t.epoch),
		attrs:  attrs,
		tracer: t,
	}
	t.mu.Lock()
	t.nextID++
	s.id = t.nextID
	if n := len(t.open); n > 0 {
		parent := t.open[n-1]
		s.parent = parent.id
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	} else {
		t.roots = append(t.roots, s)
	}
	t.open = append(t.open, s)
	if t.bus != nil {
		// Published inside the lock: bus order == sibling order.
		t.bus.Publish(BusEvent{
			Type:   EventSpanStart,
			Job:    t.busJob,
			Name:   name,
			Span:   s.id,
			Parent: s.parent,
			Attrs:  attrMap(attrs),
		})
	}
	t.mu.Unlock()
	return s
}

// pop removes s from the open stack (wherever it sits — out-of-order
// ends of concurrent children must not strand the stack).
func (t *Tracer) pop(s *Span) {
	t.mu.Lock()
	for i := len(t.open) - 1; i >= 0; i-- {
		if t.open[i] == s {
			t.open = append(t.open[:i], t.open[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
}

// Roots returns a copy of the top-level span list.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}
