package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// NDJSON trace export: one JSON object per line, so a trace can be
// streamed, grepped, and diffed across PRs without a reader library.
// Line kinds:
//
//	{"type":"meta","version":1}
//	{"type":"span","id":3,"parent":1,"name":"attack.verify_zpath","start_us":12.5,"dur_us":8100.2,"attrs":{...}}
//	{"type":"counter","name":"attack.loads","value":47}
//	{"type":"gauge","name":"scan.workers","value":8}
//	{"type":"hist","name":"batch.lanes_per_pass","count":5,"sum":41,"min":1,"max":35}
//
// Span ids are depth-first over the span tree, parents before children;
// parent 0 marks a root span. tools/tracestat consumes this format.

// TraceVersion is the NDJSON schema version emitted by WriteNDJSON.
const TraceVersion = 1

// Event is one NDJSON trace line (shared with tools/tracestat, which
// keeps its own decoder to stay dependency-free).
type Event struct {
	Type    string         `json:"type"`
	Version int            `json:"version,omitempty"`
	ID      int            `json:"id,omitempty"`
	Parent  int            `json:"parent,omitempty"`
	Name    string         `json:"name,omitempty"`
	StartUS float64        `json:"start_us,omitempty"`
	DurUS   float64        `json:"dur_us,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Value   float64        `json:"value,omitempty"`
	Count   int64          `json:"count,omitempty"`
	Sum     float64        `json:"sum,omitempty"`
	Min     float64        `json:"min,omitempty"`
	Max     float64        `json:"max,omitempty"`
}

// WriteNDJSON streams the span tree and a metrics snapshot to w. Either
// tracer or reg may be nil (that section is simply omitted). The first
// write or encode error aborts the export and is returned, so callers
// can fail loudly instead of shipping a truncated trace.
func WriteNDJSON(w io.Writer, tracer *Tracer, reg *Registry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends '\n' — one object per line
	if err := enc.Encode(Event{Type: "meta", Version: TraceVersion}); err != nil {
		return err
	}
	nextID := 1
	var walk func(s *Span, parent int) error
	walk = func(s *Span, parent int) error {
		id := nextID
		nextID++
		ev := Event{
			Type:    "span",
			ID:      id,
			Parent:  parent,
			Name:    s.Name(),
			StartUS: float64(s.Start().Nanoseconds()) / 1e3,
			DurUS:   float64(s.Duration().Nanoseconds()) / 1e3,
		}
		if attrs := s.Attrs(); len(attrs) > 0 {
			ev.Attrs = make(map[string]any, len(attrs))
			for _, a := range attrs {
				ev.Attrs[a.Key] = a.Value
			}
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
		for _, c := range s.Children() {
			if err := walk(c, id); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range tracer.Roots() {
		if err := walk(root, 0); err != nil {
			return err
		}
	}
	for _, m := range reg.Snapshot() {
		ev := Event{Type: m.Kind, Name: m.Name}
		switch m.Kind {
		case "hist":
			ev.Count = m.Hist.Count
			ev.Sum = m.Hist.Sum
			ev.Min = m.Hist.Min
			ev.Max = m.Hist.Max
		case "bhist":
			// Bucketed histograms export their aggregate as a schema-v1
			// hist line (bucket detail is a /metrics concern; the trace
			// format and its readers stay unchanged).
			ev.Type = "hist"
			ev.Count = m.Buckets.Count
			ev.Sum = m.Buckets.Sum
		default:
			ev.Value = m.Value
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}
