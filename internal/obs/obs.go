// Package obs is the unified attack telemetry layer: a span tracer for
// phase-level wall-clock attribution, a metrics registry of typed
// counters/gauges/histograms, and a leveled logger — one handle threaded
// through the scanner, the candidate sweeps, the device simulator and
// the incremental-reconfiguration caches.
//
// The paper's headline numbers are costs (bitstream loads, keystream
// computations, the 3^32 → 2 collapse of the key-independent
// exploration); this package makes every phase of the attack that
// produces them observable as one coherent trace instead of three
// disjoint ad-hoc stat structs. Everything is nil-safe: a nil
// *Telemetry (or nil component) turns every instrumentation point into
// a no-op, so the hot paths carry tracing unconditionally and pay
// (almost) nothing when it is off.
package obs

// Telemetry bundles the three observability components plus an
// optional live event bus. Any field may be nil; all helper methods
// tolerate a nil receiver.
type Telemetry struct {
	Tracer  *Tracer
	Metrics *Registry
	Log     *Logger
	// Bus receives live events (span start/end via the tracer, progress
	// events via Publish). BusJob tags every published event with the
	// owning job id. Set both through AttachBus.
	Bus    *EventBus
	BusJob string
}

// AttachBus connects the handle (and its tracer) to a live event bus:
// spans stream as span_start/span_end events and Publish emits progress
// events, all tagged with job. A nil bus detaches.
func (t *Telemetry) AttachBus(bus *EventBus, job string) {
	if t == nil {
		return
	}
	t.Bus = bus
	t.BusJob = job
	t.Tracer.SetBus(bus, job)
}

// Publish emits a progress-style event onto the attached bus (a no-op
// when no bus is attached): evType is one of the Event* constants, name
// identifies the emitting site, value is the headline number and attrs
// carry the detail. The publish path never blocks — a slow subscriber
// drops events instead of stalling the attack hot path.
func (t *Telemetry) Publish(evType, name string, value float64, attrs ...Attr) {
	if t == nil || t.Bus == nil {
		return
	}
	t.Bus.Publish(BusEvent{
		Type:  evType,
		Job:   t.BusJob,
		Name:  name,
		Value: value,
		Attrs: attrMap(attrs),
	})
}

// New returns a Telemetry with a fresh tracer and registry and no
// logger (attach one with the Log field if log capture is wanted).
func New() *Telemetry {
	return &Telemetry{Tracer: NewTracer(), Metrics: NewRegistry()}
}

// StartSpan opens a span on the tracer, or returns nil when tracing is
// off. A nil *Span is safe to End().
func (t *Telemetry) StartSpan(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.Tracer.StartSpan(name, attrs...)
}

// Counter returns the named counter, or nil when metrics are off.
func (t *Telemetry) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	return t.Metrics.Counter(name)
}

// Gauge returns the named gauge, or nil when metrics are off.
func (t *Telemetry) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	return t.Metrics.Gauge(name)
}

// Histogram returns the named histogram, or nil when metrics are off.
func (t *Telemetry) Histogram(name string) *Histogram {
	if t == nil {
		return nil
	}
	return t.Metrics.Histogram(name)
}

// BucketHistogram returns the named bucketed histogram, or nil when
// metrics are off.
func (t *Telemetry) BucketHistogram(name string, buckets []float64) *BucketHistogram {
	if t == nil {
		return nil
	}
	return t.Metrics.BucketHistogram(name, buckets)
}

// Logger returns the attached logger (possibly nil; a nil *Logger is a
// valid no-op logger).
func (t *Telemetry) Logger() *Logger {
	if t == nil {
		return nil
	}
	return t.Log
}
