package obs

import (
	"fmt"
	"io"
	"sync"
)

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the conventional lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Logger is a minimal leveled logger. A nil *Logger is a valid sink
// that drops everything — the replacement for the raw
// `logf func(string, ...any)` callback the attack used to thread
// around, whose nil case every caller had to guard.
type Logger struct {
	min  Level
	emit func(level Level, format string, args ...any)
}

// NewFuncLogger adapts a legacy printf-style callback at Info level.
// The format string and args pass through unchanged, so output stays
// byte-identical to the pre-telemetry logf path. A nil fn yields a nil
// logger (valid, drops everything).
func NewFuncLogger(fn func(string, ...any)) *Logger {
	if fn == nil {
		return nil
	}
	return &Logger{
		min:  LevelInfo,
		emit: func(_ Level, format string, args ...any) { fn(format, args...) },
	}
}

// NewWriterLogger writes "level: message" lines at or above min to w.
func NewWriterLogger(w io.Writer, min Level) *Logger {
	var mu sync.Mutex
	return &Logger{
		min: min,
		emit: func(level Level, format string, args ...any) {
			mu.Lock()
			fmt.Fprintf(w, "%s: "+format+"\n", append([]any{level}, args...)...)
			mu.Unlock()
		},
	}
}

// Enabled reports whether the logger would emit at level.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.min
}

func (l *Logger) logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	l.emit(level, format, args...)
}

// Debugf logs at debug level (dropped by the legacy shim, which sits
// at info).
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }
