package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Inc()
	if v := r.Counter("a").Value(); v != 4 {
		t.Fatalf("counter = %d", v)
	}
	r.Counter("a").Set(10)
	if v := r.Counter("a").Value(); v != 10 {
		t.Fatalf("after Set = %d", v)
	}
	r.Gauge("g").Set(2.5)
	if v := r.Gauge("g").Value(); v != 2.5 {
		t.Fatalf("gauge = %v", v)
	}
	h := r.Histogram("h")
	h.Observe(4)
	h.Observe(1)
	h.Observe(7)
	hv := h.Value()
	if hv.Count != 3 || hv.Sum != 12 || hv.Min != 1 || hv.Max != 7 {
		t.Fatalf("hist = %+v", hv)
	}
	var nilReg *Registry
	nilReg.Counter("x").Inc()
	nilReg.Gauge("x").Set(1)
	nilReg.Histogram("x").Observe(1)
	if nilReg.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits").Inc()
				r.Histogram("lanes").Observe(float64(i % 64))
				r.Gauge("width").Set(64)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("hits").Value(); v != 8000 {
		t.Fatalf("hits = %d", v)
	}
	if hv := r.Histogram("lanes").Value(); hv.Count != 8000 {
		t.Fatalf("lanes count = %d", hv.Count)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z").Set(1)
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Histogram("m").Observe(1)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if len(s1) != 4 {
		t.Fatalf("snapshot size %d", len(s1))
	}
	for i := range s1 {
		if !reflect.DeepEqual(s1[i], s2[i]) {
			t.Fatalf("snapshot not deterministic at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	// counters first (kind sort), then within kind by name.
	if s1[0].Name != "a" || s1[1].Name != "b" || s1[2].Name != "z" || s1[3].Name != "m" {
		t.Fatalf("order: %v", s1)
	}
}

func TestWriteNDJSON(t *testing.T) {
	tel := New()
	run := tel.StartSpan("attack.run")
	scan := tel.StartSpan("scan.pass", KV("functions", 21))
	scan.End()
	run.End()
	tel.Counter("attack.loads").Set(47)
	tel.Gauge("scan.workers").Set(8)
	tel.Histogram("batch.lanes_per_pass").Observe(35)

	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, tel.Tracer, tel.Metrics); err != nil {
		t.Fatal(err)
	}
	var types []string
	names := map[string]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		types = append(types, ev.Type)
		names[ev.Name] = true
		if ev.Type == "span" && ev.Name == "scan.pass" {
			if ev.Parent != 1 {
				t.Fatalf("scan.pass parent = %d", ev.Parent)
			}
			if ev.Attrs["functions"] != float64(21) {
				t.Fatalf("attrs = %v", ev.Attrs)
			}
		}
		if ev.Type == "counter" && ev.Name == "attack.loads" && ev.Value != 47 {
			t.Fatalf("loads = %v", ev.Value)
		}
	}
	want := []string{"meta", "span", "span", "counter", "gauge", "hist"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("line types %v, want %v", types, want)
	}
	for _, n := range []string{"attack.run", "scan.pass", "attack.loads", "scan.workers", "batch.lanes_per_pass"} {
		if !names[n] {
			t.Fatalf("missing %s", n)
		}
	}
	// Nil components export cleanly (meta line only).
	buf.Reset()
	if err := WriteNDJSON(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("nil export wrote %d lines", got)
	}
}

// errWriter fails after n bytes, to pin that export errors surface.
type errWriter struct{ left int }

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.left {
		n := w.left
		w.left = 0
		return n, bytes.ErrTooLarge
	}
	w.left -= len(p)
	return len(p), nil
}

func TestWriteNDJSONPropagatesErrors(t *testing.T) {
	tel := New()
	for i := 0; i < 2000; i++ {
		tel.StartSpan("s").End()
	}
	if err := WriteNDJSON(&errWriter{left: 64}, tel.Tracer, tel.Metrics); err == nil {
		t.Fatal("export to a failing writer reported success")
	}
}
