package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Server-Sent Events transport for the EventBus. Wire format (one frame
// per bus event):
//
//	id: <seq>
//	event: <type>
//	data: {"seq":…,"t_us":…,"type":…,…}        (the BusEvent as JSON)
//
// Heartbeats are comment frames (": hb") so idle streams keep their
// connection alive without fabricating events. A reconnecting client
// sends Last-Event-ID (standard EventSource behavior) and the stream
// resumes from the ring buffer; sequence gaps mean the ring has already
// evicted part of the requested range. When a subscriber falls behind,
// the bus drops events rather than stalling publishers; the stream then
// carries a synthetic "drops" frame (no id — it is per-subscriber, not
// a bus event) telling the consumer its cumulative loss.

// SSEFromNow is the SSEOptions.After sentinel for a live-only stream
// (no ring replay).
const SSEFromNow = ^uint64(0)

// DefaultHeartbeat is the SSE keep-alive cadence used when
// SSEOptions.Heartbeat is zero.
const DefaultHeartbeat = 15 * time.Second

// SSEOptions parameterize ServeSSE.
type SSEOptions struct {
	// After is the resume point: replay buffered events with Seq >
	// After before going live. SSEFromNow skips replay. A Last-Event-ID
	// request header overrides it.
	After uint64
	// Filter selects which bus events reach this stream (nil = all).
	Filter func(BusEvent) bool
	// Done, when non-nil, closes the stream right after the first
	// delivered event it matches (the per-job streams close on the
	// terminal job event).
	Done func(BusEvent) bool
	// Epilogue runs after the backlog replay when Done has not yet
	// fired: returning a non-nil event writes it and ends the stream
	// (used to synthesize a terminal event for already-finished jobs);
	// returning nil continues live.
	Epilogue func() *BusEvent
	// Heartbeat is the keep-alive comment cadence (0 = DefaultHeartbeat).
	Heartbeat time.Duration
	// Buffer is the subscriber channel depth (0 = DefaultSubBuffer).
	Buffer int
}

// SSEWriter encodes bus events as SSE frames.
type SSEWriter struct {
	w  http.ResponseWriter
	fl http.Flusher
}

// NewSSEWriter sets the SSE response headers and returns a writer, or
// an error when the ResponseWriter cannot stream.
func NewSSEWriter(w http.ResponseWriter) (*SSEWriter, error) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return nil, fmt.Errorf("obs: response writer does not support streaming")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	// Commit the headers immediately: an EventSource client must see the
	// stream open even when the first event is seconds away.
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return &SSEWriter{w: w, fl: fl}, nil
}

// WriteEvent writes one event frame and flushes it.
func (sw *SSEWriter) WriteEvent(ev BusEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if ev.Seq > 0 {
		if _, err := fmt.Fprintf(sw.w, "id: %d\n", ev.Seq); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
		return err
	}
	sw.fl.Flush()
	return nil
}

// Heartbeat writes a keep-alive comment frame.
func (sw *SSEWriter) Heartbeat() error {
	if _, err := fmt.Fprint(sw.w, ": hb\n\n"); err != nil {
		return err
	}
	sw.fl.Flush()
	return nil
}

// ServeSSE streams bus events to one HTTP client: ring-buffer backlog
// first (honoring Last-Event-ID), then live events, with heartbeats in
// between. It returns when the client disconnects, the bus closes, opt.
// Done matches a delivered event, or opt.Epilogue ends the stream.
func ServeSSE(w http.ResponseWriter, r *http.Request, bus *EventBus, opt SSEOptions) error {
	sw, err := NewSSEWriter(w)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return err
	}
	after := opt.After
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		if v, perr := strconv.ParseUint(lid, 10, 64); perr == nil {
			after = v
		}
	}
	if after == SSEFromNow {
		after = bus.Seq()
	}
	sub, backlog := bus.SubscribeFrom(after, opt.Buffer)
	defer sub.Close()

	deliver := func(ev BusEvent) (done bool, err error) {
		if opt.Filter != nil && !opt.Filter(ev) {
			return false, nil
		}
		if err := sw.WriteEvent(ev); err != nil {
			return true, err
		}
		return opt.Done != nil && opt.Done(ev), nil
	}
	for _, ev := range backlog {
		if done, err := deliver(ev); done || err != nil {
			return err
		}
	}
	if opt.Epilogue != nil {
		if ev := opt.Epilogue(); ev != nil {
			_, err := deliver(*ev)
			return err
		}
	}

	hb := opt.Heartbeat
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	var reported int64 // drops already surfaced to this client
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				return nil // bus closed (engine shutdown)
			}
			if done, err := deliver(ev); done || err != nil {
				return err
			}
			if d := sub.Drops(); d > reported {
				reported = d
				if err := sw.WriteEvent(BusEvent{Type: EventDrops, Value: float64(d)}); err != nil {
					return err
				}
			}
		case <-ticker.C:
			if err := sw.Heartbeat(); err != nil {
				return err
			}
		case <-r.Context().Done():
			return nil
		}
	}
}
