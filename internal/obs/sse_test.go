package obs

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func sseRequest(ctx context.Context, lastEventID string) *http.Request {
	r := httptest.NewRequest("GET", "/events", nil)
	if lastEventID != "" {
		r.Header.Set("Last-Event-ID", lastEventID)
	}
	return r.WithContext(ctx)
}

// terminalJob marks the job event that ends a per-job stream.
func terminalJob(ev BusEvent) bool {
	return ev.Type == EventJob && ev.Name == "done"
}

func TestServeSSEBacklogAndDone(t *testing.T) {
	b := NewEventBus(32)
	b.Publish(BusEvent{Type: EventJob, Job: "j1", Name: "queued"})
	b.Publish(BusEvent{Type: EventSpanStart, Job: "j1", Name: "attack.run", Span: 1})
	b.Publish(BusEvent{Type: EventJob, Job: "j1", Name: "done"})

	rec := httptest.NewRecorder()
	err := ServeSSE(rec, sseRequest(context.Background(), ""), b, SSEOptions{
		Done: terminalJob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"id: 1\nevent: job\n", "id: 2\nevent: span_start\n", "id: 3\nevent: job\n",
		`"name":"queued"`, `"name":"attack.run"`, `"name":"done"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("body missing %q:\n%s", want, body)
		}
	}
}

func TestServeSSELastEventIDResume(t *testing.T) {
	b := NewEventBus(32)
	for _, name := range []string{"queued", "running", "done"} {
		b.Publish(BusEvent{Type: EventJob, Name: name})
	}
	rec := httptest.NewRecorder()
	// Client saw up to seq 2; resume skips queued and running.
	err := ServeSSE(rec, sseRequest(context.Background(), "2"), b, SSEOptions{
		Done: terminalJob,
	})
	if err != nil {
		t.Fatal(err)
	}
	body := rec.Body.String()
	if strings.Contains(body, `"queued"`) || strings.Contains(body, `"running"`) {
		t.Fatalf("resumed stream replayed old events:\n%s", body)
	}
	if !strings.Contains(body, "id: 3\n") {
		t.Fatalf("resumed stream missing seq 3:\n%s", body)
	}
}

func TestServeSSEEpilogue(t *testing.T) {
	b := NewEventBus(32)
	b.Publish(BusEvent{Type: EventJob, Name: "queued"})
	rec := httptest.NewRecorder()
	// Job already terminal but its events were evicted: Epilogue
	// synthesizes the terminal frame and closes the stream.
	err := ServeSSE(rec, sseRequest(context.Background(), ""), b, SSEOptions{
		Done:     terminalJob,
		Epilogue: func() *BusEvent { return &BusEvent{Type: EventJob, Name: "done"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.Body.String(), `"name":"done"`) {
		t.Fatalf("epilogue frame missing:\n%s", rec.Body.String())
	}
}

func TestServeSSEFilter(t *testing.T) {
	b := NewEventBus(32)
	b.Publish(BusEvent{Type: EventJob, Job: "a", Name: "queued"})
	b.Publish(BusEvent{Type: EventJob, Job: "b", Name: "queued"})
	b.Publish(BusEvent{Type: EventJob, Job: "a", Name: "done"})
	rec := httptest.NewRecorder()
	err := ServeSSE(rec, sseRequest(context.Background(), ""), b, SSEOptions{
		Filter: func(ev BusEvent) bool { return ev.Job == "a" },
		Done:   terminalJob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rec.Body.String(), `"job":"b"`) {
		t.Fatalf("filter leaked foreign job:\n%s", rec.Body.String())
	}
}

func TestServeSSEHeartbeatAndClientDisconnect(t *testing.T) {
	b := NewEventBus(32)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	rec := httptest.NewRecorder()
	err := ServeSSE(rec, sseRequest(ctx, ""), b, SSEOptions{
		After:     SSEFromNow,
		Heartbeat: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.Body.String(), ": hb\n\n") {
		t.Fatalf("no heartbeat in idle stream:\n%s", rec.Body.String())
	}
}

func TestServeSSEClosesOnBusClose(t *testing.T) {
	b := NewEventBus(32)
	done := make(chan error, 1)
	rec := httptest.NewRecorder()
	go func() {
		done <- ServeSSE(rec, sseRequest(context.Background(), ""), b, SSEOptions{})
	}()
	time.Sleep(20 * time.Millisecond) // let the stream go live
	b.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stream did not end on bus close")
	}
}

func TestServeSSEDropsFrameForSlowSubscriber(t *testing.T) {
	b := NewEventBus(1024)
	ctx, cancel := context.WithCancel(context.Background())
	rec := httptest.NewRecorder()
	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		close(started)
		finished <- ServeSSE(rec, sseRequest(ctx, ""), b, SSEOptions{
			After:  SSEFromNow,
			Buffer: 1,
		})
	}()
	<-started
	time.Sleep(10 * time.Millisecond)
	// Burst fast enough that a 1-deep subscriber must drop.
	for i := 0; i < 5000; i++ {
		b.Publish(BusEvent{Type: EventProgress, Name: "sweep.chunk"})
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.Dropped() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.Dropped() == 0 {
		t.Skip("subscriber kept up; cannot exercise the drops frame")
	}
	time.Sleep(50 * time.Millisecond) // let the writer surface the drop
	cancel()
	if err := <-finished; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.Body.String(), "event: drops\n") {
		t.Fatal("drops frame not written for slow subscriber")
	}
}

// TestServeSSEOverHTTP runs the full stack: real server, real client,
// live publishes, terminal close.
func TestServeSSEOverHTTP(t *testing.T) {
	b := NewEventBus(64)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = ServeSSE(w, r, b, SSEOptions{Done: terminalJob})
	}))
	defer srv.Close()

	b.Publish(BusEvent{Type: EventJob, Name: "queued"})
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	go func() {
		time.Sleep(20 * time.Millisecond)
		b.Publish(BusEvent{Type: EventJob, Name: "running"})
		b.Publish(BusEvent{Type: EventJob, Name: "done"})
	}()
	var names []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"type":"job"`) {
			for _, n := range []string{"queued", "running", "done"} {
				if strings.Contains(line, `"name":"`+n+`"`) {
					names = append(names, n)
				}
			}
		}
	}
	if got := strings.Join(names, ","); got != "queued,running,done" {
		t.Fatalf("job lifecycle over SSE = %q", got)
	}
}
