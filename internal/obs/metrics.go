package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-growing int64 metric (events: loads,
// cache hits, fallbacks). Set exists for mirroring an external
// accumulator that already aggregates (ScanStats/BatchStats); event
// sites use Add/Inc. All methods are nil-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments by one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the value (mirror of an external accumulator).
func (c *Counter) Set(n int64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move both ways (worker-pool size,
// lane utilisation, checkpoint counts).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates a distribution as count/sum/min/max (lanes per
// fabric pass, patch bytes per candidate). Deliberately bucket-free:
// the export stays tiny and deterministic.
type Histogram struct {
	mu    sync.Mutex
	count int64
	sum   float64
	min   float64
	max   float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// HistValue is a histogram snapshot.
type HistValue struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Value snapshots the histogram (zero for nil).
func (h *Histogram) Value() HistValue {
	if h == nil {
		return HistValue{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistValue{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
}

// BucketHistogram accumulates a distribution into fixed cumulative
// buckets (job queue-wait, job run-time), exported in the Prometheus
// histogram exposition (<name>_bucket{le="..."} / _sum / _count). The
// bucket bounds are fixed at first registration.
type BucketHistogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; an implicit +Inf follows
	counts []int64   // len(bounds)+1; counts[len(bounds)] is the +Inf bucket
	count  int64
	sum    float64
}

// DurationBucketsMS is the default bucket ladder for millisecond
// durations: sub-millisecond stub jobs up to minute-long campaigns.
var DurationBucketsMS = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// Observe records one sample into its bucket.
func (h *BucketHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// BucketValue is a bucketed-histogram snapshot. Counts are per-bucket
// (not cumulative); the exporter accumulates.
type BucketValue struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Value snapshots the histogram (zero for nil).
func (h *BucketHistogram) Value() BucketValue {
	if h == nil {
		return BucketValue{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return BucketValue{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
}

// Registry holds named metrics, get-or-create style. Safe for
// concurrent use and on a nil receiver (returns nil metrics, whose
// methods no-op).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	bhists   map[string]*BucketHistogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		bhists:   map[string]*BucketHistogram{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// BucketHistogram returns (creating if needed) the named bucketed
// histogram. buckets are the cumulative upper bounds; they are sorted
// and fixed at first registration (later calls for the same name ignore
// the argument, so concurrent registrations cannot disagree).
func (r *Registry) BucketHistogram(name string, buckets []float64) *BucketHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.bhists[name]
	if !ok {
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		h = &BucketHistogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
		r.bhists[name] = h
	}
	return h
}

// Metric is one exported metric value. Exactly one of the kind-specific
// value sets is meaningful, selected by Kind.
type Metric struct {
	Name    string
	Kind    string // "counter", "gauge", "hist" or "bhist"
	Value   float64
	Hist    HistValue
	Buckets BucketValue
}

// Snapshot returns every metric, sorted by (kind, name) for
// deterministic export.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.bhists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, Metric{Name: name, Kind: "hist", Hist: h.Value()})
	}
	for name, h := range r.bhists {
		out = append(out, Metric{Name: name, Kind: "bhist", Buckets: h.Value()})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// defaultRegistry is the process-wide registry: metrics whose scope is
// the process rather than one attack (the candidate-catalogue cache
// shared by every Scanner, for instance) land here.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }
