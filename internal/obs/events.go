package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Live event streaming: the EventBus is a bounded ring-buffer pub/sub
// that the tracer, the metrics flusher and the job engine publish into,
// and that SSE endpoints (and the obstop dashboard behind them)
// subscribe to. Two properties are load-bearing:
//
//   - The attack hot path can never stall on a consumer. Publish does a
//     non-blocking send to every subscriber; a subscriber whose buffer
//     is full loses that event and its drop counter increments — the
//     publisher returns immediately either way.
//   - A consumer can resume. Every event carries a monotonically
//     increasing sequence number and the bus retains the last Cap
//     events in a ring, so SubscribeFrom(seq) replays what is still
//     buffered (SSE maps this onto Last-Event-ID) and sequence gaps
//     tell the consumer exactly how much it missed.

// Bus event types. Span and metric events mirror the NDJSON trace
// schema; job and progress events are produced by the service layer and
// the candidate sweeps.
const (
	EventSpanStart = "span_start"
	EventSpanEnd   = "span_end"
	EventCounter   = "counter"
	EventGauge     = "gauge"
	EventJob       = "job"
	EventProgress  = "progress"
	EventService   = "service"
	// EventFleet is produced by the fleet coordinator: worker joins and
	// departures, lease grants, reassignments and shard-routing events.
	EventFleet = "fleet"
	// EventDrops is synthesized by the SSE writer (never stored in the
	// ring): it tells one subscriber how many events it has lost so far.
	EventDrops = "drops"
)

// BusEvent is one live event. Seq and TimeUS are stamped by Publish
// (sequence numbers are bus-global and strictly increasing; TimeUS is
// the offset from the bus epoch in microseconds).
type BusEvent struct {
	Seq    uint64         `json:"seq"`
	TimeUS float64        `json:"t_us"`
	Type   string         `json:"type"`
	Job    string         `json:"job,omitempty"`
	Name   string         `json:"name,omitempty"`
	Span   int            `json:"span,omitempty"`
	Parent int            `json:"parent,omitempty"`
	DurUS  float64        `json:"dur_us,omitempty"`
	Value  float64        `json:"value,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// DefaultEventBuffer is the ring capacity a zero-configured bus uses:
// large enough to hold every span of a full attack job, so a per-job
// SSE stream that connects mid-job can still catch up from zero.
const DefaultEventBuffer = 8192

// EventBus is the bounded pub/sub. All methods are safe for concurrent
// use and on a nil receiver (a nil bus swallows every publish), so
// instrumentation sites carry it unconditionally.
type EventBus struct {
	epoch time.Time
	cap   int

	mu     sync.Mutex
	ring   []BusEvent // fixed-size once warm; ring[(first+i)%cap]
	first  int        // index of the oldest retained event
	n      int        // retained event count (≤ cap)
	seq    uint64     // last assigned sequence number
	subs   map[*BusSub]struct{}
	closed bool

	dropped atomic.Int64 // events lost across all subscribers
}

// NewEventBus creates a bus retaining the last capacity events
// (capacity <= 0 selects DefaultEventBuffer).
func NewEventBus(capacity int) *EventBus {
	if capacity <= 0 {
		capacity = DefaultEventBuffer
	}
	return &EventBus{
		epoch: time.Now(),
		cap:   capacity,
		ring:  make([]BusEvent, 0, min(capacity, 1024)),
		subs:  map[*BusSub]struct{}{},
	}
}

// Publish stamps ev with the next sequence number and the bus-epoch
// offset, appends it to the ring (evicting the oldest event when full)
// and fans it out to every subscriber without blocking. It returns the
// assigned sequence number (0 on a nil or closed bus).
func (b *EventBus) Publish(ev BusEvent) uint64 {
	if b == nil {
		return 0
	}
	now := time.Now()
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0
	}
	b.seq++
	ev.Seq = b.seq
	ev.TimeUS = float64(now.Sub(b.epoch).Nanoseconds()) / 1e3
	if b.n < b.cap {
		if len(b.ring) < b.cap {
			b.ring = append(b.ring, ev)
		} else {
			b.ring[(b.first+b.n)%b.cap] = ev
		}
		b.n++
	} else {
		b.ring[b.first] = ev
		b.first = (b.first + 1) % b.cap
	}
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.drops.Add(1)
			b.dropped.Add(1)
		}
	}
	seq := b.seq
	b.mu.Unlock()
	return seq
}

// Seq returns the sequence number of the most recently published event
// (0 before the first publish or on a nil bus). Passing it to
// SubscribeFrom yields a live-only subscription.
func (b *EventBus) Seq() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Dropped returns the total number of events lost across all
// subscribers since the bus was created.
func (b *EventBus) Dropped() int64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Close terminates every subscription (their channels are closed after
// draining nothing further) and makes subsequent publishes no-ops.
// Idempotent.
func (b *EventBus) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		s.closed = true
		close(s.ch)
	}
	b.subs = map[*BusSub]struct{}{}
}

// BusSub is one subscription. Events arrive on C; when the subscriber's
// buffer is full at publish time the event is dropped and Drops grows.
type BusSub struct {
	bus    *EventBus
	ch     chan BusEvent
	drops  atomic.Int64
	closed bool // guarded by bus.mu
}

// DefaultSubBuffer is the per-subscriber channel depth used when
// SubscribeFrom is given a non-positive buffer size.
const DefaultSubBuffer = 256

// SubscribeFrom registers a subscriber and atomically returns the
// retained backlog: every buffered event with Seq > after, in order.
// Events published from this moment on arrive on C, so backlog+live is
// gap-free for anything still in the ring (a consumer detects true loss
// by a jump in sequence numbers). after = Seq() gives live-only; 0
// replays the full ring. On a closed bus the subscription is returned
// already closed (C is closed, backlog still holds the ring contents).
func (b *EventBus) SubscribeFrom(after uint64, buf int) (*BusSub, []BusEvent) {
	if buf <= 0 {
		buf = DefaultSubBuffer
	}
	s := &BusSub{bus: b, ch: make(chan BusEvent, buf)}
	if b == nil {
		s.closed = true
		close(s.ch)
		return s, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var backlog []BusEvent
	for i := 0; i < b.n; i++ {
		ev := b.ring[(b.first+i)%b.cap]
		if ev.Seq > after {
			backlog = append(backlog, ev)
		}
	}
	if b.closed {
		s.closed = true
		close(s.ch)
		return s, backlog
	}
	b.subs[s] = struct{}{}
	return s, backlog
}

// C returns the live event channel. It is closed when the subscriber or
// the bus closes.
func (s *BusSub) C() <-chan BusEvent { return s.ch }

// Drops returns how many events this subscriber has lost to a full
// buffer.
func (s *BusSub) Drops() int64 { return s.drops.Load() }

// Close unregisters the subscriber and closes C. Idempotent and safe
// concurrently with Publish.
func (s *BusSub) Close() {
	if s == nil || s.bus == nil {
		return
	}
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(s.bus.subs, s)
	close(s.ch)
}

// attrMap converts Attr annotations to the map shape BusEvent carries.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// MetricsStreamer publishes counter/gauge changes of one registry onto
// a bus at a flush cadence: each Flush snapshots the registry and emits
// one event per metric whose value moved since the previous flush, with
// the delta attached. Histograms are deliberately not streamed — their
// aggregates travel in the NDJSON trace; the live stream carries the
// operational counters a dashboard watches.
type MetricsStreamer struct {
	reg  *Registry
	bus  *EventBus
	job  string
	mu   sync.Mutex
	last map[string]float64
}

// NewMetricsStreamer builds a streamer tagging every event with job
// (which may be empty for engine-level registries).
func NewMetricsStreamer(reg *Registry, bus *EventBus, job string) *MetricsStreamer {
	return &MetricsStreamer{reg: reg, bus: bus, job: job, last: map[string]float64{}}
}

// Flush publishes every counter/gauge whose value changed since the
// last flush and returns how many events it emitted.
func (ms *MetricsStreamer) Flush() int {
	if ms == nil || ms.reg == nil || ms.bus == nil {
		return 0
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	sent := 0
	for _, m := range ms.reg.Snapshot() {
		if m.Kind != "counter" && m.Kind != "gauge" {
			continue
		}
		key := m.Kind + "\x00" + m.Name
		prev, seen := ms.last[key]
		if seen && prev == m.Value {
			continue
		}
		ms.last[key] = m.Value
		ms.bus.Publish(BusEvent{
			Type:  m.Kind,
			Job:   ms.job,
			Name:  m.Name,
			Value: m.Value,
			Attrs: map[string]any{"delta": m.Value - prev},
		})
		sent++
	}
	return sent
}

// DefaultFlushInterval is the metric flush cadence used when Start is
// given a non-positive interval.
const DefaultFlushInterval = 500 * time.Millisecond

// Start flushes on a ticker until the returned stop function is called.
// stop performs one final synchronous flush before returning, so the
// terminal metric values always reach the stream.
func (ms *MetricsStreamer) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultFlushInterval
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				ms.Flush()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			ms.Flush()
		})
	}
}
