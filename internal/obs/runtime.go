package obs

import (
	"runtime"
	"sync"
	"time"
)

// Runtime profiling gauges: a background poller samples the Go runtime
// into a Registry so the process's own health (goroutine count, heap,
// GC behaviour) is scraped from /metrics next to the attack metrics.
// Gauge names:
//
//	runtime.goroutines        current goroutine count
//	runtime.heap_alloc_bytes  live heap bytes
//	runtime.heap_objects      live heap objects
//	runtime.gc_cycles         completed GC cycles
//	runtime.gc_pause_ms       most recent GC stop-the-world pause
//
// The poller also invokes any extra sampler callbacks on each tick, so
// callers can fold in app-level gauges that need active sampling (job
// queue depth, victim-cache size) without running their own ticker.

// DefaultRuntimePoll is the sampling cadence used when StartRuntimeMetrics
// gets a non-positive interval.
const DefaultRuntimePoll = 2 * time.Second

// StartRuntimeMetrics begins polling runtime stats into reg every
// interval, invoking each extra sampler on the same cadence. It samples
// once synchronously before returning (so a scrape immediately after
// startup sees values) and returns a stop function that halts the
// poller; stop is idempotent and safe to call concurrently.
func StartRuntimeMetrics(reg *Registry, interval time.Duration, extra ...func(*Registry)) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = DefaultRuntimePoll
	}
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		reg.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
		reg.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
		reg.Gauge("runtime.heap_objects").Set(float64(ms.HeapObjects))
		reg.Gauge("runtime.gc_cycles").Set(float64(ms.NumGC))
		if ms.NumGC > 0 {
			pause := ms.PauseNs[(ms.NumGC+255)%256]
			reg.Gauge("runtime.gc_pause_ms").Set(float64(pause) / 1e6)
		}
		for _, fn := range extra {
			if fn != nil {
				fn(reg)
			}
		}
	}
	sample()
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
