package obs

import (
	"strings"
	"testing"
)

func TestWriteMetricsText(t *testing.T) {
	r := NewRegistry()
	r.Counter("attack.loads").Add(47)
	r.Gauge("scan.workers").Set(8)
	r.Histogram("batch.lanes_per_pass").Observe(1)
	r.Histogram("batch.lanes_per_pass").Observe(35)
	var b strings.Builder
	if err := WriteMetricsText(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE attack_loads_total counter\nattack_loads_total 47\n",
		"# TYPE scan_workers gauge\nscan_workers 8\n",
		"batch_lanes_per_pass_count 2\n",
		"batch_lanes_per_pass_sum 36\n",
		"batch_lanes_per_pass_min 1\n",
		"batch_lanes_per_pass_max 35\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteMetricsTextMergesRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("jobs").Add(2)
	b.Counter("jobs").Add(3)
	a.Histogram("ms").Observe(10)
	b.Histogram("ms").Observe(4)
	var sb strings.Builder
	if err := WriteMetricsText(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "\njobs_total ") != 1 {
		t.Fatalf("duplicate sample names in:\n%s", out)
	}
	for _, want := range []string{"jobs_total 5\n", "ms_count 2\n", "ms_sum 14\n", "ms_min 4\n", "ms_max 10\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Nil registries are fine (nil-safe like the rest of the package).
	if err := WriteMetricsText(&sb, nil); err != nil {
		t.Fatal(err)
	}
}

// A registered-but-never-observed histogram merged after a populated
// one must not clobber the accumulated Min/Max with its zero values,
// and min/max render as their own gauge families (a summary family may
// only carry _count/_sum samples).
func TestWriteMetricsTextEmptyHistogramMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("ms").Observe(10)
	a.Histogram("ms").Observe(4)
	b.Histogram("ms") // registered, no observations
	var sb strings.Builder
	if err := WriteMetricsText(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"ms_count 2\n", "ms_sum 14\n",
		"# TYPE ms_min gauge\nms_min 4\n",
		"# TYPE ms_max gauge\nms_max 10\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// Regression: a gauge family created after the first scrape (here: the
// second scrape sees a family the first did not) must still render with
// its own # TYPE line, in sorted family order — not appended TYPE-less
// at the tail, which is what registration-order emission produced when
// several registries merged.
func TestWriteMetricsTextLateFamilyGetsTypeLine(t *testing.T) {
	procReg, jobReg := NewRegistry(), NewRegistry()
	procReg.Counter("jobs.done").Inc()
	var first strings.Builder
	if err := WriteMetricsText(&first, procReg, jobReg); err != nil {
		t.Fatal(err)
	}
	// Between scrapes a new gauge family appears in the second registry.
	jobReg.Gauge("attack.candidates").Set(1077)
	var second strings.Builder
	if err := WriteMetricsText(&second, procReg, jobReg); err != nil {
		t.Fatal(err)
	}
	out := second.String()
	if !strings.Contains(out, "# TYPE attack_candidates gauge\nattack_candidates 1077\n") {
		t.Fatalf("late gauge family missing its TYPE line:\n%s", out)
	}
	// Sorted emission: the new family lands before jobs_done_total, so
	// scrape order is stable regardless of creation time.
	if strings.Index(out, "attack_candidates") > strings.Index(out, "jobs_done_total") {
		t.Fatalf("family order not sorted:\n%s", out)
	}
	// Every family has exactly one TYPE line.
	for _, fam := range []string{"attack_candidates", "jobs_done_total"} {
		if n := strings.Count(out, "# TYPE "+fam+" "); n != 1 {
			t.Fatalf("family %s has %d TYPE lines:\n%s", fam, n, out)
		}
	}
}

// Regression: names that collide after the dot translation ("jobs.done"
// in one registry, "jobs_done" in another) must merge into one family —
// one TYPE line, one summed sample — instead of emitting a duplicate
// family that scrapers reject.
func TestWriteMetricsTextTranslatedNameCollision(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("jobs.done").Add(2)
	b.Counter("jobs_done").Add(3)
	var sb strings.Builder
	if err := WriteMetricsText(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE jobs_done_total counter"); n != 1 {
		t.Fatalf("collision produced %d TYPE lines:\n%s", n, out)
	}
	if !strings.Contains(out, "jobs_done_total 5\n") {
		t.Fatalf("collision samples not summed:\n%s", out)
	}
}

func TestWriteMetricsTextBucketHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.BucketHistogram("service.job_run_ms", []float64{1, 2.5, 10})
	h.Observe(0.4)
	h.Observe(2)
	h.Observe(2)
	h.Observe(7)
	h.Observe(500)
	var sb strings.Builder
	if err := WriteMetricsText(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE service_job_run_ms histogram\n",
		`service_job_run_ms_bucket{le="1"} 1` + "\n",
		`service_job_run_ms_bucket{le="2.5"} 3` + "\n",
		`service_job_run_ms_bucket{le="10"} 4` + "\n",
		`service_job_run_ms_bucket{le="+Inf"} 5` + "\n",
		"service_job_run_ms_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "service_job_run_ms_sum 511.4\n") {
		t.Fatalf("sum wrong in:\n%s", out)
	}
}

// Same-name bucket histograms in merged registries sum per-bucket when
// the ladders agree.
func TestWriteMetricsTextBucketHistogramMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.BucketHistogram("wait", []float64{1, 5}).Observe(0.5)
	b.BucketHistogram("wait", []float64{1, 5}).Observe(3)
	b.BucketHistogram("wait", []float64{1, 5}).Observe(100)
	var sb strings.Builder
	if err := WriteMetricsText(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`wait_bucket{le="1"} 1` + "\n",
		`wait_bucket{le="5"} 2` + "\n",
		`wait_bucket{le="+Inf"} 3` + "\n",
		"wait_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
