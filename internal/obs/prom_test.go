package obs

import (
	"strings"
	"testing"
)

func TestWriteMetricsText(t *testing.T) {
	r := NewRegistry()
	r.Counter("attack.loads").Add(47)
	r.Gauge("scan.workers").Set(8)
	r.Histogram("batch.lanes_per_pass").Observe(1)
	r.Histogram("batch.lanes_per_pass").Observe(35)
	var b strings.Builder
	if err := WriteMetricsText(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE attack_loads_total counter\nattack_loads_total 47\n",
		"# TYPE scan_workers gauge\nscan_workers 8\n",
		"batch_lanes_per_pass_count 2\n",
		"batch_lanes_per_pass_sum 36\n",
		"batch_lanes_per_pass_min 1\n",
		"batch_lanes_per_pass_max 35\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteMetricsTextMergesRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("jobs").Add(2)
	b.Counter("jobs").Add(3)
	a.Histogram("ms").Observe(10)
	b.Histogram("ms").Observe(4)
	var sb strings.Builder
	if err := WriteMetricsText(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "\njobs_total ") != 1 {
		t.Fatalf("duplicate sample names in:\n%s", out)
	}
	for _, want := range []string{"jobs_total 5\n", "ms_count 2\n", "ms_sum 14\n", "ms_min 4\n", "ms_max 10\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Nil registries are fine (nil-safe like the rest of the package).
	if err := WriteMetricsText(&sb, nil); err != nil {
		t.Fatal(err)
	}
}

// A registered-but-never-observed histogram merged after a populated
// one must not clobber the accumulated Min/Max with its zero values,
// and min/max render as their own gauge families (a summary family may
// only carry _count/_sum samples).
func TestWriteMetricsTextEmptyHistogramMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("ms").Observe(10)
	a.Histogram("ms").Observe(4)
	b.Histogram("ms") // registered, no observations
	var sb strings.Builder
	if err := WriteMetricsText(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"ms_count 2\n", "ms_sum 14\n",
		"# TYPE ms_min gauge\nms_min 4\n",
		"# TYPE ms_max gauge\nms_max 10\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
