package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	run := tr.StartSpan("attack.run")
	scan := tr.StartSpan("scan.pass", KV("functions", 21))
	compile := tr.StartSpan("scan.compile")
	compile.End()
	walk := tr.StartSpan("scan.walk")
	walk.End()
	scan.End()
	verify := tr.StartSpan("attack.verify_zpath")
	verify.End()
	run.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "attack.run" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name() != "scan.pass" || kids[1].Name() != "attack.verify_zpath" {
		t.Fatalf("run children = %d", len(kids))
	}
	grand := kids[0].Children()
	if len(grand) != 2 || grand[0].Name() != "scan.compile" || grand[1].Name() != "scan.walk" {
		t.Fatalf("scan children wrong")
	}
	attrs := kids[0].Attrs()
	if len(attrs) != 1 || attrs[0].Key != "functions" || attrs[0].Value != 21 {
		t.Fatalf("attrs = %v", attrs)
	}
	// A span started after the tree closed becomes a new root.
	late := tr.StartSpan("late")
	late.End()
	if len(tr.Roots()) != 2 {
		t.Fatalf("late span did not become a root")
	}
}

func TestSpanDurations(t *testing.T) {
	tr := NewTracer()
	s := tr.StartSpan("instant")
	s.End()
	if d := s.Duration(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	if !s.Ended() {
		t.Fatal("span not marked ended")
	}
	// End is idempotent: the first duration sticks.
	d0 := s.Duration()
	time.Sleep(time.Millisecond)
	s.End()
	if s.Duration() != d0 {
		t.Fatal("second End changed the duration")
	}
	// An unfinished span reports zero, not garbage.
	open := tr.StartSpan("open")
	if open.Duration() != 0 {
		t.Fatal("open span has nonzero duration")
	}
	slow := tr.StartSpan("slow")
	time.Sleep(2 * time.Millisecond)
	slow.End()
	if slow.Duration() < time.Millisecond {
		t.Fatalf("slow span measured %v", slow.Duration())
	}
	if slow.Start() < open.Start() {
		t.Fatal("start offsets not monotonic")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("x")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.End()
	s.SetAttr("k", 1)
	if s.Name() != "" || s.Duration() != 0 || s.Ended() || s.Children() != nil || s.Attrs() != nil {
		t.Fatal("nil span accessors not inert")
	}
	var tel *Telemetry
	tel.StartSpan("x").End()
	tel.Counter("c").Inc()
	tel.Gauge("g").Set(1)
	tel.Histogram("h").Observe(1)
	tel.Logger().Infof("dropped %d", 1)
	tel = &Telemetry{} // components nil
	tel.StartSpan("x").End()
	tel.Counter("c").Inc()
	var l *Logger
	l.Infof("dropped")
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims to be enabled")
	}
	if NewFuncLogger(nil) != nil {
		t.Fatal("NewFuncLogger(nil) should be nil")
	}
}

// TestConcurrentSpans exercises the worker-pool pattern under -race:
// one phase span open, N goroutines starting/ending child spans and
// annotating them concurrently.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	phase := tr.StartSpan("scan.pass")
	var wg sync.WaitGroup
	const workers = 16
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := tr.StartSpan("scan.chunk")
				c.SetAttr("worker", w)
				c.End()
			}
		}(w)
	}
	wg.Wait()
	phase.End()
	total := 0
	var count func(s *Span)
	count = func(s *Span) {
		for _, c := range s.Children() {
			total++
			count(c)
		}
	}
	for _, r := range tr.Roots() {
		count(r)
	}
	if total != workers*50 {
		t.Fatalf("recorded %d child spans, want %d", total, workers*50)
	}
}

func TestLoggerLevels(t *testing.T) {
	var got []string
	l := &Logger{min: LevelWarn, emit: func(level Level, format string, args ...any) {
		got = append(got, level.String())
	}}
	l.Debugf("d")
	l.Infof("i")
	l.Warnf("w")
	l.Errorf("e")
	if len(got) != 2 || got[0] != "warn" || got[1] != "error" {
		t.Fatalf("emitted %v", got)
	}
	var legacy []string
	fl := NewFuncLogger(func(f string, args ...any) { legacy = append(legacy, f) })
	fl.Debugf("dropped")
	fl.Infof("kept %d")
	if len(legacy) != 1 || legacy[0] != "kept %d" {
		t.Fatalf("func logger passed %v", legacy)
	}
}
