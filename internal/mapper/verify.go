package mapper

import (
	"fmt"
	"math/rand"

	"snowbma/internal/netlist"
)

// adderVal evaluates one carry-chain sum bit over a value slice.
func adderVal(n *netlist.Netlist, nd *netlist.Node, vals []bool) bool {
	ad := &n.Adders[nd.Aux>>8]
	bit := int(nd.Aux & 0xff)
	carry := false
	for i := 0; i < bit; i++ {
		av, bv := vals[ad.A[i]], vals[ad.B[i]]
		carry = (av && bv) || (carry && (av != bv))
	}
	return vals[ad.A[bit]] != vals[ad.B[bit]] != carry
}

// verifyEquivalence checks that the mapped LUT network computes the same
// values as the source netlist on every visible net (mapped roots) for
// random primary-input and register assignments. BRAM reads go through
// both representations independently.
func verifyEquivalence(r *Result, trials int, seed int64) error {
	n := r.Netlist
	rng := rand.New(rand.NewSource(seed))
	srcVal := make([]bool, n.NumNodes())
	lutVal := make([]bool, n.NumNodes())

	// LUTs are stored in ascending root order, which is topological.
	for t := 0; t < trials; t++ {
		// Source network evaluation with random terminal values.
		for id := range n.Nodes {
			nd := &n.Nodes[id]
			switch nd.Op {
			case netlist.OpConst0:
				srcVal[id] = false
			case netlist.OpConst1:
				srcVal[id] = true
			case netlist.OpPI, netlist.OpFFQ:
				srcVal[id] = rng.Intn(2) == 1
			case netlist.OpBRAMOut:
				ram := &n.BRAMs[nd.Aux>>8]
				addr := 0
				for i, a := range nd.Fanin {
					if srcVal[a] {
						addr |= 1 << uint(i)
					}
				}
				srcVal[id] = ram.Content[addr]>>(uint(nd.Aux)&0xff)&1 == 1
			case netlist.OpAdderOut:
				srcVal[id] = adderVal(n, nd, srcVal)
			case netlist.OpAnd:
				srcVal[id] = srcVal[nd.Fanin[0]] && srcVal[nd.Fanin[1]]
			case netlist.OpOr:
				srcVal[id] = srcVal[nd.Fanin[0]] || srcVal[nd.Fanin[1]]
			case netlist.OpXor:
				srcVal[id] = srcVal[nd.Fanin[0]] != srcVal[nd.Fanin[1]]
			case netlist.OpNot:
				srcVal[id] = !srcVal[nd.Fanin[0]]
			case netlist.OpBuf:
				srcVal[id] = srcVal[nd.Fanin[0]]
			case netlist.OpMux:
				if srcVal[nd.Fanin[0]] {
					srcVal[id] = srcVal[nd.Fanin[1]]
				} else {
					srcVal[id] = srcVal[nd.Fanin[2]]
				}
			}
		}
		// Mapped network evaluation over the same terminal values.
		for id := range n.Nodes {
			nd := &n.Nodes[id]
			switch nd.Op {
			case netlist.OpConst0, netlist.OpConst1, netlist.OpPI, netlist.OpFFQ:
				lutVal[id] = srcVal[id]
			case netlist.OpBRAMOut:
				ram := &n.BRAMs[nd.Aux>>8]
				addr := 0
				for i, a := range nd.Fanin {
					if lutVal[a] {
						addr |= 1 << uint(i)
					}
				}
				lutVal[id] = ram.Content[addr]>>(uint(nd.Aux)&0xff)&1 == 1
			case netlist.OpAdderOut:
				lutVal[id] = adderVal(n, nd, lutVal)
			default:
				if li, mapped := r.LUTIndex[netlist.NodeID(id)]; mapped {
					lut := &r.LUTs[li]
					var m uint
					for i, in := range lut.Inputs {
						if lutVal[in] {
							m |= 1 << uint(i)
						}
					}
					lutVal[id] = lut.Fn.Eval(m)
				}
			}
		}
		for root := range r.LUTIndex {
			if srcVal[root] != lutVal[root] {
				return fmt.Errorf("mapper: trial %d: net %d (%s) differs between source (%v) and mapping (%v)",
					t, root, n.Nodes[root].Name, srcVal[root], lutVal[root])
			}
		}
	}
	return nil
}
