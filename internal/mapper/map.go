package mapper

import (
	"fmt"
	"sort"

	"snowbma/internal/boolfn"
	"snowbma/internal/netlist"
)

// Objective selects the primary optimization goal, mirroring the mapper
// families surveyed in Section II-B of the paper (depth-oriented à la
// DAG-map/FlowMap, area-oriented à la Chortle-crf).
type Objective int

const (
	// Depth minimizes the number of LUT levels, breaking ties by area
	// flow. This is the default and matches commercial behaviour.
	Depth Objective = iota
	// Area minimizes area flow regardless of depth.
	Area
)

// Options configures a mapping run.
type Options struct {
	// K is the LUT input count (default 6, the Xilinx 7-series value).
	K int
	// CutLimit bounds the priority-cut set per node (default 8).
	CutLimit int
	// Objective is the primary cost (default Depth).
	Objective Objective
	// AreaRecovery enables the required-time-constrained area pass.
	AreaRecovery bool
	// ExactArea enables the exact-local-area refinement sweep, which
	// replaces cuts by true-incremental-LUT-count minimization under the
	// selection's depth budget.
	ExactArea bool
	// TrivialCuts lists nodes that must be covered by trivial cuts — the
	// countermeasure's KEEP/DONT_TOUCH analogue. Each listed node becomes
	// its own LUT and is never absorbed into another cone.
	TrivialCuts map[netlist.NodeID]bool
	// Boundaries lists nets preserved as hierarchy boundaries (the effect
	// of hierarchy-rebuilding synthesis): a boundary net maps normally —
	// any cut may cover it — but fanouts must treat it as a leaf, so it
	// is never absorbed into a consumer's LUT.
	Boundaries map[netlist.NodeID]bool
}

func (o *Options) fill() {
	if o.K == 0 {
		o.K = 6
	}
	if o.K < 2 || o.K > boolfn.MaxVars {
		panic(fmt.Sprintf("mapper: unsupported K=%d", o.K))
	}
	if o.CutLimit == 0 {
		o.CutLimit = 8
	}
	if o.TrivialCuts == nil {
		o.TrivialCuts = map[netlist.NodeID]bool{}
	}
	if o.Boundaries == nil {
		o.Boundaries = map[netlist.NodeID]bool{}
	}
}

// LUT is one mapped lookup table: the function Fn over Inputs (Inputs[i]
// is variable a_{i+1}) rooted at netlist node Root.
type LUT struct {
	Root   netlist.NodeID
	Inputs []netlist.NodeID
	Fn     boolfn.TT
}

// Result is a completed mapping.
type Result struct {
	Netlist  *netlist.Netlist
	K        int
	LUTs     []LUT
	LUTIndex map[netlist.NodeID]int
	// Depth is the maximum LUT level over all roots.
	Depth int
}

// Map covers all logic reachable from primary outputs, flip-flop data
// inputs and BRAM address pins with K-input LUTs.
func Map(n *netlist.Netlist, opt Options) (*Result, error) {
	opt.fill()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	roots := requiredRoots(n)

	// Pass 1: area flow with static fanout estimates.
	pass1 := selectCover(n, opt, roots, func(v netlist.NodeID) int { return n.Fanout(v) })

	// Pass 2: refine fanout estimates to the leaf-reference counts of the
	// first selection. This corrects area flow's habit of discounting a
	// node whose other fanouts absorb it inside their cones rather than
	// reading it as a mapped net.
	refs := make([]int, n.NumNodes())
	for v := range pass1.needed {
		for _, l := range pass1.chosen[v].Leaves {
			refs[l]++
		}
	}
	for _, r := range roots {
		refs[r]++
	}
	sel := selectCover(n, opt, roots, func(v netlist.NodeID) int { return refs[v] })
	cuts, chosen, needed := sel.cuts, sel.chosen, sel.needed
	depthOpt, flowOpt := sel.depthOpt, sel.flowOpt
	pick := sel.pick

	if opt.AreaRecovery {
		recoverArea(n, opt, cuts, chosen, depthOpt, flowOpt, roots, needed)
	}
	if opt.ExactArea {
		// ELA needs every node's chosen cut materialized first.
		for v := range needed {
			if chosen[v] == nil {
				chosen[v] = pick(v, -1)
			}
		}
		refineExactArea(n, opt, cuts, chosen, roots, needed, depthOpt)
	}

	// Extract LUTs in topological (ascending ID) order.
	var order []netlist.NodeID
	for v := range needed {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	res := &Result{Netlist: n, K: opt.K, LUTIndex: make(map[netlist.NodeID]int, len(order))}
	level := make([]int, n.NumNodes())
	for _, v := range order {
		c := chosen[v]
		if c == nil { // can happen after area recovery re-selection
			c = pick(v, -1)
		}
		fn := coneFunction(n, v, c.Leaves)
		res.LUTIndex[v] = len(res.LUTs)
		res.LUTs = append(res.LUTs, LUT{Root: v, Inputs: append([]netlist.NodeID(nil), c.Leaves...), Fn: fn})
		lv := 0
		for _, l := range c.Leaves {
			if level[l] > lv {
				lv = level[l]
			}
		}
		level[v] = lv + 1
		if level[v] > res.Depth {
			res.Depth = level[v]
		}
	}
	return res, nil
}

// selection bundles the artefacts of one cover-selection pass.
type selection struct {
	cuts     [][]Cut
	chosen   []*Cut
	needed   map[netlist.NodeID]bool
	depthOpt []int
	flowOpt  []float64
	pick     func(v netlist.NodeID, maxDepth int) *Cut
}

// selectCover enumerates cuts under the given fanout estimator and picks
// a cover by backward traversal from the required roots.
func selectCover(n *netlist.Netlist, opt Options, roots []netlist.NodeID, fo fanoutEst) *selection {
	depthOpt := make([]int, n.NumNodes())
	flowOpt := make([]float64, n.NumNodes())
	cuts, _ := enumerateCuts(n, opt, depthOpt, flowOpt, fo)
	chosen := make([]*Cut, n.NumNodes())
	pick := func(v netlist.NodeID, maxDepth int) *Cut {
		set := cuts[v]
		best := -1
		for i := range set {
			if maxDepth >= 0 && set[i].depth > maxDepth {
				continue
			}
			if best == -1 || better(opt, &set[i], &set[best]) {
				best = i
			}
		}
		if best == -1 {
			best = 0 // depth bound unsatisfiable; fall back to fastest
		}
		return &set[best]
	}
	needed := map[netlist.NodeID]bool{}
	var queue []netlist.NodeID
	push := func(v netlist.NodeID) {
		if n.Nodes[v].Op.IsGate() && !needed[v] {
			needed[v] = true
			queue = append(queue, v)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		c := pick(v, -1)
		chosen[v] = c
		for _, l := range c.Leaves {
			push(l)
		}
	}
	return &selection{cuts: cuts, chosen: chosen, needed: needed,
		depthOpt: depthOpt, flowOpt: flowOpt, pick: pick}
}

func better(opt Options, a, b *Cut) bool {
	if opt.Objective == Area {
		if a.flow != b.flow {
			return a.flow < b.flow
		}
		return a.depth < b.depth
	}
	return cutLess(a, b)
}

// requiredRoots collects the nets that must be visible after mapping.
func requiredRoots(n *netlist.Netlist) []netlist.NodeID {
	seen := map[netlist.NodeID]bool{}
	var out []netlist.NodeID
	add := func(v netlist.NodeID) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, name := range n.OutputNames() {
		add(n.POs[name])
	}
	for _, ff := range n.FFs {
		add(ff.D)
	}
	for i := range n.BRAMs {
		for _, a := range n.BRAMs[i].Addr {
			add(a)
		}
	}
	for i := range n.Adders {
		for _, a := range n.Adders[i].A {
			add(a)
		}
		for _, b := range n.Adders[i].B {
			add(b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// recoverArea re-selects cuts minimizing area flow subject to per-node
// required times derived from the global depth, then rebuilds the needed
// set. One pass suffices for the networks in this project.
func recoverArea(n *netlist.Netlist, opt Options, cuts [][]Cut, chosen []*Cut,
	depthOpt []int, flowOpt []float64, roots []netlist.NodeID, needed map[netlist.NodeID]bool) {
	globalDepth := 0
	for _, r := range roots {
		if depthOpt[r] > globalDepth {
			globalDepth = depthOpt[r]
		}
	}
	required := make([]int, n.NumNodes())
	for i := range required {
		required[i] = -1
	}
	// Process needed nodes in reverse topological order.
	var order []netlist.NodeID
	for v := range needed {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] > order[j] })
	for _, r := range roots {
		required[r] = globalDepth
	}
	areaPick := func(v netlist.NodeID, maxDepth int) *Cut {
		set := cuts[v]
		best := -1
		for i := range set {
			if set[i].depth > maxDepth {
				continue
			}
			if best == -1 || set[i].flow < set[best].flow ||
				(set[i].flow == set[best].flow && set[i].depth < set[best].depth) {
				best = i
			}
		}
		if best == -1 {
			best = 0
		}
		return &set[best]
	}
	for v := range needed {
		delete(needed, v)
	}
	var queue []netlist.NodeID
	push := func(v netlist.NodeID, req int) {
		if !n.Nodes[v].Op.IsGate() {
			return
		}
		if required[v] < req {
			required[v] = req
		}
		if !needed[v] {
			needed[v] = true
			queue = append(queue, v)
		}
	}
	for _, r := range roots {
		push(r, globalDepth)
	}
	for len(queue) > 0 {
		// Pop the highest ID so required times are final before a node is
		// processed (all fanouts have higher... lower? fanouts have
		// HIGHER ids, so process descending).
		sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		c := areaPick(v, required[v])
		chosen[v] = c
		for _, l := range c.Leaves {
			push(l, required[v]-1)
		}
	}
}

// coneFunction computes the truth table of node v over the given leaves
// (leaf i → variable a_{i+1}).
func coneFunction(n *netlist.Netlist, v netlist.NodeID, leaves []netlist.NodeID) boolfn.TT {
	memo := make(map[netlist.NodeID]boolfn.TT, 16)
	for i, l := range leaves {
		memo[l] = boolfn.Var(i)
	}
	var eval func(netlist.NodeID) boolfn.TT
	eval = func(id netlist.NodeID) boolfn.TT {
		if tt, ok := memo[id]; ok {
			return tt
		}
		nd := &n.Nodes[id]
		var tt boolfn.TT
		switch nd.Op {
		case netlist.OpConst0:
			tt = boolfn.Const0
		case netlist.OpConst1:
			tt = boolfn.Const1
		case netlist.OpAnd:
			tt = boolfn.And(eval(nd.Fanin[0]), eval(nd.Fanin[1]))
		case netlist.OpOr:
			tt = boolfn.Or(eval(nd.Fanin[0]), eval(nd.Fanin[1]))
		case netlist.OpXor:
			tt = boolfn.Xor(eval(nd.Fanin[0]), eval(nd.Fanin[1]))
		case netlist.OpNot:
			tt = boolfn.Not(eval(nd.Fanin[0]))
		case netlist.OpBuf:
			tt = eval(nd.Fanin[0])
		case netlist.OpMux:
			tt = boolfn.Mux(eval(nd.Fanin[0]), eval(nd.Fanin[1]), eval(nd.Fanin[2]))
		default:
			panic(fmt.Sprintf("mapper: cone of %d crosses non-gate node %d (%v); invalid cut", v, id, nd.Op))
		}
		memo[id] = tt
		return tt
	}
	return eval(v)
}

// Covered returns the gate nodes inside LUT i (between its leaves and
// root, inclusive of the root) — the "nodes covered by the LUT" of
// Section II-B and Fig 5.
func (r *Result) Covered(i int) []netlist.NodeID {
	lut := r.LUTs[i]
	leafSet := map[netlist.NodeID]bool{}
	for _, l := range lut.Inputs {
		leafSet[l] = true
	}
	var out []netlist.NodeID
	seen := map[netlist.NodeID]bool{}
	var walk func(netlist.NodeID)
	walk = func(id netlist.NodeID) {
		if seen[id] || leafSet[id] {
			return
		}
		seen[id] = true
		nd := &r.Netlist.Nodes[id]
		if !nd.Op.IsGate() {
			return
		}
		out = append(out, id)
		for _, f := range nd.Fanin {
			walk(f)
		}
	}
	walk(lut.Root)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CoveringLUTs returns the indexes of every LUT whose cone contains node
// v (the paper's observation that reused nodes are covered by more than
// one LUT).
func (r *Result) CoveringLUTs(v netlist.NodeID) []int {
	var out []int
	for i := range r.LUTs {
		for _, u := range r.Covered(i) {
			if u == v {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// Verify simulates the mapped network against the source netlist on
// random input vectors and register states, returning an error on the
// first divergence. It is the mapper's functional safety net.
func (r *Result) Verify(trials int, seed int64) error {
	return verifyEquivalence(r, trials, seed)
}
