// Package mapper implements k-LUT technology mapping for Boolean networks
// in the style sketched in Section II-B of the paper: k-feasible cuts are
// enumerated bottom-up (cut enumeration with priority-cut pruning), a
// depth-optimal cover is selected, and an optional area-recovery pass
// trades depth slack for area. Nodes already mapped are reused when
// searching for k-feasible cuts, which — as the paper notes — is exactly
// the mapper behaviour that makes target nodes appear inside several LUTs
// (LUT₁/LUT₂/LUT₃ all cover the FSM output XOR v).
//
// The mapper also implements the paper's countermeasure (Section VII-A):
// nodes listed in Options.TrivialCuts are forced to be covered by the
// trivial cut — each becomes the root of its own LUT with exactly its
// gate fanins as LUT inputs and can never be absorbed into a larger cone.
package mapper

import (
	"fmt"
	"sort"

	"snowbma/internal/netlist"
)

// Cut is a set of leaves (sorted ascending) of a k-feasible cut, together
// with the quality metrics used during selection.
type Cut struct {
	Leaves []netlist.NodeID
	sign   uint64  // Bloom-style signature for fast dominance checks
	depth  int     // mapping depth if this cut is selected
	flow   float64 // area flow estimate
}

func signature(leaves []netlist.NodeID) uint64 {
	var s uint64
	for _, l := range leaves {
		s |= 1 << (uint(l) % 64)
	}
	return s
}

// mergeLeaves unions two sorted leaf sets, returning nil if the result
// exceeds k.
func mergeLeaves(a, b []netlist.NodeID, k int) []netlist.NodeID {
	out := make([]netlist.NodeID, 0, k+1)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next netlist.NodeID
		switch {
		case i == len(a):
			next = b[j]
			j++
		case j == len(b):
			next = a[i]
			i++
		case a[i] < b[j]:
			next = a[i]
			i++
		case a[i] > b[j]:
			next = b[j]
			j++
		default:
			next = a[i]
			i++
			j++
		}
		out = append(out, next)
		if len(out) > k {
			return nil
		}
	}
	return out
}

// dominates reports whether cut a's leaves are a subset of cut b's.
// Dominated cuts are pruned: any cover using b could use a at no loss.
func dominates(a, b *Cut) bool {
	if a.sign&^b.sign != 0 || len(a.Leaves) > len(b.Leaves) {
		return false
	}
	i := 0
	for _, l := range a.Leaves {
		for i < len(b.Leaves) && b.Leaves[i] < l {
			i++
		}
		if i == len(b.Leaves) || b.Leaves[i] != l {
			return false
		}
	}
	return true
}

// insertCut adds c to the pruned cut set, enforcing subset dominance and
// the priority-cut limit (cuts are kept sorted by (depth, flow, size)).
func insertCut(set []Cut, c Cut, limit int) []Cut {
	for i := range set {
		if dominates(&set[i], &c) {
			return set
		}
	}
	kept := set[:0]
	for i := range set {
		if !dominates(&c, &set[i]) {
			kept = append(kept, set[i])
		}
	}
	set = kept
	pos := len(set)
	for i := range set {
		if cutLess(&c, &set[i]) {
			pos = i
			break
		}
	}
	set = append(set, Cut{})
	copy(set[pos+1:], set[pos:])
	set[pos] = c
	if len(set) > limit {
		set = set[:limit]
	}
	return set
}

func cutLess(a, b *Cut) bool {
	if a.depth != b.depth {
		return a.depth < b.depth
	}
	if a.flow != b.flow {
		return a.flow < b.flow
	}
	// On an exact (depth, flow) tie prefer the larger cut: absorbing more
	// logic per LUT matches the packing behaviour of commercial mappers.
	return len(a.Leaves) > len(b.Leaves)
}

// fanoutEst supplies the fanout estimate used for area-flow sharing. The
// first mapping pass uses static netlist fanout; the refinement pass uses
// the leaf-reference counts of the previous selection, which corrects the
// classic area-flow error of discounting a node whose other fanouts
// absorb it instead of reading it as a net.
type fanoutEst func(netlist.NodeID) int

// enumerateCuts computes the pruned cut sets for every node. It returns
// two views: selfCuts[v] are the covers selectable when mapping v itself,
// and fanoutCuts[v] are the cuts v exposes to its fanouts. Terminal nodes
// (PIs, constants, flip-flop outputs, BRAM ports) expose only the trivial
// cut. Trivially-cut (countermeasure) nodes also expose only the trivial
// cut — fanouts must treat them as leaves — and their sole self cover is
// the forced fanin cut.
func enumerateCuts(n *netlist.Netlist, opt Options, depthOpt []int, flowOpt []float64, fo fanoutEst) (selfCuts, fanoutCuts [][]Cut) {
	selfCuts = make([][]Cut, n.NumNodes())
	fanoutCuts = make([][]Cut, n.NumNodes())
	for id := 0; id < n.NumNodes(); id++ {
		nd := &n.Nodes[id]
		v := netlist.NodeID(id)
		trivial := Cut{Leaves: []netlist.NodeID{v}, sign: signature([]netlist.NodeID{v})}
		if !nd.Op.IsGate() {
			depthOpt[id] = 0
			flowOpt[id] = 0
			fanoutCuts[id] = []Cut{trivial}
			continue
		}
		var set []Cut
		if !opt.TrivialCuts[v] {
			set = expandGateCuts(n, v, fanoutCuts, opt, depthOpt, flowOpt, fo)
		}
		if len(set) == 0 {
			// Countermeasure node, or merge produced nothing (gate arity
			// ≤ 3 ≤ k makes the fanin cut always feasible).
			set = []Cut{forcedCut(n, v, depthOpt, flowOpt, fo)}
		}
		depthOpt[id] = set[0].depth
		flowOpt[id] = set[0].flow
		selfCuts[id] = set
		trivial.depth = set[0].depth
		trivial.flow = set[0].flow
		if opt.TrivialCuts[v] || opt.Boundaries[v] {
			fanoutCuts[id] = []Cut{trivial}
		} else {
			fanoutCuts[id] = append(append([]Cut(nil), set...), trivial)
		}
	}
	return selfCuts, fanoutCuts
}

// forcedCut builds the cut consisting of v's fanins (minus constants).
func forcedCut(n *netlist.Netlist, v netlist.NodeID, depthOpt []int, flowOpt []float64, fo fanoutEst) Cut {
	leaves := make([]netlist.NodeID, 0, 3)
	for _, f := range n.Nodes[v].Fanin {
		if op := n.Nodes[f].Op; op == netlist.OpConst0 || op == netlist.OpConst1 {
			continue
		}
		leaves = append(leaves, f)
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	leaves = dedupe(leaves)
	c := Cut{Leaves: leaves, sign: signature(leaves)}
	c.depth, c.flow = cutCost(n, &c, depthOpt, flowOpt, fo)
	return c
}

func dedupe(s []netlist.NodeID) []netlist.NodeID {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// cutCost computes the depth and area flow of selecting this cut.
func cutCost(n *netlist.Netlist, c *Cut, depthOpt []int, flowOpt []float64, fo fanoutEst) (int, float64) {
	d := 0
	flow := 1.0
	for _, l := range c.Leaves {
		if depthOpt[l] > d {
			d = depthOpt[l]
		}
		f := fo(l)
		if f < 1 {
			f = 1
		}
		flow += flowOpt[l] / float64(f)
	}
	return d + 1, flow
}

// expandGateCuts merges fanin cut sets to produce the cut set of v.
func expandGateCuts(n *netlist.Netlist, v netlist.NodeID, cuts [][]Cut, opt Options, depthOpt []int, flowOpt []float64, fo fanoutEst) []Cut {
	nd := &n.Nodes[v]
	// Constant fanins do not contribute leaves; substitute an empty set.
	faninCuts := make([][]Cut, len(nd.Fanin))
	empty := []Cut{{Leaves: nil}}
	for i, f := range nd.Fanin {
		if op := n.Nodes[f].Op; op == netlist.OpConst0 || op == netlist.OpConst1 {
			faninCuts[i] = empty
		} else {
			faninCuts[i] = cuts[f]
		}
	}
	var set []Cut
	add := func(leaves []netlist.NodeID) {
		c := Cut{Leaves: leaves, sign: signature(leaves)}
		c.depth, c.flow = cutCost(n, &c, depthOpt, flowOpt, fo)
		set = insertCut(set, c, opt.CutLimit)
	}
	switch len(faninCuts) {
	case 1:
		for _, c0 := range faninCuts[0] {
			if l := mergeLeaves(c0.Leaves, nil, opt.K); l != nil {
				add(l)
			}
		}
	case 2:
		for _, c0 := range faninCuts[0] {
			for _, c1 := range faninCuts[1] {
				if l := mergeLeaves(c0.Leaves, c1.Leaves, opt.K); l != nil {
					add(l)
				}
			}
		}
	case 3:
		for _, c0 := range faninCuts[0] {
			for _, c1 := range faninCuts[1] {
				l01 := mergeLeaves(c0.Leaves, c1.Leaves, opt.K)
				if l01 == nil {
					continue
				}
				for _, c2 := range faninCuts[2] {
					if l := mergeLeaves(l01, c2.Leaves, opt.K); l != nil {
						add(l)
					}
				}
			}
		}
	default:
		panic(fmt.Sprintf("mapper: gate %d with %d fanins", v, len(faninCuts)))
	}
	return set
}
