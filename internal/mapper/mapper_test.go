package mapper

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"snowbma/internal/boolfn"
	"snowbma/internal/netlist"
)

// buildRandom constructs a random combinational netlist with nIn inputs
// and nGates gates, returning the network (all sink gates become outputs).
func buildRandom(rng *rand.Rand, nIn, nGates int) *netlist.Netlist {
	n := netlist.New()
	pool := make([]netlist.NodeID, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		pool = append(pool, n.Input("in"))
	}
	for g := 0; g < nGates; g++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		var id netlist.NodeID
		switch rng.Intn(5) {
		case 0:
			id = n.And(a, b)
		case 1:
			id = n.Or(a, b)
		case 2:
			id = n.Xor(a, b)
		case 3:
			id = n.Not(a)
		default:
			c := pool[rng.Intn(len(pool))]
			id = n.Mux(a, b, c)
		}
		pool = append(pool, id)
	}
	// Expose the last few nets as outputs so there is logic to map.
	for i := 0; i < 4 && i < len(pool); i++ {
		n.Output("o"+string(rune('a'+i)), pool[len(pool)-1-i])
	}
	return n
}

func TestMapSimpleEquivalence(t *testing.T) {
	n := netlist.New()
	a, b, c, d := n.Input("a"), n.Input("b"), n.Input("c"), n.Input("d")
	f := n.Xor(n.And(a, b), n.Or(c, d))
	n.Output("f", f)
	r, err := Map(n, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.LUTs) != 1 {
		t.Fatalf("4-input function should map to 1 LUT, got %d", len(r.LUTs))
	}
	if err := r.Verify(64, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMapRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		n := buildRandom(rng, 8, 120)
		for _, k := range []int{4, 6} {
			for _, obj := range []Objective{Depth, Area} {
				r, err := Map(n, Options{K: k, Objective: obj, AreaRecovery: obj == Depth})
				if err != nil {
					t.Fatalf("trial %d k=%d: %v", trial, k, err)
				}
				if err := r.Verify(48, int64(trial)); err != nil {
					t.Fatalf("trial %d k=%d obj=%d: %v", trial, k, obj, err)
				}
			}
		}
	}
}

func TestMapXorChainDepth(t *testing.T) {
	// A 16-input XOR chain has 15 gates in a line; covering 5 chain gates
	// per 6-input cut gives the depth-optimal ⌈15/5⌉ = 3 levels (cut-based
	// mapping covers cones, it does not rebalance the chain).
	n := netlist.New()
	acc := n.Input("x0")
	for i := 1; i < 16; i++ {
		acc = n.Xor(acc, n.Input("xi"))
	}
	n.Output("p", acc)
	r, err := Map(n, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r.Depth > 3 {
		t.Fatalf("XOR16 chain mapped with depth %d, want ≤ 3", r.Depth)
	}
	if err := r.Verify(64, 2); err != nil {
		t.Fatal(err)
	}
	// The root LUT must implement a pure parity of its inputs.
	root := r.LUTIndex[acc]
	fn := r.LUTs[root].Fn
	var parity boolfn.TT
	for i := range r.LUTs[root].Inputs {
		parity = boolfn.Xor(parity, boolfn.Var(i))
	}
	if fn != parity {
		t.Fatalf("root LUT is %v, want parity %v", fn, parity)
	}
}

func TestTrivialCutConstraint(t *testing.T) {
	n := netlist.New()
	a, b, c, d := n.Input("a"), n.Input("b"), n.Input("c"), n.Input("d")
	v := n.Xor(a, b) // protected target node
	f := n.And(n.Xor(v, c), d)
	n.Output("f", f)

	// Unconstrained: the whole 4-input cone collapses into one LUT and v
	// disappears inside it.
	r, err := Map(n, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, visible := r.LUTIndex[v]; visible {
		t.Fatal("unconstrained mapping should absorb the XOR node")
	}

	// Constrained: v must be its own 2-input XOR LUT.
	r2, err := Map(n, Options{K: 6, TrivialCuts: map[netlist.NodeID]bool{v: true}})
	if err != nil {
		t.Fatal(err)
	}
	li, visible := r2.LUTIndex[v]
	if !visible {
		t.Fatal("constrained mapping lost the target node")
	}
	lut := r2.LUTs[li]
	if len(lut.Inputs) != 2 {
		t.Fatalf("trivially cut LUT has %d inputs, want 2", len(lut.Inputs))
	}
	if lut.Fn != boolfn.Xor(boolfn.Var(0), boolfn.Var(1)) {
		t.Fatalf("trivially cut LUT function %v is not XOR2", lut.Fn)
	}
	if err := r2.Verify(64, 3); err != nil {
		t.Fatal(err)
	}
	// The countermeasure costs depth: constrained ≥ unconstrained.
	if r2.Depth < r.Depth {
		t.Fatalf("constrained depth %d < unconstrained %d", r2.Depth, r.Depth)
	}
}

func TestCoveringLUTsNodeReuse(t *testing.T) {
	// A node read by two distant outputs should end up inside multiple
	// LUT cones (Section II-B: mappers reuse already-mapped nodes).
	n := netlist.New()
	a, b := n.Input("a"), n.Input("b")
	v := n.Xor(a, b)
	c, d := n.Input("c"), n.Input("d")
	n.Output("f", n.And(v, c))
	n.Output("g", n.Or(v, d))
	r, err := Map(n, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	covering := r.CoveringLUTs(v)
	if len(covering) < 2 {
		t.Fatalf("node v covered by %d LUTs, want ≥ 2", len(covering))
	}
}

func TestCoveredNodes(t *testing.T) {
	n := netlist.New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	x := n.Xor(a, b)
	f := n.And(x, c)
	n.Output("f", f)
	r, err := Map(n, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	cov := r.Covered(r.LUTIndex[f])
	want := map[netlist.NodeID]bool{x: true, f: true}
	if len(cov) != 2 || !want[cov[0]] || !want[cov[1]] {
		t.Fatalf("covered = %v, want {x, f}", cov)
	}
}

func TestMapWithFFsAndBRAM(t *testing.T) {
	// Registers and a ROM in the loop: roots are the FF D inputs and the
	// ROM address pins.
	n := netlist.New()
	q := n.FFWord("q", 4, 0)
	content := make([]uint64, 16)
	for i := range content {
		content[i] = uint64((i*5 + 3) % 16)
	}
	romOut := n.NewBRAM("rom", q, 4, content)
	inc := n.AddWord(netlist.Word(romOut), n.ConstWord(1, 4))
	n.ConnectWord(q, inc)
	n.OutputWord("state", q)
	r, err := Map(n, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(64, 4); err != nil {
		t.Fatal(err)
	}
	// Every FF data input that is a gate must be a mapped root.
	for _, ff := range n.FFs {
		if n.Nodes[ff.D].Op.IsGate() {
			if _, ok := r.LUTIndex[ff.D]; !ok {
				t.Fatalf("FF %s data input not mapped", ff.Name)
			}
		}
	}
}

func TestAreaObjectiveUsesFewerOrEqualLUTs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	better := 0
	for trial := 0; trial < 8; trial++ {
		n := buildRandom(rng, 10, 200)
		rd, err := Map(n, Options{K: 6, Objective: Depth})
		if err != nil {
			t.Fatal(err)
		}
		ra, err := Map(n, Options{K: 6, Objective: Area})
		if err != nil {
			t.Fatal(err)
		}
		if len(ra.LUTs) <= len(rd.LUTs) {
			better++
		}
	}
	if better < 5 {
		t.Fatalf("area objective beat depth objective on only %d/8 netlists", better)
	}
}

func TestCutLimitAblation(t *testing.T) {
	// More priority cuts may never hurt depth.
	rng := rand.New(rand.NewSource(23))
	n := buildRandom(rng, 10, 300)
	r2, err := Map(n, Options{K: 6, CutLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Map(n, Options{K: 6, CutLimit: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r16.Depth > r2.Depth {
		t.Fatalf("depth with 16 cuts (%d) worse than with 2 (%d)", r16.Depth, r2.Depth)
	}
}

func TestPackDualXor(t *testing.T) {
	n := netlist.New()
	a, b, c, d := n.Input("a"), n.Input("b"), n.Input("c"), n.Input("d")
	x1 := n.Xor(a, b)
	x2 := n.Xor(c, d)
	n.Output("x1", x1)
	n.Output("x2", x2)
	r, err := Map(n, Options{K: 6, TrivialCuts: map[netlist.NodeID]bool{x1: true, x2: true}})
	if err != nil {
		t.Fatal(err)
	}
	phys := Pack(r, PackPolicy{Prefer: map[netlist.NodeID]bool{x1: true, x2: true}})
	var dual *PhysLUT
	for i := range phys {
		if phys[i].Dual {
			dual = &phys[i]
		}
	}
	if dual == nil {
		t.Fatal("two XOR2 LUTs were not packed into a dual LUT")
	}
	if len(dual.Inputs) != 4 {
		t.Fatalf("dual LUT has %d inputs, want 4", len(dual.Inputs))
	}
	split := boolfn.SplitDual(dual.Init)
	if !boolfn.IsXor2Half(split.O5) || !boolfn.IsXor2Half(split.O6) {
		t.Fatalf("dual LUT halves are not both XOR2: %v", dual.Init)
	}
}

func TestPackKeepsFunctions(t *testing.T) {
	// Dual-packed functions must still evaluate correctly over the union
	// input order.
	n := netlist.New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	f1 := n.Xor(a, b)
	f2 := n.And(b, c)
	n.Output("f1", f1)
	n.Output("f2", f2)
	r, err := Map(n, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	phys := Pack(r, PackPolicy{All: true})
	for _, p := range phys {
		if !p.Dual {
			continue
		}
		// Exhaustively compare each half against the source logic.
		for m := uint(0); m < 1<<uint(len(p.Inputs)); m++ {
			val := map[netlist.NodeID]bool{}
			for i, in := range p.Inputs {
				val[in] = m>>uint(i)&1 == 1
			}
			wantO5 := eval2(n, p.O5Root, val)
			wantO6 := eval2(n, p.O6Root, val)
			lo := boolfn.SplitDual(p.Init).O5
			hi := boolfn.SplitDual(p.Init).O6
			if boolfn.Lower5(lo).Eval(m) != wantO5 {
				t.Fatalf("O5 half wrong at %05b", m)
			}
			if boolfn.Lower5(hi).Eval(m) != wantO6 {
				t.Fatalf("O6 half wrong at %05b", m)
			}
		}
	}
}

// eval2 evaluates a small cone directly for the pack test.
func eval2(n *netlist.Netlist, id netlist.NodeID, val map[netlist.NodeID]bool) bool {
	if v, ok := val[id]; ok {
		return v
	}
	nd := n.Nodes[id]
	switch nd.Op {
	case netlist.OpAnd:
		return eval2(n, nd.Fanin[0], val) && eval2(n, nd.Fanin[1], val)
	case netlist.OpOr:
		return eval2(n, nd.Fanin[0], val) || eval2(n, nd.Fanin[1], val)
	case netlist.OpXor:
		return eval2(n, nd.Fanin[0], val) != eval2(n, nd.Fanin[1], val)
	case netlist.OpNot:
		return !eval2(n, nd.Fanin[0], val)
	}
	panic("eval2: unsupported op")
}

func TestTimingDeeperCircuitSlower(t *testing.T) {
	shallow := netlist.New()
	a, b := shallow.Input("a"), shallow.Input("b")
	q := shallow.NewFF("q", false)
	shallow.ConnectFF(q, shallow.Xor(a, b))
	deep := netlist.New()
	da, db := deep.Input("a"), deep.Input("b")
	dq := deep.NewFF("q", false)
	acc := deep.Xor(da, db)
	for i := 0; i < 20; i++ {
		acc = deep.Xor(acc, deep.Input("x"))
	}
	deep.ConnectFF(dq, acc)
	rs, err := Map(shallow, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Map(deep, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultDelays()
	ts, td := rs.Timing(m), rd.Timing(m)
	if td.Delay <= ts.Delay {
		t.Fatalf("deep circuit (%f) not slower than shallow (%f)", td.Delay, ts.Delay)
	}
	if ts.Endpoint == "" || len(ts.Through) == 0 {
		t.Fatal("timing report missing endpoint or path")
	}
}

func TestTimingBRAMPath(t *testing.T) {
	n := netlist.New()
	q := n.FFWord("q", 4, 0)
	out := n.NewBRAM("rom", q, 4, make([]uint64, 16))
	n.ConnectWord(q, netlist.Word(out))
	r, err := Map(n, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Timing(DefaultDelays())
	if rep.Delay < DefaultDelays().BRAM {
		t.Fatalf("BRAM path delay %f below BRAM access time", rep.Delay)
	}
}

func TestStatsHistogram(t *testing.T) {
	n := netlist.New()
	a, b := n.Input("a"), n.Input("b")
	n.Output("f", n.Xor(a, b))
	r, err := Map(n, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.LUTs != 1 || s.InputHist[2] != 1 {
		t.Fatalf("stats %v, want one 2-input LUT", s)
	}
}

func BenchmarkMapRandom2k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := buildRandom(rng, 16, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(n, Options{K: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapperCutLimit(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := buildRandom(rng, 16, 1000)
	for _, limit := range []int{2, 8, 24} {
		b.Run(map[int]string{2: "limit2", 8: "limit8", 24: "limit24"}[limit], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Map(n, Options{K: 6, CutLimit: limit}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestAreaRecoveryKeepsDepthReducesArea(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	worseArea := 0
	for trial := 0; trial < 10; trial++ {
		n := buildRandom(rng, 12, 300)
		plain, err := Map(n, Options{K: 6})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Map(n, Options{K: 6, AreaRecovery: true})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Depth > plain.Depth {
			t.Fatalf("trial %d: area recovery increased depth %d → %d", trial, plain.Depth, rec.Depth)
		}
		if err := rec.Verify(48, int64(trial)); err != nil {
			t.Fatalf("trial %d: area recovery broke equivalence: %v", trial, err)
		}
		if len(rec.LUTs) > len(plain.LUTs) {
			worseArea++
		}
	}
	if worseArea > 3 {
		t.Fatalf("area recovery increased LUT count on %d/10 netlists", worseArea)
	}
}

func TestTopPathsOrderedAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := buildRandom(rng, 10, 200)
	q := n.FFWord("q", 4, 0)
	n.ConnectWord(q, netlist.Word{2, 3, 4, 5})
	r, err := Map(n, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	model := DefaultDelays()
	top := r.TopPaths(model, 10)
	if len(top) == 0 {
		t.Fatal("no paths reported")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Delay > top[i-1].Delay {
			t.Fatal("TopPaths not sorted by delay")
		}
	}
	if r.Timing(model).Delay != top[0].Delay {
		t.Fatal("Timing disagrees with TopPaths[0]")
	}
}

func TestPlanCountermeasureSynthetic(t *testing.T) {
	// A design with 4 target XORs and plenty of same-function decoys.
	n := netlist.New()
	var targets []netlist.NodeID
	var sink netlist.NodeID = n.Const(false)
	for i := 0; i < 4; i++ {
		x := n.Xor(n.Input("t"), n.Input("t"))
		targets = append(targets, x)
		sink = n.Or(sink, x)
	}
	for i := 0; i < 40; i++ {
		sink = n.Or(sink, n.Xor(n.Input("d"), n.Input("d")))
	}
	n.Output("o", sink)
	plan, err := PlanCountermeasure(n, targets, 16)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SecurityBits < 16 {
		t.Fatalf("plan reaches only 2^%.1f", plan.SecurityBits)
	}
	for _, v := range targets {
		if !plan.TrivialCuts[v] {
			t.Fatal("plan omitted a target")
		}
	}
	if len(plan.Decoys) == 0 {
		t.Fatal("plan selected no decoys")
	}
	// The plan must be mappable and preserve function.
	r, err := Map(n, Options{K: 6, TrivialCuts: plan.TrivialCuts})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(64, 5); err != nil {
		t.Fatal(err)
	}
	for v := range plan.TrivialCuts {
		if _, ok := r.LUTIndex[v]; !ok {
			t.Fatalf("constrained node %d not a root", v)
		}
	}
}

func TestPlanCountermeasureInsufficientDecoys(t *testing.T) {
	n := netlist.New()
	x := n.Xor(n.Input("a"), n.Input("b"))
	n.Output("o", x)
	if _, err := PlanCountermeasure(n, []netlist.NodeID{x}, 128); err == nil {
		t.Fatal("plan succeeded without enough same-function nodes")
	}
}

func TestPlanCountermeasureRejectsMixedTargets(t *testing.T) {
	n := netlist.New()
	x := n.Xor(n.Input("a"), n.Input("b"))
	y := n.And(n.Input("c"), n.Input("d"))
	n.Output("o", n.Or(x, y))
	if _, err := PlanCountermeasure(n, []netlist.NodeID{x, y}, 10); err == nil {
		t.Fatal("plan accepted targets with different functions")
	}
}

func TestExactAreaRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	improved, worse := 0, 0
	for trial := 0; trial < 10; trial++ {
		n := buildRandom(rng, 12, 300)
		base, err := Map(n, Options{K: 6})
		if err != nil {
			t.Fatal(err)
		}
		ela, err := Map(n, Options{K: 6, ExactArea: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := ela.Verify(48, int64(trial)); err != nil {
			t.Fatalf("trial %d: ELA broke equivalence: %v", trial, err)
		}
		if ela.Depth > base.Depth+1 {
			t.Fatalf("trial %d: ELA depth %d far above baseline %d", trial, ela.Depth, base.Depth)
		}
		if len(ela.LUTs) < len(base.LUTs) {
			improved++
		} else if len(ela.LUTs) > len(base.LUTs) {
			worse++
		}
	}
	if worse > improved {
		t.Fatalf("ELA made area worse more often (%d) than better (%d)", worse, improved)
	}
}

func TestExactAreaOnSequentialDesign(t *testing.T) {
	n := netlist.New()
	q := n.FFWord("q", 6, 1)
	acc := q[0]
	for i := 1; i < 6; i++ {
		acc = n.Xor(acc, q[i])
	}
	for i := 0; i < 6; i++ {
		n.ConnectFF(q[i], n.Mux(n.Input("en"), acc, q[i]))
	}
	n.Output("p", acc)
	r, err := Map(n, Options{K: 6, ExactArea: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(64, 3); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkELAAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := buildRandom(rng, 16, 1500)
	b.Run("areaflow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Map(n, Options{K: 6}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exactarea", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Map(n, Options{K: 6, ExactArea: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestVerifyFormalOnRandomDesigns(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 8; trial++ {
		n := buildRandom(rng, 10, 250)
		r, err := Map(n, Options{K: 6})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.VerifyFormal(0); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestVerifyFormalCatchesCorruption(t *testing.T) {
	n := netlist.New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	n.Output("f", n.Xor(n.And(a, b), c))
	r, err := Map(n, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyFormal(0); err != nil {
		t.Fatal(err)
	}
	// Corrupt one LUT function: the proof must fail.
	r.LUTs[0].Fn ^= 1 << 5
	if err := r.VerifyFormal(0); err == nil {
		t.Fatal("formal verification accepted a corrupted LUT")
	}
}

func TestWriteBLIF(t *testing.T) {
	n := netlist.New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	q := n.NewFF("q", true)
	x := n.Xor(n.And(a, b), c)
	n.ConnectFF(q, x)
	n.Output("f", n.Or(x, q))
	r, err := Map(n, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, r, "dut"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{".model dut", ".inputs", ".outputs po_f",
		".latch", ".names", ".end"} {
		if !strings.Contains(out, want) {
			t.Fatalf("BLIF missing %q:\n%s", want, out)
		}
	}
	// Cube lines must match the LUT function: count on-set rows.
	lut := r.LUTs[r.LUTIndex[x]]
	onset := 0
	for m := uint(0); m < 1<<uint(len(lut.Inputs)); m++ {
		if lut.Fn.Eval(m) {
			onset++
		}
	}
	if onset == 0 {
		t.Fatal("degenerate LUT in test")
	}
	if got := strings.Count(out, " 1\n"); got < onset {
		t.Fatalf("BLIF has %d cube rows, want ≥ %d", got, onset)
	}
}

func TestWriteBLIFFullDesignDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	n := buildRandom(rng, 8, 150)
	r, err := Map(n, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteBLIF(&a, r, "m"); err != nil {
		t.Fatal(err)
	}
	if err := WriteBLIF(&b, r, "m"); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("BLIF output not deterministic")
	}
}
