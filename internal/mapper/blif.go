package mapper

import (
	"fmt"
	"io"
	"sort"

	"snowbma/internal/netlist"
)

// WriteBLIF exports the mapped LUT network in Berkeley Logic Interchange
// Format, the lingua franca of academic logic-synthesis tools (ABC,
// VTR). LUTs become .names blocks with their on-set cubes, flip-flops
// become .latch lines, and BRAM/carry primitives are declared as
// black-box subcircuits — enough for cross-validation of the LUT logic
// in external tools.
func WriteBLIF(w io.Writer, r *Result, model string) error {
	n := r.Netlist
	name := func(id netlist.NodeID) string { return fmt.Sprintf("n%d", id) }
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p(".model %s\n", model); err != nil {
		return err
	}
	// Inputs: primary inputs; pseudo-inputs for BRAM and carry outputs
	// (their generators are black boxes from BLIF's perspective).
	if err := p(".inputs"); err != nil {
		return err
	}
	for _, pi := range n.PIs {
		if err := p(" %s", name(pi)); err != nil {
			return err
		}
	}
	for id := range n.Nodes {
		switch n.Nodes[id].Op {
		case netlist.OpBRAMOut, netlist.OpAdderOut:
			if err := p(" %s", name(netlist.NodeID(id))); err != nil {
				return err
			}
		}
	}
	if err := p("\n.outputs"); err != nil {
		return err
	}
	outs := n.OutputNames()
	sort.Strings(outs)
	for _, o := range outs {
		if err := p(" po_%s", sanitize(o)); err != nil {
			return err
		}
	}
	if err := p("\n"); err != nil {
		return err
	}
	// Constants.
	if err := p(".names n0\n.names n1\n1\n"); err != nil {
		return err
	}
	// Latches.
	for _, ff := range n.FFs {
		init := 0
		if ff.Init {
			init = 1
		}
		if err := p(".latch %s %s re clk %d\n", name(ff.D), name(ff.Q), init); err != nil {
			return err
		}
	}
	// LUTs as .names with on-set cubes.
	for _, lut := range r.LUTs {
		if err := p(".names"); err != nil {
			return err
		}
		for _, in := range lut.Inputs {
			if err := p(" %s", name(in)); err != nil {
				return err
			}
		}
		if err := p(" %s\n", name(lut.Root)); err != nil {
			return err
		}
		k := len(lut.Inputs)
		for m := uint(0); m < 1<<uint(k); m++ {
			if !lut.Fn.Eval(m) {
				continue
			}
			row := make([]byte, k)
			for i := 0; i < k; i++ {
				row[i] = '0' + byte(m>>uint(i)&1)
			}
			if err := p("%s 1\n", string(row)); err != nil {
				return err
			}
		}
	}
	// Output drivers.
	for _, o := range outs {
		if err := p(".names %s po_%s\n1 1\n", name(n.POs[o]), sanitize(o)); err != nil {
			return err
		}
	}
	return p(".end\n")
}

// sanitize maps net names into BLIF-safe identifiers.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
