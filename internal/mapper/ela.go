package mapper

import (
	"sort"

	"snowbma/internal/netlist"
)

// Exact local area (ELA) refinement: area flow estimates sharing, but
// the estimate is wrong whenever a node's fanouts absorb it instead of
// reading it. ELA measures the *true* incremental LUT count of each cut
// choice by reference counting the selected mapping — the approach of
// industrial mappers' area-recovery passes. Enabled with
// Options.ExactArea; the ablation benchmark compares it against the
// default two-pass area flow.

// elaState carries the reference counts of the current selection.
type elaState struct {
	n      *netlist.Netlist
	cuts   [][]Cut
	chosen []*Cut
	// ref[l] counts selected cuts reading net l, plus 1 for every root.
	ref   []int
	roots map[netlist.NodeID]bool
}

// deref removes v's current cut from the counts and returns the number
// of LUTs freed (v's own plus any leaf subtrees that became unused).
func (e *elaState) deref(v netlist.NodeID) int {
	area := 1
	for _, l := range e.chosen[v].Leaves {
		if !e.n.Nodes[l].Op.IsGate() {
			continue
		}
		e.ref[l]--
		if e.ref[l] == 0 && !e.roots[l] {
			area += e.deref(l)
		}
	}
	return area
}

// reref installs cut c at v and returns the number of LUTs added.
func (e *elaState) reref(v netlist.NodeID, c *Cut) int {
	area := 1
	e.chosen[v] = c
	for _, l := range c.Leaves {
		if !e.n.Nodes[l].Op.IsGate() {
			continue
		}
		e.ref[l]++
		if e.ref[l] == 1 && !e.roots[l] {
			if e.chosen[l] == nil {
				// The leaf was absorbed everywhere in the incoming
				// selection; materialize its best cut.
				e.chosen[l] = &e.cuts[l][0]
			}
			area += e.reref(l, e.chosen[l])
		}
	}
	return area
}

// refineExactArea runs one ELA sweep over the needed nodes in reverse
// topological order, replacing each chosen cut by the depth-feasible cut
// with the smallest exact area. It updates chosen and the needed set.
func refineExactArea(n *netlist.Netlist, opt Options, cuts [][]Cut, chosen []*Cut,
	roots []netlist.NodeID, needed map[netlist.NodeID]bool, depthOpt []int) {
	e := &elaState{n: n, cuts: cuts, chosen: chosen,
		ref: make([]int, n.NumNodes()), roots: map[netlist.NodeID]bool{}}
	for _, r := range roots {
		if n.Nodes[r].Op.IsGate() {
			e.roots[r] = true
			e.ref[r]++
		}
	}
	for v := range needed {
		for _, l := range chosen[v].Leaves {
			if n.Nodes[l].Op.IsGate() {
				e.ref[l]++
			}
		}
	}
	// Depth budget: keep the global depth of the incoming selection.
	globalDepth := 0
	for _, r := range roots {
		if n.Nodes[r].Op.IsGate() && depthOpt[r] > globalDepth {
			globalDepth = depthOpt[r]
		}
	}

	var order []netlist.NodeID
	for v := range needed {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] > order[j] })
	for _, v := range order {
		if e.ref[v] == 0 && !e.roots[v] {
			continue // dropped by an earlier re-selection
		}
		old := e.chosen[v]
		e.deref(v)
		bestIdx, bestArea := -1, 0
		for i := range cuts[v] {
			c := &cuts[v][i]
			if c.depth > globalDepth {
				continue
			}
			area := e.reref(v, c)
			e.deref(v)
			if bestIdx == -1 || area < bestArea {
				bestIdx, bestArea = i, area
			}
		}
		if bestIdx == -1 {
			e.reref(v, old)
			continue
		}
		e.reref(v, &cuts[v][bestIdx])
	}
	// Rebuild the needed set from the final reference structure.
	for v := range needed {
		delete(needed, v)
	}
	var walk func(netlist.NodeID)
	walk = func(v netlist.NodeID) {
		if !n.Nodes[v].Op.IsGate() || needed[v] {
			return
		}
		needed[v] = true
		for _, l := range e.chosen[v].Leaves {
			walk(l)
		}
	}
	for _, r := range roots {
		walk(r)
	}
}
