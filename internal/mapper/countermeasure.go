package mapper

import (
	"fmt"
	"math"
	"sort"

	"snowbma/internal/netlist"
)

// This file automates the Section VII-A countermeasure: given the target
// nodes V_t, select decoy nodes U ⊆ V − V_t implementing the same
// functions and constrain all of them to trivial cuts, with |U| sized by
// Lemma VII-A for the requested security level. The paper closes by
// noting the countermeasure "can be automated and incorporated into
// industrial design tools" — this is that automation for our mapper.

// Plan is a computed countermeasure configuration.
type Plan struct {
	// TrivialCuts is the constraint set to pass to Options.
	TrivialCuts map[netlist.NodeID]bool
	// Targets and Decoys partition the constraint set.
	Targets []netlist.NodeID
	Decoys  []netlist.NodeID
	// SecurityBits is the Lemma VII-A bound achieved (log2).
	SecurityBits float64
}

// gateClass returns a coarse function label for "nodes implementing the
// same function": the gate op plus input polarities are already
// canonical in our strashed netlists, so 2-input gate kinds suffice.
func gateClass(n *netlist.Netlist, v netlist.NodeID) (netlist.Op, bool) {
	nd := &n.Nodes[v]
	if !nd.Op.IsGate() {
		return 0, false
	}
	return nd.Op, true
}

// PlanCountermeasure selects decoys for the given targets so that the
// Lemma VII-A bound reaches securityBits. All targets must share one
// gate function (the paper's m nodes with the same f_v); decoys are
// other nodes of the same function class, preferred in ascending
// fanout order (cheap to constrain). It fails when the design does not
// contain enough same-function nodes — the countermeasure then requires
// adding redundant logic, which is out of scope for a mapper.
func PlanCountermeasure(n *netlist.Netlist, targets []netlist.NodeID, securityBits int) (*Plan, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("mapper: no targets given")
	}
	class, ok := gateClass(n, targets[0])
	if !ok {
		return nil, fmt.Errorf("mapper: target %d is not a gate", targets[0])
	}
	targetSet := map[netlist.NodeID]bool{}
	for _, v := range targets {
		c, ok := gateClass(n, v)
		if !ok || c != class {
			return nil, fmt.Errorf("mapper: target %d does not implement the common function", v)
		}
		targetSet[v] = true
	}
	m := len(targets)

	// Candidate decoys: same gate class, not a target.
	var candidates []netlist.NodeID
	for id := range n.Nodes {
		v := netlist.NodeID(id)
		if targetSet[v] {
			continue
		}
		if c, ok := gateClass(n, v); ok && c == class {
			candidates = append(candidates, v)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		fi, fj := n.Fanout(candidates[i]), n.Fanout(candidates[j])
		if fi != fj {
			return fi < fj
		}
		return candidates[i] < candidates[j]
	})

	// Smallest r with the Lemma bound ≥ securityBits, bounded by what the
	// design can supply.
	bound := func(r int) float64 {
		return float64(m) * math.Log2(math.E*float64(m+r)/float64(m))
	}
	need := 0
	for need <= len(candidates) && bound(need) < float64(securityBits) {
		need++
	}
	if need > len(candidates) {
		return nil, fmt.Errorf("mapper: 2^%d needs more same-function decoys than the design's %d (bound with all of them: 2^%.1f)",
			securityBits, len(candidates), bound(len(candidates)))
	}
	plan := &Plan{TrivialCuts: map[netlist.NodeID]bool{}}
	plan.Targets = append(plan.Targets, targets...)
	plan.Decoys = append(plan.Decoys, candidates[:need]...)
	for _, v := range targets {
		plan.TrivialCuts[v] = true
	}
	for _, v := range plan.Decoys {
		plan.TrivialCuts[v] = true
	}
	plan.SecurityBits = float64(m) * math.Log2(math.E*float64(m+need)/float64(m))
	return plan, nil
}
