package mapper

import (
	"fmt"
	"sort"

	"snowbma/internal/netlist"
)

// DelayModel assigns component delays in nanoseconds. The absolute values
// are a stand-in for a vendor timing library; what the reproduction needs
// is the *relative* effect (Section VII-A): the unprotected design's
// critical path runs through the BRAM S-box between R1 and R2, and the
// countermeasure's extra LUT levels on the feedback path move the
// critical path to MULα → s15 and lengthen it.
type DelayModel struct {
	// LUT is the logic + local routing delay of one LUT level.
	LUT float64
	// Net is the general routing delay added per LUT input hop.
	Net float64
	// BRAM is the block-RAM access delay.
	BRAM float64
	// CarryBit is the incremental delay per carry-chain position.
	CarryBit float64
}

// DefaultDelays roughly mirrors Artix-7 speed-grade-1 component delays.
func DefaultDelays() DelayModel {
	return DelayModel{LUT: 0.45, Net: 0.55, BRAM: 2.2, CarryBit: 0.04}
}

// PathReport describes the slowest register-to-register (or input-to-
// register) path of a mapped design.
type PathReport struct {
	// Delay is the critical-path delay in the model's units.
	Delay float64
	// Levels is the number of LUT levels on the critical path.
	Levels int
	// Endpoint names the flip-flop or output terminating the path.
	Endpoint string
	// Through lists node names along the path, endpoint last.
	Through []string
}

// Timing computes arrival times for every visible net of the mapping and
// returns the critical path. Terminals (PIs and flip-flop outputs) start
// at 0; BRAM ports add the BRAM delay on top of their address arrival.
func (r *Result) Timing(model DelayModel) PathReport {
	paths := r.TopPaths(model, 1)
	if len(paths) == 0 {
		return PathReport{}
	}
	return paths[0]
}

// TopPaths returns the k slowest endpoint paths, slowest first — the
// analogue of a timing report's "ten slowest paths" list, which the
// paper consults to argue the unprotected feedback path has slack.
func (r *Result) TopPaths(model DelayModel, k int) []PathReport {
	n := r.Netlist
	arr := make([]float64, n.NumNodes())
	lev := make([]int, n.NumNodes())
	from := make([]netlist.NodeID, n.NumNodes())
	for i := range from {
		from[i] = netlist.Invalid
	}
	for id := range n.Nodes {
		nd := &n.Nodes[id]
		switch nd.Op {
		case netlist.OpBRAMOut:
			worst := 0.0
			for _, a := range nd.Fanin {
				if arr[a] > worst {
					worst = arr[a]
					from[id] = a
				}
			}
			arr[id] = worst + model.BRAM
			if from[id] != netlist.Invalid {
				lev[id] = lev[from[id]]
			}
		case netlist.OpAdderOut:
			worst := 0.0
			for _, a := range nd.Fanin {
				if arr[a] > worst {
					worst = arr[a]
					from[id] = a
				}
			}
			bit := float64(nd.Aux&0xff) + 1
			arr[id] = worst + model.CarryBit*bit
			if from[id] != netlist.Invalid {
				lev[id] = lev[from[id]]
			}
		default:
			if li, ok := r.LUTIndex[netlist.NodeID(id)]; ok {
				lut := &r.LUTs[li]
				worst := 0.0
				for _, in := range lut.Inputs {
					if arr[in] >= worst {
						worst = arr[in]
						from[id] = in
					}
				}
				arr[id] = worst + model.LUT + model.Net
				lev[id] = 1
				if from[id] != netlist.Invalid {
					lev[id] += lev[from[id]]
				}
			}
		}
	}
	// Endpoints: flip-flop data inputs and primary outputs.
	type endpoint struct {
		net  netlist.NodeID
		name string
	}
	var eps []endpoint
	for _, ff := range n.FFs {
		eps = append(eps, endpoint{ff.D, "FF " + ff.Name})
	}
	names := n.OutputNames()
	sort.Strings(names)
	for _, name := range names {
		eps = append(eps, endpoint{n.POs[name], "PO " + name})
	}
	sort.SliceStable(eps, func(i, j int) bool { return arr[eps[i].net] > arr[eps[j].net] })
	if k > len(eps) {
		k = len(eps)
	}
	out := make([]PathReport, 0, k)
	for _, ep := range eps[:k] {
		rep := PathReport{Delay: arr[ep.net], Levels: lev[ep.net], Endpoint: ep.name}
		for v := ep.net; v != netlist.Invalid; v = from[v] {
			name := n.Nodes[v].Name
			if name == "" {
				name = fmt.Sprintf("n%d(%s)", v, n.Nodes[v].Op)
			}
			rep.Through = append([]string{name}, rep.Through...)
		}
		out = append(out, rep)
	}
	return out
}

// MappingStats summarizes a mapping for reports and regression tests.
type MappingStats struct {
	LUTs      int
	Depth     int
	InputHist [7]int // InputHist[i] = number of LUTs with i used inputs
}

// Stats computes size metrics of the mapping.
func (r *Result) Stats() MappingStats {
	s := MappingStats{LUTs: len(r.LUTs), Depth: r.Depth}
	for i := range r.LUTs {
		n := len(r.LUTs[i].Inputs)
		if n > 6 {
			n = 6
		}
		s.InputHist[n]++
	}
	return s
}

func (s MappingStats) String() string {
	return fmt.Sprintf("LUTs=%d depth=%d sizes=%v", s.LUTs, s.Depth, s.InputHist)
}
