package mapper

import (
	"fmt"

	"snowbma/internal/bdd"
	"snowbma/internal/boolfn"
	"snowbma/internal/netlist"
)

// VerifyFormal proves functional equivalence of the mapping: for every
// mapped root, the source netlist cone and the composed LUT network are
// built as BDDs over the shared terminal variables (primary inputs,
// flip-flop outputs, BRAM data ports, carry-chain sums) and compared
// canonically. Unlike Verify's random simulation, a pass here is a
// proof. nodeLimit bounds the BDD size (0 for the default); combinational
// cones of LUT-mapped logic stay small because adders and BRAMs are
// terminals.
func (r *Result) VerifyFormal(nodeLimit int) error {
	n := r.Netlist
	m := bdd.New(nodeLimit)

	// Assign a BDD variable level to every terminal in id order.
	levelOf := map[netlist.NodeID]int{}
	termVar := func(id netlist.NodeID) (bdd.Ref, error) {
		lvl, ok := levelOf[id]
		if !ok {
			lvl = len(levelOf)
			levelOf[id] = lvl
		}
		return m.Var(lvl)
	}

	// Source-side BDDs for every node, in topological (id) order.
	src := make([]bdd.Ref, n.NumNodes())
	for id := 0; id < n.NumNodes(); id++ {
		nd := &n.Nodes[id]
		var f bdd.Ref
		var err error
		switch nd.Op {
		case netlist.OpConst0:
			f = m.Const(false)
		case netlist.OpConst1:
			f = m.Const(true)
		case netlist.OpPI, netlist.OpFFQ, netlist.OpBRAMOut, netlist.OpAdderOut:
			f, err = termVar(netlist.NodeID(id))
		case netlist.OpAnd:
			f, err = m.And(src[nd.Fanin[0]], src[nd.Fanin[1]])
		case netlist.OpOr:
			f, err = m.Or(src[nd.Fanin[0]], src[nd.Fanin[1]])
		case netlist.OpXor:
			f, err = m.Xor(src[nd.Fanin[0]], src[nd.Fanin[1]])
		case netlist.OpNot:
			f, err = m.Not(src[nd.Fanin[0]])
		case netlist.OpBuf:
			f = src[nd.Fanin[0]]
		case netlist.OpMux:
			f, err = m.Ite(src[nd.Fanin[0]], src[nd.Fanin[1]], src[nd.Fanin[2]])
		default:
			return fmt.Errorf("mapper: formal verify: unknown op %v", nd.Op)
		}
		if err != nil {
			return fmt.Errorf("mapper: formal verify (source node %d): %w", id, err)
		}
		src[id] = f
	}

	// Mapped-side BDDs: LUT functions composed over input BDDs. LUTs are
	// stored in ascending root order, so inputs are always ready.
	mapped := make(map[netlist.NodeID]bdd.Ref, len(r.LUTs))
	netBDD := func(id netlist.NodeID) (bdd.Ref, error) {
		if f, ok := mapped[id]; ok {
			return f, nil
		}
		switch n.Nodes[id].Op {
		case netlist.OpConst0:
			return m.Const(false), nil
		case netlist.OpConst1:
			return m.Const(true), nil
		case netlist.OpPI, netlist.OpFFQ, netlist.OpBRAMOut, netlist.OpAdderOut:
			return termVar(id)
		}
		return bdd.False, fmt.Errorf("mapper: formal verify: LUT input %d is an unmapped gate", id)
	}
	for _, lut := range r.LUTs {
		ins := make([]bdd.Ref, len(lut.Inputs))
		for i, in := range lut.Inputs {
			f, err := netBDD(in)
			if err != nil {
				return err
			}
			ins[i] = f
		}
		f, err := composeTT(m, lut.Fn, ins)
		if err != nil {
			return fmt.Errorf("mapper: formal verify (LUT at %d): %w", lut.Root, err)
		}
		mapped[lut.Root] = f
	}

	for root, f := range mapped {
		if src[root] != f {
			name := n.Nodes[root].Name
			return fmt.Errorf("mapper: formal verification FAILED at net %d (%s)", root, name)
		}
	}
	return nil
}

// composeTT builds the BDD of a ≤6-input truth table applied to input
// BDDs, by Shannon expansion over the inputs.
func composeTT(m *bdd.Manager, tt boolfn.TT, ins []bdd.Ref) (bdd.Ref, error) {
	var rec func(f boolfn.TT, i int) (bdd.Ref, error)
	rec = func(f boolfn.TT, i int) (bdd.Ref, error) {
		if i == len(ins) {
			// Remaining variables are unused by construction.
			return m.Const(f&1 == 1), nil
		}
		lo, err := rec(f.Cofactor(i, false), i+1)
		if err != nil {
			return bdd.False, err
		}
		hi, err := rec(f.Cofactor(i, true), i+1)
		if err != nil {
			return bdd.False, err
		}
		return m.Ite(ins[i], hi, lo)
	}
	return rec(tt, 0)
}
