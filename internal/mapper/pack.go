package mapper

import (
	"sort"

	"snowbma/internal/boolfn"
	"snowbma/internal/netlist"
)

// PhysLUT is a physical fracturable 6-input LUT after packing. A single-
// output LUT uses outputs O6 only; a dual-output LUT carries two functions
// of at most five shared inputs with a6 acting as the output selector
// (paper Fig. 4). Init is the 64-bit truth table that ends up in the
// bitstream: for a dual LUT the a6=0 half is O5, the a6=1 half is O6.
type PhysLUT struct {
	Inputs []netlist.NodeID
	Init   boolfn.TT
	Dual   bool
	// O6Root is the net produced on O6; O5Root is netlist.Invalid for a
	// single-output LUT.
	O6Root netlist.NodeID
	O5Root netlist.NodeID
}

// PackPolicy controls dual-output packing. Vivado packs opportunistically;
// the attack narrative needs control: the unprotected design is serialized
// unpacked (matching the full-width LUT₁/LUT₂/LUT₃ matches of Table II),
// while the protected design packs its trivially-cut XOR pairs exactly as
// Section VII-A reports ("both outputs implement the 2-input XOR" or
// "one output implements the 2-input XOR and another ... up to 5
// dependent variables").
type PackPolicy struct {
	// Prefer lists roots (typically the trivially-cut XOR nodes) that
	// should be packed pairwise first.
	Prefer map[netlist.NodeID]bool
	// PairWithOthers lets a leftover preferred LUT share a physical LUT
	// with any other ≤5-input LUT when their input union fits.
	PairWithOthers bool
	// All packs every compatible pair, preferred or not.
	All bool
}

// Pack assigns the logical LUTs of a mapping to physical LUTs.
func Pack(r *Result, pol PackPolicy) []PhysLUT {
	used := make([]bool, len(r.LUTs))
	var phys []PhysLUT

	fits := func(i, j int) ([]netlist.NodeID, bool) {
		if len(r.LUTs[i].Inputs) > 5 || len(r.LUTs[j].Inputs) > 5 {
			return nil, false
		}
		union := append([]netlist.NodeID(nil), r.LUTs[i].Inputs...)
		union = append(union, r.LUTs[j].Inputs...)
		sort.Slice(union, func(a, b int) bool { return union[a] < union[b] })
		union = dedupe(union)
		if len(union) > 5 {
			return nil, false
		}
		return union, true
	}

	makeDual := func(i, j int, union []netlist.NodeID) PhysLUT {
		o5 := remap(&r.LUTs[i], union)
		o6 := remap(&r.LUTs[j], union)
		d := boolfn.DualLUT{O5: boolfn.Shrink5(o5), O6: boolfn.Shrink5(o6)}
		return PhysLUT{
			Inputs: union, Init: d.Pack(), Dual: true,
			O5Root: r.LUTs[i].Root, O6Root: r.LUTs[j].Root,
		}
	}

	candidate := func(i int) bool {
		if used[i] || len(r.LUTs[i].Inputs) > 5 {
			return false
		}
		if pol.All {
			return true
		}
		return pol.Prefer[r.LUTs[i].Root]
	}

	// First pass: pair preferred (or all, under pol.All) LUTs greedily.
	for i := range r.LUTs {
		if !candidate(i) {
			continue
		}
		for j := i + 1; j < len(r.LUTs); j++ {
			if !candidate(j) {
				continue
			}
			if union, ok := fits(i, j); ok {
				phys = append(phys, makeDual(i, j, union))
				used[i], used[j] = true, true
				break
			}
		}
	}
	// Second pass: leftovers pair with arbitrary small LUTs.
	if pol.PairWithOthers {
		for i := range r.LUTs {
			if used[i] || !pol.Prefer[r.LUTs[i].Root] || len(r.LUTs[i].Inputs) > 5 {
				continue
			}
			for j := range r.LUTs {
				if j == i || used[j] || len(r.LUTs[j].Inputs) > 5 {
					continue
				}
				if union, ok := fits(i, j); ok {
					phys = append(phys, makeDual(i, j, union))
					used[i], used[j] = true, true
					break
				}
			}
		}
	}
	// Remaining LUTs become single-output physical LUTs.
	for i := range r.LUTs {
		if used[i] {
			continue
		}
		phys = append(phys, PhysLUT{
			Inputs: append([]netlist.NodeID(nil), r.LUTs[i].Inputs...),
			Init:   r.LUTs[i].Fn,
			O6Root: r.LUTs[i].Root,
			O5Root: netlist.Invalid,
		})
	}
	return phys
}

// remap rewrites a LUT function over the union input list: variable i of
// the result reads union[i].
func remap(l *LUT, union []netlist.NodeID) boolfn.TT {
	perm := make([]int, boolfn.MaxVars)
	usedVar := make([]bool, boolfn.MaxVars)
	// perm[newPos] = oldPos: new variable i (union[i]) reads the old
	// variable at the LUT's own input position.
	pos := map[netlist.NodeID]int{}
	for oldPos, in := range l.Inputs {
		pos[in] = oldPos
	}
	next := len(l.Inputs)
	for newPos := range perm {
		perm[newPos] = -1
		if newPos < len(union) {
			if oldPos, ok := pos[union[newPos]]; ok {
				perm[newPos] = oldPos
				usedVar[oldPos] = true
			}
		}
	}
	// Unreferenced new positions take the remaining old variable slots
	// (the function does not depend on them, any assignment works).
	for newPos := range perm {
		if perm[newPos] != -1 {
			continue
		}
		for ; next < boolfn.MaxVars && usedVar[next]; next++ {
		}
		if next < boolfn.MaxVars {
			perm[newPos] = next
			usedVar[next] = true
			next++
			continue
		}
		// All high slots consumed: reuse any free old variable.
		for old := 0; old < boolfn.MaxVars; old++ {
			if !usedVar[old] {
				perm[newPos] = old
				usedVar[old] = true
				break
			}
		}
	}
	return l.Fn.Permute(perm)
}
