// Package bdd implements reduced ordered binary decision diagrams with a
// unique table and computed-table caching — the standard canonical form
// for Boolean functions in formal verification. The mapper uses it to
// prove (not sample) that a technology-mapped LUT network computes the
// same function as the source netlist at every visible net.
package bdd

import (
	"errors"
	"fmt"
)

// Ref is a node reference. The constants False and True are terminals.
type Ref int32

// Terminal references.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable level; terminals use a sentinel
	lo, hi Ref
}

type uniqueKey struct {
	level  int32
	lo, hi Ref
}

type opKey struct {
	op   uint8
	a, b Ref
}

const (
	opAnd uint8 = iota
	opXor
)

// ErrNodeLimit is returned when a build exceeds the manager's node cap.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// Manager owns the node store. Variables are identified by their level:
// lower levels are tested first.
type Manager struct {
	nodes  []node
	unique map[uniqueKey]Ref
	cache  map[opKey]Ref
	limit  int
}

const terminalLevel = int32(1) << 30

// New creates a manager bounded to limit nodes (0 means a 4M default).
func New(limit int) *Manager {
	if limit <= 0 {
		limit = 4 << 20
	}
	m := &Manager{
		nodes:  make([]node, 2, 1024),
		unique: make(map[uniqueKey]Ref),
		cache:  make(map[opKey]Ref),
		limit:  limit,
	}
	m.nodes[False] = node{level: terminalLevel}
	m.nodes[True] = node{level: terminalLevel}
	return m
}

// Size returns the number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// mk returns the canonical node (level, lo, hi), applying the reduction
// rule lo == hi.
func (m *Manager) mk(level int32, lo, hi Ref) (Ref, error) {
	if lo == hi {
		return lo, nil
	}
	k := uniqueKey{level, lo, hi}
	if r, ok := m.unique[k]; ok {
		return r, nil
	}
	if len(m.nodes) >= m.limit {
		return False, ErrNodeLimit
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique[k] = r
	return r, nil
}

// Var returns the BDD of the variable at the given level.
func (m *Manager) Var(level int) (Ref, error) {
	if level < 0 || int32(level) >= terminalLevel {
		return False, fmt.Errorf("bdd: bad variable level %d", level)
	}
	return m.mk(int32(level), False, True)
}

// Const returns a terminal.
func (m *Manager) Const(b bool) Ref {
	if b {
		return True
	}
	return False
}

// Not complements f. Without complement edges this is Xor with True.
func (m *Manager) Not(f Ref) (Ref, error) { return m.Xor(f, True) }

// And computes f ∧ g.
func (m *Manager) And(f, g Ref) (Ref, error) {
	switch {
	case f == False || g == False:
		return False, nil
	case f == True:
		return g, nil
	case g == True:
		return f, nil
	case f == g:
		return f, nil
	}
	if f > g {
		f, g = g, f
	}
	k := opKey{opAnd, f, g}
	if r, ok := m.cache[k]; ok {
		return r, nil
	}
	lvl, fl, fh, gl, gh := m.split(f, g)
	lo, err := m.And(fl, gl)
	if err != nil {
		return False, err
	}
	hi, err := m.And(fh, gh)
	if err != nil {
		return False, err
	}
	r, err := m.mk(lvl, lo, hi)
	if err != nil {
		return False, err
	}
	m.cache[k] = r
	return r, nil
}

// Or computes f ∨ g via De Morgan.
func (m *Manager) Or(f, g Ref) (Ref, error) {
	nf, err := m.Not(f)
	if err != nil {
		return False, err
	}
	ng, err := m.Not(g)
	if err != nil {
		return False, err
	}
	a, err := m.And(nf, ng)
	if err != nil {
		return False, err
	}
	return m.Not(a)
}

// Xor computes f ⊕ g.
func (m *Manager) Xor(f, g Ref) (Ref, error) {
	switch {
	case f == False:
		return g, nil
	case g == False:
		return f, nil
	case f == g:
		return False, nil
	case f == True && g == True:
		return False, nil
	}
	if f > g {
		f, g = g, f
	}
	k := opKey{opXor, f, g}
	if r, ok := m.cache[k]; ok {
		return r, nil
	}
	lvl, fl, fh, gl, gh := m.split(f, g)
	lo, err := m.Xor(fl, gl)
	if err != nil {
		return False, err
	}
	hi, err := m.Xor(fh, gh)
	if err != nil {
		return False, err
	}
	r, err := m.mk(lvl, lo, hi)
	if err != nil {
		return False, err
	}
	m.cache[k] = r
	return r, nil
}

// Ite computes if-then-else(s, t, e).
func (m *Manager) Ite(s, t, e Ref) (Ref, error) {
	st, err := m.And(s, t)
	if err != nil {
		return False, err
	}
	ns, err := m.Not(s)
	if err != nil {
		return False, err
	}
	se, err := m.And(ns, e)
	if err != nil {
		return False, err
	}
	return m.Or(st, se)
}

// split aligns two nodes on the top level and returns their cofactors.
func (m *Manager) split(f, g Ref) (lvl int32, fl, fh, gl, gh Ref) {
	nf, ng := m.nodes[f], m.nodes[g]
	lvl = nf.level
	if ng.level < lvl {
		lvl = ng.level
	}
	fl, fh = f, f
	if nf.level == lvl {
		fl, fh = nf.lo, nf.hi
	}
	gl, gh = g, g
	if ng.level == lvl {
		gl, gh = ng.lo, ng.hi
	}
	return
}

// Eval evaluates f under an assignment (indexed by level).
func (m *Manager) Eval(f Ref, assign func(level int) bool) bool {
	for f != False && f != True {
		n := m.nodes[f]
		if assign(int(n.level)) {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SatCountBounded returns the number of satisfying assignments over
// nVars variables (as float64; exact for small counts).
func (m *Manager) SatCountBounded(f Ref, nVars int) float64 {
	memo := map[Ref]float64{}
	var count func(r Ref, level int32) float64
	count = func(r Ref, level int32) float64 {
		if r == False {
			return 0
		}
		n := m.nodes[r]
		top := n.level
		if r == True {
			top = int32(nVars)
		}
		scale := 1.0
		for i := level; i < top; i++ {
			scale *= 2
		}
		if r == True {
			return scale
		}
		if v, ok := memo[r]; ok {
			return scale * v
		}
		v := count(n.lo, n.level+1) + count(n.hi, n.level+1)
		memo[r] = v
		return scale * v
	}
	return count(f, 0)
}
