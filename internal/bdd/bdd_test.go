package bdd

import (
	"math/rand"
	"testing"

	"snowbma/internal/boolfn"
)

// buildTT constructs the BDD of a 6-variable truth table with variable i
// at level i, by Shannon expansion.
func buildTT(t *testing.T, m *Manager, tt boolfn.TT) Ref {
	t.Helper()
	var rec func(f boolfn.TT, level int) Ref
	rec = func(f boolfn.TT, level int) Ref {
		if level == boolfn.MaxVars {
			return m.Const(f&1 == 1)
		}
		lo := rec(f.Cofactor(level, false), level+1)
		hi := rec(f.Cofactor(level, true), level+1)
		v, err := m.Var(level)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Ite(v, hi, lo)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	return rec(tt, 0)
}

func TestCanonicity(t *testing.T) {
	// Equal functions built through different formulas share one node.
	m := New(0)
	a, _ := m.Var(0)
	b, _ := m.Var(1)
	ab, err := m.And(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// a ∧ b == ¬(¬a ∨ ¬b)
	na, _ := m.Not(a)
	nb, _ := m.Not(b)
	or, err := m.Or(na, nb)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := m.Not(or)
	if err != nil {
		t.Fatal(err)
	}
	if ab != alt {
		t.Fatal("canonical form violated: a∧b ≠ ¬(¬a∨¬b)")
	}
}

func TestAgainstTruthTables(t *testing.T) {
	// Random 6-var truth tables: the BDD must evaluate identically on
	// all 64 assignments, and equal tables must produce equal refs.
	m := New(0)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		tt := boolfn.TT(rng.Uint64())
		f := buildTT(t, m, tt)
		for a := uint(0); a < 64; a++ {
			got := m.Eval(f, func(level int) bool { return a>>uint(level)&1 == 1 })
			if got != tt.Eval(a) {
				t.Fatalf("trial %d: BDD wrong at %06b", trial, a)
			}
		}
		if g := buildTT(t, m, tt); g != f {
			t.Fatalf("trial %d: rebuilding the same table gave a different ref", trial)
		}
		if cnt := m.SatCountBounded(f, 6); int(cnt) != tt.OnSet() {
			t.Fatalf("trial %d: satcount %v != onset %d", trial, cnt, tt.OnSet())
		}
	}
}

func TestXorChainLinearSize(t *testing.T) {
	// Parity of n variables has a linear-size BDD — the property that
	// keeps the SNOW 3G XOR trees cheap to verify.
	m := New(0)
	acc := m.Const(false)
	for i := 0; i < 64; i++ {
		v, err := m.Var(i)
		if err != nil {
			t.Fatal(err)
		}
		acc, err = m.Xor(acc, v)
		if err != nil {
			t.Fatal(err)
		}
	}
	// The manager retains intermediate nodes (no garbage collection), so
	// measure the size reachable from the final function.
	reach := map[Ref]bool{}
	var walk func(Ref)
	walk = func(r Ref) {
		if reach[r] || r == False || r == True {
			return
		}
		reach[r] = true
		walk(m.nodes[r].lo)
		walk(m.nodes[r].hi)
	}
	walk(acc)
	if len(reach) > 2*64 {
		t.Fatalf("parity BDD has %d reachable nodes, expected ≤ 128", len(reach))
	}
	if m.Eval(acc, func(int) bool { return true }) != false {
		t.Fatal("parity of 64 ones should be 0")
	}
}

func TestNodeLimit(t *testing.T) {
	m := New(16)
	// The multiplication-like function blows past 16 nodes quickly.
	acc := m.Const(false)
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		var v Ref
		v, err = m.Var(i)
		if err != nil {
			break
		}
		var w Ref
		w, err = m.Var(i + 10)
		if err != nil {
			break
		}
		var prod Ref
		prod, err = m.And(v, w)
		if err != nil {
			break
		}
		acc, err = m.Xor(acc, prod)
	}
	if err == nil {
		t.Fatal("node limit never triggered")
	}
}

func TestIteBasics(t *testing.T) {
	m := New(0)
	s, _ := m.Var(0)
	a, _ := m.Var(1)
	b, _ := m.Var(2)
	f, err := m.Ite(s, a, b)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		s, a, b, want bool
	}{{true, true, false, true}, {true, false, true, false}, {false, true, false, false}, {false, false, true, true}}
	for _, c := range cases {
		vals := map[int]bool{0: c.s, 1: c.a, 2: c.b}
		if m.Eval(f, func(l int) bool { return vals[l] }) != c.want {
			t.Fatalf("ite(%v,%v,%v) wrong", c.s, c.a, c.b)
		}
	}
}
