package report

import (
	"strings"
	"testing"

	"snowbma/internal/bitstream"
	"snowbma/internal/core"
	"snowbma/internal/device"
	"snowbma/internal/hdl"
	"snowbma/internal/mapper"
	"snowbma/internal/snow3g"
)

// goldenTables pins the keystream sections of the end-to-end attack
// report bit-for-bit against the paper's Tables III and IV.
const goldenTables = `key-independent keystream (Table III analogue):
  z1  a1fb4788
  z2  e4382f8e
  z3  3b72471c
  z4  33ebb59a
  z5  32ac43c7
  z6  5eebfd82
  z7  3a325fd4
  z8  1e1d7001
  z9  b7f15767
  z10 3282c5b0
  z11 103da78f
  z12 e42761e4
  z13 c6ded1bb
  z14 089fa36c
  z15 01c7c690
  z16 bf921256
faulty keystream (Table IV analogue):
  z1  3ffe4851
  z2  35d1c393
  z3  5914acef
  z4  e98446cc
  z5  689782d9
  z6  8abdb7fc
  z7  a11b0377
  z8  5a2dd294
  z9  5deb29fa
  z10 c2c6009a
  z11 a82ee62f
  z12 925268ed
  z13 d04e2c33
  z14 3890311b
  z15 e8d27b84
  z16 a70aeeaa
`

const goldenTail = `RECOVERED KEY: 2bd6459f 82c5b300 952c4910 4881ff48 (verified=true)
RECOVERED IV:  ea024714 ad5c4d84 df1f9b25 1c0bf45f
`

func TestGoldenAttackReport(t *testing.T) {
	key := snow3g.Key{0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48}
	iv := snow3g.IV{0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F}
	d := hdl.Build(hdl.Config{Key: key})
	r, err := mapper.Map(d.N, mapper.Options{K: 6, Boundaries: d.Boundaries})
	if err != nil {
		t.Fatal(err)
	}
	img, err := bitstream.Assemble(d.N, mapper.Pack(r, mapper.PackPolicy{}),
		bitstream.AssembleOptions{Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	f := device.New([bitstream.KeySize]byte{})
	if err := f.Program(img); err != nil {
		t.Fatal(err)
	}
	atk, err := core.NewAttack(f, iv, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := atk.Run()
	if err != nil {
		t.Fatal(err)
	}
	text := Attack(rep)
	if !strings.Contains(text, goldenTables) {
		t.Fatalf("report keystream sections diverge from the paper's tables:\n%s", text)
	}
	if !strings.HasSuffix(text, goldenTail) {
		t.Fatalf("report tail diverges:\n%s", text)
	}
	if !strings.Contains(text, "32 LUT1 + 24 LUT2 + 8 LUT3") {
		t.Fatalf("confirmed LUT populations diverge:\n%s", text)
	}
}

func TestCandidateTableLayout(t *testing.T) {
	rows := []core.CandidateCount{
		{Name: "f2", Path: "zt", Expr: "(a1^a2^a3)a4a5!a6", Count: 42},
		{Name: "f8", Path: "s15", Expr: "(a1^a2)!a3a4a5 ^ a6", Count: 24},
	}
	text := CandidateTable(rows)
	if !strings.Contains(text, "z_t    | f2 = (a1^a2^a3)a4a5!a6") ||
		!strings.Contains(text, "s15    | f8 = (a1^a2)!a3a4a5 ^ a6") {
		t.Fatalf("layout broken:\n%s", text)
	}
}

func TestTimingLayout(t *testing.T) {
	text := Timing([]mapper.PathReport{
		{Delay: 6.313, Levels: 4, Endpoint: "FF R2[0]"},
		{Delay: 5.2, Levels: 3, Endpoint: "FF s15[0]"},
	})
	if !strings.Contains(text, " 6.313 ns") || !strings.Contains(text, "FF s15[0]") {
		t.Fatalf("timing layout broken:\n%s", text)
	}
}

func TestCensusAndDiffRendering(t *testing.T) {
	censusText := Census([]core.CensusClass{
		{Count: 32, Expr: "a1a2' + a1'a2", Groups: [][]int{{0, 1}}},
	})
	if !strings.Contains(censusText, "32 x a1a2'") {
		t.Fatalf("census layout broken:\n%s", censusText)
	}
	diffText := Diff(&core.DiffReport{
		Bytes:       map[core.DiffRegion]int{core.DiffBRAM: 4, core.DiffPackets: 4},
		BRAMOffsets: []int{7, 8, 9, 10},
	})
	if !strings.Contains(diffText, "bram") || !strings.Contains(diffText, "modified BRAM bytes: 4") {
		t.Fatalf("diff layout broken:\n%s", diffText)
	}
	if got := Overlaps(nil); !strings.Contains(got, "no overlapping") {
		t.Fatalf("empty overlap rendering: %q", got)
	}
	rows := Overlaps([]core.OverlapRow{{A: "f19", B: "f21", Shared: 2, ACount: 8, BCount: 2}})
	if !strings.Contains(rows, "f19 (8) ~ f21 (2): 2 shared") {
		t.Fatalf("overlap layout broken:\n%s", rows)
	}
}

func TestFig5Rendering(t *testing.T) {
	rep := &core.Report{
		LUT1: []core.ConfirmedLUT{{Bit: 0, KeepVar: 2,
			Match: core.Match{Index: 1234, Perm: []int{0, 1, 2, 3, 4, 5}}}},
		LUT2: []core.Match{{Index: 5678}},
		LUT3: []core.Match{{Index: 9012}},
	}
	text := Fig5(rep)
	for _, want := range []string{"LUT1", "LUT2", "LUT3", "1234", "5678", "9012", "s0 on XOR pin 3"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Fig5 missing %q:\n%s", want, text)
		}
	}
}
