package report

import (
	"strings"
	"testing"

	"snowbma/internal/corpus"
)

func TestCorpusRenderer(t *testing.T) {
	rep := &corpus.Report{
		Expr:      "(a1^a2^a3)a4a5!a6",
		Designs:   3,
		Exposed:   2,
		Covered:   1,
		Protected: 1,
		Frames:    528,
		// 350 scanned + 178 memo hits.
		FramesScanned: 350,
		DedupHits:     178,
		DedupRate:     178.0 / 528.0,
		BytesTotal:    213708,
		Matches:       139,
		DualHits:      12,
		Results: []corpus.DesignResult{
			{ID: "aaaa1111", Bytes: 71236, Frames: 176, FramesScanned: 176,
				Matches: make([]int, 56), DualHits: 5, TargetLUTs: 32, Exposed: true},
			{ID: "bbbb2222", Protected: true, Bytes: 71236, Frames: 176,
				FramesScanned: 90, DedupHits: 86, Matches: make([]int, 27),
				DualHits: 3, TargetLUTs: 0},
			{ID: "cccc3333", Bytes: 71236, Frames: 176, FramesScanned: 84,
				DedupHits: 92, Matches: make([]int, 56), DualHits: 4,
				TargetLUTs: 32, Exposed: true, Rescans: 2},
		},
	}
	out := Corpus(rep)
	for _, want := range []string{
		"3 designs",
		"target (a1^a2^a3)a4a5!a6",
		"exposed:            2",
		"covered:            1 (1 protected)",
		"139 matches, 12 dual-XOR hits",
		"528 (350 scanned, 178 dedup hits, 33.7% dedup rate)",
		"aaaa1111",
		"EXPOSED",
		"32 target LUTs, 56 candidates",
		"bbbb2222",
		"covered",
		"0 target LUTs, 27 candidates",
		"2 rescans",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("corpus report missing %q:\n%s", want, out)
		}
	}
	// Every design gets a row.
	if got := strings.Count(out, "\n  "); got < len(rep.Results) {
		t.Errorf("report lists %d design rows, want >= %d:\n%s", got, len(rep.Results), out)
	}

	// An unparsed fragment (directory ingest) is labelled, not miscounted.
	rep.Results[0].TargetLUTs = -1
	if out := Corpus(rep); !strings.Contains(out, "unparsed image") {
		t.Errorf("TargetLUTs=-1 not rendered as unparsed:\n%s", out)
	}
}
