// Package report renders the attack artefacts — keystream tables,
// candidate counts, recovered state, timing paths — as deterministic
// text. The CLI prints these renderings and the test suite pins the
// end-to-end attack output against a golden report.
package report

import (
	"fmt"
	"strings"
	"time"

	"snowbma/internal/boolfn"
	"snowbma/internal/core"
	"snowbma/internal/device"
	"snowbma/internal/mapper"
	"snowbma/internal/obs"
)

// Keystream renders keystream words in the paper's table layout.
func Keystream(z []uint32) string {
	var b strings.Builder
	for i, w := range z {
		fmt.Fprintf(&b, "  z%-2d %08x\n", i+1, w)
	}
	return b.String()
}

// CandidateTable renders Table II / Table VI rows.
func CandidateTable(rows []core.CandidateCount) string {
	var b strings.Builder
	b.WriteString("output | function                         | n\n")
	b.WriteString("-------+----------------------------------+----\n")
	for _, r := range rows {
		out := "z_t"
		if r.Path == "s15" {
			out = "s15"
		}
		fmt.Fprintf(&b, "%-6s | %-32s | %d\n", out, r.Name+" = "+r.Expr, r.Count)
	}
	return b.String()
}

// State renders an LFSR state in the Table V layout.
func State(s [16]uint32) string {
	var b strings.Builder
	for i, w := range s {
		fmt.Fprintf(&b, "  s%-2d %08x\n", i, w)
	}
	return b.String()
}

// Attack renders the complete attack report.
func Attack(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "encrypted image:       %v\n", rep.Encrypted)
	fmt.Fprintf(&b, "bitstream loads:       %d\n", rep.Loads)
	fmt.Fprintf(&b, "confirmed target LUTs: %d LUT1 + %d LUT2 + %d LUT3\n",
		len(rep.LUT1), len(rep.LUT2), len(rep.LUT3))
	fmt.Fprintf(&b, "MUX hypothesis:        %s (%d LUTs modified for fault beta)\n",
		rep.MuxHypothesis, rep.MuxMatches)
	if rep.Scan.Passes > 0 {
		b.WriteString(ScanStats(rep.Scan))
	}
	if rep.Batch.Passes > 0 {
		b.WriteString(BatchStats(rep.Batch))
	}
	if rep.Fabric.Insns > 0 {
		b.WriteString(FabricStats(rep.Fabric))
	}
	b.WriteString("key-independent keystream (Table III analogue):\n")
	b.WriteString(Keystream(rep.KeyIndependent))
	b.WriteString("faulty keystream (Table IV analogue):\n")
	b.WriteString(Keystream(rep.FaultyFinal))
	b.WriteString("recovered initial LFSR state S0 (Table V analogue):\n")
	b.WriteString(State(rep.RecoveredS0))
	fmt.Fprintf(&b, "RECOVERED KEY: %08x %08x %08x %08x (verified=%v)\n",
		rep.Key[0], rep.Key[1], rep.Key[2], rep.Key[3], rep.Verified)
	fmt.Fprintf(&b, "RECOVERED IV:  %08x %08x %08x %08x\n",
		rep.IV[0], rep.IV[1], rep.IV[2], rep.IV[3])
	return b.String()
}

// ScanStats renders the batch-scan observability counters (the -stats
// CLI flag and the attack report's scan section).
func ScanStats(s core.ScanStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan engine:           %d functions + %d dual-XOR windows in %d pass(es), %d workers\n",
		s.Functions, s.DualTargets, s.Passes, s.Workers)
	fmt.Fprintf(&b, "  catalogue:           %d candidates compiled (cache: %d hits, %d misses)\n",
		s.CandidatesCompiled, s.CatalogueHits, s.CatalogueMisses)
	fmt.Fprintf(&b, "  walk:                %d bytes, %d anchor probes, %d anchor hits, %d deep compares\n",
		s.BytesScanned, s.AnchorProbes, s.AnchorHits, s.DeepCompares)
	if s.DualTargets > 0 {
		fmt.Fprintf(&b, "  dual-XOR:            %d probes, %d survived the blank-fabric prefilter\n",
			s.DualProbes, s.DualDecodes)
	}
	fmt.Fprintf(&b, "  time:                compile %v, scan %v\n",
		s.CompileTime.Round(time.Microsecond), s.ScanTime.Round(time.Microsecond))
	return b.String()
}

// BatchStats renders the bitsliced candidate-sweep counters: fabric
// passes actually executed by the simulator next to the modeled
// hardware loads they stand in for, lane utilization, scalar fallbacks
// and the incremental-reconfiguration fast-path hits.
func BatchStats(s core.BatchStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "batch sweeps:          %d lane(s) wide, %d fabric pass(es), %d candidate lanes, %d scalar fallbacks\n",
		s.Width, s.Passes, s.Lanes, s.Fallbacks)
	if s.LaneWords > 0 {
		fmt.Fprintf(&b, "  register words:      %d 64-lane word(s) swept\n", s.LaneWords)
	}
	fmt.Fprintf(&b, "  frame patches:       %d applied across all lanes\n", s.PatchedFrames)
	if s.IncrementalReseals+s.FullReseals > 0 {
		fmt.Fprintf(&b, "  reseal:              %d incremental, %d full\n",
			s.IncrementalReseals, s.FullReseals)
	}
	if s.IncrementalCRCs+s.FullCRCs > 0 {
		fmt.Fprintf(&b, "  crc recompute:       %d incremental, %d full\n",
			s.IncrementalCRCs, s.FullCRCs)
	}
	return b.String()
}

// FabricStats renders the compiled flat-program summary of the loaded
// configuration: how the LUT/FF/BRAM graph flattened into the
// instruction stream both evaluators execute.
func FabricStats(s device.CompileStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "compiled fabric:       %d instructions, %d synthesis temps\n",
		s.Insns, s.Temps)
	fmt.Fprintf(&b, "  lut forms:           %d shannon, %d parity, %d mux-reduce (%d const inputs folded)\n",
		s.ShannonLUTs, s.ParityLUTs, s.ReduceLUTs, s.FoldedInputs)
	fmt.Fprintf(&b, "  bram:                %d transpose groups, %d const ROMs primed at compile\n",
		s.BRAMGroups, s.ConstROMs)
	return b.String()
}

// Trace renders the phase-span tree of a telemetry handle: one line per
// span with indentation for nesting and the wall time each phase took.
// High-volume leaf spans (scan.chunk, sweep.chunk) are folded into a
// count so the section stays readable; the NDJSON export keeps them all.
func Trace(tel *obs.Telemetry) string {
	if tel == nil || tel.Tracer == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("phase trace:\n")
	fold := map[string]bool{"scan.chunk": true, "sweep.chunk": true, "device.load": true}
	// tally counts s and every descendant into folded by name —
	// concurrent worker spans may nest under each other arbitrarily, so
	// a folded span's subtree is flattened into the counts.
	var tally func(s *obs.Span, folded map[string]int)
	tally = func(s *obs.Span, folded map[string]int) {
		folded[s.Name()]++
		for _, c := range s.Children() {
			tally(c, folded)
		}
	}
	var walk func(s *obs.Span, depth int)
	walk = func(s *obs.Span, depth int) {
		folded := map[string]int{}
		fmt.Fprintf(&b, "  %s%-*s %v\n", strings.Repeat("  ", depth),
			36-2*depth, s.Name(), s.Duration().Round(time.Microsecond))
		for _, c := range s.Children() {
			if fold[c.Name()] {
				tally(c, folded)
			} else {
				walk(c, depth+1)
			}
		}
		for _, name := range []string{"device.load", "scan.chunk", "sweep.chunk"} {
			if n := folded[name]; n > 0 {
				fmt.Fprintf(&b, "  %s%-*s ×%d\n", strings.Repeat("  ", depth+1),
					36-2*(depth+1), name, n)
			}
		}
	}
	for _, root := range tel.Tracer.Roots() {
		walk(root, 0)
	}
	return b.String()
}

// Timing renders a slowest-paths table.
func Timing(paths []mapper.PathReport) string {
	var b strings.Builder
	b.WriteString("rank | delay    | levels | endpoint\n")
	for i, p := range paths {
		fmt.Fprintf(&b, "%4d | %6.3f ns | %6d | %s\n", i+1, p.Delay, p.Levels, p.Endpoint)
	}
	return b.String()
}

// Census renders the XOR-structured class shortlist.
func Census(classes []core.CensusClass) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d XOR-structured LUT classes:\n", len(classes))
	for _, c := range classes {
		fmt.Fprintf(&b, "  %4d x %s  (xor groups %v)\n", c.Count, c.Expr, c.Groups)
	}
	return b.String()
}

// Diff renders a differential-analysis report.
func Diff(d *core.DiffReport) string {
	var b strings.Builder
	b.WriteString("differing bytes by region:\n")
	for _, region := range []core.DiffRegion{core.DiffPackets, core.DiffHeaderFrame,
		core.DiffCLB, core.DiffDescription, core.DiffBRAM} {
		if n := d.Bytes[region]; n > 0 {
			fmt.Fprintf(&b, "  %-12s %d\n", region, n)
		}
	}
	if len(d.LUTSlots) > 0 {
		fmt.Fprintf(&b, "modified LUT slots: %d\n", len(d.LUTSlots))
	}
	if len(d.BRAMOffsets) > 0 {
		fmt.Fprintf(&b, "modified BRAM bytes: %d\n", len(d.BRAMOffsets))
	}
	return b.String()
}

// Overlaps renders the Section VI-C.2 candidate-overlap analysis.
func Overlaps(rows []core.OverlapRow) string {
	if len(rows) == 0 {
		return "no overlapping candidate sets\n"
	}
	var b strings.Builder
	b.WriteString("candidate pairs sharing byte positions (artifact indicator):\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %s (%d) ~ %s (%d): %d shared\n", r.A, r.ACount, r.B, r.BCount, r.Shared)
	}
	return b.String()
}

// Fig5 renders the identified cover structure of the target node v — the
// textual analogue of the paper's Fig 5: which LUT implements which
// function on which path, per keystream bit.
func Fig5(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "LUT1 — z_t path, %d instances of f2 = %s\n",
		len(rep.LUT1), boolfn.Minimize(boolfn.F2))
	for _, c := range rep.LUT1 {
		fmt.Fprintf(&b, "  bit %2d: byte index %6d, %s, s0 on XOR pin %d\n",
			c.Bit, c.Match.Index, c.Match.Order, c.KeepVar+1)
	}
	fmt.Fprintf(&b, "LUT2 — feedback path, %d instances of f8 = %s\n",
		len(rep.LUT2), boolfn.Minimize(boolfn.F8))
	for _, m := range rep.LUT2 {
		fmt.Fprintf(&b, "  byte index %6d, %s\n", m.Index, m.Order)
	}
	fmt.Fprintf(&b, "LUT3 — feedback path (shifted byte), %d instances of f19 = %s\n",
		len(rep.LUT3), boolfn.Minimize(boolfn.F19))
	for _, m := range rep.LUT3 {
		fmt.Fprintf(&b, "  byte index %6d, %s\n", m.Index, m.Order)
	}
	return b.String()
}
