package report

import (
	"fmt"
	"sort"
	"strings"

	"snowbma/internal/campaign"
)

// Campaign renders a campaign report: the aggregate verdict table, the
// per-fault chaos breakdown and every scenario that broke its contract.
func Campaign(rep *campaign.Report) string {
	var b strings.Builder
	agg := rep.Aggregate
	fmt.Fprintf(&b, "campaign:              %d scenarios, seed %d, chaos=%v\n",
		rep.Runs, rep.Seed, rep.Chaos)
	fmt.Fprintf(&b, "  key recovered:       %d\n", agg.KeyRecovered)
	fmt.Fprintf(&b, "  clean failures:      %d\n", agg.CleanFailures)
	fmt.Fprintf(&b, "  invariant violations:%d\n", agg.InvariantViolations)
	fmt.Fprintf(&b, "  unexpected verdicts: %d\n", agg.Unexpected)
	fmt.Fprintf(&b, "  total loads:         %d\n", agg.TotalLoads)
	if agg.ChaosScenarios > 0 {
		fmt.Fprintf(&b, "chaos faults (%d scenarios):\n", agg.ChaosScenarios)
		faults := make([]string, 0, len(agg.ByFault))
		for f := range agg.ByFault {
			faults = append(faults, f)
		}
		sort.Strings(faults)
		for _, f := range faults {
			fmt.Fprintf(&b, "  %-14s %d\n", f, agg.ByFault[f])
		}
	}
	outcomes := make([]string, 0, len(agg.ByOutcome))
	for o := range agg.ByOutcome {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	b.WriteString("outcomes:\n")
	for _, o := range outcomes {
		fmt.Fprintf(&b, "  %-20s %d\n", o, agg.ByOutcome[o])
	}
	for _, r := range rep.Results {
		if r.Expected && r.Verdict != campaign.VerdictInvariantViolation {
			continue
		}
		fmt.Fprintf(&b, "CONTRACT BROKEN: scenario %d (seed %d, fault %q): verdict %s, outcome %s",
			r.Scenario.Index, r.Scenario.Seed, r.Scenario.Fault, r.Verdict, r.Outcome)
		if r.Error != "" {
			fmt.Fprintf(&b, ": %s", r.Error)
		}
		if r.Panic != "" {
			fmt.Fprintf(&b, " (panic: %s)", r.Panic)
		}
		b.WriteByte('\n')
	}
	if rep.Healthy() {
		b.WriteString("HEALTHY: every scenario met its contract\n")
	} else {
		b.WriteString("UNHEALTHY: contract violations present\n")
	}
	return b.String()
}
