package report

import (
	"strings"
	"testing"

	"snowbma/internal/campaign"
	"snowbma/internal/campaign/chaos"
)

func healthyCampaign() *campaign.Report {
	return &campaign.Report{
		Schema: 1,
		Seed:   9,
		Runs:   3,
		Chaos:  true,
		Results: []campaign.Result{
			{
				Scenario: campaign.Scenario{Index: 0, Seed: 100},
				Verdict:  campaign.VerdictKeyRecovered,
				Outcome:  campaign.OutcomeVerified,
				Expected: true,
				Loads:    250,
			},
			{
				Scenario: campaign.Scenario{Index: 1, Seed: 101, Fault: chaos.Stall},
				Verdict:  campaign.VerdictCleanFailure,
				Outcome:  "chaos:stall",
				Expected: true,
				Error:    "chaos: configuration port stalled after 9 loads",
			},
			{
				Scenario: campaign.Scenario{Index: 2, Seed: 102, Fault: chaos.BitFlip},
				Verdict:  campaign.VerdictCleanFailure,
				Outcome:  "chaos:bitflip",
				Expected: true,
				Error:    "core: feedback candidates 3+1 != 32",
			},
		},
		Aggregate: campaign.Aggregate{
			KeyRecovered:   1,
			CleanFailures:  2,
			ChaosScenarios: 2,
			TotalLoads:     250,
			ByFault:        map[string]int{"stall": 1, "bitflip": 1},
			ByOutcome:      map[string]int{"verified": 1, "chaos:stall": 1, "chaos:bitflip": 1},
		},
	}
}

func TestCampaignRendering(t *testing.T) {
	cases := []struct {
		name    string
		rep     func() *campaign.Report
		want    []string
		exclude []string
	}{
		{
			name: "healthy",
			rep:  healthyCampaign,
			want: []string{
				"campaign:              3 scenarios, seed 9, chaos=true",
				"key recovered:       1",
				"clean failures:      2",
				"chaos faults (2 scenarios):",
				"bitflip        1",
				"stall          1",
				"outcomes:",
				"verified             1",
				"HEALTHY: every scenario met its contract",
			},
			exclude: []string{"CONTRACT BROKEN", "UNHEALTHY"},
		},
		{
			name: "invariant violation",
			rep: func() *campaign.Report {
				r := healthyCampaign()
				r.Results[1].Verdict = campaign.VerdictInvariantViolation
				r.Results[1].Outcome = campaign.OutcomePanic
				r.Results[1].Panic = "index out of range"
				r.Aggregate.CleanFailures = 1
				r.Aggregate.InvariantViolations = 1
				return r
			},
			want: []string{
				"invariant violations:1",
				`CONTRACT BROKEN: scenario 1 (seed 101, fault "stall"): verdict invariant_violation, outcome panic`,
				"(panic: index out of range)",
				"UNHEALTHY: contract violations present",
			},
			exclude: []string{"HEALTHY: every scenario"},
		},
		{
			name: "unexpected verdict",
			rep: func() *campaign.Report {
				r := healthyCampaign()
				r.Results[0].Expected = false
				r.Results[0].Verdict = campaign.VerdictCleanFailure
				r.Results[0].Outcome = campaign.OutcomeFailure
				r.Results[0].Error = "core: z-path verification failed"
				r.Aggregate.KeyRecovered = 0
				r.Aggregate.CleanFailures = 3
				r.Aggregate.Unexpected = 1
				return r
			},
			want: []string{
				"unexpected verdicts: 1",
				`CONTRACT BROKEN: scenario 0 (seed 100, fault ""): verdict clean_failure, outcome failure: core: z-path verification failed`,
				"UNHEALTHY",
			},
		},
		{
			name: "no chaos section without chaos scenarios",
			rep: func() *campaign.Report {
				r := healthyCampaign()
				r.Chaos = false
				r.Results = r.Results[:1]
				r.Aggregate.CleanFailures = 0
				r.Aggregate.ChaosScenarios = 0
				r.Aggregate.ByFault = nil
				return r
			},
			want:    []string{"chaos=false", "HEALTHY"},
			exclude: []string{"chaos faults"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := Campaign(tc.rep())
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Errorf("rendering missing %q:\n%s", w, out)
				}
			}
			for _, e := range tc.exclude {
				if strings.Contains(out, e) {
					t.Errorf("rendering must not contain %q:\n%s", e, out)
				}
			}
		})
	}
}

func TestCampaignFaultBreakdownSorted(t *testing.T) {
	out := Campaign(healthyCampaign())
	bi := strings.Index(out, "bitflip")
	si := strings.Index(out, "stall")
	if bi < 0 || si < 0 || bi > si {
		t.Fatalf("fault breakdown not sorted (bitflip@%d, stall@%d):\n%s", bi, si, out)
	}
}
