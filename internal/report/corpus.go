package report

import (
	"fmt"
	"strings"

	"snowbma/internal/corpus"
)

// Corpus renders the census-at-scale report: the fleet-wide headline
// (designs, exposure, coverage, dedup economics) followed by one row per
// design. Exposed designs are flagged — each is a bitstream an attacker
// could modify per the paper; covered designs carry (or behave as if
// they carry) the Section VII-A countermeasure.
func Corpus(rep *corpus.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "corpus census:        %d designs, target %s\n",
		rep.Designs, rep.Expr)
	fmt.Fprintf(&b, "  exposed:            %d\n", rep.Exposed)
	fmt.Fprintf(&b, "  covered:            %d (%d protected)\n", rep.Covered, rep.Protected)
	fmt.Fprintf(&b, "  candidates:         %d matches, %d dual-XOR hits\n",
		rep.Matches, rep.DualHits)
	fmt.Fprintf(&b, "  bytes:              %d\n", rep.BytesTotal)
	fmt.Fprintf(&b, "  frames:             %d (%d scanned, %d dedup hits, %.1f%% dedup rate)\n",
		rep.Frames, rep.FramesScanned, rep.DedupHits, 100*rep.DedupRate)
	b.WriteString("designs:\n")
	for _, dr := range rep.Results {
		verdict := "covered"
		if dr.Exposed {
			verdict = "EXPOSED"
		}
		luts := fmt.Sprintf("%d target LUTs", dr.TargetLUTs)
		if dr.TargetLUTs < 0 {
			luts = "unparsed image"
		}
		fmt.Fprintf(&b, "  %-24.24s %-7s  %s, %d candidates, %d duals",
			dr.ID, verdict, luts, len(dr.Matches), dr.DualHits)
		if dr.Rescans > 0 {
			fmt.Fprintf(&b, ", %d rescans", dr.Rescans)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
