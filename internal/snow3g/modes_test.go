package snow3g

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestF8RoundTrip(t *testing.T) {
	var ck ConfidentialityKey
	for i := range ck {
		ck[i] = byte(i * 17)
	}
	msg := []byte("the quick brown fox jumps over the lazy dog")
	buf := append([]byte(nil), msg...)
	F8(ck, 0x38A6F056, 0x1C, 1, buf, len(buf)*8)
	if bytes.Equal(buf, msg) {
		t.Fatal("f8 did not change the plaintext")
	}
	F8(ck, 0x38A6F056, 0x1C, 1, buf, len(buf)*8)
	if !bytes.Equal(buf, msg) {
		t.Fatal("f8 applied twice did not restore the plaintext")
	}
}

func TestF8ParametersMatter(t *testing.T) {
	var ck ConfidentialityKey
	base := make([]byte, 32)
	enc := func(count, bearer, dir uint32) []byte {
		buf := append([]byte(nil), base...)
		F8(ck, count, bearer, dir, buf, len(buf)*8)
		return buf
	}
	ref := enc(1, 2, 0)
	for name, got := range map[string][]byte{
		"count":     enc(2, 2, 0),
		"bearer":    enc(1, 3, 0),
		"direction": enc(1, 2, 1),
	} {
		if bytes.Equal(ref, got) {
			t.Errorf("changing %s did not change the f8 keystream", name)
		}
	}
}

func TestF8PartialBits(t *testing.T) {
	var ck ConfidentialityKey
	buf := make([]byte, 4)
	for i := range buf {
		buf[i] = 0xFF
	}
	F8(ck, 7, 1, 0, buf, 13) // only the first 13 bits are processed
	if buf[2] != 0xFF || buf[3] != 0xFF {
		t.Fatal("f8 touched bytes beyond the bit length")
	}
	if buf[1]&0x07 != 0 {
		t.Fatal("f8 did not mask the tail bits of the last byte")
	}
}

func TestF8KeyBytesRoundTrip(t *testing.T) {
	f := func(raw [4]uint32) bool {
		k := Key(raw)
		return keyFromBytes(KeyToBytes(k)) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMul64FieldAxioms(t *testing.T) {
	// GF(2^64) multiplication must be commutative, associative and
	// distributive over XOR, with 1 as identity.
	comm := func(a, b uint64) bool { return Mul64(a, b) == Mul64(b, a) }
	if err := quick.Check(comm, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal("commutativity:", err)
	}
	assoc := func(a, b, c uint64) bool {
		return Mul64(Mul64(a, b), c) == Mul64(a, Mul64(b, c))
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal("associativity:", err)
	}
	dist := func(a, b, c uint64) bool {
		return Mul64(a^b, c) == Mul64(a, c)^Mul64(b, c)
	}
	if err := quick.Check(dist, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal("distributivity:", err)
	}
	ident := func(a uint64) bool { return Mul64(a, 1) == a }
	if err := quick.Check(ident, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal("identity:", err)
	}
	if Mul64(0x8000000000000000, 2) != 0x1B {
		t.Fatal("reduction polynomial wrong: x^63·x should reduce to 0x1B")
	}
}

func TestF9Deterministic(t *testing.T) {
	var ik IntegrityKey
	msg := []byte("signalling message")
	a := F9(ik, 1, 2, 0, msg, len(msg)*8)
	b := F9(ik, 1, 2, 0, msg, len(msg)*8)
	if a != b {
		t.Fatal("f9 not deterministic")
	}
}

func TestF9SensitiveToEveryInput(t *testing.T) {
	var ik IntegrityKey
	for i := range ik {
		ik[i] = byte(0x30 + i)
	}
	msg := make([]byte, 24)
	ref := F9(ik, 5, 6, 0, msg, len(msg)*8)
	ik2 := ik
	ik2[3] ^= 1
	if F9(ik2, 5, 6, 0, msg, len(msg)*8) == ref {
		t.Error("f9 insensitive to key")
	}
	if F9(ik, 6, 6, 0, msg, len(msg)*8) == ref {
		t.Error("f9 insensitive to COUNT")
	}
	if F9(ik, 5, 7, 0, msg, len(msg)*8) == ref {
		t.Error("f9 insensitive to FRESH")
	}
	if F9(ik, 5, 6, 1, msg, len(msg)*8) == ref {
		t.Error("f9 insensitive to DIRECTION")
	}
	msg2 := append([]byte(nil), msg...)
	msg2[11] ^= 0x80
	if F9(ik, 5, 6, 0, msg2, len(msg2)*8) == ref {
		t.Error("f9 insensitive to a message bit")
	}
	if F9(ik, 5, 6, 0, msg, len(msg)*8-1) == ref {
		t.Error("f9 insensitive to the message length")
	}
}

func TestF9BitFlipAvalanche(t *testing.T) {
	// Random single-bit flips must change the MAC (probabilistic, but a
	// collision at 2^-32 per trial would indicate a structural bug).
	var ik IntegrityKey
	rng := rand.New(rand.NewSource(44))
	msg := make([]byte, 64)
	rng.Read(msg)
	ref := F9(ik, 9, 9, 1, msg, len(msg)*8)
	for trial := 0; trial < 64; trial++ {
		pos := rng.Intn(len(msg) * 8)
		mod := append([]byte(nil), msg...)
		mod[pos/8] ^= 1 << (7 - pos%8)
		if F9(ik, 9, 9, 1, mod, len(mod)*8) == ref {
			t.Fatalf("bit flip at %d left MAC unchanged", pos)
		}
	}
}

func BenchmarkF8Encrypt1KiB(b *testing.B) {
	var ck ConfidentialityKey
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		F8(ck, uint32(i), 3, 0, buf, len(buf)*8)
	}
}

func BenchmarkF9MAC1KiB(b *testing.B) {
	var ik IntegrityKey
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		F9(ik, uint32(i), 7, 1, buf, len(buf)*8)
	}
}

func TestKeyFromBytesEndianness(t *testing.T) {
	var ck [16]byte
	for i := range ck {
		ck[i] = byte(i)
	}
	k := KeyFromBytes(ck)
	// First four bytes form k3 (most significant word), big endian.
	if k[3] != 0x00010203 || k[0] != 0x0C0D0E0F {
		t.Fatalf("KeyFromBytes = %08x", k)
	}
	if KeyToBytes(k) != ck {
		t.Fatal("KeyToBytes does not invert KeyFromBytes")
	}
}
