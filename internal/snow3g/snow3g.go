package snow3g

import (
	"errors"
	"fmt"
)

// Key holds the four 32-bit key words k0..k3 in the order used by the
// paper and the specification's γ(K, IV) loading: s4 = k0, ..., s7 = k3.
type Key [4]uint32

// IV holds the four 32-bit initialization-vector words iv0..iv3 with
// s15 = k3 ⊕ iv0, s12 = k0 ⊕ iv1, s10 = k2 ⊕ 1 ⊕ iv2, s9 = k1 ⊕ 1 ⊕ iv3.
type IV [4]uint32

// State is the 16-word LFSR state (s0, s1, ..., s15).
type State [16]uint32

// Fault configures the stuck-at faults the bitstream modification attack
// injects. The zero value is the unmodified cipher.
type Fault struct {
	// FSMStuckInit forces the FSM output word W to 0 during the 32
	// initialization rounds, reducing the LFSR state update to the linear
	// map L (paper Section VI-A, fault α on the feedback path).
	FSMStuckInit bool
	// FSMStuckKeystream forces W to 0 during keystream generation, so
	// z_t = s0 of the running state (fault α on the z_t path).
	FSMStuckKeystream bool
	// LFSRZeroLoad loads the all-0 vector instead of γ(K, IV), making the
	// keystream key independent (paper Section VI-D, fault β).
	LFSRZeroLoad bool
}

// Cipher is a SNOW 3G instance. Create one with New, then call Init before
// Keystream. The same instance may be re-initialized any number of times.
type Cipher struct {
	lfsr     State
	r1       uint32
	r2       uint32
	r3       uint32
	fault    Fault
	xorPlus  bool
	inKeyGen bool
	ready    bool
}

// New returns a cipher with the given fault configuration. Use a zero
// Fault for the reference cipher.
func New(fault Fault) *Cipher {
	return &Cipher{fault: fault}
}

// NewXorVariant returns SNOW 3G⊕, the analysis variant of the paper's
// reference [6] in which both modulo-2^32 additions are replaced by
// XOR. It exists for cryptanalytic experiments; it is NOT the standard
// cipher.
func NewXorVariant(fault Fault) *Cipher {
	return &Cipher{fault: fault, xorPlus: true}
}

// box is the cipher's ⊞: integer addition, or XOR in the ⊕ variant.
func (c *Cipher) box(a, b uint32) uint32 {
	if c.xorPlus {
		return a ^ b
	}
	return a + b
}

// Gamma computes the initial LFSR load γ(K, IV) defined in Section III of
// the paper (and Section 4.1 of the specification), where 1 denotes the
// all-1s word.
func Gamma(k Key, iv IV) State {
	const ones = 0xFFFFFFFF
	return State{
		k[0] ^ ones,         // s0
		k[1] ^ ones,         // s1
		k[2] ^ ones,         // s2
		k[3] ^ ones,         // s3
		k[0],                // s4
		k[1],                // s5
		k[2],                // s6
		k[3],                // s7
		k[0] ^ ones,         // s8
		k[1] ^ ones ^ iv[3], // s9
		k[2] ^ ones ^ iv[2], // s10
		k[3] ^ ones,         // s11
		k[0] ^ iv[1],        // s12
		k[1],                // s13
		k[2],                // s14
		k[3] ^ iv[0],        // s15
	}
}

// KeyFromState extracts the key from an initial LFSR state S⁰ = γ(K, IV):
// s4..s7 hold k0..k3 directly (paper Section VI-D.3).
func KeyFromState(s State) Key {
	return Key{s[4], s[5], s[6], s[7]}
}

// IVFromState extracts the IV from an initial LFSR state S⁰ = γ(K, IV).
func IVFromState(s State) IV {
	const ones = 0xFFFFFFFF
	k := KeyFromState(s)
	return IV{
		s[15] ^ k[3],
		s[12] ^ k[0],
		s[10] ^ k[2] ^ ones,
		s[9] ^ k[1] ^ ones,
	}
}

// ConsistentGamma reports whether s has the redundancy structure of a
// γ(K, IV) load (e.g. s0 = ¬s4, s13 = s5). The attack uses it as a sanity
// check that LFSR reversal landed on a genuine initial state.
func ConsistentGamma(s State) bool {
	const ones = 0xFFFFFFFF
	return s[0] == s[4]^ones && s[1] == s[5]^ones && s[2] == s[6]^ones &&
		s[3] == s[7]^ones && s[8] == s[0] && s[13] == s[5] &&
		s[14] == s[6] && s[11] == s[3]
}

// clockFSM advances the FSM one step and returns the output word
// W = (s15 ⊞ R1) ⊕ R2. The register update is r = R2 ⊞ (R3 ⊕ s5);
// R3 = S2(R2); R2 = S1(R1); R1 = r.
func (c *Cipher) clockFSM() uint32 {
	w := c.box(c.lfsr[15], c.r1) ^ c.r2
	r := c.box(c.r2, c.r3^c.lfsr[5])
	c.r3 = S2(c.r2)
	c.r2 = S1(c.r1)
	c.r1 = r
	return w
}

// feedback computes the linear part of the LFSR feedback for state s:
// α·s0 ⊕ s2 ⊕ α⁻¹·s11 expressed through the byte-shift/MULα/DIVα
// decomposition of the specification.
func feedback(s *State) uint32 {
	return (s[0] << 8) ^ mulAlpha[byte(s[0]>>24)] ^ s[2] ^
		(s[11] >> 8) ^ divAlpha[byte(s[11])]
}

// clockLFSR shifts the LFSR one step, feeding back the linear term XOR w
// (w = W during initialization, w = 0 in keystream mode).
func (c *Cipher) clockLFSR(w uint32) {
	v := feedback(&c.lfsr) ^ w
	copy(c.lfsr[:], c.lfsr[1:])
	c.lfsr[15] = v
}

// Init loads γ(K, IV) (or the all-0 vector under the LFSRZeroLoad fault),
// zeroes the FSM, and runs the 32 initialization rounds. No keystream is
// produced during initialization.
func (c *Cipher) Init(k Key, iv IV) {
	if c.fault.LFSRZeroLoad {
		c.lfsr = State{}
	} else {
		c.lfsr = Gamma(k, iv)
	}
	c.r1, c.r2, c.r3 = 0, 0, 0
	for i := 0; i < 32; i++ {
		w := c.clockFSM()
		if c.fault.FSMStuckInit {
			w = 0
		}
		c.clockLFSR(w)
	}
	// Keystream mode begins with one clock whose FSM output is discarded.
	c.clockFSM()
	c.clockLFSR(0)
	c.inKeyGen = true
	c.ready = true
}

// InitState loads an explicit LFSR state instead of γ(K, IV) and runs
// initialization. Used by tests and by the attack's software simulation of
// hypothetical faulty devices.
func (c *Cipher) InitState(s State) {
	c.lfsr = s
	c.r1, c.r2, c.r3 = 0, 0, 0
	for i := 0; i < 32; i++ {
		w := c.clockFSM()
		if c.fault.FSMStuckInit {
			w = 0
		}
		c.clockLFSR(w)
	}
	c.clockFSM()
	c.clockLFSR(0)
	c.inKeyGen = true
	c.ready = true
}

// Keystream appends n keystream words to dst and returns the result.
// It panics if Init has not been called, mirroring misuse of the hardware.
func (c *Cipher) Keystream(dst []uint32, n int) []uint32 {
	if !c.ready {
		panic("snow3g: Keystream called before Init")
	}
	for i := 0; i < n; i++ {
		w := c.clockFSM()
		if c.fault.FSMStuckKeystream {
			w = 0
		}
		dst = append(dst, w^c.lfsr[0])
		c.clockLFSR(0)
	}
	return dst
}

// KeystreamWords is a convenience wrapper returning a fresh slice of n
// keystream words.
func (c *Cipher) KeystreamWords(n int) []uint32 {
	return c.Keystream(make([]uint32, 0, n), n)
}

// LFSR returns a copy of the current LFSR state (test instrumentation; a
// real device does not expose this).
func (c *Cipher) LFSR() State { return c.lfsr }

// FSM returns the current FSM registers R1, R2, R3 (test instrumentation).
func (c *Cipher) FSM() (r1, r2, r3 uint32) { return c.r1, c.r2, c.r3 }

// StepForward applies the linear LFSR map L once to s (no FSM feedback).
func StepForward(s State) State {
	v := feedback(&s)
	var out State
	copy(out[:], s[1:])
	out[15] = v
	return out
}

// StepBack inverts one linear LFSR step: given L(S) it returns S. The
// dropped word s0 is recovered by peeling the byte-shifted term off the
// feedback using the invertibility of the low byte of MULα.
func StepBack(s State) State {
	var prev State
	copy(prev[1:], s[:15])
	// s[15] = (prev0<<8) ^ MULα(prev0>>24) ^ prev2 ^ (prev11>>8) ^ DIVα(prev11&0xff)
	x := s[15] ^ prev[2] ^ (prev[11] >> 8) ^ divAlpha[byte(prev[11])]
	// Low byte of x comes only from MULα (the shift contributes 0 there).
	hi := invMulAlphaLow[byte(x)]
	rest := (x ^ mulAlpha[hi]) >> 8
	prev[0] = uint32(hi)<<24 | rest
	return prev
}

// Rewind applies StepBack n times.
func Rewind(s State, n int) State {
	for i := 0; i < n; i++ {
		s = StepBack(s)
	}
	return s
}

// errShortKeystream and errNotGamma are shared by the two key-recovery
// implementations (table rewind and matrix algebra).
func errShortKeystream(n int) error {
	return fmt.Errorf("snow3g: need 16 keystream words, have %d", n)
}

var errNotGamma = errors.New("snow3g: rewound state is not a γ(K, IV) load; fault hypothesis wrong")

// RecoverFromKeystream implements the paper's key extraction (Section
// VI-A): the 16 keystream words observed from a device whose FSM output is
// stuck at 0 during initialization and keystream generation are exactly
// the LFSR state S³³; rewinding 33 linear steps yields S⁰ = γ(K, IV) and
// hence the key. It returns an error if fewer than 16 words are supplied
// or if the recovered state lacks γ's redundancy (meaning the keystream
// did not come from the hypothesized fault).
func RecoverFromKeystream(z []uint32) (Key, IV, State, error) {
	if len(z) < 16 {
		return Key{}, IV{}, State{}, errShortKeystream(len(z))
	}
	var s33 State
	copy(s33[:], z[:16])
	s0 := Rewind(s33, 33)
	if !ConsistentGamma(s0) {
		return Key{}, IV{}, s0, errNotGamma
	}
	return KeyFromState(s0), IVFromState(s0), s0, nil
}
