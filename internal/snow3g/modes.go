package snow3g

import "encoding/binary"

// This file implements the 3GPP modes built on SNOW 3G that the paper's
// introduction motivates: UEA2/128-EEA1 confidentiality (the f8
// function) and UIA2/128-EIA1 integrity (the f9 function). They follow
// the ETSI/SAGE UEA2 & UIA2 specification's construction: f8 derives the
// cipher IV from COUNT/BEARER/DIRECTION and XORs the keystream onto the
// data; f9 evaluates the message as a polynomial over GF(2^64) at a
// keystream-derived point. The official conformance vectors are not
// bundled (this module builds offline); the test suite verifies the
// algebraic properties instead — see TestF8RoundTrip and the f9
// sensitivity tests.

// ConfidentialityKey is the 128-bit CK as 16 bytes, most significant
// byte first (CK[0..3] form k3, ..., CK[12..15] form k0).
type ConfidentialityKey [16]byte

// KeyFromBytes converts a 3GPP 16-byte key into cipher key words: the
// first four bytes are the most significant word k3.
func KeyFromBytes(ck [16]byte) Key {
	return Key{
		binary.BigEndian.Uint32(ck[12:]),
		binary.BigEndian.Uint32(ck[8:]),
		binary.BigEndian.Uint32(ck[4:]),
		binary.BigEndian.Uint32(ck[0:]),
	}
}

// keyFromBytes is the internal alias used by the f8/f9 modes.
func keyFromBytes(ck [16]byte) Key { return KeyFromBytes(ck) }

// KeyToBytes is the inverse of the f8/f9 key loading, used when the
// attack has recovered the word-form key and wants the 3GPP CK bytes.
func KeyToBytes(k Key) [16]byte {
	var out [16]byte
	binary.BigEndian.PutUint32(out[0:], k[3])
	binary.BigEndian.PutUint32(out[4:], k[2])
	binary.BigEndian.PutUint32(out[8:], k[1])
	binary.BigEndian.PutUint32(out[12:], k[0])
	return out
}

// F8IV builds the confidentiality-mode IV from COUNT-C, BEARER (5 bits)
// and DIRECTION (1 bit): IV0 = IV2 = BEARER‖DIR‖0²⁶, IV1 = IV3 = COUNT.
func F8IV(count uint32, bearer, direction uint32) IV {
	low := (bearer&0x1F)<<27 | (direction&1)<<26
	return IV{low, count, low, count}
}

// F8 encrypts (or, being an XOR stream, decrypts) data in place
// according to UEA2: keystream generated under CK and the
// COUNT/BEARER/DIRECTION IV, XORed onto the first `bits` bits of data.
func F8(ck ConfidentialityKey, count, bearer, direction uint32, data []byte, bits int) {
	c := New(Fault{})
	c.Init(keyFromBytes(ck), F8IV(count, bearer, direction))
	words := (bits + 31) / 32
	z := c.KeystreamWords(words)
	for i := 0; i < len(data) && i < (bits+7)/8; i++ {
		ksByte := byte(z[i/4] >> (24 - 8*(i%4)))
		data[i] ^= ksByte
	}
	// Mask the tail bits beyond the requested length, as the spec does.
	if rem := bits % 8; rem != 0 && bits/8 < len(data) {
		data[bits/8] &= 0xFF << (8 - rem)
	}
}

// IntegrityKey is the 128-bit IK for f9.
type IntegrityKey [16]byte

// F9IV builds the integrity-mode IV from COUNT-I, FRESH and DIRECTION:
// IV3 = COUNT, IV2 = FRESH, IV1 = COUNT ⊕ DIR·2³¹, IV0 = FRESH ⊕ DIR·2¹⁵.
func F9IV(count, fresh, direction uint32) IV {
	return IV{
		fresh ^ (direction&1)<<15,
		count ^ (direction&1)<<31,
		fresh,
		count,
	}
}

// mul64x is MULx on 64-bit values with reduction constant c (the
// specification's MUL64x): multiplication by x in GF(2^64) defined by
// x^64 + x^4 + x^3 + x + 1 for c = 0x1B.
func mul64x(v, c uint64) uint64 {
	if v&0x8000000000000000 != 0 {
		return v<<1 ^ c
	}
	return v << 1
}

// Mul64 multiplies v and p in GF(2^64)/x^64+x^4+x^3+x+1 (the
// specification's MUL64 with c = 0x1B).
func Mul64(v, p uint64) uint64 {
	var acc uint64
	for i := 0; i < 64; i++ {
		if p>>uint(i)&1 == 1 {
			acc ^= v
		}
		v = mul64x(v, 0x1B)
	}
	return acc
}

// F9 computes the UIA2 32-bit MAC over the first `bits` bits of data:
// five keystream words give the evaluation point P = z1‖z2, the masking
// multiplier Q = z3‖z4 and the output mask z5; the padded message plus
// its length are Horner-evaluated in GF(2^64).
func F9(ik IntegrityKey, count, fresh, direction uint32, data []byte, bits int) uint32 {
	c := New(Fault{})
	c.Init(keyFromBytes([16]byte(ik)), F9IV(count, fresh, direction))
	z := c.KeystreamWords(5)
	p := uint64(z[0])<<32 | uint64(z[1])
	q := uint64(z[2])<<32 | uint64(z[3])

	// D-1 message blocks of 64 bits (last one zero padded) plus the
	// length block.
	blocks := bits/64 + 1
	eval := uint64(0)
	for i := 0; i < blocks; i++ {
		var m uint64
		for b := 0; b < 8; b++ {
			idx := 8*i + b
			var byteVal byte
			if idx < len(data) && idx*8 < bits {
				byteVal = data[idx]
				if rem := bits - idx*8; rem < 8 {
					byteVal &= 0xFF << (8 - rem)
				}
			}
			m = m<<8 | uint64(byteVal)
		}
		eval = Mul64(eval^m, p)
	}
	eval ^= uint64(bits)
	eval = Mul64(eval, q)
	return uint32(eval>>32) ^ z[4]
}
