package snow3g

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperKey and paperIV are the key and IV recovered in the paper's Table V
// (the ETSI SNOW 3G test-set key). IV is derived from Table V through the
// γ structure: iv0 = s15 ⊕ k3, iv1 = s12 ⊕ k0, iv2 = s10 ⊕ k2 ⊕ 1,
// iv3 = s9 ⊕ k1 ⊕ 1.
var (
	paperKey = Key{0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48}
	paperIV  = IV{
		0xA283B85C ^ 0x4881FF48,
		0x868A081B ^ 0x2BD6459F,
		0xB5CC2DCA ^ 0x952C4910 ^ 0xFFFFFFFF,
		0x6131B8A0 ^ 0x82C5B300 ^ 0xFFFFFFFF,
	}
)

// tableIII is the key-independent keystream of paper Table III: FSM output
// stuck to 0 during initialization, LFSR initialized to the all-0 state.
var tableIII = []uint32{
	0xa1fb4788, 0xe4382f8e, 0x3b72471c, 0x33ebb59a,
	0x32ac43c7, 0x5eebfd82, 0x3a325fd4, 0x1e1d7001,
	0xb7f15767, 0x3282c5b0, 0x103da78f, 0xe42761e4,
	0xc6ded1bb, 0x089fa36c, 0x01c7c690, 0xbf921256,
}

// tableIV is the keystream of paper Table IV: FSM output stuck to 0 during
// both initialization and keystream generation, real γ(K, IV) load.
var tableIV = []uint32{
	0x3ffe4851, 0x35d1c393, 0x5914acef, 0xe98446cc,
	0x689782d9, 0x8abdb7fc, 0xa11b0377, 0x5a2dd294,
	0x5deb29fa, 0xc2c6009a, 0xa82ee62f, 0x925268ed,
	0xd04e2c33, 0x3890311b, 0xe8d27b84, 0xa70aeeaa,
}

// tableV is the recovered initial LFSR state S⁰ of paper Table V.
var tableV = State{
	0xd429ba60, 0x7d3a4cff, 0x6ad3b6ef, 0xb77e00b7,
	0x2bd6459f, 0x82c5b300, 0x952c4910, 0x4881ff48,
	0xd429ba60, 0x6131b8a0, 0xb5cc2dca, 0xb77e00b7,
	0x868a081b, 0x82c5b300, 0x952c4910, 0xa283b85c,
}

func TestSRKnownEntries(t *testing.T) {
	// Spot checks against the published Rijndael S-box.
	cases := map[byte]byte{0x00: 0x63, 0x01: 0x7C, 0x53: 0xED, 0xFF: 0x16, 0x10: 0xCA}
	for in, want := range cases {
		if got := SR(in); got != want {
			t.Errorf("SR(%#02x) = %#02x, want %#02x", in, got, want)
		}
	}
}

func TestSQIsPermutationWithFixedZero(t *testing.T) {
	if SQ(0) != 0x25 {
		t.Errorf("SQ(0) = %#02x, want 0x25 (g49(0) ⊕ 0x25)", SQ(0))
	}
	var seen [256]bool
	for i := 0; i < 256; i++ {
		v := SQ(byte(i))
		if seen[v] {
			t.Fatalf("SQ is not a permutation: duplicate value %#02x", v)
		}
		seen[v] = true
	}
}

func TestTableIIIExact(t *testing.T) {
	c := New(Fault{FSMStuckInit: true, LFSRZeroLoad: true})
	c.Init(Key{}, IV{}) // key/IV irrelevant: the β fault loads all-0
	got := c.KeystreamWords(16)
	for i, want := range tableIII {
		if got[i] != want {
			t.Fatalf("Table III word %d: got %08x, want %08x", i+1, got[i], want)
		}
	}
}

func TestTableIIIKeyIndependent(t *testing.T) {
	// The whole point of fault β: any key/IV produces the same keystream.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		var k Key
		var iv IV
		for i := range k {
			k[i], iv[i] = rng.Uint32(), rng.Uint32()
		}
		c := New(Fault{FSMStuckInit: true, LFSRZeroLoad: true})
		c.Init(k, iv)
		got := c.KeystreamWords(16)
		for i, want := range tableIII {
			if got[i] != want {
				t.Fatalf("trial %d: keystream depends on key (word %d: %08x != %08x)",
					trial, i+1, got[i], want)
			}
		}
	}
}

func TestTableIVExact(t *testing.T) {
	c := New(Fault{FSMStuckInit: true, FSMStuckKeystream: true})
	c.Init(paperKey, paperIV)
	got := c.KeystreamWords(16)
	for i, want := range tableIV {
		if got[i] != want {
			t.Fatalf("Table IV word %d: got %08x, want %08x", i+1, got[i], want)
		}
	}
}

func TestTableVExact(t *testing.T) {
	key, iv, s0, err := RecoverFromKeystream(tableIV)
	if err != nil {
		t.Fatalf("RecoverFromKeystream: %v", err)
	}
	if s0 != tableV {
		t.Fatalf("recovered S⁰ = %08x, want Table V %08x", s0, tableV)
	}
	if key != paperKey {
		t.Fatalf("recovered key %08x, want %08x", key, paperKey)
	}
	if iv != paperIV {
		t.Fatalf("recovered IV %08x, want %08x", iv, paperIV)
	}
}

func TestGammaMatchesTableV(t *testing.T) {
	if got := Gamma(paperKey, paperIV); got != tableV {
		t.Fatalf("Gamma(K, IV) = %08x, want Table V %08x", got, tableV)
	}
}

func TestKeystreamDeterministicAndKeyed(t *testing.T) {
	a := New(Fault{})
	a.Init(paperKey, paperIV)
	b := New(Fault{})
	b.Init(paperKey, paperIV)
	za, zb := a.KeystreamWords(64), b.KeystreamWords(64)
	for i := range za {
		if za[i] != zb[i] {
			t.Fatalf("nondeterministic keystream at word %d", i)
		}
	}
	c := New(Fault{})
	k2 := paperKey
	k2[0] ^= 1
	c.Init(k2, paperIV)
	zc := c.KeystreamWords(64)
	same := true
	for i := range za {
		if za[i] != zc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("flipping a key bit did not change the keystream")
	}
}

func TestStepBackInvertsStepForward(t *testing.T) {
	f := func(raw [16]uint32) bool {
		s := State(raw)
		return StepBack(StepForward(s)) == s && StepForward(StepBack(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRewindMatchesIteratedForward(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s State
	for i := range s {
		s[i] = rng.Uint32()
	}
	fwd := s
	for i := 0; i < 33; i++ {
		fwd = StepForward(fwd)
	}
	if got := Rewind(fwd, 33); got != s {
		t.Fatalf("Rewind(L^33(S), 33) = %08x, want %08x", got, s)
	}
}

func TestFeedbackIsLinear(t *testing.T) {
	// v(S ⊕ T) = v(S) ⊕ v(T): the feedback must be GF(2)-linear, the core
	// fact behind the attack once the FSM is disconnected.
	f := func(a, b [16]uint32) bool {
		sa, sb := State(a), State(b)
		var sx State
		for i := range sx {
			sx[i] = sa[i] ^ sb[i]
		}
		return feedback(&sx) == feedback(&sa)^feedback(&sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroStateIsFixedPointOfL(t *testing.T) {
	// The all-0 LFSR state stays all-0 under the linear map — the property
	// that makes the key-independent exploration technique work.
	s := State{}
	for i := 0; i < 40; i++ {
		s = StepForward(s)
	}
	if s != (State{}) {
		t.Fatalf("all-0 state escaped to %08x", s)
	}
}

func TestFaultedInitIsLinear(t *testing.T) {
	// With FSMStuckInit the state after init must be L^33 of the load
	// (32 init rounds + 1 discarded keystream-mode clock).
	c := New(Fault{FSMStuckInit: true})
	c.Init(paperKey, paperIV)
	want := Gamma(paperKey, paperIV)
	for i := 0; i < 33; i++ {
		want = StepForward(want)
	}
	if got := c.LFSR(); got != want {
		t.Fatalf("faulted init state %08x, want L^33(γ) %08x", got, want)
	}
}

func TestRecoverRejectsHealthyKeystream(t *testing.T) {
	c := New(Fault{})
	c.Init(paperKey, paperIV)
	z := c.KeystreamWords(16)
	if _, _, _, err := RecoverFromKeystream(z); err == nil {
		t.Fatal("RecoverFromKeystream accepted a non-faulty keystream")
	}
}

func TestRecoverRejectsShortKeystream(t *testing.T) {
	if _, _, _, err := RecoverFromKeystream(make([]uint32, 15)); err == nil {
		t.Fatal("RecoverFromKeystream accepted 15 words")
	}
}

func TestRecoverRandomKeys(t *testing.T) {
	// End-to-end key extraction property over random keys and IVs.
	f := func(kRaw, ivRaw [4]uint32) bool {
		k, iv := Key(kRaw), IV(ivRaw)
		c := New(Fault{FSMStuckInit: true, FSMStuckKeystream: true})
		c.Init(k, iv)
		gotK, gotIV, _, err := RecoverFromKeystream(c.KeystreamWords(16))
		return err == nil && gotK == k && gotIV == iv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeystreamPanicsBeforeInit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Fault{}).KeystreamWords(1)
}

func TestInitStateMatchesInitWithGamma(t *testing.T) {
	a := New(Fault{})
	a.Init(paperKey, paperIV)
	b := New(Fault{})
	b.InitState(Gamma(paperKey, paperIV))
	za, zb := a.KeystreamWords(8), b.KeystreamWords(8)
	for i := range za {
		if za[i] != zb[i] {
			t.Fatalf("InitState diverges from Init at word %d", i)
		}
	}
}

func TestMulAlphaLowByteBijective(t *testing.T) {
	var seen [256]bool
	for i := 0; i < 256; i++ {
		lo := byte(MulAlpha(byte(i)))
		if seen[lo] {
			t.Fatalf("low byte of MULα not bijective: collision at %#02x", lo)
		}
		seen[lo] = true
	}
}

func TestConsistentGamma(t *testing.T) {
	if !ConsistentGamma(Gamma(paperKey, paperIV)) {
		t.Fatal("γ(K, IV) failed its own consistency check")
	}
	bad := Gamma(paperKey, paperIV)
	bad[13] ^= 1
	if ConsistentGamma(bad) {
		t.Fatal("corrupted state passed consistency check")
	}
}

func BenchmarkKeystream(b *testing.B) {
	c := New(Fault{})
	c.Init(paperKey, paperIV)
	buf := make([]uint32, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Keystream(buf[:0], 256)
	}
}

func BenchmarkInit(b *testing.B) {
	c := New(Fault{})
	for i := 0; i < b.N; i++ {
		c.Init(paperKey, paperIV)
	}
}

func BenchmarkRewind33(b *testing.B) {
	var s State
	copy(s[:], tableIV)
	for i := 0; i < b.N; i++ {
		_ = Rewind(s, 33)
	}
}

func TestTTablesReconstructSBoxes(t *testing.T) {
	var t1, t2 [4][256]uint32
	for b := 0; b < 4; b++ {
		t1[b], t2[b] = S1TTable(b), S2TTable(b)
	}
	f := func(w uint32) bool {
		b0, b1, b2, b3 := byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
		s1 := t1[0][b0] ^ t1[1][b1] ^ t1[2][b2] ^ t1[3][b3]
		s2 := t2[0][b0] ^ t2[1][b1] ^ t2[2][b2] ^ t2[3][b3]
		return s1 == S1(w) && s2 == S2(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestETSITestSetKeystream(t *testing.T) {
	// The key/IV implied by the paper's Table V is ETSI test data; the
	// healthy cipher must produce the specification's keystream
	// (implementors' test data, test set 4: z1 = ABEE9704).
	c := New(Fault{})
	c.Init(paperKey, paperIV)
	z := c.KeystreamWords(2)
	if z[0] != 0xABEE9704 || z[1] != 0x7AC31373 {
		t.Fatalf("keystream %08x %08x, want abee9704 7ac31373 (ETSI test set)", z[0], z[1])
	}
}

func TestXorVariantDiffersButSharesLinearCore(t *testing.T) {
	std := New(Fault{})
	std.Init(paperKey, paperIV)
	xv := NewXorVariant(Fault{})
	xv.Init(paperKey, paperIV)
	zs, zx := std.KeystreamWords(8), xv.KeystreamWords(8)
	same := true
	for i := range zs {
		if zs[i] != zx[i] {
			same = false
		}
	}
	if same {
		t.Fatal("SNOW 3G⊕ produced the standard keystream")
	}
	// Under the FSM-disconnect fault both variants reduce to the same
	// linear LFSR, so the attack's key extraction works identically.
	fs := NewXorVariant(Fault{FSMStuckInit: true, FSMStuckKeystream: true})
	fs.Init(paperKey, paperIV)
	k, iv, _, err := RecoverFromKeystream(fs.KeystreamWords(16))
	if err != nil || k != paperKey || iv != paperIV {
		t.Fatalf("fault attack fails on SNOW 3G⊕: %v", err)
	}
}

func TestUpdateMatrixMatchesStepForward(t *testing.T) {
	l := UpdateMatrix()
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		var s State
		for i := range s {
			s[i] = rng.Uint32()
		}
		viaMatrix := VecToState(l.MulVec(StateToVec(s)))
		if viaMatrix != StepForward(s) {
			t.Fatalf("trial %d: matrix and StepForward disagree", trial)
		}
	}
}

func TestUpdateMatrixInvertible(t *testing.T) {
	// The LFSR feedback polynomial is primitive over GF(2^32), so the
	// 512×512 update matrix must have full rank.
	l := UpdateMatrix()
	inv, err := l.Inverse()
	if err != nil {
		t.Fatalf("update matrix singular: %v", err)
	}
	rng := rand.New(rand.NewSource(52))
	var s State
	for i := range s {
		s[i] = rng.Uint32()
	}
	back := VecToState(inv.MulVec(StateToVec(StepForward(s))))
	if back != s {
		t.Fatal("L⁻¹·L ≠ identity on a random state")
	}
	if back2 := VecToState(inv.MulVec(StateToVec(s))); back2 != StepBack(s) {
		t.Fatal("matrix inverse disagrees with the byte-table StepBack")
	}
}

func TestMatrixRecoveryMatchesTableRewind(t *testing.T) {
	c := New(Fault{FSMStuckInit: true, FSMStuckKeystream: true})
	c.Init(paperKey, paperIV)
	z := c.KeystreamWords(16)
	k1, iv1, s1, err1 := RecoverFromKeystream(z)
	k2, iv2, s2, err2 := RecoverFromKeystreamMatrix(z)
	if err1 != nil || err2 != nil {
		t.Fatalf("recovery errors: %v / %v", err1, err2)
	}
	if k1 != k2 || iv1 != iv2 || s1 != s2 {
		t.Fatal("matrix-based recovery disagrees with the table rewind")
	}
	if k2 != paperKey {
		t.Fatalf("matrix recovery got %08x", k2)
	}
}

func BenchmarkMatrixRecovery(b *testing.B) {
	c := New(Fault{FSMStuckInit: true, FSMStuckKeystream: true})
	c.Init(paperKey, paperIV)
	z := c.KeystreamWords(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := RecoverFromKeystreamMatrix(z); err != nil {
			b.Fatal(err)
		}
	}
}
