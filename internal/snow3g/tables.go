// Package snow3g implements the SNOW 3G stream cipher as specified by
// ETSI/SAGE "Specification of the 3GPP Confidentiality and Integrity
// Algorithms UEA2 & UIA2. Document 2: SNOW 3G Specification".
//
// Beyond the reference cipher, the package provides the fault-configurable
// model used by the bitstream modification attack of Moraitis and Dubrova
// (DATE 2020): the FSM output word can be stuck at 0 during initialization
// and/or keystream generation, and the LFSR can be loaded with the all-0
// vector instead of γ(K, IV). It also implements backward LFSR stepping,
// which turns 16 faulty keystream words into the initial state S⁰ and
// hence the key.
package snow3g

// GF(2^8) moduli used by SNOW 3G. poly1B defines the Rijndael field used
// by the S-box S1 and the MULx constant 0x1B; poly169 (x^8+x^6+x^5+x^3+1)
// defines the field over which the Dickson polynomial g49 generating the
// S-box S2 is evaluated. polyA9 is the reduction constant for MULα/DIVα.
const (
	mulxS1Const = 0x1B
	mulxS2Const = 0x69
	alphaConst  = 0xA9
)

// sr is the Rijndael S-box (SR in the SNOW 3G specification), computed at
// package init from its algebraic definition: byte inversion in
// GF(2^8)/x^8+x^4+x^3+x+1 followed by the affine transform with constant
// 0x63. Computing it avoids transcription errors in 256 literals; the test
// suite pins known entries and the paper's keystream tables pin the rest.
var sr [256]byte

// sq is the S-box SQ used by S2, defined in the specification through the
// Dickson polynomial g49(x) = x + x^9 + x^13 + x^15 + x^33 + x^41 + x^45 +
// x^47 + x^49 over GF(2^8)/x^8+x^6+x^5+x^3+1, as SQ(x) = g49(x) ⊕ 0x25.
var sq [256]byte

// mulAlpha and divAlpha are the 8-bit → 32-bit maps MULα and DIVα from the
// specification, precomputed for all byte values. They define the LFSR
// feedback multiplications by α and α⁻¹ in GF(2^32).
var (
	mulAlpha [256]uint32
	divAlpha [256]uint32
)

// invMulAlphaLow inverts the low byte of MULα: invMulAlphaLow[MULα(c)&0xff]
// = c. The map c → MULxPOW(c, 239, 0xA9) is multiplication by a fixed
// non-zero field element and therefore a bijection on bytes; this inverse
// is what makes backward LFSR stepping (key recovery) a table lookup.
var invMulAlphaLow [256]byte

// mulx implements MULx(v, c) from the specification: multiplication of the
// field element v by x, reduced with constant c.
func mulx(v, c byte) byte {
	if v&0x80 != 0 {
		return (v << 1) ^ c
	}
	return v << 1
}

// mulxPow implements MULxPOW(v, i, c): i-fold application of MULx.
func mulxPow(v byte, i int, c byte) byte {
	for ; i > 0; i-- {
		v = mulx(v, c)
	}
	return v
}

// gf8Mul multiplies a and b in GF(2^8) defined by the 9-bit modulus mod
// (e.g. 0x11B for the Rijndael field, 0x169 for the Dickson field).
func gf8Mul(a, b byte, mod uint16) byte {
	var acc uint16
	x := uint16(a)
	for i := 0; i < 8; i++ {
		if b&(1<<i) != 0 {
			acc ^= x << i
		}
	}
	for i := 15; i >= 8; i-- {
		if acc&(1<<i) != 0 {
			acc ^= mod << (i - 8)
		}
	}
	return byte(acc)
}

// gf8Pow raises a to the e-th power in GF(2^8) defined by mod.
func gf8Pow(a byte, e int, mod uint16) byte {
	result := byte(1)
	base := a
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = gf8Mul(result, base, mod)
		}
		base = gf8Mul(base, base, mod)
	}
	return result
}

// rijndaelInverse returns a^-1 in the Rijndael field, with 0 mapped to 0.
// a^254 = a^-1 for non-zero a; 0^254 = 0, so no special case is needed.
func rijndaelInverse(a byte) byte {
	return gf8Pow(a, 254, 0x11B)
}

// srEntry computes the Rijndael S-box at x: affine transform of x^-1.
func srEntry(x byte) byte {
	inv := rijndaelInverse(x)
	var out byte
	for i := 0; i < 8; i++ {
		bit := (inv>>i)&1 ^ (inv>>((i+4)%8))&1 ^ (inv>>((i+5)%8))&1 ^
			(inv>>((i+6)%8))&1 ^ (inv>>((i+7)%8))&1 ^ (0x63>>i)&1
		out |= bit << i
	}
	return out
}

// sqEntry computes SQ(x) = g49(x) ⊕ 0x25 over GF(2^8)/x^8+x^6+x^5+x^3+1.
func sqEntry(x byte) byte {
	const mod = 0x169
	exps := [...]int{1, 9, 13, 15, 33, 41, 45, 47, 49}
	var acc byte
	for _, e := range exps {
		acc ^= gf8Pow(x, e, mod)
	}
	return acc ^ 0x25
}

func init() {
	for i := 0; i < 256; i++ {
		c := byte(i)
		sr[i] = srEntry(c)
		sq[i] = sqEntry(c)
		mulAlpha[i] = uint32(mulxPow(c, 23, alphaConst))<<24 |
			uint32(mulxPow(c, 245, alphaConst))<<16 |
			uint32(mulxPow(c, 48, alphaConst))<<8 |
			uint32(mulxPow(c, 239, alphaConst))
		divAlpha[i] = uint32(mulxPow(c, 16, alphaConst))<<24 |
			uint32(mulxPow(c, 39, alphaConst))<<16 |
			uint32(mulxPow(c, 6, alphaConst))<<8 |
			uint32(mulxPow(c, 64, alphaConst))
	}
	for i := 0; i < 256; i++ {
		invMulAlphaLow[byte(mulAlpha[i])] = byte(i)
	}
}

// MulAlpha exposes the MULα map for use by the hardware model, which
// stores the same table as block-RAM content in the bitstream.
func MulAlpha(c byte) uint32 { return mulAlpha[c] }

// DivAlpha exposes the DIVα map for use by the hardware model.
func DivAlpha(c byte) uint32 { return divAlpha[c] }

// mixS1 applies the S1 MixColumn-style diffusion to the four substituted
// bytes (w0 most significant), producing the 32-bit S-box output.
func mixS1(w uint32) uint32 {
	w0, w1, w2, w3 := sr[byte(w>>24)], sr[byte(w>>16)], sr[byte(w>>8)], sr[byte(w)]
	r0 := mulx(w0, mulxS1Const) ^ w1 ^ w2 ^ mulx(w3, mulxS1Const) ^ w3
	r1 := mulx(w0, mulxS1Const) ^ w0 ^ mulx(w1, mulxS1Const) ^ w2 ^ w3
	r2 := w0 ^ mulx(w1, mulxS1Const) ^ w1 ^ mulx(w2, mulxS1Const) ^ w3
	r3 := w0 ^ w1 ^ mulx(w2, mulxS1Const) ^ w2 ^ mulx(w3, mulxS1Const)
	return uint32(r0)<<24 | uint32(r1)<<16 | uint32(r2)<<8 | uint32(r3)
}

// mixS2 is the S2 analogue of mixS1 with the SQ box and constant 0x69.
func mixS2(w uint32) uint32 {
	w0, w1, w2, w3 := sq[byte(w>>24)], sq[byte(w>>16)], sq[byte(w>>8)], sq[byte(w)]
	r0 := mulx(w0, mulxS2Const) ^ w1 ^ w2 ^ mulx(w3, mulxS2Const) ^ w3
	r1 := mulx(w0, mulxS2Const) ^ w0 ^ mulx(w1, mulxS2Const) ^ w2 ^ w3
	r2 := w0 ^ mulx(w1, mulxS2Const) ^ w1 ^ mulx(w2, mulxS2Const) ^ w3
	r3 := w0 ^ w1 ^ mulx(w2, mulxS2Const) ^ w2 ^ mulx(w3, mulxS2Const)
	return uint32(r0)<<24 | uint32(r1)<<16 | uint32(r2)<<8 | uint32(r3)
}

// S1 is the FSM S-box updating R2 from R1.
func S1(w uint32) uint32 { return mixS1(w) }

// S2 is the FSM S-box updating R3 from R2.
func S2(w uint32) uint32 { return mixS2(w) }

// SR exposes the Rijndael byte substitution (for BRAM content generation).
func SR(x byte) byte { return sr[x] }

// tTable builds the 8-bit → 32-bit contribution table of input byte
// position b (0 = most significant) for an AES-style S-box: the MixColumn
// matrix column applied to the substituted byte. The full S-box output is
// the XOR of the four tables — the T-table decomposition hardware
// implementations store in block RAM.
func tTable(box *[256]byte, c byte, b int) [256]uint32 {
	var t [256]uint32
	for x := 0; x < 256; x++ {
		s := box[x]
		m := mulx(s, c)
		var r0, r1, r2, r3 byte
		switch b {
		case 0:
			r0, r1, r2, r3 = m, m^s, s, s
		case 1:
			r0, r1, r2, r3 = s, m, m^s, s
		case 2:
			r0, r1, r2, r3 = s, s, m, m^s
		case 3:
			r0, r1, r2, r3 = m^s, s, s, m
		default:
			panic("snow3g: byte position out of range")
		}
		t[x] = uint32(r0)<<24 | uint32(r1)<<16 | uint32(r2)<<8 | uint32(r3)
	}
	return t
}

// S1TTable returns the T-table of S1 for input byte position b (0 = MSB).
func S1TTable(b int) [256]uint32 { return tTable(&sr, mulxS1Const, b) }

// S2TTable returns the T-table of S2 for input byte position b (0 = MSB).
func S2TTable(b int) [256]uint32 { return tTable(&sq, mulxS2Const, b) }

// SQ exposes the Dickson byte substitution (for BRAM content generation).
func SQ(x byte) byte { return sq[x] }
