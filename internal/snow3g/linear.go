package snow3g

import (
	"snowbma/internal/gf2"
)

// Linear-algebra view of the faulted cipher: with the FSM disconnected,
// one LFSR step is a linear map L on GF(2)^512. This file builds L as an
// explicit matrix and re-derives the key extraction by matrix inversion
// — the textbook route of the paper's reference [45] — cross-checking
// the byte-table rewind of StepBack.

// StateBits is the LFSR state size in bits.
const StateBits = 16 * 32

// StateToVec packs a state into a GF(2) vector: bit 32·i + b carries bit
// b of stage s_i.
func StateToVec(s State) gf2.Vec {
	v := gf2.NewVec(StateBits)
	for i, word := range s {
		for b := 0; b < 32; b++ {
			if word>>uint(b)&1 == 1 {
				v.Set(32*i+b, true)
			}
		}
	}
	return v
}

// VecToState unpacks a GF(2) vector into an LFSR state.
func VecToState(v gf2.Vec) State {
	var s State
	for i := range s {
		for b := 0; b < 32; b++ {
			if v.Get(32*i + b) {
				s[i] |= 1 << uint(b)
			}
		}
	}
	return s
}

// UpdateMatrix returns the 512×512 matrix of the linear LFSR step L
// (keystream mode, FSM output excluded).
func UpdateMatrix() *gf2.Matrix {
	return gf2.FromFunc(StateBits, func(v gf2.Vec) gf2.Vec {
		return StateToVec(StepForward(VecToState(v)))
	})
}

// RecoverFromKeystreamMatrix performs the paper's key extraction through
// explicit matrix algebra: S⁰ = (L⁻¹)³³ · S³³. It must agree bit for bit
// with RecoverFromKeystream.
func RecoverFromKeystreamMatrix(z []uint32) (Key, IV, State, error) {
	if len(z) < 16 {
		return Key{}, IV{}, State{}, errShortKeystream(len(z))
	}
	var s33 State
	copy(s33[:], z[:16])
	l := UpdateMatrix()
	inv, err := l.Inverse()
	if err != nil {
		return Key{}, IV{}, State{}, err
	}
	s0 := VecToState(inv.Pow(33).MulVec(StateToVec(s33)))
	if !ConsistentGamma(s0) {
		return Key{}, IV{}, s0, errNotGamma
	}
	return KeyFromState(s0), IVFromState(s0), s0, nil
}
