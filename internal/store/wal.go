package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// WAL file layout:
//
//	8 bytes  magic "SNOWWAL1"
//	repeated record frames:
//	  4 bytes  big-endian payload length
//	  4 bytes  IEEE CRC32 of the payload
//	  N bytes  JSON-encoded Record
//
// Appends are single sequential writes, so a crash mid-append leaves at
// most one incomplete frame at the tail — Open detects it (ErrTruncated
// from DecodeLog), truncates the file back to the last complete record
// and keeps going. A complete frame whose checksum does not match its
// payload can not be produced by a torn append; it means the log bytes
// were damaged after being written, and Open refuses the log with
// ErrChecksum rather than silently dropping history.

// walMagic identifies (and versions) the log format.
var walMagic = []byte("SNOWWAL1")

// MaxRecordSize bounds a single record payload (and therefore how much
// a decoder will allocate on the say-so of a length field). A corrupt
// length above it is ErrTooLarge, not an allocation.
const MaxRecordSize = 16 << 20

const frameHeaderSize = 8 // 4-byte length + 4-byte CRC32

// EncodeLog renders records into the WAL byte format (magic included).
// Sequence numbers are written as given; use it for tests and corpus
// generation, not to bypass Append's sequencing.
func EncodeLog(recs []Record) ([]byte, error) {
	buf := append([]byte(nil), walMagic...)
	for _, r := range recs {
		frame, err := encodeFrame(r)
		if err != nil {
			return nil, err
		}
		buf = append(buf, frame...)
	}
	return buf, nil
}

func encodeFrame(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRecordDecode, err)
	}
	if len(payload) > MaxRecordSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)
	return frame, nil
}

// DecodeLog parses WAL bytes. It returns the records of the longest
// valid prefix, the byte length of that prefix, and the typed error
// that stopped the scan (nil when the whole input decoded). It never
// panics, whatever the input: every failure mode maps onto one of
// ErrBadMagic, ErrTruncated, ErrTooLarge, ErrChecksum, ErrRecordDecode
// or ErrSeqOrder.
func DecodeLog(data []byte) ([]Record, int, error) {
	if len(data) < len(walMagic) {
		if len(data) == 0 {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("%w: %d-byte file is shorter than the header", ErrBadMagic, len(data))
	}
	if string(data[:len(walMagic)]) != string(walMagic) {
		return nil, 0, fmt.Errorf("%w: got %q", ErrBadMagic, data[:len(walMagic)])
	}
	var recs []Record
	var lastSeq uint64
	off := len(walMagic)
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeaderSize {
			return recs, off, fmt.Errorf("%w: %d-byte partial frame header at offset %d",
				ErrTruncated, len(rest), off)
		}
		n := int(binary.BigEndian.Uint32(rest[0:4]))
		if n > MaxRecordSize {
			return recs, off, fmt.Errorf("%w: frame at offset %d claims %d bytes", ErrTooLarge, off, n)
		}
		if len(rest) < frameHeaderSize+n {
			return recs, off, fmt.Errorf("%w: frame at offset %d claims %d payload bytes, %d remain",
				ErrTruncated, off, n, len(rest)-frameHeaderSize)
		}
		payload := rest[frameHeaderSize : frameHeaderSize+n]
		if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(rest[4:8]); got != want {
			return recs, off, fmt.Errorf("%w: frame at offset %d: crc %08x, want %08x",
				ErrChecksum, off, got, want)
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return recs, off, fmt.Errorf("%w: frame at offset %d: %v", ErrRecordDecode, off, err)
		}
		if r.Seq <= lastSeq {
			return recs, off, fmt.Errorf("%w: frame at offset %d: seq %d after %d",
				ErrSeqOrder, off, r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		recs = append(recs, r)
		off += frameHeaderSize + n
	}
	return recs, off, nil
}

// WALOptions parameterize OpenWALOptions.
type WALOptions struct {
	// SyncEachAppend fsyncs the log after every append, extending the
	// durability guarantee from "survives a process crash" (the kernel
	// page cache holds unsynced writes through SIGKILL, the fault the
	// fleet smoke test injects) to "survives power loss". Off by
	// default: an fsync per lifecycle transition is measurable at
	// fleet job rates.
	SyncEachAppend bool
}

// WAL is the append-only file JobStore. Safe for concurrent Append.
type WAL struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	opt    WALOptions
	seq    uint64
	count  int // records appended since open/compact (live frames)
	closed bool

	// RepairedBytes is the torn-tail byte count Open truncated away
	// (0 for a clean log). Informational.
	RepairedBytes int
}

// OpenWAL opens (or creates) the log at path with default options and
// replays it far enough to resume sequencing. A torn tail from a crash
// is repaired in place; deeper corruption is returned as a typed error.
func OpenWAL(path string) (*WAL, error) { return OpenWALOptions(path, WALOptions{}) }

// OpenWALOptions is OpenWAL with explicit options.
func OpenWALOptions(path string, opt WALOptions) (*WAL, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	recs, valid, derr := DecodeLog(data)
	repaired := 0
	switch {
	case derr == nil:
	case errors.Is(derr, ErrTruncated):
		// The expected crash shape: keep the valid prefix, drop the
		// torn frame.
		repaired = len(data) - valid
	default:
		return nil, fmt.Errorf("store: open %s: %w", path, derr)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	if len(data) == 0 {
		if _, err := f.Write(walMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: write header %s: %w", path, err)
		}
		valid = len(walMagic)
	}
	if repaired > 0 {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: repair-truncate %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek %s: %w", path, err)
	}
	w := &WAL{f: f, path: path, opt: opt, count: len(recs), RepairedBytes: repaired}
	if len(recs) > 0 {
		w.seq = recs[len(recs)-1].Seq
	}
	return w, nil
}

// Append implements JobStore.
func (w *WAL) Append(r Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	w.seq++
	r.Seq = w.seq
	if r.TimeUS == 0 {
		r.TimeUS = time.Now().UnixMicro()
	}
	frame, err := encodeFrame(r)
	if err != nil {
		w.seq--
		return 0, err
	}
	if _, err := w.f.Write(frame); err != nil {
		// The tail may now hold a partial frame; the next Open repairs
		// it. Do not advance past the failed record.
		w.seq--
		return 0, fmt.Errorf("store: append %s: %w", w.path, err)
	}
	if w.opt.SyncEachAppend {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("store: sync %s: %w", w.path, err)
		}
	}
	w.count++
	return r.Seq, nil
}

// Load implements JobStore: it re-reads the file, so records appended
// after Open are included. A torn tail (crash between Open and Load —
// possible only if an external writer shares the file) is tolerated the
// same way Open tolerates it.
func (w *WAL) Load() ([]Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	data, err := os.ReadFile(w.path)
	if err != nil {
		return nil, fmt.Errorf("store: load %s: %w", w.path, err)
	}
	recs, _, derr := DecodeLog(data)
	if derr != nil && !errors.Is(derr, ErrTruncated) {
		return nil, fmt.Errorf("store: load %s: %w", w.path, derr)
	}
	return recs, nil
}

// Count reports how many live record frames the log holds (replayed at
// open plus appended since). Compaction policy reads it.
func (w *WAL) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Compact implements JobStore: the snapshot is written to a temp file
// (re-sequenced from 1), fsynced and atomically renamed over the log.
// A crash anywhere during Compact leaves either the old log or the new
// one, never a mix.
func (w *WAL) Compact(snapshot []Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	for i := range snapshot {
		snapshot[i].Seq = uint64(i + 1)
	}
	data, err := EncodeLog(snapshot)
	if err != nil {
		return err
	}
	tmp := w.path + ".compact"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact %s: %w", w.path, err)
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compact write %s: %w", tmp, err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compact sync %s: %w", tmp, err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact rename %s: %w", w.path, err)
	}
	// Re-open the append handle on the new inode; the old handle points
	// at the unlinked pre-compact file.
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact reopen %s: %w", w.path, err)
	}
	w.f.Close()
	w.f = f
	w.seq = uint64(len(snapshot))
	w.count = len(snapshot)
	return nil
}

// Close implements JobStore. The log is synced on the way out so a
// clean shutdown is durable even without SyncEachAppend.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	serr := w.f.Sync()
	cerr := w.f.Close()
	if serr != nil {
		return fmt.Errorf("store: close-sync %s: %w", w.path, serr)
	}
	if cerr != nil {
		return fmt.Errorf("store: close %s: %w", w.path, cerr)
	}
	return nil
}

// Path returns the log file path.
func (w *WAL) Path() string { return w.path }

// DefaultWALName is the log filename `serve -store DIR` and the fleet
// coordinator use inside their store directories.
const DefaultWALName = "jobs.wal"

// OpenDir opens DIR/jobs.wal, creating the directory if needed — the
// convenience entry the CLI uses.
func OpenDir(dir string) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: mkdir %s: %w", dir, err)
	}
	return OpenWAL(filepath.Join(dir, DefaultWALName))
}
