// Package store is the durable job/result store behind the service
// engine: every job lifecycle transition (queued → running → terminal)
// is appended as a Record, and an engine that restarts replays the
// records to rebuild its job table — finished jobs stay queryable,
// incomplete jobs are re-enqueued, and nothing is lost or duplicated.
//
// Two implementations ship:
//
//   - Mem, an in-memory store for tests and for callers that want the
//     engine's recovery machinery without a filesystem.
//   - WAL, an append-only file of length-prefixed, checksummed JSON
//     records with crash-tolerant replay (a torn tail is repaired, any
//     deeper corruption surfaces as a typed error, never a panic) and
//     snapshot compaction.
package store

import (
	"encoding/json"
	"errors"
	"sync"
)

// Typed store errors. Decode/replay failures always wrap one of these,
// so recovery code can distinguish "normal crash tail" from "the log is
// damaged" without string matching.
var (
	// ErrClosed: the store has been closed; no further appends.
	ErrClosed = errors.New("store: closed")
	// ErrBadMagic: the file does not start with the WAL magic header —
	// it is not a job log (or is a future incompatible version).
	ErrBadMagic = errors.New("store: bad magic header")
	// ErrTruncated: the log ends mid-record — the expected shape after
	// a crash during an append. Open repairs it by truncating to the
	// last complete record; Decode surfaces it to the caller.
	ErrTruncated = errors.New("store: truncated record at log tail")
	// ErrChecksum: a record frame is complete but its checksum does not
	// match the payload — bit rot or an overwritten region, not a torn
	// tail.
	ErrChecksum = errors.New("store: record checksum mismatch")
	// ErrRecordDecode: a record frame carried a checksum-valid payload
	// that is not a valid JSON record.
	ErrRecordDecode = errors.New("store: record payload decode failed")
	// ErrSeqOrder: record sequence numbers must be strictly increasing;
	// a duplicate or regressing seq means the log was stitched or
	// double-written.
	ErrSeqOrder = errors.New("store: record sequence out of order")
	// ErrTooLarge: a record frame claims a payload larger than
	// MaxRecordSize — treated as corruption, not an allocation request.
	ErrTooLarge = errors.New("store: record length exceeds maximum")
)

// Record is one persisted job lifecycle transition. A job's history is
// the ordered sequence of its records; the latest record wins when
// folding history into current state. Spec is carried on queued records
// (it is everything needed to re-run the job); Result and Error on
// terminal ones.
type Record struct {
	// Seq is assigned by the store on Append: strictly increasing
	// within one log, validated on replay.
	Seq uint64 `json:"seq"`
	// TimeUS is the append wall-clock time in microseconds since the
	// Unix epoch (informational; replay does not interpret it).
	TimeUS int64 `json:"t_us,omitempty"`
	// Job is the engine-assigned job id ("job-0007").
	Job string `json:"job"`
	// State is the service job state this record transitions to.
	State string `json:"state"`
	// Tenant and Kind mirror the job spec for observability and for
	// fair re-admission on recovery.
	Tenant string `json:"tenant,omitempty"`
	Kind   string `json:"kind,omitempty"`
	// Recovered marks a queued record written by recovery replay
	// (an incomplete job re-admitted after a restart).
	Recovered bool `json:"recovered,omitempty"`
	// Spec is the JSON-encoded service.JobSpec (queued records).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Error is the terminal error string (failed/cancelled records).
	Error string `json:"error,omitempty"`
	// Result is the JSON-encoded job result (done records).
	Result json.RawMessage `json:"result,omitempty"`
}

// JobStore persists job lifecycle records. Implementations must be safe
// for concurrent Append from multiple goroutines; Load and Compact are
// called only from engine startup/maintenance paths.
type JobStore interface {
	// Append persists one record, assigns its sequence number and
	// returns it.
	Append(r Record) (uint64, error)
	// Load returns every live record in append order.
	Load() ([]Record, error)
	// Compact atomically replaces the log contents with the given
	// snapshot records (they are re-sequenced from 1). Callers pass the
	// folded per-job state; history older than the snapshot is dropped.
	Compact(snapshot []Record) error
	// Close releases the store. Further Appends fail with ErrClosed.
	Close() error
}

// Mem is the in-memory JobStore: a mutex-guarded record slice. It backs
// engine tests and embeds the same seq discipline as the WAL.
type Mem struct {
	mu     sync.Mutex
	recs   []Record
	seq    uint64
	closed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// Append implements JobStore.
func (m *Mem) Append(r Record) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	m.seq++
	r.Seq = m.seq
	m.recs = append(m.recs, r)
	return r.Seq, nil
}

// Load implements JobStore.
func (m *Mem) Load() ([]Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, len(m.recs))
	copy(out, m.recs)
	return out, nil
}

// Compact implements JobStore.
func (m *Mem) Compact(snapshot []Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.recs = m.recs[:0]
	m.seq = 0
	for _, r := range snapshot {
		m.seq++
		r.Seq = m.seq
		m.recs = append(m.recs, r)
	}
	return nil
}

// Close implements JobStore.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// FoldLatest reduces a record history to the latest record per job, in
// first-seen job order. The engine's recovery and the WAL's compaction
// both use it: the folded view is exactly the state a restarted engine
// needs (terminal jobs keep their result/error; incomplete jobs keep
// the spec from their queued record so they can be re-admitted).
func FoldLatest(recs []Record) []Record {
	idx := make(map[string]int, len(recs))
	var out []Record
	for _, r := range recs {
		i, ok := idx[r.Job]
		if !ok {
			idx[r.Job] = len(out)
			out = append(out, r)
			continue
		}
		// Later records win, but the spec/tenant/kind captured at
		// submission must survive the fold — running/terminal records
		// do not repeat them.
		prev := out[i]
		if r.Spec == nil {
			r.Spec = prev.Spec
		}
		if r.Tenant == "" {
			r.Tenant = prev.Tenant
		}
		if r.Kind == "" {
			r.Kind = prev.Kind
		}
		out[i] = r
	}
	return out
}
