package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func rec(seq uint64, job, state string) Record {
	return Record{Seq: seq, Job: job, State: state, Kind: "attack", Tenant: "t"}
}

func mustEncode(t *testing.T, recs ...Record) []byte {
	t.Helper()
	data, err := EncodeLog(recs)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDecodeLogRoundTrip(t *testing.T) {
	in := []Record{
		{Seq: 1, Job: "job-0001", State: "queued", Kind: "attack", Tenant: "acme",
			Spec: json.RawMessage(`{"kind":"attack"}`)},
		{Seq: 2, Job: "job-0001", State: "running"},
		{Seq: 5, Job: "job-0001", State: "done", Result: json.RawMessage(`{"verified":true}`)},
	}
	recs, n, err := DecodeLog(mustEncode(t, in...))
	if err != nil {
		t.Fatalf("DecodeLog: %v", err)
	}
	if n != len(mustEncode(t, in...)) {
		t.Fatalf("consumed %d bytes, want all", n)
	}
	if !reflect.DeepEqual(recs, in) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", recs, in)
	}
}

func TestDecodeLogEmptyAndHeaderOnly(t *testing.T) {
	if recs, _, err := DecodeLog(nil); err != nil || recs != nil {
		t.Fatalf("empty input: %v %v", recs, err)
	}
	if recs, _, err := DecodeLog(mustEncode(t)); err != nil || recs != nil {
		t.Fatalf("header-only input: %v %v", recs, err)
	}
}

// TestDecodeLogCorruption is the table pinning every corruption class
// onto its typed error: recovery code must be able to tell a crash tail
// from damaged history, and none of these may panic.
func TestDecodeLogCorruption(t *testing.T) {
	base := mustEncode(t, rec(1, "job-0001", "queued"), rec(2, "job-0001", "done"))
	headerLen := len(mustEncode(t))
	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		wantErr  error
		wantRecs int // records surviving in the valid prefix
	}{
		{
			name:    "bad magic",
			mutate:  func(b []byte) []byte { b[0] ^= 0xFF; return b },
			wantErr: ErrBadMagic,
		},
		{
			name:    "short file",
			mutate:  func(b []byte) []byte { return b[:3] },
			wantErr: ErrBadMagic,
		},
		{
			name:     "truncated tail mid-payload",
			mutate:   func(b []byte) []byte { return b[:len(b)-5] },
			wantErr:  ErrTruncated,
			wantRecs: 1,
		},
		{
			name:     "truncated tail mid-header",
			mutate:   func(b []byte) []byte { return b[:len(b)-3-frameLen(t, rec(2, "job-0001", "done"))+frameHeaderSize] },
			wantErr:  ErrTruncated,
			wantRecs: 1,
		},
		{
			name: "bit-flipped payload fails checksum",
			mutate: func(b []byte) []byte {
				b[len(b)-2] ^= 0x01 // inside the final record's payload
				return b
			},
			wantErr:  ErrChecksum,
			wantRecs: 1,
		},
		{
			name: "bit-flipped checksum field",
			mutate: func(b []byte) []byte {
				// First record's CRC byte: header + 4-byte len, then CRC.
				b[headerLen+4] ^= 0x80
				return b
			},
			wantErr:  ErrChecksum,
			wantRecs: 0,
		},
		{
			name: "absurd length field",
			mutate: func(b []byte) []byte {
				binary.BigEndian.PutUint32(b[headerLen:], uint32(MaxRecordSize+1))
				return b
			},
			wantErr:  ErrTooLarge,
			wantRecs: 0,
		},
		{
			name: "duplicate seq",
			mutate: func([]byte) []byte {
				return mustEncode(t, rec(3, "job-0001", "queued"), rec(3, "job-0002", "queued"))
			},
			wantErr:  ErrSeqOrder,
			wantRecs: 1,
		},
		{
			name: "regressing seq",
			mutate: func([]byte) []byte {
				return mustEncode(t, rec(7, "job-0001", "queued"), rec(2, "job-0002", "queued"))
			},
			wantErr:  ErrSeqOrder,
			wantRecs: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), base...))
			recs, _, err := DecodeLog(data)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if len(recs) != tc.wantRecs {
				t.Fatalf("prefix records = %d, want %d", len(recs), tc.wantRecs)
			}
		})
	}
}

func frameLen(t *testing.T, r Record) int {
	t.Helper()
	f, err := encodeFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	return len(f)
}

func TestWALAppendLoadReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := json.RawMessage(`{"kind":"attack","tenant":"acme"}`)
	if _, err := w.Append(Record{Job: "job-0001", State: "queued", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Record{Job: "job-0001", State: "running"}); err != nil {
		t.Fatal(err)
	}
	seq, err := w.Append(Record{Job: "job-0001", State: "done"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("seq = %d, want 3", seq)
	}
	recs, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].State != "done" || string(recs[0].Spec) != string(spec) {
		t.Fatalf("loaded %+v", recs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Record{Job: "x", State: "queued"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}

	// Reopen resumes sequencing after the replayed records.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.RepairedBytes != 0 {
		t.Fatalf("clean log reported %d repaired bytes", w2.RepairedBytes)
	}
	if seq, err := w2.Append(Record{Job: "job-0002", State: "queued"}); err != nil || seq != 4 {
		t.Fatalf("resumed seq = %d (%v), want 4", seq, err)
	}
}

// TestWALTornTailRepair crashes mid-append (simulated by chopping bytes
// off the file) and verifies Open keeps the valid prefix, reports the
// repair, and appends cleanly after it.
func TestWALTornTailRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(rec(0, "job-0001", "queued")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("open torn log: %v", err)
	}
	defer w2.Close()
	if w2.RepairedBytes == 0 {
		t.Fatal("torn tail not reported as repaired")
	}
	recs, err := w2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("post-repair records = %d, want 2", len(recs))
	}
	if _, err := w2.Append(rec(0, "job-0002", "queued")); err != nil {
		t.Fatal(err)
	}
	recs, err = w2.Load()
	if err != nil || len(recs) != 3 {
		t.Fatalf("post-repair append: %d records, %v", len(recs), err)
	}
}

// TestWALRefusesDamagedHistory: a bit flip that is NOT at the tail is
// damage, not a crash artifact — Open must refuse with ErrChecksum
// instead of silently truncating away good history after it.
func TestWALRefusesDamagedHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(rec(0, "job-0001", "queued")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(walMagic)+frameHeaderSize+2] ^= 0x40 // first record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("open damaged log: %v, want ErrChecksum", err)
	}
}

func TestWALCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 10; i++ {
		if _, err := w.Append(rec(0, "job-0001", "queued")); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 10 {
		t.Fatalf("count = %d", w.Count())
	}
	snap := []Record{
		{Job: "job-0001", State: "done", Kind: "attack"},
		{Job: "job-0002", State: "queued", Kind: "census", Spec: json.RawMessage(`{}`)},
	}
	if err := w.Compact(snap); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 {
		t.Fatalf("post-compact count = %d, want 2", w.Count())
	}
	recs, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("post-compact records %+v", recs)
	}
	// Appends continue on the new log.
	if seq, err := w.Append(rec(0, "job-0003", "queued")); err != nil || seq != 3 {
		t.Fatalf("post-compact append seq = %d (%v)", seq, err)
	}
}

func TestMemStore(t *testing.T) {
	m := NewMem()
	if _, err := m.Append(Record{Job: "a", State: "queued"}); err != nil {
		t.Fatal(err)
	}
	if seq, err := m.Append(Record{Job: "a", State: "done"}); err != nil || seq != 2 {
		t.Fatalf("seq = %d (%v)", seq, err)
	}
	recs, _ := m.Load()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	recs[0].Job = "mutated" // Load must return a copy
	recs2, _ := m.Load()
	if recs2[0].Job != "a" {
		t.Fatal("Load aliased internal state")
	}
	if err := m.Compact([]Record{{Job: "a", State: "done"}}); err != nil {
		t.Fatal(err)
	}
	recs3, _ := m.Load()
	if len(recs3) != 1 || recs3[0].Seq != 1 {
		t.Fatalf("post-compact %+v", recs3)
	}
	m.Close()
	if _, err := m.Append(Record{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

func TestFoldLatest(t *testing.T) {
	spec := json.RawMessage(`{"kind":"attack"}`)
	recs := []Record{
		{Seq: 1, Job: "a", State: "queued", Kind: "attack", Tenant: "x", Spec: spec},
		{Seq: 2, Job: "b", State: "queued", Kind: "census", Spec: spec},
		{Seq: 3, Job: "a", State: "running"},
		{Seq: 4, Job: "a", State: "done", Result: json.RawMessage(`{"ok":true}`)},
		{Seq: 5, Job: "b", State: "running"},
	}
	folded := FoldLatest(recs)
	if len(folded) != 2 {
		t.Fatalf("folded to %d, want 2", len(folded))
	}
	a, b := folded[0], folded[1]
	if a.Job != "a" || a.State != "done" || a.Kind != "attack" || a.Tenant != "x" ||
		string(a.Spec) != string(spec) || a.Result == nil {
		t.Fatalf("job a folded to %+v", a)
	}
	if b.Job != "b" || b.State != "running" || b.Kind != "census" || string(b.Spec) != string(spec) {
		t.Fatalf("job b folded to %+v", b)
	}
}
