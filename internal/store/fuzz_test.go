package store

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// FuzzWALDecode attacks the log decoder with arbitrary bytes. The
// contract under fuzz: DecodeLog never panics, never allocates on the
// say-so of a corrupt length field, always returns one of the typed
// errors when it fails, and the valid prefix it does return re-encodes
// to bytes that decode to the same records (decode∘encode fixpoint).
// This is the recovery-path guarantee: whatever a crash (or bit rot)
// leaves on disk, a restarting engine gets typed errors and a usable
// prefix, not a panic.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SNOWWAL1"))
	f.Add([]byte("not a wal file"))
	if seed, err := EncodeLog([]Record{
		{Seq: 1, Job: "job-0001", State: "queued", Kind: "attack", Tenant: "acme",
			Spec: json.RawMessage(`{"kind":"attack","iv":[1,2,3,4]}`)},
		{Seq: 2, Job: "job-0001", State: "running"},
		{Seq: 3, Job: "job-0001", State: "done", Result: json.RawMessage(`{"verified":true}`)},
	}); err == nil {
		f.Add(seed)
		f.Add(seed[:len(seed)-3])         // torn tail
		flipped := append([]byte(nil), seed...)
		flipped[len(flipped)/2] ^= 0x10   // mid-log bit flip
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n, err := DecodeLog(data)
		if n < 0 || n > len(data) {
			t.Fatalf("valid prefix %d outside input of %d bytes", n, len(data))
		}
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrTruncated) &&
				!errors.Is(err, ErrChecksum) && !errors.Is(err, ErrRecordDecode) &&
				!errors.Is(err, ErrSeqOrder) && !errors.Is(err, ErrTooLarge) {
				t.Fatalf("untyped decode error: %v", err)
			}
		} else if len(data) > 0 && n != len(data) {
			t.Fatalf("nil error but only %d of %d bytes consumed", n, len(data))
		}
		// The surviving prefix must survive a round trip unchanged.
		re, err2 := EncodeLog(recs)
		if err2 != nil {
			t.Fatalf("re-encode of decoded prefix failed: %v", err2)
		}
		recs2, _, err3 := DecodeLog(re)
		if err3 != nil {
			t.Fatalf("decode of re-encoded prefix failed: %v", err3)
		}
		if !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("decode∘encode not a fixpoint:\n got %+v\nwant %+v", recs2, recs)
		}
		// Folding never panics either, whatever the prefix holds.
		_ = FoldLatest(recs)
	})
}
