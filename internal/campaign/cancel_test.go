package campaign

import (
	"context"
	"errors"
	"testing"
	"time"

	"snowbma/internal/core"
)

func TestRunContextCancelledBeforeDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunContext(ctx, Config{Runs: 4, Seed: 11, Parallel: 2})
	if !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("RunContext with cancelled ctx = %v, want core.ErrCancelled", err)
	}
	if rep != nil {
		t.Fatal("cancelled campaign returned a partial report")
	}
	if !errors.Is(Config{Runs: 0}.validate(), ErrConfig) {
		t.Fatal("validate regression")
	}
}

func TestRunContextCancelMidCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	var rep *Report
	var err error
	go func() {
		defer close(done)
		rep, err = RunContext(ctx, Config{Runs: 32, Seed: 3, Parallel: 2})
	}()
	// Let a couple of scenarios start, then pull the plug.
	time.Sleep(150 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not stop within 30s of cancellation")
	}
	if !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("cancelled campaign = %v, want core.ErrCancelled", err)
	}
	if rep != nil {
		t.Fatal("cancelled campaign returned a partial report")
	}
}

func TestRunScenarioContextCancelledOutcome(t *testing.T) {
	scns := GenerateScenarios(Config{Runs: 1, Seed: 19})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunScenarioContext(ctx, scns[0], nil)
	if res.Verdict != VerdictCleanFailure || res.Outcome != OutcomeCancelled {
		t.Fatalf("cancelled scenario classified %s/%s, want %s/%s",
			res.Verdict, res.Outcome, VerdictCleanFailure, OutcomeCancelled)
	}
	if !res.Expected {
		t.Fatal("cancellation must not count as an unexpected verdict")
	}
}
