// Package campaign runs randomized end-to-end attack campaigns: many
// scenarios — each a freshly synthesized victim with its own key, IV,
// placement, decoy configuration, lane width and optional chaos fault —
// executed over a bounded worker pool, with every outcome classified
// into a typed verdict and aggregated into a deterministic JSON report.
//
// The paper demonstrates the attack on a single synthesized design; its
// claims (FINDLUT uniqueness, key-independent exploration, the
// countermeasure's infeasibility bound) are statistical over the space
// of placements, keys and decoy configurations. The campaign engine is
// the correctness-at-scale harness for those claims: a clean scenario
// must end in a verified recovered key, a countermeasure or chaos
// scenario must end in a typed error, and anything else — a panic, a
// wrong key, an unverified success, a golden-model mismatch — is an
// invariant violation that fails the campaign.
//
// Determinism contract: the report is a pure function of (Seed, Runs,
// Chaos, Lanes). Scenario generation is sequential, execution order is
// irrelevant (results land in their scenario's slot), and the report
// carries no wall-clock data, so identical seeds produce byte-identical
// JSON regardless of the worker-pool width.
package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"snowbma/internal/campaign/chaos"
	"snowbma/internal/core"
	"snowbma/internal/obs"
)

// Config parameterizes a campaign.
type Config struct {
	// Runs is the number of scenarios to generate and execute.
	Runs int
	// Parallel bounds the worker pool (0 = NumCPU).
	Parallel int
	// Seed fixes the scenario list; identical seeds reproduce the
	// campaign report byte for byte.
	Seed int64
	// Chaos mixes seeded fault-injection scenarios (about half) into
	// the campaign.
	Chaos bool
	// Lanes pins the candidate-sweep width for every scenario
	// (1..device.MaxLanes); 0 randomizes it per scenario.
	Lanes int
	// Tel optionally records campaign.* spans and counters.
	Tel *obs.Telemetry
}

// ErrConfig is wrapped by Run for invalid campaign configurations.
var ErrConfig = errors.New("campaign: invalid configuration")

func (c Config) validate() error {
	if c.Runs < 1 {
		return fmt.Errorf("%w: Runs must be at least 1, got %d", ErrConfig, c.Runs)
	}
	if c.Parallel < 0 {
		return fmt.Errorf("%w: Parallel must be non-negative, got %d", ErrConfig, c.Parallel)
	}
	if c.Lanes != 0 {
		// Lanes 0 means "randomize per scenario"; anything else must be a
		// valid sweep width by the one shared validator.
		if err := core.ValidateLanes(c.Lanes); err != nil {
			return fmt.Errorf("%w: Lanes: %w", ErrConfig, err)
		}
	}
	return nil
}

// Verdict classifies one scenario's outcome.
type Verdict string

const (
	// VerdictKeyRecovered: the attack recovered and verified the
	// victim's key.
	VerdictKeyRecovered Verdict = "key_recovered"
	// VerdictCleanFailure: the attack failed with a typed error.
	VerdictCleanFailure Verdict = "clean_failure"
	// VerdictInvariantViolation: the pipeline broke its contract —
	// panic, wrong key, unverified success, conformance mismatch or an
	// unbuildable scenario.
	VerdictInvariantViolation Verdict = "invariant_violation"
)

// Outcome tags (Result.Outcome) for machine-readable aggregation.
const (
	OutcomeVerified       = "verified"
	OutcomeCountermeasure = "countermeasure"
	OutcomeFailure        = "failure"
	OutcomePanic          = "panic"
	OutcomeWrongKey       = "wrong_key"
	OutcomeUnverified     = "unverified_success"
	OutcomeBuildFailure   = "build_failure"
	OutcomeConformance    = "conformance_mismatch"
	// OutcomeCancelled: the scenario's context was cancelled mid-attack.
	OutcomeCancelled = "cancelled"
	// Chaos outcomes are "chaos:<fault>".
)

// Result is one executed scenario.
type Result struct {
	Scenario Scenario `json:"scenario"`
	Verdict  Verdict  `json:"verdict"`
	// Outcome is the machine tag: "verified", "countermeasure",
	// "chaos:<fault>", "panic", "wrong_key", ...
	Outcome string `json:"outcome"`
	// Expected reports whether the verdict matches the scenario's
	// contract (ExpectRecovery).
	Expected bool   `json:"expected"`
	Error    string `json:"error,omitempty"`
	Panic    string `json:"panic,omitempty"`
	// Loads is the attack's modeled hardware reconfiguration count.
	Loads int `json:"loads"`
	// PortLoads counts configuration attempts observed at the chaos
	// port (chaos scenarios only).
	PortLoads int `json:"port_loads,omitempty"`
	// Conformance is "ok" when the golden-model stage passed, the
	// mismatch description when it did not.
	Conformance string `json:"conformance"`
}

// Aggregate is the campaign-level tally.
type Aggregate struct {
	KeyRecovered        int            `json:"key_recovered"`
	CleanFailures       int            `json:"clean_failures"`
	InvariantViolations int            `json:"invariant_violations"`
	// Unexpected counts scenarios whose verdict contradicts their
	// contract (includes every invariant violation).
	Unexpected     int            `json:"unexpected"`
	ChaosScenarios int            `json:"chaos_scenarios"`
	TotalLoads     int            `json:"total_loads"`
	ByFault        map[string]int `json:"by_fault,omitempty"`
	ByOutcome      map[string]int `json:"by_outcome"`
}

// Report is the full campaign record. It contains no wall-clock data by
// design: identical (Seed, Runs, Chaos, Lanes) inputs must marshal to
// byte-identical JSON whatever the worker-pool width.
type Report struct {
	Schema    int       `json:"schema"`
	Seed      int64     `json:"seed"`
	Runs      int       `json:"runs"`
	Chaos     bool      `json:"chaos"`
	Lanes     int       `json:"lanes,omitempty"`
	Results   []Result  `json:"results"`
	Aggregate Aggregate `json:"aggregate"`
}

// Healthy reports whether the campaign met its contract: no invariant
// violations and no unexpected verdicts.
func (r *Report) Healthy() bool {
	return r.Aggregate.InvariantViolations == 0 && r.Aggregate.Unexpected == 0
}

// JSON marshals the report deterministically (indented, sorted map
// keys, trailing newline).
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Run executes the campaign: generate the scenario list, execute it
// over a bounded worker pool, classify and aggregate.
func Run(cfg Config) (*Report, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled, no new
// scenarios are dispatched, every in-flight attack stops at its next
// checkpoint, and the campaign returns an error wrapping
// core.ErrCancelled instead of a (partial, non-deterministic) report.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	par := cfg.Parallel
	if par == 0 {
		par = runtime.NumCPU()
	}
	scns := GenerateScenarios(cfg)
	span := cfg.Tel.StartSpan("campaign.run",
		obs.KV("runs", cfg.Runs), obs.KV("parallel", par), obs.KV("chaos", cfg.Chaos))
	defer span.End()
	results := make([]Result, len(scns))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = RunScenarioContext(ctx, scns[i], cfg.Tel)
			}
		}()
	}
dispatch:
	for i := range scns {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		span.SetAttr("cancelled", true)
		return nil, fmt.Errorf("campaign: %w: %v", core.ErrCancelled, cerr)
	}
	rep := &Report{
		Schema:  1,
		Seed:    cfg.Seed,
		Runs:    cfg.Runs,
		Chaos:   cfg.Chaos,
		Lanes:   cfg.Lanes,
		Results: results,
	}
	rep.Aggregate = aggregate(results)
	publish(cfg.Tel, rep)
	span.SetAttr("key_recovered", rep.Aggregate.KeyRecovered)
	span.SetAttr("clean_failures", rep.Aggregate.CleanFailures)
	span.SetAttr("invariant_violations", rep.Aggregate.InvariantViolations)
	span.SetAttr("unexpected", rep.Aggregate.Unexpected)
	return rep, nil
}

// aggregate tallies the results sequentially — the only place counts
// are accumulated, so the report stays independent of execution order.
func aggregate(results []Result) Aggregate {
	a := Aggregate{ByOutcome: map[string]int{}}
	for _, r := range results {
		switch r.Verdict {
		case VerdictKeyRecovered:
			a.KeyRecovered++
		case VerdictCleanFailure:
			a.CleanFailures++
		default:
			a.InvariantViolations++
		}
		if !r.Expected {
			a.Unexpected++
		}
		if r.Scenario.Fault != chaos.None {
			a.ChaosScenarios++
			if a.ByFault == nil {
				a.ByFault = map[string]int{}
			}
			a.ByFault[string(r.Scenario.Fault)]++
		}
		a.TotalLoads += r.Loads
		a.ByOutcome[r.Outcome]++
	}
	return a
}

// publish mirrors the aggregate into the telemetry registry.
func publish(tel *obs.Telemetry, rep *Report) {
	if tel == nil || tel.Metrics == nil {
		return
	}
	tel.Counter("campaign.scenarios").Set(int64(len(rep.Results)))
	tel.Counter("campaign.key_recovered").Set(int64(rep.Aggregate.KeyRecovered))
	tel.Counter("campaign.clean_failures").Set(int64(rep.Aggregate.CleanFailures))
	tel.Counter("campaign.invariant_violations").Set(int64(rep.Aggregate.InvariantViolations))
	tel.Counter("campaign.unexpected").Set(int64(rep.Aggregate.Unexpected))
	tel.Counter("campaign.chaos_scenarios").Set(int64(rep.Aggregate.ChaosScenarios))
	tel.Counter("campaign.total_loads").Set(int64(rep.Aggregate.TotalLoads))
	for _, r := range rep.Results {
		tel.Histogram("campaign.loads").Observe(float64(r.Loads))
	}
}
