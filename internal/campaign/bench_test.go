package campaign

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkCampaignThroughput measures end-to-end scenario throughput
// (full synthesize→attack→verify cycles per second) at worker-pool
// width 1 versus all CPUs. The runs/sec metric is the campaign's
// headline number in BENCH_PR4.json; the two widths pin the pool's
// scaling on the build host.
func BenchmarkCampaignThroughput(b *testing.B) {
	widths := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		widths = append(widths, n)
	}
	for _, par := range widths {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				rep, err := Run(Config{Runs: 6, Parallel: par, Seed: 1, Chaos: true})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Healthy() {
					b.Fatalf("benchmark campaign unhealthy: %+v", rep.Aggregate)
				}
				total += len(rep.Results)
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "runs/sec")
		})
	}
}
