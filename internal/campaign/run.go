package campaign

import (
	"context"
	"errors"
	"fmt"

	"snowbma/internal/bitstream"
	"snowbma/internal/campaign/chaos"
	"snowbma/internal/core"
	"snowbma/internal/device"
	"snowbma/internal/hdl"
	"snowbma/internal/obs"
	"snowbma/internal/snow3g"
	"snowbma/internal/victim"
)

// conformanceWords is how many keystream words the golden-model stage
// compares across the three implementations.
const conformanceWords = 8

// victimConfig translates a scenario's synthesis fields into the shared
// victim-build Config (the same pipeline the facade and the service job
// engine use).
func victimConfig(s Scenario) victim.Config {
	cfg := victim.Config{
		Key:       s.Key,
		Protected: s.Countermeasure == CounterPaper,
		PadFrames: s.PadFrames,
		Seed:      s.DesignSeed,
	}
	if s.Countermeasure == CounterAuto {
		cfg.AutoProtectBits = s.AutoProtectBits
	}
	if s.Encrypted {
		k := victim.DeriveKeys(s.Seed)
		cfg.Encrypt = &k
	}
	return cfg
}

// buildVictim synthesizes the scenario's design and programs a simulated
// FPGA with it, through the shared internal/victim pipeline.
func buildVictim(s Scenario) (*device.FPGA, error) {
	v, err := victim.Build(victimConfig(s))
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return v.Device, nil
}

// conformance cross-checks three implementations of the scenario's
// cipher instance over the first conformanceWords keystream words: the
// snow3g software reference, the gate-level device simulation driven by
// the hdl control protocol, and every lane of a bitsliced device.Batch
// at the scenario's sweep width. It returns "ok" or a description of
// the first mismatch. The stage runs on the bare device, before any
// chaos wrapping — it checks the models against each other, not the
// fault injectors.
func conformance(fpga *device.FPGA, s Scenario) string {
	c := snow3g.New(snow3g.Fault{})
	c.Init(s.Key, s.IV)
	ref := c.KeystreamWords(conformanceWords)
	got := hdl.GenerateKeystream(fpga, s.IV, conformanceWords)
	for t := range ref {
		if got[t] != ref[t] {
			return fmt.Sprintf("hdl keystream word %d: got %08x, reference %08x", t, got[t], ref[t])
		}
	}
	batch, err := fpga.BatchOf(make([]bitstream.PatchSet, s.Lanes))
	if err != nil {
		return fmt.Sprintf("batch build: %v", err)
	}
	lanes := hdl.GenerateKeystreamBatch(batch, s.IV, conformanceWords)
	for L := range lanes {
		for t := range ref {
			if lanes[L][t] != ref[t] {
				return fmt.Sprintf("batch lane %d word %d: got %08x, reference %08x", L, t, lanes[L][t], ref[t])
			}
		}
	}
	return "ok"
}

// runAttack executes the scenario's configured attack flavor against
// the (possibly chaos-wrapped) victim.
func runAttack(ctx context.Context, v core.Victim, s Scenario, tel *obs.Telemetry) (*core.Report, error) {
	atk, err := core.NewAttackCRCMode(v, s.IV, nil, s.RecomputeCRC)
	if err != nil {
		return nil, err
	}
	if err := atk.SetLanes(s.Lanes); err != nil {
		return nil, err
	}
	atk.SetTelemetry(tel)
	atk.SetContext(ctx)
	if s.Census {
		return atk.RunCensusGuided()
	}
	return atk.Run()
}

// RunScenario executes one scenario to completion (no cancellation).
func RunScenario(s Scenario, tel *obs.Telemetry) Result {
	return RunScenarioContext(context.Background(), s, tel)
}

// RunScenarioContext builds the scenario's victim, runs the golden-model
// conformance stage, executes the attack (through the chaos injector
// when the scenario carries a fault) and classifies the outcome. The
// context cancels the attack between phases and sweep chunks; a
// cancelled scenario classifies as a clean failure with the "cancelled"
// outcome, never as an invariant violation.
// It never panics: a panic anywhere in the pipeline is caught and
// recorded as an invariant violation.
func RunScenarioContext(ctx context.Context, s Scenario, tel *obs.Telemetry) (res Result) {
	res.Scenario = s
	res.Conformance = "ok"
	span := tel.StartSpan("campaign.scenario",
		obs.KV("index", s.Index), obs.KV("fault", string(s.Fault)))
	defer span.End()
	defer func() {
		if r := recover(); r != nil {
			res.Verdict = VerdictInvariantViolation
			res.Outcome = OutcomePanic
			res.Panic = fmt.Sprint(r)
			res.Expected = false
		}
		span.SetAttr("verdict", string(res.Verdict))
		span.SetAttr("outcome", res.Outcome)
		tel.Counter("campaign.verdict." + string(res.Verdict)).Inc()
	}()
	fpga, err := buildVictim(s)
	if err != nil {
		// Every scenario the generator emits must synthesize; a build
		// failure is a harness bug, not an attack outcome.
		res.Verdict = VerdictInvariantViolation
		res.Outcome = OutcomeBuildFailure
		res.Error = err.Error()
		return res
	}
	if msg := conformance(fpga, s); msg != "ok" {
		res.Verdict = VerdictInvariantViolation
		res.Outcome = OutcomeConformance
		res.Conformance = msg
		return res
	}
	var target core.Victim = fpga
	var injector *chaos.Device
	if s.Fault != chaos.None {
		injector, err = chaos.Wrap(fpga, s.Fault, s.Seed)
		if err != nil {
			res.Verdict = VerdictInvariantViolation
			res.Outcome = OutcomeBuildFailure
			res.Error = err.Error()
			return res
		}
		target = injector
	}
	rep, err := runAttack(ctx, target, s, tel)
	if injector != nil {
		res.PortLoads = injector.Loads()
	}
	if rep != nil {
		res.Loads = rep.Loads
	}
	if err != nil {
		res.Verdict = VerdictCleanFailure
		res.Error = err.Error()
		if errors.Is(err, core.ErrCancelled) {
			// Cancellation is imposed on the scenario from outside; it
			// says nothing about the attack-vs-victim contract.
			res.Outcome = OutcomeCancelled
			res.Expected = true
			return res
		}
		switch {
		case s.Fault != chaos.None:
			res.Outcome = "chaos:" + string(s.Fault)
		case s.Countermeasure != CounterNone:
			res.Outcome = OutcomeCountermeasure
		default:
			res.Outcome = OutcomeFailure
		}
		res.Expected = !s.ExpectRecovery
		return res
	}
	switch {
	case !rep.Verified:
		res.Verdict = VerdictInvariantViolation
		res.Outcome = OutcomeUnverified
	case rep.Key != s.Key || rep.IV != s.IV:
		res.Verdict = VerdictInvariantViolation
		res.Outcome = OutcomeWrongKey
		res.Error = fmt.Sprintf("recovered key %08x iv %08x, victim key %08x iv %08x",
			rep.Key, rep.IV, s.Key, s.IV)
	default:
		res.Verdict = VerdictKeyRecovered
		res.Outcome = OutcomeVerified
		res.Expected = s.ExpectRecovery
	}
	return res
}
