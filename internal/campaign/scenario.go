package campaign

import (
	"math/rand"

	"snowbma/internal/campaign/chaos"
	"snowbma/internal/device"
	"snowbma/internal/snow3g"
)

// Countermeasure selects the decoy configuration of a scenario's
// technology mapping.
type Countermeasure string

const (
	// CounterNone maps the design without decoys (attackable).
	CounterNone Countermeasure = ""
	// CounterPaper applies the Section VII-A hand-picked five decoy
	// words.
	CounterPaper Countermeasure = "paper"
	// CounterAuto plans decoys automatically to AutoProtectBits.
	CounterAuto Countermeasure = "auto"
)

// Scenario is one randomized end-to-end attack configuration: which
// design is synthesized (key, placement seed, padding, decoys,
// encryption), how the attack runs against it (IV, sweep width, CRC
// mode, census flow) and which chaos fault — if any — is injected into
// the pipeline. Every field is derived deterministically from Seed, so
// a scenario is replayable in isolation.
type Scenario struct {
	Index int   `json:"index"`
	Seed  int64 `json:"seed"`
	// Victim synthesis.
	DesignSeed      int64          `json:"design_seed"`
	Key             snow3g.Key     `json:"key"`
	PadFrames       int            `json:"pad_frames"`
	Countermeasure  Countermeasure `json:"countermeasure,omitempty"`
	AutoProtectBits int            `json:"auto_protect_bits,omitempty"`
	Encrypted       bool           `json:"encrypted"`
	// Attack configuration.
	IV           snow3g.IV `json:"iv"`
	Lanes        int       `json:"lanes"`
	RecomputeCRC bool      `json:"recompute_crc"`
	Census       bool      `json:"census"`
	// Chaos injection (chaos.None when the campaign runs clean).
	Fault chaos.Fault `json:"fault,omitempty"`
	// ExpectRecovery is the scenario's contract: true means the attack
	// must recover the key; false (countermeasure or chaos present)
	// means it must fail with a typed error.
	ExpectRecovery bool `json:"expect_recovery"`
}

// laneChoices is the sweep-width dimension: scalar, narrow, partial
// batches, and each multi-word width (one, two and four register-slot
// words per net).
var laneChoices = []int{1, 2, 8, device.LaneWordBits, 2 * device.LaneWordBits, device.MaxLanes}

// GenerateScenarios derives the campaign's scenario list from the
// master seed. Generation is sequential and independent of Parallel, so
// the list — and therefore the whole report — is a pure function of
// (Seed, Runs, Chaos, Lanes).
func GenerateScenarios(cfg Config) []Scenario {
	master := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Scenario, cfg.Runs)
	faults := chaos.Faults()
	for i := range out {
		s := Scenario{Index: i, Seed: master.Int63()}
		sr := rand.New(rand.NewSource(s.Seed))
		s.Key = snow3g.Key{sr.Uint32(), sr.Uint32(), sr.Uint32(), sr.Uint32()}
		s.IV = snow3g.IV{sr.Uint32(), sr.Uint32(), sr.Uint32(), sr.Uint32()}
		s.DesignSeed = 1 + sr.Int63n(1<<32)
		s.Lanes = laneChoices[sr.Intn(len(laneChoices))]
		if cfg.Lanes != 0 {
			s.Lanes = cfg.Lanes
		}
		if sr.Intn(4) == 0 {
			s.PadFrames = 1 + sr.Intn(2)
		}
		// Decoy configuration: ~1/5 of scenarios carry a countermeasure,
		// a quarter of those the automatically planned variant.
		if sr.Intn(5) == 0 {
			if sr.Intn(4) == 0 {
				s.Countermeasure = CounterAuto
				s.AutoProtectBits = 128
			} else {
				s.Countermeasure = CounterPaper
			}
		}
		s.Encrypted = sr.Intn(4) == 0
		if !s.Encrypted {
			s.RecomputeCRC = sr.Intn(4) == 0
		}
		s.Census = sr.Intn(8) == 0
		if cfg.Chaos && sr.Intn(2) == 0 {
			s.Fault = faults[sr.Intn(len(faults))]
		}
		s.ExpectRecovery = s.Countermeasure == CounterNone && s.Fault == chaos.None
		out[i] = s
	}
	return out
}
