package campaign

import (
	"bytes"
	"errors"
	"testing"

	"snowbma/internal/campaign/chaos"
	"snowbma/internal/device"
	"snowbma/internal/obs"
)

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero runs", Config{Runs: 0}},
		{"negative runs", Config{Runs: -3}},
		{"negative parallel", Config{Runs: 1, Parallel: -1}},
		{"negative lanes", Config{Runs: 1, Lanes: -1}},
		{"lanes over max", Config{Runs: 1, Lanes: device.MaxLanes + 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.cfg); !errors.Is(err, ErrConfig) {
				t.Fatalf("Run(%+v) = %v, want ErrConfig", tc.cfg, err)
			}
		})
	}
}

func TestGenerateScenariosDeterministic(t *testing.T) {
	cfg := Config{Runs: 64, Seed: 42, Chaos: true}
	a := GenerateScenarios(cfg)
	b := GenerateScenarios(cfg)
	if len(a) != 64 {
		t.Fatalf("generated %d scenarios, want 64", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scenario %d differs between identical generations:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	c := GenerateScenarios(Config{Runs: 64, Seed: 43, Chaos: true})
	same := 0
	for i := range a {
		if a[i].Key == c[i].Key {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different master seeds generated identical key sequences")
	}
}

func TestGenerateScenariosCoverage(t *testing.T) {
	scns := GenerateScenarios(Config{Runs: 200, Seed: 7, Chaos: true})
	faults := map[chaos.Fault]int{}
	lanes := map[int]int{}
	var counter, encrypted, census, recompute, pad int
	for _, s := range scns {
		faults[s.Fault]++
		lanes[s.Lanes]++
		if s.Countermeasure != CounterNone {
			counter++
		}
		if s.Encrypted {
			encrypted++
		}
		if s.Census {
			census++
		}
		if s.RecomputeCRC {
			recompute++
		}
		if s.PadFrames > 0 {
			pad++
		}
		// The contract must be consistent with the dimensions.
		want := s.Countermeasure == CounterNone && s.Fault == chaos.None
		if s.ExpectRecovery != want {
			t.Fatalf("scenario %d: ExpectRecovery=%v inconsistent with cm=%q fault=%q",
				s.Index, s.ExpectRecovery, s.Countermeasure, s.Fault)
		}
		if s.Encrypted && s.RecomputeCRC {
			t.Fatalf("scenario %d: RecomputeCRC on an encrypted image", s.Index)
		}
	}
	for _, f := range chaos.Faults() {
		if faults[f] == 0 {
			t.Errorf("fault %q never generated in 200 scenarios", f)
		}
	}
	for _, w := range []int{1, 2, 8, device.LaneWordBits, 2 * device.LaneWordBits, device.MaxLanes} {
		if lanes[w] == 0 {
			t.Errorf("lane width %d never generated", w)
		}
	}
	if counter == 0 || encrypted == 0 || census == 0 || recompute == 0 || pad == 0 {
		t.Errorf("dimension never generated: countermeasure=%d encrypted=%d census=%d recomputeCRC=%d pad=%d",
			counter, encrypted, census, recompute, pad)
	}
}

func TestGenerateScenariosLanesPinned(t *testing.T) {
	for _, s := range GenerateScenarios(Config{Runs: 32, Seed: 3, Lanes: 2}) {
		if s.Lanes != 2 {
			t.Fatalf("scenario %d: Lanes=%d, want pinned 2", s.Index, s.Lanes)
		}
	}
}

// TestCampaignDeterministicAcrossParallelism is half the acceptance
// criterion: the same seed must produce a byte-identical JSON report
// whatever the worker-pool width.
func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	cfg := Config{Runs: 12, Seed: 5, Chaos: true}
	cfg.Parallel = 1
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := seq.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("JSON reports differ between -parallel 1 and 4:\n--- parallel 1 ---\n%s\n--- parallel 4 ---\n%s", a, b)
	}
}

// TestCampaignAcceptance is the 100-scenario acceptance criterion: the
// campaign recovers the key in every clean unprotected scenario, every
// chaos scenario ends in a typed error, and there are zero panics,
// wrong keys, conformance mismatches or unexpected verdicts.
func TestCampaignAcceptance(t *testing.T) {
	tel := obs.New()
	rep, err := Run(Config{Runs: 100, Parallel: 4, Seed: 1, Chaos: true, Tel: tel})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 100 {
		t.Fatalf("got %d results, want 100", len(rep.Results))
	}
	for _, r := range rep.Results {
		s := r.Scenario
		if r.Panic != "" {
			t.Errorf("scenario %d panicked: %s", s.Index, r.Panic)
		}
		if r.Conformance != "ok" {
			t.Errorf("scenario %d failed golden-model conformance: %s", s.Index, r.Conformance)
		}
		if r.Verdict == VerdictInvariantViolation {
			t.Errorf("scenario %d: invariant violation (%s): %s", s.Index, r.Outcome, r.Error)
		}
		if !r.Expected {
			t.Errorf("scenario %d: verdict %s contradicts the contract (fault=%q cm=%q)",
				s.Index, r.Verdict, s.Fault, s.Countermeasure)
		}
		switch {
		case s.Fault != chaos.None:
			if r.Verdict != VerdictCleanFailure || r.Error == "" {
				t.Errorf("chaos scenario %d (%s): verdict=%s error=%q, want a typed clean failure",
					s.Index, s.Fault, r.Verdict, r.Error)
			}
			if r.Outcome != "chaos:"+string(s.Fault) {
				t.Errorf("chaos scenario %d: outcome %q, want chaos:%s", s.Index, r.Outcome, s.Fault)
			}
			// Load-path faults must have seen traffic; readback faults
			// (truncate) can kill the attack before its first load.
			if (s.Fault == chaos.BitFlip || s.Fault == chaos.Stall) && r.PortLoads < 1 {
				t.Errorf("chaos scenario %d: no loads reached the injected port", s.Index)
			}
		case s.Countermeasure != CounterNone:
			if r.Verdict != VerdictCleanFailure || r.Outcome != OutcomeCountermeasure {
				t.Errorf("protected scenario %d: verdict=%s outcome=%s, want countermeasure clean failure",
					s.Index, r.Verdict, r.Outcome)
			}
		default:
			if r.Verdict != VerdictKeyRecovered || r.Loads < 1 {
				t.Errorf("clean scenario %d: verdict=%s loads=%d, want a verified key recovery",
					s.Index, r.Verdict, r.Loads)
			}
		}
	}
	if !rep.Healthy() {
		t.Errorf("campaign unhealthy: %+v", rep.Aggregate)
	}
	agg := rep.Aggregate
	if agg.KeyRecovered+agg.CleanFailures+agg.InvariantViolations != 100 {
		t.Errorf("aggregate counts don't partition the scenarios: %+v", agg)
	}
	if agg.ChaosScenarios == 0 {
		t.Error("chaos campaign generated zero chaos scenarios")
	}
	total := 0
	for _, f := range chaos.Faults() {
		total += agg.ByFault[string(f)]
	}
	if total != agg.ChaosScenarios {
		t.Errorf("ByFault sums to %d, ChaosScenarios=%d", total, agg.ChaosScenarios)
	}
	if got := tel.Counter("campaign.scenarios").Value(); got != 100 {
		t.Errorf("campaign.scenarios counter = %d, want 100", got)
	}
	if got := tel.Counter("campaign.invariant_violations").Value(); got != 0 {
		t.Errorf("campaign.invariant_violations counter = %d, want 0", got)
	}
}

// TestRunScenarioPerFault pins one end-to-end scenario per chaos fault:
// each must surface as a named clean failure, never a wrong key.
func TestRunScenarioPerFault(t *testing.T) {
	scns := GenerateScenarios(Config{Runs: 60, Seed: 99, Chaos: true})
	picked := map[chaos.Fault]Scenario{}
	for _, s := range scns {
		if s.Fault != chaos.None && s.Countermeasure == CounterNone {
			if _, ok := picked[s.Fault]; !ok {
				picked[s.Fault] = s
			}
		}
	}
	for _, f := range chaos.Faults() {
		s, ok := picked[f]
		if !ok {
			t.Fatalf("no unprotected scenario with fault %q in 60 draws", f)
		}
		t.Run(string(f), func(t *testing.T) {
			r := RunScenario(s, nil)
			if r.Verdict != VerdictCleanFailure {
				t.Fatalf("verdict=%s outcome=%s error=%q, want clean_failure", r.Verdict, r.Outcome, r.Error)
			}
			if r.Error == "" {
				t.Fatal("clean failure carries no error text")
			}
			if !r.Expected {
				t.Fatal("chaos failure not marked as the expected verdict")
			}
		})
	}
}

func TestReportJSONShape(t *testing.T) {
	rep, err := Run(Config{Runs: 1, Parallel: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Error("JSON report missing trailing newline")
	}
	if !bytes.Contains(data, []byte(`"schema": 1`)) {
		t.Errorf("JSON report missing schema marker:\n%s", data)
	}
	if bytes.Contains(data, []byte("parallel")) || bytes.Contains(data, []byte("duration")) {
		t.Error("JSON report leaks execution-dependent fields (parallel/duration)")
	}
}
