// Package chaos injects deterministic, seeded faults into the attack's
// view of the victim device. Real bitstream patching pipelines fail in
// messy ways — corrupted frames, partial readback, integrity-check
// aborts, wedged configuration ports — and the campaign engine uses
// these injectors to prove that every such failure surfaces as a typed,
// observable error instead of a wrong key or a panic.
//
// The taxonomy (one injector per Fault value):
//
//	bitflip       every image written to the configuration port has a
//	              few bits flipped inside live (nonzero) bytes, modeling
//	              frame corruption on the way to the device. Surfaces as
//	              a verification failure in the attack (candidate counts
//	              or keystream checks go wrong) or a parse error.
//	truncate      the flash probe returns a truncated image, modeling
//	              partial readback. Surfaces while the attacker prepares
//	              the working copy (CRC-disable or envelope parse fails)
//	              or when the truncated image is loaded.
//	corrupt-auth  the stored integrity check is corrupted: the CRC word
//	              of a plain image, the sealed envelope tail (ciphertext
//	              covering the HMAC) of an encrypted one. The attacker's
//	              own working copy tolerates this (the CRC is zeroed, a
//	              bad MAC is deliberately ignored — the attacker wants
//	              the plaintext either way), so the fault surfaces when
//	              the *device* re-checks the stored image: the restore
//	              epilogue aborts with INIT_B low (plain) or a BOOTSTS
//	              HMAC failure (encrypted).
//	stall         the configuration port wedges after a seeded number of
//	              loads; every later Load returns ErrStalled. Surfaces
//	              mid-attack in whichever phase hits the stall.
//
// Injection is fully deterministic: a Device seeded identically replays
// the identical fault sequence, which is what makes chaos campaigns
// reproducible byte for byte.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"snowbma/internal/bitstream"
)

// Fault names one injector of the chaos taxonomy.
type Fault string

const (
	// None disables injection; Wrap returns a transparent pass-through.
	None Fault = ""
	// BitFlip corrupts frames on the way to the configuration port.
	BitFlip Fault = "bitflip"
	// Truncate models partial readback of the configuration flash.
	Truncate Fault = "truncate"
	// CorruptAuth corrupts the stored CRC word / sealed envelope tail.
	CorruptAuth Fault = "corrupt-auth"
	// Stall wedges the configuration port after a seeded load count.
	Stall Fault = "stall"
)

// Faults enumerates the injectable faults (excluding None), in the
// order campaign scenario generation draws from.
func Faults() []Fault { return []Fault{BitFlip, Truncate, CorruptAuth, Stall} }

var (
	// ErrStalled is returned by Load once the configuration port has
	// wedged. The attack observes it as a failed reconfiguration.
	ErrStalled = errors.New("chaos: configuration port stalled")
	// ErrUnknownFault is returned by Wrap for a fault name outside the
	// taxonomy.
	ErrUnknownFault = errors.New("chaos: unknown fault")
)

// Victim is the device surface the injector wraps — the same contract as
// core.Victim, restated here so the chaos layer depends only on the
// device protocol, not on the attack engine.
type Victim interface {
	Load([]byte) error
	SetInput(name string, v bool)
	Clock()
	Read(name string) bool
	ReadFlash() []byte
	SideChannelKey() [bitstream.KeySize]byte
}

// Device wraps a victim with one seeded fault injector. It deliberately
// does not implement the batch-loader fast path, so a faulted attack
// runs every candidate through the scalar Load path — exactly where the
// injectors sit.
type Device struct {
	v          Victim
	fault      Fault
	rng        *rand.Rand
	flips      int
	stallAfter int
	loads      int
}

// Wrap builds a fault-injecting view of v. The seed fixes the whole
// fault sequence (flip positions, truncation lengths, stall point).
func Wrap(v Victim, fault Fault, seed int64) (*Device, error) {
	d := &Device{v: v, fault: fault, rng: rand.New(rand.NewSource(seed))}
	switch fault {
	case None, BitFlip, Truncate, CorruptAuth, Stall:
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownFault, fault)
	}
	// Parameters are drawn up front so the per-call draws stay aligned
	// with the seed regardless of fault kind.
	d.flips = 4 + d.rng.Intn(8)
	d.stallAfter = 2 + d.rng.Intn(24)
	return d, nil
}

// Loads reports how many configuration attempts reached the port,
// including ones refused by a stall.
func (d *Device) Loads() int { return d.loads }

// StallAfter reports the seeded load budget of the stall fault.
func (d *Device) StallAfter() int { return d.stallAfter }

// Load forwards img to the victim, first applying the bitflip or stall
// injector. The caller's slice is never mutated.
func (d *Device) Load(img []byte) error {
	d.loads++
	switch d.fault {
	case BitFlip:
		img = d.flip(img)
	case Stall:
		if d.loads > d.stallAfter {
			return fmt.Errorf("%w after %d loads", ErrStalled, d.stallAfter)
		}
	}
	return d.v.Load(img)
}

// flip copies img and flips a few bits inside nonzero bytes. Padding
// frames are all-zero, so restricting flips to live bytes keeps the
// fault observable instead of landing in fabric nobody reads.
func (d *Device) flip(img []byte) []byte {
	out := append([]byte(nil), img...)
	live := make([]int, 0, len(out))
	for i, b := range out {
		if b != 0 {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return out
	}
	for k := 0; k < d.flips; k++ {
		i := live[d.rng.Intn(len(live))]
		out[i] ^= 1 << uint(d.rng.Intn(8))
	}
	return out
}

// ReadFlash returns the stored image through the truncate or
// corrupt-auth injector.
func (d *Device) ReadFlash() []byte {
	img := d.v.ReadFlash()
	switch d.fault {
	case Truncate:
		if len(img) > 1 {
			// Keep between 10% and 90% of the image.
			keep := len(img)/10 + d.rng.Intn(len(img)*8/10)
			if keep < 1 {
				keep = 1
			}
			img = img[:keep]
		}
	case CorruptAuth:
		// Corrupt a private copy: the victim's own flash must stay
		// intact whether or not its ReadFlash hands out copies.
		img = append([]byte(nil), img...)
		d.corruptAuth(img)
	}
	return img
}

// corruptAuth flips one bit of the integrity data in img (the wrapper's
// own copy): the CRC value word of a plain image, or the envelope tail —
// ciphertext covering the embedded HMAC — of an encrypted one.
func (d *Device) corruptAuth(img []byte) {
	if len(img) == 0 {
		return
	}
	if bitstream.IsEncrypted(img) {
		lo := len(img) - 32
		if lo < 0 {
			lo = 0
		}
		img[lo+d.rng.Intn(len(img)-lo)] ^= 1 << uint(d.rng.Intn(8))
		return
	}
	// CRCOffset points at the "write CRC" header word; the stored CRC
	// value is the word after it. Corrupting the header would merely
	// knock out the CRC write — the same thing the attacker does on
	// purpose — so the value word is the one that must be hit for the
	// device's check to fire.
	if p, err := bitstream.ParsePackets(img); err == nil && p.CRCOffset >= 0 && p.CRCOffset+8 <= len(img) {
		img[p.CRCOffset+4+d.rng.Intn(4)] ^= 1 << uint(d.rng.Intn(8))
		return
	}
	img[len(img)-1] ^= 1 << uint(d.rng.Intn(8))
}

// SetInput forwards to the victim.
func (d *Device) SetInput(name string, v bool) { d.v.SetInput(name, v) }

// Clock forwards to the victim.
func (d *Device) Clock() { d.v.Clock() }

// Read forwards to the victim.
func (d *Device) Read(name string) bool { return d.v.Read(name) }

// SideChannelKey forwards to the victim: the side-channel oracle is
// outside the configuration pipeline the chaos engine perturbs.
func (d *Device) SideChannelKey() [bitstream.KeySize]byte { return d.v.SideChannelKey() }
