package chaos_test

import (
	"bytes"
	"errors"
	"testing"

	"snowbma"
	"snowbma/internal/bitstream"
	"snowbma/internal/campaign/chaos"
)

// fakeVictim is a minimal device stand-in recording what crosses the
// chaos boundary.
type fakeVictim struct {
	flash   []byte
	loads   int
	lastImg []byte
	inputs  int
	clocks  int
}

func (f *fakeVictim) Load(b []byte) error {
	f.loads++
	f.lastImg = append([]byte(nil), b...)
	return nil
}
func (f *fakeVictim) SetInput(string, bool)                   { f.inputs++ }
func (f *fakeVictim) Clock()                                  { f.clocks++ }
func (f *fakeVictim) Read(string) bool                        { return false }
func (f *fakeVictim) ReadFlash() []byte                       { return f.flash }
func (f *fakeVictim) SideChannelKey() [bitstream.KeySize]byte { return [bitstream.KeySize]byte{7} }

func TestWrapUnknownFault(t *testing.T) {
	if _, err := chaos.Wrap(&fakeVictim{}, chaos.Fault("meltdown"), 1); !errors.Is(err, chaos.ErrUnknownFault) {
		t.Fatalf("Wrap(unknown) = %v, want ErrUnknownFault", err)
	}
}

func TestNonePassesThrough(t *testing.T) {
	v := &fakeVictim{flash: []byte{1, 2, 3, 4}}
	d, err := chaos.Wrap(v, chaos.None, 1)
	if err != nil {
		t.Fatal(err)
	}
	img := []byte{9, 8, 7}
	if err := d.Load(img); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.lastImg, img) {
		t.Fatalf("pass-through Load altered the image: %v", v.lastImg)
	}
	if !bytes.Equal(d.ReadFlash(), v.flash) {
		t.Fatal("pass-through ReadFlash altered the flash")
	}
	d.SetInput("x", true)
	d.Clock()
	if v.inputs != 1 || v.clocks != 1 {
		t.Fatal("SetInput/Clock not forwarded")
	}
	if d.SideChannelKey() != v.SideChannelKey() {
		t.Fatal("SideChannelKey not forwarded")
	}
}

func TestStallBudget(t *testing.T) {
	v := &fakeVictim{}
	d, err := chaos.Wrap(v, chaos.Stall, 17)
	if err != nil {
		t.Fatal(err)
	}
	budget := d.StallAfter()
	if budget < 2 || budget > 25 {
		t.Fatalf("StallAfter = %d, want the seeded 2..25 range", budget)
	}
	for i := 0; i < budget; i++ {
		if err := d.Load([]byte{1}); err != nil {
			t.Fatalf("load %d within budget failed: %v", i+1, err)
		}
	}
	for i := 0; i < 3; i++ {
		err := d.Load([]byte{1})
		if !errors.Is(err, chaos.ErrStalled) {
			t.Fatalf("load past budget = %v, want ErrStalled", err)
		}
	}
	if d.Loads() != budget+3 {
		t.Fatalf("Loads() = %d, want %d (refused attempts count)", d.Loads(), budget+3)
	}
	if v.loads != budget {
		t.Fatalf("victim saw %d loads, want %d (stalls must not reach it)", v.loads, budget)
	}
}

func TestBitFlipTargetsLiveBytesOnly(t *testing.T) {
	v := &fakeVictim{}
	d, err := chaos.Wrap(v, chaos.BitFlip, 5)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, 256)
	for i := 64; i < 128; i++ {
		img[i] = byte(i) // live window surrounded by padding zeros
	}
	orig := append([]byte(nil), img...)
	if err := d.Load(img); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, orig) {
		t.Fatal("Load mutated the caller's slice")
	}
	if bytes.Equal(v.lastImg, orig) {
		t.Fatal("bitflip forwarded an unmodified image")
	}
	for i, b := range v.lastImg {
		if orig[i] == 0 && b != 0 {
			t.Fatalf("bitflip hit padding byte %d (flips must stay in live bytes)", i)
		}
	}
}

func TestBitFlipDeterministicPerSeed(t *testing.T) {
	img := bytes.Repeat([]byte{0xA5}, 128)
	run := func(seed int64) []byte {
		v := &fakeVictim{}
		d, err := chaos.Wrap(v, chaos.BitFlip, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Load(img); err != nil {
			t.Fatal(err)
		}
		return v.lastImg
	}
	if !bytes.Equal(run(3), run(3)) {
		t.Fatal("identical seeds produced different flip patterns")
	}
	if bytes.Equal(run(3), run(4)) {
		t.Fatal("different seeds produced identical flip patterns")
	}
}

func TestTruncateBounds(t *testing.T) {
	v := &fakeVictim{flash: make([]byte, 1000)}
	d, err := chaos.Wrap(v, chaos.Truncate, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		got := d.ReadFlash()
		if len(got) < 1 || len(got) >= len(v.flash) {
			t.Fatalf("truncated length %d out of bounds (0, %d)", len(got), len(v.flash))
		}
	}
}

// TestCorruptAuthPlain pins the fault's contract on a real synthesized
// image: the corruption lands inside the stored CRC value word, so the
// device refuses the image (INIT_B low) while the packet structure
// still parses.
func TestCorruptAuthPlain(t *testing.T) {
	vic, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: snowbma.PaperKey})
	if err != nil {
		t.Fatal(err)
	}
	orig := vic.Device.ReadFlash()
	p, err := bitstream.ParsePackets(orig)
	if err != nil {
		t.Fatal(err)
	}
	d, err := chaos.Wrap(vic.Device, chaos.CorruptAuth, 23)
	if err != nil {
		t.Fatal(err)
	}
	got := d.ReadFlash()
	diff := -1
	for i := range orig {
		if got[i] != orig[i] {
			if diff >= 0 {
				t.Fatalf("more than one corrupted byte (%d and %d)", diff, i)
			}
			diff = i
		}
	}
	if diff < p.CRCOffset+4 || diff >= p.CRCOffset+8 {
		t.Fatalf("corruption at byte %d, want inside the CRC value word [%d, %d)",
			diff, p.CRCOffset+4, p.CRCOffset+8)
	}
	if _, err := bitstream.ParsePackets(got); err != nil {
		t.Fatalf("corrupted image must still parse (only the check fails): %v", err)
	}
	if err := vic.Device.Load(got); err == nil {
		t.Fatal("device accepted an image with a corrupted CRC")
	}
	if !vic.Device.Status().InitBLow {
		t.Fatal("CRC corruption did not pull INIT_B low")
	}
	if err := vic.Device.Load(orig); err != nil {
		t.Fatalf("pristine image must still load: %v", err)
	}
}

// TestCorruptAuthEncrypted pins the encrypted variant: the corruption
// lands in the sealed envelope tail and the device's HMAC verification
// rejects it (BOOTSTS), while the pristine envelope still loads.
func TestCorruptAuthEncrypted(t *testing.T) {
	keys := &snowbma.EncryptionKeys{KE: [32]byte{1}, KA: [32]byte{2}}
	vic, err := snowbma.BuildVictim(snowbma.VictimConfig{Key: snowbma.PaperKey, Encrypt: keys})
	if err != nil {
		t.Fatal(err)
	}
	orig := vic.Device.ReadFlash()
	d, err := chaos.Wrap(vic.Device, chaos.CorruptAuth, 29)
	if err != nil {
		t.Fatal(err)
	}
	got := d.ReadFlash()
	diff := -1
	for i := range orig {
		if got[i] != orig[i] {
			diff = i
			break
		}
	}
	if diff < len(orig)-32 {
		t.Fatalf("corruption at byte %d, want inside the last 32 envelope bytes (len %d)", diff, len(orig))
	}
	if err := vic.Device.Load(got); err == nil {
		t.Fatal("device accepted an envelope with a corrupted tail")
	}
	if !vic.Device.Status().BootstsError {
		t.Fatal("HMAC corruption did not set BOOTSTS")
	}
	if err := vic.Device.Load(orig); err != nil {
		t.Fatalf("pristine envelope must still load: %v", err)
	}
}
