package gf2

import "testing"

func TestVecCrossWordBoundary(t *testing.T) {
	v := NewVec(130)
	for _, i := range []int{0, 63, 64, 65, 127, 128, 129} {
		v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
		v.Set(i, false)
		if v.Get(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
	if !v.IsZero() {
		t.Fatal("vector should be zero")
	}
}

func TestVecXorAndClone(t *testing.T) {
	a := NewVec(100)
	a.Set(3, true)
	a.Set(77, true)
	b := a.Clone()
	b.Set(50, true)
	if a.Get(50) {
		t.Fatal("Clone aliases storage")
	}
	a.Xor(b)
	// a ⊕ b: bits 3 and 77 cancel, bit 50 remains.
	if a.Get(3) || a.Get(77) || !a.Get(50) {
		t.Fatal("Xor semantics wrong")
	}
}

func TestMulVecDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Identity(8).MulVec(NewVec(9))
}

func TestVarLevelValidation(t *testing.T) {
	m := NewMatrix(4)
	m.Set(0, 0, true)
	if m.Get(0, 0) != true || m.Get(1, 1) != false {
		t.Fatal("Get/Set broken")
	}
}
