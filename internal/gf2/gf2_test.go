package gf2

import (
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			m.Set(r, c, rng.Intn(2) == 1)
		}
	}
	return m
}

func randomVec(rng *rand.Rand, n int) Vec {
	v := NewVec(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.Intn(2) == 1)
	}
	return v
}

func matricesEqual(a, b *Matrix) bool {
	if a.N() != b.N() {
		return false
	}
	for r := 0; r < a.N(); r++ {
		for c := 0; c < a.N(); c++ {
			if a.Get(r, c) != b.Get(r, c) {
				return false
			}
		}
	}
	return true
}

func TestIdentityActsTrivially(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 64, 65, 130} {
		id := Identity(n)
		v := randomVec(rng, n)
		got := id.MulVec(v)
		for i := 0; i < n; i++ {
			if got.Get(i) != v.Get(i) {
				t.Fatalf("n=%d: identity moved bit %d", n, i)
			}
		}
		m := randomMatrix(rng, n)
		if !matricesEqual(id.Mul(m), m) || !matricesEqual(m.Mul(id), m) {
			t.Fatalf("n=%d: identity not neutral for Mul", n)
		}
	}
}

func TestMulMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(70)
		a, b := randomMatrix(rng, n), randomMatrix(rng, n)
		v := randomVec(rng, n)
		// (A·B)·v == A·(B·v)
		left := a.Mul(b).MulVec(v)
		right := a.MulVec(b.MulVec(v))
		for i := 0; i < n; i++ {
			if left.Get(i) != right.Get(i) {
				t.Fatalf("trial %d: associativity violated at bit %d", trial, i)
			}
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	found := 0
	for trial := 0; trial < 30 && found < 10; trial++ {
		n := 20 + rng.Intn(60)
		m := randomMatrix(rng, n)
		inv, err := m.Inverse()
		if err != nil {
			continue // singular; random GF(2) matrices are ~71% invertible
		}
		found++
		if !matricesEqual(m.Mul(inv), Identity(n)) || !matricesEqual(inv.Mul(m), Identity(n)) {
			t.Fatalf("trial %d: M·M⁻¹ ≠ I", trial)
		}
	}
	if found < 10 {
		t.Fatalf("only %d invertible samples; generator suspicious", found)
	}
}

func TestSingularDetected(t *testing.T) {
	m := NewMatrix(4)
	// Row 3 = row 0 ⊕ row 1: singular by construction.
	m.Set(0, 0, true)
	m.Set(0, 2, true)
	m.Set(1, 1, true)
	m.Set(2, 3, true)
	m.Set(3, 0, true)
	m.Set(3, 1, true)
	m.Set(3, 2, true)
	if _, err := m.Inverse(); err == nil {
		t.Fatal("inverted a singular matrix")
	}
	if r := m.Rank(); r != 3 {
		t.Fatalf("rank = %d, want 3", r)
	}
}

func TestPow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 40
	m := randomMatrix(rng, n)
	// M^5 == M·M·M·M·M
	direct := m.Mul(m).Mul(m).Mul(m).Mul(m)
	if !matricesEqual(m.Pow(5), direct) {
		t.Fatal("Pow(5) wrong")
	}
	if !matricesEqual(m.Pow(0), Identity(n)) {
		t.Fatal("Pow(0) is not identity")
	}
}

func TestFromFuncReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 50
	m := randomMatrix(rng, n)
	rebuilt := FromFunc(n, func(v Vec) Vec { return m.MulVec(v) })
	if !matricesEqual(m, rebuilt) {
		t.Fatal("FromFunc did not reconstruct the matrix")
	}
}

func TestRankFullForIdentity(t *testing.T) {
	if Identity(129).Rank() != 129 {
		t.Fatal("identity rank wrong")
	}
	if NewMatrix(10).Rank() != 0 {
		t.Fatal("zero matrix rank wrong")
	}
}

func BenchmarkMul512(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	m := randomMatrix(rng, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = m.Mul(m)
	}
}

func BenchmarkInverse512(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var m *Matrix
	for {
		m = randomMatrix(rng, 512)
		if _, err := m.Inverse(); err == nil {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}
