package gf2

import "testing"

// mat builds a matrix from rows of '0'/'1' characters, e.g.
// mat("10", "01") is the 2×2 identity.
func mat(rows ...string) *Matrix {
	m := NewMatrix(len(rows))
	for r, row := range rows {
		if len(row) != len(rows) {
			panic("mat: ragged rows")
		}
		for c, ch := range row {
			m.Set(r, c, ch == '1')
		}
	}
	return m
}

func matEqual(a, b *Matrix) bool {
	if a.N() != b.N() {
		return false
	}
	for r := 0; r < a.N(); r++ {
		for c := 0; c < a.N(); c++ {
			if a.Get(r, c) != b.Get(r, c) {
				return false
			}
		}
	}
	return true
}

func TestInverseTable(t *testing.T) {
	cases := []struct {
		name     string
		m        *Matrix
		inv      *Matrix // nil means singular
		singular bool
	}{
		{"identity", mat("10", "01"), mat("10", "01"), false},
		{"upper unitriangular is an involution", mat("11", "01"), mat("11", "01"), false},
		{"swap", mat("01", "10"), mat("01", "10"), false},
		{
			// Companion matrix of x^3 + x + 1 (primitive over GF(2)).
			"companion x3+x+1",
			mat("010", "001", "110"),
			mat("101", "100", "010"),
			false,
		},
		{"zero row", mat("11", "00"), nil, true},
		{"repeated rows", mat("101", "101", "010"), nil, true},
		{"dependent sum", mat("110", "011", "101"), nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.m.Inverse()
			if tc.singular {
				if err == nil {
					t.Fatal("Inverse() succeeded on a singular matrix")
				}
				return
			}
			if err != nil {
				t.Fatalf("Inverse() = %v", err)
			}
			if !matEqual(got, tc.inv) {
				t.Fatalf("wrong inverse for %s", tc.name)
			}
			if !matEqual(tc.m.Mul(got), Identity(tc.m.N())) {
				t.Fatal("M·M⁻¹ ≠ I")
			}
		})
	}
}

func TestRankTable(t *testing.T) {
	cases := []struct {
		name string
		m    *Matrix
		rank int
	}{
		{"zero 3x3", NewMatrix(3), 0},
		{"identity 4x4", Identity(4), 4},
		{"one row", mat("110", "000", "000"), 1},
		{"rank 2 of 3", mat("110", "011", "101"), 2},
		{"full 3x3", mat("010", "001", "110"), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.m.Rank(); got != tc.rank {
				t.Fatalf("Rank() = %d, want %d", got, tc.rank)
			}
		})
	}
}

func TestPowTable(t *testing.T) {
	// The companion matrix of x^3 + x + 1 generates GF(8)*, so its
	// multiplicative order is 7.
	comp := mat("010", "001", "110")
	cases := []struct {
		name string
		m    *Matrix
		k    int
		want *Matrix
	}{
		{"k=0 is identity", comp, 0, Identity(3)},
		{"k=1 is the matrix", comp, 1, comp},
		{"square", comp, 2, comp.Mul(comp)},
		{"order 7", comp, 7, Identity(3)},
		{"order wraps", comp, 8, comp},
		{"involution squared", mat("11", "01"), 2, Identity(2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.m.Pow(tc.k); !matEqual(got, tc.want) {
				t.Fatalf("Pow(%d) wrong", tc.k)
			}
		})
	}
}

func TestMulVecTable(t *testing.T) {
	vec := func(bits string) Vec {
		v := NewVec(len(bits))
		for i, ch := range bits {
			v.Set(i, ch == '1')
		}
		return v
	}
	cases := []struct {
		name string
		m    *Matrix
		in   string
		want string
	}{
		{"identity fixes", Identity(3), "101", "101"},
		{"zero annihilates", NewMatrix(3), "111", "000"},
		{"swap permutes", mat("01", "10"), "10", "01"},
		{"companion shifts+feeds back", mat("010", "001", "110"), "100", "001"},
		{"companion feedback taps", mat("010", "001", "110"), "010", "101"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.m.MulVec(vec(tc.in))
			want := vec(tc.want)
			for i := 0; i < want.Len(); i++ {
				if got.Get(i) != want.Get(i) {
					t.Fatalf("MulVec(%s) bit %d = %v, want %s", tc.in, i, got.Get(i), tc.want)
				}
			}
		})
	}
}

func TestVecBitBoundaryTable(t *testing.T) {
	// Bits straddling the 64-bit word packing must not interfere.
	cases := []struct {
		name string
		n    int
		bits []int
	}{
		{"single word", 10, []int{0, 9}},
		{"word edge", 64, []int{0, 63}},
		{"first of second word", 65, []int{63, 64}},
		{"spread", 200, []int{0, 63, 64, 127, 128, 199}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := NewVec(tc.n)
			for _, i := range tc.bits {
				v.Set(i, true)
			}
			set := map[int]bool{}
			for _, i := range tc.bits {
				set[i] = true
			}
			for i := 0; i < tc.n; i++ {
				if v.Get(i) != set[i] {
					t.Fatalf("bit %d = %v, want %v", i, v.Get(i), set[i])
				}
			}
			for _, i := range tc.bits {
				v.Set(i, false)
			}
			if !v.IsZero() {
				t.Fatal("clearing the set bits did not zero the vector")
			}
		})
	}
}

func TestCloneIndependence(t *testing.T) {
	v := NewVec(130)
	v.Set(129, true)
	cv := v.Clone()
	v.Set(0, true)
	v.Set(129, false)
	if cv.Get(0) || !cv.Get(129) {
		t.Fatal("Vec.Clone shares storage with the original")
	}

	m := Identity(5)
	cm := m.Clone()
	m.Set(0, 0, false)
	m.Set(4, 0, true)
	if !cm.Get(0, 0) || cm.Get(4, 0) {
		t.Fatal("Matrix.Clone shares storage with the original")
	}
}
