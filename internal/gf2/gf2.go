// Package gf2 implements dense linear algebra over GF(2) with bit-packed
// rows. The paper's key extraction rests on the fact that, once the FSM
// is disconnected, the LFSR state update is a linear map L on GF(2)^512
// ("an LFSR with a known characteristic polynomial is easy to reverse"
// [45]); this package expresses that map as a matrix, inverts it, and
// powers it — an independent derivation of the byte-table rewind used by
// the attack, cross-checked in the snow3g tests.
package gf2

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Vec is a bit vector over GF(2).
type Vec struct {
	n     int
	words []uint64
}

// NewVec returns the zero vector of length n.
func NewVec(n int) Vec {
	return Vec{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the vector length.
func (v Vec) Len() int { return v.n }

// Get returns bit i.
func (v Vec) Get(i int) bool { return v.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1 }

// Set assigns bit i.
func (v Vec) Set(i int, b bool) {
	if b {
		v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Clone copies the vector.
func (v Vec) Clone() Vec {
	out := NewVec(v.n)
	copy(out.words, v.words)
	return out
}

// Xor adds w into v in place.
func (v Vec) Xor(w Vec) {
	for i := range v.words {
		v.words[i] ^= w.words[i]
	}
}

// IsZero reports whether every bit is 0.
func (v Vec) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Matrix is a dense n×n GF(2) matrix stored row-major.
type Matrix struct {
	n    int
	rows []Vec
}

// NewMatrix returns the n×n zero matrix.
func NewMatrix(n int) *Matrix {
	m := &Matrix{n: n, rows: make([]Vec, n)}
	for i := range m.rows {
		m.rows[i] = NewVec(n)
	}
	return m
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.rows[i].Set(i, true)
	}
	return m
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// Get returns entry (r, c).
func (m *Matrix) Get(r, c int) bool { return m.rows[r].Get(c) }

// Set assigns entry (r, c).
func (m *Matrix) Set(r, c int, b bool) { m.rows[r].Set(c, b) }

// Clone copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.n)
	for i := range m.rows {
		copy(out.rows[i].words, m.rows[i].words)
	}
	return out
}

// MulVec computes M·v.
func (m *Matrix) MulVec(v Vec) Vec {
	if v.n != m.n {
		panic("gf2: dimension mismatch")
	}
	out := NewVec(m.n)
	for r := 0; r < m.n; r++ {
		acc := uint64(0)
		row := m.rows[r].words
		for w := range row {
			acc ^= row[w] & v.words[w]
		}
		if bits.OnesCount64(acc)%2 == 1 {
			out.Set(r, true)
		}
	}
	return out
}

// Mul computes M·O.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if o.n != m.n {
		panic("gf2: dimension mismatch")
	}
	// Transpose-free: out[r] = XOR of o.rows[c] for every set column c of
	// m.rows[r].
	out := NewMatrix(m.n)
	for r := 0; r < m.n; r++ {
		dst := out.rows[r]
		row := m.rows[r]
		for w, word := range row.words {
			for word != 0 {
				c := w*wordBits + bits.TrailingZeros64(word)
				word &= word - 1
				dst.Xor(o.rows[c])
			}
		}
	}
	return out
}

// Pow computes M^k for k ≥ 0 by square and multiply.
func (m *Matrix) Pow(k int) *Matrix {
	if k < 0 {
		panic("gf2: negative power; invert first")
	}
	result := Identity(m.n)
	base := m.Clone()
	for ; k > 0; k >>= 1 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Mul(base)
	}
	return result
}

// Inverse computes M^-1 by Gauss–Jordan elimination, or an error when M
// is singular.
func (m *Matrix) Inverse() (*Matrix, error) {
	a := m.Clone()
	inv := Identity(m.n)
	for col := 0; col < m.n; col++ {
		pivot := -1
		for r := col; r < m.n; r++ {
			if a.rows[r].Get(col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("gf2: singular matrix (rank < %d at column %d)", m.n, col)
		}
		a.rows[col], a.rows[pivot] = a.rows[pivot], a.rows[col]
		inv.rows[col], inv.rows[pivot] = inv.rows[pivot], inv.rows[col]
		for r := 0; r < m.n; r++ {
			if r != col && a.rows[r].Get(col) {
				a.rows[r].Xor(a.rows[col])
				inv.rows[r].Xor(inv.rows[col])
			}
		}
	}
	return inv, nil
}

// Rank computes the rank by elimination on a copy.
func (m *Matrix) Rank() int {
	a := m.Clone()
	rank := 0
	for col := 0; col < m.n && rank < m.n; col++ {
		pivot := -1
		for r := rank; r < m.n; r++ {
			if a.rows[r].Get(col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a.rows[rank], a.rows[pivot] = a.rows[pivot], a.rows[rank]
		for r := 0; r < m.n; r++ {
			if r != rank && a.rows[r].Get(col) {
				a.rows[r].Xor(a.rows[rank])
			}
		}
		rank++
	}
	return rank
}

// FromFunc builds the matrix of a linear map f by applying it to every
// basis vector: column j is f(e_j).
func FromFunc(n int, f func(Vec) Vec) *Matrix {
	m := NewMatrix(n)
	for j := 0; j < n; j++ {
		e := NewVec(n)
		e.Set(j, true)
		img := f(e)
		for i := 0; i < n; i++ {
			if img.Get(i) {
				m.rows[i].Set(j, true)
			}
		}
	}
	return m
}
