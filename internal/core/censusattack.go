package core

import (
	"errors"
	"fmt"

	"snowbma/internal/boolfn"
)

// RunCensusGuided executes the complete attack WITHOUT the Table II
// candidate catalogue: every target class is discovered from the
// extracted-LUT census by its XOR structure (Section VI-B's guessing
// step replaced by measurement), and all fault tables are derived
// generically from the class functions:
//
//   - z-path class: a census class with a size-3 XOR group (v ⊕ s0) and
//     ≥ 32 members; confirmed per instance by the dead-column criterion.
//   - feedback classes: census classes with a size-2 XOR group (the bare
//     v); fault α₁ is the even-parity cofactor (StuckXorZero).
//   - load MUX classes: classes whose function has a MUX-select variable
//     (support-disjoint non-constant cofactors); fault β zeroes one
//     branch, polarity resolved as in the paper.
//
// The paper-faithful Run remains the primary reproduction; this entry
// point shows the methodology generalizes beyond one hand-built
// catalogue (and is what defeats it — the countermeasure floods exactly
// this analysis).
func (a *Attack) RunCensusGuided() (rep *Report, err error) {
	span := a.tel.StartSpan("attack.run_census")
	defer func() {
		a.baseLive = false
		if restoreErr := a.dev.Load(a.dev.ReadFlash()); restoreErr != nil && err == nil {
			err = fmt.Errorf("core: restoring original bitstream: %w", restoreErr)
		}
		span.SetAttr("loads", a.rep.Loads)
		span.SetAttr("verified", a.rep.Verified)
		span.End()
		a.publishStats()
		rep = a.rep.Clone()
	}()

	if err = a.checkpoint(); err != nil {
		return rep, err
	}
	classes, cerr := CensusAllClasses(a.plain, 8)
	if cerr != nil {
		return rep, cerr
	}
	// One batch pass resolves FINDLUT for every discovered class at once;
	// the per-class loops below read from the memo.
	if len(classes) > 0 {
		s := NewScanner(FindOptions{})
		s.SetTelemetry(a.tel)
		for i, c := range classes {
			s.AddFunction(fmt.Sprintf("class%d", i), c.Canon)
		}
		res := s.Scan(a.plain)
		if a.scanned == nil {
			a.scanned = make(map[boolfn.TT][]Match, len(classes))
		}
		for i, c := range classes {
			a.scanned[c.Canon] = res.Matches[fmt.Sprintf("class%d", i)]
		}
		a.rep.Scan.Accumulate(res.Stats)
	}
	var zClasses, fbClasses []CensusClass
	var muxClasses []CensusClass
	muxSel := map[boolfn.TT]int{}
	for _, c := range classes {
		if sel := boolfn.MuxSelectVars(c.Canon); len(sel) > 0 {
			muxClasses = append(muxClasses, c)
			muxSel[c.Canon] = sel[0]
			continue
		}
		var trio, pair []int
		for _, g := range c.Groups {
			switch {
			case len(g) == 3 && trio == nil:
				trio = g
			case len(g) == 2 && pair == nil:
				pair = g
			}
		}
		switch {
		case trio != nil && c.Count >= 32:
			zClasses = append(zClasses, c)
		case pair != nil:
			fbClasses = append(fbClasses, c)
		}
	}
	a.log.Infof("census: %d z-class, %d feedback, %d mux candidates",
		len(zClasses), len(fbClasses), len(muxClasses))

	// 1. z-path: the first class whose members verify to exactly 32.
	var zClass *CensusClass
	for i := range zClasses {
		verr := a.verifyZPathWith(zClasses[i].Canon)
		if verr == nil {
			zClass = &zClasses[i]
			break
		}
		if errors.Is(verr, ErrCancelled) {
			return rep, verr
		}
	}
	if zClass == nil {
		return rep, errors.New("core: census attack found no verifiable z-path class")
	}
	trio := trioOf(*zClass)
	if trio == nil {
		return rep, errors.New("core: z class lost its XOR trio")
	}
	// Generic keep-variable tables: keeping trio[k] means sticking the
	// other two at even parity.
	keepFn := func(keep int) boolfn.TT {
		others := make([]int, 0, 2)
		for idx, v := range trio {
			if idx != keep {
				others = append(others, v)
			}
		}
		return boolfn.StuckXorZero(zClass.Canon, others)
	}

	// 2. Feedback: the paper's own reasoning — the right classes cover
	// exactly 32 LUTs. Enumerate subsets of pair-group classes whose
	// census populations sum to 32 and validate each subset through the
	// key-independent (Table III) criterion.
	type fbMod struct {
		m     Match
		alpha boolfn.TT
	}
	collect := func(subset []CensusClass) []fbMod {
		var mods []fbMod
		for _, c := range subset {
			alpha := boolfn.StuckXorZero(c.Canon, pairOf(c))
			for _, m := range a.matchesFor(c.Canon) {
				if !a.aligned(m) {
					continue
				}
				clash := false
				for _, z := range a.rep.LUT1 {
					if z.Match.Overlaps(m) {
						clash = true
						break
					}
				}
				for _, prev := range mods {
					if prev.m.Overlaps(m) {
						clash = true
						break
					}
				}
				if !clash {
					mods = append(mods, fbMod{m: m, alpha: alpha})
				}
			}
		}
		return mods
	}
	if len(fbClasses) > 12 {
		return rep, fmt.Errorf("core: %d feedback candidate classes; census attack not attempted", len(fbClasses))
	}
	for mask := 1; mask < 1<<uint(len(fbClasses)); mask++ {
		if err = a.checkpoint(); err != nil {
			return rep, err
		}
		var subset []CensusClass
		total := 0
		for i, c := range fbClasses {
			if mask>>uint(i)&1 == 1 {
				subset = append(subset, c)
				total += c.Count
			}
		}
		if total != 32 {
			continue
		}
		mods := collect(subset)
		if len(mods) != 32 {
			continue
		}
		applyAlpha := func(b []byte) {
			for _, md := range mods {
				WriteMatch(b, md.m, md.alpha)
			}
		}
		// 3. Load MUXes from the mux classes, generically.
		var matches []Match
		var specs []muxSpec
		for _, c := range muxClasses {
			sel := muxSel[c.Canon]
			spec := muxSpec{
				name:     "census:" + c.Expr,
				fn:       c.Canon,
				zeroSel1: boolfn.ZeroMuxBranch(c.Canon, sel, true),
				zeroSel0: boolfn.ZeroMuxBranch(c.Canon, sel, false),
			}
			for _, m := range a.matchesFor(c.Canon) {
				if !a.aligned(m) {
					continue
				}
				clash := false
				for _, z := range a.rep.LUT1 {
					if z.Match.Overlaps(m) {
						clash = true
						break
					}
				}
				for _, md := range mods {
					if md.m.Overlaps(m) {
						clash = true
						break
					}
				}
				if !clash {
					matches = append(matches, m)
					specs = append(specs, spec)
				}
			}
		}
		a.rep.MuxMatches = len(matches)
		beta, berr := a.resolveBetaWith(matches, specs, applyAlpha)
		if berr != nil {
			if errors.Is(berr, ErrCancelled) {
				return rep, berr
			}
			a.log.Infof("census: feedback subset rejected by the Table III criterion; trying next")
			continue
		}
		a.rep.LUT2 = append(a.rep.LUT2[:0], make([]Match, 0)...)
		a.rep.LUT3 = a.rep.LUT3[:0]
		for i, md := range mods {
			if i < 24 {
				a.rep.LUT2 = append(a.rep.LUT2, md.m)
			} else {
				a.rep.LUT3 = append(a.rep.LUT3, md.m)
			}
		}
		// 4. Pin identification and key extraction with generic tables.
		if err = a.identifyVPairsWith(beta, applyAlpha, keepFn); err != nil {
			return rep, err
		}
		if err = a.extractKeyWith(applyAlpha, keepFn); err != nil {
			return rep, err
		}
		return rep, nil
	}
	return rep, errors.New("core: no feedback class subset satisfied the key-independent criterion")
}

func trioOf(c CensusClass) []int {
	for _, g := range c.Groups {
		if len(g) == 3 {
			return g
		}
	}
	return nil
}

func pairOf(c CensusClass) []int {
	for _, g := range c.Groups {
		if len(g) == 2 {
			return g
		}
	}
	return nil
}
