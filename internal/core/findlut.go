// Package core implements the paper's contribution: the FINDLUT
// algorithm (Algorithm 1) locating every k-input LUT that implements a
// given Boolean function in a raw bitstream, the candidate-verification
// loops of Section VI-C, the key-independent bitstream exploration
// technique of Section VI-D, end-to-end key extraction, the dual-output
// XOR search used against the protected design (Section VII-B), and the
// countermeasure complexity analysis (Lemma VII-A).
//
// Everything in this package treats the bitstream as opaque bytes plus
// the published layout parameters (k = 6, r = 4, d = 101, the ξ table,
// the two slice orders) and observes the device only through its
// keystream — the attacker's exact vantage point.
package core

import (
	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
)

// Match is one candidate location returned by FindLUT.
type Match struct {
	// Index is the byte offset l of the first sub-vector in the
	// bitstream.
	Index int
	// Perm is the input order (i1, ..., ik) under which the stored table
	// equals the target function: physical input j carries the target's
	// variable Perm[j].
	Perm []int
	// Order is the sub-vector order that matched (SLICEL or SLICEM).
	Order bitstream.SliceType
}

// Bytes returns the byte positions occupied by the matched LUT, used for
// the overlap rule of Section VI-C ("two valid LUTs cannot overlap").
func (m Match) Bytes() [8]int {
	var out [8]int
	for q := 0; q < bitstream.SubVectors; q++ {
		out[2*q] = m.Index + q*bitstream.SubVectorOffset
		out[2*q+1] = m.Index + q*bitstream.SubVectorOffset + 1
	}
	return out
}

// Overlaps reports whether two matches share a bitstream byte.
func (m Match) Overlaps(o Match) bool {
	a, b := m.Bytes(), o.Bytes()
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// FindOptions tunes the search.
type FindOptions struct {
	// ExhaustiveOrders checks all 4! sub-vector orders as in the generic
	// Algorithm 1 statement; the default checks only the two orders that
	// occur on 7-series parts (Section V-A).
	ExhaustiveOrders bool
	// NoPermDedup disables the skipping of input permutations that
	// produce a truth table already searched (ablation; Algorithm 1 as
	// written re-scans duplicates and relies on marking).
	NoPermDedup bool
	// Parallel limits worker goroutines; 0 means GOMAXPROCS.
	Parallel int
}

// candidate is one (table, perm, order) the scanner looks for. anchor is
// the sub-vector used as the scan probe: the one least likely to occur in
// background data (never 0x0000/0xFFFF when the candidate has any other
// value), so uninitialized fabric never triggers deep comparisons.
type candidate struct {
	sub    [4]uint16 // sub-vectors in storage order
	anchor int
	perm   []int
	order  bitstream.SliceType
}

// pickAnchor selects the probe sub-vector for a candidate.
func pickAnchor(sub [4]uint16) int {
	best := 0
	bestScore := -1
	for q, v := range sub {
		score := 2
		if v == 0x0000 || v == 0xFFFF {
			score = 0
		} else if v == 0x00FF || v == 0xFF00 {
			score = 1
		}
		if score > bestScore {
			best, bestScore = q, score
		}
	}
	return best
}

// FindLUT implements Algorithm 1 for the 7-series parameters: it returns
// every byte index l where some input permutation of f, serialized
// through ξ and one of the sub-vector orders, appears as four 16-bit
// sub-vectors d = 101 bytes apart. Matches are reported once per index
// (the algorithm's marking), sorted by index.
//
// FindLUT is the single-function entry point of the batch Scanner: the
// candidate catalogue is served from the process-wide cache, candidates
// are indexed by their anchor sub-vector (one load on the common miss
// path, blank fabric never reaching the slow path), and the scannable
// window [0, limit + maxAnchor·d] is partitioned exactly across the
// worker pool — workers are capped at the position count, so no
// goroutine is ever spawned for positions past the last useful probe.
// Searching N functions over the same bitstream should use a Scanner
// directly: one shared pass instead of N.
func FindLUT(b []byte, f boolfn.TT, opt FindOptions) []Match {
	s := NewScanner(opt)
	s.AddFunction("f", f)
	return s.Scan(b).Matches["f"]
}

func matchAt(b []byte, l int, c *candidate) bool {
	for q := 0; q < bitstream.SubVectors; q++ {
		off := l + q*bitstream.SubVectorOffset
		if uint16(b[off])|uint16(b[off+1])<<8 != c.sub[q] {
			return false
		}
	}
	return true
}

// buildCandidates expands f over input permutations and sub-vector
// orders into the raw byte patterns to search for. The permutation
// expansion (and its symmetry dedup) comes from the process-wide
// boolfn.PermutedTables memo; the compiled catalogue itself is cached by
// catalogueFor, so callers should go through that.
func buildCandidates(f boolfn.TT, opt FindOptions) []candidate {
	tables := boolfn.PermutedTables(f, !opt.NoPermDedup)
	orders := []bitstream.SliceType{bitstream.SliceL, bitstream.SliceM}
	seen := make(map[[4]uint16]bool)
	var out []candidate
	addPattern := func(sub [4]uint16, perm []int, order bitstream.SliceType) {
		if seen[sub] {
			return
		}
		seen[sub] = true
		out = append(out, candidate{sub: sub, anchor: pickAnchor(sub), perm: perm, order: order})
	}
	for _, pt := range tables {
		table, p := pt.Table, pt.Perm
		if opt.ExhaustiveOrders {
			xi := bitstream.Xi(table)
			var quarters [4]uint16
			for q := 0; q < 4; q++ {
				quarters[q] = uint16(xi >> (16 * uint(q)))
			}
			for _, jp := range boolfn.Permutations(4) {
				var sub [4]uint16
				for q := 0; q < 4; q++ {
					sub[q] = quarters[jp[q]]
				}
				// Attribute the physical type when the order coincides.
				order := bitstream.SliceL
				if jp[0] == 3 && jp[1] == 2 && jp[2] == 0 && jp[3] == 1 {
					order = bitstream.SliceM
				}
				addPattern(sub, p, order)
			}
			continue
		}
		for _, order := range orders {
			enc := bitstream.EncodeLUT(table, order)
			var sub [4]uint16
			for q := 0; q < 4; q++ {
				sub[q] = uint16(enc[q][0]) | uint16(enc[q][1])<<8
			}
			addPattern(sub, p, order)
		}
	}
	return out
}

// WriteMatch replaces the matched LUT's content with the faulty function
// fAlpha, expressed in the same variable frame as the searched function:
// the permutation and sub-vector order of the match are re-applied so the
// new truth table lands on the same physical pins.
func WriteMatch(b []byte, m Match, fAlpha boolfn.TT) {
	table := fAlpha.Permute(m.Perm)
	enc := bitstream.EncodeLUT(table, m.Order)
	for q := 0; q < bitstream.SubVectors; q++ {
		off := m.Index + q*bitstream.SubVectorOffset
		b[off] = enc[q][0]
		b[off+1] = enc[q][1]
	}
}

// ReadMatch decodes the current truth table at a match location, in the
// searched function's variable frame.
func ReadMatch(b []byte, m Match) boolfn.TT {
	var sub [bitstream.SubVectors][bitstream.SubVectorBytes]byte
	for q := 0; q < bitstream.SubVectors; q++ {
		off := m.Index + q*bitstream.SubVectorOffset
		sub[q][0], sub[q][1] = b[off], b[off+1]
	}
	stored := bitstream.DecodeLUT(sub, m.Order)
	return stored.Permute(invertPerm(m.Perm))
}

func invertPerm(p []int) []int {
	inv := make([]int, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// FindDualXOR implements the Section VII-B search: every byte position
// whose decoded 64-bit table (under either slice order) carries a bare
// 2-input XOR in one half and any function of up to five dependent
// variables in the other. lo and hi bound the scanned byte interval
// (hi ≤ 0 means the end of the bitstream), modelling the paper's
// constrained search over 200 000 positions. The scan runs on the
// Scanner's worker pool with the blank-fabric prefilter, so empty
// regions never pay for a 64-bit LUT decode.
func FindDualXOR(b []byte, lo, hi int) []int {
	s := NewScanner(FindOptions{})
	s.AddDualXOR("w", lo, hi)
	return s.Scan(b).DualHits["w"]
}
