package core

import (
	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
)

// This file transliterates Algorithm 1 of the paper as written —
// FINDLUT(B, k, f, d, r) with its nested loops over all input
// permutations P_k, all byte positions, and all sub-vector orders P_r,
// with marking — without the indexing optimizations of FindLUT. It
// serves three purposes: executable documentation of the published
// algorithm, an oracle for equivalence tests of the optimized scanner,
// and the baseline of the search-optimization ablation benchmarks.

// RefParams are the explicit parameters of Algorithm 1. k is fixed at 6
// by the ξ mapping of the 7-series family; d and r are free exactly as
// in the paper's signature ("offset d (depends on the FPGA)", "number of
// partitions r (depends on the FPGA)").
type RefParams struct {
	// D is the byte offset between consecutive sub-vectors.
	D int
	// R is the number of sub-vectors the permuted table splits into;
	// must divide 8 (the table's byte count).
	R int
	// AllOrders iterates all r! sub-vector orders as in the pseudocode;
	// false restricts to the two orders that occur on real parts.
	AllOrders bool
}

// SevenSeries returns the parameters of Section V-A: r = 4 sub-vectors
// at d = 101 bytes.
func SevenSeries() RefParams {
	return RefParams{D: bitstream.SubVectorOffset, R: bitstream.SubVectors}
}

// partitionXi permutes f through ξ and splits the resulting 8 bytes into
// r sub-vectors of 8/r bytes (B₁ first).
func partitionXi(f boolfn.TT, r int) [][]byte {
	xi := bitstream.Xi(f)
	per := 8 / r
	out := make([][]byte, r)
	for j := 0; j < r; j++ {
		sub := make([]byte, per)
		for b := 0; b < per; b++ {
			sub[b] = byte(xi >> uint(8*(j*per+b)))
		}
		out[j] = sub
	}
	return out
}

// FindLUTReference is Algorithm 1. It returns the set L of byte indexes
// where a 6-LUT implementing f (under some input order and sub-vector
// order) may be located, in ascending order.
func FindLUTReference(bs []byte, f boolfn.TT, p RefParams) []int {
	if p.R <= 0 || 8%p.R != 0 {
		panic("core: R must divide the 8 table bytes")
	}
	m := 8/p.R - 1 // sub-vector length minus one, in bytes
	// Line 2-3: compute the permutation sets.
	pk := boolfn.Permutations(boolfn.MaxVars)
	var pr [][]int
	if p.AllOrders {
		pr = boolfn.Permutations(p.R)
	} else {
		switch p.R {
		case 4:
			lOrd := bitstream.SubVectorOrder(bitstream.SliceL)
			mOrd := bitstream.SubVectorOrder(bitstream.SliceM)
			pr = [][]int{lOrd[:], mOrd[:]}
		default:
			// Without family knowledge, fall back to the identity order.
			id := make([]int, p.R)
			for i := range id {
				id[i] = i
			}
			pr = [][]int{id}
		}
	}
	marked := make(map[int]bool)
	var out []int
	limit := len(bs) - (p.R-1)*p.D - (m + 1)
	// Line 4: for each input order.
	for _, perm := range pk {
		// Lines 5-8: truth table for this order, ξ, partition.
		sub := partitionXi(f.Permute(perm), p.R)
		// Line 9: for each byte position.
		for l := 0; l <= limit; l++ {
			// Line 10: skip marked positions.
			if marked[l] {
				continue
			}
			// Line 11: for each sub-vector order.
			for _, j := range pr {
				ok := true
				for q := 0; q < p.R && ok; q++ {
					want := sub[j[q]]
					off := l + q*p.D
					for b := 0; b <= m; b++ {
						if bs[off+b] != want[b] {
							ok = false
							break
						}
					}
				}
				// Lines 12-14: record and mark.
				if ok {
					out = append(out, l)
					marked[l] = true
					break
				}
			}
		}
	}
	// The per-permutation outer loop emits indexes out of order; sort.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
