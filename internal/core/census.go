package core

import (
	"sort"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
)

// Census-guided candidate discovery: instead of guessing a candidate
// catalogue from the block diagram (Section VI-B), a modern attacker
// with full LUT extraction ([14], prjxray) can shortlist target classes
// directly from the bitstream: group every extracted LUT by
// P-equivalence class and keep the classes whose function sees some
// input pair only through its XOR — the signature of covering the
// 2-input XOR node v. On the unprotected design this recovers exactly
// the f2/f8/f19 populations without any guessing; on the protected
// design it drowns in the 192 indistinguishable XOR2 LUTs, which is the
// countermeasure's point.

// CensusClass is one shortlisted P-equivalence class.
type CensusClass struct {
	// Canon is the class representative.
	Canon boolfn.TT
	// Count is the number of extracted LUTs in the class.
	Count int
	// Groups are the XOR-transparent variable groups of the canon.
	Groups [][]int
	// Expr is the minimized sum-of-products of the canon.
	Expr string
}

// CensusCandidates extracts every LUT from a plaintext bitstream image,
// groups them by P-class and returns the classes with XOR structure and
// at least minCount members, largest first.
func CensusCandidates(img []byte, minCount int) ([]CensusClass, error) {
	return censusCandidates(img, minCount, boolfn.PClassCanon)
}

// CensusAllClasses returns every P-class with at least minCount members,
// including classes without XOR structure (the census-guided attack needs
// the plain MUX classes too; Groups is empty for them).
func CensusAllClasses(img []byte, minCount int) ([]CensusClass, error) {
	return censusAll(img, minCount, boolfn.PClassCanon, false)
}

// CensusCandidatesNPN groups by the coarser NPN classes instead,
// catching implementations that absorbed input or output inverters into
// the LUTs (polarity variants like f1/f2 merge into one class).
func CensusCandidatesNPN(img []byte, minCount int) ([]CensusClass, error) {
	return censusCandidates(img, minCount, boolfn.NPNCanon)
}

func censusCandidates(img []byte, minCount int, canonOf func(boolfn.TT) boolfn.TT) ([]CensusClass, error) {
	return censusAll(img, minCount, canonOf, true)
}

func censusAll(img []byte, minCount int, canonOf func(boolfn.TT) boolfn.TT, xorOnly bool) ([]CensusClass, error) {
	luts, err := bitstream.ExtractLUTs(img)
	if err != nil {
		return nil, err
	}
	// Canonicalize distinct tables once; NPN canon is much heavier than
	// P canon and designs repeat tables heavily.
	canonCache := map[boolfn.TT]boolfn.TT{}
	counts := map[boolfn.TT]int{}
	for _, l := range luts {
		c, ok := canonCache[l.Init]
		if !ok {
			c = canonOf(l.Init)
			canonCache[l.Init] = c
		}
		counts[c]++
	}
	var out []CensusClass
	for canon, n := range counts {
		if n < minCount {
			continue
		}
		groups := boolfn.XorGroups(canon)
		if xorOnly && len(groups) == 0 {
			continue
		}
		out = append(out, CensusClass{
			Canon:  canon,
			Count:  n,
			Groups: groups,
			Expr:   boolfn.Minimize(canon),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Canon < out[j].Canon
	})
	return out, nil
}
