package core

import (
	"errors"
	"fmt"
	"sort"

	"snowbma/internal/bitstream"
	"snowbma/internal/device"
	"snowbma/internal/hdl"
	"snowbma/internal/obs"
)

// The verification phases of the attack are candidate sweeps: many
// variants of one bitstream that differ in a few LUT truth tables each.
// On hardware every trial costs a full reconfiguration (Report.Loads,
// the paper's cost metric); in the simulator the sweep packs up to 256
// candidates into one bitsliced fabric pass. The two accountings are
// kept strictly separate — Loads counts modeled hardware trials exactly
// as the scalar path would, BatchStats counts what the simulator
// actually executed.

// DefaultLanes is the sweep width a new Attack starts with: two
// register-slot words, i.e. 128 lanes. The standard attack's candidate
// families run to ~100 members, so 128 lanes covers each family in one
// fabric pass while a two-word pass stays cheaper per lane than the
// four-word maximum width at partial occupancy.
const DefaultLanes = 2 * device.LaneWordBits

// ErrLanes is wrapped by ValidateLanes (and therefore SetLanes) for
// out-of-range sweep widths.
var ErrLanes = errors.New("lanes out of range")

// ValidateLanes is the single lane-width validator: every boundary that
// accepts a sweep width — the facade options, the CLI flags, the
// campaign config, the service job spec — routes through it, so the
// accepted range and the error shape cannot drift apart.
func ValidateLanes(n int) error {
	if n < 1 || n > device.MaxLanes {
		return fmt.Errorf("core: %w: must be between 1 and %d, got %d", ErrLanes, device.MaxLanes, n)
	}
	return nil
}

// SetLanes sets the candidate-sweep width (lanes per bitsliced fabric
// pass). Width 1 disables batching and evaluates every candidate on the
// scalar path.
func (a *Attack) SetLanes(n int) error {
	if err := ValidateLanes(n); err != nil {
		return err
	}
	a.lanes = n
	a.rep.Batch.Width = n
	return nil
}

// BatchStats surfaces the simulator-side cost of the candidate sweeps,
// deliberately separate from Report.Loads: a fabric pass evaluates up
// to 256 candidate lanes but models that many individual
// reconfigurations on real hardware, so Loads (and HardwareEstimate)
// are invariant under the sweep width. LaneWords counts what a pass
// actually costs the simulator — a 100-lane pass runs two 64-lane
// register words regardless of occupancy.
type BatchStats struct {
	Width         int // configured sweep width (lanes per fabric pass)
	Passes        int // bitsliced fabric passes executed
	LaneWords     int // 64-lane register words swept across all passes
	Lanes         int // candidate lanes evaluated across all passes
	Fallbacks     int // candidates diverted to the scalar path
	PatchedFrames int // frame patches applied across all lanes
	// Scalar-path incremental reconfiguration counters (mirrors of the
	// bitstream.Resealer / bitstream.CRCCache counters).
	IncrementalReseals int
	FullReseals        int
	IncrementalCRCs    int
	FullCRCs           int
}

// batchLoader is the optional fast path of a Victim: a device whose
// simulator can instantiate up to 64 lane-patched copies of one base
// configuration. *device.FPGA implements it; a victim that does not is
// served entirely by the scalar path.
type batchLoader interface {
	LoadPatched(img []byte, patches []bitstream.PatchSet) (*device.Batch, error)
	// BatchOf skips the base image load when the device still holds the
	// base configuration from the previous pass.
	BatchOf(patches []bitstream.PatchSet) (*device.Batch, error)
}

// batchInfo caches the frame geometry needed to classify candidate
// diffs: lane patches must stay inside the CLB or BRAM frame regions
// (anything touching the header or description frames — or bytes
// outside the FDRI payload — changes shared structure and takes the
// scalar path).
type batchInfo struct {
	parsed      *bitstream.Parsed
	descStart   int
	bramStart   int
	totalFrames int
}

func (a *Attack) batchSetup() (*batchInfo, bool) {
	if !a.batchTried {
		a.batchTried = true
		if p, err := bitstream.ParsePackets(a.plain); err == nil {
			if regions, err := bitstream.ParseRegions(p.FDRI(a.plain)); err == nil {
				a.batchInfo = &batchInfo{
					parsed:      p,
					descStart:   regions.DescOff / bitstream.FrameBytes,
					bramStart:   regions.BRAMOff / bitstream.FrameBytes,
					totalFrames: regions.TotalLen / bitstream.FrameBytes,
				}
			}
		}
	}
	return a.batchInfo, a.batchInfo != nil
}

func (bi *batchInfo) batchable(ps bitstream.PatchSet) bool {
	for _, fp := range ps {
		if fp.Frame <= 0 || fp.Frame >= bi.totalFrames {
			return false
		}
		if fp.Frame >= bi.descStart && fp.Frame < bi.bramStart {
			return false
		}
	}
	return true
}

// baseImage returns the image the batch evaluator configures its lanes
// from: the plaintext copy, or the sealed base when the victim's flash
// was encrypted (sealed once, reused for every pass).
func (a *Attack) baseImage() ([]byte, error) {
	if a.env == nil {
		return a.plain, nil
	}
	r, err := a.ensureResealer()
	if err != nil {
		return nil, err
	}
	return r.SealedBase(), nil
}

func (a *Attack) ensureResealer() (*bitstream.Resealer, error) {
	if !a.resealerTried {
		a.resealerTried = true
		a.resealer, a.resealerErr = bitstream.NewResealer(a.plain, a.env.kE, a.env.kA, a.env.cbcIV)
		if a.resealer != nil {
			a.resealer.Tel = a.tel
		}
	}
	return a.resealer, a.resealerErr
}

func (a *Attack) ensureCRCCache() (*bitstream.CRCCache, error) {
	if !a.crcCacheTried {
		a.crcCacheTried = true
		a.crcCache, a.crcCacheErr = bitstream.NewCRCCache(a.plain)
		if a.crcCache != nil {
			a.crcCache.Tel = a.tel
		}
	}
	return a.crcCache, a.crcCacheErr
}

// syncIncrementalStats mirrors the incremental-reconfiguration counters
// into the report.
func (a *Attack) syncIncrementalStats() {
	if a.resealer != nil {
		a.rep.Batch.IncrementalReseals = a.resealer.Incremental
		a.rep.Batch.FullReseals = a.resealer.Full
	}
	if a.crcCache != nil {
		a.rep.Batch.IncrementalCRCs = a.crcCache.Incremental
		a.rep.Batch.FullCRCs = a.crcCache.Full
	}
}

// sweep evaluates a family of candidate modifications lazily: candidate
// i's lane chunk (up to Attack.lanes candidates) is built, diffed
// against the pristine image and evaluated in one bitsliced fabric pass
// the first time any of its members is consumed. build must write
// candidate i's modification into img (a fresh working copy) and must
// depend only on state that is stable for the lifetime of the sweep.
type sweep struct {
	a     *Attack
	n     int
	build func(i int, img []byte)
	z     [][]uint32
	errs  []error
	done  []bool
	// starts is the width-aware chunk partition: starts[k] is the first
	// candidate of chunk k. Fixed at sweep creation from the width the
	// attack ran with at that point.
	starts []int
	// completed counts evaluated candidates, so chunk progress events
	// carry done/total without rescanning the done slice.
	completed int
}

func (a *Attack) newSweep(count, n int, build func(int, []byte)) *sweep {
	return &sweep{
		a: a, n: n, build: build,
		z:      make([][]uint32, count),
		errs:   make([]error, count),
		done:   make([]bool, count),
		starts: chunkStarts(count, a.lanes),
	}
}

// chunkStarts partitions count candidates into fabric passes of at most
// lanes candidates each. There is no three-word evaluator (LaneWords
// rounds 129..192 lanes up to four words), so a tail chunk that would
// land in that range is split at two words instead: 100 candidates run
// as one 128-lane (two-word) pass, 150 as a 128-lane pass plus a
// 22-lane one-word pass — never a four-word pass at sub-200 occupancy.
func chunkStarts(count, lanes int) []int {
	var starts []int
	for lo := 0; lo < count; {
		starts = append(starts, lo)
		c := min(count-lo, lanes)
		if c > 2*device.LaneWordBits && c <= 3*device.LaneWordBits {
			c = 2 * device.LaneWordBits
		}
		lo += c
	}
	return starts
}

// chunkOf returns the [lo, hi) candidate span of the chunk containing i.
func (s *sweep) chunkOf(i int) (int, int) {
	k := sort.SearchInts(s.starts, i+1) - 1
	hi := len(s.done)
	if k+1 < len(s.starts) {
		hi = s.starts[k+1]
	}
	return s.starts[k], hi
}

// run returns candidate i's keystream. It does no load accounting:
// callers increment Report.Loads when they consume a successful result,
// so lanes evaluated speculatively but never consumed (early exits,
// overlap skips) cost simulator time and zero modeled loads — the
// counter stays byte-for-byte identical to the scalar trial sequence.
func (s *sweep) run(i int) ([]uint32, error) {
	if !s.done[i] {
		s.eval(i)
	}
	return s.z[i], s.errs[i]
}

func (s *sweep) scalar(i int) {
	img := s.a.working()
	s.build(i, img)
	s.z[i], s.errs[i] = s.a.runCandidate(img, s.n)
	s.done[i] = true
	s.completed++
}

func (s *sweep) eval(i int) {
	bl, isBatch := s.a.dev.(batchLoader)
	bi, ok := s.a.batchSetup()
	if s.a.lanes <= 1 || !isBatch || !ok {
		s.scalar(i)
		return
	}
	lo, hi := s.chunkOf(i)
	span := s.a.tel.StartSpan("sweep.chunk",
		obs.KV("lo", lo), obs.KV("hi", hi))
	defer span.End()
	// Each evaluated chunk reports sweep progress on the live bus: a
	// dashboard sees done/total advance chunk by chunk while the sweep
	// runs, long before the phase span closes.
	defer func() {
		s.a.tel.Publish(obs.EventProgress, "sweep.chunk", float64(s.completed),
			obs.KV("total", len(s.done)), obs.KV("lo", lo), obs.KV("hi", hi),
			obs.KV("fallbacks", s.a.rep.Batch.Fallbacks))
	}()
	var idxs []int
	var patches []bitstream.PatchSet
	for j := lo; j < hi; j++ {
		if s.done[j] {
			continue
		}
		img := s.a.working()
		s.build(j, img)
		ps, err := bi.parsed.DiffFrames(s.a.plain, img)
		if err != nil || !bi.batchable(ps) {
			// The modification touches shared structure (false positives
			// matched outside the CLB/BRAM regions): scalar trial, which
			// may legitimately fail to load.
			s.a.rep.Batch.Fallbacks++
			s.z[j], s.errs[j] = s.a.runCandidate(img, s.n)
			s.done[j] = true
			s.completed++
			continue
		}
		idxs = append(idxs, j)
		patches = append(patches, ps)
	}
	if len(idxs) == 0 {
		return
	}
	zs, err := s.a.loadAndRunBatch(bl, patches, s.n)
	if err != nil {
		// The pass failed as a whole (base image rejected, patch set
		// refused): evaluate the chunk on the scalar path instead.
		for _, j := range idxs {
			s.a.rep.Batch.Fallbacks++
			s.scalar(j)
		}
		return
	}
	for k, j := range idxs {
		s.z[j] = zs[k]
		s.done[j] = true
		s.completed++
	}
}

// loadAndRunBatch is the batched analogue of runCandidate: one base
// configuration load, one lane per candidate patch set, one shared
// protocol run. It counts fabric passes and lanes — never Loads, which
// models per-candidate hardware reconfigurations.
func (a *Attack) loadAndRunBatch(bl batchLoader, patches []bitstream.PatchSet, n int) ([][]uint32, error) {
	var batch *device.Batch
	if a.baseLive {
		// The previous pass left the base configuration on the device:
		// reuse it without re-decoding the image.
		b, err := bl.BatchOf(patches)
		if err != nil {
			a.baseLive = false
			return nil, err
		}
		batch = b
	} else {
		base, err := a.baseImage()
		if err != nil {
			return nil, err
		}
		b, err := bl.LoadPatched(base, patches)
		if err != nil {
			return nil, err
		}
		batch = b
		a.baseLive = true
	}
	zs := hdl.GenerateKeystreamBatch(batch, a.iv, n)
	a.rep.Batch.Passes++
	a.rep.Batch.LaneWords += device.LaneWords(len(patches))
	a.rep.Batch.Lanes += len(patches)
	for _, ps := range patches {
		a.rep.Batch.PatchedFrames += ps.Frames()
	}
	a.tel.Histogram("batch.lanes_per_pass").Observe(float64(len(patches)))
	return zs, nil
}
