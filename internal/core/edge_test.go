package core

import (
	"math/rand"
	"testing"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
)

func TestFindLUTTinyBuffer(t *testing.T) {
	if got := FindLUT(make([]byte, 10), boolfn.F2, FindOptions{}); got != nil {
		t.Fatalf("tiny buffer returned %v", got)
	}
	if got := FindLUT(nil, boolfn.F2, FindOptions{}); got != nil {
		t.Fatalf("nil buffer returned %v", got)
	}
}

func TestFindLUTManyWorkersOnSmallInput(t *testing.T) {
	frames := make([]byte, 2*bitstream.FrameBytes)
	if err := bitstream.WriteLUT(frames, bitstream.Loc{Frame: 0, Slot: 5}, boolfn.F8); err != nil {
		t.Fatal(err)
	}
	got := FindLUT(frames, boolfn.F8, FindOptions{Parallel: 64})
	found := false
	for _, m := range got {
		if m.Index == 10 {
			found = true
		}
	}
	if !found {
		t.Fatal("oversubscribed worker count lost the match")
	}
}

func TestWriteReadMatchProperty(t *testing.T) {
	// For random functions, locations and slice types, FindLUT must
	// locate the plant and Write/ReadMatch must round trip arbitrary
	// replacement functions through the matched permutation.
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		f := boolfn.TT(rng.Uint64())
		if f == boolfn.Const0 || f == boolfn.Const1 {
			continue
		}
		frames := make([]byte, 6*bitstream.FrameBytes)
		loc := bitstream.Loc{
			Frame: rng.Intn(6),
			Slot:  rng.Intn(bitstream.SlotsPerFrame),
			Type:  bitstream.SliceType(rng.Intn(2)),
		}
		if err := bitstream.WriteLUT(frames, loc, f); err != nil {
			t.Fatal(err)
		}
		wantIdx := loc.Frame*bitstream.FrameBytes + loc.Slot*bitstream.SubVectorBytes
		var match *Match
		for _, m := range FindLUT(frames, f, FindOptions{}) {
			if m.Index == wantIdx {
				mm := m
				match = &mm
			}
		}
		if match == nil {
			t.Fatalf("trial %d: plant not found", trial)
		}
		if got := ReadMatch(frames, *match); got != f {
			t.Fatalf("trial %d: ReadMatch %v != %v", trial, got, f)
		}
		repl := boolfn.TT(rng.Uint64())
		WriteMatch(frames, *match, repl)
		if got := ReadMatch(frames, *match); got != repl {
			t.Fatalf("trial %d: replacement round trip failed", trial)
		}
		// The physical bytes must decode to the permuted replacement.
		direct, err := bitstream.ReadLUT(frames[:], loc)
		if err != nil {
			t.Fatal(err)
		}
		if direct != repl.Permute(match.Perm) {
			t.Fatalf("trial %d: physical table is not the permuted replacement", trial)
		}
	}
}

func TestFindDualXORBounds(t *testing.T) {
	frames := make([]byte, 3*bitstream.FrameBytes)
	d := boolfn.DualLUT{
		O5: boolfn.Shrink5(boolfn.Xor(boolfn.A(1), boolfn.A(2))),
		O6: boolfn.TT5(0x1234ABCD),
	}
	loc := bitstream.Loc{Frame: 1, Slot: 4, Type: bitstream.SliceL}
	if err := bitstream.WriteLUT(frames, loc, d.Pack()); err != nil {
		t.Fatal(err)
	}
	base := bitstream.FrameBytes + 4*bitstream.SubVectorBytes
	all := FindDualXOR(frames, 0, 0)
	found := false
	for _, l := range all {
		if l == base {
			found = true
		}
	}
	if !found {
		t.Fatal("planted dual-XOR LUT not found in full scan")
	}
	// A window excluding the plant must miss it.
	for _, l := range FindDualXOR(frames, 0, base-10) {
		if l == base {
			t.Fatal("window excluded the plant yet it was reported")
		}
	}
}

func TestCandidateCountsStableAcrossCalls(t *testing.T) {
	victim := buildVictim(t, false, false)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := atk.CountCandidates()
	b := atk.CountCandidates()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("candidate counts not deterministic")
		}
	}
}

func TestAttackEmptyFlash(t *testing.T) {
	if _, err := NewAttack(emptyVictim{}, attackIV, nil); err == nil {
		t.Fatal("attack accepted a victim with empty flash")
	}
}

type emptyVictim struct{}

func (emptyVictim) Load([]byte) error                       { return nil }
func (emptyVictim) SetInput(string, bool)                   {}
func (emptyVictim) Clock()                                  {}
func (emptyVictim) Read(string) bool                        { return false }
func (emptyVictim) ReadFlash() []byte                       { return nil }
func (emptyVictim) SideChannelKey() [bitstream.KeySize]byte { return [bitstream.KeySize]byte{} }
