package core

import (
	"time"

	"snowbma/internal/device"
	"snowbma/internal/obs"
)

// Telemetry integration: the attack carries an optional *obs.Telemetry
// whose span tracer wraps every phase and whose metrics registry backs
// the ScanStats/BatchStats accumulation. The registry is a mirror, not
// a replacement, of the report structs — the structs stay the unit of
// byte-identity (Report.Loads, HardwareEstimate) and the differential
// suite in telemetry_test.go pins that the registry reconstructions
// match them exactly.
//
// Metric taxonomy (see DESIGN.md "Observability"):
//
//	attack.loads                modeled hardware reconfigurations (live counter)
//	scan.*                      ScanStats mirror (Set on sync)
//	batch.*                     BatchStats mirror (Set on sync)
//	batch.lanes_per_pass        histogram, observed per fabric pass
//	batch.lane_utilisation      gauge, Lanes / (Passes · Width)
//	device.*                    FPGA events (live counters, device package)
//	bitstream.reseal.*          Resealer fast-path hits (live counters)
//	bitstream.crc.*             CRCCache fast-path hits + checkpoints
//	core.catalogue.*            process-wide catalogue cache (obs.Default)
//
// When a live event bus is attached (obs.Telemetry.AttachBus, done by
// the service layer per job), the attack additionally publishes
// progress events: "sweep.chunk" after each evaluated sweep chunk
// (value = candidates done, attrs total/lo/hi/fallbacks) and
// "attack.verify_zpath" / "attack.resolve_beta" elimination summaries
// (attrs candidates/confirmed-or-survivors/eliminated).

// SetTelemetry attaches a telemetry handle to the attack: phase spans,
// the metrics registry, and (when tel.Log is set) the leveled logger
// replace the attack's current sinks. It also forwards the handle to
// the victim device (when it supports it) and to any already-built
// incremental-reconfiguration caches. A nil tel detaches everything
// except the logger.
func (a *Attack) SetTelemetry(tel *obs.Telemetry) {
	a.tel = tel
	if tel != nil && tel.Log != nil {
		a.log = tel.Log
	}
	if d, ok := a.dev.(interface{ SetTelemetry(*obs.Telemetry) }); ok {
		d.SetTelemetry(tel)
	}
	if a.resealer != nil {
		a.resealer.Tel = tel
	}
	if a.crcCache != nil {
		a.crcCache.Tel = tel
	}
}

// Telemetry returns the attached handle (nil when tracing is off).
func (a *Attack) Telemetry() *obs.Telemetry { return a.tel }

// countLoad is the single site that accounts one modeled hardware
// reconfiguration, keeping Report.Loads and the attack.loads counter
// equal by construction.
func (a *Attack) countLoad() {
	a.rep.Loads++
	a.tel.Counter("attack.loads").Inc()
}

// publishStats mirrors the accumulated ScanStats/BatchStats into the
// registry. Called at phase boundaries and from the Run epilogues; the
// mirrored values are Set (absolute), so repeated publication is
// idempotent.
func (a *Attack) publishStats() {
	// The compiled-program counters live on the victim's simulator;
	// snapshot them into the report whenever stats are synced.
	if cs, ok := a.dev.(interface{ CompileStats() device.CompileStats }); ok {
		a.rep.Fabric = cs.CompileStats()
	}
	if a.tel == nil || a.tel.Metrics == nil {
		return
	}
	publishScanStats(a.tel.Metrics, a.rep.Scan)
	publishBatchStats(a.tel.Metrics, a.rep.Batch)
	if a.crcCache != nil {
		a.tel.Gauge("bitstream.crc.checkpoints").Set(float64(a.crcCache.Checkpoints()))
	}
	if a.resealer != nil {
		a.tel.Gauge("bitstream.reseal.checkpoints").Set(float64(a.resealer.Checkpoints()))
	}
}

func publishScanStats(m *obs.Registry, s ScanStats) {
	m.Counter("scan.functions").Set(int64(s.Functions))
	m.Counter("scan.dual_targets").Set(int64(s.DualTargets))
	m.Counter("scan.candidates_compiled").Set(int64(s.CandidatesCompiled))
	m.Counter("scan.catalogue_hits").Set(int64(s.CatalogueHits))
	m.Counter("scan.catalogue_misses").Set(int64(s.CatalogueMisses))
	m.Counter("scan.bytes").Set(s.BytesScanned)
	m.Counter("scan.passes").Set(s.Passes)
	m.Counter("scan.anchor_probes").Set(s.AnchorProbes)
	m.Counter("scan.anchor_hits").Set(s.AnchorHits)
	m.Counter("scan.deep_compares").Set(s.DeepCompares)
	m.Counter("scan.dual_probes").Set(s.DualProbes)
	m.Counter("scan.dual_decodes").Set(s.DualDecodes)
	m.Gauge("scan.workers").Set(float64(s.Workers))
	m.Counter("scan.compile_ns").Set(int64(s.CompileTime))
	m.Counter("scan.walk_ns").Set(int64(s.ScanTime))
}

// scanStatsFromMetrics reconstructs a ScanStats from the registry
// mirror — the inverse of publishScanStats, pinned equal to the struct
// accumulation by the differential suite.
func scanStatsFromMetrics(m *obs.Registry) ScanStats {
	return ScanStats{
		Functions:          int(m.Counter("scan.functions").Value()),
		DualTargets:        int(m.Counter("scan.dual_targets").Value()),
		CandidatesCompiled: int(m.Counter("scan.candidates_compiled").Value()),
		CatalogueHits:      int(m.Counter("scan.catalogue_hits").Value()),
		CatalogueMisses:    int(m.Counter("scan.catalogue_misses").Value()),
		BytesScanned:       m.Counter("scan.bytes").Value(),
		Passes:             m.Counter("scan.passes").Value(),
		AnchorProbes:       m.Counter("scan.anchor_probes").Value(),
		AnchorHits:         m.Counter("scan.anchor_hits").Value(),
		DeepCompares:       m.Counter("scan.deep_compares").Value(),
		DualProbes:         m.Counter("scan.dual_probes").Value(),
		DualDecodes:        m.Counter("scan.dual_decodes").Value(),
		Workers:            int(m.Gauge("scan.workers").Value()),
		CompileTime:        time.Duration(m.Counter("scan.compile_ns").Value()),
		ScanTime:           time.Duration(m.Counter("scan.walk_ns").Value()),
	}
}

func publishBatchStats(m *obs.Registry, s BatchStats) {
	m.Gauge("batch.width").Set(float64(s.Width))
	m.Counter("batch.passes").Set(int64(s.Passes))
	m.Counter("batch.lane_words").Set(int64(s.LaneWords))
	m.Counter("batch.lanes").Set(int64(s.Lanes))
	m.Counter("batch.fallbacks").Set(int64(s.Fallbacks))
	m.Counter("batch.patched_frames").Set(int64(s.PatchedFrames))
	m.Counter("batch.reseal_incremental").Set(int64(s.IncrementalReseals))
	m.Counter("batch.reseal_full").Set(int64(s.FullReseals))
	m.Counter("batch.crc_incremental").Set(int64(s.IncrementalCRCs))
	m.Counter("batch.crc_full").Set(int64(s.FullCRCs))
	util := 0.0
	if s.Passes > 0 && s.Width > 0 {
		util = float64(s.Lanes) / float64(s.Passes*s.Width)
	}
	m.Gauge("batch.lane_utilisation").Set(util)
}

// batchStatsFromMetrics is the inverse of publishBatchStats.
func batchStatsFromMetrics(m *obs.Registry) BatchStats {
	return BatchStats{
		Width:              int(m.Gauge("batch.width").Value()),
		Passes:             int(m.Counter("batch.passes").Value()),
		LaneWords:          int(m.Counter("batch.lane_words").Value()),
		Lanes:              int(m.Counter("batch.lanes").Value()),
		Fallbacks:          int(m.Counter("batch.fallbacks").Value()),
		PatchedFrames:      int(m.Counter("batch.patched_frames").Value()),
		IncrementalReseals: int(m.Counter("batch.reseal_incremental").Value()),
		FullReseals:        int(m.Counter("batch.reseal_full").Value()),
		IncrementalCRCs:    int(m.Counter("batch.crc_incremental").Value()),
		FullCRCs:           int(m.Counter("batch.crc_full").Value()),
	}
}

// Clone returns a deep copy of the report: mutating the copy (or its
// slices) cannot corrupt a live attack. Match.Perm is cloned too, even
// though the scanner treats it as read-only shared storage.
func (r *Report) Clone() *Report {
	c := *r
	c.CandidateTable = append([]CandidateCount(nil), r.CandidateTable...)
	c.CleanKeystream = append([]uint32(nil), r.CleanKeystream...)
	c.KeyIndependent = append([]uint32(nil), r.KeyIndependent...)
	c.FaultyFinal = append([]uint32(nil), r.FaultyFinal...)
	c.LUT1 = append([]ConfirmedLUT(nil), r.LUT1...)
	for i := range c.LUT1 {
		c.LUT1[i].Match = c.LUT1[i].Match.clone()
	}
	c.LUT2 = cloneMatches(r.LUT2)
	c.LUT3 = cloneMatches(r.LUT3)
	return &c
}

func (m Match) clone() Match {
	m.Perm = append([]int(nil), m.Perm...)
	return m
}

func cloneMatches(ms []Match) []Match {
	if ms == nil {
		return nil
	}
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = m.clone()
	}
	return out
}
