package core

import (
	"math"
	"math/big"
)

// This file reproduces the countermeasure analysis of Section VII:
// Lemma VII-A's Stirling bound on the exhaustive-search effort, the
// decoy-count requirement x ≥ 16/e − 1 ≈ 4.9 for 2¹²⁸ security at
// m = 32, and the C(171, 32) ≈ 2¹¹⁵ cost of attacking the protected
// implementation (Section VII-C).

// Binomial returns C(n, m) exactly.
func Binomial(n, m int) *big.Int {
	return new(big.Int).Binomial(int64(n), int64(m))
}

// Log2Binomial returns log2 C(n, m).
func Log2Binomial(n, m int) float64 {
	b := Binomial(n, m)
	f := new(big.Float).SetInt(b)
	// big.Float has no Log2; use the exponent plus a mantissa correction.
	mant := new(big.Float)
	exp := f.MantExp(mant)
	m64, _ := mant.Float64()
	return float64(exp) + math.Log2(m64)
}

// LemmaBound evaluates the Lemma VII-A upper bound (e·(m+r)/m)^m on the
// number of m-subsets of m+r candidates, as log2.
func LemmaBound(m, r int) float64 {
	return float64(m) * math.Log2(math.E*float64(m+r)/float64(m))
}

// SearchEffort returns log2 of the exact exhaustive-search effort
// C(m+r, m) for m targets hidden among m+r equal candidates.
func SearchEffort(m, r int) float64 {
	return Log2Binomial(m+r, m)
}

// MinDecoyRatio returns the smallest integer x such that r = m·x decoys
// push the Lemma VII-A bound to at least securityBits. For m = 32 and
// 128 bits this is 5 (the paper's x ≥ 16/e − 1 ≈ 4.9).
func MinDecoyRatio(m, securityBits int) int {
	for x := 1; ; x++ {
		if LemmaBound(m, m*x) >= float64(securityBits) {
			return x
		}
	}
}

// PaperRatioLowerBound is the closed form 16/e − 1 from Section VII-A.
func PaperRatioLowerBound() float64 { return 16/math.E - 1 }

// ProtectedSearchBits reproduces Section VII-C: with `candidates`
// remaining dual-output XOR candidates after pruning, picking which 32
// implement v costs log2 C(candidates, 32) bits of work (the paper
// computes C(171, 32) ≈ 4.9 × 10³⁴ ≈ 2¹¹⁵).
func ProtectedSearchBits(candidates int) float64 {
	if candidates < 32 {
		return 0
	}
	return Log2Binomial(candidates, 32)
}
