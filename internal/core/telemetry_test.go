package core

import (
	"bytes"
	"reflect"
	"testing"

	"snowbma/internal/obs"
)

// runWithTelemetry executes one full attack with a fresh telemetry
// handle and returns the report and the handle.
func runWithTelemetry(t *testing.T) (*Report, *obs.Telemetry) {
	t.Helper()
	victim := buildVictim(t, false, false)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.New()
	atk.SetTelemetry(tel)
	rep, err := atk.Run()
	if err != nil {
		t.Fatalf("attack failed: %v", err)
	}
	return rep, tel
}

// TestTelemetryDifferentialStats pins the mirror design: the metrics
// registry must reconstruct to exactly the ScanStats/BatchStats the
// report accumulated, and the attack.loads counter must equal
// Report.Loads (countLoad is the single accounting site).
func TestTelemetryDifferentialStats(t *testing.T) {
	rep, tel := runWithTelemetry(t)

	if got := tel.Counter("attack.loads").Value(); got != int64(rep.Loads) {
		t.Fatalf("attack.loads counter = %d, Report.Loads = %d", got, rep.Loads)
	}
	gotScan := scanStatsFromMetrics(tel.Metrics)
	if gotScan != rep.Scan {
		t.Fatalf("registry scan stats diverge:\n got %+v\nwant %+v", gotScan, rep.Scan)
	}
	gotBatch := batchStatsFromMetrics(tel.Metrics)
	if gotBatch != rep.Batch {
		t.Fatalf("registry batch stats diverge:\n got %+v\nwant %+v", gotBatch, rep.Batch)
	}
	if rep.Batch.Passes > 0 {
		hv := tel.Histogram("batch.lanes_per_pass").Value()
		if hv.Count != int64(rep.Batch.Passes) {
			t.Fatalf("lanes_per_pass observations %d, passes %d", hv.Count, rep.Batch.Passes)
		}
		if int(hv.Sum) != rep.Batch.Lanes {
			t.Fatalf("lanes_per_pass sum %v, lanes %d", hv.Sum, rep.Batch.Lanes)
		}
	}
}

// TestTelemetryIdenticalToUntraced pins the overhead contract at the
// semantic level: attaching telemetry must not change a single
// deterministic report field relative to an untraced run (timing and
// worker-pool fields excepted).
func TestTelemetryIdenticalToUntraced(t *testing.T) {
	victim := buildVictim(t, false, false)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	plainRep, err := atk.Run()
	if err != nil {
		t.Fatalf("untraced attack failed: %v", err)
	}
	tracedRep, _ := runWithTelemetry(t)

	norm := func(r *Report) *Report {
		c := r.Clone()
		c.Scan.CompileTime = 0
		c.Scan.ScanTime = 0
		return c
	}
	if !reflect.DeepEqual(norm(plainRep), norm(tracedRep)) {
		t.Fatalf("traced report diverges from untraced baseline:\n got %+v\nwant %+v",
			norm(tracedRep), norm(plainRep))
	}
}

// TestTelemetrySpanTree checks the phase-span taxonomy: one attack.run
// root whose children include every phase, with the scanner pass nested
// under the batch-scan phase.
func TestTelemetrySpanTree(t *testing.T) {
	_, tel := runWithTelemetry(t)

	roots := tel.Tracer.Roots()
	if len(roots) != 1 || roots[0].Name() != "attack.run" {
		t.Fatalf("expected single attack.run root, got %d roots", len(roots))
	}
	if !roots[0].Ended() || roots[0].Duration() <= 0 {
		t.Fatal("attack.run span not closed with a positive duration")
	}
	names := map[string]int{}
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		names[s.Name()]++
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(roots[0])
	for _, phase := range []string{
		"attack.batch_scan", "attack.verify_zpath", "attack.collect_feedback",
		"attack.make_key_independent", "attack.resolve_beta",
		"attack.identify_vpairs", "attack.extract_key",
		"scan.pass", "scan.compile", "scan.walk", "device.load",
	} {
		if names[phase] == 0 {
			t.Fatalf("span %q missing from trace (have %v)", phase, names)
		}
	}
	// The scanner pass must nest under the batch-scan phase.
	for _, c := range roots[0].Children() {
		if c.Name() == "attack.batch_scan" {
			ok := false
			for _, g := range c.Children() {
				if g.Name() == "scan.pass" {
					ok = true
				}
			}
			if !ok {
				t.Fatal("scan.pass not nested under attack.batch_scan")
			}
		}
	}
}

// TestTelemetryNDJSONExport round-trips a real attack trace through the
// NDJSON writer: the export must succeed and contain the phase spans and
// the loads counter.
func TestTelemetryNDJSONExport(t *testing.T) {
	rep, tel := runWithTelemetry(t)
	var buf bytes.Buffer
	if err := obs.WriteNDJSON(&buf, tel.Tracer, tel.Metrics); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"type":"meta"`, `"name":"attack.run"`, `"name":"attack.extract_key"`,
		`"name":"attack.loads"`, `"name":"scan.passes"`,
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("NDJSON export missing %s", want)
		}
	}
	_ = rep
}

// TestReportMutationDoesNotCorruptRun is the aliasing regression test:
// Report() hands out a deep copy, so callers scribbling over it (slices
// included) must not perturb the attack's subsequent phases.
func TestReportMutationDoesNotCorruptRun(t *testing.T) {
	victim := buildVictim(t, false, false)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Partial run, then vandalize the returned snapshot.
	atk.CountCandidates()
	snap := atk.Report()
	for i := range snap.CandidateTable {
		snap.CandidateTable[i].Count = -1
	}
	snap.Loads = 9999
	snap.CleanKeystream = append(snap.CleanKeystream, 0xDEADBEEF)

	rep, err := atk.Run()
	if err != nil {
		t.Fatalf("attack failed after report mutation: %v", err)
	}
	if rep.Key != secretKey || !rep.Verified {
		t.Fatalf("attack corrupted by report mutation: key %08x verified=%v", rep.Key, rep.Verified)
	}
	for _, row := range rep.CandidateTable {
		if row.Count < 0 {
			t.Fatal("mutation of the returned candidate table leaked into the attack")
		}
	}
	if rep.Loads >= 9999 {
		t.Fatalf("loads %d inherited the vandalized snapshot", rep.Loads)
	}

	// The final report is itself a copy: deep-mutate it and re-read.
	rep.LUT1[0].Bit = -5
	rep.LUT1[0].Match.Perm[0] = 99
	again := atk.Report()
	if again.LUT1[0].Bit == -5 {
		t.Fatal("Report aliases ConfirmedLUT storage")
	}
	if again.LUT1[0].Match.Perm[0] == 99 {
		t.Fatal("Report aliases Match.Perm storage")
	}
}
