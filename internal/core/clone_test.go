package core

import (
	"reflect"
	"testing"
)

// fillValue populates v with deterministic non-zero data: every slice
// gets two elements, every struct field is filled recursively. Keeping
// the filler reflective means a field added to Report later is covered
// automatically — there is no hand-maintained list to forget.
func fillValue(v reflect.Value, seed *int) {
	*seed++
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(*seed))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(uint64(*seed))
	case reflect.Float32, reflect.Float64:
		v.SetFloat(float64(*seed))
	case reflect.String:
		v.SetString("x")
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 2, 2)
		for i := 0; i < s.Len(); i++ {
			fillValue(s.Index(i), seed)
		}
		v.Set(s)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillValue(v.Index(i), seed)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).CanSet() {
				fillValue(v.Field(i), seed)
			}
		}
	}
}

// checkNoAliasing walks a and b (the original and its clone) in
// lockstep and fails on any shared backing array.
func checkNoAliasing(t *testing.T, path string, a, b reflect.Value) {
	t.Helper()
	switch a.Kind() {
	case reflect.Slice:
		if a.Len() > 0 && a.Pointer() == b.Pointer() {
			t.Errorf("%s: clone aliases the original's backing array", path)
		}
		for i := 0; i < a.Len() && i < b.Len(); i++ {
			checkNoAliasing(t, path+"[i]", a.Index(i), b.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			checkNoAliasing(t, path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i))
		}
	case reflect.Ptr:
		if !a.IsNil() && !b.IsNil() {
			if a.Pointer() == b.Pointer() {
				t.Errorf("%s: clone shares a pointer with the original", path)
			}
			checkNoAliasing(t, path, a.Elem(), b.Elem())
		}
	}
}

// TestReportCloneDeepCopiesEveryField is the reflective deep-copy
// regression: Clone must not share mutable memory with the original for
// ANY field, including ones added after this test was written.
func TestReportCloneDeepCopiesEveryField(t *testing.T) {
	var r Report
	seed := 0
	fillValue(reflect.ValueOf(&r).Elem(), &seed)
	c := r.Clone()
	if !reflect.DeepEqual(&r, c) {
		t.Fatalf("clone is not value-equal to the original:\n got %+v\nwant %+v", c, &r)
	}
	checkNoAliasing(t, "Report", reflect.ValueOf(r), reflect.ValueOf(*c))

	// Belt and braces: mutate every slice in the original and confirm
	// the clone is untouched.
	snapshot := c.Clone()
	var scramble func(v reflect.Value)
	scramble = func(v reflect.Value) {
		switch v.Kind() {
		case reflect.Slice:
			for i := 0; i < v.Len(); i++ {
				scramble(v.Index(i))
			}
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				if v.Field(i).CanSet() {
					scramble(v.Field(i))
				}
			}
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			v.SetInt(0)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			v.SetUint(0)
		case reflect.String:
			v.SetString("")
		case reflect.Bool:
			v.SetBool(false)
		}
	}
	for i := 0; i < reflect.ValueOf(&r).Elem().NumField(); i++ {
		f := reflect.ValueOf(&r).Elem().Field(i)
		if f.Kind() == reflect.Slice {
			scramble(f)
		}
	}
	if !reflect.DeepEqual(c, snapshot) {
		t.Fatal("mutating the original's slices changed the clone")
	}
}
