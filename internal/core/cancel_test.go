package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"snowbma/internal/device"
	"snowbma/internal/snow3g"
)

func TestRunCancelledBeforeStart(t *testing.T) {
	dev := buildVictim(t, false, false)
	atk, err := NewAttack(dev, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	atk.SetContext(ctx)
	rep, err := atk.Run()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run with cancelled ctx = %v, want ErrCancelled", err)
	}
	if rep.Verified || rep.Key != (snow3g.Key{}) {
		t.Fatalf("cancelled run leaked a key: verified=%v key=%08x", rep.Verified, rep.Key)
	}
	if rep.Loads != 0 {
		t.Fatalf("cancelled-before-start run counted %d loads, want 0", rep.Loads)
	}
}

// cancellingVictim cancels a context after a fixed number of Load calls,
// so cancellation lands deterministically mid-sweep.
type cancellingVictim struct {
	Victim
	cancel    context.CancelFunc
	after     int64
	loads     atomic.Int64
	postLoads atomic.Int64 // loads observed after the cancellation fired
}

func (c *cancellingVictim) Load(img []byte) error {
	n := c.loads.Add(1)
	if n == c.after {
		c.cancel()
	}
	if n > c.after {
		c.postLoads.Add(1)
	}
	return c.Victim.Load(img)
}

func TestRunCancelledMidSweepStopsWithinOneChunk(t *testing.T) {
	for _, lanes := range []int{1, DefaultLanes} {
		dev := buildVictim(t, false, false)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		// Fire the cancellation on the 3rd configuration-port load: inside
		// the z-path verification sweep for every lane width.
		cv := &cancellingVictim{Victim: dev, cancel: cancel, after: 3}
		atk, err := NewAttack(cv, attackIV, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := atk.SetLanes(lanes); err != nil {
			t.Fatal(err)
		}
		atk.SetContext(ctx)
		rep, err := atk.Run()
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("lanes=%d: Run = %v, want ErrCancelled", lanes, err)
		}
		if rep.Verified || rep.Key != (snow3g.Key{}) {
			t.Fatalf("lanes=%d: cancelled run leaked a key", lanes)
		}
		// The next checkpoint stops the run within the in-flight chunk:
		// after the cancellation fires, the only port activity allowed is
		// the remainder of that chunk (scalar path: none at all) plus the
		// epilogue's restore load.
		budget := int64(1) // epilogue restore
		if lanes > 1 {
			budget += int64(lanes)
		}
		if got := cv.postLoads.Load(); got > budget {
			t.Fatalf("lanes=%d: %d loads after cancellation, budget %d (one chunk + restore)",
				lanes, got, budget)
		}
	}
}

func TestRunCensusGuidedCancelled(t *testing.T) {
	dev := buildVictim(t, false, false)
	atk, err := NewAttack(dev, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	atk.SetContext(ctx)
	rep, err := atk.RunCensusGuided()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("RunCensusGuided with cancelled ctx = %v, want ErrCancelled", err)
	}
	if rep.Verified || rep.Key != (snow3g.Key{}) {
		t.Fatal("cancelled census run leaked a key")
	}
}

func TestSetContextNilRestoresBackground(t *testing.T) {
	dev := buildVictim(t, false, false)
	atk, err := NewAttack(dev, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	atk.SetContext(ctx)
	atk.SetContext(nil)
	rep, err := atk.Run()
	if err != nil {
		t.Fatalf("Run after SetContext(nil) = %v, want success", err)
	}
	if !rep.Verified || rep.Key != secretKey {
		t.Fatal("attack with background context failed to recover the key")
	}
}

func TestValidateLanes(t *testing.T) {
	for _, n := range []int{1, 2, DefaultLanes, device.MaxLanes} {
		if err := ValidateLanes(n); err != nil {
			t.Fatalf("ValidateLanes(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -1, device.MaxLanes + 1} {
		if err := ValidateLanes(n); !errors.Is(err, ErrLanes) {
			t.Fatalf("ValidateLanes(%d) = %v, want ErrLanes", n, err)
		}
	}
}
