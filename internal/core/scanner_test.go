package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
)

// The differential suite: the batch Scanner must be byte-identical to
// per-function FindLUT and to FindLUTReference (Algorithm 1 as written)
// on every option path, and FindDualXOR must be byte-identical to the
// literal serial sweep it replaced.

// scannerTestFuncs is the function set the differential tests batch:
// the three confirmed paper targets plus a guessed MUX shape (small
// support → misaligned false positives, stressing the demultiplexer).
func scannerTestFuncs() []boolfn.TT {
	return []boolfn.TT{
		boolfn.F2,
		boolfn.F8,
		boolfn.F19,
		boolfn.MustParse("a1a2 + !a1a3"),
	}
}

// plantImage builds a frame image with LUTs planted for permuted
// variants of the test functions in both slice types, plus deterministic
// noise bytes in an unused tail region (noise may create false
// positives; both scan paths must agree on them too).
func plantImage(t testing.TB) []byte {
	t.Helper()
	img := make([]byte, 24*bitstream.FrameBytes)
	rng := rand.New(rand.NewSource(99))
	fns := scannerTestFuncs()
	for i, f := range fns {
		for j, typ := range []bitstream.SliceType{bitstream.SliceL, bitstream.SliceM} {
			perm := boolfn.Permutations(boolfn.MaxVars)[rng.Intn(720)]
			loc := bitstream.Loc{Frame: 2*i + j, Slot: 3 + 5*i + j, Type: typ}
			if err := bitstream.WriteLUT(img, loc, f.Permute(perm)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Dual-output XOR plants for the Section VII-B predicate.
	for i := 0; i < 3; i++ {
		d := boolfn.DualLUT{
			O5: boolfn.Shrink5(boolfn.Xor(boolfn.A(1+i%2), boolfn.A(3))),
			O6: boolfn.TT5(rng.Uint32()),
		}
		loc := bitstream.Loc{Frame: 10 + i, Slot: 7 * i, Type: bitstream.SliceType(i % 2)}
		if err := bitstream.WriteLUT(img, loc, d.Pack()); err != nil {
			t.Fatal(err)
		}
	}
	// Noise tail.
	noise := img[18*bitstream.FrameBytes:]
	for i := range noise {
		noise[i] = byte(rng.Intn(256))
	}
	return img
}

func matchesEqual(t *testing.T, label string, batch, single []Match) {
	t.Helper()
	if len(batch) != len(single) {
		t.Fatalf("%s: batch found %d matches, sequential %d", label, len(batch), len(single))
	}
	for i := range batch {
		if batch[i].Index != single[i].Index || batch[i].Order != single[i].Order ||
			!reflect.DeepEqual(batch[i].Perm, single[i].Perm) {
			t.Fatalf("%s: match %d differs: batch %+v vs sequential %+v",
				label, i, batch[i], single[i])
		}
	}
}

func TestScannerBatchEquivalence(t *testing.T) {
	img := plantImage(t)
	fns := scannerTestFuncs()
	for _, opt := range []FindOptions{
		{},
		{Parallel: 1},
		{Parallel: 64},
		{NoPermDedup: true},
		{ExhaustiveOrders: true},
		{ExhaustiveOrders: true, NoPermDedup: true},
	} {
		label := fmt.Sprintf("opt=%+v", opt)
		s := NewScanner(opt)
		for i, f := range fns {
			s.AddFunction(fmt.Sprintf("fn%d", i), f)
		}
		res := s.Scan(img)
		for i, f := range fns {
			single := FindLUT(img, f, opt)
			matchesEqual(t, fmt.Sprintf("%s fn%d", label, i),
				res.Matches[fmt.Sprintf("fn%d", i)], single)
		}
	}
}

func TestScannerMatchesAlgorithm1Reference(t *testing.T) {
	img := plantImage(t)[:6*bitstream.FrameBytes] // the reference is slow
	for _, f := range scannerTestFuncs() {
		for _, exhaustive := range []bool{false, true} {
			opt := FindOptions{ExhaustiveOrders: exhaustive}
			p := SevenSeries()
			p.AllOrders = exhaustive
			want := FindLUTReference(img, f, p)
			s := NewScanner(opt)
			s.AddFunction("f", f)
			got := s.Scan(img).Matches["f"]
			if len(got) != len(want) {
				t.Fatalf("%v exhaustive=%v: scanner %d indexes, Algorithm 1 %d",
					f, exhaustive, len(got), len(want))
			}
			for i := range got {
				if got[i].Index != want[i] {
					t.Fatalf("%v exhaustive=%v: index %d is %d, Algorithm 1 says %d",
						f, exhaustive, i, got[i].Index, want[i])
				}
			}
		}
	}
}

// findDualXORSerial is the literal pre-scanner sweep (two full 64-bit
// decodes at every byte offset, no prefilter, no workers) kept as the
// oracle for the routed implementation.
func findDualXORSerial(b []byte, lo, hi int) []int {
	span := (bitstream.SubVectors-1)*bitstream.SubVectorOffset + bitstream.SubVectorBytes
	if hi <= 0 || hi > len(b)-span {
		hi = len(b) - span
	}
	if lo < 0 {
		lo = 0
	}
	var hits []int
	for l := lo; l <= hi; l++ {
		var sub [bitstream.SubVectors][bitstream.SubVectorBytes]byte
		for q := 0; q < bitstream.SubVectors; q++ {
			off := l + q*bitstream.SubVectorOffset
			sub[q][0], sub[q][1] = b[off], b[off+1]
		}
		for _, order := range []bitstream.SliceType{bitstream.SliceL, bitstream.SliceM} {
			if boolfn.DualXorCandidate(bitstream.DecodeLUT(sub, order)) {
				hits = append(hits, l)
				break
			}
		}
	}
	return hits
}

func TestFindDualXORMatchesSerialSweep(t *testing.T) {
	img := plantImage(t)
	for _, window := range [][2]int{
		{0, 0},
		{0, 5 * bitstream.FrameBytes},
		{3 * bitstream.FrameBytes, 12 * bitstream.FrameBytes},
		{-7, len(img) + 100},
		{17 * bitstream.FrameBytes, 0},
	} {
		want := findDualXORSerial(img, window[0], window[1])
		got := FindDualXOR(img, window[0], window[1])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("window %v: routed %v, serial oracle %v", window, got, want)
		}
		if window == [2]int{0, 0} && len(want) < 3 {
			t.Fatalf("full sweep found %d hits, want the 3 plants", len(want))
		}
	}
}

func TestScannerDualWindowsShareOnePass(t *testing.T) {
	img := plantImage(t)
	s := NewScanner(FindOptions{})
	s.AddDualXOR("all", 0, 0)
	s.AddDualXOR("head", 0, 5*bitstream.FrameBytes)
	res := s.Scan(img)
	if res.Stats.Passes != 1 {
		t.Fatalf("two windows took %d passes, want 1", res.Stats.Passes)
	}
	if !reflect.DeepEqual(res.DualHits["all"], findDualXORSerial(img, 0, 0)) {
		t.Fatal("full window diverged from the serial oracle")
	}
	if !reflect.DeepEqual(res.DualHits["head"], findDualXORSerial(img, 0, 5*bitstream.FrameBytes)) {
		t.Fatal("head window diverged from the serial oracle")
	}
}

func TestScanStatsObservability(t *testing.T) {
	ResetCatalogueCache()
	img := plantImage(t)
	fns := scannerTestFuncs()
	build := func() *Scanner {
		s := NewScanner(FindOptions{})
		for i, f := range fns {
			s.AddFunction(fmt.Sprintf("fn%d", i), f)
		}
		s.AddDualXOR("dual", 0, 0)
		return s
	}
	cold := build().Scan(img).Stats
	if cold.Functions != len(fns) || cold.DualTargets != 1 {
		t.Fatalf("targets %d/%d, want %d/1", cold.Functions, cold.DualTargets, len(fns))
	}
	if cold.Passes != 1 || cold.BytesScanned == 0 || cold.AnchorProbes == 0 {
		t.Fatalf("walk counters implausible: %+v", cold)
	}
	if cold.CandidatesCompiled == 0 || cold.CatalogueMisses != len(fns) || cold.CatalogueHits != 0 {
		t.Fatalf("cold compile counters wrong: %+v", cold)
	}
	if cold.DualProbes == 0 || cold.DualDecodes == 0 || cold.DualDecodes > cold.DualProbes {
		t.Fatalf("dual counters implausible: %+v", cold)
	}
	// Blank fabric must stay off the decode path: most of the image is
	// empty, so the prefilter must reject the bulk of the probes.
	if cold.DualDecodes*2 > cold.DualProbes {
		t.Fatalf("prefilter ineffective: %d decodes for %d probes", cold.DualDecodes, cold.DualProbes)
	}
	warm := build().Scan(img).Stats
	if warm.CatalogueHits != len(fns) || warm.CatalogueMisses != 0 {
		t.Fatalf("catalogue cache not reused: %+v", warm)
	}
	var acc ScanStats
	acc.Accumulate(cold)
	acc.Accumulate(warm)
	if acc.Passes != 2 || acc.Functions != 2*len(fns) {
		t.Fatalf("accumulation wrong: %+v", acc)
	}
}

// TestScannerIndexReuse pins the scanner-local compiled index: a second
// Scan on the same scanner serves the anchor index from the scanner
// itself (no catalogue traffic, byte-identical results), and a later
// AddFunction invalidates it so the next Scan sees the new query set.
func TestScannerIndexReuse(t *testing.T) {
	img := plantImage(t)
	s := NewScanner(FindOptions{})
	s.AddFunction("f", boolfn.F2)
	first := s.Scan(img)
	second := s.Scan(img)
	if !reflect.DeepEqual(first.Matches, second.Matches) {
		t.Fatal("reused index changed the matches")
	}
	if second.Stats.CatalogueMisses != 0 || second.Stats.CatalogueHits != 1 {
		t.Fatalf("second scan recompiled: %+v", second.Stats)
	}
	if second.Stats.CandidatesCompiled != first.Stats.CandidatesCompiled {
		t.Fatalf("candidate count drifted: %d vs %d",
			second.Stats.CandidatesCompiled, first.Stats.CandidatesCompiled)
	}
	// Re-adding the key with a different function must rebuild the index
	// and produce that function's FindLUT-identical matches.
	s.AddFunction("f", boolfn.F19)
	matchesEqual(t, "post-invalidate", s.Scan(img).Matches["f"],
		FindLUT(img, boolfn.F19, FindOptions{}))
}

func TestScannerWorkerCapOnTinyInput(t *testing.T) {
	frames := make([]byte, 2*bitstream.FrameBytes)
	if err := bitstream.WriteLUT(frames, bitstream.Loc{Frame: 0, Slot: 5}, boolfn.F8); err != nil {
		t.Fatal(err)
	}
	s := NewScanner(FindOptions{Parallel: 1 << 20})
	s.AddFunction("f8", boolfn.F8)
	res := s.Scan(frames)
	if res.Stats.Workers > len(frames) {
		t.Fatalf("%d workers for %d scannable positions", res.Stats.Workers, len(frames))
	}
	found := false
	for _, m := range res.Matches["f8"] {
		if m.Index == 10 {
			found = true
		}
	}
	if !found {
		t.Fatal("oversubscribed scanner lost the plant")
	}
	// The probe window must not extend past the last useful anchor
	// position: limit + maxAnchor·d + 1 ≤ len(b) − 1.
	if res.Stats.AnchorProbes > int64(len(frames)-1) {
		t.Fatalf("probed %d positions in a %d-byte image", res.Stats.AnchorProbes, len(frames))
	}
}

func TestScannerEmptyAndTinyBuffers(t *testing.T) {
	s := NewScanner(FindOptions{})
	s.AddFunction("f", boolfn.F2)
	s.AddDualXOR("d", 0, 0)
	for _, b := range [][]byte{nil, make([]byte, 10), make([]byte, 304)} {
		res := s.Scan(b)
		if res.Matches["f"] != nil || res.DualHits["d"] != nil {
			t.Fatalf("len %d: non-empty result %+v", len(b), res)
		}
	}
}

// FuzzScannerDifferential feeds random frames to the batch scanner, the
// per-function FindLUT loop and the serial dual-XOR oracle; any
// divergence is a bug in the shared-pass demultiplexer.
func FuzzScannerDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 400))
	img := plantImage(f)
	f.Add(img[:2*bitstream.FrameBytes])
	f.Add(img[9*bitstream.FrameBytes : 13*bitstream.FrameBytes])
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 1<<14 {
			b = b[:1<<14]
		}
		fns := []boolfn.TT{boolfn.F2, boolfn.F19, boolfn.MustParse("a1a2 + !a1a3")}
		s := NewScanner(FindOptions{})
		for i, fn := range fns {
			s.AddFunction(fmt.Sprintf("fn%d", i), fn)
		}
		s.AddDualXOR("dual", 0, 0)
		res := s.Scan(b)
		for i, fn := range fns {
			single := FindLUT(b, fn, FindOptions{})
			batch := res.Matches[fmt.Sprintf("fn%d", i)]
			if len(batch) != len(single) {
				t.Fatalf("fn%d: batch %d vs single %d matches", i, len(batch), len(single))
			}
			for j := range batch {
				if batch[j].Index != single[j].Index || batch[j].Order != single[j].Order ||
					!reflect.DeepEqual(batch[j].Perm, single[j].Perm) {
					t.Fatalf("fn%d match %d: %+v vs %+v", i, j, batch[j], single[j])
				}
			}
		}
		if want := findDualXORSerial(b, 0, 0); !reflect.DeepEqual(res.DualHits["dual"], want) {
			t.Fatalf("dual hits %v, serial oracle %v", res.DualHits["dual"], want)
		}
	})
}
