package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/device"
	"snowbma/internal/hdl"
	"snowbma/internal/obs"
	"snowbma/internal/snow3g"
)

// Victim is the attacker's view of the device under attack (Section
// IV-A): physical access to the configuration flash, the documented
// cipher I/O protocol, and — for encrypted bitstreams — a side-channel
// key recovery standing in for [16]–[18]. Nothing else: the attack never
// sees the netlist.
type Victim interface {
	Load([]byte) error
	SetInput(name string, v bool)
	Clock()
	Read(name string) bool
	ReadFlash() []byte
	SideChannelKey() [bitstream.KeySize]byte
}

// ConfirmedLUT records one verified target LUT and the keystream bit it
// drives.
type ConfirmedLUT struct {
	Match Match
	Bit   int
	// KeepVar is the f2 XOR-trio variable identified as s0 by the
	// key-independent procedure (z-path LUTs only).
	KeepVar int
}

// CandidateCount is one row of the Table II / Table VI analogue.
type CandidateCount struct {
	Name  string
	Path  string
	Expr  string
	Count int
}

// Report accumulates everything the attack observed and produced.
type Report struct {
	Encrypted      bool
	CandidateTable []CandidateCount
	CleanKeystream []uint32
	LUT1           []ConfirmedLUT
	LUT2           []Match
	LUT3           []Match
	MuxMatches     int
	MuxHypothesis  string
	KeyIndependent []uint32 // Table III analogue
	FaultyFinal    []uint32 // Table IV analogue
	RecoveredS0    snow3g.State
	Key            snow3g.Key
	IV             snow3g.IV
	Loads          int
	Verified       bool
	// FeedbackPruned counts false-positive feedback candidates (surplus
	// over the 32-LUT hypothesis) excluded by the group-testing pass of
	// the key-independent check. Zero on the paper's design; random
	// placements occasionally produce an extra coincidental f8/f19
	// match elsewhere in the datapath.
	FeedbackPruned int
	// Scan aggregates the batch-scan observability counters over every
	// bitstream pass the attack performed (normally exactly one).
	Scan ScanStats
	// Batch aggregates the bitsliced candidate-sweep counters. Loads
	// models hardware reconfigurations and is invariant under the sweep
	// width; Batch.Passes counts what the simulator actually ran.
	Batch BatchStats
	// Fabric is the compiled flat-program summary of the victim's
	// loaded configuration (zero when the victim's simulator does not
	// expose one).
	Fabric device.CompileStats
}

// HardwareEstimate extrapolates the attack's wall-clock cost on real
// hardware from the number of bitstream loads: each faulty trial costs
// one reconfiguration plus a short keystream capture.
func (r *Report) HardwareEstimate(secondsPerLoad float64) float64 {
	return float64(r.Loads) * secondsPerLoad
}

// Attack drives the end-to-end bitstream modification attack.
type Attack struct {
	dev Victim
	iv  snow3g.IV
	// ctx is the attack's cancellation context (SetContext). checkpoint
	// consults it between phases and between candidate trials, so a
	// cancelled or timed-out run stops within one sweep chunk.
	ctx context.Context
	// log is the structured leveled logger (nil-safe); NewAttack wraps a
	// legacy printf-style callback into one, preserving its signature.
	log *obs.Logger
	// tel is the optional telemetry handle: phase spans and the metrics
	// registry backing the report counters (SetTelemetry).
	tel *obs.Telemetry

	plain []byte // pristine plaintext packets
	env   *envelope
	rep   Report
	// recomputeCRC selects the paper's first Section V-B option
	// (recompute and replace the CRC on every modified copy) instead of
	// the default disable-once approach.
	recomputeCRC bool
	// clbStart is the byte offset of the first CLB frame, derived from
	// the packet structure. Matches for small-support functions (the
	// load MUXes) are pruned to slot-aligned positions: the frame layout
	// is public knowledge (prjxray, [14], [15]), and 3-input functions
	// otherwise drown in misaligned false positives.
	clbStart int
	// scanned memoizes batch-scan results per target function so every
	// attack step reads from one shared bitstream pass; dualHits carries
	// the Section VII-B predicate hits of the same pass.
	scanned  map[boolfn.TT][]Match
	dualHits []int
	// lanes is the candidate-sweep width: how many modified variants one
	// bitsliced simulator pass evaluates (SetLanes; 1 = scalar).
	lanes int
	// batchInfo caches the frame geometry for candidate diff
	// classification; resealer / crcCache hold the incremental
	// reconfiguration state for the scalar path. All are built lazily on
	// the first candidate trial.
	batchInfo     *batchInfo
	batchTried    bool
	// baseLive is true while the victim device still holds the unmodified
	// base configuration from the previous fabric pass, letting the next
	// pass skip the base image decode (device.FPGA.BatchOf).
	baseLive      bool
	resealer      *bitstream.Resealer
	resealerErr   error
	resealerTried bool
	crcCache      *bitstream.CRCCache
	crcCacheErr   error
	crcCacheTried bool
}

type envelope struct {
	kE    [bitstream.KeySize]byte
	kA    [bitstream.KeySize]byte
	cbcIV [16]byte
}

// NewAttack probes the victim's flash and, if the image is encrypted,
// performs the decrypt/recover-K_A step of the attack model. iv is the
// initialization vector the attacker drives during keystream collection
// (any value works; it is recovered alongside the key as a check). logf
// may be nil.
func NewAttack(dev Victim, iv snow3g.IV, logf func(string, ...any)) (*Attack, error) {
	return NewAttackCRCMode(dev, iv, logf, false)
}

// NewAttackCRCMode selects how modified bitstreams pass the
// configuration CRC: recompute-and-replace (recompute = true) or the
// paper's preferred one-time disable (false). Both are Section V-B
// options; encrypted images ignore the choice (their CRC is disabled by
// default, integrity riding on the HMAC).
func NewAttackCRCMode(dev Victim, iv snow3g.IV, logf func(string, ...any), recompute bool) (*Attack, error) {
	a := &Attack{dev: dev, iv: iv, ctx: context.Background(), log: obs.NewFuncLogger(logf), recomputeCRC: recompute, lanes: DefaultLanes}
	a.rep.Batch.Width = a.lanes
	img := dev.ReadFlash()
	if len(img) == 0 {
		return nil, errors.New("core: empty flash image")
	}
	if bitstream.IsEncrypted(img) {
		a.rep.Encrypted = true
		kE := dev.SideChannelKey()
		var cbcIV [16]byte
		copy(cbcIV[:], img[4:20])
		plain, kA, _, err := bitstream.Open(img, kE)
		if err != nil {
			return nil, fmt.Errorf("core: decrypting bitstream: %w", err)
		}
		a.log.Infof("recovered bitstream key K_E via side channel; K_A read from plaintext copies")
		a.plain = plain
		a.env = &envelope{kE: kE, kA: kA, cbcIV: cbcIV}
	} else {
		a.plain = append([]byte(nil), img...)
		if a.recomputeCRC {
			a.log.Infof("CRC mode: recompute and replace on every modified copy")
		} else {
			// Section V-B: disable the configuration CRC once; every
			// modified copy derived from a.plain then loads without
			// recomputation.
			if err := bitstream.DisableCRC(a.plain); err != nil {
				return nil, fmt.Errorf("core: disabling CRC: %w", err)
			}
			a.log.Infof("configuration CRC disabled (0x30000001 + CRC word zeroed)")
		}
	}
	a.clbStart = -1
	if p, err := bitstream.ParsePackets(a.plain); err == nil {
		// The first FDRI frame is device configuration, CLB columns
		// follow — public floorplan knowledge.
		a.clbStart = p.FDRIOffset + bitstream.FrameBytes
	}
	return a, nil
}

// ErrCancelled reports that the attack's context was cancelled or timed
// out. The run stops at the next checkpoint — between phases or between
// candidate trials, i.e. within one sweep chunk — with no partial key in
// the report and the victim restored by the usual epilogue.
var ErrCancelled = errors.New("core: attack cancelled")

// SetContext attaches a cancellation context to the attack. A nil ctx
// restores the default (never cancelled). Call before Run; the attack
// observes cancellation at phase boundaries and between candidate
// trials, surfacing it as ErrCancelled.
func (a *Attack) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	a.ctx = ctx
}

// checkpoint is the attack's cancellation probe: a typed ErrCancelled
// when the context is done, nil otherwise. Placed between phases and
// between candidate consumptions — never inside a fabric pass — so an
// in-flight chunk always completes and accounting stays exact.
func (a *Attack) checkpoint() error {
	if err := a.ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrCancelled, err)
	}
	return nil
}

// aligned reports whether a match sits on a valid LUT slot position of
// the CLB frames.
func (a *Attack) aligned(m Match) bool {
	if a.clbStart < 0 {
		return true
	}
	rel := m.Index - a.clbStart
	if rel < 0 {
		return false
	}
	off := rel % bitstream.FrameBytes
	return off%bitstream.SubVectorBytes == 0 && off < bitstream.SlotsPerFrame*bitstream.SubVectorBytes
}

// working returns a fresh modifiable copy of the plaintext packets.
func (a *Attack) working() []byte {
	return append([]byte(nil), a.plain...)
}

// runCandidate prepares candidate image b for the victim — incremental
// frame-level reseal when the original was encrypted, incremental CRC
// recompute in recompute mode, both falling back to the full-image
// paths — then loads it and collects n keystream words. It does NOT
// count a modeled hardware load; callers that consume a result do
// (loadAndRun and the sweep consumers), so speculative batch lanes
// never inflate Report.Loads.
func (a *Attack) runCandidate(b []byte, n int) ([]uint32, error) {
	img := b
	if a.env != nil {
		var sealed []byte
		var err error
		if r, rerr := a.ensureResealer(); rerr == nil {
			sealed, err = r.ResealFrames(b)
		} else {
			sealed, err = bitstream.Reseal(b, a.env.kE, a.env.kA, a.env.cbcIV)
		}
		if err != nil {
			return nil, err
		}
		img = sealed
	} else if a.recomputeCRC {
		if c, cerr := a.ensureCRCCache(); cerr == nil {
			if err := c.RecomputeCRC(b); err != nil {
				return nil, err
			}
		} else if err := bitstream.RecomputeCRC(b); err != nil {
			return nil, err
		}
	}
	a.syncIncrementalStats()
	a.baseLive = false // the victim now holds this candidate, not the base
	if err := a.dev.Load(img); err != nil {
		return nil, err
	}
	return a.sampleKeystream(n)
}

// ErrCorruptReconfig reports that a loaded candidate reconfigured into a
// fabric that no longer exposes the cipher's documented I/O protocol.
var ErrCorruptReconfig = errors.New("core: corrupted reconfiguration")

// sampleKeystream collects n keystream words from the configured victim.
// The attack's own patches only rewrite LUT content, never the design
// description, so the cipher's pin interface is invariant across every
// candidate it loads; a device that panics on a pin lookup here means
// the image was corrupted on the way to the configuration port, which
// must surface as a typed error, not take the attack down.
func (a *Attack) sampleKeystream(n int) (z []uint32, err error) {
	defer func() {
		if r := recover(); r != nil {
			z, err = nil, fmt.Errorf("%w: %v", ErrCorruptReconfig, r)
		}
	}()
	return hdl.GenerateKeystream(a.dev, a.iv, n), nil
}

// loadAndRun runs one counted hardware trial: candidate b is prepared,
// loaded and sampled, and on success contributes one modeled
// reconfiguration to Report.Loads.
func (a *Attack) loadAndRun(b []byte, n int) ([]uint32, error) {
	z, err := a.runCandidate(b, n)
	if err != nil {
		return nil, err
	}
	a.countLoad()
	return z, nil
}

// w is the keystream sample length used by every verification step (the
// paper uses w = 16, which also matches the 16 words key extraction
// needs).
const w = 16

// deadColumns returns the bit positions that are 0 in every word.
func deadColumns(z []uint32) uint32 {
	dead := ^uint32(0)
	for _, word := range z {
		dead &= ^word
	}
	return dead
}

// batchScan performs the attack's single bitstream pass: the complete
// Table II catalogue, every guessed load-MUX shape and the Section VII-B
// dual-output XOR predicate are compiled into one shared anchor index
// and resolved in one walk of the plaintext image. Every later step
// (candidate counting, z-path and feedback verification, MUX search,
// Table VI's dual-XOR sweep) reads from this memo instead of re-scanning.
func (a *Attack) batchScan() {
	if a.scanned != nil {
		return
	}
	span := a.tel.StartSpan("attack.batch_scan")
	defer span.End()
	s := NewScanner(FindOptions{})
	s.SetTelemetry(a.tel)
	cands := boolfn.Candidates()
	for _, c := range cands {
		s.AddFunction(c.Name, c.TT)
	}
	muxes := muxCatalogue()
	for _, m := range muxes {
		s.AddFunction("mux:"+m.name, m.fn)
	}
	s.AddDualXOR("dualxor", 0, 0)
	res := s.Scan(a.plain)
	a.scanned = make(map[boolfn.TT][]Match, len(cands)+len(muxes))
	for _, c := range cands {
		a.scanned[c.TT] = res.Matches[c.Name]
	}
	for _, m := range muxes {
		a.scanned[m.fn] = res.Matches["mux:"+m.name]
	}
	a.dualHits = res.DualHits["dualxor"]
	a.rep.Scan.Accumulate(res.Stats)
	span.SetAttr("functions", res.Stats.Functions)
	span.SetAttr("candidates_compiled", res.Stats.CandidatesCompiled)
	span.SetAttr("anchor_hits", res.Stats.AnchorHits)
	span.SetAttr("deep_compares", res.Stats.DeepCompares)
	a.publishStats()
	a.log.Infof("batch scan: %d functions + dual-XOR predicate in one pass (%d candidates, %d anchor hits, %d deep compares)",
		res.Stats.Functions, res.Stats.CandidatesCompiled, res.Stats.AnchorHits, res.Stats.DeepCompares)
}

// matchesFor returns the FINDLUT matches for f on the plaintext image,
// served from the memoized batch scan when f was part of one; functions
// outside every batch (callers probing ad-hoc guesses) fall back to a
// dedicated single-function pass and join the memo.
func (a *Attack) matchesFor(f boolfn.TT) []Match {
	if ms, ok := a.scanned[f]; ok {
		return ms
	}
	ms := FindLUT(a.plain, f, FindOptions{})
	if a.scanned == nil {
		a.scanned = map[boolfn.TT][]Match{}
	}
	a.scanned[f] = ms
	return ms
}

// CountCandidates reproduces the Table II measurement: the number of
// FINDLUT matches for every catalogue row on the current bitstream, all
// rows served from the shared single-pass batch scan.
func (a *Attack) CountCandidates() []CandidateCount {
	a.batchScan()
	var out []CandidateCount
	for _, c := range boolfn.Candidates() {
		n := len(a.matchesFor(c.TT))
		out = append(out, CandidateCount{Name: c.Name, Path: c.Path, Expr: c.Expr, Count: n})
	}
	a.rep.CandidateTable = out
	return out
}

// DualXORHits returns the Section VII-B dual-output XOR search over the
// full plaintext image, served from the same single pass as the
// candidate catalogue (the Table VI measurement).
func (a *Attack) DualXORHits() []int {
	a.batchScan()
	return a.dualHits
}

// VerifyZPath implements Section VI-C.1: zero each f2 candidate in turn
// and keep those whose modification pins exactly one keystream bit
// column to 0 while leaving the others untouched. Overlapping candidates
// of confirmed LUTs are discarded (two valid LUTs cannot share bytes).
func (a *Attack) VerifyZPath() error {
	a.batchScan()
	return a.verifyZPathWith(boolfn.F2)
}

// verifyZPathWith runs the z-path verification for an arbitrary guessed
// (or census-discovered) candidate function.
func (a *Attack) verifyZPathWith(zfn boolfn.TT) error {
	span := a.tel.StartSpan("attack.verify_zpath")
	defer span.End()
	clean, err := a.loadAndRun(a.working(), w)
	if err != nil {
		return fmt.Errorf("core: baseline keystream: %w", err)
	}
	a.rep.CleanKeystream = clean
	cleanDead := deadColumns(clean)

	cands := a.matchesFor(zfn)
	span.SetAttr("candidates", len(cands))
	a.log.Infof("z_t path: %d f2 candidates", len(cands))
	// One sweep over all candidates: up to 64 zeroed-LUT variants share
	// each bitsliced fabric pass. Loads are counted on consumption so the
	// overlap pruning below keeps its scalar accounting.
	sw := a.newSweep(len(cands), w, func(i int, img []byte) {
		WriteMatch(img, cands[i], boolfn.Const0)
	})
	var confirmed []ConfirmedLUT
	for ci := 0; ci < len(cands); ci++ {
		if cerr := a.checkpoint(); cerr != nil {
			return cerr
		}
		m := cands[ci]
		skip := false
		for _, c := range confirmed {
			if c.Match.Overlaps(m) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		z, err := sw.run(ci)
		if err != nil {
			continue // candidate bricks configuration: not a target
		}
		a.countLoad()
		newDead := deadColumns(z) &^ cleanDead
		if bits.OnesCount32(newDead) != 1 {
			continue
		}
		bit := bits.TrailingZeros32(newDead)
		// All other columns must be unaffected.
		ok := true
		for t := range z {
			if (z[t]^clean[t])&^newDead != 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		confirmed = append(confirmed, ConfirmedLUT{Match: m, Bit: bit, KeepVar: -1})
	}
	a.tel.Publish(obs.EventProgress, "attack.verify_zpath", float64(len(confirmed)),
		obs.KV("candidates", len(cands)), obs.KV("confirmed", len(confirmed)),
		obs.KV("eliminated", len(cands)-len(confirmed)))
	if len(confirmed) != 32 {
		return fmt.Errorf("core: z path verification confirmed %d LUTs, want 32", len(confirmed))
	}
	span.SetAttr("confirmed", len(confirmed))
	a.rep.LUT1 = confirmed
	a.log.Infof("z_t path: confirmed 32 LUT1 instances")
	return nil
}

// CollectFeedbackCandidates implements Section VI-C.2: gather the f8 and
// f19 matches, discard any overlapping a confirmed LUT1, and check the
// 32-candidate hypothesis.
func (a *Attack) CollectFeedbackCandidates() error {
	span := a.tel.StartSpan("attack.collect_feedback")
	defer span.End()
	prune := func(ms []Match) []Match {
		var out []Match
		for _, m := range ms {
			clash := false
			for _, c := range a.rep.LUT1 {
				if c.Match.Overlaps(m) {
					clash = true
					break
				}
			}
			if !clash {
				out = append(out, m)
			}
		}
		return out
	}
	a.batchScan()
	l8 := prune(a.matchesFor(boolfn.F8))
	l19 := prune(a.matchesFor(boolfn.F19))
	span.SetAttr("f8", len(l8))
	span.SetAttr("f19", len(l19))
	a.log.Infof("feedback path: %d f8 + %d f19 candidates", len(l8), len(l19))
	if len(l8)+len(l19) < 32 {
		return fmt.Errorf("core: feedback candidates %d+%d != 32; hypothesis fails",
			len(l8), len(l19))
	}
	if surplus := len(l8) + len(l19) - 32; surplus > 0 {
		// A random placement can produce a coincidental extra match (a
		// real XOR LUT elsewhere in the datapath). Keep the surplus for
		// now: the key-independent check's group-testing pass excludes
		// the false positives behaviorally (resolveBeta prunes LUT2/LUT3
		// down to the surviving 32).
		a.log.Infof("feedback path: %d surplus candidates, deferring to behavioral pruning", surplus)
	}
	a.rep.LUT2, a.rep.LUT3 = l8, l19
	return nil
}

// muxSpec is one entry of the attack's load-MUX catalogue: the guessed
// function with fixed roles (a1 = control) and the two polarity
// hypotheses for which branch loads γ(K, IV).
type muxSpec struct {
	name     string
	fn       boolfn.TT
	zeroSel1 boolfn.TT // modification if γ loads when a1 = 1
	zeroSel0 boolfn.TT // modification if γ loads when a1 = 0
}

// muxCatalogue guesses the LFSR load MUX shapes from the block diagram:
// plain 2-to-1 MUXes for the key-constant stages (with either data
// polarity, since γ includes k ⊕ 1 terms) and MUX-of-XOR shapes for the
// stages mixing IV words (s9, s10, s12, s15).
func muxCatalogue() []muxSpec {
	mk := func(name, f, z1, z0 string) muxSpec {
		return muxSpec{name: name,
			fn:       boolfn.MustParse(f),
			zeroSel1: boolfn.MustParse(z1),
			zeroSel0: boolfn.MustParse(z0)}
	}
	return []muxSpec{
		mk("mux", "a1a2 + !a1a3", "!a1a3", "a1a2"),
		mk("mux-inv", "a1!a2 + !a1a3", "!a1a3", "a1!a2"),
		mk("mux-xor", "a1(a2^a3) + !a1a4", "!a1a4", "a1(a2^a3)"),
		mk("mux-xnor", "a1!(a2^a3) + !a1a4", "!a1a4", "a1!(a2^a3)"),
	}
}

// applyFeedbackAlpha injects the α₁ fault of eq. (1) into the feedback
// candidates: f8 → a6 and f19 → a3·a6, disconnecting the FSM from the
// LFSR.
func (a *Attack) applyFeedbackAlpha(b []byte) {
	for _, m := range a.rep.LUT2 {
		WriteMatch(b, m, boolfn.F8Alpha)
	}
	for _, m := range a.rep.LUT3 {
		WriteMatch(b, m, boolfn.F19Alpha)
	}
}

// betaState carries the discovered load-MUX modification set.
type betaState struct {
	matches []Match
	specs   []muxSpec
	sel1    bool
	// excluded counts candidates pruned by the group-testing fallback.
	excluded int
}

// MakeKeyIndependent implements Section VI-D.1/D.2: find the γ(K, IV)
// load MUXes, modify them to load the all-0 vector (fault β), combine
// with the feedback fault α₁, and confirm by comparing the observed
// keystream with the software model's key-independent keystream (the
// Table III criterion). Both polarity hypotheses for the MUX control are
// tried, as in the paper.
func (a *Attack) MakeKeyIndependent() (*betaState, error) {
	span := a.tel.StartSpan("attack.make_key_independent")
	defer span.End()
	a.batchScan()
	specs := muxCatalogue()
	var matches []Match
	var specOf []muxSpec
	for _, s := range specs {
		ms := a.matchesFor(s.fn)
		for _, m := range ms {
			if !a.aligned(m) {
				continue
			}
			clash := false
			for _, c := range a.rep.LUT1 {
				if c.Match.Overlaps(m) {
					clash = true
					break
				}
			}
			for _, c := range append(a.rep.LUT2, a.rep.LUT3...) {
				if c.Overlaps(m) {
					clash = true
					break
				}
			}
			if !clash {
				matches = append(matches, m)
				specOf = append(specOf, s)
			}
		}
	}
	a.rep.MuxMatches = len(matches)
	span.SetAttr("mux_matches", len(matches))
	a.log.Infof("load-MUX search: %d matches across %d guessed shapes", len(matches), len(specs))
	if len(matches) < 16*32/2 { // at least the 15 plain stages must show up
		return nil, fmt.Errorf("core: only %d load-MUX candidates; design not recognized", len(matches))
	}

	return a.resolveBeta(matches, specOf)
}

// alphaWrite is one α₁ LUT rewrite of the key-independent probe — a
// feedback candidate paired with its fault table. Unlike the opaque
// applyAlpha callback of the census flow, individual writes are
// excludable by the group-testing pass, which is how surplus feedback
// candidates (CollectFeedbackCandidates) are pruned behaviorally.
type alphaWrite struct {
	m    Match
	repl boolfn.TT
	f8   bool
}

// resolveBeta finds a polarity hypothesis and a candidate subset whose
// modification yields the model's key-independent keystream. When the
// full set fails (a false-positive match whose "load branch" is real
// logic, or a surplus feedback candidate whose α₁ rewrite corrupts real
// datapath), a greedy group-testing pass excludes harmful candidates,
// using the number of matching keystream bits as the progress signal.
// Surviving feedback candidates are written back to LUT2/LUT3, which
// must total exactly 32 afterwards.
func (a *Attack) resolveBeta(matches []Match, specOf []muxSpec) (*betaState, error) {
	alphas := make([]alphaWrite, 0, len(a.rep.LUT2)+len(a.rep.LUT3))
	for _, m := range a.rep.LUT2 {
		alphas = append(alphas, alphaWrite{m: m, repl: boolfn.F8Alpha, f8: true})
	}
	for _, m := range a.rep.LUT3 {
		alphas = append(alphas, alphaWrite{m: m, repl: boolfn.F19Alpha})
	}
	return a.resolveBetaPruned(matches, specOf, nil, alphas)
}

// resolveBetaWith is resolveBeta with a caller-supplied α₁ application
// (the census-guided flow derives its fault tables generically and
// rejects bad feedback subsets wholesale, so its α set is opaque and
// never pruned).
func (a *Attack) resolveBetaWith(matches []Match, specOf []muxSpec, applyAlpha func([]byte)) (*betaState, error) {
	return a.resolveBetaPruned(matches, specOf, applyAlpha, nil)
}

// resolveBetaPruned is the shared implementation: exactly one of
// applyAlpha (opaque α₁ application) and alphas (excludable α₁ writes)
// is set. The group-testing index space covers the MUX candidates
// followed by the α writes.
func (a *Attack) resolveBetaPruned(matches []Match, specOf []muxSpec, applyAlpha func([]byte), alphas []alphaWrite) (*betaState, error) {
	span := a.tel.StartSpan("attack.resolve_beta", obs.KV("candidates", len(matches)))
	defer span.End()
	// Expected key-independent keystream from the software model
	// (Section VI-D: LFSR all-0, FSM output stuck at 0 during init).
	model := snow3g.New(snow3g.Fault{FSMStuckInit: true, LFSRZeroLoad: true})
	model.Init(snow3g.Key{}, snow3g.IV{})
	want := model.KeystreamWords(w)

	// apply writes one candidate modification set: every non-excluded
	// alpha write plus every non-excluded MUX zeroing under the sel1
	// hypothesis.
	apply := func(img []byte, sel1 bool, skip map[int]bool, excl int) {
		if applyAlpha != nil {
			applyAlpha(img)
		}
		for j, aw := range alphas {
			if k := len(matches) + j; skip[k] || k == excl {
				continue
			}
			WriteMatch(img, aw.m, aw.repl)
		}
		for i, m := range matches {
			if skip[i] || i == excl {
				continue
			}
			repl := specOf[i].zeroSel1
			if !sel1 {
				repl = specOf[i].zeroSel0
			}
			WriteMatch(img, m, repl)
		}
	}
	score := func(z []uint32) int {
		s := 0
		for t := range want {
			s += 32 - bits.OnesCount32(z[t]^want[t])
		}
		return s
	}
	perfect := 32 * w

	finish := func(sel1 bool, skip map[int]bool, z []uint32) (*betaState, error) {
		if sel1 {
			a.rep.MuxHypothesis = "γ loaded when control = 1"
		} else {
			a.rep.MuxHypothesis = "γ loaded when control = 0"
		}
		a.rep.KeyIndependent = z
		kept := make([]Match, 0, len(matches))
		keptSpecs := make([]muxSpec, 0, len(matches))
		for i := range matches {
			if !skip[i] {
				kept = append(kept, matches[i])
				keptSpecs = append(keptSpecs, specOf[i])
			}
		}
		if alphas != nil {
			surviving := 0
			for j := range alphas {
				if !skip[len(matches)+j] {
					surviving++
				}
			}
			// A surplus candidate whose α₁ rewrite is behaviorally
			// neutral under β+α (say, a coincidental match inside FSM
			// logic the fault already disconnects) survives the greedy
			// pass because it never hurts the score. Prune those by
			// necessity instead: a true feedback LUT cannot be excluded
			// without breaking the model match, a neutral one can.
			for j := range alphas {
				if surviving <= 32 {
					break
				}
				if cerr := a.checkpoint(); cerr != nil {
					return nil, cerr
				}
				k := len(matches) + j
				if skip[k] {
					continue
				}
				sw := a.newSweep(1, w, func(_ int, img []byte) { apply(img, sel1, skip, k) })
				z2, err := sw.run(0)
				if err != nil {
					continue
				}
				a.countLoad()
				if score(z2) == perfect {
					skip[k] = true
					surviving--
					a.log.Infof("feedback pruning: excluding unnecessary candidate at byte %d", alphas[j].m.Index)
				}
			}
			// Write the surviving α candidates back as the attack's
			// feedback LUT sets; the 32-LUT hypothesis must hold now
			// that the false positives are excluded.
			l2 := a.rep.LUT2[:0]
			l3 := a.rep.LUT3[:0]
			pruned := 0
			for j, aw := range alphas {
				if skip[len(matches)+j] {
					pruned++
					continue
				}
				if aw.f8 {
					l2 = append(l2, aw.m)
				} else {
					l3 = append(l3, aw.m)
				}
			}
			a.rep.LUT2, a.rep.LUT3 = l2, l3
			a.rep.FeedbackPruned = pruned
			a.tel.Counter("attack.feedback_pruned").Add(int64(pruned))
			if len(l2)+len(l3) != 32 {
				return nil, fmt.Errorf("core: feedback pruning left %d+%d candidates, want 32",
					len(l2), len(l3))
			}
		}
		span.SetAttr("hypothesis", a.rep.MuxHypothesis)
		span.SetAttr("excluded", len(skip))
		a.tel.Publish(obs.EventProgress, "attack.resolve_beta", float64(len(kept)),
			obs.KV("candidates", len(matches)), obs.KV("survivors", len(kept)),
			obs.KV("eliminated", len(skip)))
		a.log.Infof("key-independent keystream confirmed against software model (%s, %d candidates excluded)",
			a.rep.MuxHypothesis, len(skip))
		return &betaState{matches: kept, specs: keptSpecs, sel1: sel1, excluded: len(skip)}, nil
	}

	// Both polarity hypotheses ride one sweep (a single fabric pass in
	// batch mode); a perfect hypothesis-1 score consumes only lane 0 and
	// counts exactly one load, as the scalar sequence would.
	bestScore := -1
	bestSel1 := true
	hyp := []bool{true, false}
	swHyp := a.newSweep(len(hyp), w, func(i int, img []byte) {
		apply(img, hyp[i], nil, -1)
	})
	for i, sel1 := range hyp {
		if cerr := a.checkpoint(); cerr != nil {
			return nil, cerr
		}
		z, err := swHyp.run(i)
		s := -1
		if err == nil {
			a.countLoad()
			s = score(z)
		}
		if s == perfect {
			return finish(sel1, map[int]bool{}, z)
		}
		if s > bestScore {
			bestScore, bestSel1 = s, sel1
		}
	}

	// Group-testing fallback under the better hypothesis: repeatedly
	// exclude the candidate whose removal recovers the most keystream
	// bits. Bounded at 8 exclusions — more indicates a wrong design
	// hypothesis rather than stray false positives. Each round is one
	// sweep over the remaining candidates (the skip set is stable while
	// a round's lanes are evaluated), consumed in scalar trial order.
	skip := map[int]bool{}
	for round := 0; round < 8; round++ {
		var idxs []int
		for i := 0; i < len(matches)+len(alphas); i++ {
			if !skip[i] {
				idxs = append(idxs, i)
			}
		}
		sw := a.newSweep(len(idxs), w, func(k int, img []byte) {
			apply(img, bestSel1, skip, idxs[k])
		})
		bestIdx, bestGain := -1, 0
		for k, i := range idxs {
			if cerr := a.checkpoint(); cerr != nil {
				return nil, cerr
			}
			z, err := sw.run(k)
			s := -1
			if err == nil {
				a.countLoad()
				s = score(z)
			}
			if s == perfect {
				skip[i] = true
				return finish(bestSel1, skip, z)
			}
			if gain := s - bestScore; gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		if bestIdx < 0 {
			break
		}
		skip[bestIdx] = true
		bestScore += bestGain
		if bestIdx < len(matches) {
			a.log.Infof("group test: excluding harmful MUX candidate at byte %d (+%d keystream bits)",
				matches[bestIdx].Index, bestGain)
		} else {
			a.log.Infof("group test: excluding false-positive feedback candidate at byte %d (+%d keystream bits)",
				alphas[bestIdx-len(matches)].m.Index, bestGain)
		}
	}
	return nil, errors.New("core: key-independent keystream never matched the model; MUX identification failed")
}

// IdentifyVPairs implements Section VI-D.1's two-keystream trick: with
// β and α₁ in place, rewrite every confirmed LUT1 keeping one variable
// of the XOR trio and observe which bit columns die. Columns going dead
// when variable v is kept have s0 on that pin; two runs classify all 32
// LUTs (the third case follows by elimination), instead of 3^32 trials.
func (a *Attack) IdentifyVPairs(beta *betaState) error {
	return a.identifyVPairsWith(beta, a.applyFeedbackAlpha, boolfn.F2AlphaKeep)
}

// identifyVPairsWith runs the two-keystream pin identification with
// caller-supplied α₁ application and keep-variable fault tables.
func (a *Attack) identifyVPairsWith(beta *betaState, applyAlpha func([]byte), keepFn func(int) boolfn.TT) error {
	span := a.tel.StartSpan("attack.identify_vpairs", obs.KV("luts", len(a.rep.LUT1)))
	defer span.End()
	resolved := make([]int, len(a.rep.LUT1))
	for i := range resolved {
		resolved[i] = -1
	}
	if cerr := a.checkpoint(); cerr != nil {
		return cerr
	}
	// The two probes differ only in the kept variable: one sweep, one
	// fabric pass in batch mode.
	sw := a.newSweep(2, w, func(keep int, img []byte) {
		applyAlpha(img)
		for i, m := range beta.matches {
			repl := beta.specs[i].zeroSel1
			if !beta.sel1 {
				repl = beta.specs[i].zeroSel0
			}
			WriteMatch(img, m, repl)
		}
		for _, c := range a.rep.LUT1 {
			WriteMatch(img, c.Match, keepFn(keep))
		}
	})
	for keep := 0; keep <= 1; keep++ {
		z, err := sw.run(keep)
		if err != nil {
			return fmt.Errorf("core: v-pair probe %d: %w", keep, err)
		}
		a.countLoad()
		dead := deadColumns(z)
		for li := range a.rep.LUT1 {
			if resolved[li] == -1 && dead>>uint(a.rep.LUT1[li].Bit)&1 == 1 {
				resolved[li] = keep
			}
		}
	}
	for li := range a.rep.LUT1 {
		if resolved[li] == -1 {
			resolved[li] = 2 // by elimination
		}
		a.rep.LUT1[li].KeepVar = resolved[li]
	}
	a.log.Infof("v-pair identification finished with 2 keystream computations (3^32 avoided)")
	return nil
}

// ExtractKey implements Section VI-D.3: inject α into all of LUT1, LUT2
// and LUT3 on a fresh copy (real γ load this time), collect 16 keystream
// words — the LFSR state S³³ — rewind 33 linear steps and read the key
// out of S⁰. The result is verified by reproducing the device's clean
// keystream with the software model.
func (a *Attack) ExtractKey() error {
	return a.extractKeyWith(a.applyFeedbackAlpha, boolfn.F2AlphaKeep)
}

// extractKeyWith is ExtractKey with caller-supplied fault tables.
func (a *Attack) extractKeyWith(applyAlpha func([]byte), keepFn func(int) boolfn.TT) error {
	span := a.tel.StartSpan("attack.extract_key")
	defer span.End()
	if cerr := a.checkpoint(); cerr != nil {
		return cerr
	}
	sw := a.newSweep(1, w, func(_ int, img []byte) {
		applyAlpha(img)
		for _, c := range a.rep.LUT1 {
			WriteMatch(img, c.Match, keepFn(c.KeepVar))
		}
	})
	z, err := sw.run(0)
	if err != nil {
		return fmt.Errorf("core: faulty keystream: %w", err)
	}
	a.countLoad()
	// A cancellation racing the final sweep must not surface a key: a
	// cancelled run's contract is ErrCancelled and an empty key, never a
	// partial (or even complete) secret.
	if cerr := a.checkpoint(); cerr != nil {
		return cerr
	}
	a.rep.FaultyFinal = z
	key, iv, s0, err := snow3g.RecoverFromKeystream(z)
	if err != nil {
		return fmt.Errorf("core: LFSR rewind: %w", err)
	}
	a.rep.Key, a.rep.IV, a.rep.RecoveredS0 = key, iv, s0
	if iv != a.iv {
		return fmt.Errorf("core: recovered IV %08x does not match driven IV %08x", iv, a.iv)
	}
	// Final check (Section IV-C step 6): the software model keyed with
	// the recovered key must reproduce the clean device keystream.
	model := snow3g.New(snow3g.Fault{})
	model.Init(key, a.iv)
	sim := model.KeystreamWords(len(a.rep.CleanKeystream))
	for t := range sim {
		if sim[t] != a.rep.CleanKeystream[t] {
			return fmt.Errorf("core: recovered key fails keystream check at word %d", t+1)
		}
	}
	a.rep.Verified = true
	span.SetAttr("verified", true)
	a.log.Infof("key recovered and verified: %08x %08x %08x %08x", key[0], key[1], key[2], key[3])
	return nil
}

// Run executes the complete attack and returns the report. Whatever the
// outcome, the attack-model epilogue restores the original image so the
// device is returned to its legitimate user unchanged — even an aborted
// attack must not leave a faulty configuration behind.
func (a *Attack) Run() (rep *Report, err error) {
	span := a.tel.StartSpan("attack.run")
	defer func() {
		a.baseLive = false
		if restoreErr := a.dev.Load(a.dev.ReadFlash()); restoreErr != nil && err == nil {
			err = fmt.Errorf("core: restoring original bitstream: %w", restoreErr)
		}
		span.SetAttr("loads", a.rep.Loads)
		span.SetAttr("verified", a.rep.Verified)
		span.End()
		a.publishStats()
		rep = a.rep.Clone()
	}()
	if err = a.checkpoint(); err != nil {
		return rep, err
	}
	a.CountCandidates()
	if err = a.VerifyZPath(); err != nil {
		return rep, err
	}
	if err = a.checkpoint(); err != nil {
		return rep, err
	}
	if err = a.CollectFeedbackCandidates(); err != nil {
		return rep, err
	}
	beta, berr := a.MakeKeyIndependent()
	if berr != nil {
		return rep, berr
	}
	if err = a.checkpoint(); err != nil {
		return rep, err
	}
	if err = a.IdentifyVPairs(beta); err != nil {
		return rep, err
	}
	if err = a.ExtractKey(); err != nil {
		return rep, err
	}
	return rep, nil
}

// Report returns a defensive deep copy of the accumulated report
// (useful after partial runs): mutating the returned value, including
// its slices, cannot corrupt a subsequent Run.
func (a *Attack) Report() *Report { return a.rep.Clone() }
