package core

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/obs"
)

// This file is the batch scan engine behind every bitstream search in
// the package. The paper prices one FINDLUT run at "< 4 s for a < 10 MB
// bitstream" (Section VI-B), but the Table II / Table VI reproductions
// and the attack itself need 21+ functions — paying that price once per
// function re-walks the identical bytes N times. The Scanner compiles
// the candidate catalogues of every requested function (and the
// dual-output XOR predicate of Section VII-B) into one shared anchor
// index, walks the bitstream exactly once with the worker pool, and
// demultiplexes hits per function. Per-function results are identical to
// running FindLUT (and FindLUTReference) separately; the equivalence is
// pinned by the differential suite in scanner_test.go.

// ScanStats records what one Scan (or an accumulation of several) did:
// the observability layer behind the CLI -stats flag and the attack
// report.
type ScanStats struct {
	// Functions is the number of distinct LUT functions searched;
	// DualTargets the number of dual-output XOR windows.
	Functions   int
	DualTargets int
	// CandidatesCompiled counts the (table, order) byte patterns in the
	// shared anchor index.
	CandidatesCompiled int
	// CatalogueHits/CatalogueMisses count candidate catalogues served
	// from / missing the process-wide cache during compilation.
	CatalogueHits   int
	CatalogueMisses int
	// BytesScanned is the size of the scanned window; Passes the number
	// of full bitstream walks (always 1 per Scan — the point).
	BytesScanned int64
	Passes       int64
	// AnchorProbes counts probed byte positions; AnchorHits the probes
	// whose 16-bit sub-vector hit the candidate index; DeepCompares the
	// full four-sub-vector comparisons that followed.
	AnchorProbes int64
	AnchorHits   int64
	DeepCompares int64
	// DualProbes counts positions tested against the dual-XOR windows;
	// DualDecodes the positions that survived the blank-fabric prefilter
	// and paid for a 64-bit LUT decode.
	DualProbes  int64
	DualDecodes int64
	// Workers is the size of the scan worker pool.
	Workers int
	// CompileTime covers catalogue compilation and index construction;
	// ScanTime the bitstream walk.
	CompileTime time.Duration
	ScanTime    time.Duration
}

// Accumulate folds another scan's counters into s (multi-scan flows such
// as the census-guided attack report one aggregate).
func (s *ScanStats) Accumulate(o ScanStats) {
	s.Functions += o.Functions
	s.DualTargets += o.DualTargets
	s.CandidatesCompiled += o.CandidatesCompiled
	s.CatalogueHits += o.CatalogueHits
	s.CatalogueMisses += o.CatalogueMisses
	s.BytesScanned += o.BytesScanned
	s.Passes += o.Passes
	s.AnchorProbes += o.AnchorProbes
	s.AnchorHits += o.AnchorHits
	s.DeepCompares += o.DeepCompares
	s.DualProbes += o.DualProbes
	s.DualDecodes += o.DualDecodes
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.CompileTime += o.CompileTime
	s.ScanTime += o.ScanTime
}

// ScanResult holds the demultiplexed output of one Scan.
type ScanResult struct {
	// Matches maps each AddFunction key to its FindLUT-identical match
	// list (nil when the function never occurs).
	Matches map[string][]Match
	// DualHits maps each AddDualXOR key to the ascending byte indexes
	// satisfying the Section VII-B predicate inside that window.
	DualHits map[string][]int
	// Stats describes the single pass that produced everything above.
	Stats ScanStats
}

// fnTarget is one requested LUT function.
type fnTarget struct {
	key string
	fn  boolfn.TT
}

// dualTarget is one requested dual-output XOR window, in the raw
// (unnormalized) FindDualXOR convention: hi <= 0 means end of bitstream.
type dualTarget struct {
	key    string
	lo, hi int
}

// Scanner is a batch FINDLUT engine: any number of target functions and
// dual-XOR windows, one bitstream pass. A Scanner is built once per
// query set and is not safe for concurrent use (Scan lazily compiles
// and caches the anchor index on the scanner); Scan may be called
// repeatedly (e.g. over different bitstreams) and runs its worker pool
// internally.
type Scanner struct {
	opt   FindOptions
	fns   []fnTarget
	duals []dualTarget
	byKey map[string]int // key → index into fns
	// tel optionally traces the compile and walk phases of every Scan
	// (SetTelemetry; nil-safe, zero overhead when unset).
	tel *obs.Telemetry

	// Compiled anchor index, built by the first Scan and reused across
	// calls until AddFunction invalidates it. The multi-bitstream
	// serving scenario scans one query set over many images; rebuilding
	// the 64K-way index per image is pure waste there (it was also half
	// of the BENCH_PR2 batch-vs-sequential throughput inversion — the
	// old harness paid compilation inside the timed loop).
	dirty      bool
	catalogues [][]candidate
	byAnchor   [][]scanRef
	maxAnchor  int
	compiled   int // candidates held by the index
}

// NewScanner creates an empty batch scanner with the given search
// options (shared by every added function, exactly as if each were
// searched with FindLUT(b, f, opt)).
func NewScanner(opt FindOptions) *Scanner {
	return &Scanner{opt: opt, byKey: map[string]int{}}
}

// SetTelemetry attaches a telemetry handle: each Scan then records a
// scan.pass span with scan.compile / scan.walk children plus per-worker
// scan.chunk spans. Returns the scanner for chaining.
func (s *Scanner) SetTelemetry(tel *obs.Telemetry) *Scanner {
	s.tel = tel
	return s
}

// AddFunction registers f under key. Re-adding an existing key replaces
// its function. Returns the scanner for chaining.
func (s *Scanner) AddFunction(key string, f boolfn.TT) *Scanner {
	s.dirty = true
	if i, ok := s.byKey[key]; ok {
		s.fns[i].fn = f
		return s
	}
	s.byKey[key] = len(s.fns)
	s.fns = append(s.fns, fnTarget{key: key, fn: f})
	return s
}

// AddDualXOR registers a Section VII-B dual-output XOR search over the
// byte window [lo, hi] (hi <= 0 means the end of the bitstream), with
// FindDualXOR's exact semantics.
func (s *Scanner) AddDualXOR(key string, lo, hi int) *Scanner {
	s.duals = append(s.duals, dualTarget{key: key, lo: lo, hi: hi})
	return s
}

// scanRef points one anchor-index entry at its owning target: candidate
// ci of function fn. Candidate order within a function is the
// deterministic buildCandidates order, so marking (first candidate wins
// per index) is reproduced per function exactly as in FindLUT.
type scanRef struct {
	fn int32
	ci int32
}

// fnHit is one verified match before demultiplexing.
type fnHit struct {
	fn    int32
	ci    int32
	index int32
}

// dualHit is one dual-XOR predicate hit before window demultiplexing.
type dualHit struct {
	index int
}

// Scan walks b once and returns every requested result. The returned
// match lists are byte-identical to per-function FindLUT calls with the
// scanner's options, and the dual hit lists to FindDualXOR over each
// window.
func (s *Scanner) Scan(b []byte) *ScanResult {
	pass := s.tel.StartSpan("scan.pass",
		obs.KV("functions", len(s.fns)), obs.KV("dual_targets", len(s.duals)))
	defer pass.End()
	res := &ScanResult{
		Matches:  make(map[string][]Match, len(s.fns)),
		DualHits: make(map[string][]int, len(s.duals)),
	}
	for _, t := range s.fns {
		res.Matches[t.key] = nil
	}
	for _, t := range s.duals {
		res.DualHits[t.key] = nil
	}
	res.Stats.Functions = len(s.fns)
	res.Stats.DualTargets = len(s.duals)

	span := (bitstream.SubVectors-1)*bitstream.SubVectorOffset + bitstream.SubVectorBytes
	limit := len(b) - span
	if limit < 0 {
		return res // too short to hold even one LUT
	}

	// --- Compile phase: one shared anchor index over all functions,
	// cached on the scanner and rebuilt only after AddFunction. ---
	compileSpan := s.tel.StartSpan("scan.compile")
	compileStart := time.Now()
	if s.dirty {
		s.recompile(&res.Stats)
	} else {
		// Whole index served from the scanner's own cache.
		res.Stats.CatalogueHits = len(s.fns)
	}
	res.Stats.CandidatesCompiled = s.compiled
	catalogues, byAnchor, maxAnchor := s.catalogues, s.byAnchor, s.maxAnchor
	res.Stats.CompileTime = time.Since(compileStart)
	compileSpan.SetAttr("candidates", res.Stats.CandidatesCompiled)
	compileSpan.End()

	// --- Window: partition exactly the scannable positions. An anchor
	// probe at position p can only yield a base index l = p − anchor·d in
	// [0, limit], so positions past limit + maxAnchor·d are dead; the
	// dual predicate tests base positions in [0, limit] directly. ---
	anchorEnd := 0
	if len(s.fns) > 0 {
		anchorEnd = limit + maxAnchor*bitstream.SubVectorOffset + 1
	}
	dualEnd := 0
	dualStart := limit + 1
	dualLos := make([]int, len(s.duals))
	dualHis := make([]int, len(s.duals))
	for i, t := range s.duals {
		lo, hi := t.lo, t.hi
		if hi <= 0 || hi > limit {
			hi = limit
		}
		if lo < 0 {
			lo = 0
		}
		dualLos[i], dualHis[i] = lo, hi
		if hi+1 > dualEnd {
			dualEnd = hi + 1
		}
		if lo < dualStart {
			dualStart = lo
		}
	}
	positions := anchorEnd
	if dualEnd > positions {
		positions = dualEnd
	}
	if positions == 0 {
		res.Stats.Passes = 1
		return res
	}

	workers := s.opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > positions {
		workers = positions // never spawn a goroutine with no positions
	}
	chunk := (positions-1)/workers + 1
	res.Stats.Workers = workers
	res.Stats.BytesScanned = int64(positions)
	res.Stats.Passes = 1

	walkSpan := s.tel.StartSpan("scan.walk",
		obs.KV("workers", workers), obs.KV("positions", positions))
	scanStart := time.Now()
	var mu sync.Mutex
	var allFn []fnHit
	var allDual []dualHit
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > positions {
			hi = positions
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			cspan := s.tel.StartSpan("scan.chunk", obs.KV("lo", lo), obs.KV("hi", hi))
			defer cspan.End()
			var local []fnHit
			var localDual []dualHit
			var st ScanStats
			for p := lo; p < hi; p++ {
				if p < anchorEnd {
					st.AnchorProbes++
					refs := byAnchor[uint16(b[p])|uint16(b[p+1])<<8]
					if refs != nil {
						st.AnchorHits++
						for _, r := range refs {
							c := &catalogues[r.fn][r.ci]
							l := p - c.anchor*bitstream.SubVectorOffset
							if l < 0 || l > limit {
								continue
							}
							st.DeepCompares++
							if matchAt(b, l, c) {
								local = append(local, fnHit{fn: r.fn, ci: r.ci, index: int32(l)})
							}
						}
					}
				}
				if p >= dualStart && p < dualEnd && p <= limit {
					st.DualProbes++
					if hit, decoded := dualXorAt(b, p); decoded {
						st.DualDecodes++
						if hit {
							localDual = append(localDual, dualHit{index: p})
						}
					}
				}
			}
			mu.Lock()
			allFn = append(allFn, local...)
			allDual = append(allDual, localDual...)
			res.Stats.AnchorProbes += st.AnchorProbes
			res.Stats.AnchorHits += st.AnchorHits
			res.Stats.DeepCompares += st.DeepCompares
			res.Stats.DualProbes += st.DualProbes
			res.Stats.DualDecodes += st.DualDecodes
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	res.Stats.ScanTime = time.Since(scanStart)
	walkSpan.End()

	// --- Demultiplex. Per function: sort by (index, candidate) and keep
	// one match per index — Algorithm 1's marking, deterministically. ---
	sort.Slice(allFn, func(i, j int) bool {
		if allFn[i].fn != allFn[j].fn {
			return allFn[i].fn < allFn[j].fn
		}
		if allFn[i].index != allFn[j].index {
			return allFn[i].index < allFn[j].index
		}
		return allFn[i].ci < allFn[j].ci
	})
	for i, h := range allFn {
		if i > 0 && allFn[i-1].fn == h.fn && allFn[i-1].index == h.index {
			continue // marking: one match per index per function
		}
		c := &catalogues[h.fn][h.ci]
		key := s.fns[h.fn].key
		res.Matches[key] = append(res.Matches[key],
			Match{Index: int(h.index), Perm: c.perm, Order: c.order})
	}
	if len(allDual) > 0 {
		sort.Slice(allDual, func(i, j int) bool { return allDual[i].index < allDual[j].index })
		for di, t := range s.duals {
			for _, h := range allDual {
				if h.index >= dualLos[di] && h.index <= dualHis[di] {
					res.DualHits[t.key] = append(res.DualHits[t.key], h.index)
				}
			}
		}
	}
	return res
}

// recompile rebuilds the scanner's cached anchor index from its current
// function set, folding catalogue-cache hit/miss counters into st.
func (s *Scanner) recompile(st *ScanStats) {
	s.catalogues = make([][]candidate, len(s.fns))
	s.byAnchor = nil
	s.maxAnchor = 0
	s.compiled = 0
	if len(s.fns) > 0 {
		s.byAnchor = make([][]scanRef, 1<<16)
	}
	for fi, t := range s.fns {
		cands, hit := catalogueFor(t.fn, s.opt)
		s.catalogues[fi] = cands
		if hit {
			st.CatalogueHits++
		} else {
			st.CatalogueMisses++
		}
		s.compiled += len(cands)
		for ci := range cands {
			c := &cands[ci]
			if c.anchor > s.maxAnchor {
				s.maxAnchor = c.anchor
			}
			k := c.sub[c.anchor]
			s.byAnchor[k] = append(s.byAnchor[k], scanRef{fn: int32(fi), ci: int32(ci)})
		}
	}
	s.dirty = false
}

// dualXorAt evaluates the Section VII-B predicate at base position l.
// The second return reports whether a full 64-bit decode was paid for:
// blank fabric (all-0x00 or all-0xFF sub-vectors, decoding to the
// constant functions, which have no XOR half) is rejected from the raw
// bytes alone — the dual-scan analogue of FindLUT's anchor prefilter.
func dualXorAt(b []byte, l int) (hit, decoded bool) {
	var sub [bitstream.SubVectors][bitstream.SubVectorBytes]byte
	and, or := byte(0xFF), byte(0x00)
	for q := 0; q < bitstream.SubVectors; q++ {
		off := l + q*bitstream.SubVectorOffset
		sub[q][0], sub[q][1] = b[off], b[off+1]
		and &= b[off] & b[off+1]
		or |= b[off] | b[off+1]
	}
	if or == 0x00 || and == 0xFF {
		return false, false // constant LUT: cannot carry a 2-input XOR half
	}
	for _, order := range []bitstream.SliceType{bitstream.SliceL, bitstream.SliceM} {
		if boolfn.DualXorCandidate(bitstream.DecodeLUT(sub, order)) {
			return true, true
		}
	}
	return false, true
}

// --- Process-wide candidate-catalogue cache -----------------------------

// The 720-permutation expansion of a target function into byte patterns
// depends only on (truth table, options). Repeated attacks over
// different bitstreams — the multi-bitstream serving scenario — reuse
// the compiled catalogues instead of re-expanding them per image.

type catKey struct {
	f                  boolfn.TT
	exhaustive, noPerm bool
}

var (
	catMu    sync.RWMutex
	catCache = map[catKey][]candidate{}
)

// catCacheMax bounds the memo; past the cap, catalogues are compiled but
// not retained (adversarial query streams must not grow memory without
// limit).
const catCacheMax = 1 << 12

// catalogueFor returns the compiled candidate catalogue for f under opt,
// serving it from the process-wide cache when possible. The returned
// slice is shared and must be treated as read-only. The second result
// reports whether the catalogue came from the cache.
func catalogueFor(f boolfn.TT, opt FindOptions) ([]candidate, bool) {
	key := catKey{f: f, exhaustive: opt.ExhaustiveOrders, noPerm: opt.NoPermDedup}
	catMu.RLock()
	cands, ok := catCache[key]
	catMu.RUnlock()
	if ok {
		obs.Default().Counter("core.catalogue.hits").Inc()
		return cands, true
	}
	obs.Default().Counter("core.catalogue.misses").Inc()
	cands = buildCandidates(f, opt)
	catMu.Lock()
	if prior, raced := catCache[key]; raced {
		cands = prior // keep one canonical slice per key
	} else if len(catCache) < catCacheMax {
		catCache[key] = cands
	}
	obs.Default().Gauge("core.catalogue.entries").Set(float64(len(catCache)))
	catMu.Unlock()
	return cands, false
}

// CatalogueCacheStats reports the number of compiled catalogues held by
// the process-wide cache.
func CatalogueCacheStats() (entries int) {
	catMu.RLock()
	defer catMu.RUnlock()
	return len(catCache)
}

// ResetCatalogueCache clears the process-wide catalogue cache (tests and
// cold-path benchmarks).
func ResetCatalogueCache() {
	catMu.Lock()
	defer catMu.Unlock()
	catCache = map[catKey][]candidate{}
}
