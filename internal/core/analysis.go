package core

import (
	"sort"

	"snowbma/internal/boolfn"
)

// OverlapRow reports, for a pair of Table II candidate functions, how
// many of their FINDLUT matches occupy overlapping byte positions. The
// paper uses this analysis in Section VI-C.2 to dismiss the f9/f11/f21
// hits: "by examining their byte positions in the bitstream we can see
// that they are the same as for f19" — overlapping matches cannot both
// be real LUTs.
type OverlapRow struct {
	A, B   string
	Shared int
	ACount int
	BCount int
}

// OverlapAnalysis runs FINDLUT for every named candidate on the
// bitstream — batched into one scan pass — and reports all pairs with at
// least one overlapping match.
func OverlapAnalysis(b []byte, names []string) []OverlapRow {
	type set struct {
		name    string
		matches []Match
	}
	s := NewScanner(FindOptions{})
	var sets []set
	for _, name := range names {
		c, ok := boolfn.CandidateByName(name)
		if !ok {
			continue
		}
		s.AddFunction(name, c.TT)
		sets = append(sets, set{name: name})
	}
	res := s.Scan(b)
	for i := range sets {
		sets[i].matches = res.Matches[sets[i].name]
	}
	var out []OverlapRow
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			shared := 0
			for _, ma := range sets[i].matches {
				for _, mb := range sets[j].matches {
					if ma.Overlaps(mb) {
						shared++
						break
					}
				}
			}
			if shared > 0 {
				out = append(out, OverlapRow{
					A: sets[i].name, B: sets[j].name, Shared: shared,
					ACount: len(sets[i].matches), BCount: len(sets[j].matches),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shared > out[j].Shared })
	return out
}
