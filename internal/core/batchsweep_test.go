package core

import (
	"errors"
	"fmt"
	"testing"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/device"
)

// runAttack executes the full paper attack at a given sweep width and
// returns the report.
func runAttack(t *testing.T, encrypted bool, recompute bool, lanes int) *Report {
	t.Helper()
	victim := buildVictim(t, false, encrypted)
	atk, err := NewAttackCRCMode(victim, attackIV, nil, recompute)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.SetLanes(lanes); err != nil {
		t.Fatal(err)
	}
	rep, err := atk.Run()
	if err != nil {
		t.Fatalf("attack (lanes=%d) failed: %v", lanes, err)
	}
	return rep
}

// diffReports asserts the attack outcome and — critically — the modeled
// hardware cost are invariant under the sweep width.
func diffReports(t *testing.T, scalar, batch *Report) {
	t.Helper()
	if scalar.Key != batch.Key {
		t.Fatalf("recovered keys diverge: %08x vs %08x", scalar.Key, batch.Key)
	}
	if !scalar.Verified || !batch.Verified {
		t.Fatal("one of the runs is unverified")
	}
	if scalar.Loads != batch.Loads {
		t.Fatalf("Loads diverge: scalar %d, batch %d — the sweep width leaked into the hardware cost model",
			scalar.Loads, batch.Loads)
	}
	if se, be := scalar.HardwareEstimate(3.3), batch.HardwareEstimate(3.3); se != be {
		t.Fatalf("HardwareEstimate diverges: %v vs %v", se, be)
	}
	for name, pair := range map[string][2][]uint32{
		"CleanKeystream": {scalar.CleanKeystream, batch.CleanKeystream},
		"KeyIndependent": {scalar.KeyIndependent, batch.KeyIndependent},
		"FaultyFinal":    {scalar.FaultyFinal, batch.FaultyFinal},
	} {
		a, b := pair[0], pair[1]
		if len(a) != len(b) {
			t.Fatalf("%s lengths diverge: %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] diverges: %08x vs %08x", name, i, a[i], b[i])
			}
		}
	}
}

// TestBatchSweepMatchesScalarAttack is the acceptance differential: the
// full attack at 64 lanes recovers the same key with the same keystreams
// and byte-identical Loads accounting as the scalar path, while
// actually running far fewer fabric passes.
func TestBatchSweepMatchesScalarAttack(t *testing.T) {
	scalar := runAttack(t, false, false, 1)
	batch := runAttack(t, false, false, 64)
	diffReports(t, scalar, batch)
	if scalar.Batch.Passes != 0 {
		t.Fatalf("scalar run executed %d fabric passes, want 0", scalar.Batch.Passes)
	}
	if batch.Batch.Passes == 0 || batch.Batch.Lanes == 0 {
		t.Fatal("batch run never used the bitsliced evaluator")
	}
	if batch.Batch.Passes >= batch.Loads {
		t.Fatalf("batch run took %d passes for %d modeled loads; no amortization",
			batch.Batch.Passes, batch.Loads)
	}
	t.Logf("loads=%d passes=%d lanes=%d fallbacks=%d patched frames=%d",
		batch.Loads, batch.Batch.Passes, batch.Batch.Lanes,
		batch.Batch.Fallbacks, batch.Batch.PatchedFrames)
}

// TestBatchSweepEncryptedMatchesScalar runs the same differential on an
// encrypted victim: the batch path configures lanes from the sealed
// base, the scalar fallbacks go through the incremental resealer.
func TestBatchSweepEncryptedMatchesScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("two full encrypted attacks")
	}
	scalar := runAttack(t, true, false, 1)
	batch := runAttack(t, true, false, 64)
	diffReports(t, scalar, batch)
	if !scalar.Encrypted || !batch.Encrypted {
		t.Fatal("victims not encrypted")
	}
	// The scalar run reseals every candidate; after the first trial all
	// reseals must take the incremental frame path.
	if scalar.Batch.IncrementalReseals == 0 {
		t.Fatal("scalar encrypted run never used the incremental resealer")
	}
	if scalar.Batch.FullReseals > 1 {
		t.Fatalf("%d full reseals, want at most the initial one", scalar.Batch.FullReseals)
	}
}

// TestBatchSweepCRCRecomputeMatchesScalar covers the recompute-CRC
// Section V-B option: candidate CRCs are patched incrementally on the
// scalar path and ignored by the simulator lanes, with identical
// outcomes.
func TestBatchSweepCRCRecomputeMatchesScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("two full attacks")
	}
	scalar := runAttack(t, false, true, 1)
	batch := runAttack(t, false, true, 64)
	diffReports(t, scalar, batch)
	if scalar.Batch.IncrementalCRCs == 0 {
		t.Fatal("scalar recompute run never used the incremental CRC cache")
	}
}

// TestCensusGuidedBatchMatchesScalar runs the census-guided flow — the
// generalized attack — at both widths.
func TestCensusGuidedBatchMatchesScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("two full census attacks")
	}
	run := func(lanes int) *Report {
		victim := buildVictim(t, false, false)
		atk, err := NewAttack(victim, attackIV, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := atk.SetLanes(lanes); err != nil {
			t.Fatal(err)
		}
		rep, err := atk.RunCensusGuided()
		if err != nil {
			t.Fatalf("census attack (lanes=%d) failed: %v", lanes, err)
		}
		return rep
	}
	scalar := run(1)
	batch := run(64)
	diffReports(t, scalar, batch)
	if batch.Batch.Passes == 0 {
		t.Fatal("census batch run never used the bitsliced evaluator")
	}
}

func TestSetLanesValidation(t *testing.T) {
	victim := buildVictim(t, false, false)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-1, 0, device.MaxLanes + 1, 1000} {
		err := atk.SetLanes(bad)
		if err == nil {
			t.Fatalf("SetLanes(%d) accepted", bad)
		}
		if !errors.Is(err, ErrLanes) {
			t.Fatalf("SetLanes(%d) error %v does not wrap ErrLanes", bad, err)
		}
	}
	for _, good := range []int{1, 2, 63, 64, 65, 100, 128, 129, device.MaxLanes} {
		if err := atk.SetLanes(good); err != nil {
			t.Fatalf("SetLanes(%d): %v", good, err)
		}
		if atk.Report().Batch.Width != good {
			t.Fatalf("Width = %d after SetLanes(%d)", atk.Report().Batch.Width, good)
		}
	}
}

// BenchmarkCandidateSweepWide isolates the width-aware sweep engine on a
// synthetic >64-candidate family (100 single-LUT variants of the victim
// image): at 64 lanes the family needs two fabric passes, at 128 lanes
// one two-word pass, at 256 lanes one pass whose top two words idle.
// The candidate patch sets are diffed once in setup — building a
// candidate is attack logic whose cost is identical at every width —
// so the timed region is exactly what the width changes: how many
// fabric passes the family needs and what each pass costs.
//
// Each pass pays its full configuration cost (baseLive is cleared so
// loadAndRunBatch re-decodes and re-loads the base image): on hardware
// every fabric pass is a bitstream reconfiguration, and in the attack
// the scalar fallback trials interleaved with batch passes keep
// knocking the device off the base configuration. Halving the pass
// count is precisely what the wider sweep buys; the 64-vs-128
// throughput ratio is ISSUE 7's acceptance number.
func BenchmarkCandidateSweepWide(b *testing.B) {
	victim := buildVictim(b, false, false)
	img := victim.ReadFlash()
	parsed, err := bitstream.ParsePackets(img)
	if err != nil {
		b.Fatal(err)
	}
	regions, err := bitstream.ParseRegions(parsed.FDRI(img))
	if err != nil {
		b.Fatal(err)
	}
	fdri := parsed.FDRI(img)
	desc, err := bitstream.UnmarshalDescription(fdri[regions.DescOff : regions.DescOff+regions.DescLen])
	if err != nil {
		b.Fatal(err)
	}
	const count, n = 100, 4
	for _, lanes := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("lanes-%d", lanes), func(b *testing.B) {
			atk, err := NewAttack(victim, attackIV, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := atk.SetLanes(lanes); err != nil {
				b.Fatal(err)
			}
			bl, ok := atk.dev.(batchLoader)
			if !ok {
				b.Fatal("victim device is not a batch loader")
			}
			patches := make([]bitstream.PatchSet, count)
			for i := range patches {
				work := atk.working()
				clb := parsed.FDRI(work)[regions.CLBOff : regions.CLBOff+regions.CLBLen]
				lut := desc.LUTs[i%len(desc.LUTs)]
				if err := bitstream.WriteLUT(clb, lut.Loc, boolfn.TT(0x9E3779B97F4A7C15*uint64(i+1))); err != nil {
					b.Fatal(err)
				}
				if patches[i], err = parsed.DiffFrames(atk.plain, work); err != nil {
					b.Fatal(err)
				}
			}
			starts := chunkStarts(count, lanes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k, lo := range starts {
					hi := count
					if k+1 < len(starts) {
						hi = starts[k+1]
					}
					atk.baseLive = false
					if _, err := atk.loadAndRunBatch(bl, patches[lo:hi], n); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(count), "ns/candidate")
		})
	}
}
