package core

import (
	"math"
	"testing"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/device"
	"snowbma/internal/hdl"
	"snowbma/internal/mapper"
	"snowbma/internal/snow3g"
)

var (
	secretKey = snow3g.Key{0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48}
	attackIV  = snow3g.IV{0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F}
)

// buildVictim assembles a victim device. The secret key is known only to
// this test fixture; the attack sees bytes and keystream.
func buildVictim(t testing.TB, protected bool, encrypted bool) *device.FPGA {
	t.Helper()
	d := hdl.Build(hdl.Config{Key: secretKey, Protected: protected})
	opts := mapper.Options{K: 6, Boundaries: d.Boundaries}
	pol := mapper.PackPolicy{}
	if protected {
		opts.TrivialCuts = d.TrivialCuts
		pol = mapper.PackPolicy{Prefer: d.TrivialCuts, PairWithOthers: true}
	}
	r, err := mapper.Map(d.N, opts)
	if err != nil {
		t.Fatal(err)
	}
	phys := mapper.Pack(r, pol)
	img, err := bitstream.Assemble(d.N, phys, bitstream.AssembleOptions{Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	var kE [bitstream.KeySize]byte
	if encrypted {
		for i := range kE {
			kE[i] = byte(0xE0 ^ i)
		}
		var kA [bitstream.KeySize]byte
		for i := range kA {
			kA[i] = byte(0xA5 + i)
		}
		var cbcIV [16]byte
		img, err = bitstream.Seal(img, kE, kA, cbcIV)
		if err != nil {
			t.Fatal(err)
		}
	}
	f := device.New(kE)
	if err := f.Program(img); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEndToEndAttackRecoversKey(t *testing.T) {
	victim := buildVictim(t, false, false)
	atk, err := NewAttack(victim, attackIV, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := atk.Run()
	if err != nil {
		t.Fatalf("attack failed: %v", err)
	}
	if rep.Key != secretKey {
		t.Fatalf("recovered key %08x, want %08x", rep.Key, secretKey)
	}
	if !rep.Verified {
		t.Fatal("report not marked verified")
	}
	if len(rep.LUT1) != 32 || len(rep.LUT2) != 24 || len(rep.LUT3) != 8 {
		t.Fatalf("confirmed LUT counts %d/%d/%d, want 32/24/8",
			len(rep.LUT1), len(rep.LUT2), len(rep.LUT3))
	}
	// The device must be restored to a working state with the original
	// image (attack model epilogue).
	z := hdl.GenerateKeystream(victim, attackIV, 4)
	model := snow3g.New(snow3g.Fault{})
	model.Init(secretKey, attackIV)
	want := model.KeystreamWords(4)
	for i := range want {
		if z[i] != want[i] {
			t.Fatal("victim not restored to original behaviour")
		}
	}
}

func TestEndToEndAttackTableIIIAndIV(t *testing.T) {
	// The key-independent keystream observed on the victim must equal
	// the software model's (the generalization of paper Table III), and
	// the final faulty keystream must rewind to a consistent γ state.
	victim := buildVictim(t, false, false)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := atk.Run()
	if err != nil {
		t.Fatal(err)
	}
	model := snow3g.New(snow3g.Fault{FSMStuckInit: true, LFSRZeroLoad: true})
	model.Init(snow3g.Key{}, snow3g.IV{})
	wantIII := model.KeystreamWords(16)
	for i := range wantIII {
		if rep.KeyIndependent[i] != wantIII[i] {
			t.Fatalf("key-independent word %d: %08x != %08x", i+1, rep.KeyIndependent[i], wantIII[i])
		}
	}
	modelIV := snow3g.New(snow3g.Fault{FSMStuckInit: true, FSMStuckKeystream: true})
	modelIV.Init(secretKey, attackIV)
	wantZ := modelIV.KeystreamWords(16)
	for i := range wantZ {
		if rep.FaultyFinal[i] != wantZ[i] {
			t.Fatalf("faulty keystream word %d: %08x != %08x", i+1, rep.FaultyFinal[i], wantZ[i])
		}
	}
	if rep.RecoveredS0 != snow3g.Gamma(secretKey, attackIV) {
		t.Fatal("recovered S0 is not γ(K, IV)")
	}
}

func TestEndToEndAttackPaperTablesExact(t *testing.T) {
	// With the victim keyed with the ETSI test key and driven with the
	// paper's IV, the attack's observed keystreams are bit-exactly the
	// paper's Tables III and IV, and the recovered state is Table V.
	victim := buildVictim(t, false, false)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := atk.Run()
	if err != nil {
		t.Fatal(err)
	}
	tableIII := []uint32{
		0xa1fb4788, 0xe4382f8e, 0x3b72471c, 0x33ebb59a,
		0x32ac43c7, 0x5eebfd82, 0x3a325fd4, 0x1e1d7001,
		0xb7f15767, 0x3282c5b0, 0x103da78f, 0xe42761e4,
		0xc6ded1bb, 0x089fa36c, 0x01c7c690, 0xbf921256,
	}
	tableIV := []uint32{
		0x3ffe4851, 0x35d1c393, 0x5914acef, 0xe98446cc,
		0x689782d9, 0x8abdb7fc, 0xa11b0377, 0x5a2dd294,
		0x5deb29fa, 0xc2c6009a, 0xa82ee62f, 0x925268ed,
		0xd04e2c33, 0x3890311b, 0xe8d27b84, 0xa70aeeaa,
	}
	for i := range tableIII {
		if rep.KeyIndependent[i] != tableIII[i] {
			t.Fatalf("Table III word %d: device gave %08x, paper %08x",
				i+1, rep.KeyIndependent[i], tableIII[i])
		}
	}
	for i := range tableIV {
		if rep.FaultyFinal[i] != tableIV[i] {
			t.Fatalf("Table IV word %d: device gave %08x, paper %08x",
				i+1, rep.FaultyFinal[i], tableIV[i])
		}
	}
	if rep.RecoveredS0[15] != 0xa283b85c || rep.RecoveredS0[0] != 0xd429ba60 {
		t.Fatalf("Table V mismatch: S0 = %08x", rep.RecoveredS0)
	}
}

func TestEncryptedBitstreamAttack(t *testing.T) {
	victim := buildVictim(t, false, true)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := atk.Run()
	if err != nil {
		t.Fatalf("attack on encrypted bitstream failed: %v", err)
	}
	if !rep.Encrypted {
		t.Fatal("report did not flag encrypted image")
	}
	if rep.Key != secretKey {
		t.Fatalf("recovered key %08x, want %08x", rep.Key, secretKey)
	}
}

func TestAttackFailsOnProtectedDesign(t *testing.T) {
	victim := buildVictim(t, true, false)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = atk.Run()
	if err == nil {
		t.Fatal("attack succeeded against the protected design")
	}
	rep := atk.Report()
	// Table VI shape: all feedback-path candidate rows must be empty.
	for _, row := range rep.CandidateTable {
		if row.Path == "s15" && row.Count != 0 {
			t.Errorf("protected bitstream still matches %s (%d hits)", row.Name, row.Count)
		}
	}
	if rep.Key == secretKey {
		t.Fatal("protected design leaked the key")
	}
}

func TestTableIIShape(t *testing.T) {
	victim := buildVictim(t, false, false)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, row := range atk.CountCandidates() {
		counts[row.Name] = row.Count
	}
	if counts["f2"] < 32 {
		t.Errorf("f2 count %d, want ≥ 32 (paper: 81 incl. false positives)", counts["f2"])
	}
	if counts["f8"] < 24 {
		t.Errorf("f8 count %d, want ≥ 24 (paper: 24)", counts["f8"])
	}
	if counts["f19"] < 8 {
		t.Errorf("f19 count %d, want ≥ 8 (paper: 8)", counts["f19"])
	}
	if counts["f8"]+counts["f19"] < 32 {
		t.Errorf("feedback-path candidates %d, want the paper's ≥ 32", counts["f8"]+counts["f19"])
	}
}

func TestTableVIShape(t *testing.T) {
	victim := buildVictim(t, true, false)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, row := range atk.CountCandidates() {
		counts[row.Name] = row.Count
	}
	for name, n := range counts {
		c, _ := boolfn.CandidateByName(name)
		if c.Path == "s15" && n != 0 {
			t.Errorf("protected: %s has %d hits, want 0 (Table VI)", name, n)
		}
	}
	// Section VII-B: the dual-output XOR search must return far more
	// candidates than the 32 targets, making selection infeasible.
	hits := FindDualXOR(atk.plain, 0, 0)
	if len(hits) < 96 {
		t.Fatalf("dual-XOR search found %d hits, want ≥ 96 for infeasibility", len(hits))
	}
	effort := ProtectedSearchBits(len(hits) - 32)
	if effort < 64 {
		t.Errorf("selection effort 2^%.1f too low for the countermeasure claim", effort)
	}
}

func TestFindLUTLocatesKnownLUT(t *testing.T) {
	// White-box check: plant a LUT in an empty frame region and find it.
	frames := make([]byte, 10*bitstream.FrameBytes)
	f := boolfn.MustParse("(a1^a2^a3)a4a5!a6")
	loc := bitstream.Loc{Frame: 3, Slot: 11, Type: bitstream.SliceM}
	if err := bitstream.WriteLUT(frames, loc, f); err != nil {
		t.Fatal(err)
	}
	matches := FindLUT(frames, f, FindOptions{})
	// Misaligned false positives are expected (Section IV-C: "the set L
	// returned by FINDLUT may contain false positives"); the planted LUT
	// must be among the matches with correct metadata.
	wantIndex := 3*bitstream.FrameBytes + 11*bitstream.SubVectorBytes
	var m *Match
	for i := range matches {
		if matches[i].Index == wantIndex {
			m = &matches[i]
		}
	}
	if m == nil {
		t.Fatalf("planted LUT at %d not among %d matches", wantIndex, len(matches))
	}
	if m.Order != bitstream.SliceM {
		t.Fatalf("match order %v, want SLICEM", m.Order)
	}
	if got := ReadMatch(frames, *m); got != f {
		t.Fatalf("ReadMatch gave %v, want %v", got, f)
	}
}

func TestFindLUTFindsPermutedVariants(t *testing.T) {
	frames := make([]byte, 6*bitstream.FrameBytes)
	f := boolfn.F19
	// Plant a P-equivalent variant, not f itself.
	variant := f.Permute([]int{3, 0, 5, 1, 4, 2})
	loc := bitstream.Loc{Frame: 1, Slot: 7, Type: bitstream.SliceL}
	if err := bitstream.WriteLUT(frames, loc, variant); err != nil {
		t.Fatal(err)
	}
	matches := FindLUT(frames, f, FindOptions{})
	wantIndex := 1*bitstream.FrameBytes + 7*bitstream.SubVectorBytes
	found := false
	for _, m := range matches {
		if m.Index != wantIndex {
			continue
		}
		found = true
		// The reported permutation must reconstruct the stored table.
		if got := ReadMatch(frames, m); got != f {
			t.Fatalf("ReadMatch through reported perm gave %v, want the searched %v", got, f)
		}
	}
	if !found {
		t.Fatalf("permuted variant at %d not among %d matches", wantIndex, len(matches))
	}
}

func TestFindLUTDoesNotFindAbsentFunction(t *testing.T) {
	frames := make([]byte, 4*bitstream.FrameBytes)
	if err := bitstream.WriteLUT(frames, bitstream.Loc{Frame: 0, Slot: 0}, boolfn.F2); err != nil {
		t.Fatal(err)
	}
	if got := FindLUT(frames, boolfn.F8, FindOptions{}); len(got) != 0 {
		t.Fatalf("found %d spurious matches", len(got))
	}
}

func TestWriteMatchRoundTrip(t *testing.T) {
	frames := make([]byte, 4*bitstream.FrameBytes)
	if err := bitstream.WriteLUT(frames, bitstream.Loc{Frame: 2, Slot: 5, Type: bitstream.SliceM}, boolfn.F8); err != nil {
		t.Fatal(err)
	}
	m := FindLUT(frames, boolfn.F8, FindOptions{})[0]
	WriteMatch(frames, m, boolfn.F8Alpha)
	if got := ReadMatch(frames, m); got != boolfn.F8Alpha {
		t.Fatalf("after WriteMatch, ReadMatch gives %v, want F8Alpha", got)
	}
}

func TestMatchOverlap(t *testing.T) {
	a := Match{Index: 100}
	cases := []struct {
		idx  int
		want bool
	}{
		{100, true}, {101, true}, {102, false}, {99, true}, {98, false},
		{201, true}, // a's sub-vector at 201 collides with b's base
		{100 + 3*101 + 1, true},
		{100 + 4*101, false},
	}
	for _, c := range cases {
		b := Match{Index: c.idx}
		if got := a.Overlaps(b); got != c.want {
			t.Errorf("Overlaps(100, %d) = %v, want %v", c.idx, got, c.want)
		}
	}
}

func TestFindOptionsAblation(t *testing.T) {
	frames := make([]byte, 8*bitstream.FrameBytes)
	for s := 0; s < 5; s++ {
		loc := bitstream.Loc{Frame: s, Slot: 3 * s, Type: bitstream.FrameSliceType(s)}
		if err := bitstream.WriteLUT(frames, loc, boolfn.F2); err != nil {
			t.Fatal(err)
		}
	}
	base := FindLUT(frames, boolfn.F2, FindOptions{})
	noDedup := FindLUT(frames, boolfn.F2, FindOptions{NoPermDedup: true})
	serial := FindLUT(frames, boolfn.F2, FindOptions{Parallel: 1})
	exhaustive := FindLUT(frames, boolfn.F2, FindOptions{ExhaustiveOrders: true})
	contains := func(ms []Match, idx int) bool {
		for _, m := range ms {
			if m.Index == idx {
				return true
			}
		}
		return false
	}
	for s := 0; s < 5; s++ {
		idx := s*bitstream.FrameBytes + 3*s*bitstream.SubVectorBytes
		for name, ms := range map[string][]Match{"base": base, "noDedup": noDedup,
			"serial": serial, "exhaustive": exhaustive} {
			if !contains(ms, idx) {
				t.Errorf("%s scan missed planted LUT %d", name, s)
			}
		}
	}
	if len(base) != len(serial) {
		t.Fatal("parallel and serial scans disagree on match count")
	}
	for i := range base {
		if base[i].Index != serial[i].Index {
			t.Fatal("parallel and serial scans disagree")
		}
	}
	if len(exhaustive) < len(base) {
		t.Fatal("exhaustive order scan found fewer matches than the physical orders")
	}
}

func TestComplexityPaperNumbers(t *testing.T) {
	// Section VII-C: C(171, 32) ≈ 4.9 × 10^34 ≈ 2^115.
	bits := Log2Binomial(171, 32)
	if math.Abs(bits-115.2) > 0.5 {
		t.Errorf("log2 C(171,32) = %.2f, paper says ≈ 115", bits)
	}
	// Section VII-A: x ≥ 16/e − 1 ≈ 4.9, so 5 decoy words suffice.
	if got := MinDecoyRatio(32, 128); got != 5 {
		t.Errorf("MinDecoyRatio(32, 128) = %d, want 5", got)
	}
	if lb := PaperRatioLowerBound(); math.Abs(lb-4.886) > 0.01 {
		t.Errorf("16/e−1 = %f", lb)
	}
	// The Lemma bound dominates the exact effort.
	for _, r := range []int{32, 96, 160} {
		if LemmaBound(32, r) < SearchEffort(32, r) {
			t.Errorf("Lemma bound below exact effort at r=%d", r)
		}
	}
}

func TestBinomialSmall(t *testing.T) {
	cases := map[[2]int]int64{{5, 2}: 10, {10, 0}: 1, {10, 10}: 1, {52, 5}: 2598960}
	for in, want := range cases {
		if got := Binomial(in[0], in[1]); got.Int64() != want {
			t.Errorf("C(%d,%d) = %v, want %d", in[0], in[1], got, want)
		}
	}
}

func BenchmarkEndToEndAttack(b *testing.B) {
	victim := buildVictim(b, false, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atk, err := NewAttack(victim, attackIV, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := atk.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindLUTOnVictimImage(b *testing.B) {
	victim := buildVictim(b, false, false)
	img := victim.ReadFlash()
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindLUT(img, boolfn.F2, FindOptions{})
	}
}

func TestGroupTestingExcludesHarmfulMuxCandidate(t *testing.T) {
	// Sabotage the MUX candidate list with a harmful false positive (a
	// confirmed z-path LUT disguised as a load MUX): the group-testing
	// fallback must exclude it and still confirm the key-independent
	// keystream.
	victim := buildVictim(t, false, false)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.VerifyZPath(); err != nil {
		t.Fatal(err)
	}
	if err := atk.CollectFeedbackCandidates(); err != nil {
		t.Fatal(err)
	}
	// Rebuild the genuine candidate set the same way MakeKeyIndependent
	// does, then poison it.
	var matches []Match
	var specOf []muxSpec
	for _, s := range muxCatalogue() {
		for _, m := range FindLUT(atk.plain, s.fn, FindOptions{}) {
			if !atk.aligned(m) {
				continue
			}
			clash := false
			for _, c := range atk.rep.LUT1 {
				if c.Match.Overlaps(m) {
					clash = true
				}
			}
			for _, c := range append(atk.rep.LUT2, atk.rep.LUT3...) {
				if c.Overlaps(m) {
					clash = true
				}
			}
			if !clash {
				matches = append(matches, m)
				specOf = append(specOf, s)
			}
		}
	}
	harm := muxSpec{name: "poison",
		fn:       boolfn.F2,
		zeroSel1: boolfn.Const0,
		zeroSel0: boolfn.Const0,
	}
	matches = append(matches, atk.rep.LUT1[5].Match)
	specOf = append(specOf, harm)

	beta, err := atk.resolveBeta(matches, specOf)
	if err != nil {
		t.Fatalf("group testing failed to rescue the poisoned set: %v", err)
	}
	if beta.excluded != 1 {
		t.Fatalf("excluded %d candidates, want exactly the 1 poison", beta.excluded)
	}
	// The attack must still complete from here.
	if err := atk.IdentifyVPairs(beta); err != nil {
		t.Fatal(err)
	}
	if err := atk.ExtractKey(); err != nil {
		t.Fatal(err)
	}
	if atk.rep.Key != secretKey {
		t.Fatalf("recovered %08x, want %08x", atk.rep.Key, secretKey)
	}
}

func TestReferenceMatchesOptimizedFindLUT(t *testing.T) {
	// Algorithm 1 as written and the indexed scanner must return exactly
	// the same index sets on a real victim image, for several functions.
	victim := buildVictim(t, false, false)
	img := victim.ReadFlash()
	for _, c := range []boolfn.TT{boolfn.F2, boolfn.F8, boolfn.F19,
		boolfn.MustParse("a1a2 + !a1a3")} {
		ref := FindLUTReference(img, c, SevenSeries())
		fast := FindLUT(img, c, FindOptions{})
		if len(ref) != len(fast) {
			t.Fatalf("fn %v: reference found %d, optimized %d", c, len(ref), len(fast))
		}
		for i := range ref {
			if ref[i] != fast[i].Index {
				t.Fatalf("fn %v: index %d differs: %d vs %d", c, i, ref[i], fast[i].Index)
			}
		}
	}
}

func TestReferenceGenericGeometry(t *testing.T) {
	// Plant a LUT with a hypothetical r=2, d=37 format and find it with
	// the parameterized Algorithm 1.
	p := RefParams{D: 37, R: 2}
	f := boolfn.F8
	sub := partitionXi(f, p.R)
	bs := make([]byte, 500)
	base := 123
	for q := 0; q < p.R; q++ {
		copy(bs[base+q*p.D:], sub[q])
	}
	hits := FindLUTReference(bs, f, p)
	found := false
	for _, l := range hits {
		if l == base {
			found = true
		}
	}
	if !found {
		t.Fatalf("generic geometry search missed the planted LUT (hits %v)", hits)
	}
}

func TestReferenceAllOrdersSuperset(t *testing.T) {
	victim := buildVictim(t, false, false)
	img := victim.ReadFlash()
	two := FindLUTReference(img, boolfn.F19, SevenSeries())
	all := FindLUTReference(img, boolfn.F19, RefParams{D: 101, R: 4, AllOrders: true})
	if len(all) < len(two) {
		t.Fatalf("all-orders search found fewer hits (%d) than two-orders (%d)", len(all), len(two))
	}
}

func TestReferenceRejectsBadR(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FindLUTReference(make([]byte, 100), boolfn.F2, RefParams{D: 10, R: 3})
}

func BenchmarkFindLUTReferenceVsOptimized(b *testing.B) {
	victim := buildVictim(b, false, false)
	img := victim.ReadFlash()
	b.Run("algorithm1-literal", func(b *testing.B) {
		b.SetBytes(int64(len(img)))
		for i := 0; i < b.N; i++ {
			FindLUTReference(img, boolfn.F2, SevenSeries())
		}
	})
	b.Run("indexed", func(b *testing.B) {
		b.SetBytes(int64(len(img)))
		for i := 0; i < b.N; i++ {
			FindLUT(img, boolfn.F2, FindOptions{})
		}
	})
}

func TestAttackWithCRCRecompute(t *testing.T) {
	// The paper's first Section V-B option: recompute the CRC for every
	// modified bitstream instead of disabling it. The victim keeps
	// verifying every load.
	victim := buildVictim(t, false, false)
	atk, err := NewAttackCRCMode(victim, attackIV, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := atk.Run()
	if err != nil {
		t.Fatalf("CRC-recompute attack failed: %v", err)
	}
	if rep.Key != secretKey {
		t.Fatalf("recovered %08x, want %08x", rep.Key, secretKey)
	}
	if !victim.Status().Configured {
		t.Fatal("victim not left configured")
	}
}

func TestAttackRobustnessMatrix(t *testing.T) {
	// The attack must succeed independent of the secret key and of the
	// placement seed (LUT positions in the bitstream).
	if testing.Short() {
		t.Skip("matrix test skipped in -short mode")
	}
	cases := []struct {
		key  snow3g.Key
		seed int64
		pad  int
	}{
		{snow3g.Key{0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF}, 2, 0},
		{snow3g.Key{0, 0, 0, 1}, 99, 0},
		{snow3g.Key{0x13579BDF, 0x2468ACE0, 0x0F1E2D3C, 0x4B5A6978}, 7, 40},
	}
	for ci, c := range cases {
		d := hdl.Build(hdl.Config{Key: c.key})
		r, err := mapper.Map(d.N, mapper.Options{K: 6, Boundaries: d.Boundaries})
		if err != nil {
			t.Fatal(err)
		}
		img, err := bitstream.Assemble(d.N, mapper.Pack(r, mapper.PackPolicy{}),
			bitstream.AssembleOptions{Seed: c.seed, PadFrames: c.pad})
		if err != nil {
			t.Fatal(err)
		}
		f := device.New([bitstream.KeySize]byte{})
		if err := f.Program(img); err != nil {
			t.Fatal(err)
		}
		atk, err := NewAttack(f, attackIV, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := atk.Run()
		if err != nil {
			t.Fatalf("case %d: attack failed: %v", ci, err)
		}
		if rep.Key != c.key {
			t.Fatalf("case %d: recovered %08x, want %08x", ci, rep.Key, c.key)
		}
	}
}

func TestOverlapAnalysisDismissesArtifacts(t *testing.T) {
	// Stray hits on the low-count s15 rows must overlap real candidate
	// sets (the paper's reasoning for dismissing f9/f11/f21), or there
	// must be none at all.
	victim := buildVictim(t, false, false)
	img := victim.ReadFlash()
	counts := map[string]int{}
	for _, name := range []string{"f8", "f9", "f11", "f19", "f21"} {
		c, _ := boolfn.CandidateByName(name)
		counts[name] = len(FindLUT(img, c.TT, FindOptions{}))
	}
	rows := OverlapAnalysis(img, []string{"f8", "f9", "f11", "f19", "f21"})
	// Any nonzero f9/f11/f21 population must be explainable by overlap.
	for _, name := range []string{"f9", "f11", "f21"} {
		if counts[name] == 0 {
			continue
		}
		explained := 0
		for _, r := range rows {
			if r.A == name || r.B == name {
				explained += r.Shared
			}
		}
		if explained == 0 {
			t.Errorf("%s has %d matches but no overlaps with real candidates", name, counts[name])
		}
	}
}

func TestFaultInjectionSweepNeverPanics(t *testing.T) {
	// BiFI-style robustness: zero out many random LUT locations one at a
	// time; each modified bitstream must either be rejected at load or
	// produce some keystream — never crash the device model.
	victim := buildVictim(t, false, false)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	luts, err := bitstream.ExtractLUTs(victim.ReadFlash())
	if err != nil {
		t.Fatal(err)
	}
	step := len(luts)/40 + 1
	injected, rejected, changed := 0, 0, 0
	clean, err := atk.loadAndRun(atk.working(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(luts); i += step {
		b := atk.working()
		p, _ := bitstream.ParsePackets(b)
		fdri := p.FDRI(b)
		regions, err := bitstream.ParseRegions(fdri)
		if err != nil {
			t.Fatal(err)
		}
		clb := fdri[regions.CLBOff : regions.CLBOff+regions.CLBLen]
		if err := bitstream.WriteLUT(clb, luts[i].Loc, boolfn.Const0); err != nil {
			t.Fatal(err)
		}
		injected++
		z, err := atk.loadAndRun(b, 4)
		if err != nil {
			rejected++
			continue
		}
		for w := range z {
			if z[w] != clean[w] {
				changed++
				break
			}
		}
	}
	if injected < 10 {
		t.Fatalf("sweep too small: %d injections", injected)
	}
	if changed == 0 {
		t.Fatal("no injected fault ever changed the keystream")
	}
	t.Logf("fault sweep: %d injected, %d rejected at load, %d changed keystream",
		injected, rejected, changed)
}

func TestCensusCandidatesUnprotected(t *testing.T) {
	// Census-guided discovery must surface the exact f2/f8/f19
	// populations without a hand-written catalogue.
	victim := buildVictim(t, false, false)
	classes, err := CensusCandidates(victim.ReadFlash(), 8)
	if err != nil {
		t.Fatal(err)
	}
	byCanon := map[boolfn.TT]CensusClass{}
	for _, c := range classes {
		byCanon[c.Canon] = c
	}
	for _, want := range []struct {
		f     boolfn.TT
		count int
		name  string
	}{
		{boolfn.F2, 32, "f2"},
		{boolfn.F8, 24, "f8"},
		{boolfn.F19, 8, "f19"},
	} {
		c, ok := byCanon[boolfn.PClassCanon(want.f)]
		if !ok {
			t.Errorf("census missed the %s class", want.name)
			continue
		}
		if c.Count != want.count {
			t.Errorf("census counts %d %s LUTs, want %d", c.Count, want.name, want.count)
		}
		if len(c.Groups) == 0 {
			t.Errorf("%s class lost its XOR group", want.name)
		}
	}
}

func TestCensusCandidatesProtectedFlooded(t *testing.T) {
	// On the protected bitstream the dominant XOR-structured class is
	// the bare XOR2 with ≥ 192 members, and neither f8 nor f19 appears:
	// the census attacker is flooded exactly as Section VII intends.
	victim := buildVictim(t, true, false)
	classes, err := CensusCandidates(victim.ReadFlash(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) == 0 {
		t.Fatal("census empty")
	}
	xor2 := boolfn.PClassCanon(boolfn.Xor(boolfn.A(1), boolfn.A(2)))
	f8 := boolfn.PClassCanon(boolfn.F8)
	f19 := boolfn.PClassCanon(boolfn.F19)
	var xor2Count int
	for _, c := range classes {
		if c.Canon == f8 || c.Canon == f19 {
			t.Fatal("protected census still shows f8/f19")
		}
		if c.Canon == xor2 {
			xor2Count = c.Count
		}
	}
	// Dual-packed XOR2 halves decode as distinct 6-var tables, so the
	// single-function XOR2 class may split; the flood is the point:
	// the biggest XOR-structured class must dwarf the 32 targets.
	if classes[0].Count < 96 {
		t.Fatalf("largest census class has %d members, want ≥ 96 (flood)", classes[0].Count)
	}
	_ = xor2Count
}

func TestCensusNPNMergesPolarityVariants(t *testing.T) {
	victim := buildVictim(t, false, false)
	pClasses, err := CensusCandidates(victim.ReadFlash(), 8)
	if err != nil {
		t.Fatal(err)
	}
	npnClasses, err := CensusCandidatesNPN(victim.ReadFlash(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(npnClasses) > len(pClasses) {
		t.Fatalf("NPN census has more classes (%d) than P census (%d)", len(npnClasses), len(pClasses))
	}
	// The f2 population must still appear, now under its NPN canon.
	canon := boolfn.NPNCanon(boolfn.F2)
	found := false
	for _, c := range npnClasses {
		if c.Canon == canon && c.Count >= 32 {
			found = true
		}
	}
	if !found {
		t.Fatal("NPN census lost the f2 population")
	}
}

func TestDiffLocalizesKeyInBRAM(t *testing.T) {
	// Two images of the same design with different keys must differ only
	// in the BRAM content (the key ROMs) and the configuration CRC —
	// the differential-analysis demonstration of attack-model
	// assumption 2 ("the key is stored in the bitstream").
	build := func(key snow3g.Key) []byte {
		d := hdl.Build(hdl.Config{Key: key})
		r, err := mapper.Map(d.N, mapper.Options{K: 6, Boundaries: d.Boundaries})
		if err != nil {
			t.Fatal(err)
		}
		img, err := bitstream.Assemble(d.N, mapper.Pack(r, mapper.PackPolicy{}),
			bitstream.AssembleOptions{Seed: 4321})
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	a := build(secretKey)
	b := build(snow3g.Key{0x11111111, 0x22222222, 0x33333333, 0x44444444})
	rep, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes[DiffCLB] != 0 || rep.Bytes[DiffDescription] != 0 || rep.Bytes[DiffHeaderFrame] != 0 {
		t.Fatalf("key change leaked outside BRAM: %v", rep.Bytes)
	}
	if rep.Bytes[DiffBRAM] == 0 {
		t.Fatal("key change invisible in BRAM region")
	}
	if rep.Bytes[DiffBRAM] > 32 {
		t.Fatalf("too many BRAM bytes differ (%d); key ROMs are 32 bytes", rep.Bytes[DiffBRAM])
	}
	// The CRC word differs (packets region).
	if rep.Bytes[DiffPackets] == 0 || rep.Bytes[DiffPackets] > 4 {
		t.Fatalf("packet-region diff %d bytes, want the 1-4 CRC bytes", rep.Bytes[DiffPackets])
	}
}

func TestDiffSeesLUTModification(t *testing.T) {
	victim := buildVictim(t, false, false)
	a := victim.ReadFlash()
	b := append([]byte(nil), a...)
	m := FindLUT(b, boolfn.F2, FindOptions{})[0]
	WriteMatch(b, m, boolfn.Const0)
	rep, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes[DiffCLB] == 0 {
		t.Fatal("LUT modification invisible to Diff")
	}
	if len(rep.LUTSlots) == 0 {
		t.Fatal("no LUT slot localized")
	}
}

func TestDiffErrors(t *testing.T) {
	victim := buildVictim(t, false, false)
	a := victim.ReadFlash()
	if _, err := Diff(a, a[:len(a)-4]); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := Diff([]byte{1, 2, 3, 4}, []byte{1, 2, 3, 5}); err == nil {
		t.Fatal("non-bitstream input accepted")
	}
}

func TestFailedAttackRestoresVictim(t *testing.T) {
	// Even an aborted attack must return the device to its legitimate
	// state (the supply-chain attacker hands the device back unchanged).
	victim := buildVictim(t, true, false) // protected: attack will fail
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atk.Run(); err == nil {
		t.Fatal("attack unexpectedly succeeded")
	}
	got := hdl.GenerateKeystream(victim, attackIV, 4)
	model := snow3g.New(snow3g.Fault{})
	model.Init(secretKey, attackIV)
	want := model.KeystreamWords(4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("victim left corrupted after failed attack (word %d)", i+1)
		}
	}
}

func TestAttackViaConfigurationReadback(t *testing.T) {
	// Attack-model variant: the attacker has no flash access, only JTAG
	// configuration readback. The frame region read from the device is
	// wrapped in (public) packet framing and the standard attack runs
	// against it.
	victim := buildVictim(t, false, false)
	fdri, err := victim.Readback()
	if err != nil {
		t.Fatal(err)
	}
	img, err := bitstream.WrapFDRI(fdri)
	if err != nil {
		t.Fatal(err)
	}
	jtag := &readbackVictim{FPGA: victim, img: img}
	atk, err := NewAttack(jtag, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := atk.Run()
	if err != nil {
		t.Fatalf("readback attack failed: %v", err)
	}
	if rep.Key != secretKey {
		t.Fatalf("readback attack recovered %08x", rep.Key)
	}
}

// readbackVictim models the JTAG-only attacker view: ReadFlash returns
// the wrapped readback image instead of flash content.
type readbackVictim struct {
	*device.FPGA
	img []byte
}

func (r *readbackVictim) ReadFlash() []byte { return append([]byte(nil), r.img...) }

func TestHardwareEstimate(t *testing.T) {
	r := &Report{Loads: 47}
	if got := r.HardwareEstimate(1.5); got != 70.5 {
		t.Fatalf("estimate = %v", got)
	}
}

func TestCensusGuidedAttackRecoversKey(t *testing.T) {
	// The catalogue-free attack: no Table II guessing at all — every
	// target class discovered from the LUT census, every fault table
	// derived from the class function.
	victim := buildVictim(t, false, false)
	atk, err := NewAttack(victim, attackIV, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := atk.RunCensusGuided()
	if err != nil {
		t.Fatalf("census-guided attack failed: %v", err)
	}
	if rep.Key != secretKey {
		t.Fatalf("recovered %08x, want %08x", rep.Key, secretKey)
	}
	if !rep.Verified {
		t.Fatal("not verified")
	}
	// Victim restored.
	z := hdl.GenerateKeystream(victim, attackIV, 2)
	model := snow3g.New(snow3g.Fault{})
	model.Init(secretKey, attackIV)
	want := model.KeystreamWords(2)
	if z[0] != want[0] || z[1] != want[1] {
		t.Fatal("victim not restored")
	}
}

func TestCensusGuidedAttackFailsOnProtected(t *testing.T) {
	victim := buildVictim(t, true, false)
	atk, err := NewAttack(victim, attackIV, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atk.RunCensusGuided(); err == nil {
		t.Fatal("census-guided attack succeeded against the countermeasure")
	}
}
