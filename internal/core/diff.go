package core

import (
	"fmt"

	"snowbma/internal/bitstream"
)

// Differential bitstream analysis, in the spirit of the BiFI line of
// work the paper builds on [23]–[25]: comparing two images of the same
// design compiled with different secrets localizes exactly where the
// secret material lives in the bitstream. For our SNOW 3G victim, two
// images differing only in the key differ only in the BRAM content
// region (the key ROMs) and the configuration CRC — a direct
// demonstration of attack-model assumption 2.

// DiffRegion classifies where a differing byte lies.
type DiffRegion int

const (
	// DiffPackets is outside the FDRI data (headers, CRC, commands).
	DiffPackets DiffRegion = iota
	// DiffHeaderFrame is the FDRI layout header.
	DiffHeaderFrame
	// DiffCLB is within the CLB (LUT) frames.
	DiffCLB
	// DiffDescription is within the design description frames.
	DiffDescription
	// DiffBRAM is within the block-RAM content frames.
	DiffBRAM
)

func (r DiffRegion) String() string {
	switch r {
	case DiffPackets:
		return "packets"
	case DiffHeaderFrame:
		return "fdri-header"
	case DiffCLB:
		return "clb"
	case DiffDescription:
		return "description"
	case DiffBRAM:
		return "bram"
	}
	return "unknown"
}

// DiffReport summarizes a comparison.
type DiffReport struct {
	// Bytes counts differing bytes per region.
	Bytes map[DiffRegion]int
	// LUTSlots lists the CLB slots whose content differs.
	LUTSlots []bitstream.Loc
	// BRAMOffsets lists differing byte offsets within the BRAM region.
	BRAMOffsets []int
}

// Diff compares two plaintext bitstream images of identical length and
// layout, classifying every differing byte.
func Diff(a, b []byte) (*DiffReport, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("core: images differ in size (%d vs %d)", len(a), len(b))
	}
	pa, err := bitstream.ParsePackets(a)
	if err != nil {
		return nil, err
	}
	pb, err := bitstream.ParsePackets(b)
	if err != nil {
		return nil, err
	}
	if pa.FDRIOffset != pb.FDRIOffset || pa.FDRILen != pb.FDRILen {
		return nil, fmt.Errorf("core: images have different FDRI layout")
	}
	ra, err := bitstream.ParseRegions(pa.FDRI(a))
	if err != nil {
		return nil, err
	}
	rep := &DiffReport{Bytes: map[DiffRegion]int{}}
	slotSeen := map[bitstream.Loc]bool{}
	for i := range a {
		if a[i] == b[i] {
			continue
		}
		rel := i - pa.FDRIOffset
		switch {
		case rel < 0 || rel >= pa.FDRILen:
			rep.Bytes[DiffPackets]++
		case rel < ra.CLBOff:
			rep.Bytes[DiffHeaderFrame]++
		case rel < ra.CLBOff+ra.CLBLen:
			rep.Bytes[DiffCLB]++
			clbRel := rel - ra.CLBOff
			frame := clbRel / bitstream.FrameBytes
			inFrame := clbRel % bitstream.FrameBytes
			slotByte := inFrame % bitstream.SubVectorOffset
			if slotByte < bitstream.SlotsPerFrame*bitstream.SubVectorBytes {
				loc := bitstream.Loc{Frame: frame, Slot: slotByte / bitstream.SubVectorBytes,
					Type: bitstream.FrameSliceType(frame)}
				if !slotSeen[loc] {
					slotSeen[loc] = true
					rep.LUTSlots = append(rep.LUTSlots, loc)
				}
			}
		case rel < ra.BRAMOff:
			rep.Bytes[DiffDescription]++
		default:
			rep.Bytes[DiffBRAM]++
			rep.BRAMOffsets = append(rep.BRAMOffsets, rel-ra.BRAMOff)
		}
	}
	return rep, nil
}
