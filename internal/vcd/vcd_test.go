package vcd

import (
	"bytes"
	"strings"
	"testing"
)

func TestHeaderAndChanges(t *testing.T) {
	var buf bytes.Buffer
	w := New(&buf, "dut", []string{"clk_q", "z0"})
	if err := w.Tick([]bool{false, true}); err != nil {
		t.Fatal(err)
	}
	if err := w.Tick([]bool{false, true}); err != nil { // no change
		t.Fatal(err)
	}
	if err := w.Tick([]bool{true, false}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module dut $end",
		"$var wire 1 ! clk_q $end",
		"$var wire 1 \" z0 $end",
		"$enddefinitions $end",
		"#0\n0!\n1\"",
		"#2\n1!\n0\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Time #1 must be absent: nothing changed there.
	if strings.Contains(out, "#1\n") {
		t.Error("VCD emitted an empty timestep")
	}
}

func TestIdentifierUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 20000; i++ {
		id := identifier(i)
		if seen[id] {
			t.Fatalf("identifier collision at %d: %q", i, id)
		}
		seen[id] = true
	}
}

func TestTickErrors(t *testing.T) {
	var buf bytes.Buffer
	w := New(&buf, "m", []string{"a"})
	if err := w.Tick([]bool{true, false}); err == nil {
		t.Fatal("accepted wrong value count")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Tick([]bool{true}); err == nil {
		t.Fatal("accepted Tick after Close")
	}
	if err := w.Close(); err != nil {
		t.Fatal("second Close should be a no-op")
	}
}
