// External round-trip test: drive the mapped SNOW 3G device through a
// traced keystream run (the waveform a hardware engineer would capture
// while reproducing the attack), then parse the emitted VCD back and
// check both the file structure and the sampled data. Lives in package
// vcd_test so it can use internal/hdl, which itself imports this
// package.
package vcd_test

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"snowbma/internal/hdl"
	"snowbma/internal/snow3g"
)

var (
	rtKey = snow3g.Key{0x2bd6459f, 0x82c5b300, 0x952c4910, 0x4881ff48}
	rtIV  = snow3g.IV{0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f}
)

// waveform is a parsed VCD dump: signal declarations and the cumulative
// value of every signal at every timestamp.
type waveform struct {
	timescale string
	scope     string
	vars      map[string]string // id -> signal name
	samples   map[int]map[string]byte
	times     []int
}

// parseVCD is a strict reader for the subset of IEEE 1364 VCD the
// package writes: 1-bit wire declarations and scalar value changes.
func parseVCD(t *testing.T, dump string) *waveform {
	t.Helper()
	w := &waveform{vars: map[string]string{}, samples: map[int]map[string]byte{}}
	current := map[string]byte{}
	now := -1
	snapshot := func() {
		if now < 0 {
			return
		}
		frame := make(map[string]byte, len(current))
		for id, v := range current {
			frame[id] = v
		}
		w.samples[now] = frame
		w.times = append(w.times, now)
	}
	for _, line := range strings.Split(dump, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "":
		case strings.HasPrefix(line, "$timescale"):
			w.timescale = line
		case strings.HasPrefix(line, "$scope"):
			w.scope = line
		case strings.HasPrefix(line, "$var"):
			// $var wire 1 <id> <name> $end
			f := strings.Fields(line)
			if len(f) != 6 || f[1] != "wire" || f[2] != "1" || f[5] != "$end" {
				t.Fatalf("malformed $var line: %q", line)
			}
			if _, dup := w.vars[f[3]]; dup {
				t.Fatalf("duplicate VCD identifier %q", f[3])
			}
			w.vars[f[3]] = f[4]
		case strings.HasPrefix(line, "$upscope"), strings.HasPrefix(line, "$enddefinitions"):
		case strings.HasPrefix(line, "#"):
			snapshot()
			n, err := strconv.Atoi(line[1:])
			if err != nil {
				t.Fatalf("bad timestamp %q: %v", line, err)
			}
			if n <= now {
				t.Fatalf("timestamps not strictly increasing: %d after %d", n, now)
			}
			now = n
		case line[0] == '0' || line[0] == '1':
			id := line[1:]
			if _, ok := w.vars[id]; !ok {
				t.Fatalf("value change for undeclared id %q", id)
			}
			current[id] = line[0] - '0'
		default:
			t.Fatalf("unrecognized VCD line: %q", line)
		}
	}
	snapshot()
	return w
}

// zWord reconstructs the 32-bit z output at the given sample time.
func (w *waveform) zWord(t *testing.T, at int) uint32 {
	t.Helper()
	frame := w.samples[at]
	if frame == nil {
		t.Fatalf("no sample at time %d", at)
	}
	name2id := map[string]string{}
	for id, name := range w.vars {
		name2id[name] = id
	}
	var z uint32
	for bit := 0; bit < 32; bit++ {
		id, ok := name2id[fmt.Sprintf("z[%d]", bit)]
		if !ok {
			t.Fatalf("z[%d] not declared", bit)
		}
		if frame[id] == 1 {
			z |= 1 << bit
		}
	}
	return z
}

// TestTracedAttackWaveformRoundTrip captures the keystream phase of the
// attack's target device into a VCD, parses the dump back, and checks
// (a) the declared structure — timescale, module scope, one wire per
// probed pin — and (b) that the sampled z-word values decode to exactly
// the keystream the reference cipher produces. A waveform that fails
// either half would be useless as debugging evidence.
func TestTracedAttackWaveformRoundTrip(t *testing.T) {
	design := hdl.Build(hdl.Config{Key: rtKey})
	dev, err := hdl.NewSimDevice(design.N)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	inputs, outputs := hdl.KeystreamPins()
	tr := hdl.NewTraceDevice(dev, &buf, inputs, outputs)
	const words = 4
	z := hdl.GenerateKeystream(tr, rtIV, words)
	cycles, err := tr.Close()
	if err != nil {
		t.Fatal(err)
	}

	w := parseVCD(t, buf.String())

	// Header structure.
	if w.timescale != "$timescale 1ns $end" {
		t.Fatalf("timescale = %q", w.timescale)
	}
	if w.scope != "$scope module snow3g $end" {
		t.Fatalf("scope = %q", w.scope)
	}
	if want := len(inputs) + len(outputs); len(w.vars) != want {
		t.Fatalf("declared %d wires, want %d", len(w.vars), want)
	}
	declared := map[string]bool{}
	for _, name := range w.vars {
		declared[name] = true
	}
	for _, pin := range append(append([]string{}, inputs...), outputs...) {
		if !declared[pin] {
			t.Fatalf("pin %q missing from VCD declarations", pin)
		}
	}

	// Sample structure: the final timestamp is the Close stamp at
	// #cycles, and data samples run 0..cycles-1.
	if last := w.times[len(w.times)-1]; last > cycles {
		t.Fatalf("timestamp %d beyond %d traced cycles", last, cycles)
	}

	// Data round trip: the z words decoded from the waveform's last
	// `words` keystream cycles must match both what the device returned
	// and the reference cipher.
	ref := snow3g.New(snow3g.Fault{})
	ref.Init(rtKey, rtIV)
	want := ref.KeystreamWords(words)
	for i := 0; i < words; i++ {
		at := cycles - words + i
		got := w.zWord(t, at)
		if got != z[i] {
			t.Fatalf("cycle %d: waveform z %08x, device returned %08x", at, got, z[i])
		}
		if got != want[i] {
			t.Fatalf("cycle %d: waveform z %08x, reference %08x", at, got, want[i])
		}
	}
}
