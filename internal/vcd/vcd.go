// Package vcd emits IEEE 1364 value-change-dump waveforms, the lingua
// franca of hardware debuggers. Both the netlist simulator and the
// bitstream-configured device expose boolean signal snapshots; tracing
// them lets a user inspect the SNOW 3G datapath (or a faulty variant)
// in any VCD viewer.
package vcd

import (
	"bufio"
	"fmt"
	"io"
)

// Writer streams a VCD file: construct with New, call Tick once per
// clock cycle with the sampled values, then Close.
type Writer struct {
	w       *bufio.Writer
	names   []string
	ids     []string
	last    []byte // 0/1, or 2 before the first tick
	time    int
	closed  bool
	initErr error
}

// identifier builds the compact VCD id code for signal index i.
func identifier(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~"
	id := ""
	for {
		id = string(alphabet[i%len(alphabet)]) + id
		i = i/len(alphabet) - 1
		if i < 0 {
			return id
		}
	}
}

// New writes the VCD header declaring one 1-bit wire per name, under the
// given module scope.
func New(w io.Writer, module string, names []string) *Writer {
	bw := bufio.NewWriter(w)
	v := &Writer{w: bw, names: names, ids: make([]string, len(names)), last: make([]byte, len(names))}
	for i := range v.last {
		v.last[i] = 2
	}
	write := func(format string, args ...any) {
		if v.initErr == nil {
			_, v.initErr = fmt.Fprintf(bw, format, args...)
		}
	}
	write("$timescale 1ns $end\n$scope module %s $end\n", module)
	for i, name := range names {
		v.ids[i] = identifier(i)
		write("$var wire 1 %s %s $end\n", v.ids[i], name)
	}
	write("$upscope $end\n$enddefinitions $end\n")
	return v
}

// Tick records the sampled values for the next time step, emitting only
// the signals that changed.
func (v *Writer) Tick(values []bool) error {
	if v.initErr != nil {
		return v.initErr
	}
	if v.closed {
		return fmt.Errorf("vcd: Tick after Close")
	}
	if len(values) != len(v.names) {
		return fmt.Errorf("vcd: %d values for %d signals", len(values), len(v.names))
	}
	headerDone := false
	for i, val := range values {
		b := byte(0)
		if val {
			b = 1
		}
		if v.last[i] == b {
			continue
		}
		if !headerDone {
			if _, err := fmt.Fprintf(v.w, "#%d\n", v.time); err != nil {
				return err
			}
			headerDone = true
		}
		v.last[i] = b
		if _, err := fmt.Fprintf(v.w, "%d%s\n", b, v.ids[i]); err != nil {
			return err
		}
	}
	v.time++
	return nil
}

// Close terminates the dump with a final timestamp and flushes.
func (v *Writer) Close() error {
	if v.initErr != nil {
		return v.initErr
	}
	if v.closed {
		return nil
	}
	v.closed = true
	if _, err := fmt.Fprintf(v.w, "#%d\n", v.time); err != nil {
		return err
	}
	return v.w.Flush()
}
