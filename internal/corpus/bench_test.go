package corpus

import (
	"sync"
	"testing"

	"snowbma/internal/boolfn"
	"snowbma/internal/core"
	"snowbma/internal/snow3g"
	"snowbma/internal/victim"
)

// benchIV mirrors the facade's PaperIV: the attacker-chosen IV used to
// verify candidate faults against keystream.
var benchIV = snow3g.IV{0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F}

// The benchmark corpus: unprotected seeded designs only, so the
// per-design sequential-attack baseline (which must actually recover
// each key) is well-defined. Victims are synthesized once per binary,
// outside every timer — both sides measure triage, not synthesis.
const benchDesigns = 12

var (
	benchOnce    sync.Once
	benchVictims []*victim.Victim
	benchCorpus  []Design
	benchBytes   int64
	benchErr     error
)

func benchFixture(b *testing.B) ([]Design, []*victim.Victim) {
	benchOnce.Do(func() {
		for i := 0; len(benchCorpus) < benchDesigns; i++ {
			cfg := SeededConfig(7, i)
			if cfg.Protected {
				continue
			}
			v, err := victim.Build(cfg)
			if err != nil {
				benchErr = err
				return
			}
			benchVictims = append(benchVictims, v)
			benchCorpus = append(benchCorpus, Design{ID: cfg.Fingerprint(), Image: v.Image})
			benchBytes += int64(len(v.Image))
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCorpus, benchVictims
}

// BenchmarkCorpusCensus is the PR's headline: corpus triage throughput
// (designs/sec and MB/s) with the content-addressed frame dedup on and
// off, against the two per-design sequential baselines — a fresh
// FindLUT per design (no shared scanner, the pre-PR6 shape) and the
// full end-to-end attack per design (what a corpus-scale adversary
// would otherwise pay). The bench-check gate holds dedup-on at ≥ 3×
// the sequential-attack designs/sec.
func BenchmarkCorpusCensus(b *testing.B) {
	designs, victims := benchFixture(b)
	target, err := boolfn.ParseAuto(DefaultTargetExpr)
	if err != nil {
		b.Fatal(err)
	}

	runCensusBench := func(b *testing.B, noDedup bool) {
		b.SetBytes(benchBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := New(Options{NoDedup: noDedup})
			if err != nil {
				b.Fatal(err)
			}
			for _, d := range designs {
				if _, err := c.Add(d); err != nil {
					b.Fatal(err)
				}
			}
			if rep := c.Report(); rep.Exposed != len(designs) {
				b.Fatalf("exposed %d of %d unprotected designs", rep.Exposed, len(designs))
			}
		}
		b.ReportMetric(float64(b.N*len(designs))/b.Elapsed().Seconds(), "designs/sec")
	}

	b.Run("dedup-on", func(b *testing.B) { runCensusBench(b, false) })
	b.Run("dedup-off", func(b *testing.B) { runCensusBench(b, true) })

	b.Run("sequential-findlut", func(b *testing.B) {
		b.SetBytes(benchBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, d := range designs {
				if ms := core.FindLUT(d.Image, target, core.FindOptions{}); len(ms) == 0 {
					b.Fatal("no candidates on an unprotected design")
				}
				core.FindDualXOR(d.Image, 0, 0)
			}
		}
		b.ReportMetric(float64(b.N*len(designs))/b.Elapsed().Seconds(), "designs/sec")
	})

	b.Run("sequential-attack", func(b *testing.B) {
		b.SetBytes(benchBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for di, v := range victims {
				atk, err := core.NewAttack(v.Device, benchIV, nil)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := atk.Run()
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Verified {
					b.Fatalf("attack on design %d did not verify", di)
				}
			}
		}
		b.ReportMetric(float64(b.N*len(victims))/b.Elapsed().Seconds(), "designs/sec")
	})
}
