package corpus

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"snowbma/internal/boolfn"
	"snowbma/internal/core"
)

// corpusFixture synthesizes a seeded corpus once per test binary: the
// differential suite, the incremental suite and the smoke all read the
// same 50 designs.
var (
	fixOnce    sync.Once
	fixDesigns []Design
	fixErr     error
)

const (
	fixtureSeed    = 1701
	fixtureDesigns = 50
)

func fixture(t testing.TB) []Design {
	fixOnce.Do(func() {
		src := NewSeeded(SeedOptions{Designs: fixtureDesigns, Seed: fixtureSeed})
		defer src.Close()
		for {
			d, ok, err := src.Next()
			if err != nil {
				fixErr = err
				return
			}
			if !ok {
				return
			}
			fixDesigns = append(fixDesigns, d)
		}
	})
	if fixErr != nil {
		t.Fatalf("corpus fixture: %v", fixErr)
	}
	if len(fixDesigns) != fixtureDesigns {
		t.Fatalf("corpus fixture: got %d designs, want %d", len(fixDesigns), fixtureDesigns)
	}
	return fixDesigns
}

func runCensus(t testing.TB, designs []Design, opt Options) *Report {
	t.Helper()
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range designs {
		if _, err := c.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	return c.Report()
}

// normalizeReport zeroes the wall-clock and pool-width fields so two
// runs of the same corpus compare byte-identical.
func normalizeReport(rep *Report) {
	rep.Scan.CompileTime = 0
	rep.Scan.ScanTime = 0
	rep.Scan.Workers = 0
	rep.Scan.CatalogueHits = 0
	rep.Scan.CatalogueMisses = 0
}

// TestCorpusDifferential pins the tentpole equivalence over the seeded
// 50-design corpus: dedup-on == dedup-off == per-design sequential
// FindLUT + FindDualXOR, match for match.
func TestCorpusDifferential(t *testing.T) {
	designs := fixture(t)
	f, err := boolfn.ParseAuto(DefaultTargetExpr)
	if err != nil {
		t.Fatal(err)
	}

	on := runCensus(t, designs, Options{})
	off := runCensus(t, designs, Options{NoDedup: true})

	if on.Designs != len(designs) || off.Designs != len(designs) {
		t.Fatalf("designs: dedup-on %d, dedup-off %d, want %d", on.Designs, off.Designs, len(designs))
	}
	for i, d := range designs {
		seqMatches := core.FindLUT(d.Image, f, core.FindOptions{})
		seq := make([]int, 0, len(seqMatches))
		for _, m := range seqMatches {
			seq = append(seq, m.Index)
		}
		seqDuals := core.FindDualXOR(d.Image, 0, 0)
		for _, rep := range []*Report{on, off} {
			dr := rep.Results[i]
			if dr.ID != d.ID {
				t.Fatalf("design %d: report ID %s, want %s", i, shortID(dr.ID), shortID(d.ID))
			}
			if !reflect.DeepEqual(dr.Matches, seq) && !(len(dr.Matches) == 0 && len(seq) == 0) {
				t.Errorf("design %d: census matches %v, sequential FindLUT %v", i, dr.Matches, seq)
			}
			if dr.DualHits != len(seqDuals) {
				t.Errorf("design %d: census dual hits %d, FindDualXOR %d", i, dr.DualHits, len(seqDuals))
			}
			wantLUTs := 32 // one genuine f8 instance per keystream bit
			if dr.Protected {
				wantLUTs = 0 // the countermeasure splits every one
			}
			if dr.TargetLUTs != wantLUTs || dr.Exposed != (wantLUTs > 0) {
				t.Errorf("design %d (protected=%v): %d target-class LUTs, exposed=%v, want %d",
					i, dr.Protected, dr.TargetLUTs, dr.Exposed, wantLUTs)
			}
		}
	}

	// The two census modes must agree on the whole report body.
	nOn, nOff := *on, *off
	normalizeReport(&nOn)
	normalizeReport(&nOff)
	nOn.Scan, nOff.Scan = core.ScanStats{}, core.ScanStats{}
	nOn.Frames, nOff.Frames = 0, 0
	nOn.FramesScanned, nOff.FramesScanned = 0, 0
	nOn.DedupHits, nOff.DedupHits = 0, 0
	nOn.DedupRate, nOff.DedupRate = 0, 0
	onResults, offResults := nOn.Results, nOff.Results
	nOn.Results, nOff.Results = nil, nil
	if !reflect.DeepEqual(nOn, nOff) {
		t.Errorf("dedup-on and dedup-off headline reports diverge:\n on: %+v\noff: %+v", nOn, nOff)
	}
	for i := range onResults {
		a, b := onResults[i], offResults[i]
		a.FramesScanned, b.FramesScanned = 0, 0
		a.DedupHits, b.DedupHits = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("design %d: dedup-on result %+v != dedup-off %+v", i, a, b)
		}
	}

	// Dedup must actually have deduplicated something (padding and blank
	// frames repeat within and across designs).
	if on.DedupHits == 0 {
		t.Error("dedup-on corpus reports zero dedup hits")
	}
	if on.FramesScanned+on.DedupHits != on.Frames {
		t.Errorf("frames %d != scanned %d + dedup hits %d", on.Frames, on.FramesScanned, on.DedupHits)
	}
}

// TestCorpusDeterministic pins the report reproducibility the fleet
// merge depends on: two engines over the same corpus marshal to
// byte-identical JSON after timing normalization.
func TestCorpusDeterministic(t *testing.T) {
	designs := fixture(t)
	a := runCensus(t, designs, Options{})
	b := runCensus(t, designs, Options{})
	normalizeReport(a)
	normalizeReport(b)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("two identical census runs produced different reports:\n%s\n%s", ja, jb)
	}
}

// TestCorpusIncrementalRescan flips bytes in two frames of one design
// and re-adds it: only the touched chunk windows may rescan, and the
// incremental result must equal a fresh full scan of the modified
// image.
func TestCorpusIncrementalRescan(t *testing.T) {
	designs := fixture(t)
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range designs[:8] {
		if _, err := c.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	scannedBefore := c.Report().Scan.BytesScanned

	// Flip one byte in each of two frames, past the chunkOverlap point
	// so the preceding chunk's window (which hashes chunkOverlap bytes
	// of the next chunk) is untouched: exactly two windows change.
	mod := append([]byte(nil), designs[3].Image...)
	for _, frame := range []int{40, 90} {
		off := frame*ChunkBytes + chunkOverlap + 20
		if off >= len(mod) {
			t.Fatalf("flip offset %d outside image of %d bytes", off, len(mod))
		}
		mod[off] ^= 0xA5
	}
	dr, err := c.Add(Design{ID: designs[3].ID, Image: mod, Protected: designs[3].Protected})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Rescans != 1 {
		t.Errorf("rescans = %d, want 1", dr.Rescans)
	}
	if dr.FramesScanned != 2 {
		t.Errorf("incremental re-add scanned %d frames, want exactly the 2 touched ones", dr.FramesScanned)
	}
	if dr.DedupHits != dr.Frames-2 {
		t.Errorf("incremental re-add: %d dedup hits, want %d", dr.DedupHits, dr.Frames-2)
	}

	// ScanStats must account only the touched windows.
	scannedAfter := c.Report().Scan.BytesScanned
	maxWindow := int64(ChunkBytes + chunkOverlap)
	if delta := scannedAfter - scannedBefore; delta > 2*maxWindow {
		t.Errorf("incremental re-add scanned %d bytes, want <= %d (2 windows)", delta, 2*maxWindow)
	}

	// Ground truth: a fresh dedup-off scan of the modified image.
	fresh := runCensus(t, []Design{{ID: "mod", Image: mod}}, Options{NoDedup: true})
	want := fresh.Results[0]
	if !reflect.DeepEqual(dr.Matches, want.Matches) && !(len(dr.Matches) == 0 && len(want.Matches) == 0) {
		t.Errorf("incremental matches %v != fresh full-scan matches %v", dr.Matches, want.Matches)
	}
	if dr.DualHits != want.DualHits {
		t.Errorf("incremental dual hits %d != fresh %d", dr.DualHits, want.DualHits)
	}

	// The report holds the design once, with the updated result.
	rep := c.Report()
	if rep.Designs != 8 {
		t.Errorf("report designs = %d after re-add, want 8", rep.Designs)
	}
}

// TestCorpusMerge pins the fleet-side shard merge: splitting the corpus
// into shards and merging their reports reproduces the single-engine
// headline (modulo dedup, which is per-shard).
func TestCorpusMerge(t *testing.T) {
	designs := fixture(t)
	whole := runCensus(t, designs, Options{})
	a := runCensus(t, designs[:17], Options{})
	b := runCensus(t, designs[17:33], Options{})
	cc := runCensus(t, designs[33:], Options{})
	merged := Merge(a, b, cc)
	if merged.Designs != whole.Designs || merged.Exposed != whole.Exposed ||
		merged.Covered != whole.Covered || merged.Protected != whole.Protected ||
		merged.Matches != whole.Matches || merged.DualHits != whole.DualHits ||
		merged.BytesTotal != whole.BytesTotal || merged.Frames != whole.Frames {
		t.Errorf("merged headline diverges from whole-corpus run:\nmerged: %+v\n whole: %+v",
			merged, whole)
	}
	// Merged results are ID-sorted; the whole run is stream-ordered.
	// Compare as sets keyed by ID.
	byID := map[string]DesignResult{}
	for _, dr := range whole.Results {
		byID[dr.ID] = dr
	}
	for _, dr := range merged.Results {
		w, ok := byID[dr.ID]
		if !ok {
			t.Fatalf("merged report holds unknown design %s", shortID(dr.ID))
		}
		dr.FramesScanned, w.FramesScanned = 0, 0
		dr.DedupHits, w.DedupHits = 0, 0
		if !reflect.DeepEqual(dr, w) {
			t.Errorf("design %s: merged %+v != whole %+v", shortID(dr.ID), dr, w)
		}
	}
}

// TestCorpusCensusSmoke is the census-at-scale invariant check behind
// `make census-smoke`: a seeded 200-design corpus streamed end to end
// (synthesis pipeline included) under the race detector, with the
// report invariants asserted.
func TestCorpusCensusSmoke(t *testing.T) {
	const n = 200
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background(), NewSeeded(SeedOptions{Designs: n, Seed: 42}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Designs != n {
		t.Fatalf("designs = %d, want %d", rep.Designs, n)
	}
	if rep.Exposed+rep.Covered != rep.Designs {
		t.Errorf("exposed %d + covered %d != designs %d", rep.Exposed, rep.Covered, rep.Designs)
	}
	if rep.Protected != n/4 {
		t.Errorf("protected = %d, want %d (every fourth design)", rep.Protected, n/4)
	}
	if rep.Exposed != n-n/4 {
		t.Errorf("exposed = %d, want every unprotected design (%d)", rep.Exposed, n-n/4)
	}
	if rep.Covered != rep.Protected {
		t.Errorf("covered %d != protected %d: the countermeasure must hide the target class exactly",
			rep.Covered, rep.Protected)
	}
	if rep.DedupHits == 0 || rep.DedupRate <= 0 {
		t.Error("zero dedup hits over a 200-design corpus")
	}
	if rep.FramesScanned+rep.DedupHits != rep.Frames {
		t.Errorf("frames %d != scanned %d + dedup %d", rep.Frames, rep.FramesScanned, rep.DedupHits)
	}
	if got := int64(0); true {
		for _, dr := range rep.Results {
			got += int64(dr.Bytes)
		}
		if got != rep.BytesTotal {
			t.Errorf("bytes_total %d != sum of per-design bytes %d", rep.BytesTotal, got)
		}
	}
	t.Logf("census: %d designs, %d exposed, %d covered (%d protected), dedup rate %.1f%%, %d/%d frames scanned",
		rep.Designs, rep.Exposed, rep.Covered, rep.Protected,
		100*rep.DedupRate, rep.FramesScanned, rep.Frames)
}

// TestCorpusCancellation pins the Run contract: a cancelled context
// stops the census between designs with core.ErrCancelled.
func TestCorpusCancellation(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(ctx, NewSeeded(SeedOptions{Designs: 4, Seed: 1})); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("cancelled census error = %v, want core.ErrCancelled", err)
	}
}

// TestDirSource ingests a directory corpus: sorted order, stable IDs,
// empty files rejected.
func TestDirSource(t *testing.T) {
	designs := fixture(t)
	dir := t.TempDir()
	for i, name := range []string{"b.bit", "a.bit", "c.bit"} {
		if err := os.WriteFile(filepath.Join(dir, name), designs[i].Image, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	src, err := NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for {
		d, ok, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		ids = append(ids, d.ID)
	}
	if !reflect.DeepEqual(ids, []string{"a.bit", "b.bit", "c.bit"}) {
		t.Fatalf("dir source order %v, want sorted names", ids)
	}

	if err := os.WriteFile(filepath.Join(dir, "empty.bit"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err = NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := src.Next()
		if err != nil {
			return // the empty file surfaced as an error, as required
		}
		if !ok {
			t.Fatal("empty bitstream file passed the directory source")
		}
	}
}

// TestSeededSourceDeterminism: two sources with the same options stream
// identical corpora, and an Indices subset selects exactly those
// designs.
func TestSeededSourceDeterminism(t *testing.T) {
	drain := func(src *SeededSource) []Design {
		defer src.Close()
		var out []Design
		for {
			d, ok, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return out
			}
			out = append(out, d)
		}
	}
	a := drain(NewSeeded(SeedOptions{Designs: 6, Seed: 9}))
	b := drain(NewSeeded(SeedOptions{Designs: 6, Seed: 9}))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identically-seeded sources streamed different corpora")
	}
	sub := drain(NewSeeded(SeedOptions{Designs: 6, Seed: 9, Indices: []int{4, 1}}))
	if len(sub) != 2 || sub[0].ID != a[4].ID || sub[1].ID != a[1].ID {
		t.Fatal("Indices subset did not select the requested designs in order")
	}
	if a[3].ID == a[2].ID {
		t.Fatal("adjacent designs share a fingerprint — the seeded variation is degenerate")
	}
}
