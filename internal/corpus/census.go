package corpus

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sort"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/core"
	"snowbma/internal/obs"
)

// DefaultTargetExpr is the W-XOR census target: the z_t-path
// (s0 ⊕ R1 ⊕ R2)-shaped LUT the paper's fault injection needs (Table II
// row 1). The FINDLUT scan lists its candidates — genuine instances and
// byte-coincidence false positives alike, exactly as Table II does.
// Exposure is decided by the extracted-LUT class census instead: a
// design whose occupied LUT slots include the target's P-class is
// exposed; a design with none — the Section VII-A countermeasure splits
// the visible 3-XOR into indistinguishable XOR2s — is covered.
const DefaultTargetExpr = "(a1^a2^a3)a4a5!a6"

// ChunkBytes is the dedup granularity: one fabric frame. Images chunk
// on this fixed grid and each chunk's scan result is memoized by
// content hash.
const ChunkBytes = bitstream.FrameBytes

// chunkOverlap is how far past its chunk a scan window must extend so
// every base position inside the chunk sees its full candidate span:
// a FINDLUT match at position l reads bytes [l, l+span), so the last
// in-chunk position needs span-1 trailing bytes. The overlap is part of
// the hashed content — a chunk's result depends on those bytes too.
const chunkOverlap = (bitstream.SubVectors-1)*bitstream.SubVectorOffset + bitstream.SubVectorBytes - 1

// memoMax bounds the content-addressed memo; past the cap, windows are
// scanned but not retained (an adversarial corpus must not grow memory
// without limit). At ~64 bytes per entry the cap is a few hundred MB of
// worst-case distinct frames.
const memoMax = 1 << 21

// Options parameterizes a Census engine.
type Options struct {
	// NoDedup disables the content-addressed frame memo: every design is
	// scanned as one whole image (the PR6 batch shape). The results are
	// identical either way — pinned by the differential suite.
	NoDedup bool
	// Parallel bounds the whole-image scan worker pool (0 = all CPUs).
	// Chunked scans are single-worker: a 708-byte window does not
	// amortize a pool.
	Parallel int
	// Expr overrides the census target function ("" = DefaultTargetExpr).
	Expr string
	// Tel receives the census span and per-design progress events
	// (nil-safe). Scanner-level spans are deliberately not attached: at
	// thousands of designs they would flood the tracer.
	Tel *obs.Telemetry
	// Logf receives per-design progress lines (nil = silent).
	Logf func(string, ...any)
}

// memoEntry is one chunk window's memoized scan result, window-relative.
type memoEntry struct {
	matches []core.Match
	duals   []int32
}

// DesignResult is one design's census outcome.
type DesignResult struct {
	ID        string `json:"id"`
	Protected bool   `json:"protected,omitempty"`
	Bytes     int    `json:"bytes"`
	// Frames is the image's chunk count; FramesScanned how many missed
	// the memo and paid for a scan during this (re-)add. With dedup off
	// the whole image is one pass and FramesScanned == Frames.
	Frames        int `json:"frames"`
	FramesScanned int `json:"frames_scanned"`
	DedupHits     int `json:"dedup_hits,omitempty"`
	// Matches are the ascending byte indexes of target-function
	// candidates (genuine and false positive, as in Table II); DualHits
	// counts Section VII-B dual-XOR positions.
	Matches  []int `json:"matches,omitempty"`
	DualHits int   `json:"dual_hits,omitempty"`
	// TargetLUTs counts occupied LUT slots whose extracted table falls in
	// the target's P-class — the genuine population behind the candidate
	// list (32 on an unprotected SNOW 3G design, 0 under the
	// countermeasure). -1 when the image does not parse as a full
	// bitstream (directory-ingested fragments), in which case Exposed
	// falls back to the candidate heuristic.
	TargetLUTs int `json:"target_luts"`
	// Exposed: the design genuinely instantiates the W-XOR target, so
	// the paper's fault is injectable. Covered is its complement at
	// report scope.
	Exposed bool `json:"exposed"`
	// Rescans counts incremental re-adds of this design ID.
	Rescans int `json:"rescans,omitempty"`
}

// Report is the deterministic corpus-wide vulnerability report: for a
// fixed corpus and options, every field except the ScanStats timings is
// reproducible run to run.
type Report struct {
	Expr    string `json:"expr"`
	Designs int    `json:"designs"`
	// Exposed counts designs whose LUT census holds the W-XOR target
	// class; Covered the rest; Protected how many carried the
	// countermeasure.
	Exposed   int `json:"exposed"`
	Covered   int `json:"covered"`
	Protected int `json:"protected"`
	// Frames / FramesScanned / DedupHits account the memo across every
	// add (including incremental re-scans); DedupRate = DedupHits/Frames.
	Frames        int64   `json:"frames"`
	FramesScanned int64   `json:"frames_scanned"`
	DedupHits     int64   `json:"dedup_hits"`
	DedupRate     float64 `json:"dedup_rate"`
	BytesTotal    int64   `json:"bytes_total"`
	Matches       int     `json:"matches"`
	DualHits      int     `json:"dual_hits"`
	// Scan accumulates the stats of every real scanner pass (memo hits
	// pay nothing and appear only in DedupHits).
	Scan    core.ScanStats `json:"scan"`
	Results []DesignResult `json:"results"`
}

// Census is the corpus scan engine. It is not safe for concurrent use:
// one census run owns one engine (the service spawns one per corpus
// job). Add may be called directly, or Run drains a Source.
type Census struct {
	opt  Options
	tel  *obs.Telemetry
	full *core.Scanner // whole-image path (dedup off)
	chnk *core.Scanner // chunk-window path (dedup on)

	memo    map[[sha256.Size]byte]*memoEntry
	byID    map[string]int // design ID → index into results
	results []DesignResult

	// canon is the target's P-class representative; classCache memoizes
	// table → in-target-class across every design (designs repeat tables
	// heavily, so classification costs one canonicalization per distinct
	// table corpus-wide).
	canon      boolfn.TT
	classCache map[boolfn.TT]bool

	frames, framesScanned, dedupHits, bytesTotal int64
	scan                                         core.ScanStats
}

// New builds a census engine. The target expression compiles once into
// both scanners' shared candidate catalogue (served by the process-wide
// catalogue cache); the compiled anchor index is cached on each scanner
// across every design and every chunk.
func New(opt Options) (*Census, error) {
	expr := opt.Expr
	if expr == "" {
		expr = DefaultTargetExpr
		opt.Expr = expr
	}
	f, err := boolfn.ParseAuto(expr)
	if err != nil {
		return nil, fmt.Errorf("corpus: expr: %w", err)
	}
	c := &Census{
		opt:        opt,
		tel:        opt.Tel,
		memo:       map[[sha256.Size]byte]*memoEntry{},
		byID:       map[string]int{},
		canon:      boolfn.PClassCanon(f),
		classCache: map[boolfn.TT]bool{},
	}
	c.full = core.NewScanner(core.FindOptions{Parallel: opt.Parallel})
	c.full.AddFunction("t", f).AddDualXOR("w", 0, 0)
	c.chnk = core.NewScanner(core.FindOptions{Parallel: 1})
	c.chnk.AddFunction("t", f).AddDualXOR("w", 0, 0)
	return c, nil
}

// Add scans one design and folds it into the report. Re-adding an
// existing ID is the incremental path: with dedup on, only chunks whose
// content hash changed (the delta, plus the preceding chunk whose
// overlap window covers it) are rescanned — everything else is served
// from the memo.
func (c *Census) Add(d Design) (DesignResult, error) {
	if d.ID == "" {
		return DesignResult{}, fmt.Errorf("corpus: design without an ID")
	}
	if len(d.Image) == 0 {
		return DesignResult{}, fmt.Errorf("corpus: design %s has an empty image", d.ID)
	}
	dr := DesignResult{
		ID:        d.ID,
		Protected: d.Protected,
		Bytes:     len(d.Image),
		Frames:    (len(d.Image) + ChunkBytes - 1) / ChunkBytes,
	}
	if c.opt.NoDedup {
		res := c.full.Scan(d.Image)
		c.scan.Accumulate(res.Stats)
		dr.FramesScanned = dr.Frames
		for _, m := range res.Matches["t"] {
			dr.Matches = append(dr.Matches, m.Index)
		}
		dr.DualHits = len(res.DualHits["w"])
	} else {
		c.addChunked(d.Image, &dr)
	}
	dr.TargetLUTs = c.classify(d.Image)
	if dr.TargetLUTs >= 0 {
		dr.Exposed = dr.TargetLUTs > 0
	} else {
		dr.Exposed = len(dr.Matches) > 0
	}

	c.frames += int64(dr.Frames)
	c.framesScanned += int64(dr.FramesScanned)
	c.dedupHits += int64(dr.DedupHits)
	c.bytesTotal += int64(dr.Bytes)
	if i, ok := c.byID[d.ID]; ok {
		dr.Rescans = c.results[i].Rescans + 1
		c.results[i] = dr
	} else {
		c.byID[d.ID] = len(c.results)
		c.results = append(c.results, dr)
	}
	return dr, nil
}

// addChunked is the dedup path: the image is cut on the ChunkBytes
// grid, each chunk is scanned as a window extended by chunkOverlap
// trailing bytes, and the window's result is memoized under the hash of
// its full content. Reconstruction is exact: a window of
// ChunkBytes+chunkOverlap bytes scans precisely the base positions
// owned by its chunk (the last in-chunk position's span ends at the
// window's last byte), and a truncated final window excludes exactly
// the positions a whole-image scan would exclude.
func (c *Census) addChunked(img []byte, dr *DesignResult) {
	for start := 0; start < len(img); start += ChunkBytes {
		end := start + ChunkBytes
		if end > len(img) {
			end = len(img)
		}
		wend := start + ChunkBytes + chunkOverlap
		if wend > len(img) {
			wend = len(img)
		}
		window := img[start:wend]
		h := sha256.Sum256(window)
		e, ok := c.memo[h]
		if ok {
			dr.DedupHits++
		} else {
			e = c.scanWindow(window)
			dr.FramesScanned++
			if len(c.memo) < memoMax {
				c.memo[h] = e
			}
		}
		chunkLen := end - start
		for _, m := range e.matches {
			if m.Index < chunkLen { // the next chunk owns the rest
				dr.Matches = append(dr.Matches, start+m.Index)
			}
		}
		for _, p := range e.duals {
			if int(p) < chunkLen {
				dr.DualHits++
			}
		}
	}
}

// classify counts the design's occupied LUT slots in the target's
// P-class — the ground truth the FINDLUT candidate list approximates.
// Returns -1 if the image does not parse as a full bitstream.
func (c *Census) classify(img []byte) int {
	luts, err := bitstream.ExtractLUTs(img)
	if err != nil {
		return -1
	}
	n := 0
	for _, l := range luts {
		hit, ok := c.classCache[l.Init]
		if !ok {
			hit = boolfn.PClassCanon(l.Init) == c.canon
			c.classCache[l.Init] = hit
		}
		if hit {
			n++
		}
	}
	return n
}

// scanWindow runs the shared chunk scanner over one window and captures
// its window-relative result for the memo.
func (c *Census) scanWindow(window []byte) *memoEntry {
	res := c.chnk.Scan(window)
	c.scan.Accumulate(res.Stats)
	e := &memoEntry{}
	if ms := res.Matches["t"]; len(ms) > 0 {
		e.matches = append([]core.Match(nil), ms...)
	}
	for _, p := range res.DualHits["w"] {
		e.duals = append(e.duals, int32(p))
	}
	return e
}

// MemoLen reports the number of distinct frame windows held by the
// dedup memo.
func (c *Census) MemoLen() int { return len(c.memo) }

// Report assembles the corpus-wide report from the engine's current
// state. It may be called repeatedly; each call reflects every Add so
// far.
func (c *Census) Report() *Report {
	rep := &Report{
		Expr:          c.opt.Expr,
		Designs:       len(c.results),
		Frames:        c.frames,
		FramesScanned: c.framesScanned,
		DedupHits:     c.dedupHits,
		BytesTotal:    c.bytesTotal,
		Scan:          c.scan,
		Results:       append([]DesignResult(nil), c.results...),
	}
	for _, dr := range rep.Results {
		if dr.Exposed {
			rep.Exposed++
		} else {
			rep.Covered++
		}
		if dr.Protected {
			rep.Protected++
		}
		rep.Matches += len(dr.Matches)
		rep.DualHits += dr.DualHits
	}
	if rep.Frames > 0 {
		rep.DedupRate = float64(rep.DedupHits) / float64(rep.Frames)
	}
	return rep
}

// Run drains a source through the engine and returns the report.
// Cancellation is honored between designs with an error wrapping
// core.ErrCancelled. If src implements Close(), it is closed on every
// exit path.
func (c *Census) Run(ctx context.Context, src Source) (*Report, error) {
	if cl, ok := src.(interface{ Close() }); ok {
		defer cl.Close()
	}
	span := c.tel.StartSpan("corpus.census", obs.KV("dedup", !c.opt.NoDedup))
	defer span.End()
	n := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %v", core.ErrCancelled, err)
		}
		d, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		dr, err := c.Add(d)
		if err != nil {
			return nil, err
		}
		n++
		c.tel.Publish(obs.EventProgress, "corpus.design", float64(n),
			obs.KV("id", shortID(d.ID)), obs.KV("exposed", dr.Exposed),
			obs.KV("frames_scanned", dr.FramesScanned), obs.KV("dedup_hits", dr.DedupHits))
		if c.opt.Logf != nil {
			c.opt.Logf("corpus: design %d %s: %d matches, %d/%d frames scanned",
				n, shortID(d.ID), len(dr.Matches), dr.FramesScanned, dr.Frames)
		}
	}
	rep := c.Report()
	span.SetAttr("designs", rep.Designs)
	span.SetAttr("dedup_hits", rep.DedupHits)
	c.tel.Gauge("corpus.designs").Set(float64(rep.Designs))
	c.tel.Gauge("corpus.exposed").Set(float64(rep.Exposed))
	c.tel.Gauge("corpus.memo_entries").Set(float64(len(c.memo)))
	return rep, nil
}

// Merge folds shard reports into one fleet-wide report: counters sum,
// per-design results concatenate sorted by ID (shards arrive in worker
// order, which is not deterministic), and the headline tallies are
// recounted from the merged results. Dedup remains per-shard: a frame
// repeated across two workers' shards was scanned once per worker.
func Merge(reps ...*Report) *Report {
	out := &Report{}
	for _, r := range reps {
		if r == nil {
			continue
		}
		if out.Expr == "" {
			out.Expr = r.Expr
		}
		out.Frames += r.Frames
		out.FramesScanned += r.FramesScanned
		out.DedupHits += r.DedupHits
		out.BytesTotal += r.BytesTotal
		out.Scan.Accumulate(r.Scan)
		out.Results = append(out.Results, r.Results...)
	}
	sortResults(out.Results)
	out.Designs = len(out.Results)
	for _, dr := range out.Results {
		if dr.Exposed {
			out.Exposed++
		} else {
			out.Covered++
		}
		if dr.Protected {
			out.Protected++
		}
		out.Matches += len(dr.Matches)
		out.DualHits += dr.DualHits
	}
	if out.Frames > 0 {
		out.DedupRate = float64(out.DedupHits) / float64(out.Frames)
	}
	return out
}

func sortResults(rs []DesignResult) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
}

// shortID trims a design ID for logs and events (victim fingerprints
// run long; the prefix is plenty to correlate).
func shortID(id string) string {
	if len(id) > 24 {
		return id[:24]
	}
	return id
}
