// Package corpus is the census-at-scale subsystem: it streams thousands
// of distinct synthesized designs through a single shared core.Scanner
// with one immutable candidate catalogue, dedupes identical frames
// content-addressed (hash → scan-result memo, so structurally repeated
// frames across designs are scanned once), and produces a deterministic
// fleet-wide vulnerability report — how many designs expose the W-XOR
// target, how many the countermeasure covers, and what the dedup bought.
//
// The paper evaluates FINDLUT against a single bitstream; the threat
// model is fleet-scale (ROADMAP item 3): an attacker triages a large
// design population before committing an edit. The Scanner's cached
// compiled anchor index (built in PR 6 for exactly the
// scan-one-query-set-over-many-images shape) is what makes the corpus
// pass cheap: the catalogue compiles once and every design — and with
// dedup on, every *distinct frame* — pays only the walk.
//
// Two Source implementations feed the engine: a seeded generator over
// victim.Config variations (NewSeeded; the per-index config derivation
// SeededConfig is exported so the fleet coordinator can shard a corpus
// by design fingerprint without synthesizing anything), and a directory
// ingester (NewDir) for externally captured bitstreams.
package corpus

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"snowbma/internal/bitstream"
	"snowbma/internal/snow3g"
	"snowbma/internal/victim"
)

// Design is one corpus member: a stable identity plus the plaintext
// bitstream image to scan.
type Design struct {
	// ID is the design's stable identity — the victim fingerprint for
	// generated designs, the file name for ingested ones. Re-adding a
	// design under the same ID is an incremental re-scan (a delta).
	ID string
	// Image is the plaintext bitstream. The census scans raw bytes, so
	// encrypted images must be unsealed before ingestion.
	Image []byte
	// Protected marks designs built with the Section VII-A
	// countermeasure, when the source knows (generated corpora do).
	Protected bool
}

// Source streams a corpus of designs. Next returns ok=false after the
// last design; a non-nil error aborts the census. Sources that hold
// resources may additionally implement Close(), which the census calls
// when it finishes (or aborts).
type Source interface {
	Next() (d Design, ok bool, err error)
}

// DefaultWorkers caps the seeded source's synthesis worker pool when
// SeedOptions.Workers is zero: synthesis is CPU-bound, so the pool is
// min(NumCPU, DefaultWorkers).
const DefaultWorkers = 4

// SeedOptions parameterizes the seeded corpus generator.
type SeedOptions struct {
	// Designs is the corpus size; design indexes run [0, Designs) unless
	// Indices narrows them.
	Designs int
	// Seed is the master seed: (Seed, index) fully determines each
	// design, so two sources with the same options stream byte-identical
	// corpora.
	Seed int64
	// Indices, when non-empty, selects an explicit subset of design
	// indexes — the fleet coordinator's shard unit.
	Indices []int
	// Workers bounds the synthesis worker pool (0 = min(NumCPU,
	// DefaultWorkers)). Delivery order is index order regardless.
	Workers int
}

// mix derives a per-design rng seed from (master seed, index) with a
// splitmix-style multiply, so neighboring indexes decorrelate.
func mix(seed int64, i int) int64 {
	return int64(uint64(seed)*0x9E3779B97F4A7C15 ^ (uint64(i)+1)*0xBF58476D1CE4E5B9)
}

// SeededConfig is the deterministic design derivation: the victim
// config of design i under a master seed. Every fourth design carries
// the countermeasure, so a corpus measures coverage alongside exposure.
// Exported because the fleet coordinator shards a corpus by
// cfg.Fingerprint() — routing and synthesis must derive the same design
// from the same (seed, index).
func SeededConfig(seed int64, i int) victim.Config {
	rng := rand.New(rand.NewSource(mix(seed, i)))
	return victim.Config{
		Key:       snow3g.Key{rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32()},
		Seed:      int64(rng.Uint32()) + 1, // placement seed; +1 keeps it off the 0="default" path
		PadFrames: rng.Intn(4),
		Protected: i%4 == 3,
	}
}

// item is one delivery of the seeded pipeline.
type item struct {
	d   Design
	err error
}

// SeededSource generates designs from seeded victim.Config variations
// through a bounded synthesis worker pool, delivering them in index
// order. It is single-consumer; call Close to release the pipeline if
// the stream is abandoned early.
type SeededSource struct {
	out  chan item
	stop chan struct{}
	once sync.Once
}

// NewSeeded starts the generation pipeline. Synthesis of up to
// opt.Workers designs overlaps the consumer's scanning; completed
// designs are held back until their turn, so the stream order — and
// therefore the census report — is deterministic.
func NewSeeded(opt SeedOptions) *SeededSource {
	indices := opt.Indices
	if len(indices) == 0 {
		indices = make([]int, opt.Designs)
		for i := range indices {
			indices[i] = i
		}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
		if workers > DefaultWorkers {
			workers = DefaultWorkers
		}
	}
	s := &SeededSource{out: make(chan item), stop: make(chan struct{})}
	// pend carries one future per design in index order; its capacity is
	// the synthesis window, bounding in-flight builds AND finished images
	// waiting to be consumed (each future's buffer lets the builder exit
	// without a rendezvous).
	pend := make(chan chan item, workers)
	go func() {
		defer close(pend)
		for _, idx := range indices {
			fut := make(chan item, 1)
			select {
			case pend <- fut:
			case <-s.stop:
				return
			}
			go func(idx int, fut chan<- item) {
				cfg := SeededConfig(opt.Seed, idx)
				v, err := victim.Build(cfg)
				it := item{err: err}
				if err == nil {
					it.d = Design{ID: cfg.Fingerprint(), Image: v.Image, Protected: cfg.Protected}
				}
				fut <- it
			}(idx, fut)
		}
	}()
	go func() {
		defer close(s.out)
		for fut := range pend {
			select {
			case s.out <- <-fut:
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Next returns the next design in index order.
func (s *SeededSource) Next() (Design, bool, error) {
	it, ok := <-s.out
	if !ok {
		return Design{}, false, nil
	}
	if it.err != nil {
		return Design{}, false, it.err
	}
	return it.d, true, nil
}

// Close releases the pipeline; pending builds finish and are dropped.
// Safe to call more than once.
func (s *SeededSource) Close() { s.once.Do(func() { close(s.stop) }) }

// ErrEncrypted is returned (wrapped) when a directory source meets a
// sealed image: the census scans plaintext bytes, so encrypted
// bitstreams must be unsealed (or attacked via the decryption oracle)
// before ingestion.
var ErrEncrypted = errors.New("corpus: encrypted bitstream")

// DirSource ingests every regular file of a directory as one design,
// in sorted name order. File names are the design IDs.
type DirSource struct {
	dir   string
	names []string
	pos   int
}

// NewDir lists the directory eagerly (so a bad path fails at
// construction) but reads each image lazily at Next, keeping one design
// resident at a time.
func NewDir(dir string) (*DirSource, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	s := &DirSource{dir: dir}
	for _, e := range entries {
		if e.Type().IsRegular() {
			s.names = append(s.names, e.Name())
		}
	}
	sort.Strings(s.names)
	if len(s.names) == 0 {
		return nil, fmt.Errorf("corpus: %s holds no regular files", dir)
	}
	return s, nil
}

// Next reads the next file. Empty files and sealed images are errors —
// a zero-byte "bitstream" scanning to zero matches would read as a
// clean negative result.
func (s *DirSource) Next() (Design, bool, error) {
	if s.pos >= len(s.names) {
		return Design{}, false, nil
	}
	name := s.names[s.pos]
	s.pos++
	b, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return Design{}, false, fmt.Errorf("corpus: %w", err)
	}
	if len(b) == 0 {
		return Design{}, false, fmt.Errorf("corpus: %s is empty (0 bytes) — not a bitstream", name)
	}
	if bitstream.IsEncrypted(b) {
		return Design{}, false, fmt.Errorf("%w: %s", ErrEncrypted, name)
	}
	return Design{ID: name, Image: b}, true, nil
}
