package fleet

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"snowbma/internal/obs"
	"snowbma/internal/service"
	"snowbma/internal/store"
)

// The fleet tests need real worker *processes* — a goroutine cannot be
// SIGKILLed — so the test binary re-execs itself: with
// SNOWBMA_FLEET_WORKER=1 in the environment, TestMain becomes a worker
// main (a service engine behind its HTTP API on a loopback port)
// instead of running the tests. The parent reads the child's address
// from its first stdout line and kills it with Process.Kill, which is
// SIGKILL: no deferred cleanup, no WAL sync, no goodbye — exactly the
// crash the durable store must survive.
func TestMain(m *testing.M) {
	if os.Getenv("SNOWBMA_FLEET_WORKER") == "1" {
		runWorkerProcess()
		return
	}
	os.Exit(m.Run())
}

// envInt reads an integer knob from the worker environment.
func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// runWorkerProcess is the re-exec'd worker main. Knobs (all env):
// SNOWBMA_WORKER_STORE (WAL directory; empty = volatile),
// SNOWBMA_WORKER_POOL (service worker pool width, default 1),
// SNOWBMA_WORKER_RIG_MS (modelled rig occupancy per job, default 0).
func runWorkerProcess() {
	cfg := service.Config{
		Workers:    envInt("SNOWBMA_WORKER_POOL", 1),
		QueueDepth: 256,
		RigLatency: time.Duration(envInt("SNOWBMA_WORKER_RIG_MS", 0)) * time.Millisecond,
	}
	if dir := os.Getenv("SNOWBMA_WORKER_STORE"); dir != "" {
		st, err := store.OpenDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: open store: %v\n", err)
			os.Exit(1)
		}
		cfg.Store = st
	}
	eng, err := service.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: open engine: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: listen: %v\n", err)
		os.Exit(1)
	}
	// The parent parses this exact line for the address.
	fmt.Printf("WORKER_ADDR=%s\n", ln.Addr())
	http.Serve(ln, eng.Handler()) //nolint:errcheck // killed, never returns
}

// workerProc is one spawned worker process.
type workerProc struct {
	cmd *exec.Cmd
	url string
}

// startWorker spawns a worker process and waits for its address. The
// storeDir may be "" for a volatile worker.
func startWorker(t testing.TB, storeDir string, pool, rigMS int) *workerProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"SNOWBMA_FLEET_WORKER=1",
		"SNOWBMA_WORKER_STORE="+storeDir,
		fmt.Sprintf("SNOWBMA_WORKER_POOL=%d", pool),
		fmt.Sprintf("SNOWBMA_WORKER_RIG_MS=%d", rigMS),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &workerProc{cmd: cmd}
	t.Cleanup(func() { p.kill() })

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "WORKER_ADDR="); ok {
				addrCh <- addr
				break
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			t.Fatal("worker process exited before printing its address")
		}
		p.url = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("worker process did not report its address in 30s")
	}
	return p
}

// kill SIGKILLs the worker and reaps it. Idempotent.
func (p *workerProc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill() //nolint:errcheck // already dead is fine
	}
	p.cmd.Wait() //nolint:errcheck // SIGKILL exit status is expected
}

// attackSpec builds a job spec for one victim seed (distinct seeds =
// distinct victims = distinct shards).
func attackSpec(seed int64) service.JobSpec {
	return service.JobSpec{
		Kind:   service.KindAttack,
		Victim: service.VictimSpec{Seed: seed},
	}
}

// TestFleetKillRestartSmoke is the crash drill from the issue: a worker
// joins mid-campaign, gets SIGKILLed while owning jobs, restarts from
// its WAL, and every submitted job still reaches a terminal state
// exactly once — no loss (a job stuck forever), no duplication (a
// second terminal transition for the same fleet job).
func TestFleetKillRestartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const jobs = 12
	rigMS := 150

	dir1 := t.TempDir()
	dir2 := t.TempDir()
	w1 := startWorker(t, dir1, 2, rigMS)

	c := New(Config{
		Workers:        map[string]string{"w1": w1.url},
		HealthInterval: 50 * time.Millisecond,
		LeaseTTL:       300 * time.Millisecond,
		EventBuffer:    8192,
		Logf:           t.Logf,
	})
	defer c.Shutdown(context.Background())

	// First wave: half the campaign, all to w1 (it is the whole fleet).
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs/2; i++ {
		st, err := c.Submit(attackSpec(int64(1000 + i%2)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	waitTerminalCount := func(n int) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			done := 0
			for _, st := range c.List() {
				if terminalState(st.State) {
					done++
				}
			}
			if done >= n {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("fewer than %d jobs terminal after 60s: %+v", n, c.List())
	}

	// Mid-campaign: a second worker joins the fleet...
	waitTerminalCount(2)
	w2 := startWorker(t, dir2, 2, rigMS)
	c.AddWorker("w2", w2.url)

	// ...and the second wave arrives, seeded so some shards provably
	// belong to the newcomer.
	w2seed := func() int64 {
		for s := int64(1); ; s++ {
			c.mu.Lock()
			owner := c.ring.Get(shardKey(attackSpec(s)))
			c.mu.Unlock()
			if owner == "w2" {
				return s
			}
		}
	}()
	for i := jobs / 2; i < jobs; i++ {
		seed := w2seed
		if i%3 == 0 {
			seed = int64(1000 + i%2) // keep w1 busy too
		}
		st, err := c.Submit(attackSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	// Once the newcomer owns live work, SIGKILL it holding that work.
	deadline := time.Now().Add(30 * time.Second)
	for {
		owned := 0
		for _, st := range c.List() {
			if st.Worker == "w2" && !terminalState(st.State) {
				owned++
			}
		}
		if owned > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("w2 never owned a live job; the kill would strand nothing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	w2.kill()
	t.Log("w2 SIGKILLed")

	// Restart it from the same WAL at a new address: its incomplete
	// jobs recover worker-side while the coordinator may have already
	// reassigned them — the duplicate-completion path the coordinator
	// must suppress.
	waitTerminalCount(4)
	w2b := startWorker(t, dir2, 2, rigMS)
	c.AddWorker("w2", w2b.url)

	// Every job terminal.
	for _, id := range ids {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		st, err := c.Wait(ctx, id)
		cancel()
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != service.StateDone {
			t.Fatalf("%s finished %s (%s), want done", id, st.State, st.Error)
		}
	}

	// Exactly once: the bus holds every lifecycle event; each job must
	// have exactly one terminal transition.
	if err := c.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, backlog := c.Bus().SubscribeFrom(0, 1)
	terminals := map[string]int{}
	for _, ev := range backlog {
		if ev.Type == obs.EventJob && terminalState(ev.Name) {
			terminals[ev.Job]++
		}
	}
	for _, id := range ids {
		if terminals[id] != 1 {
			t.Fatalf("job %s has %d terminal transitions, want exactly 1 (%v)", id, terminals[id], terminals)
		}
	}
	if len(terminals) != jobs {
		t.Fatalf("%d jobs produced terminal transitions, want %d", len(terminals), jobs)
	}
	t.Logf("smoke: %d jobs, terminal exactly once each", jobs)
}

// TestFleetLeaseReassignment exercises the lease path without a
// restart: the owning worker dies for good and its jobs move to the
// survivor.
func TestFleetLeaseReassignment(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	w1 := startWorker(t, "", 1, 150)
	w2 := startWorker(t, "", 1, 150)
	c := New(Config{
		Workers:        map[string]string{"w1": w1.url, "w2": w2.url},
		HealthInterval: 50 * time.Millisecond,
		LeaseTTL:       300 * time.Millisecond,
		Logf:           t.Logf,
	})
	defer c.Shutdown(context.Background())

	// Find seeds owned by each worker so the kill provably strands work.
	seedFor := func(name string) int64 {
		for s := int64(1); ; s++ {
			c.mu.Lock()
			owner := c.ring.Get(shardKey(attackSpec(s)))
			c.mu.Unlock()
			if owner == name {
				return s
			}
		}
	}
	s1, s2 := seedFor("w1"), seedFor("w2")
	var ids []string
	for i := 0; i < 3; i++ {
		for _, s := range []int64{s1, s2} {
			st, err := c.Submit(attackSpec(s))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		}
	}
	w1.kill()

	reassigned := 0
	for _, id := range ids {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		st, err := c.Wait(ctx, id)
		cancel()
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != service.StateDone {
			t.Fatalf("%s finished %s (%s), want done", id, st.State, st.Error)
		}
		if st.Worker != "w2" {
			t.Fatalf("%s finished on %q; only w2 is alive", id, st.Worker)
		}
		reassigned += st.Reassigned
	}
	if reassigned == 0 {
		t.Fatal("killing w1 stranded no jobs — the test proved nothing")
	}
}

// BenchmarkFleetThroughput measures jobs/sec through the coordinator at
// 1, 2 and 4 worker processes. Each worker process models one physical
// attack rig (pool width 1, SNOWBMA_WORKER_RIG_MS of device-bound
// programming/capture per job), so adding processes adds rigs — the
// scaling a hardware fleet would see, measurable even on a single-core
// CI box because rig occupancy is wait, not compute. The submitted load
// is one distinct victim per rig, dealt round-robin, so the measurement
// is rig scaling rather than whatever imbalance a fixed seed list
// happens to hash into. One benchmark op is one completed job.
func BenchmarkFleetThroughput(b *testing.B) {
	// Rig occupancy per job. Must dominate the ~50ms of actual attack
	// compute: the compute serializes across worker processes on a
	// single-core box, so too small a rig wait would measure the CPU,
	// not the fleet.
	const rigMS = 900
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", n), func(b *testing.B) {
			workers := map[string]string{}
			for i := 0; i < n; i++ {
				w := startWorker(b, "", 1, rigMS)
				workers[fmt.Sprintf("w%d", i)] = w.url
			}
			c := New(Config{
				Workers:        workers,
				HealthInterval: 50 * time.Millisecond,
				LeaseTTL:       2 * time.Second,
				EventBuffer:    1 << 15,
			})
			defer c.Shutdown(context.Background())

			// One seed per worker, found by probing the ring: arbitrary
			// seeds can hash lopsidedly onto a small fleet, which would
			// measure the imbalance instead of the rig scaling. With the
			// round-robin below each rig gets exactly its share.
			seeds := make([]int64, 0, n)
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("w%d", i)
				for s := int64(1); ; s++ {
					c.mu.Lock()
					owner := c.ring.Get(shardKey(attackSpec(s)))
					c.mu.Unlock()
					if owner == name {
						seeds = append(seeds, s)
						break
					}
					if s > 100000 {
						b.Fatalf("no seed hashes to %s", name)
					}
				}
			}

			// Warm every shard's victim cache so the measured region is
			// programming + attack, not one-time synthesis.
			var warm []string
			for _, s := range seeds {
				st, err := c.Submit(attackSpec(s))
				if err != nil {
					b.Fatal(err)
				}
				warm = append(warm, st.ID)
			}
			for _, id := range warm {
				ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
				if _, err := c.Wait(ctx, id); err != nil {
					cancel()
					b.Fatal(err)
				}
				cancel()
			}

			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			errs := make(chan error, b.N)
			ids := make([]string, b.N)
			for i := 0; i < b.N; i++ {
				st, err := c.Submit(attackSpec(seeds[i%len(seeds)]))
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = st.ID
			}
			for _, id := range ids {
				wg.Add(1)
				go func(id string) {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
					defer cancel()
					st, err := c.Wait(ctx, id)
					if err != nil {
						errs <- err
						return
					}
					if st.State != service.StateDone {
						errs <- fmt.Errorf("%s finished %s: %s", id, st.State, st.Error)
					}
				}(id)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
			elapsed := time.Since(start)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "jobs/sec")
		})
	}
}
