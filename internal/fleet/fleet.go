package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"snowbma/internal/corpus"
	"snowbma/internal/obs"
	"snowbma/internal/service"
)

// Typed coordinator errors.
var (
	// ErrNoWorkers: no live worker could accept the job.
	ErrNoWorkers = errors.New("fleet: no live workers")
	// ErrNotFound: no fleet job with that id.
	ErrNotFound = errors.New("fleet: job not found")
	// ErrNotFinished: the job has not reached a terminal state yet.
	ErrNotFinished = errors.New("fleet: job not finished")
	// ErrShuttingDown: the coordinator no longer accepts jobs.
	ErrShuttingDown = errors.New("fleet: shutting down")
)

// Defaults for the health/lease protocol.
const (
	DefaultHealthInterval = 250 * time.Millisecond
	// DefaultLeaseFactor: a job lease (and a worker's liveness) expires
	// after this many missed health intervals.
	DefaultLeaseFactor = 4
)

// Config parameterizes a Coordinator.
type Config struct {
	// Workers seeds the fleet: name → base URL of a running
	// `snowbma serve` process. More can join later via AddWorker.
	Workers map[string]string
	// HealthInterval is the monitor cadence: health checks, job status
	// polls and lease renewal all run on it (0 = DefaultHealthInterval).
	HealthInterval time.Duration
	// LeaseTTL is how long a worker may go unheard-from before its jobs
	// are reassigned (0 = DefaultLeaseFactor * HealthInterval).
	LeaseTTL time.Duration
	// VNodes is the consistent-hash virtual node count per worker
	// (0 = DefaultVNodes).
	VNodes int
	// RequestTimeout bounds each HTTP call to a worker (0 = 10s).
	RequestTimeout time.Duration
	// EventBuffer bounds the coordinator's event bus ring
	// (0 = obs.DefaultEventBuffer).
	EventBuffer int
	// Tel receives coordinator metrics (nil = fresh handle).
	Tel *obs.Telemetry
	// Logf receives human-readable coordinator logs (nil = silent).
	Logf func(string, ...any)
}

// WorkerInfo is the wire-format view of one fleet member.
type WorkerInfo struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	Live bool   `json:"live"`
	// Jobs counts this worker's outstanding (non-terminal) assignments.
	Jobs int `json:"jobs"`
}

// Status is the wire-format view of one fleet job.
type Status struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Tenant string `json:"tenant,omitempty"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
	// Worker is the current owner; RemoteID the job's id on it.
	Worker   string `json:"worker,omitempty"`
	RemoteID string `json:"remote_id,omitempty"`
	// Shard is the consistent-hash key the job was routed by.
	Shard string `json:"shard,omitempty"`
	// Reassigned counts how many times the job moved to a new worker.
	Reassigned int        `json:"reassigned,omitempty"`
	Submitted  time.Time  `json:"submitted"`
	Finished   *time.Time `json:"finished,omitempty"`
	// Shards counts the child jobs of a composite (fleet-sharded corpus)
	// submission; Parent names the composite a shard belongs to.
	Shards int    `json:"shards,omitempty"`
	Parent string `json:"parent,omitempty"`
}

// worker is one fleet member's coordinator-side state.
type worker struct {
	name     string
	url      string
	live     bool
	lastSeen time.Time
}

// fleetJob is one coordinated job. Mutable fields are guarded by the
// coordinator mutex; done closes exactly once at the terminal state —
// that single close is the fleet's exactly-once accounting point.
type fleetJob struct {
	id    string
	spec  service.JobSpec
	shard string

	state  string
	err    string
	result json.RawMessage

	owner      string // current worker name ("" = awaiting dispatch)
	remoteID   string
	lease      time.Time
	reassigned int

	// composite marks a fleet-sharded corpus parent: it never dispatches
	// itself; it settles when its children (by id) all reach terminal
	// states. Children carry the parent id back.
	composite bool
	children  []string
	parent    string

	submitted time.Time
	finished  time.Time
	done      chan struct{}
}

func (j *fleetJob) terminal() bool {
	switch j.state {
	case service.StateDone, service.StateFailed, service.StateCancelled:
		return true
	}
	return false
}

func (j *fleetJob) status() Status {
	st := Status{
		ID:         j.id,
		Kind:       j.spec.Kind,
		Tenant:     j.spec.Tenant,
		State:      j.state,
		Error:      j.err,
		Worker:     j.owner,
		RemoteID:   j.remoteID,
		Shard:      j.shard,
		Reassigned: j.reassigned,
		Submitted:  j.submitted,
		Shards:     len(j.children),
		Parent:     j.parent,
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// Coordinator shards jobs across worker processes. Create with New,
// stop with Shutdown.
type Coordinator struct {
	cfg  Config
	tel  *obs.Telemetry
	logf func(string, ...any)
	bus  *obs.EventBus
	rpc  *client

	mu      sync.Mutex
	ring    *Ring
	workers map[string]*worker
	jobs    map[string]*fleetJob
	order   []string
	seq     int
	closed  bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New starts a coordinator over the configured workers and begins the
// health/lease monitor. Workers are assumed live until the first check
// says otherwise, so jobs can be submitted immediately.
func New(cfg Config) *Coordinator {
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseFactor * cfg.HealthInterval
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	tel := cfg.Tel
	if tel == nil {
		tel = obs.New()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:     cfg,
		tel:     tel,
		logf:    logf,
		bus:     obs.NewEventBus(cfg.EventBuffer),
		rpc:     newClient(cfg.RequestTimeout),
		ring:    NewRing(cfg.VNodes),
		workers: map[string]*worker{},
		jobs:    map[string]*fleetJob{},
		stop:    make(chan struct{}),
	}
	for name, url := range cfg.Workers {
		c.AddWorker(name, url)
	}
	c.wg.Add(1)
	go c.monitor()
	return c
}

// Bus exposes the coordinator's live event bus.
func (c *Coordinator) Bus() *obs.EventBus { return c.bus }

// Telemetry returns the coordinator metrics handle (for /metrics).
func (c *Coordinator) Telemetry() *obs.Telemetry { return c.tel }

// shardKey derives the consistent-hash key for a spec: jobs that build
// the same victim share a key (so one worker's victim.Cache serves all
// of them); campaign jobs key on their own parameters; a corpus shard
// keys on its first design's fingerprint (the coordinator already
// grouped the shard's indices by that routing — see submitCorpus).
func shardKey(spec service.JobSpec) string {
	if spec.Kind == service.KindCampaign && spec.Campaign != nil {
		return fmt.Sprintf("campaign|%d|%d|%t", spec.Campaign.Seed, spec.Campaign.Runs, spec.Campaign.Chaos)
	}
	if spec.Kind == service.KindCorpus && spec.Corpus != nil {
		cs := spec.Corpus
		if len(cs.Indices) > 0 {
			return corpus.SeededConfig(cs.Seed, cs.Indices[0]).Fingerprint()
		}
		return fmt.Sprintf("corpus|%d|%d", cs.Seed, cs.Designs)
	}
	return spec.Victim.Config().Fingerprint()
}

// AddWorker joins a worker to the fleet. Its ring points are a pure
// function of the name, so a worker that leaves and rejoins owns the
// same shards again.
func (c *Coordinator) AddWorker(name, url string) {
	c.mu.Lock()
	if w, ok := c.workers[name]; ok {
		// Rejoin (possibly at a new address after a restart).
		w.url = url
		w.live = true
		w.lastSeen = time.Now()
		c.mu.Unlock()
		c.publishFleet("worker_up", "", obs.KV("worker", name))
		return
	}
	c.workers[name] = &worker{name: name, url: url, live: true, lastSeen: time.Now()}
	c.ring.Add(name)
	c.tel.Gauge("fleet.workers").Set(float64(len(c.workers)))
	c.mu.Unlock()
	c.publishFleet("worker_up", "", obs.KV("worker", name))
	c.logf("fleet: worker %s joined at %s", name, url)
}

// RemoveWorker departs a worker gracefully: its outstanding jobs are
// released for redispatch to the surviving ring.
func (c *Coordinator) RemoveWorker(name string) {
	c.mu.Lock()
	if _, ok := c.workers[name]; !ok {
		c.mu.Unlock()
		return
	}
	delete(c.workers, name)
	c.ring.Remove(name)
	c.tel.Gauge("fleet.workers").Set(float64(len(c.workers)))
	released := c.releaseJobsLocked(name)
	c.mu.Unlock()
	c.publishFleet("worker_removed", "", obs.KV("worker", name), obs.KV("released", released))
	c.logf("fleet: worker %s removed, %d jobs released", name, released)
}

// releaseJobsLocked unassigns every non-terminal job owned by the named
// worker; the monitor redispatches them. Returns the release count.
func (c *Coordinator) releaseJobsLocked(name string) int {
	n := 0
	for _, j := range c.jobs {
		if j.owner == name && !j.terminal() {
			j.owner = ""
			j.remoteID = ""
			n++
		}
	}
	return n
}

// Workers snapshots the fleet membership.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		info := WorkerInfo{Name: w.name, URL: w.url, Live: w.live}
		for _, j := range c.jobs {
			if j.owner == w.name && !j.terminal() {
				info.Jobs++
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// Submit routes a job to the live worker owning its shard. A rejection
// by the worker (invalid spec, full queue, over quota) propagates to
// the caller unchanged; a dead worker is walked over on the ring. The
// spec is validated coordinator-side first — the mirror API rejects
// exactly what a worker engine would, with the same ErrSpec. A corpus
// submission without explicit indices is fleet-sharded: split across
// the live ring by design fingerprint and merged on completion.
func (c *Coordinator) Submit(spec service.JobSpec) (Status, error) {
	if err := spec.Validate(); err != nil {
		c.tel.Counter("fleet.jobs_rejected").Inc()
		return Status{}, err
	}
	if spec.Kind == service.KindCorpus && len(spec.Corpus.Indices) == 0 {
		return c.submitCorpus(spec)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Status{}, ErrShuttingDown
	}
	c.seq++
	j := &fleetJob{
		id:        fmt.Sprintf("fj-%04d", c.seq),
		spec:      spec,
		shard:     shardKey(spec),
		state:     service.StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	c.mu.Unlock()

	if err := c.dispatch(j); err != nil {
		c.mu.Lock()
		c.seq-- // the id never escaped; reuse it
		c.mu.Unlock()
		c.tel.Counter("fleet.jobs_rejected").Inc()
		return Status{}, err
	}
	c.mu.Lock()
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	st := j.status()
	c.mu.Unlock()
	c.tel.Counter("fleet.jobs_submitted").Inc()
	c.publishFleet("assigned", j.id,
		obs.KV("worker", st.Worker), obs.KV("shard", shortShard(j.shard)))
	c.publishJobState(j.id, service.StateQueued)
	return st, nil
}

// dispatch places the job on the live worker owning its shard, walking
// the ring past workers that are down or unreachable. Worker-side
// rejections (HTTP 4xx/5xx bodies) abort the dispatch — the worker is
// alive and said no — while transport errors mark the worker suspect
// and try the next one.
func (c *Coordinator) dispatch(j *fleetJob) error {
	tried := map[string]bool{}
	for {
		c.mu.Lock()
		name := c.ring.GetLive(j.shard, func(m string) bool {
			return !tried[m] && c.workers[m] != nil && c.workers[m].live
		})
		var url string
		if name != "" {
			url = c.workers[name].url
		}
		c.mu.Unlock()
		if name == "" {
			return ErrNoWorkers
		}
		tried[name] = true
		st, err := c.rpc.submit(url, j.spec)
		if err != nil {
			var wErr *workerError
			if errors.As(err, &wErr) {
				return fmt.Errorf("fleet: worker %s rejected job: %w", name, err)
			}
			// Transport failure: suspect the worker and walk on.
			c.markSuspect(name)
			continue
		}
		c.mu.Lock()
		j.owner = name
		j.remoteID = st.ID
		j.state = st.State
		j.lease = time.Now().Add(c.cfg.LeaseTTL)
		c.mu.Unlock()
		return nil
	}
}

// markSuspect flags a worker dead immediately after a transport failure
// (the monitor confirms or revives it on its next pass).
func (c *Coordinator) markSuspect(name string) {
	c.mu.Lock()
	w, ok := c.workers[name]
	wasLive := ok && w.live
	if ok {
		w.live = false
	}
	c.mu.Unlock()
	if wasLive {
		c.publishFleet("worker_down", "", obs.KV("worker", name), obs.KV("cause", "transport"))
		c.logf("fleet: worker %s unreachable", name)
	}
}

// Get returns one fleet job's status.
func (c *Coordinator) Get(id string) (Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j.status(), nil
}

// List returns every fleet job's status in submission order.
func (c *Coordinator) List() []Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Status, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.jobs[id].status())
	}
	return out
}

// Result returns a finished job's result JSON (nil for failed and
// cancelled jobs) alongside its status.
func (c *Coordinator) Result(id string) (json.RawMessage, Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, Status{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !j.terminal() {
		return nil, j.status(), fmt.Errorf("%w: %s is %s", ErrNotFinished, id, j.state)
	}
	return j.result, j.status(), nil
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (c *Coordinator) Wait(ctx context.Context, id string) (Status, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	select {
	case <-j.done:
		return c.Get(id)
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// monitor is the coordinator's single background loop: worker health,
// job status polling, lease renewal, death detection and redispatch all
// run on one cadence, so there is exactly one writer of liveness state.
func (c *Coordinator) monitor() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		c.checkWorkers()
		c.pollJobs()
	}
}

// checkWorkers probes every member's /healthz. Any HTTP response means
// the process is alive (a draining worker answers 503 but still
// finishes its jobs); only transport failure counts against the lease.
func (c *Coordinator) checkWorkers() {
	c.mu.Lock()
	type probe struct{ name, url string }
	probes := make([]probe, 0, len(c.workers))
	for _, w := range c.workers {
		probes = append(probes, probe{w.name, w.url})
	}
	ttl := c.cfg.LeaseTTL
	c.mu.Unlock()

	for _, p := range probes {
		alive := c.rpc.healthz(p.url)
		now := time.Now()
		c.mu.Lock()
		w, ok := c.workers[p.name]
		if !ok {
			c.mu.Unlock()
			continue
		}
		var event string
		if alive {
			w.lastSeen = now
			if !w.live {
				w.live = true
				event = "worker_up"
			}
		} else if w.live && now.Sub(w.lastSeen) > ttl {
			w.live = false
			event = "worker_down"
		}
		var released int
		if event == "worker_down" {
			released = c.releaseJobsLocked(p.name)
			c.tel.Counter("fleet.worker_deaths").Inc()
		}
		c.mu.Unlock()
		switch event {
		case "worker_up":
			c.publishFleet("worker_up", "", obs.KV("worker", p.name))
			c.logf("fleet: worker %s back", p.name)
		case "worker_down":
			c.publishFleet("worker_down", "",
				obs.KV("worker", p.name), obs.KV("released", released))
			c.logf("fleet: worker %s lease expired, released %d jobs", p.name, released)
		}
	}
}

// pollJobs advances every outstanding job: redispatches the unowned,
// refreshes status (renewing the lease) on the owned, and finalizes the
// terminal — exactly once, whatever duplicate completions a revived
// worker later reports. Status refresh is batched: one job-list request
// per owning worker per tick, so the poll load is O(workers), not
// O(in-flight jobs).
func (c *Coordinator) pollJobs() {
	type ref struct {
		j        *fleetJob
		remoteID string
		lease    time.Time
	}
	c.mu.Lock()
	byWorker := map[string][]ref{}
	urls := map[string]string{}
	unowned := make([]*fleetJob, 0)
	for _, id := range c.order {
		j := c.jobs[id]
		if j.terminal() || j.composite {
			continue // composites never dispatch; settleComposites owns them
		}
		w, ok := c.workers[j.owner]
		if j.owner == "" || !ok {
			unowned = append(unowned, j)
			continue
		}
		byWorker[j.owner] = append(byWorker[j.owner], ref{j, j.remoteID, j.lease})
		urls[j.owner] = w.url
	}
	c.mu.Unlock()

	for _, j := range unowned {
		c.redispatch(j)
	}
	for owner, refs := range byWorker {
		url := urls[owner]
		remote, err := c.rpc.statusAll(url)
		if err != nil {
			// Transport failure: expired leases release their jobs; a
			// still-leased job rides out the glitch until the next tick.
			expired := make([]*fleetJob, 0)
			for _, r := range refs {
				if time.Now().After(r.lease) {
					expired = append(expired, r.j)
				}
			}
			if len(expired) > 0 {
				c.markSuspect(owner)
				for _, j := range expired {
					c.redispatch(j)
				}
			}
			continue
		}
		for _, r := range refs {
			j := r.j
			st, known := remote[r.remoteID]
			if !known {
				// The worker answered but does not have this job: it
				// restarted without (or with a different) durable store.
				// Reclaim and redispatch.
				c.logf("fleet: %s lost by %s, redispatching", j.id, owner)
				c.redispatch(j)
				continue
			}
			c.mu.Lock()
			j.lease = time.Now().Add(c.cfg.LeaseTTL)
			prev := j.state
			if !j.terminal() && !terminalState(st.State) {
				j.state = st.State
			}
			c.mu.Unlock()
			if prev == service.StateQueued && st.State == service.StateRunning {
				c.publishJobState(j.id, service.StateRunning)
			}
			if terminalState(st.State) {
				var result json.RawMessage
				if st.State == service.StateDone {
					if res, _, rerr := c.rpc.result(url, r.remoteID); rerr == nil {
						result = res
					}
				}
				c.finalize(j, st, result)
			}
		}
	}
	c.settleComposites()
}

// redispatch moves an unowned (or lost) job to the next live worker on
// its shard's ring walk.
func (c *Coordinator) redispatch(j *fleetJob) {
	c.mu.Lock()
	if j.terminal() || c.closed {
		c.mu.Unlock()
		return
	}
	hadOwner := j.owner
	j.owner = ""
	j.remoteID = ""
	c.mu.Unlock()
	if err := c.dispatch(j); err != nil {
		// No live worker right now; the next monitor tick retries.
		return
	}
	c.mu.Lock()
	j.reassigned++
	st := j.status()
	c.mu.Unlock()
	c.tel.Counter("fleet.jobs_reassigned").Inc()
	c.publishFleet("reassigned", j.id,
		obs.KV("worker", st.Worker), obs.KV("from", hadOwner))
	c.logf("fleet: %s reassigned %s → %s", j.id, hadOwner, st.Worker)
}

// finalize records a job's terminal state exactly once. A second
// terminal report for the same job (a worker revived after its jobs
// were reassigned, a durable worker replaying history) is suppressed
// and counted, never double-applied.
func (c *Coordinator) finalize(j *fleetJob, st service.Status, result json.RawMessage) {
	c.mu.Lock()
	if j.terminal() {
		c.mu.Unlock()
		c.tel.Counter("fleet.duplicates_suppressed").Inc()
		return
	}
	j.state = st.State
	j.err = st.Error
	j.result = result
	j.finished = time.Now()
	close(j.done)
	c.mu.Unlock()
	c.tel.Counter("fleet.jobs_" + st.State).Inc()
	c.publishJobState(j.id, st.State)
}

func terminalState(state string) bool {
	switch state {
	case service.StateDone, service.StateFailed, service.StateCancelled:
		return true
	}
	return false
}

// shortShard trims a shard key for event payloads (victim fingerprints
// run long; the prefix is plenty to correlate).
func shortShard(s string) string {
	if len(s) > 24 {
		return s[:24]
	}
	return s
}

func (c *Coordinator) publishFleet(name, job string, attrs ...obs.Attr) {
	ev := obs.BusEvent{Type: obs.EventFleet, Name: name, Job: job}
	for _, a := range attrs {
		if ev.Attrs == nil {
			ev.Attrs = map[string]any{}
		}
		ev.Attrs[a.Key] = a.Value
	}
	c.bus.Publish(ev)
}

// publishJobState mirrors the service's job lifecycle events at fleet
// scope, so one SSE subscription sees every job across every worker.
func (c *Coordinator) publishJobState(id, state string) {
	c.bus.Publish(obs.BusEvent{Type: obs.EventJob, Job: id, Name: state})
}

// Shutdown stops the coordinator: no new submissions, the monitor
// stops, the event bus closes. Workers are left running — the fleet
// layer owns routing, not worker lifecycles.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.stopOnce.Do(func() { close(c.stop) })
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	c.bus.Publish(obs.BusEvent{Type: obs.EventService, Name: "shutdown"})
	c.bus.Close()
	return nil
}
