package fleet

import (
	"fmt"
	"math/rand"
	"testing"

	"snowbma/internal/service"
	"snowbma/internal/victim"
)

// TestRingJoinMovesOnlyToJoiner is the consistent-hashing contract that
// keeps victim caches hot: when a worker joins, every key either keeps
// its old owner or moves to the joiner — never to a third worker. And
// the join must take some keys (otherwise the ring isn't balancing).
func TestRingJoinMovesOnlyToJoiner(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		r := NewRing(0)
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("w%d", i))
		}
		keys := make([]string, 500)
		for i := range keys {
			keys[i] = fmt.Sprintf("shard-%d-%d", trial, rng.Int63())
		}
		before := map[string]string{}
		for _, k := range keys {
			before[k] = r.Get(k)
		}
		joiner := fmt.Sprintf("w%d", n)
		r.Add(joiner)
		moved := 0
		for _, k := range keys {
			after := r.Get(k)
			if after != before[k] {
				if after != joiner {
					t.Fatalf("trial %d: key %s moved %s → %s on join of %s (must only move to the joiner)",
						trial, k, before[k], after, joiner)
				}
				moved++
			}
		}
		if moved == 0 {
			t.Fatalf("trial %d: joiner %s took no keys out of %d", trial, joiner, len(keys))
		}
		// Movement should be near the fair share 1/(n+1); allow 3x.
		if fair := len(keys) / (n + 1); moved > 3*fair {
			t.Fatalf("trial %d: join moved %d of %d keys, fair share %d (unbounded movement)",
				trial, moved, len(keys), fair)
		}
	}
}

// TestRingLeaveRestoresMapping: removing a member reassigns only its
// keys, and a rejoin restores the exact prior mapping — a bouncing
// worker reclaims precisely the shards (and warm caches) it had.
func TestRingLeaveRestoresMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r := NewRing(0)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("shard-%d", rng.Int63())
	}
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Get(k)
	}
	r.Remove("w2")
	for _, k := range keys {
		after := r.Get(k)
		if before[k] != "w2" && after != before[k] {
			t.Fatalf("key %s moved %s → %s though its owner never left", k, before[k], after)
		}
		if after == "w2" {
			t.Fatalf("key %s still maps to removed worker", k)
		}
	}
	r.Add("w2")
	for _, k := range keys {
		if got := r.Get(k); got != before[k] {
			t.Fatalf("after rejoin key %s maps to %s, want original %s", k, got, before[k])
		}
	}
}

// TestRingGetLiveWalksOverDead: a dead owner's keys divert to the next
// live member; everyone else's keys stay put.
func TestRingGetLiveDiversion(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	live := func(dead string) func(string) bool {
		return func(m string) bool { return m != dead }
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("shard-%d", i)
		owner := r.Get(k)
		diverted := r.GetLive(k, live(owner))
		if diverted == owner {
			t.Fatalf("key %s still served by dead owner %s", k, owner)
		}
		if other := r.GetLive(k, live("not-a-member")); other != owner {
			t.Fatalf("key %s moved %s → %s though its owner is live", k, owner, other)
		}
	}
	if r.GetLive("anything", func(string) bool { return false }) != "" {
		t.Fatal("all-dead ring must return no owner")
	}
}

// TestIdenticalVictimsSameShard: two JobSpecs that synthesize the same
// victim must produce the same shard key (and thus the same live
// worker), including across the zero-seed/DefaultSeed normalization.
func TestIdenticalVictimsSameShard(t *testing.T) {
	a := service.JobSpec{Kind: service.KindAttack, Victim: service.VictimSpec{Seed: 0}}
	b := service.JobSpec{Kind: service.KindCensus, Victim: service.VictimSpec{Seed: victim.DefaultSeed}}
	if shardKey(a) != shardKey(b) {
		t.Fatalf("identical victims shard differently:\n %s\n %s", shardKey(a), shardKey(b))
	}
	c := service.JobSpec{Kind: service.KindAttack, Victim: service.VictimSpec{Seed: 7}}
	if shardKey(a) == shardKey(c) {
		t.Fatal("different victims share a shard key")
	}
	r := NewRing(0)
	r.Add("w0")
	r.Add("w1")
	r.Add("w2")
	if r.Get(shardKey(a)) != r.Get(shardKey(b)) {
		t.Fatal("identical victims landed on different workers")
	}
}
