// Package fleet shards attack jobs across N worker processes: a
// coordinator routes each job over the workers' existing HTTP/JSON
// surfaces, placing it by consistent hash of the victim design so each
// worker's victim.Cache LRU stays hot, health-checks the workers, holds
// a lease on every outstanding job, and reassigns work whose worker
// dies. Workers are plain `snowbma serve` processes — the fleet layer
// adds no new wire protocol.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per worker on the hash ring.
// More points smooth the key distribution across a small fleet (the
// expected imbalance shrinks with 1/sqrt(vnodes)).
const DefaultVNodes = 64

// Ring is a consistent-hash ring over named workers. Not safe for
// concurrent use; the Coordinator guards it with its own mutex.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]bool
}

type ringPoint struct {
	hash   uint32
	member string
}

// NewRing builds an empty ring (vnodes <= 0 picks DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: map[string]bool{}}
}

func hashKey(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// Add inserts a member's virtual points. Adding an existing member is a
// no-op, so the ring's geometry never depends on join repetition.
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:   hashKey(fmt.Sprintf("%s#%d", member, i)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Stable member order on hash collisions keeps assignment
		// independent of insertion order.
		return r.points[i].member < r.points[j].member
	})
}

// Remove deletes a member and its points.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the member names in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Get returns the member owning the key ("" on an empty ring): the
// first point clockwise from the key's hash.
func (r *Ring) Get(key string) string {
	return r.GetLive(key, nil)
}

// GetLive returns the first member clockwise from the key whose
// liveness predicate passes (nil = all live). Dead members are walked
// over rather than removed, so a worker bouncing back keeps exactly the
// keys it had — only the keys of the dead are diverted, and only while
// it is dead.
func (r *Ring) GetLive(key string, live func(member string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[string]bool{}
	for n := 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		if live == nil || live(p.member) {
			return p.member
		}
	}
	return ""
}
