package fleet

import (
	"encoding/json"
	"fmt"
	"time"

	"snowbma/internal/corpus"
	"snowbma/internal/obs"
	"snowbma/internal/service"
)

// Fleet-sharded corpus census: one corpus submission splits into one
// child job per live worker, each carrying the subset of design indices
// whose fingerprints the ring routes to that worker. Routing and
// execution derive designs from the same (seed, index) pairs
// (corpus.SeededConfig), so a worker's victim cache and scan memo see a
// stable slice of the design population across submissions. The parent
// job is composite: it never dispatches; it settles when every child
// reaches a terminal state, merging the shard reports (corpus.Merge)
// into one fleet-wide report.

// submitCorpus shards a whole-corpus spec across the live ring. Every
// design must be placeable at submission time (ErrNoWorkers otherwise);
// after that, worker churn is survived by the ordinary redispatch
// machinery — a shard follows its first design's fingerprint on the
// ring walk like any job.
func (c *Coordinator) submitCorpus(spec service.JobSpec) (Status, error) {
	cs := *spec.Corpus
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Status{}, ErrShuttingDown
	}
	live := func(m string) bool { return c.workers[m] != nil && c.workers[m].live }
	groups := map[string][]int{}
	var owners []string // first-placement order, for deterministic child ids
	for i := 0; i < cs.Designs; i++ {
		fp := corpus.SeededConfig(cs.Seed, i).Fingerprint()
		name := c.ring.GetLive(fp, live)
		if name == "" {
			c.mu.Unlock()
			c.tel.Counter("fleet.jobs_rejected").Inc()
			return Status{}, ErrNoWorkers
		}
		if _, ok := groups[name]; !ok {
			owners = append(owners, name)
		}
		groups[name] = append(groups[name], i)
	}
	now := time.Now()
	c.seq++
	parent := &fleetJob{
		id:        fmt.Sprintf("fj-%04d", c.seq),
		spec:      spec,
		shard:     shardKey(spec),
		state:     service.StateQueued,
		composite: true,
		submitted: now,
		done:      make(chan struct{}),
	}
	children := make([]*fleetJob, 0, len(owners))
	for _, name := range owners {
		c.seq++
		cspec := spec
		sub := cs
		sub.Indices = groups[name]
		cspec.Corpus = &sub
		ch := &fleetJob{
			id:        fmt.Sprintf("fj-%04d", c.seq),
			spec:      cspec,
			shard:     shardKey(cspec),
			state:     service.StateQueued,
			parent:    parent.id,
			submitted: now,
			done:      make(chan struct{}),
		}
		parent.children = append(parent.children, ch.id)
		children = append(children, ch)
	}
	c.jobs[parent.id] = parent
	c.order = append(c.order, parent.id)
	for _, ch := range children {
		c.jobs[ch.id] = ch
		c.order = append(c.order, ch.id)
	}
	st := parent.status()
	c.mu.Unlock()

	c.tel.Counter("fleet.jobs_submitted").Inc()
	c.publishFleet("corpus_sharded", parent.id,
		obs.KV("designs", cs.Designs), obs.KV("shards", len(children)))
	c.publishJobState(parent.id, service.StateQueued)
	for _, ch := range children {
		// A failed dispatch leaves the child unowned; the monitor
		// redispatches it on the next tick — a sharded corpus tolerates
		// worker churn rather than unwinding the whole submission.
		if err := c.dispatch(ch); err != nil {
			c.logf("fleet: corpus shard %s awaiting dispatch: %v", ch.id, err)
			continue
		}
		c.mu.Lock()
		owner := ch.owner
		c.mu.Unlock()
		c.publishFleet("assigned", ch.id,
			obs.KV("worker", owner), obs.KV("shard", shortShard(ch.shard)))
	}
	return st, nil
}

// settleComposites advances composite parents: a parent runs once any
// child runs, and settles exactly once when all children are terminal —
// done with the merged corpus report if every shard succeeded, the
// first child's failure otherwise. Runs on the monitor cadence.
func (c *Coordinator) settleComposites() {
	type settled struct {
		j       *fleetJob
		st      service.Status
		results []json.RawMessage
	}
	var promote []string
	var finished []settled
	c.mu.Lock()
	for _, id := range c.order {
		j := c.jobs[id]
		if !j.composite || j.terminal() {
			continue
		}
		allTerminal := true
		anyRunning := false
		st := service.Status{State: service.StateDone}
		var results []json.RawMessage
		for _, cid := range j.children {
			ch := c.jobs[cid]
			if !ch.terminal() {
				allTerminal = false
				if ch.state != service.StateQueued {
					anyRunning = true
				}
				continue
			}
			if ch.state != service.StateDone && st.State == service.StateDone {
				st.State = ch.state
				st.Error = ch.err
				if st.Error == "" {
					st.Error = fmt.Sprintf("corpus shard %s %s", cid, ch.state)
				}
			}
			results = append(results, ch.result)
		}
		if !allTerminal {
			if anyRunning && j.state == service.StateQueued {
				j.state = service.StateRunning
				promote = append(promote, j.id)
			}
			continue
		}
		finished = append(finished, settled{j, st, results})
	}
	c.mu.Unlock()

	for _, id := range promote {
		c.publishJobState(id, service.StateRunning)
	}
	for _, s := range finished {
		var merged json.RawMessage
		if s.st.State == service.StateDone {
			rep, err := mergeShardReports(s.results)
			if err != nil {
				s.st.State = service.StateFailed
				s.st.Error = fmt.Sprintf("merging corpus shards: %v", err)
			} else {
				merged, _ = json.Marshal(rep)
				c.publishFleet("corpus_merged", s.j.id,
					obs.KV("designs", rep.Designs), obs.KV("exposed", rep.Exposed),
					obs.KV("shards", len(s.results)))
			}
		}
		c.finalize(s.j, s.st, merged)
	}
}

// mergeShardReports decodes each shard's corpus report and merges them.
func mergeShardReports(raw []json.RawMessage) (*corpus.Report, error) {
	reps := make([]*corpus.Report, 0, len(raw))
	for i, r := range raw {
		if len(r) == 0 {
			return nil, fmt.Errorf("shard %d returned no report", i)
		}
		var rep corpus.Report
		if err := json.Unmarshal(r, &rep); err != nil {
			return nil, fmt.Errorf("shard %d report: %w", i, err)
		}
		reps = append(reps, &rep)
	}
	return corpus.Merge(reps...), nil
}
