package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"snowbma/internal/obs"
	"snowbma/internal/service"
)

// Handler returns the coordinator's HTTP API — deliberately shaped like
// the worker API so clients move between a single serve process and a
// fleet by changing the base URL:
//
//	POST   /jobs             submit a JobSpec → 202 Status
//	                         (worker rejections pass through: 400/429;
//	                         503 no live workers or shutting down)
//	GET    /jobs             list fleet job statuses
//	GET    /jobs/{id}        one fleet job's status
//	GET    /jobs/{id}/result terminal job's result (409 while running)
//	GET    /workers          fleet membership + per-worker assignments
//	POST   /workers          join a worker {"name": ..., "url": ...}
//	DELETE /workers/{name}   depart a worker (its jobs are redispatched)
//	GET    /events           SSE stream of fleet + job lifecycle events
//	GET    /healthz          liveness + live/total worker counts
//	GET    /metrics          Prometheus text format
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", c.handleSubmit)
	mux.HandleFunc("GET /jobs", c.handleList)
	mux.HandleFunc("GET /jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", c.handleResult)
	mux.HandleFunc("GET /workers", c.handleWorkers)
	mux.HandleFunc("POST /workers", c.handleAddWorker)
	mux.HandleFunc("DELETE /workers/{name}", c.handleRemoveWorker)
	mux.HandleFunc("GET /events", c.handleEvents)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

type errorBody struct {
	Error string `json:"error"`
}

// httpError maps coordinator errors onto status codes. A workerError
// passes its original status through, so a tenant over quota sees the
// same 429 from the fleet as from a single worker; a spec rejected by
// coordinator-side validation carries the same typed ErrSpec — and so
// the same 400 envelope — the worker engine would have produced.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var wErr *workerError
	switch {
	case errors.As(err, &wErr):
		code = wErr.code
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
	case errors.Is(err, service.ErrSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNoWorkers), errors.Is(err, ErrShuttingDown):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrNotFinished):
		code = http.StatusConflict
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, fmt.Errorf("%w: %v", service.ErrSpec, err))
		return
	}
	st, err := c.Submit(spec)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (c *Coordinator) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []Status `json:"jobs"`
	}{Jobs: c.List()})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := c.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	result, st, err := c.Result(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status Status          `json:"status"`
		Result json.RawMessage `json:"result,omitempty"`
	}{Status: st, Result: result})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Workers []WorkerInfo `json:"workers"`
	}{Workers: c.Workers()})
}

func (c *Coordinator) handleAddWorker(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Name string `json:"name"`
		URL  string `json:"url"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Name == "" || body.URL == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "want {\"name\": ..., \"url\": ...}"})
		return
	}
	c.AddWorker(body.Name, body.URL)
	writeJSON(w, http.StatusOK, struct {
		Workers []WorkerInfo `json:"workers"`
	}{Workers: c.Workers()})
}

func (c *Coordinator) handleRemoveWorker(w http.ResponseWriter, r *http.Request) {
	c.RemoveWorker(r.PathValue("name"))
	writeJSON(w, http.StatusOK, struct {
		Workers []WorkerInfo `json:"workers"`
	}{Workers: c.Workers()})
}

func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	c.tel.Counter("fleet.sse_streams").Inc()
	obs.ServeSSE(w, r, c.bus, obs.SSEOptions{After: obs.SSEFromNow}) //nolint:errcheck
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	workers := c.Workers()
	live := 0
	for _, wi := range workers {
		if wi.Live {
			live++
		}
	}
	c.mu.Lock()
	jobs := len(c.jobs)
	pending := 0
	for _, j := range c.jobs {
		if !j.terminal() {
			pending++
		}
	}
	closed := c.closed
	c.mu.Unlock()
	body := struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
		Live    int    `json:"live"`
		Jobs    int    `json:"jobs"`
		Pending int    `json:"pending"`
	}{Status: "ok", Workers: len(workers), Live: live, Jobs: jobs, Pending: pending}
	code := http.StatusOK
	switch {
	case closed:
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	case live == 0:
		body.Status = "no live workers"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteMetricsText(w, c.tel.Metrics, obs.Default()) //nolint:errcheck
}
