package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"snowbma/internal/service"
)

// errRemoteNotFound: the worker answered but does not know the job —
// it restarted without (or with a different) durable store. The
// coordinator reclaims and redispatches on this, distinct from a
// transport failure (which counts against the worker's lease instead).
var errRemoteNotFound = errors.New("fleet: job unknown to worker")

// workerError is a worker-side HTTP rejection: the worker is alive and
// said no (invalid spec, full queue, tenant over quota). Dispatch
// propagates it to the submitter instead of walking the ring.
type workerError struct {
	code int
	msg  string
}

func (e *workerError) Error() string {
	return fmt.Sprintf("worker HTTP %d: %s", e.code, e.msg)
}

// client is the coordinator's HTTP client over the workers' existing
// service API — no fleet-specific wire protocol.
type client struct {
	hc *http.Client
}

func newClient(timeout time.Duration) *client {
	return &client{hc: &http.Client{Timeout: timeout}}
}

// decodeError extracts the service API's {"error": ...} body.
func decodeError(resp *http.Response) *workerError {
	var body struct {
		Error string `json:"error"`
	}
	json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body) //nolint:errcheck
	return &workerError{code: resp.StatusCode, msg: body.Error}
}

// submit POSTs a spec to the worker; a non-202 answer is a workerError.
func (c *client) submit(baseURL string, spec service.JobSpec) (service.Status, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return service.Status{}, err
	}
	resp, err := c.hc.Post(baseURL+"/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		return service.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return service.Status{}, decodeError(resp)
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.Status{}, err
	}
	return st, nil
}

// statusAll fetches every job status the worker holds in one request,
// keyed by the worker's job id. One list per worker per monitor tick
// replaces a GET per in-flight job.
func (c *client) statusAll(baseURL string) (map[string]service.Status, error) {
	resp, err := c.hc.Get(baseURL + "/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var body struct {
		Jobs []service.Status `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	out := make(map[string]service.Status, len(body.Jobs))
	for _, st := range body.Jobs {
		out[st.ID] = st
	}
	return out, nil
}

// result fetches a terminal job's result JSON alongside its status.
func (c *client) result(baseURL, id string) (json.RawMessage, service.Status, error) {
	resp, err := c.hc.Get(baseURL + "/jobs/" + id + "/result")
	if err != nil {
		return nil, service.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, service.Status{}, errRemoteNotFound
	}
	if resp.StatusCode != http.StatusOK {
		return nil, service.Status{}, decodeError(resp)
	}
	var body struct {
		Status service.Status  `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, service.Status{}, err
	}
	return body.Result, body.Status, nil
}

// healthz reports process liveness: any HTTP answer counts (a draining
// worker returns 503 but still finishes its jobs); only transport
// failure is death.
func (c *client) healthz(baseURL string) bool {
	resp, err := c.hc.Get(baseURL + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12)) //nolint:errcheck
	resp.Body.Close()
	return true
}
