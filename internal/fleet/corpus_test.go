package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"snowbma/internal/corpus"
	"snowbma/internal/service"
)

// TestFleetCorpusSharding submits one whole-corpus census to a
// two-worker fleet and checks the composite lifecycle end to end: the
// submission splits into per-worker index shards by design fingerprint,
// the parent settles when every shard finishes, and the merged report
// equals a single-engine census over the same seeded corpus.
func TestFleetCorpusSharding(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const designs = 6
	const seed = int64(5)

	w1 := startWorker(t, "", 2, 0)
	w2 := startWorker(t, "", 2, 0)
	c := New(Config{
		Workers:        map[string]string{"w1": w1.url, "w2": w2.url},
		HealthInterval: 50 * time.Millisecond,
		EventBuffer:    8192,
		Logf:           t.Logf,
	})
	defer c.Shutdown(context.Background())

	st, err := c.Submit(service.JobSpec{
		Kind:   service.KindCorpus,
		Corpus: &service.CorpusSpec{Designs: designs, Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards < 1 {
		t.Fatalf("corpus submission produced %d shards, want >= 1", st.Shards)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone {
		t.Fatalf("composite corpus job ended %s (%s)", final.State, final.Error)
	}

	// Every shard must belong to the parent and be terminal-done.
	shards := 0
	for _, js := range c.List() {
		if js.Parent == st.ID {
			shards++
			if js.State != service.StateDone {
				t.Errorf("shard %s ended %s (%s)", js.ID, js.State, js.Error)
			}
			if js.Kind != service.KindCorpus {
				t.Errorf("shard %s has kind %s", js.ID, js.Kind)
			}
		}
	}
	if shards != st.Shards {
		t.Errorf("listed %d shards, submission reported %d", shards, st.Shards)
	}

	raw, _, err := c.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var merged corpus.Report
	if err := json.Unmarshal(raw, &merged); err != nil {
		t.Fatalf("merged corpus report: %v", err)
	}

	// Ground truth: one engine, same corpus.
	cen, err := corpus.New(corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := cen.Run(context.Background(),
		corpus.NewSeeded(corpus.SeedOptions{Designs: designs, Seed: seed}))
	if err != nil {
		t.Fatal(err)
	}
	if merged.Designs != whole.Designs || merged.Exposed != whole.Exposed ||
		merged.Covered != whole.Covered || merged.Protected != whole.Protected ||
		merged.Matches != whole.Matches || merged.DualHits != whole.DualHits ||
		merged.BytesTotal != whole.BytesTotal || merged.Frames != whole.Frames {
		t.Errorf("fleet-merged headline diverges from single-engine census:\nfleet: %+v\nlocal: %+v",
			merged, whole)
	}
	byID := map[string]corpus.DesignResult{}
	for _, dr := range whole.Results {
		byID[dr.ID] = dr
	}
	for _, dr := range merged.Results {
		w, ok := byID[dr.ID]
		if !ok {
			t.Fatalf("fleet report holds unknown design %.24s", dr.ID)
		}
		// Dedup accounting is per-shard; everything else must agree.
		dr.FramesScanned, w.FramesScanned = 0, 0
		dr.DedupHits, w.DedupHits = 0, 0
		if !reflect.DeepEqual(dr, w) {
			t.Errorf("design %.24s: fleet %+v != local %+v", dr.ID, dr, w)
		}
	}
}

// TestErrorShapeParity pins the unified HTTP error envelope: the same
// invalid submission gets byte-identical {"error": ...} bodies and
// status codes from a worker engine's API and the fleet coordinator's
// mirror API — decode failures and every kind's spec validation alike.
func TestErrorShapeParity(t *testing.T) {
	eng, err := service.Open(service.Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Shutdown(context.Background())
	serve := httptest.NewServer(eng.Handler())
	defer serve.Close()

	c := New(Config{
		Workers:        map[string]string{"w1": serve.URL},
		HealthInterval: time.Hour, // no monitor noise during the table
	})
	defer c.Shutdown(context.Background())
	mirror := httptest.NewServer(c.Handler())
	defer mirror.Close()

	post := func(t *testing.T, base, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	cases := []struct {
		name string
		body string
	}{
		{"malformed JSON", `{"kind":`},
		{"unknown field", `{"kind":"attack","surprise":1}`},
		{"unknown kind", `{"kind":"bogus"}`},
		{"findlut without expr", `{"kind":"findlut"}`},
		{"corpus without spec", `{"kind":"corpus"}`},
		{"corpus without designs", `{"kind":"corpus","corpus":{"designs":0}}`},
		{"corpus negative index", `{"kind":"corpus","corpus":{"designs":4,"indices":[-1]}}`},
		{"corpus index out of range", `{"kind":"corpus","corpus":{"designs":4,"indices":[9]}}`},
		{"invalid lanes", `{"kind":"attack","lanes":-5}`},
		{"campaign without runs", `{"kind":"campaign","campaign":{"runs":0}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sCode, sBody := post(t, serve.URL, tc.body)
			fCode, fBody := post(t, mirror.URL, tc.body)
			if sCode != http.StatusBadRequest {
				t.Fatalf("serve answered %d, want 400; body: %s", sCode, sBody)
			}
			if fCode != sCode {
				t.Errorf("status diverges: serve %d, fleet %d", sCode, fCode)
			}
			if fBody != sBody {
				t.Errorf("error envelope diverges:\nserve: %s\nfleet: %s", sBody, fBody)
			}
			var env struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal([]byte(sBody), &env); err != nil || env.Error == "" {
				t.Errorf("serve body is not the {\"error\": ...} envelope: %s", sBody)
			}
		})
	}
}
