package bitstream

import "snowbma/internal/boolfn"

// ExtractedLUT is one occupied LUT slot recovered from the configuration
// frames — the output of the "extract LUT logics from a downloaded
// bitstream" capability (Jeong et al., the paper's reference [14]) that
// FINDLUT builds on.
type ExtractedLUT struct {
	Loc  Loc
	Init boolfn.TT
	// Dual is a heuristic flag: the two INIT halves differ, so the slot
	// may be a fractured (dual-output) LUT.
	Dual bool
}

// ExtractLUTs decodes every LUT slot of the CLB frame region of a full
// bitstream image and returns the non-empty ones. Slice type is derived
// from the public column layout. It is a reverse-engineering primitive:
// no design description is consulted.
func ExtractLUTs(img []byte) ([]ExtractedLUT, error) {
	p, err := ParsePackets(img)
	if err != nil {
		return nil, err
	}
	fdri := p.FDRI(img)
	regions, err := ParseRegions(fdri)
	if err != nil {
		return nil, err
	}
	clb := fdri[regions.CLBOff : regions.CLBOff+regions.CLBLen]
	frames := len(clb) / FrameBytes
	var out []ExtractedLUT
	for f := 0; f < frames; f++ {
		st := FrameSliceType(f)
		for s := 0; s < SlotsPerFrame; s++ {
			loc := Loc{Frame: f, Slot: s, Type: st}
			tt, err := ReadLUT(clb, loc)
			if err != nil {
				return nil, err
			}
			if tt == boolfn.Const0 {
				continue // uninitialized fabric
			}
			d := boolfn.SplitDual(tt)
			out = append(out, ExtractedLUT{Loc: loc, Init: tt, Dual: d.O5 != d.O6})
		}
	}
	return out, nil
}

// Histogram buckets extracted LUTs by P-equivalence class and returns
// class representative → count, a useful reverse-engineering census
// (e.g. "how many XOR2 LUTs does this design have?").
func Histogram(luts []ExtractedLUT) map[boolfn.TT]int {
	out := make(map[boolfn.TT]int)
	for _, l := range luts {
		out[boolfn.PClassCanon(l.Init)]++
	}
	return out
}
