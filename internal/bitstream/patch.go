package bitstream

import (
	"bytes"
	"errors"
	"fmt"
)

// The candidate images the attack evaluates differ from the base image
// only in a handful of LUT truth-table bytes — a frame-level delta, the
// same granularity real partial reconfiguration uses (FAR + single-frame
// FDRI writes). This file computes that delta so the evaluation fast
// path can apply candidate modifications to a live configuration instead
// of re-parsing the whole image per guess.

// FramePatch replaces one FDRI frame. Frame is the frame index relative
// to the start of the FDRI region (frame 0 is the header frame).
type FramePatch struct {
	Frame int
	Data  []byte // exactly FrameBytes
}

// PatchSet is the frame-level delta of one candidate image against the
// base image. An empty set denotes the unmodified base configuration.
type PatchSet []FramePatch

// Frames returns the number of patched frames.
func (ps PatchSet) Frames() int { return len(ps) }

// DiffFrames computes the frame-level delta between a base image and a
// modified image of identical length and packet structure. Any
// difference outside the FDRI frame region (packet headers, register
// writes, the stored CRC) is an error: such a candidate cannot be
// expressed as a partial reconfiguration and must take the full-image
// path.
func DiffFrames(base, mod []byte) (PatchSet, error) {
	p, err := ParsePackets(base)
	if err != nil {
		return nil, err
	}
	return p.DiffFrames(base, mod)
}

// DiffFrames is the pre-parsed variant of the package-level DiffFrames:
// p must describe base. Using it amortizes the packet walk over many
// candidate diffs against the same base.
func (p *Parsed) DiffFrames(base, mod []byte) (PatchSet, error) {
	if len(base) != len(mod) {
		return nil, fmt.Errorf("bitstream: diff length mismatch: base %d bytes, mod %d", len(base), len(mod))
	}
	end := p.FDRIOffset + p.FDRILen
	if !bytes.Equal(base[:p.FDRIOffset], mod[:p.FDRIOffset]) || !bytes.Equal(base[end:], mod[end:]) {
		return nil, errors.New("bitstream: images differ outside the FDRI region")
	}
	fb, mb := p.FDRI(base), p.FDRI(mod)
	var ps PatchSet
	for off := 0; off < len(fb); off += FrameBytes {
		hi := off + FrameBytes
		if hi > len(fb) {
			hi = len(fb)
		}
		if !bytes.Equal(fb[off:hi], mb[off:hi]) {
			ps = append(ps, FramePatch{
				Frame: off / FrameBytes,
				Data:  append([]byte(nil), mb[off:hi]...),
			})
		}
	}
	return ps, nil
}
