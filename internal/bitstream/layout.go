package bitstream

import (
	"fmt"

	"snowbma/internal/boolfn"
)

// Frame geometry of the 7-series configuration plane.
const (
	// WordsPerFrame is the 7-series frame length (Section V-A).
	WordsPerFrame = 101
	// FrameBytes is the frame size in bytes.
	FrameBytes = WordsPerFrame * 4
	// SubVectorOffset is the paper's d: the distance in bytes between
	// consecutive 16-bit sub-vectors of one LUT.
	SubVectorOffset = 101
	// SubVectors is the paper's r: a 64-bit LUT INIT is split into four
	// 16-bit sub-vectors.
	SubVectors = 4
	// SubVectorBytes is the byte width of one sub-vector.
	SubVectorBytes = 2
	// SlotsPerFrame is how many LUTs one frame hosts: sub-vector q of
	// slot s lives at byte q·101 + 2·s of the frame, leaving bytes
	// 98..100 of each quarter as interconnect configuration.
	SlotsPerFrame = 49
)

// SliceType distinguishes the two slice flavours, which store their LUT
// sub-vectors in different orders (Section V-A).
type SliceType uint8

const (
	// SliceL stores B1, B2, B3, B4.
	SliceL SliceType = iota
	// SliceM stores B4, B3, B1, B2.
	SliceM
)

func (s SliceType) String() string {
	if s == SliceM {
		return "SLICEM"
	}
	return "SLICEL"
}

// subVectorOrder[t][q] gives which quarter of B is stored q·101 bytes
// after the LUT's base offset for slice type t.
var subVectorOrder = [2][4]int{
	SliceL: {0, 1, 2, 3},
	SliceM: {3, 2, 0, 1},
}

// SubVectorOrder exposes the storage order for a slice type (1-based
// quarter numbers B1..B4 are the paper's naming; we use 0-based).
func SubVectorOrder(t SliceType) [4]int { return subVectorOrder[t] }

// EncodeLUT serializes a LUT INIT into its four 2-byte sub-vectors in
// storage order for the given slice type. Sub-vector bytes are little
// endian: byte 0 carries B[16q+0..7].
func EncodeLUT(init boolfn.TT, t SliceType) [SubVectors][SubVectorBytes]byte {
	b := Xi(init)
	var out [SubVectors][SubVectorBytes]byte
	for q := 0; q < SubVectors; q++ {
		quarter := subVectorOrder[t][q]
		v := uint16(b >> (16 * uint(quarter)))
		out[q][0] = byte(v)
		out[q][1] = byte(v >> 8)
	}
	return out
}

// DecodeLUT reconstructs a LUT INIT from four sub-vectors read in
// storage order for the given slice type.
func DecodeLUT(sub [SubVectors][SubVectorBytes]byte, t SliceType) boolfn.TT {
	var b uint64
	for q := 0; q < SubVectors; q++ {
		quarter := subVectorOrder[t][q]
		v := uint64(sub[q][0]) | uint64(sub[q][1])<<8
		b |= v << (16 * uint(quarter))
	}
	return XiInv(b)
}

// Loc places a LUT in the configuration plane.
type Loc struct {
	Frame int
	Slot  int
	Type  SliceType
}

// baseOffset returns the byte offset of the LUT's first sub-vector
// within the frame region.
func (l Loc) baseOffset() int {
	return l.Frame*FrameBytes + l.Slot*SubVectorBytes
}

// WriteLUT stores a LUT INIT into a frame region at the given location.
func WriteLUT(frames []byte, l Loc, init boolfn.TT) error {
	if l.Frame < 0 || l.Slot < 0 || l.Slot >= SlotsPerFrame {
		return fmt.Errorf("bitstream: location frame %d slot %d out of range", l.Frame, l.Slot)
	}
	base := l.baseOffset()
	if base+3*SubVectorOffset+SubVectorBytes > len(frames) {
		return fmt.Errorf("bitstream: LUT at frame %d slot %d exceeds region", l.Frame, l.Slot)
	}
	sub := EncodeLUT(init, l.Type)
	for q := 0; q < SubVectors; q++ {
		copy(frames[base+q*SubVectorOffset:], sub[q][:])
	}
	return nil
}

// ReadLUT extracts the LUT INIT at the given location of a frame region.
func ReadLUT(frames []byte, l Loc) (boolfn.TT, error) {
	if l.Frame < 0 || l.Slot < 0 || l.Slot >= SlotsPerFrame {
		return 0, fmt.Errorf("bitstream: location frame %d slot %d out of range", l.Frame, l.Slot)
	}
	base := l.baseOffset()
	if base+3*SubVectorOffset+SubVectorBytes > len(frames) {
		return 0, fmt.Errorf("bitstream: LUT at frame %d slot %d exceeds region", l.Frame, l.Slot)
	}
	var sub [SubVectors][SubVectorBytes]byte
	for q := 0; q < SubVectors; q++ {
		copy(sub[q][:], frames[base+q*SubVectorOffset:])
	}
	return DecodeLUT(sub, l.Type), nil
}

// FrameSliceType assigns slice flavours to frames: every fourth frame
// column is a SLICEM column, roughly the ratio of 7-series fabric.
func FrameSliceType(frame int) SliceType {
	if frame%4 == 2 {
		return SliceM
	}
	return SliceL
}
