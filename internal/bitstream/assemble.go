package bitstream

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"snowbma/internal/mapper"
	"snowbma/internal/netlist"
)

// AssembleOptions tunes the physical image.
type AssembleOptions struct {
	// PadFrames appends empty CLB frames, approximating the unused
	// fabric of a real device (and sizing FINDLUT benchmarks).
	PadFrames int
	// Seed drives the deterministic placement shuffle.
	Seed int64
}

// Assemble serializes a technology-mapped design into a complete
// configuration bitstream: placed LUT truth tables in CLB frames, the
// design description, BRAM content, all wrapped in 7-series packets with
// a valid configuration CRC.
func Assemble(n *netlist.Netlist, phys []mapper.PhysLUT, opt AssembleOptions) ([]byte, error) {
	rng := rand.New(rand.NewSource(opt.Seed))

	// Placement: scatter LUTs over enough frames to leave ~30% slots
	// free, mimicking a partially used fabric.
	nLUTs := len(phys)
	clbFrames := (nLUTs*10/7)/SlotsPerFrame + 1 + opt.PadFrames
	type slotKey struct{ frame, slot int }
	used := map[slotKey]bool{}
	locs := make([]Loc, nLUTs)
	for i := range phys {
		for {
			f, s := rng.Intn(clbFrames), rng.Intn(SlotsPerFrame)
			if !used[slotKey{f, s}] {
				used[slotKey{f, s}] = true
				locs[i] = Loc{Frame: f, Slot: s, Type: FrameSliceType(f)}
				break
			}
		}
	}

	// Description records.
	desc := &Description{NumNets: uint32(n.NumNodes()), CLBFrames: clbFrames}
	for _, pi := range n.PIs {
		desc.Ports = append(desc.Ports, Port{Name: n.Nodes[pi].Name, Dir: In, Net: uint32(pi)})
	}
	for _, name := range n.OutputNames() {
		desc.Ports = append(desc.Ports, Port{Name: name, Dir: Out, Net: uint32(n.POs[name])})
	}
	for _, ff := range n.FFs {
		desc.FFs = append(desc.FFs, FFRec{Init: ff.Init, Q: uint32(ff.Q), D: uint32(ff.D)})
	}
	bramBytes := 0
	for i := range n.BRAMs {
		r := &n.BRAMs[i]
		rec := BRAMRec{DataBits: r.DataBits, ContentOff: bramBytes}
		for _, a := range r.Addr {
			rec.Addr = append(rec.Addr, uint32(a))
		}
		for _, o := range r.Out {
			rec.Out = append(rec.Out, uint32(o))
		}
		desc.BRAMs = append(desc.BRAMs, rec)
		bramBytes += 8 * len(r.Content)
	}
	for i := range n.Adders {
		a := &n.Adders[i]
		rec := AdderRec{}
		for _, x := range a.A {
			rec.A = append(rec.A, uint32(x))
		}
		for _, x := range a.B {
			rec.B = append(rec.B, uint32(x))
		}
		for _, x := range a.Sum {
			rec.Sum = append(rec.Sum, uint32(x))
		}
		desc.Adders = append(desc.Adders, rec)
	}
	for i, p := range phys {
		rec := LUTRec{Loc: locs[i], O6: uint32(p.O6Root), O5: NoNet}
		if p.Dual {
			rec.O5 = uint32(p.O5Root)
		}
		for _, in := range p.Inputs {
			rec.Inputs = append(rec.Inputs, uint32(in))
		}
		desc.LUTs = append(desc.LUTs, rec)
	}

	eval, err := evalOrder(n, desc)
	if err != nil {
		return nil, err
	}
	desc.Eval = eval
	desc.BRAMFrames = (bramBytes + FrameBytes - 1) / FrameBytes

	descBytes := MarshalDescription(desc)
	descFrames := (len(descBytes) + FrameBytes - 1) / FrameBytes

	totalFrames := 1 + clbFrames + descFrames + desc.BRAMFrames
	fdri := make([]byte, totalFrames*FrameBytes)
	writeFDRIHeaderFrame(fdri[:FrameBytes], clbFrames, descFrames, desc.BRAMFrames, len(descBytes))
	clb := fdri[FrameBytes : FrameBytes*(1+clbFrames)]
	for i, p := range phys {
		if err := WriteLUT(clb, locs[i], p.Init); err != nil {
			return nil, err
		}
	}
	copy(fdri[FrameBytes*(1+clbFrames):], descBytes)
	bram := fdri[FrameBytes*(1+clbFrames+descFrames):]
	off := 0
	for i := range n.BRAMs {
		for _, w := range n.BRAMs[i].Content {
			binary.BigEndian.PutUint64(bram[off:], w)
			off += 8
		}
	}

	words := make([]uint32, len(fdri)/4)
	for i := range words {
		words[i] = binary.BigEndian.Uint32(fdri[4*i:])
	}
	return buildPackets(words), nil
}

// evalOrder topologically sorts the combinational elements. Each item
// produces one or more nets; an item consuming a net must come after the
// item producing it. Flip-flop outputs and primary inputs are sources.
func evalOrder(n *netlist.Netlist, d *Description) ([]EvalItem, error) {
	type node struct {
		item    EvalItem
		inputs  []uint32
		outputs []uint32
		pending int
		readers []int
	}
	var nodes []node
	for i, l := range d.LUTs {
		nd := node{item: EvalItem{Kind: EvalLUT, Index: uint32(i)}, inputs: l.Inputs, outputs: []uint32{l.O6}}
		if l.O5 != NoNet {
			nd.outputs = append(nd.outputs, l.O5)
		}
		nodes = append(nodes, nd)
	}
	for i, b := range d.BRAMs {
		nodes = append(nodes, node{item: EvalItem{Kind: EvalBRAM, Index: uint32(i)}, inputs: b.Addr, outputs: b.Out})
	}
	for i, a := range d.Adders {
		nd := node{item: EvalItem{Kind: EvalAdder, Index: uint32(i)}, outputs: a.Sum}
		nd.inputs = append(append([]uint32{}, a.A...), a.B...)
		nodes = append(nodes, nd)
	}
	producer := map[uint32]int{}
	for i := range nodes {
		for _, o := range nodes[i].outputs {
			producer[o] = i
		}
	}
	for i := range nodes {
		seen := map[int]bool{}
		for _, in := range nodes[i].inputs {
			if p, ok := producer[in]; ok && p != i && !seen[p] {
				seen[p] = true
				nodes[i].pending++
				nodes[p].readers = append(nodes[p].readers, i)
			}
		}
	}
	var ready []int
	for i := range nodes {
		if nodes[i].pending == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	var order []EvalItem
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, nodes[i].item)
		for _, r := range nodes[i].readers {
			nodes[r].pending--
			if nodes[r].pending == 0 {
				ready = append(ready, r)
			}
		}
	}
	if len(order) != len(nodes) {
		return nil, fmt.Errorf("bitstream: combinational cycle in design (%d of %d items ordered)",
			len(order), len(nodes))
	}
	return order, nil
}
