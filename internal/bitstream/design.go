package bitstream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// The interconnect and block-RAM configuration of a real bitstream is a
// proprietary encoding the paper's attack never parses — it only touches
// LUT truth-table bytes. Our stand-in is an explicit design description
// serialized into dedicated frames after the CLB region: ports, flip-
// flops, BRAM wiring, carry chains, LUT placements and an evaluation
// order. The device simulator configures itself from it; the attack code
// is forbidden (and has no need) to look at it.

// NoNet marks an absent net reference (e.g. the O5 output of a
// single-output LUT).
const NoNet = ^uint32(0)

// PortDir distinguishes input and output ports.
type PortDir uint8

const (
	// In is a primary input pin.
	In PortDir = iota
	// Out is a primary output pin.
	Out
)

// Port maps a pin name to the net it drives (In) or samples (Out).
type Port struct {
	Name string
	Dir  PortDir
	Net  uint32
}

// FFRec is one flip-flop: reset value, the net its Q output drives and
// the net feeding its D input.
type FFRec struct {
	Init bool
	Q    uint32
	D    uint32
}

// BRAMRec is one block RAM used as a combinational ROM. Content lives in
// the BRAM frame region at ContentOff, 8 bytes per entry, 1<<len(Addr)
// entries.
type BRAMRec struct {
	Addr       []uint32
	Out        []uint32
	DataBits   int
	ContentOff int
}

// AdderRec is one carry chain computing Sum = A + B mod 2^w.
type AdderRec struct {
	A, B, Sum []uint32
}

// LUTRec is one physical LUT: its location in the CLB frames (where its
// truth table is stored — the part the attack modifies), its routed
// inputs and its output nets.
type LUTRec struct {
	Loc    Loc
	Inputs []uint32
	O6     uint32
	O5     uint32 // NoNet when single-output
}

// EvalKind tags entries of the evaluation order.
type EvalKind uint8

const (
	// EvalLUT evaluates LUTs[Index].
	EvalLUT EvalKind = iota
	// EvalBRAM evaluates BRAMs[Index].
	EvalBRAM
	// EvalAdder evaluates Adders[Index].
	EvalAdder
)

// EvalItem is one step of the combinational evaluation order.
type EvalItem struct {
	Kind  EvalKind
	Index uint32
}

// Description is the complete device configuration except LUT truth
// tables and BRAM content, which live in their frame regions.
type Description struct {
	NumNets uint32
	Ports   []Port
	FFs     []FFRec
	BRAMs   []BRAMRec
	Adders  []AdderRec
	LUTs    []LUTRec
	Eval    []EvalItem
	// Frame region sizes, in frames.
	CLBFrames  int
	BRAMFrames int
}

const descMagic = 0x53424D41 // "SBMA"

// MarshalDescription serializes the description.
func MarshalDescription(d *Description) []byte {
	var buf bytes.Buffer
	w32 := func(v uint32) { _ = binary.Write(&buf, binary.BigEndian, v) }
	wstr := func(s string) {
		w32(uint32(len(s)))
		buf.WriteString(s)
	}
	wids := func(ids []uint32) {
		w32(uint32(len(ids)))
		for _, id := range ids {
			w32(id)
		}
	}
	w32(descMagic)
	w32(d.NumNets)
	w32(uint32(d.CLBFrames))
	w32(uint32(d.BRAMFrames))
	w32(uint32(len(d.Ports)))
	for _, p := range d.Ports {
		wstr(p.Name)
		buf.WriteByte(byte(p.Dir))
		w32(p.Net)
	}
	w32(uint32(len(d.FFs)))
	for _, f := range d.FFs {
		if f.Init {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		w32(f.Q)
		w32(f.D)
	}
	w32(uint32(len(d.BRAMs)))
	for _, r := range d.BRAMs {
		wids(r.Addr)
		wids(r.Out)
		w32(uint32(r.DataBits))
		w32(uint32(r.ContentOff))
	}
	w32(uint32(len(d.Adders)))
	for _, a := range d.Adders {
		wids(a.A)
		wids(a.B)
		wids(a.Sum)
	}
	w32(uint32(len(d.LUTs)))
	for _, l := range d.LUTs {
		w32(uint32(l.Loc.Frame))
		w32(uint32(l.Loc.Slot))
		buf.WriteByte(byte(l.Loc.Type))
		wids(l.Inputs)
		w32(l.O6)
		w32(l.O5)
	}
	w32(uint32(len(d.Eval)))
	for _, e := range d.Eval {
		buf.WriteByte(byte(e.Kind))
		w32(e.Index)
	}
	return buf.Bytes()
}

type descReader struct {
	b   []byte
	pos int
	err error
}

func (r *descReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.pos+4 > len(r.b) {
		r.err = errors.New("bitstream: truncated description")
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v
}

func (r *descReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.b) {
		r.err = errors.New("bitstream: truncated description")
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *descReader) str() string {
	n := int(r.u32())
	if r.err != nil || r.pos+n > len(r.b) || n > 1<<20 {
		r.err = errors.New("bitstream: bad string in description")
		return ""
	}
	s := string(r.b[r.pos : r.pos+n])
	r.pos += n
	return s
}

func (r *descReader) ids() []uint32 {
	n := int(r.u32())
	if r.err != nil || n > 1<<20 {
		r.err = errors.New("bitstream: bad id list in description")
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.u32()
	}
	return out
}

// UnmarshalDescription parses a serialized description.
func UnmarshalDescription(b []byte) (*Description, error) {
	r := &descReader{b: b}
	if r.u32() != descMagic {
		return nil, errors.New("bitstream: bad description magic")
	}
	d := &Description{}
	d.NumNets = r.u32()
	d.CLBFrames = int(r.u32())
	d.BRAMFrames = int(r.u32())
	nPorts := int(r.u32())
	for i := 0; i < nPorts && r.err == nil; i++ {
		p := Port{Name: r.str(), Dir: PortDir(r.u8()), Net: r.u32()}
		d.Ports = append(d.Ports, p)
	}
	nFFs := int(r.u32())
	for i := 0; i < nFFs && r.err == nil; i++ {
		f := FFRec{Init: r.u8() == 1, Q: r.u32(), D: r.u32()}
		d.FFs = append(d.FFs, f)
	}
	nBRAMs := int(r.u32())
	for i := 0; i < nBRAMs && r.err == nil; i++ {
		rec := BRAMRec{Addr: r.ids(), Out: r.ids()}
		rec.DataBits = int(r.u32())
		rec.ContentOff = int(r.u32())
		d.BRAMs = append(d.BRAMs, rec)
	}
	nAdders := int(r.u32())
	for i := 0; i < nAdders && r.err == nil; i++ {
		a := AdderRec{A: r.ids(), B: r.ids(), Sum: r.ids()}
		d.Adders = append(d.Adders, a)
	}
	nLUTs := int(r.u32())
	for i := 0; i < nLUTs && r.err == nil; i++ {
		var l LUTRec
		l.Loc.Frame = int(r.u32())
		l.Loc.Slot = int(r.u32())
		l.Loc.Type = SliceType(r.u8())
		l.Inputs = r.ids()
		l.O6 = r.u32()
		l.O5 = r.u32()
		d.LUTs = append(d.LUTs, l)
	}
	nEval := int(r.u32())
	for i := 0; i < nEval && r.err == nil; i++ {
		d.Eval = append(d.Eval, EvalItem{Kind: EvalKind(r.u8()), Index: r.u32()})
	}
	if r.err != nil {
		return nil, r.err
	}
	return d, nil
}

// Regions computes the byte extents of the FDRI sub-regions.
// FDRI layout: [1 header frame][CLB frames][description frames][BRAM
// frames]. The header frame stores magic, region sizes and the exact
// description length.
type Regions struct {
	CLBOff   int
	CLBLen   int
	DescOff  int
	DescLen  int // exact description bytes (region is frame padded)
	BRAMOff  int
	BRAMLen  int
	TotalLen int
}

const fdriMagic = 0x53424649 // "SBFI"

// FrameRegion names the FDRI sub-region a frame index falls in. It is
// the first step of mapping a frame patch onto the device structures
// (and compiled-program instructions) the patch can affect: CLB frames
// carry LUT truth tables, BRAM frames carry block-RAM content, and the
// header/description frames define the shared structure itself.
type FrameRegion uint8

const (
	// FrameHeader is the single FDRI header frame (frame 0).
	FrameHeader FrameRegion = iota
	// FrameCLB is a CLB frame holding LUT truth-table bits.
	FrameCLB
	// FrameDesc is a design-description frame.
	FrameDesc
	// FrameBRAM is a BRAM content frame.
	FrameBRAM
)

// String names the region for error messages.
func (k FrameRegion) String() string {
	switch k {
	case FrameHeader:
		return "header"
	case FrameCLB:
		return "CLB"
	case FrameDesc:
		return "description"
	case FrameBRAM:
		return "BRAM"
	}
	return "unknown"
}

// ClassifyFrame maps an absolute frame index onto its region and the
// frame index relative to that region's first frame. Out-of-range
// indices return an error.
func (r *Regions) ClassifyFrame(frame int) (FrameRegion, int, error) {
	total := r.TotalLen / FrameBytes
	switch {
	case frame < 0 || frame >= total:
		return 0, 0, fmt.Errorf("bitstream: frame %d out of range [0,%d)", frame, total)
	case frame == 0:
		return FrameHeader, 0, nil
	case frame < r.DescOff/FrameBytes:
		return FrameCLB, frame - 1, nil
	case frame < r.BRAMOff/FrameBytes:
		return FrameDesc, frame - r.DescOff/FrameBytes, nil
	default:
		return FrameBRAM, frame - r.BRAMOff/FrameBytes, nil
	}
}

// WriteFDRIHeader fills a header frame; exported for configuration
// readback, which regenerates the frame region from device state.
func WriteFDRIHeader(frame []byte, clbFrames, descFrames, bramFrames, descLen int) {
	writeFDRIHeaderFrame(frame, clbFrames, descFrames, bramFrames, descLen)
}

// writeFDRIHeaderFrame fills the header frame fields.
func writeFDRIHeaderFrame(frame []byte, clbFrames, descFrames, bramFrames, descLen int) {
	binary.BigEndian.PutUint32(frame[0:], fdriMagic)
	binary.BigEndian.PutUint32(frame[4:], uint32(clbFrames))
	binary.BigEndian.PutUint32(frame[8:], uint32(descFrames))
	binary.BigEndian.PutUint32(frame[12:], uint32(bramFrames))
	binary.BigEndian.PutUint32(frame[16:], uint32(descLen))
}

// ParseRegions reads the FDRI header frame and computes region extents.
func ParseRegions(fdri []byte) (*Regions, error) {
	if len(fdri) < FrameBytes {
		return nil, errors.New("bitstream: FDRI shorter than a frame")
	}
	if binary.BigEndian.Uint32(fdri) != fdriMagic {
		return nil, errors.New("bitstream: bad FDRI header magic")
	}
	clb := int(binary.BigEndian.Uint32(fdri[4:]))
	desc := int(binary.BigEndian.Uint32(fdri[8:]))
	bram := int(binary.BigEndian.Uint32(fdri[12:]))
	descLen := int(binary.BigEndian.Uint32(fdri[16:]))
	r := &Regions{
		CLBOff:  FrameBytes,
		CLBLen:  clb * FrameBytes,
		DescOff: FrameBytes * (1 + clb),
		DescLen: descLen,
		BRAMOff: FrameBytes * (1 + clb + desc),
		BRAMLen: bram * FrameBytes,
	}
	r.TotalLen = FrameBytes * (1 + clb + desc + bram)
	if r.TotalLen > len(fdri) || descLen > desc*FrameBytes {
		return nil, fmt.Errorf("bitstream: FDRI regions (%d bytes) exceed data (%d bytes)",
			r.TotalLen, len(fdri))
	}
	return r, nil
}
