package bitstream

import (
	"encoding/binary"
	"testing"

	"snowbma/internal/boolfn"
)

func TestAllSlotsOfAFrameIndependent(t *testing.T) {
	// Writing every slot of one frame must read back independently —
	// the interleaved sub-vector layout must never alias.
	frames := make([]byte, FrameBytes)
	want := make([]boolfn.TT, SlotsPerFrame)
	for s := 0; s < SlotsPerFrame; s++ {
		want[s] = boolfn.TT(0x0101010101010101 * uint64(s+1))
		if err := WriteLUT(frames, Loc{Frame: 0, Slot: s, Type: SliceL}, want[s]); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < SlotsPerFrame; s++ {
		got, err := ReadLUT(frames, Loc{Frame: 0, Slot: s, Type: SliceL})
		if err != nil {
			t.Fatal(err)
		}
		if got != want[s] {
			t.Fatalf("slot %d aliased: got %v want %v", s, got, want[s])
		}
	}
	// The three spare bytes of each quarter must stay zero.
	for q := 0; q < SubVectors; q++ {
		for b := SlotsPerFrame * SubVectorBytes; b < SubVectorOffset; b++ {
			if frames[q*SubVectorOffset+b] != 0 {
				t.Fatalf("spare byte %d of quarter %d written", b, q)
			}
		}
	}
}

func TestLUTWriteOutOfRegion(t *testing.T) {
	frames := make([]byte, FrameBytes)
	if err := WriteLUT(frames, Loc{Frame: 1, Slot: 0, Type: SliceL}, boolfn.Const1); err == nil {
		t.Fatal("write past the frame region accepted")
	}
	if _, err := ReadLUT(frames, Loc{Frame: -1, Slot: 0}); err == nil {
		t.Fatal("negative frame accepted")
	}
}

func TestType1Type2FieldExtraction(t *testing.T) {
	for _, reg := range []uint32{RegCRC, RegFAR, RegFDRI, RegCMD, RegIDCODE} {
		for _, count := range []int{0, 1, 7, 2047} {
			w := Type1(reg, count)
			if w>>29 != 1 {
				t.Fatalf("Type1 tag wrong for reg %d", reg)
			}
			if w>>13&0x3FFF != reg {
				t.Fatalf("Type1 reg field wrong: %08x", w)
			}
			if int(w&0x7FF) != count {
				t.Fatalf("Type1 count field wrong: %08x", w)
			}
		}
	}
	for _, count := range []int{0, 1, 2432080, 1 << 26} {
		w := Type2(count)
		if w>>29 != 2 || int(w&0x07FFFFFF) != count {
			t.Fatalf("Type2 fields wrong: %08x", w)
		}
	}
}

func TestCRCSensitiveToEveryFDRIBitSample(t *testing.T) {
	img, _, _ := testImage(t)
	p, _ := ParsePackets(img)
	base, err := computeCRC(img)
	if err != nil {
		t.Fatal(err)
	}
	// Sample bit flips across the FDRI span: each must change the CRC.
	for off := p.FDRIOffset; off < p.FDRIOffset+p.FDRILen; off += 1009 {
		img[off] ^= 0x10
		got, err := computeCRC(img)
		img[off] ^= 0x10
		if err != nil {
			t.Fatal(err)
		}
		if got == base {
			t.Fatalf("bit flip at %d invisible to CRC", off)
		}
	}
}

func TestParseRegionsRejectsOversizedClaims(t *testing.T) {
	fdri := make([]byte, 2*FrameBytes)
	writeFDRIHeaderFrame(fdri[:FrameBytes], 100, 0, 0, 0)
	if _, err := ParseRegions(fdri); err == nil {
		t.Fatal("accepted CLB region larger than the data")
	}
	writeFDRIHeaderFrame(fdri[:FrameBytes], 1, 0, 0, FrameBytes+1)
	if _, err := ParseRegions(fdri); err == nil {
		t.Fatal("accepted description length exceeding its frames")
	}
}

func TestSealRejectsNothing_SmallPayloadOK(t *testing.T) {
	var kE, kA [KeySize]byte
	var iv [16]byte
	enc, err := Seal([]byte{}, kE, kA, iv)
	if err != nil {
		t.Fatal(err)
	}
	pt, _, ok, err := Open(enc, kE)
	if err != nil || !ok || len(pt) != 0 {
		t.Fatalf("empty payload round trip failed: %v ok=%v len=%d", err, ok, len(pt))
	}
}

func TestDisableCRCIdempotent(t *testing.T) {
	img, _, _ := testImage(t)
	if err := DisableCRC(img); err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), img...)
	if err := DisableCRC(img); err != nil {
		t.Fatal(err)
	}
	for i := range img {
		if img[i] != snapshot[i] {
			t.Fatal("second DisableCRC modified the image")
		}
	}
}

func TestHeaderWordsRoundTrip(t *testing.T) {
	img, _, _ := testImage(t)
	// The preamble must contain the bus-width pattern and sync word in
	// order before any packets.
	var seen []uint32
	for i := 0; i+4 <= len(img) && len(seen) < 16; i += 4 {
		seen = append(seen, binary.BigEndian.Uint32(img[i:]))
	}
	foundSync := false
	for _, w := range seen {
		if w == SyncWord {
			foundSync = true
		}
	}
	if !foundSync {
		t.Fatal("sync word missing from the preamble")
	}
}
