package bitstream

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"snowbma/internal/obs"
)

// The attack reseals (or re-CRCs) thousands of candidate images that
// each differ from the base image in a handful of frame bytes. Both the
// HMAC and the configuration CRC are sequential folds, so the work for
// the unchanged prefix can be checkpointed once against the base image
// and reused for every candidate: the resealer snapshots SHA-256
// midstates and reuses the CBC ciphertext prefix, and the CRC cache
// stores fold states plus the linear operator of the unchanged suffix so
// a one-frame diff costs O(frame) instead of O(image).

// resealCheckpoint is the spacing, in packet bytes, of the HMAC inner
// midstate snapshots.
const resealCheckpoint = 4096

// Resealer produces sealed envelopes for modified variants of one base
// packet stream, reusing checkpointed HMAC midstates and the sealed base
// image's ciphertext prefix. The output is byte-identical to
// Reseal(mod, kE, kA, cbcIV).
type Resealer struct {
	base   []byte
	sealed []byte
	kE     [KeySize]byte
	kA     [KeySize]byte
	cbcIV  [16]byte
	block  cipher.Block
	inner  [][]byte // marshaled SHA-256 states after kA⊕ipad ‖ base[:k·ck]
	opad   [64]byte
	body   []byte // scratch plaintext body, reused across calls

	// Incremental and Full count fast-path and fallback reseals.
	Incremental int
	Full        int
	// Tel optionally mirrors the counters above live into a metrics
	// registry (bitstream.reseal.*) and records reseal spans. Nil-safe.
	Tel *obs.Telemetry
}

// NewResealer checkpoints the HMAC and ciphertext of the base packets.
func NewResealer(base []byte, kE, kA [KeySize]byte, cbcIV [16]byte) (*Resealer, error) {
	block, err := aes.NewCipher(kE[:])
	if err != nil {
		return nil, err
	}
	sealed, err := Seal(base, kE, kA, cbcIV)
	if err != nil {
		return nil, err
	}
	r := &Resealer{
		base:   append([]byte(nil), base...),
		sealed: sealed,
		kE:     kE,
		kA:     kA,
		cbcIV:  cbcIV,
		block:  block,
	}
	var ipad [64]byte
	for i := 0; i < 64; i++ {
		ipad[i] = 0x36
		r.opad[i] = 0x5C
	}
	for i, b := range kA {
		ipad[i] ^= b
		r.opad[i] ^= b
	}
	h := sha256.New()
	h.Write(ipad[:])
	for off := 0; ; off += resealCheckpoint {
		st, err := h.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			return nil, err
		}
		r.inner = append(r.inner, st)
		if off >= len(base) {
			break
		}
		hi := off + resealCheckpoint
		if hi > len(base) {
			hi = len(base)
		}
		h.Write(base[off:hi])
	}
	return r, nil
}

// SealedBase returns the sealed base image (shared storage; callers must
// not mutate it).
func (r *Resealer) SealedBase() []byte { return r.sealed }

// Checkpoints reports the number of HMAC midstate snapshots held for the
// base image (observability).
func (r *Resealer) Checkpoints() int { return len(r.inner) }

// countIncremental / countFull keep the struct counters and the live
// registry mirror equal by construction.
func (r *Resealer) countIncremental() {
	r.Incremental++
	r.Tel.Counter("bitstream.reseal.incremental").Inc()
}

func (r *Resealer) countFull() {
	r.Full++
	r.Tel.Counter("bitstream.reseal.full").Inc()
}

// tag computes HMAC-SHA256(kA, mod) resuming from the midstate
// checkpoint at or before the first byte where mod differs from base.
func (r *Resealer) tag(mod []byte, firstDiff int) ([]byte, error) {
	k := firstDiff / resealCheckpoint
	h := sha256.New()
	if err := h.(encoding.BinaryUnmarshaler).UnmarshalBinary(r.inner[k]); err != nil {
		return nil, err
	}
	h.Write(mod[k*resealCheckpoint:])
	innerSum := h.Sum(nil)
	outer := sha256.New()
	outer.Write(r.opad[:])
	outer.Write(innerSum)
	return outer.Sum(nil), nil
}

// ResealFrames seals a modified packet stream. When mod has the same
// length as the base it reuses the HMAC midstate before the first
// differing byte and the sealed base's ciphertext up to the first
// affected AES block (every later block must be re-encrypted anyway —
// CBC chains). Any other shape falls back to a full Seal.
func (r *Resealer) ResealFrames(mod []byte) ([]byte, error) {
	if len(mod) != len(r.base) {
		r.countFull()
		return Seal(mod, r.kE, r.kA, r.cbcIV)
	}
	f0 := firstDiff(r.base, mod)
	if f0 < 0 {
		r.countIncremental()
		return append([]byte(nil), r.sealed...), nil
	}
	tag, err := r.tag(mod, f0)
	if err != nil {
		r.countFull()
		return Seal(mod, r.kE, r.kA, r.cbcIV)
	}
	// Rebuild the plaintext body: kA ‖ len ‖ mod ‖ kA ‖ tag ‖ pad.
	bodyLen := len(r.sealed) - 20
	if cap(r.body) < bodyLen {
		r.body = make([]byte, bodyLen)
	}
	body := r.body[:bodyLen]
	copy(body, r.kA[:])
	binary.BigEndian.PutUint32(body[KeySize:], uint32(len(mod)))
	copy(body[KeySize+4:], mod)
	copy(body[KeySize+4+len(mod):], r.kA[:])
	copy(body[KeySize+4+len(mod)+KeySize:], tag)
	pad := bodyLen - (KeySize + 4 + len(mod) + KeySize + hmacSize)
	for i := bodyLen - pad; i < bodyLen; i++ {
		body[i] = byte(pad)
	}
	// First ciphertext block that changes: mod byte f0 sits at body
	// offset 36+f0.
	blk := (KeySize + 4 + f0) / aes.BlockSize
	out := make([]byte, len(r.sealed))
	copy(out, r.sealed[:20+blk*aes.BlockSize])
	iv := r.cbcIV[:]
	if blk > 0 {
		iv = out[20+(blk-1)*aes.BlockSize : 20+blk*aes.BlockSize]
	}
	cipher.NewCBCEncrypter(r.block, iv).CryptBlocks(out[20+blk*aes.BlockSize:], body[blk*aes.BlockSize:])
	r.countIncremental()
	return out, nil
}

// firstDiff returns the index of the first differing byte, or -1.
func firstDiff(a, b []byte) int {
	const chunk = 4096
	for off := 0; off < len(a); off += chunk {
		hi := off + chunk
		if hi > len(a) {
			hi = len(a)
		}
		if bytes.Equal(a[off:hi], b[off:hi]) {
			continue
		}
		for i := off; i < hi; i++ {
			if a[i] != b[i] {
				return i
			}
		}
	}
	return -1
}

// --- incremental configuration CRC ---

// crcMat is a GF(2)-linear map on the 32-bit CRC state, stored as the
// images of the 32 basis vectors.
type crcMat [32]uint32

func (m *crcMat) apply(c uint32) uint32 {
	var out uint32
	for c != 0 {
		out ^= m[bits.TrailingZeros32(c)]
		c &= c - 1
	}
	return out
}

// compose returns a∘b (apply b, then a).
func compose(a, b *crcMat) crcMat {
	var out crcMat
	for i := range out {
		out[i] = a.apply(b[i])
	}
	return out
}

var crcIdentity = func() crcMat {
	var m crcMat
	for i := range m {
		m[i] = 1 << uint(i)
	}
	return m
}()

// crcStep is the linear part of one crcUpdate fold: the 37 LFSR steps
// with all data bits zero. It is independent of the register address and
// data word (those only contribute additively).
var crcStep = func() crcMat {
	var m crcMat
	for i := range m {
		m[i] = crcUpdate(1<<uint(i), 0, 0)
	}
	return m
}()

// matPow returns m^n by square-and-multiply.
func matPow(m crcMat, n int) crcMat {
	out := crcIdentity
	for n > 0 {
		if n&1 == 1 {
			out = compose(&out, &m)
		}
		m = compose(&m, &m)
		n >>= 1
	}
	return out
}

// crcCkWords is the checkpoint spacing in FDRI words.
const crcCkWords = 128

// CRCCache recomputes the stored configuration CRC of modified variants
// of one base image incrementally. For each checkpoint k it stores the
// fold state S_k of the base prefix, plus the affine map (M_k, U_k) of
// the base suffix, so the CRC of a variant differing only in FDRI words
// [a, b) is M_e(fold(S_c, mod[a..])) ⊕ U_e with c/e the enclosing
// checkpoints — O(span) work instead of a full-image replay.
type CRCCache struct {
	base    []byte
	p       *Parsed
	nw      int      // FDRI length in words
	states  []uint32 // S_k: fold state entering checkpoint k
	mats    []crcMat // M_k: linear map from state at checkpoint k to final CRC
	adds    []uint32 // U_k: additive part of the base suffix from checkpoint k
	baseCRC uint32

	// Incremental and Full count fast-path and fallback recomputes.
	Incremental int
	Full        int
	// Tel optionally mirrors the counters above live into a metrics
	// registry (bitstream.crc.*). Nil-safe.
	Tel *obs.Telemetry
}

// Checkpoints reports the number of CRC fold-state checkpoints held for
// the base image (observability).
func (c *CRCCache) Checkpoints() int { return len(c.states) }

// countIncremental / countFull keep the struct counters and the live
// registry mirror equal by construction.
func (c *CRCCache) countIncremental() {
	c.Incremental++
	c.Tel.Counter("bitstream.crc.incremental").Inc()
}

func (c *CRCCache) countFull() {
	c.Full++
	c.Tel.Counter("bitstream.crc.full").Inc()
}

// NewCRCCache replays the base image once, checkpointing fold states and
// suffix operators. The base must carry an enabled CRC write.
func NewCRCCache(base []byte) (*CRCCache, error) {
	p, err := ParsePackets(base)
	if err != nil {
		return nil, err
	}
	if p.CRCOffset < 0 {
		return nil, errors.New("bitstream: CRC write not present (disabled?)")
	}
	c := &CRCCache{
		base: append([]byte(nil), base...),
		p:    p,
		nw:   p.FDRILen / 4,
	}
	if err := c.replay(); err != nil {
		return nil, err
	}
	// Cross-check the affine construction against the full replay.
	want, err := computeCRC(base)
	if err != nil {
		return nil, err
	}
	if got := c.mats[0].apply(c.states[0]) ^ c.adds[0]; got != want {
		return nil, fmt.Errorf("bitstream: CRC checkpoint self-check failed: %08x != %08x", got, want)
	}
	c.baseCRC = want
	return c, nil
}

// replay walks the base packets, recording the fold state before the
// FDRI region, checkpoint states inside it, the per-chunk zero-state
// folds, and the affine map of the register writes between the end of
// the FDRI region and the CRC write.
func (c *CRCCache) replay() error {
	b := c.base
	word := func(i int) uint32 { return binary.BigEndian.Uint32(b[4*i:]) }
	n := len(b) / 4
	i := 0
	for ; i < n && word(i) != SyncWord; i++ {
	}
	if i == n {
		return errors.New("bitstream: sync word not found")
	}
	i++
	crc := uint32(0)
	// tail is the affine fold of register writes after the FDRI region:
	// final = tailMat(state) ⊕ tailAdd.
	tailMat := crcIdentity
	tailAdd := uint32(0)
	seenFDRI := false
	fold := func(reg, w uint32) {
		if !seenFDRI {
			crc = crcUpdate(crc, reg, w)
			return
		}
		tailAdd = crcUpdate(tailAdd, reg, w)
		tailMat = compose(&crcStep, &tailMat)
	}
	nck := (c.nw + crcCkWords - 1) / crcCkWords
	chunkFold := make([]uint32, nck) // zero-state fold of chunk k
	for i < n {
		w := word(i)
		switch {
		case w == NopWord || w == 0:
			i++
		case w>>29 == 1:
			reg := w >> 13 & 0x3FFF
			count := int(w & 0x7FF)
			if reg == RegCRC {
				c.finish(chunkFold, tailMat, tailAdd)
				return nil
			}
			if reg == RegCMD && count == 1 && word(i+1) == CmdRCRC {
				if seenFDRI {
					tailMat = crcMat{}
					tailAdd = 0
				} else {
					crc = 0
				}
				i += 2
				continue
			}
			if reg == RegFDRI && count == 0 && i+1 < n && word(i+1)>>29 == 2 {
				fdriWords := int(word(i+1) & 0x07FFFFFF)
				if 4*(i+2) != c.p.FDRIOffset || fdriWords != c.nw {
					return errors.New("bitstream: unexpected second FDRI write")
				}
				seenFDRI = true
				var v uint32
				for j := 0; j < fdriWords; j++ {
					if j%crcCkWords == 0 {
						c.states = append(c.states, crc)
						v = 0
					}
					dw := word(i + 2 + j)
					crc = crcUpdate(crc, RegFDRI, dw)
					v = crcUpdate(v, RegFDRI, dw)
					if (j+1)%crcCkWords == 0 || j+1 == fdriWords {
						chunkFold[j/crcCkWords] = v
					}
				}
				i += 2 + fdriWords
				continue
			}
			for j := 0; j < count; j++ {
				fold(reg, word(i+1+j))
			}
			i += 1 + count
		case w>>29 == 2:
			i += 1 + int(w&0x07FFFFFF)
		default:
			return fmt.Errorf("bitstream: unrecognized word %08x", w)
		}
	}
	return errors.New("bitstream: CRC write not reached during replay")
}

// finish builds the suffix operators M_k, U_k by backward recursion from
// the tail map: M_k = M_{k+1}∘L^{r_k}, U_k = M_{k+1}(v_k) ⊕ U_{k+1}.
func (c *CRCCache) finish(chunkFold []uint32, tailMat crcMat, tailAdd uint32) {
	nck := len(chunkFold)
	c.mats = make([]crcMat, nck+1)
	c.adds = make([]uint32, nck+1)
	c.mats[nck] = tailMat
	c.adds[nck] = tailAdd
	stepK := matPow(crcStep, crcCkWords)
	for k := nck - 1; k >= 0; k-- {
		rk := crcCkWords
		if (k+1)*crcCkWords > c.nw {
			rk = c.nw - k*crcCkWords
		}
		step := stepK
		if rk != crcCkWords {
			step = matPow(crcStep, rk)
		}
		c.mats[k] = compose(&c.mats[k+1], &step)
		c.adds[k] = c.mats[k+1].apply(chunkFold[k]) ^ c.adds[k+1]
	}
}

// RecomputeCRC replaces the stored CRC of mod — a variant of the base
// image — with the correct value. Variants that differ from the base
// outside the FDRI region (other than the stored CRC word itself) or in
// length fall back to the full replay.
func (c *CRCCache) RecomputeCRC(mod []byte) error {
	if len(mod) != len(c.base) || !c.sameOutsideFDRI(mod) {
		c.countFull()
		return RecomputeCRC(mod)
	}
	fb := c.p.FDRI(c.base)
	mb := c.p.FDRI(mod)
	// Locate the first and last differing checkpoint chunks.
	nck := len(c.mats) - 1
	c0, e := -1, -1
	for k := 0; k < nck; k++ {
		lo := k * crcCkWords * 4
		hi := lo + crcCkWords*4
		if hi > len(fb) {
			hi = len(fb)
		}
		if !bytes.Equal(fb[lo:hi], mb[lo:hi]) {
			if c0 < 0 {
				c0 = k
			}
			e = k + 1
		}
	}
	crc := c.baseCRC
	if c0 >= 0 {
		v := c.states[c0]
		lo := c0 * crcCkWords
		hi := e * crcCkWords
		if hi > c.nw {
			hi = c.nw
		}
		for j := lo; j < hi; j++ {
			v = crcUpdate(v, RegFDRI, binary.BigEndian.Uint32(mb[4*j:]))
		}
		crc = c.mats[e].apply(v) ^ c.adds[e]
	}
	binary.BigEndian.PutUint32(mod[c.p.CRCOffset+4:], crc)
	c.countIncremental()
	return nil
}

// sameOutsideFDRI reports whether mod matches the base everywhere
// outside the FDRI region, ignoring the stored CRC word.
func (c *CRCCache) sameOutsideFDRI(mod []byte) bool {
	end := c.p.FDRIOffset + c.p.FDRILen
	crcLo, crcHi := c.p.CRCOffset+4, c.p.CRCOffset+8
	eq := func(lo, hi int) bool {
		if lo >= hi {
			return true
		}
		// Carve out the stored CRC word.
		if crcLo >= lo && crcHi <= hi {
			return bytes.Equal(c.base[lo:crcLo], mod[lo:crcLo]) &&
				bytes.Equal(c.base[crcHi:hi], mod[crcHi:hi])
		}
		return bytes.Equal(c.base[lo:hi], mod[lo:hi])
	}
	return eq(0, c.p.FDRIOffset) && eq(end, len(c.base))
}
