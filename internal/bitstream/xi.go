// Package bitstream implements the Xilinx 7-series configuration
// bitstream format at the level of detail the paper's attack operates on:
// Type 1/Type 2 configuration packets, the FDRI frame data (101 words of
// 4 bytes per frame), the ξ permutation of LUT truth tables (Table I of
// the paper), the r = 4 sub-vector partitioning at d = 101-byte offsets
// with SLICEL/SLICEM orders, the configuration CRC with the disable
// technique of Section V-B, and the MAC-then-encrypt envelope of Fig. 1
// (HMAC key stored in two plaintext locations inside the encrypted
// region).
//
// The assembler serializes a technology-mapped design into a bitstream;
// the companion package device configures a simulated FPGA from the raw
// bytes. The attack only ever touches the bytes.
package bitstream

import "snowbma/internal/boolfn"

// xiTable is Table I of the paper: xiTable[i] is the bit position of F[i]
// in the permuted vector B = ξ(F). F is indexed with a1 as the least
// significant index bit, matching the table's (a6 ... a1) row labels.
var xiTable = [64]byte{
	63, 47, 62, 46, 61, 45, 60, 44,
	15, 31, 14, 30, 13, 29, 12, 28,
	59, 43, 58, 42, 57, 41, 56, 40,
	11, 27, 10, 26, 9, 25, 8, 24,
	55, 39, 54, 38, 53, 37, 52, 36,
	7, 23, 6, 22, 5, 21, 4, 20,
	51, 35, 50, 34, 49, 33, 48, 32,
	3, 19, 2, 18, 1, 17, 0, 16,
}

// xiInverse[j] is the F position stored at B[j].
var xiInverse = func() [64]byte {
	var inv [64]byte
	for i, j := range xiTable {
		inv[j] = byte(i)
	}
	return inv
}()

// XiPosition returns ξ's image of truth-table position i, exposing Table
// I programmatically (used by tests and the CLI inspect command).
func XiPosition(i int) int { return int(xiTable[i&63]) }

// Xi permutes a 64-bit truth table F into the bitstream-order vector
// B = ξ(F).
func Xi(f boolfn.TT) uint64 {
	var b uint64
	for i := 0; i < 64; i++ {
		b |= uint64(f>>uint(i)&1) << xiTable[i]
	}
	return b
}

// XiInv recovers the truth table from its bitstream-order vector.
func XiInv(b uint64) boolfn.TT {
	var f boolfn.TT
	for j := 0; j < 64; j++ {
		f |= boolfn.TT(b>>uint(j)&1) << xiInverse[j]
	}
	return f
}

// xiFormula is the closed form of Table I, used as a structural
// cross-check against transcription errors: the B index of F[a6..a1] is
// {¬a4, ¬(a1⊕a4), ¬a6, ¬a5, ¬a3, ¬a2} from MSB to LSB.
func xiFormula(i int) int {
	a := func(n uint) uint64 { return uint64(i) >> (n - 1) & 1 }
	out5 := 1 - a(4)
	out4 := 1 - (a(1) ^ a(4))
	out3 := 1 - a(6)
	out2 := 1 - a(5)
	out1 := 1 - a(3)
	out0 := 1 - a(2)
	return int(out5<<5 | out4<<4 | out3<<3 | out2<<2 | out1<<1 | out0)
}
