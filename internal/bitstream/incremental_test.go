package bitstream

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestDiffFramesClean(t *testing.T) {
	img, _, _ := testImage(t)
	mod := append([]byte(nil), img...)
	ps, err := DiffFrames(img, mod)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 0 {
		t.Fatalf("identical images diff to %d patches", len(ps))
	}
}

func TestDiffFramesLocatesModifiedFrames(t *testing.T) {
	img, _, _ := testImage(t)
	p, err := ParsePackets(img)
	if err != nil {
		t.Fatal(err)
	}
	mod := append([]byte(nil), img...)
	fdri := p.FDRI(mod)
	// Flip bytes in frames 3 and 7.
	fdri[3*FrameBytes+10] ^= 0xFF
	fdri[7*FrameBytes+400] ^= 0x55
	ps, err := DiffFrames(img, mod)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Frame != 3 || ps[1].Frame != 7 {
		t.Fatalf("unexpected patch set: %+v", ps)
	}
	for _, fp := range ps {
		if !bytes.Equal(fp.Data, fdri[fp.Frame*FrameBytes:(fp.Frame+1)*FrameBytes]) {
			t.Fatalf("patch for frame %d carries wrong bytes", fp.Frame)
		}
	}
}

func TestDiffFramesRejectsNonFDRIChanges(t *testing.T) {
	img, _, _ := testImage(t)
	mod := append([]byte(nil), img...)
	mod[4] ^= 1 // header word, before sync
	if _, err := DiffFrames(img, mod); err == nil {
		t.Fatal("diff outside the FDRI region not rejected")
	}
	short := append([]byte(nil), img[:len(img)-4]...)
	if _, err := DiffFrames(img, short); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

func TestResealFramesMatchesFullSeal(t *testing.T) {
	img, _, _ := testImage(t)
	var kE, kA [KeySize]byte
	var cbcIV [16]byte
	for i := range kE {
		kE[i] = byte(i)
		kA[i] = byte(0xA0 + i)
	}
	for i := range cbcIV {
		cbcIV[i] = byte(0x30 + i)
	}
	r, err := NewResealer(img, kE, kA, cbcIV)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	p, err := ParsePackets(img)
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int{
		0,                              // first byte
		len(img) - 1,                   // last byte
		p.FDRIOffset + 5*FrameBytes,    // early frame
		p.FDRIOffset + p.FDRILen - 100, // late frame
	}
	for i := 0; i < 8; i++ {
		offsets = append(offsets, rng.Intn(len(img)))
	}
	for _, off := range offsets {
		mod := append([]byte(nil), img...)
		mod[off] ^= 0x5A
		got, err := r.ResealFrames(mod)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Seal(mod, kE, kA, cbcIV)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("incremental reseal diverges from full seal for diff at byte %d", off)
		}
	}
	// Unmodified image: the sealed base comes back verbatim.
	got, err := r.ResealFrames(append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, r.SealedBase()) {
		t.Fatal("reseal of the unmodified base diverges from the sealed base")
	}
	// Length change falls back to the full path.
	grown := append(append([]byte(nil), img...), 0, 0, 0, 0)
	got, err = r.ResealFrames(grown)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Seal(grown, kE, kA, cbcIV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("full-seal fallback diverges")
	}
	if r.Incremental == 0 || r.Full != 1 {
		t.Fatalf("reseal counters: incremental=%d full=%d", r.Incremental, r.Full)
	}
}

func TestCRCCacheMatchesFullRecompute(t *testing.T) {
	img, _, _ := testImage(t)
	c, err := NewCRCCache(img)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParsePackets(img)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	cases := [][]int{
		{p.FDRIOffset},                        // first FDRI byte
		{p.FDRIOffset + p.FDRILen - 1},        // last FDRI byte
		{p.FDRIOffset + 9*FrameBytes + 17},    // mid frame
		{p.FDRIOffset + 3, p.FDRIOffset + p.FDRILen - 7}, // wide span
	}
	for i := 0; i < 8; i++ {
		cases = append(cases, []int{p.FDRIOffset + rng.Intn(p.FDRILen)})
	}
	for _, offs := range cases {
		mod := append([]byte(nil), img...)
		for _, off := range offs {
			mod[off] ^= 0x81
		}
		if err := c.RecomputeCRC(mod); err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), img...)
		for _, off := range offs {
			want[off] ^= 0x81
		}
		if err := RecomputeCRC(want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mod, want) {
			t.Fatalf("incremental CRC diverges from full recompute for diffs at %v", offs)
		}
		if err := CheckCRC(mod); err != nil {
			t.Fatalf("incremental CRC does not verify: %v", err)
		}
	}
	// Unmodified image keeps the base CRC.
	mod := append([]byte(nil), img...)
	if err := c.RecomputeCRC(mod); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mod, img) {
		t.Fatal("recompute of the unmodified base changed the image")
	}
	// Non-FDRI change falls back to the full path.
	mod = append([]byte(nil), img...)
	mod[4] ^= 1
	if err := c.RecomputeCRC(mod); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), img...)
	want[4] ^= 1
	if err := RecomputeCRC(want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mod, want) {
		t.Fatal("full-recompute fallback diverges")
	}
	if c.Incremental == 0 || c.Full != 1 {
		t.Fatalf("CRC counters: incremental=%d full=%d", c.Incremental, c.Full)
	}
}

func TestCRCCacheRejectsDisabledCRC(t *testing.T) {
	img, _, _ := testImage(t)
	if err := DisableCRC(img); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCRCCache(img); err == nil {
		t.Fatal("CRC cache accepted an image without a CRC write")
	}
}
