package bitstream

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Configuration register addresses (7-series subset).
const (
	RegCRC    = 0x00
	RegFAR    = 0x01
	RegFDRI   = 0x02
	RegCMD    = 0x04
	RegMASK   = 0x06
	RegCOR0   = 0x09
	RegIDCODE = 0x0C
)

// CMD register opcodes.
const (
	CmdNull   = 0x0
	CmdWCFG   = 0x1
	CmdRCRC   = 0x7
	CmdGRest  = 0xA
	CmdDesync = 0xD
)

// Well-known words.
const (
	SyncWord = 0xAA995566
	NopWord  = 0x20000000
	// IDCodeArtix7 is the XC7A100T id code.
	IDCodeArtix7 = 0x13631093
	// writeFDRIHeader is the Type 1 "write FDRI, count 0" word the paper
	// searches for (0x30004000).
	writeFDRIHeader = 0x30004000
	// writeCRCHeader is the Type 1 "write CRC, count 1" word (0x30000001).
	writeCRCHeader = 0x30000001
)

// Type1 builds a Type 1 write packet header for a register.
func Type1(reg uint32, wordCount int) uint32 {
	return 1<<29 | 2<<27 | (reg&0x3FFF)<<13 | uint32(wordCount)&0x7FF
}

// Type2 builds a Type 2 write packet header carrying wordCount words.
func Type2(wordCount int) uint32 {
	return 2<<29 | 2<<27 | uint32(wordCount)&0x07FFFFFF
}

// crcUpdate folds one (register address, data word) pair into the
// running configuration CRC. 7-series hardware computes a CRC-32C over
// the 37-bit value {addr[4:0], data[31:0]} per written word; we implement
// the same bit-serial construction (polynomial 0x1EDC6F41, LSB-first).
func crcUpdate(crc uint32, reg uint32, word uint32) uint32 {
	const poly = 0x82F63B78 // reversed Castagnoli
	val := uint64(reg&0x1F)<<32 | uint64(word)
	for i := 0; i < 37; i++ {
		crc ^= uint32(val>>uint(i)) & 1
		if crc&1 == 1 {
			crc = crc>>1 ^ poly
		} else {
			crc >>= 1
		}
	}
	return crc
}

// Header is the unsynchronized preamble: pad words, bus-width detection
// pattern, and the sync word.
var header = []uint32{
	0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF,
	0x000000BB, 0x11220044,
	0xFFFFFFFF, 0xFFFFFFFF,
	SyncWord,
}

// buildPackets wraps FDRI frame data in a realistic packet sequence and
// returns the complete bitstream bytes (big-endian words, as on the
// configuration bus).
func buildPackets(fdri []uint32) []byte {
	var words []uint32
	words = append(words, header...)
	emit := func(w ...uint32) { words = append(words, w...) }
	// CRC coverage begins right after the RCRC command (paper V-B).
	emit(Type1(RegCMD, 1), CmdRCRC)
	emit(NopWord)
	emit(Type1(RegIDCODE, 1), IDCodeArtix7)
	emit(Type1(RegCOR0, 1), 0x02003FE5)
	emit(Type1(RegMASK, 1), 0x00000001)
	emit(Type1(RegFAR, 1), 0x00000000)
	emit(Type1(RegCMD, 1), CmdWCFG)
	emit(NopWord)
	emit(writeFDRIHeader, Type2(len(fdri)))
	emit(fdri...)
	// CRC over everything written since RCRC, then GRESTORE and DESYNC.
	emit(writeCRCHeader, 0) // placeholder, fixed by RecomputeCRC below
	emit(Type1(RegCMD, 1), CmdGRest)
	emit(Type1(RegCMD, 1), CmdDesync)
	emit(NopWord, NopWord)

	out := make([]byte, 4*len(words))
	for i, w := range words {
		binary.BigEndian.PutUint32(out[4*i:], w)
	}
	if err := RecomputeCRC(out); err != nil {
		panic("bitstream: internal CRC recompute failed: " + err.Error())
	}
	return out
}

// WrapFDRI builds a complete loadable bitstream around a raw frame
// region — what an attacker does with configuration readback data: the
// packet framing is public, so frames read over JTAG become a bootable
// image without ever touching the flash.
func WrapFDRI(fdri []byte) ([]byte, error) {
	if len(fdri)%4 != 0 {
		return nil, errors.New("bitstream: FDRI data not word aligned")
	}
	words := make([]uint32, len(fdri)/4)
	for i := range words {
		words[i] = binary.BigEndian.Uint32(fdri[4*i:])
	}
	return buildPackets(words), nil
}

// Parsed describes the packet structure of a bitstream.
type Parsed struct {
	// SyncOffset is the byte offset of the word after the sync word.
	SyncOffset int
	// FDRIOffset and FDRILen delimit the frame data, in bytes.
	FDRIOffset int
	FDRILen    int
	// CRCOffset is the byte offset of the "write CRC" header, or -1 when
	// the CRC write was zeroed out (disabled).
	CRCOffset int
	// CRCValue is the stored CRC (when present).
	CRCValue uint32
}

// ParsePackets walks the packet stream. It implements the same scanning
// logic the paper describes: find 0x30004000, read the Type 2 word count,
// locate the CRC write.
func ParsePackets(b []byte) (*Parsed, error) {
	if len(b)%4 != 0 {
		return nil, errors.New("bitstream: length not word aligned")
	}
	word := func(i int) uint32 { return binary.BigEndian.Uint32(b[4*i:]) }
	n := len(b) / 4
	p := &Parsed{SyncOffset: -1, FDRIOffset: -1, CRCOffset: -1}
	i := 0
	for ; i < n; i++ {
		if word(i) == SyncWord {
			p.SyncOffset = 4 * (i + 1)
			i++
			break
		}
	}
	if p.SyncOffset < 0 {
		return nil, errors.New("bitstream: sync word not found")
	}
	for i < n {
		w := word(i)
		switch {
		case w == NopWord || w == 0:
			i++
		case w>>29 == 1: // Type 1
			reg := w >> 13 & 0x3FFF
			count := int(w & 0x7FF)
			if reg == RegFDRI && count == 0 {
				// Expect a Type 2 with the real count.
				if i+1 >= n || word(i+1)>>29 != 2 {
					return nil, errors.New("bitstream: FDRI header without Type 2 packet")
				}
				fdriWords := int(word(i+1) & 0x07FFFFFF)
				p.FDRIOffset = 4 * (i + 2)
				p.FDRILen = 4 * fdriWords
				if p.FDRIOffset+p.FDRILen > len(b) {
					return nil, errors.New("bitstream: FDRI extends past end")
				}
				i += 2 + fdriWords
				continue
			}
			if reg == RegCRC && count == 1 {
				p.CRCOffset = 4 * i
				p.CRCValue = word(i + 1)
			}
			i += 1 + count
		case w>>29 == 2: // Type 2 without preceding Type 1
			i += 1 + int(w&0x07FFFFFF)
		default:
			return nil, fmt.Errorf("bitstream: unrecognized word %08x at offset %d", w, 4*i)
		}
	}
	if p.FDRIOffset < 0 {
		return nil, errors.New("bitstream: no FDRI write found")
	}
	return p, nil
}

// FDRI returns the frame-data region of a parsed bitstream as a
// sub-slice (mutations write through).
func (p *Parsed) FDRI(b []byte) []byte {
	return b[p.FDRIOffset : p.FDRIOffset+p.FDRILen]
}

// computeCRC replays the packet stream and returns the expected CRC at
// the position of the CRC write.
func computeCRC(b []byte) (uint32, error) {
	word := func(i int) uint32 { return binary.BigEndian.Uint32(b[4*i:]) }
	n := len(b) / 4
	i := 0
	for ; i < n && word(i) != SyncWord; i++ {
	}
	if i == n {
		return 0, errors.New("bitstream: sync word not found")
	}
	i++
	crc := uint32(0)
	for i < n {
		w := word(i)
		switch {
		case w == NopWord || w == 0:
			i++
		case w>>29 == 1:
			reg := w >> 13 & 0x3FFF
			count := int(w & 0x7FF)
			if reg == RegCRC {
				return crc, nil
			}
			if reg == RegCMD && count == 1 && word(i+1) == CmdRCRC {
				crc = 0
				i += 2
				continue
			}
			if reg == RegFDRI && count == 0 && i+1 < n && word(i+1)>>29 == 2 {
				fdriWords := int(word(i+1) & 0x07FFFFFF)
				for j := 0; j < fdriWords; j++ {
					crc = crcUpdate(crc, RegFDRI, word(i+2+j))
				}
				i += 2 + fdriWords
				continue
			}
			for j := 0; j < count; j++ {
				crc = crcUpdate(crc, reg, word(i+1+j))
			}
			i += 1 + count
		case w>>29 == 2:
			i += 1 + int(w&0x07FFFFFF)
		default:
			return 0, fmt.Errorf("bitstream: unrecognized word %08x", w)
		}
	}
	return crc, nil
}

// RecomputeCRC replaces the stored CRC with the value matching the
// current content — the "recompute and replace" option of Section V-B.
func RecomputeCRC(b []byte) error {
	p, err := ParsePackets(b)
	if err != nil {
		return err
	}
	if p.CRCOffset < 0 {
		return errors.New("bitstream: CRC write not present (disabled?)")
	}
	crc, err := computeCRC(b)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(b[p.CRCOffset+4:], crc)
	return nil
}

// DisableCRC implements the paper's preferred approach: replace the
// command 0x30000001 "write CRC register" and the follow-up CRC word by
// all-0 words, in every position where they occur.
func DisableCRC(b []byte) error {
	p, err := ParsePackets(b)
	if err != nil {
		return err
	}
	if p.CRCOffset < 0 {
		return nil // already disabled
	}
	for off := p.CRCOffset; ; {
		binary.BigEndian.PutUint32(b[off:], 0)
		binary.BigEndian.PutUint32(b[off+4:], 0)
		q, err := ParsePackets(b)
		if err != nil {
			return err
		}
		if q.CRCOffset < 0 {
			return nil
		}
		off = q.CRCOffset
	}
}

// CheckCRC verifies the stored CRC. A disabled CRC (no CRC write)
// passes, mirroring device behaviour.
func CheckCRC(b []byte) error {
	p, err := ParsePackets(b)
	if err != nil {
		return err
	}
	if p.CRCOffset < 0 {
		return nil
	}
	crc, err := computeCRC(b)
	if err != nil {
		return err
	}
	if crc != p.CRCValue {
		return fmt.Errorf("bitstream: CRC mismatch: stored %08x, computed %08x (INIT_B would go low)",
			p.CRCValue, crc)
	}
	return nil
}
