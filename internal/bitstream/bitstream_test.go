package bitstream

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"testing"
	"testing/quick"

	"snowbma/internal/boolfn"
	"snowbma/internal/hdl"
	"snowbma/internal/mapper"
	"snowbma/internal/snow3g"
)

func TestXiTableIStructure(t *testing.T) {
	// The hardcoded Table I must agree with its closed form and be a
	// permutation.
	var seen [64]bool
	for i := 0; i < 64; i++ {
		j := XiPosition(i)
		if j != xiFormula(i) {
			t.Errorf("Table I row %d: table says B[%d], formula says B[%d]", i, j, xiFormula(i))
		}
		if seen[j] {
			t.Fatalf("Table I not a permutation: B[%d] repeated", j)
		}
		seen[j] = true
	}
	// Spot rows straight from the paper.
	rows := map[int]int{0: 63, 1: 47, 8: 15, 31: 24, 32: 55, 62: 0, 63: 16}
	for i, want := range rows {
		if got := XiPosition(i); got != want {
			t.Errorf("Table I: F[%d] → B[%d], want B[%d]", i, got, want)
		}
	}
}

func TestXiRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		return XiInv(Xi(boolfn.TT(raw))) == boolfn.TT(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeLUTBothSliceTypes(t *testing.T) {
	f := func(raw uint64, m bool) bool {
		st := SliceL
		if m {
			st = SliceM
		}
		return DecodeLUT(EncodeLUT(boolfn.TT(raw), st), st) == boolfn.TT(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceOrdersDiffer(t *testing.T) {
	init := boolfn.MustParse("(a1^a2^a3)a4a5!a6")
	l := EncodeLUT(init, SliceL)
	m := EncodeLUT(init, SliceM)
	if l == m {
		t.Fatal("SLICEL and SLICEM encodings should differ for this function")
	}
	// SLICEM stores B4,B3,B1,B2 (paper Section V-A).
	if l[3] != m[0] || l[2] != m[1] || l[0] != m[2] || l[1] != m[3] {
		t.Fatal("SLICEM sub-vector order is not B4,B3,B1,B2")
	}
}

func TestWriteReadLUTInFrames(t *testing.T) {
	frames := make([]byte, 4*FrameBytes)
	loc := Loc{Frame: 2, Slot: 17, Type: SliceM}
	init := boolfn.TT(0xDEADBEEFCAFEF00D)
	if err := WriteLUT(frames, loc, init); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLUT(frames, loc)
	if err != nil {
		t.Fatal(err)
	}
	if got != init {
		t.Fatalf("round trip %v != %v", got, init)
	}
	if _, err := ReadLUT(frames, Loc{Frame: 0, Slot: SlotsPerFrame}); err == nil {
		t.Fatal("slot out of range accepted")
	}
}

func TestType1HeadersMatchPaper(t *testing.T) {
	if got := Type1(RegFDRI, 0); got != 0x30004000 {
		t.Errorf("Type1(FDRI, 0) = %08x, want 0x30004000 (paper Section V-A)", got)
	}
	if got := Type1(RegCRC, 1); got != 0x30000001 {
		t.Errorf("Type1(CRC, 1) = %08x, want 0x30000001 (paper Section V-B)", got)
	}
	if got := Type1(RegCMD, 1); got != 0x30008001 {
		t.Errorf("Type1(CMD, 1) = %08x, want 0x30008001 (paper Section V-B)", got)
	}
	// Paper example: 0x50251c50 is Type 2, word count 2432080.
	if got := Type2(2432080); got != 0x50251C50 {
		t.Errorf("Type2(2432080) = %08x, want 0x50251c50", got)
	}
}

func testImage(t testing.TB) ([]byte, *hdl.Design, *mapper.Result) {
	key := snow3g.Key{0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48}
	d := hdl.Build(hdl.Config{Key: key})
	r, err := mapper.Map(d.N, mapper.Options{K: 6, Boundaries: d.Boundaries})
	if err != nil {
		t.Fatal(err)
	}
	phys := mapper.Pack(r, mapper.PackPolicy{})
	img, err := Assemble(d.N, phys, AssembleOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return img, d, r
}

func TestAssembleParsesBack(t *testing.T) {
	img, _, r := testImage(t)
	p, err := ParsePackets(img)
	if err != nil {
		t.Fatal(err)
	}
	if p.CRCOffset < 0 {
		t.Fatal("no CRC write in assembled image")
	}
	regions, err := ParseRegions(p.FDRI(img))
	if err != nil {
		t.Fatal(err)
	}
	desc, err := UnmarshalDescription(p.FDRI(img)[regions.DescOff : regions.DescOff+regions.DescLen])
	if err != nil {
		t.Fatal(err)
	}
	if len(desc.LUTs) != len(r.LUTs) {
		t.Fatalf("description has %d LUTs, mapping has %d", len(desc.LUTs), len(r.LUTs))
	}
	if len(desc.Eval) != len(desc.LUTs)+len(desc.BRAMs)+len(desc.Adders) {
		t.Fatal("evaluation order incomplete")
	}
	// Every placed LUT truth table must read back from the CLB frames.
	clb := p.FDRI(img)[regions.CLBOff : regions.CLBOff+regions.CLBLen]
	for i, lrec := range desc.LUTs {
		got, err := ReadLUT(clb, lrec.Loc)
		if err != nil {
			t.Fatal(err)
		}
		// Find the physical LUT with the same O6 root.
		want := boolfn.TT(0)
		found := false
		for _, lut := range r.LUTs {
			if uint32(lut.Root) == lrec.O6 {
				want, found = lut.Fn, true
				break
			}
		}
		if !found {
			t.Fatalf("description LUT %d has unknown O6 net", i)
		}
		if got != want {
			t.Fatalf("LUT %d truth table %v != %v", i, got, want)
		}
	}
}

func TestCRCCheckDetectsTamper(t *testing.T) {
	img, _, _ := testImage(t)
	if err := CheckCRC(img); err != nil {
		t.Fatalf("fresh image fails CRC: %v", err)
	}
	p, _ := ParsePackets(img)
	img[p.FDRIOffset+FrameBytes+10] ^= 0xFF // flip a CLB byte
	if err := CheckCRC(img); err == nil {
		t.Fatal("CRC accepted tampered image")
	}
	// Paper option 1: recompute and replace.
	if err := RecomputeCRC(img); err != nil {
		t.Fatal(err)
	}
	if err := CheckCRC(img); err != nil {
		t.Fatalf("recomputed CRC still fails: %v", err)
	}
	// Paper option 2: disable entirely.
	img[p.FDRIOffset+FrameBytes+11] ^= 0xFF
	if err := DisableCRC(img); err != nil {
		t.Fatal(err)
	}
	if err := CheckCRC(img); err != nil {
		t.Fatalf("disabled CRC should always pass: %v", err)
	}
	q, err := ParsePackets(img)
	if err != nil {
		t.Fatal(err)
	}
	if q.CRCOffset >= 0 {
		t.Fatal("CRC write still present after disable")
	}
}

func TestDescriptionRoundTrip(t *testing.T) {
	d := &Description{
		NumNets:    42,
		CLBFrames:  3,
		BRAMFrames: 1,
		Ports:      []Port{{Name: "load", Dir: In, Net: 2}, {Name: "z[0]", Dir: Out, Net: 40}},
		FFs:        []FFRec{{Init: true, Q: 7, D: 40}},
		BRAMs:      []BRAMRec{{Addr: []uint32{2, 3}, Out: []uint32{8, 9}, DataBits: 2, ContentOff: 0}},
		Adders:     []AdderRec{{A: []uint32{2}, B: []uint32{3}, Sum: []uint32{10}}},
		LUTs:       []LUTRec{{Loc: Loc{Frame: 1, Slot: 5, Type: SliceM}, Inputs: []uint32{2, 3}, O6: 40, O5: NoNet}},
		Eval:       []EvalItem{{Kind: EvalBRAM, Index: 0}, {Kind: EvalLUT, Index: 0}},
	}
	got, err := UnmarshalDescription(MarshalDescription(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNets != d.NumNets || len(got.Ports) != 2 || got.Ports[0].Name != "load" ||
		got.LUTs[0].Loc.Type != SliceM || got.LUTs[0].O5 != NoNet ||
		got.FFs[0].Q != 7 || got.Eval[1].Kind != EvalLUT {
		t.Fatalf("description round trip mismatch: %+v", got)
	}
}

func TestDescriptionRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalDescription([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted short garbage")
	}
	d := MarshalDescription(&Description{})
	d[0] ^= 0xFF
	if _, err := UnmarshalDescription(d); err == nil {
		t.Fatal("accepted bad magic")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	packets := []byte("not really packets but enough for the envelope 0123456789")
	var kE, kA [KeySize]byte
	for i := range kE {
		kE[i], kA[i] = byte(i), byte(0x80+i)
	}
	var iv [16]byte
	enc, err := Seal(packets, kE, kA, iv)
	if err != nil {
		t.Fatal(err)
	}
	if !IsEncrypted(enc) {
		t.Fatal("sealed image not recognized as encrypted")
	}
	if bytes.Contains(enc, packets[:16]) {
		t.Fatal("ciphertext leaks plaintext")
	}
	got, gotKA, ok, err := Open(enc, kE)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("HMAC should verify")
	}
	if gotKA != kA {
		t.Fatal("authentication key not recovered from envelope")
	}
	if !bytes.Equal(got, packets) {
		t.Fatal("decrypted packets differ")
	}
}

func TestOpenDetectsTamperButLeaksKA(t *testing.T) {
	packets := make([]byte, 256)
	for i := range packets {
		packets[i] = byte(i)
	}
	var kE, kA [KeySize]byte
	kA[0] = 0xAB
	var iv [16]byte
	enc, _ := Seal(packets, kE, kA, iv)
	// Modify, reseal with recovered K_A (the attack flow), verify OK.
	plain, gotKA, ok, err := Open(enc, kE)
	if err != nil || !ok {
		t.Fatalf("open failed: %v ok=%v", err, ok)
	}
	plain[10] ^= 0x40
	resealed, err := Reseal(plain, kE, gotKA, iv)
	if err != nil {
		t.Fatal(err)
	}
	_, _, ok, err = Open(resealed, kE)
	if err != nil || !ok {
		t.Fatal("resealed modified bitstream should authenticate (this is the attack)")
	}
	// A naive bit flip inside the ciphertext must break the HMAC.
	enc[30] ^= 1
	_, _, ok, err = Open(enc, kE)
	if err == nil && ok {
		t.Fatal("tampered ciphertext passed HMAC")
	}
}

func TestOpenWrongKey(t *testing.T) {
	var kE, kA, wrong [KeySize]byte
	wrong[5] = 9
	var iv [16]byte
	enc, _ := Seal([]byte("payload payload payload"), kE, kA, iv)
	if _, _, ok, err := Open(enc, wrong); err == nil && ok {
		t.Fatal("wrong K_E produced a valid open")
	}
}

func TestAuthKeyStoredTwice(t *testing.T) {
	// Fig 1: K_A appears in two plaintext locations inside the decrypted
	// region.
	packets := make([]byte, 128)
	var kE, kA [KeySize]byte
	for i := range kA {
		kA[i] = byte(0xC0 + i)
	}
	var iv [16]byte
	enc, _ := Seal(packets, kE, kA, iv)
	// Decrypt manually and count K_A occurrences.
	plain := decryptRaw(t, enc, kE)
	if n := bytes.Count(plain, kA[:]); n != 2 {
		t.Fatalf("K_A appears %d times in the decrypted region, want 2", n)
	}
}

// decryptRaw exposes the full decrypted region for structural checks.
func decryptRaw(t *testing.T, enc []byte, kE [KeySize]byte) []byte {
	t.Helper()
	block, err := aes.NewCipher(kE[:])
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(enc)-20)
	cipher.NewCBCDecrypter(block, enc[4:20]).CryptBlocks(out, enc[20:])
	return out
}

func TestPadFramesGrowImage(t *testing.T) {
	key := snow3g.Key{1, 2, 3, 4}
	d := hdl.Build(hdl.Config{Key: key})
	r, err := mapper.Map(d.N, mapper.Options{K: 6, Boundaries: d.Boundaries})
	if err != nil {
		t.Fatal(err)
	}
	phys := mapper.Pack(r, mapper.PackPolicy{})
	small, err := Assemble(d.N, phys, AssembleOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Assemble(d.N, phys, AssembleOptions{Seed: 1, PadFrames: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(big) <= len(small)+99*FrameBytes {
		t.Fatalf("padding did not grow image: %d vs %d", len(big), len(small))
	}
	if err := CheckCRC(big); err != nil {
		t.Fatal(err)
	}
}

func TestParsePacketsErrors(t *testing.T) {
	if _, err := ParsePackets([]byte{1, 2, 3}); err == nil {
		t.Fatal("unaligned input accepted")
	}
	buf := make([]byte, 16)
	if _, err := ParsePackets(buf); err == nil {
		t.Fatal("missing sync word accepted")
	}
	// Sync word present but truncated FDRI.
	w := make([]byte, 0, 20)
	add := func(v uint32) {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v)
		w = append(w, b[:]...)
	}
	add(SyncWord)
	add(Type1(RegFDRI, 0))
	add(Type2(1000))
	if _, err := ParsePackets(w); err == nil {
		t.Fatal("truncated FDRI accepted")
	}
}

func BenchmarkAssemble(b *testing.B) {
	key := snow3g.Key{1, 2, 3, 4}
	d := hdl.Build(hdl.Config{Key: key})
	r, err := mapper.Map(d.N, mapper.Options{K: 6, Boundaries: d.Boundaries})
	if err != nil {
		b.Fatal(err)
	}
	phys := mapper.Pack(r, mapper.PackPolicy{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(d.N, phys, AssembleOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXiMapping(b *testing.B) {
	tt := boolfn.TT(0x123456789ABCDEF0)
	for i := 0; i < b.N; i++ {
		tt = XiInv(Xi(tt))
	}
	_ = tt
}

func TestExtractLUTsFindsAllPlaced(t *testing.T) {
	img, _, r := testImage(t)
	luts, err := ExtractLUTs(img)
	if err != nil {
		t.Fatal(err)
	}
	// Every mapped LUT whose INIT is non-zero must be extracted with the
	// right truth table.
	wantByFn := map[boolfn.TT]int{}
	for _, lut := range r.LUTs {
		if lut.Fn != boolfn.Const0 {
			wantByFn[lut.Fn]++
		}
	}
	gotByFn := map[boolfn.TT]int{}
	for _, e := range luts {
		gotByFn[e.Init]++
	}
	for fn, n := range wantByFn {
		if gotByFn[fn] < n {
			t.Fatalf("extraction found %d LUTs with table %v, want ≥ %d", gotByFn[fn], fn, n)
		}
	}
	if len(luts) != len(r.LUTs) {
		t.Fatalf("extracted %d LUTs, mapping has %d", len(luts), len(r.LUTs))
	}
}

func TestHistogramCensus(t *testing.T) {
	img, _, _ := testImage(t)
	luts, err := ExtractLUTs(img)
	if err != nil {
		t.Fatal(err)
	}
	hist := Histogram(luts)
	total := 0
	for _, n := range hist {
		total += n
	}
	if total != len(luts) {
		t.Fatal("histogram does not partition the extracted LUTs")
	}
	// The f2 class must appear at least 32 times (the paper's LUT1s).
	f2 := boolfn.PClassCanon(boolfn.MustParse("(a1^a2^a3)a4a5!a6"))
	if hist[f2] < 32 {
		t.Fatalf("census shows %d f2-class LUTs, want ≥ 32", hist[f2])
	}
}
