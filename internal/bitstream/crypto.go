package bitstream

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// Fig. 1 of the paper: 7-series authenticated bitstreams use
// MAC-then-encrypt. The bitstream body is authenticated with an HMAC
// whose key K_A is stored *inside the encrypted region, in two places,
// in plaintext*; the result is encrypted with K_E (held on-chip, but
// extractable by published side-channel attacks). This file implements
// that envelope: Seal produces an encrypted image, Open recovers the
// plain packets and — exactly as the attack does — the authentication
// key, which suffices to re-authenticate a modified body.

// KeySize is the AES-256 / HMAC-SHA256 key size in bytes.
const KeySize = 32

const (
	encMagic = 0x53424D45 // "SBME"
	hmacSize = 32
)

// Seal wraps plain bitstream packets in the MAC-then-encrypt envelope:
//
//	magic || CBC-IV || AES-256-CBC_{K_E}( K_A || packets || K_A || HMAC_{K_A}(packets) )
//
// The encrypted region corresponds to the blue area of Fig. 1. cbcIV is
// a fixed public parameter of the image (16 bytes).
func Seal(packets []byte, kE, kA [KeySize]byte, cbcIV [16]byte) ([]byte, error) {
	mac := hmac.New(sha256.New, kA[:])
	mac.Write(packets)
	tag := mac.Sum(nil)

	var body bytes.Buffer
	body.Write(kA[:])
	var lenWord [4]byte
	binary.BigEndian.PutUint32(lenWord[:], uint32(len(packets)))
	body.Write(lenWord[:])
	body.Write(packets)
	body.Write(kA[:])
	body.Write(tag)
	// PKCS#7 pad to the AES block size.
	pad := aes.BlockSize - body.Len()%aes.BlockSize
	for i := 0; i < pad; i++ {
		body.WriteByte(byte(pad))
	}

	block, err := aes.NewCipher(kE[:])
	if err != nil {
		return nil, err
	}
	ct := make([]byte, body.Len())
	cipher.NewCBCEncrypter(block, cbcIV[:]).CryptBlocks(ct, body.Bytes())

	out := make([]byte, 0, 4+16+len(ct))
	var magic [4]byte
	binary.BigEndian.PutUint32(magic[:], encMagic)
	out = append(out, magic[:]...)
	out = append(out, cbcIV[:]...)
	out = append(out, ct...)
	return out, nil
}

// IsEncrypted reports whether b carries the encrypted envelope.
func IsEncrypted(b []byte) bool {
	return len(b) >= 4 && binary.BigEndian.Uint32(b) == encMagic
}

// Open decrypts an encrypted image with K_E and returns the plain
// packets, the recovered authentication key K_A (stored in plaintext
// inside the envelope — the paper's Fig. 1 observation), and the HMAC
// validity. Invalid HMAC still returns the content: the attacker wants
// K_A regardless, while the device rejects (BOOTSTS error).
func Open(b []byte, kE [KeySize]byte) (packets []byte, kA [KeySize]byte, macOK bool, err error) {
	if !IsEncrypted(b) {
		return nil, kA, false, errors.New("bitstream: not an encrypted image")
	}
	if (len(b)-20)%aes.BlockSize != 0 || len(b) < 20+aes.BlockSize {
		return nil, kA, false, errors.New("bitstream: malformed encrypted image")
	}
	var cbcIV [16]byte
	copy(cbcIV[:], b[4:20])
	block, err := aes.NewCipher(kE[:])
	if err != nil {
		return nil, kA, false, err
	}
	pt := make([]byte, len(b)-20)
	cipher.NewCBCDecrypter(block, cbcIV[:]).CryptBlocks(pt, b[20:])
	pad := int(pt[len(pt)-1])
	if pad < 1 || pad > aes.BlockSize || pad > len(pt) {
		return nil, kA, false, errors.New("bitstream: bad padding (wrong K_E?)")
	}
	pt = pt[:len(pt)-pad]
	if len(pt) < KeySize+4+KeySize+hmacSize {
		return nil, kA, false, errors.New("bitstream: encrypted body too short")
	}
	copy(kA[:], pt[:KeySize])
	n := int(binary.BigEndian.Uint32(pt[KeySize:]))
	rest := pt[KeySize+4:]
	if n < 0 || n+KeySize+hmacSize > len(rest) {
		return nil, kA, false, errors.New("bitstream: bad body length (wrong K_E?)")
	}
	packets = rest[:n]
	var kA2 [KeySize]byte
	copy(kA2[:], rest[n:])
	tag := rest[n+KeySize : n+KeySize+hmacSize]
	mac := hmac.New(sha256.New, kA[:])
	mac.Write(packets)
	macOK = hmac.Equal(tag, mac.Sum(nil)) && kA == kA2
	return packets, kA, macOK, nil
}

// Reseal builds a fresh envelope around modified packets reusing the
// recovered K_A — the final step of the attack on an encrypted
// bitstream: recompute the HMAC for B*, re-encrypt, load.
func Reseal(packets []byte, kE, kA [KeySize]byte, cbcIV [16]byte) ([]byte, error) {
	return Seal(packets, kE, kA, cbcIV)
}
