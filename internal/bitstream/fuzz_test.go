package bitstream

import (
	"testing"
)

// Fuzzers harden the parsers that face attacker-controlled bytes: the
// packet walker, the FDRI region header and the design description. The
// invariant under fuzz is "no panic, no out-of-range slicing"; valid
// inputs additionally round-trip.

func FuzzParsePackets(f *testing.F) {
	img, _, _ := testImage(f)
	f.Add(img)
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePackets(data)
		if err != nil {
			return
		}
		// Offsets reported by a successful parse must be in range.
		if p.FDRIOffset < 0 || p.FDRIOffset+p.FDRILen > len(data) {
			t.Fatalf("FDRI region out of range: %d+%d > %d", p.FDRIOffset, p.FDRILen, len(data))
		}
		_ = p.FDRI(data)
		_ = CheckCRC(data)
	})
}

func FuzzParseRegions(f *testing.F) {
	img, _, _ := testImage(f)
	p, err := ParsePackets(img)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(p.FDRI(img))
	f.Add(make([]byte, FrameBytes))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ParseRegions(data)
		if err != nil {
			return
		}
		if r.TotalLen > len(data) || r.DescOff+r.DescLen > len(data) {
			t.Fatal("regions exceed data")
		}
	})
}

func FuzzUnmarshalDescription(f *testing.F) {
	f.Add(MarshalDescription(&Description{NumNets: 3,
		Ports: []Port{{Name: "a", Dir: In, Net: 2}}}))
	f.Add([]byte{0x53, 0x42, 0x4D, 0x41})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := UnmarshalDescription(data)
		if err != nil {
			return
		}
		// A successful parse must re-marshal without panicking.
		_ = MarshalDescription(d)
	})
}

func FuzzOpenEnvelope(f *testing.F) {
	var kE, kA [KeySize]byte
	var iv [16]byte
	enc, err := Seal([]byte("payload"), kE, kA, iv)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte{0x53, 0x42, 0x4D, 0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _, _ = Open(data, kE)
	})
}
