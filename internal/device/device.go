// Package device simulates the victim FPGA. An FPGA instance configures
// itself exclusively from raw bitstream bytes — parsing packets, checking
// the configuration CRC (or the HMAC of an encrypted image), extracting
// LUT truth tables from the CLB frames and block-RAM content from the
// BRAM frames — and then executes the configured circuit cycle-
// accurately. Because the LUT logic is re-read from the bytes on every
// Load, bitstream modifications change device behaviour exactly as on
// real hardware, which is the property the attack exploits.
//
// The package also models the attack surface of Section IV-A: the
// bitstream can be probed from flash (ReadFlash), and the AES bitstream
// key K_E can be recovered through a side-channel oracle standing in for
// the published power-analysis attacks [16]–[18].
package device

import (
	"encoding/binary"
	"errors"
	"fmt"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/obs"
)

// BootStatus mirrors the configuration status signals the paper
// mentions: INIT_B goes low on a CRC mismatch; HMAC failures of
// encrypted images are latched in the BOOTSTS register.
type BootStatus struct {
	// InitBLow reports a configuration abort due to CRC mismatch.
	InitBLow bool
	// BootstsError reports an HMAC authentication failure.
	BootstsError bool
	// Configured reports a successful load.
	Configured bool
}

// FPGA is a simulated SRAM-based FPGA with an optional eFuse-held
// bitstream decryption key.
type FPGA struct {
	kE      [bitstream.KeySize]byte
	flash   []byte // external configuration memory, as probed
	fdri    []byte // live frame region (for readback/partial reconfig)
	status  BootStatus
	loaded  bool
	desc    *bitstream.Description
	lutTT   []boolfn.TT
	bramTab [][]uint64
	inPins  map[string]uint32
	outPins map[string]uint32
	nets    []bool
	ffState []bool
	dirty   bool
	// tel optionally records configuration-path spans and event counters
	// (SetTelemetry; nil-safe, zero overhead when unset).
	tel *obs.Telemetry
}

// SetTelemetry attaches a telemetry handle: Load, PartialReconfig and
// Readback then record device.* spans and counters. Core attack code
// forwards its handle here through the Victim interface assertion.
func (f *FPGA) SetTelemetry(tel *obs.Telemetry) { f.tel = tel }

// New creates a device whose eFuses hold kE (zero for unencrypted use).
func New(kE [bitstream.KeySize]byte) *FPGA {
	return &FPGA{kE: kE}
}

// Program writes an image into the external flash and configures the
// device from it, like a production programmer would.
func (f *FPGA) Program(img []byte) error {
	f.flash = append([]byte(nil), img...)
	return f.Load(img)
}

// ReadFlash models the paper's bitstream extraction: "reading the
// bitstream with a probe when it is transferred from the Flash memory to
// the FPGA during configuration".
func (f *FPGA) ReadFlash() []byte {
	return append([]byte(nil), f.flash...)
}

// SideChannelKey is the stand-in for the published side-channel attacks
// recovering the bitstream encryption key K_E from the configuration
// engine's power traces. See DESIGN.md for the substitution rationale.
func (f *FPGA) SideChannelKey() [bitstream.KeySize]byte { return f.kE }

// Load configures the device from a bitstream. Encrypted images are
// decrypted with the eFuse key and authenticated (HMAC failure aborts
// configuration, as reported in BOOTSTS); plain images are CRC checked
// (mismatch pulls INIT_B low and aborts). Configuration is atomic: a
// failed Load leaves a cleared, unconfigured fabric — never a partially
// decoded one — mirroring the house-cleaning pass real devices run
// before writing frames.
func (f *FPGA) Load(img []byte) error {
	span := f.tel.StartSpan("device.load", obs.KV("bytes", len(img)))
	defer span.End()
	f.tel.Counter("device.loads").Inc()
	f.loaded = false
	f.status = BootStatus{}
	f.clear() // full reconfiguration starts from a cleared fabric
	packets := img
	if bitstream.IsEncrypted(img) {
		plain, _, macOK, err := bitstream.Open(img, f.kE)
		if err != nil {
			f.status.BootstsError = true
			f.tel.Counter("device.load_errors").Inc()
			return fmt.Errorf("device: decryption failed: %w", err)
		}
		if !macOK {
			f.status.BootstsError = true
			f.tel.Counter("device.load_errors").Inc()
			return errors.New("device: HMAC verification failed (BOOTSTS=1), configuration aborted")
		}
		packets = plain
	} else if err := bitstream.CheckCRC(img); err != nil {
		f.status.InitBLow = true
		f.tel.Counter("device.load_errors").Inc()
		return fmt.Errorf("device: %w", err)
	}
	p, err := bitstream.ParsePackets(packets)
	if err != nil {
		f.tel.Counter("device.load_errors").Inc()
		return fmt.Errorf("device: %w", err)
	}
	cfg, err := decodeConfig(p.FDRI(packets))
	if err != nil {
		f.tel.Counter("device.load_errors").Inc()
		return err
	}
	f.commit(cfg, false)
	f.loaded = true
	f.status.Configured = true
	return nil
}

// clear wipes the live configuration.
func (f *FPGA) clear() {
	f.desc = nil
	f.lutTT = nil
	f.bramTab = nil
	f.inPins = nil
	f.outPins = nil
	f.nets = nil
	f.ffState = nil
	f.fdri = nil
	f.dirty = false
}

// config is a fully decoded frame region, staged before being committed
// to the live fabric.
type config struct {
	desc    *bitstream.Description
	lutTT   []boolfn.TT
	bramTab [][]uint64
	fdri    []byte // owned copy
}

// decodeConfig decodes a frame region without touching the live
// configuration, so errors cannot leave a partially-written fabric.
func decodeConfig(fdri []byte) (*config, error) {
	regions, err := bitstream.ParseRegions(fdri)
	if err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	desc, err := bitstream.UnmarshalDescription(fdri[regions.DescOff : regions.DescOff+regions.DescLen])
	if err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	clb := fdri[regions.CLBOff : regions.CLBOff+regions.CLBLen]
	lutTT := make([]boolfn.TT, len(desc.LUTs))
	for i, rec := range desc.LUTs {
		tt, err := bitstream.ReadLUT(clb, rec.Loc)
		if err != nil {
			return nil, fmt.Errorf("device: LUT %d: %w", i, err)
		}
		lutTT[i] = tt
	}
	bram := fdri[regions.BRAMOff : regions.BRAMOff+regions.BRAMLen]
	bramTab := make([][]uint64, len(desc.BRAMs))
	for i, rec := range desc.BRAMs {
		entries := 1 << len(rec.Addr)
		if rec.ContentOff+8*entries > len(bram) {
			return nil, fmt.Errorf("device: BRAM %d content out of range", i)
		}
		tab := make([]uint64, entries)
		for e := 0; e < entries; e++ {
			tab[e] = binary.BigEndian.Uint64(bram[rec.ContentOff+8*e:])
		}
		bramTab[i] = tab
	}
	if err := validate(desc); err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	return &config{
		desc:    desc,
		lutTT:   lutTT,
		bramTab: bramTab,
		fdri:    append([]byte(nil), fdri...),
	}, nil
}

// commit installs a staged configuration. Partial reconfiguration
// preserves register state when the register structure is unchanged; a
// full (re)configuration resets it.
func (f *FPGA) commit(cfg *config, preserveFF bool) {
	f.desc = cfg.desc
	f.lutTT = cfg.lutTT
	f.bramTab = cfg.bramTab
	f.fdri = cfg.fdri
	f.inPins = map[string]uint32{}
	f.outPins = map[string]uint32{}
	for _, port := range cfg.desc.Ports {
		if port.Dir == bitstream.In {
			f.inPins[port.Name] = port.Net
		} else {
			f.outPins[port.Name] = port.Net
		}
	}
	f.nets = make([]bool, cfg.desc.NumNets)
	if !preserveFF || len(f.ffState) != len(cfg.desc.FFs) {
		f.ffState = make([]bool, len(cfg.desc.FFs))
		f.Reset()
	}
	f.dirty = true
}

// PartialReconfig overwrites one configuration frame of the running
// device — the JTAG FAR + FDRI single-frame write. Untouched registers
// keep their state, so faults can be injected without a full
// reconfiguration cycle. Refused for secured (encrypted-boot) devices,
// as on real silicon. The write is atomic: the patched region is decoded
// into a staged configuration first, so a rejected frame leaves the
// running configuration — including register state and readback —
// completely untouched.
func (f *FPGA) PartialReconfig(frame int, data []byte) error {
	span := f.tel.StartSpan("device.partial_reconfig", obs.KV("frame", frame))
	defer span.End()
	f.tel.Counter("device.partial_reconfigs").Inc()
	if !f.loaded {
		return errors.New("device: partial reconfiguration before configuration")
	}
	if bitstream.IsEncrypted(f.flash) {
		return errors.New("device: partial reconfiguration disabled for encrypted configurations")
	}
	if len(data) != bitstream.FrameBytes {
		return fmt.Errorf("device: frame write must be %d bytes, got %d", bitstream.FrameBytes, len(data))
	}
	if frame < 0 || (frame+1)*bitstream.FrameBytes > len(f.fdri) {
		return fmt.Errorf("device: frame address %d out of range", frame)
	}
	staged := append([]byte(nil), f.fdri...)
	copy(staged[frame*bitstream.FrameBytes:], data)
	cfg, err := decodeConfig(staged)
	if err != nil {
		return err
	}
	f.commit(cfg, true)
	return nil
}

// Status returns the boot status of the last Load attempt.
func (f *FPGA) Status() BootStatus { return f.status }

// Readback reconstructs the current configuration frames from device
// state — the 7-series configuration readback path (FDRO register), the
// second bitstream-access primitive of the attack model besides the
// flash probe. The returned bytes are the FDRI frame region: header
// frame, CLB frames with the *currently loaded* LUT truth tables,
// description frames and BRAM content. Readback of an encrypted-boot
// device would be disabled on real silicon; our model mirrors that by
// refusing when the last image was encrypted.
func (f *FPGA) Readback() ([]byte, error) {
	span := f.tel.StartSpan("device.readback")
	defer span.End()
	f.tel.Counter("device.readbacks").Inc()
	if !f.loaded {
		return nil, errors.New("device: readback before configuration")
	}
	if bitstream.IsEncrypted(f.flash) {
		return nil, errors.New("device: readback disabled for encrypted configurations (SBITS)")
	}
	descBytes := bitstream.MarshalDescription(f.desc)
	descFrames := (len(descBytes) + bitstream.FrameBytes - 1) / bitstream.FrameBytes
	total := 1 + f.desc.CLBFrames + descFrames + f.desc.BRAMFrames
	fdri := make([]byte, total*bitstream.FrameBytes)
	bitstream.WriteFDRIHeader(fdri[:bitstream.FrameBytes],
		f.desc.CLBFrames, descFrames, f.desc.BRAMFrames, len(descBytes))
	clb := fdri[bitstream.FrameBytes : bitstream.FrameBytes*(1+f.desc.CLBFrames)]
	for i, rec := range f.desc.LUTs {
		if err := bitstream.WriteLUT(clb, rec.Loc, f.lutTT[i]); err != nil {
			return nil, err
		}
	}
	copy(fdri[bitstream.FrameBytes*(1+f.desc.CLBFrames):], descBytes)
	bram := fdri[bitstream.FrameBytes*(1+f.desc.CLBFrames+descFrames):]
	for i, rec := range f.desc.BRAMs {
		off := rec.ContentOff
		for _, w := range f.bramTab[i] {
			binary.BigEndian.PutUint64(bram[off:], w)
			off += 8
		}
	}
	return fdri, nil
}

// validate checks net references before trusting a description.
func validate(d *bitstream.Description) error {
	ok := func(id uint32) bool { return id < d.NumNets }
	for _, p := range d.Ports {
		if !ok(p.Net) {
			return fmt.Errorf("port %s references invalid net", p.Name)
		}
	}
	for i, ff := range d.FFs {
		if !ok(ff.Q) || !ok(ff.D) {
			return fmt.Errorf("flip-flop %d references invalid net", i)
		}
	}
	for i, l := range d.LUTs {
		if !ok(l.O6) || (l.O5 != bitstream.NoNet && !ok(l.O5)) {
			return fmt.Errorf("LUT %d output invalid", i)
		}
		if len(l.Inputs) > 6 {
			return fmt.Errorf("LUT %d has %d inputs", i, len(l.Inputs))
		}
		for _, in := range l.Inputs {
			if !ok(in) {
				return fmt.Errorf("LUT %d input invalid", i)
			}
		}
	}
	for i, e := range d.Eval {
		var n int
		switch e.Kind {
		case bitstream.EvalLUT:
			n = len(d.LUTs)
		case bitstream.EvalBRAM:
			n = len(d.BRAMs)
		case bitstream.EvalAdder:
			n = len(d.Adders)
		default:
			return fmt.Errorf("eval item %d has unknown kind", i)
		}
		if int(e.Index) >= n {
			return fmt.Errorf("eval item %d index out of range", i)
		}
	}
	return nil
}

// Reset returns all registers to their configuration-time init values.
func (f *FPGA) Reset() {
	for i, ff := range f.desc.FFs {
		f.ffState[i] = ff.Init
	}
	f.dirty = true
}

// SetInput drives an input pin by name.
func (f *FPGA) SetInput(name string, v bool) {
	net, ok := f.inPins[name]
	if !ok {
		panic(fmt.Sprintf("device: no input pin %q", name))
	}
	f.nets[net] = v
	f.dirty = true
}

// settle evaluates the combinational fabric for the current inputs and
// register state.
func (f *FPGA) settle() {
	// Constants occupy nets 0 and 1 by construction of the assembler.
	if len(f.nets) > 1 {
		f.nets[0] = false
		f.nets[1] = true
	}
	for i, ff := range f.desc.FFs {
		f.nets[ff.Q] = f.ffState[i]
	}
	for _, item := range f.desc.Eval {
		switch item.Kind {
		case bitstream.EvalLUT:
			rec := &f.desc.LUTs[item.Index]
			var m uint
			for i, in := range rec.Inputs {
				if f.nets[in] {
					m |= 1 << uint(i)
				}
			}
			tt := f.lutTT[item.Index]
			if rec.O5 != bitstream.NoNet {
				// Fractured LUT: a6 selects the half (Fig 4).
				f.nets[rec.O5] = tt.Eval(m &^ (1 << 5))
				f.nets[rec.O6] = tt.Eval(m | 1<<5)
			} else {
				f.nets[rec.O6] = tt.Eval(m)
			}
		case bitstream.EvalBRAM:
			rec := &f.desc.BRAMs[item.Index]
			addr := 0
			for i, a := range rec.Addr {
				if f.nets[a] {
					addr |= 1 << uint(i)
				}
			}
			word := f.bramTab[item.Index][addr]
			for b, out := range rec.Out {
				f.nets[out] = word>>uint(b)&1 == 1
			}
		case bitstream.EvalAdder:
			rec := &f.desc.Adders[item.Index]
			carry := false
			for i := range rec.A {
				av, bv := f.nets[rec.A[i]], f.nets[rec.B[i]]
				f.nets[rec.Sum[i]] = av != bv != carry
				carry = (av && bv) || (carry && (av != bv))
			}
		}
	}
	f.dirty = false
}

// Clock advances one cycle: evaluate, then latch every flip-flop.
func (f *FPGA) Clock() {
	if !f.loaded {
		panic("device: Clock before successful Load")
	}
	f.settle()
	for i, ff := range f.desc.FFs {
		f.ffState[i] = f.nets[ff.D]
	}
	f.dirty = true
}

// Read samples an output pin after the last clock edge.
func (f *FPGA) Read(name string) bool {
	net, ok := f.outPins[name]
	if !ok {
		panic(fmt.Sprintf("device: no output pin %q", name))
	}
	if f.dirty {
		f.settle()
	}
	return f.nets[net]
}

// Loaded reports whether the device currently holds a valid
// configuration.
func (f *FPGA) Loaded() bool { return f.loaded }

// LUTCount reports the number of configured physical LUTs (diagnostics).
func (f *FPGA) LUTCount() int { return len(f.desc.LUTs) }
