// Package device simulates the victim FPGA. An FPGA instance configures
// itself exclusively from raw bitstream bytes — parsing packets, checking
// the configuration CRC (or the HMAC of an encrypted image), extracting
// LUT truth tables from the CLB frames and block-RAM content from the
// BRAM frames — and then executes the configured circuit cycle-
// accurately. Because the LUT logic is re-read from the bytes on every
// Load, bitstream modifications change device behaviour exactly as on
// real hardware, which is the property the attack exploits.
//
// The package also models the attack surface of Section IV-A: the
// bitstream can be probed from flash (ReadFlash), and the AES bitstream
// key K_E can be recovered through a side-channel oracle standing in for
// the published power-analysis attacks [16]–[18].
package device

import (
	"encoding/binary"
	"errors"
	"fmt"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/obs"
)

// BootStatus mirrors the configuration status signals the paper
// mentions: INIT_B goes low on a CRC mismatch; HMAC failures of
// encrypted images are latched in the BOOTSTS register.
type BootStatus struct {
	// InitBLow reports a configuration abort due to CRC mismatch.
	InitBLow bool
	// BootstsError reports an HMAC authentication failure.
	BootstsError bool
	// Configured reports a successful load.
	Configured bool
}

// FPGA is a simulated SRAM-based FPGA with an optional eFuse-held
// bitstream decryption key.
type FPGA struct {
	kE      [bitstream.KeySize]byte
	flash   []byte // external configuration memory, as probed
	fdri    []byte // live frame region (for readback/partial reconfig)
	status  BootStatus
	loaded  bool
	desc    *bitstream.Description
	lutTT   []boolfn.TT
	bramTab [][]uint64
	inPins  map[string]uint32
	outPins map[string]uint32
	// prog is the configuration compiled to a flat program; st is the
	// 1-lane evaluator state the scalar clock path runs on. Batches
	// share prog and build their own states.
	prog  *Program
	st    *progState
	dirty bool
	// tel optionally records configuration-path spans and event counters
	// (SetTelemetry; nil-safe, zero overhead when unset).
	tel *obs.Telemetry
}

// SetTelemetry attaches a telemetry handle: Load, PartialReconfig and
// Readback then record device.* spans and counters. Core attack code
// forwards its handle here through the Victim interface assertion.
func (f *FPGA) SetTelemetry(tel *obs.Telemetry) { f.tel = tel }

// New creates a device whose eFuses hold kE (zero for unencrypted use).
func New(kE [bitstream.KeySize]byte) *FPGA {
	return &FPGA{kE: kE}
}

// Program writes an image into the external flash and configures the
// device from it, like a production programmer would.
func (f *FPGA) Program(img []byte) error {
	f.flash = append([]byte(nil), img...)
	return f.Load(img)
}

// ReadFlash models the paper's bitstream extraction: "reading the
// bitstream with a probe when it is transferred from the Flash memory to
// the FPGA during configuration".
func (f *FPGA) ReadFlash() []byte {
	return append([]byte(nil), f.flash...)
}

// SideChannelKey is the stand-in for the published side-channel attacks
// recovering the bitstream encryption key K_E from the configuration
// engine's power traces. See DESIGN.md for the substitution rationale.
func (f *FPGA) SideChannelKey() [bitstream.KeySize]byte { return f.kE }

// Load configures the device from a bitstream. Encrypted images are
// decrypted with the eFuse key and authenticated (HMAC failure aborts
// configuration, as reported in BOOTSTS); plain images are CRC checked
// (mismatch pulls INIT_B low and aborts). Configuration is atomic: a
// failed Load leaves a cleared, unconfigured fabric — never a partially
// decoded one — mirroring the house-cleaning pass real devices run
// before writing frames.
func (f *FPGA) Load(img []byte) error {
	span := f.tel.StartSpan("device.load", obs.KV("bytes", len(img)))
	defer span.End()
	f.tel.Counter("device.loads").Inc()
	f.loaded = false
	f.status = BootStatus{}
	f.clear() // full reconfiguration starts from a cleared fabric
	packets := img
	if bitstream.IsEncrypted(img) {
		plain, _, macOK, err := bitstream.Open(img, f.kE)
		if err != nil {
			f.status.BootstsError = true
			f.tel.Counter("device.load_errors").Inc()
			return fmt.Errorf("device: decryption failed: %w", err)
		}
		if !macOK {
			f.status.BootstsError = true
			f.tel.Counter("device.load_errors").Inc()
			return errors.New("device: HMAC verification failed (BOOTSTS=1), configuration aborted")
		}
		packets = plain
	} else if err := bitstream.CheckCRC(img); err != nil {
		f.status.InitBLow = true
		f.tel.Counter("device.load_errors").Inc()
		return fmt.Errorf("device: %w", err)
	}
	p, err := bitstream.ParsePackets(packets)
	if err != nil {
		f.tel.Counter("device.load_errors").Inc()
		return fmt.Errorf("device: %w", err)
	}
	cfg, err := decodeConfig(p.FDRI(packets))
	if err != nil {
		f.tel.Counter("device.load_errors").Inc()
		return err
	}
	f.commit(cfg, false)
	f.loaded = true
	f.status.Configured = true
	return nil
}

// clear wipes the live configuration.
func (f *FPGA) clear() {
	f.desc = nil
	f.lutTT = nil
	f.bramTab = nil
	f.inPins = nil
	f.outPins = nil
	f.prog = nil
	f.st = nil
	f.fdri = nil
	f.dirty = false
}

// config is a fully decoded frame region, staged before being committed
// to the live fabric.
type config struct {
	desc    *bitstream.Description
	lutTT   []boolfn.TT
	bramTab [][]uint64
	fdri    []byte // owned copy
}

// decodeConfig decodes a frame region without touching the live
// configuration, so errors cannot leave a partially-written fabric.
func decodeConfig(fdri []byte) (*config, error) {
	regions, err := bitstream.ParseRegions(fdri)
	if err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	desc, err := bitstream.UnmarshalDescription(fdri[regions.DescOff : regions.DescOff+regions.DescLen])
	if err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	clb := fdri[regions.CLBOff : regions.CLBOff+regions.CLBLen]
	lutTT := make([]boolfn.TT, len(desc.LUTs))
	for i, rec := range desc.LUTs {
		tt, err := bitstream.ReadLUT(clb, rec.Loc)
		if err != nil {
			return nil, fmt.Errorf("device: LUT %d: %w", i, err)
		}
		lutTT[i] = tt
	}
	bram := fdri[regions.BRAMOff : regions.BRAMOff+regions.BRAMLen]
	bramTab := make([][]uint64, len(desc.BRAMs))
	for i, rec := range desc.BRAMs {
		entries := 1 << len(rec.Addr)
		if rec.ContentOff+8*entries > len(bram) {
			return nil, fmt.Errorf("device: BRAM %d content out of range", i)
		}
		tab := make([]uint64, entries)
		for e := 0; e < entries; e++ {
			tab[e] = binary.BigEndian.Uint64(bram[rec.ContentOff+8*e:])
		}
		bramTab[i] = tab
	}
	if err := validate(desc); err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	return &config{
		desc:    desc,
		lutTT:   lutTT,
		bramTab: bramTab,
		fdri:    append([]byte(nil), fdri...),
	}, nil
}

// commit installs a staged configuration, compiling it into a fresh
// Program. Partial reconfiguration preserves register state when the
// register structure is unchanged; a full (re)configuration resets it.
func (f *FPGA) commit(cfg *config, preserveFF bool) {
	f.desc = cfg.desc
	f.lutTT = cfg.lutTT
	f.bramTab = cfg.bramTab
	f.fdri = cfg.fdri
	f.inPins = map[string]uint32{}
	f.outPins = map[string]uint32{}
	for _, port := range cfg.desc.Ports {
		if port.Dir == bitstream.In {
			f.inPins[port.Name] = port.Net
		} else {
			f.outPins[port.Name] = port.Net
		}
	}
	old := f.st
	f.prog = compile(cfg.desc, cfg.lutTT, f.tel)
	f.st = newProgState(f.prog, cfg.lutTT, cfg.bramTab, 1)
	if preserveFF && old != nil && len(old.ff) == len(f.st.ff) {
		old.materializeFF()
		copy(f.st.ff, old.ff)
	}
	f.dirty = true
}

// CompileStats reports the statistics of the currently loaded
// configuration's compiled program (zero when unconfigured).
func (f *FPGA) CompileStats() CompileStats {
	if f.prog == nil {
		return CompileStats{}
	}
	return f.prog.stats
}

// PartialReconfig overwrites one configuration frame of the running
// device — the JTAG FAR + FDRI single-frame write. Untouched registers
// keep their state, so faults can be injected without a full
// reconfiguration cycle. Refused for secured (encrypted-boot) devices,
// as on real silicon. The write is atomic: the patched region is decoded
// into a staged configuration first, so a rejected frame leaves the
// running configuration — including register state and readback —
// completely untouched.
func (f *FPGA) PartialReconfig(frame int, data []byte) error {
	span := f.tel.StartSpan("device.partial_reconfig", obs.KV("frame", frame))
	defer span.End()
	f.tel.Counter("device.partial_reconfigs").Inc()
	if !f.loaded {
		return errors.New("device: partial reconfiguration before configuration")
	}
	if bitstream.IsEncrypted(f.flash) {
		return errors.New("device: partial reconfiguration disabled for encrypted configurations")
	}
	if len(data) != bitstream.FrameBytes {
		return fmt.Errorf("device: frame write must be %d bytes, got %d", bitstream.FrameBytes, len(data))
	}
	if frame < 0 || (frame+1)*bitstream.FrameBytes > len(f.fdri) {
		return fmt.Errorf("device: frame address %d out of range", frame)
	}
	staged := append([]byte(nil), f.fdri...)
	copy(staged[frame*bitstream.FrameBytes:], data)
	cfg, err := decodeConfig(staged)
	if err != nil {
		return err
	}
	// Patch-only fast path: a CLB or BRAM frame write cannot change the
	// shared structure, so instead of recompiling we rewrite only the
	// affected instructions' operand tables in the running state. Header
	// and description frames fall back to a full commit + recompile.
	if kind, ok := f.frameKind(frame); ok && f.prog != nil {
		switch kind {
		case bitstream.FrameCLB:
			patched := 0
			for i, tt := range cfg.lutTT {
				if tt != f.lutTT[i] {
					f.st.patchLUTAll(i, tt)
					patched++
				}
			}
			f.tel.Counter("device.patched_insns").Add(int64(patched))
			f.adoptConfig(cfg)
			return nil
		case bitstream.FrameBRAM:
			touched := false
			for i, tab := range cfg.bramTab {
				if !equalTabs(tab, f.bramTab[i]) {
					f.st.setTabAll(i, tab)
					touched = true
				}
			}
			if touched {
				f.st.prologue()
			}
			f.adoptConfig(cfg)
			return nil
		}
	}
	f.commit(cfg, true)
	return nil
}

// frameKind classifies a frame index of the live FDRI region.
func (f *FPGA) frameKind(frame int) (bitstream.FrameRegion, bool) {
	regions, err := bitstream.ParseRegions(f.fdri)
	if err != nil {
		return 0, false
	}
	kind, _, err := regions.ClassifyFrame(frame)
	return kind, err == nil
}

// adoptConfig installs the staged data of a patch-only partial
// reconfiguration: the structure is unchanged, so the compiled program
// and evaluator state stay, already patched in place.
func (f *FPGA) adoptConfig(cfg *config) {
	f.desc = f.prog.desc // structurally identical; keep the compiled one
	f.lutTT = cfg.lutTT
	f.bramTab = cfg.bramTab
	f.fdri = cfg.fdri
	f.dirty = true
}

func equalTabs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Status returns the boot status of the last Load attempt.
func (f *FPGA) Status() BootStatus { return f.status }

// Readback reconstructs the current configuration frames from device
// state — the 7-series configuration readback path (FDRO register), the
// second bitstream-access primitive of the attack model besides the
// flash probe. The returned bytes are the FDRI frame region: header
// frame, CLB frames with the *currently loaded* LUT truth tables,
// description frames and BRAM content. Readback of an encrypted-boot
// device would be disabled on real silicon; our model mirrors that by
// refusing when the last image was encrypted.
func (f *FPGA) Readback() ([]byte, error) {
	span := f.tel.StartSpan("device.readback")
	defer span.End()
	f.tel.Counter("device.readbacks").Inc()
	if !f.loaded {
		return nil, errors.New("device: readback before configuration")
	}
	if bitstream.IsEncrypted(f.flash) {
		return nil, errors.New("device: readback disabled for encrypted configurations (SBITS)")
	}
	descBytes := bitstream.MarshalDescription(f.desc)
	descFrames := (len(descBytes) + bitstream.FrameBytes - 1) / bitstream.FrameBytes
	total := 1 + f.desc.CLBFrames + descFrames + f.desc.BRAMFrames
	fdri := make([]byte, total*bitstream.FrameBytes)
	bitstream.WriteFDRIHeader(fdri[:bitstream.FrameBytes],
		f.desc.CLBFrames, descFrames, f.desc.BRAMFrames, len(descBytes))
	clb := fdri[bitstream.FrameBytes : bitstream.FrameBytes*(1+f.desc.CLBFrames)]
	for i, rec := range f.desc.LUTs {
		if err := bitstream.WriteLUT(clb, rec.Loc, f.lutTT[i]); err != nil {
			return nil, err
		}
	}
	copy(fdri[bitstream.FrameBytes*(1+f.desc.CLBFrames):], descBytes)
	bram := fdri[bitstream.FrameBytes*(1+f.desc.CLBFrames+descFrames):]
	for i, rec := range f.desc.BRAMs {
		off := rec.ContentOff
		for _, w := range f.bramTab[i] {
			binary.BigEndian.PutUint64(bram[off:], w)
			off += 8
		}
	}
	return fdri, nil
}

// MaxNets is the fabric capacity: the largest net count a description
// may declare, mirroring the finite fabric of real silicon. It also
// guarantees every compiled register slot — nets, synthesis temporaries
// and clock-edge spill registers — fits the 16-bit operand fields of
// the flat instruction encoding.
const MaxNets = 16384

// validate checks net references before trusting a description.
func validate(d *bitstream.Description) error {
	if d.NumNets > MaxNets {
		return fmt.Errorf("description declares %d nets, fabric capacity is %d", d.NumNets, MaxNets)
	}
	ok := func(id uint32) bool { return id < d.NumNets }
	for _, p := range d.Ports {
		if !ok(p.Net) {
			return fmt.Errorf("port %s references invalid net", p.Name)
		}
	}
	for i, ff := range d.FFs {
		if !ok(ff.Q) || !ok(ff.D) {
			return fmt.Errorf("flip-flop %d references invalid net", i)
		}
	}
	for i, l := range d.LUTs {
		if !ok(l.O6) || (l.O5 != bitstream.NoNet && !ok(l.O5)) {
			return fmt.Errorf("LUT %d output invalid", i)
		}
		if len(l.Inputs) > 6 {
			return fmt.Errorf("LUT %d has %d inputs", i, len(l.Inputs))
		}
		for _, in := range l.Inputs {
			if !ok(in) {
				return fmt.Errorf("LUT %d input invalid", i)
			}
		}
	}
	for i, e := range d.Eval {
		var n int
		switch e.Kind {
		case bitstream.EvalLUT:
			n = len(d.LUTs)
		case bitstream.EvalBRAM:
			n = len(d.BRAMs)
		case bitstream.EvalAdder:
			n = len(d.Adders)
		default:
			return fmt.Errorf("eval item %d has unknown kind", i)
		}
		if int(e.Index) >= n {
			return fmt.Errorf("eval item %d index out of range", i)
		}
	}
	return nil
}

// Reset returns all registers to their configuration-time init values.
func (f *FPGA) Reset() {
	f.st.reset()
	f.dirty = true
}

// SetInput drives an input pin by name.
func (f *FPGA) SetInput(name string, v bool) {
	net, ok := f.inPins[name]
	if !ok {
		panic(fmt.Sprintf("device: no input pin %q", name))
	}
	if v {
		f.st.regs[net] = ^uint64(0)
	} else {
		f.st.regs[net] = 0
	}
	f.dirty = true
}

// Clock advances one cycle: evaluate the compiled program, then latch
// every flip-flop.
func (f *FPGA) Clock() {
	if !f.loaded {
		panic("device: Clock before successful Load")
	}
	f.st.clock()
	f.dirty = true
}

// Read samples an output pin after the last clock edge.
func (f *FPGA) Read(name string) bool {
	net, ok := f.outPins[name]
	if !ok {
		panic(fmt.Sprintf("device: no output pin %q", name))
	}
	if f.dirty {
		f.st.settle()
		f.dirty = false
	}
	return f.st.regs[net]&1 == 1
}

// Loaded reports whether the device currently holds a valid
// configuration.
func (f *FPGA) Loaded() bool { return f.loaded }

// LUTCount reports the number of configured physical LUTs (diagnostics).
func (f *FPGA) LUTCount() int { return len(f.desc.LUTs) }
