package device

import (
	"bytes"
	"strings"
	"testing"

	"snowbma/internal/bitstream"
	"snowbma/internal/hdl"
)

func expectPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, expected one containing %q", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v, expected a device message containing %q", r, substr)
		}
	}()
	fn()
}

// TestFailedLoadClearsConfiguration pins the atomicity of Load: a
// configuration that fails mid-decode must leave a cleared fabric, not
// the previous design with half-reset state. Before the staged-commit
// refactor, a failed Load kept the old description and pin maps while
// nulling register state, so Read() crashed with an index panic and
// SetInput silently drove stale nets.
func TestFailedLoadClearsConfiguration(t *testing.T) {
	img, _, _ := buildImage(t, false)
	f := New([bitstream.KeySize]byte{})
	if err := f.Program(img); err != nil {
		t.Fatal(err)
	}
	hdl.GenerateKeystream(f, testIV, 2) // exercise the configuration

	// A CRC-disabled image with a corrupted description region passes the
	// integrity check and fails deep inside configuration decoding.
	bad := append([]byte(nil), img...)
	if err := bitstream.DisableCRC(bad); err != nil {
		t.Fatal(err)
	}
	p, err := bitstream.ParsePackets(bad)
	if err != nil {
		t.Fatal(err)
	}
	fdri := p.FDRI(bad)
	regions, err := bitstream.ParseRegions(fdri)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		fdri[regions.DescOff+i] ^= 0xFF
	}
	if err := f.Load(bad); err == nil {
		t.Fatal("corrupted description accepted")
	}
	if f.Loaded() {
		t.Fatal("device reports loaded after failed Load")
	}
	if _, err := f.Readback(); err == nil {
		t.Fatal("readback allowed on unconfigured device")
	}
	expectPanic(t, "no output pin", func() { f.Read("z[0]") })
	expectPanic(t, "no input pin", func() { f.SetInput("run", true) })
	expectPanic(t, "Clock before successful Load", func() { f.Clock() })

	// The device recovers completely with a good image.
	if err := f.Load(img); err != nil {
		t.Fatal(err)
	}
	z := hdl.GenerateKeystream(f, testIV, 2)
	fresh := New([bitstream.KeySize]byte{})
	if err := fresh.Load(img); err != nil {
		t.Fatal(err)
	}
	if want := hdl.GenerateKeystream(fresh, testIV, 2); !equalWords(z, want) {
		t.Fatalf("recovered device diverges: %08x != %08x", z, want)
	}
}

// TestFailedPartialReconfigIsANoOp pins the atomicity of
// PartialReconfig: a rejected frame write must leave the running
// configuration, register state and readback untouched, so a device that
// survived a bad write behaves identically to one that never saw it.
func TestFailedPartialReconfigIsANoOp(t *testing.T) {
	img, _, _ := buildImage(t, false)
	mk := func() *FPGA {
		f := New([bitstream.KeySize]byte{})
		if err := f.Program(img); err != nil {
			t.Fatal(err)
		}
		return f
	}
	victim, control := mk(), mk()

	// Drive both devices into a mid-run state with live register
	// contents.
	partial := func(f *FPGA) {
		hdl.GenerateKeystream(f, testIV, 1)
		f.SetInput("run", true)
		f.Clock()
		f.Clock()
	}
	partial(victim)
	partial(control)

	before, err := victim.Readback()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the header frame: decoding the staged region must fail.
	garbage := make([]byte, bitstream.FrameBytes)
	if err := victim.PartialReconfig(0, garbage); err == nil {
		t.Fatal("garbage header frame accepted")
	}
	// Also a frame write that breaks the description region.
	descFrame := 0
	{
		p, err := bitstream.ParsePackets(img)
		if err != nil {
			t.Fatal(err)
		}
		regions, err := bitstream.ParseRegions(p.FDRI(img))
		if err != nil {
			t.Fatal(err)
		}
		descFrame = regions.DescOff / bitstream.FrameBytes
	}
	if err := victim.PartialReconfig(descFrame, garbage); err == nil {
		t.Fatal("garbage description frame accepted")
	}
	after, err := victim.Readback()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed partial reconfiguration changed the readback image")
	}

	// Register state must be untouched: both devices continue the clocked
	// run in lockstep.
	for c := 0; c < 8; c++ {
		victim.Clock()
		control.Clock()
		for b := 0; b < 32; b += 7 {
			name := "z[" + itoa(b) + "]"
			if victim.Read(name) != control.Read(name) {
				t.Fatalf("cycle %d: %s diverged after failed partial reconfiguration", c, name)
			}
		}
	}
}

func itoa(v int) string {
	if v >= 10 {
		return string(rune('0'+v/10)) + string(rune('0'+v%10))
	}
	return string(rune('0' + v))
}
