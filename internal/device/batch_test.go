package device

import (
	"bytes"
	"math/rand"
	"testing"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/hdl"
)

// batchFixture decodes the structural pieces of a base image that the
// batch tests need to craft candidate patches.
type batchFixture struct {
	img     []byte // CRC disabled so modified variants load scalar
	parsed  *bitstream.Parsed
	regions *bitstream.Regions
	desc    *bitstream.Description
}

func newBatchFixture(t testing.TB) *batchFixture {
	t.Helper()
	img, _, _ := buildImage(t, false)
	if err := bitstream.DisableCRC(img); err != nil {
		t.Fatal(err)
	}
	p, err := bitstream.ParsePackets(img)
	if err != nil {
		t.Fatal(err)
	}
	fdri := p.FDRI(img)
	regions, err := bitstream.ParseRegions(fdri)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := bitstream.UnmarshalDescription(fdri[regions.DescOff : regions.DescOff+regions.DescLen])
	if err != nil {
		t.Fatal(err)
	}
	return &batchFixture{img: img, parsed: p, regions: regions, desc: desc}
}

// withLUT returns a variant image with LUT lut's truth table replaced.
func (fx *batchFixture) withLUT(t testing.TB, lut int, tt boolfn.TT) []byte {
	t.Helper()
	mod := append([]byte(nil), fx.img...)
	fdri := fx.parsed.FDRI(mod)
	clb := fdri[fx.regions.CLBOff : fx.regions.CLBOff+fx.regions.CLBLen]
	if err := bitstream.WriteLUT(clb, fx.desc.LUTs[lut].Loc, tt); err != nil {
		t.Fatal(err)
	}
	return mod
}

// withBRAMWord returns a variant image with one BRAM content word
// replaced.
func (fx *batchFixture) withBRAMWord(t testing.TB, bram, entry int, w uint64) []byte {
	t.Helper()
	mod := append([]byte(nil), fx.img...)
	fdri := fx.parsed.FDRI(mod)
	off := fx.regions.BRAMOff + fx.desc.BRAMs[bram].ContentOff + 8*entry
	for k := 7; k >= 0; k-- {
		fdri[off+k] = byte(w)
		w >>= 8
	}
	return mod
}

func (fx *batchFixture) diff(t testing.TB, mod []byte) bitstream.PatchSet {
	t.Helper()
	ps, err := fx.parsed.DiffFrames(fx.img, mod)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// scalarKeystream loads an image into a fresh scalar device and runs the
// keystream protocol — the reference the batch lanes must match.
func scalarKeystream(t testing.TB, img []byte, n int) []uint32 {
	t.Helper()
	f := New([bitstream.KeySize]byte{})
	if err := f.Load(img); err != nil {
		t.Fatal(err)
	}
	return hdl.GenerateKeystream(f, testIV, n)
}

// TestBatchMatchesScalarLanes pins the tentpole property: every lane of
// a patched batch produces the exact keystream a scalar device loaded
// with that lane's full image would — at one, two and four register
// words per slot including a partial top word (100 lanes) — with LUT
// patches, BRAM patches, multi-frame patches and clean lanes mixed.
func TestBatchMatchesScalarLanes(t *testing.T) {
	fx := newBatchFixture(t)
	rng := rand.New(rand.NewSource(99))
	const n = 6
	for _, lanes := range []int{1, 5, 64, 100, MaxLanes} {
		patches := make([]bitstream.PatchSet, lanes)
		images := make([][]byte, lanes)
		for L := 0; L < lanes; L++ {
			switch L % 4 {
			case 0: // clean lane
				images[L] = fx.img
			case 1: // one LUT modified
				lut := rng.Intn(len(fx.desc.LUTs))
				images[L] = fx.withLUT(t, lut, boolfn.TT(rng.Uint64()))
			case 2: // one BRAM word modified
				bram := rng.Intn(len(fx.desc.BRAMs))
				entry := rng.Intn(1 << len(fx.desc.BRAMs[bram].Addr))
				images[L] = fx.withBRAMWord(t, bram, entry, rng.Uint64())
			default: // two LUTs in (likely) different frames
				a := rng.Intn(len(fx.desc.LUTs))
				b := rng.Intn(len(fx.desc.LUTs))
				mod := fx.withLUT(t, a, boolfn.TT(rng.Uint64()))
				fdri := fx.parsed.FDRI(mod)
				clb := fdri[fx.regions.CLBOff : fx.regions.CLBOff+fx.regions.CLBLen]
				if err := bitstream.WriteLUT(clb, fx.desc.LUTs[b].Loc, boolfn.TT(rng.Uint64())); err != nil {
					t.Fatal(err)
				}
				images[L] = mod
			}
			patches[L] = fx.diff(t, images[L])
		}
		f := New([bitstream.KeySize]byte{})
		batch, err := f.LoadPatched(fx.img, patches)
		if err != nil {
			t.Fatal(err)
		}
		if batch.Lanes() != lanes {
			t.Fatalf("Lanes() = %d, want %d", batch.Lanes(), lanes)
		}
		got := hdl.GenerateKeystreamBatch(batch, testIV, n)
		for L := 0; L < lanes; L++ {
			want := scalarKeystream(t, images[L], n)
			for i := range want {
				if got[L][i] != want[i] {
					t.Fatalf("lanes=%d lane %d word %d: batch %08x != scalar %08x",
						lanes, L, i, got[L][i], want[i])
				}
			}
		}
	}
}

// TestBatchEncryptedBase verifies the batch evaluator accepts an
// encrypted base image (the attacker's simulator models the victim, so
// it is not bound by the PartialReconfig security fuse).
func TestBatchEncryptedBase(t *testing.T) {
	fx := newBatchFixture(t)
	var kE, kA [bitstream.KeySize]byte
	for i := range kE {
		kE[i] = byte(i + 1)
		kA[i] = byte(i + 101)
	}
	var cbcIV [16]byte
	sealed, err := bitstream.Seal(fx.img, kE, kA, cbcIV)
	if err != nil {
		t.Fatal(err)
	}
	lut := 17 % len(fx.desc.LUTs)
	modImg := fx.withLUT(t, lut, boolfn.TT(0xDEADBEEFCAFEF00D))
	f := New(kE)
	batch, err := f.LoadPatched(sealed, []bitstream.PatchSet{nil, fx.diff(t, modImg)})
	if err != nil {
		t.Fatal(err)
	}
	got := hdl.GenerateKeystreamBatch(batch, testIV, 4)
	if want := scalarKeystream(t, fx.img, 4); !equalWords(got[0], want) {
		t.Fatalf("clean lane diverges under encrypted base: %08x != %08x", got[0], want)
	}
	fm := New(kE)
	sealedMod, err := bitstream.Seal(modImg, kE, kA, cbcIV)
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.Load(sealedMod); err != nil {
		t.Fatal(err)
	}
	if want := hdl.GenerateKeystream(fm, testIV, 4); !equalWords(got[1], want) {
		t.Fatalf("patched lane diverges under encrypted base: %08x != %08x", got[1], want)
	}
}

func equalWords(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLoadPatchedValidation(t *testing.T) {
	fx := newBatchFixture(t)
	f := New([bitstream.KeySize]byte{})
	if _, err := f.LoadPatched(fx.img, nil); err == nil {
		t.Fatal("zero lanes accepted")
	}
	if _, err := f.LoadPatched(fx.img, make([]bitstream.PatchSet, MaxLanes+1)); err == nil {
		t.Fatalf("%d lanes accepted", MaxLanes+1)
	}
	frame := make([]byte, bitstream.FrameBytes)
	bad := []struct {
		name string
		ps   bitstream.PatchSet
	}{
		{"short frame data", bitstream.PatchSet{{Frame: 1, Data: frame[:10]}}},
		{"negative frame", bitstream.PatchSet{{Frame: -1, Data: frame}}},
		{"frame out of range", bitstream.PatchSet{{Frame: 1 << 20, Data: frame}}},
		{"header frame", bitstream.PatchSet{{Frame: 0, Data: frame}}},
		{"description frame", bitstream.PatchSet{{Frame: fx.regions.DescOff / bitstream.FrameBytes, Data: frame}}},
	}
	for _, tc := range bad {
		if _, err := f.LoadPatched(fx.img, []bitstream.PatchSet{tc.ps}); err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
	}
	// A failed LoadPatched must not leave a half-built batch usable; the
	// scalar device itself stays configured (the base loaded fine).
	if !f.Loaded() {
		t.Fatal("base configuration lost after rejected patch set")
	}
}

// TestPartialReconfigReadbackRoundtripUnderPatchedLanes closes the loop
// between the three reconfiguration paths: a lane patch applied through
// PartialReconfig must (a) read back as exactly the patched frame bytes
// and (b) steer the live device to the same keystream the batch lane
// computes.
func TestPartialReconfigReadbackRoundtripUnderPatchedLanes(t *testing.T) {
	fx := newBatchFixture(t)
	lut := 3 % len(fx.desc.LUTs)
	modImg := fx.withLUT(t, lut, boolfn.TT(0x5A5A_F0F0_3C3C_9696))
	ps := fx.diff(t, modImg)
	if len(ps) == 0 {
		t.Fatal("LUT patch produced no frame diff")
	}

	f := New([bitstream.KeySize]byte{})
	if err := f.Program(fx.img); err != nil {
		t.Fatal(err)
	}
	base, err := f.Readback()
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range ps {
		if err := f.PartialReconfig(fp.Frame, fp.Data); err != nil {
			t.Fatal(err)
		}
	}
	rb, err := f.Readback()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), base...)
	for _, fp := range ps {
		copy(want[fp.Frame*bitstream.FrameBytes:], fp.Data)
	}
	if !bytes.Equal(rb, want) {
		t.Fatal("readback does not round-trip the patched frames")
	}

	live := hdl.GenerateKeystream(f, testIV, 5)
	fb := New([bitstream.KeySize]byte{})
	batch, err := fb.LoadPatched(fx.img, []bitstream.PatchSet{ps})
	if err != nil {
		t.Fatal(err)
	}
	if got := hdl.GenerateKeystreamBatch(batch, testIV, 5); !equalWords(got[0], live) {
		t.Fatalf("batch lane %08x != partially reconfigured device %08x", got[0], live)
	}
}
