package device

import (
	"testing"

	"snowbma/internal/bitstream"
)

// FuzzLoad mutates a valid bitstream image arbitrarily: Load must either
// succeed or fail with an error — never panic or index out of range —
// and a device that reports success must survive a clock.
func FuzzLoad(f *testing.F) {
	img, _, _ := buildImage(f, false)
	f.Add(img)
	if err := bitstream.DisableCRC(img); err != nil {
		f.Fatal(err)
	}
	f.Add(img) // CRC-disabled variant lets content mutations through
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dev := New([bitstream.KeySize]byte{})
		if err := dev.Load(data); err != nil {
			return
		}
		dev.Clock()
	})
}
