package device

import (
	"fmt"
	"math/rand"
	"testing"

	"snowbma/internal/bitstream"
	"snowbma/internal/boolfn"
	"snowbma/internal/hdl"
	"snowbma/internal/mapper"
	"snowbma/internal/netlist"
	"snowbma/internal/snow3g"
)

var (
	testKey = snow3g.Key{0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48}
	testIV  = snow3g.IV{0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F}
)

func buildImage(t testing.TB, protected bool) ([]byte, *hdl.Design, *mapper.Result) {
	t.Helper()
	d := hdl.Build(hdl.Config{Key: testKey, Protected: protected})
	opts := mapper.Options{K: 6, Boundaries: d.Boundaries}
	if protected {
		opts.TrivialCuts = d.TrivialCuts
	}
	r, err := mapper.Map(d.N, opts)
	if err != nil {
		t.Fatal(err)
	}
	pol := mapper.PackPolicy{}
	if protected {
		pol = mapper.PackPolicy{Prefer: d.TrivialCuts, PairWithOthers: true}
	}
	phys := mapper.Pack(r, pol)
	img, err := bitstream.Assemble(d.N, phys, bitstream.AssembleOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return img, d, r
}

func TestDeviceMatchesModel(t *testing.T) {
	img, _, _ := buildImage(t, false)
	f := New([bitstream.KeySize]byte{})
	if err := f.Program(img); err != nil {
		t.Fatal(err)
	}
	got := hdl.GenerateKeystream(f, testIV, 8)
	ref := snow3g.New(snow3g.Fault{})
	ref.Init(testKey, testIV)
	want := ref.KeystreamWords(8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("device z%d = %08x, model %08x", i+1, got[i], want[i])
		}
	}
}

func TestProtectedDeviceMatchesModel(t *testing.T) {
	img, _, _ := buildImage(t, true)
	f := New([bitstream.KeySize]byte{})
	if err := f.Program(img); err != nil {
		t.Fatal(err)
	}
	got := hdl.GenerateKeystream(f, testIV, 4)
	ref := snow3g.New(snow3g.Fault{})
	ref.Init(testKey, testIV)
	want := ref.KeystreamWords(4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("protected device z%d = %08x, model %08x", i+1, got[i], want[i])
		}
	}
}

func TestDeviceRejectsCorruptedCRC(t *testing.T) {
	img, _, _ := buildImage(t, false)
	p, err := bitstream.ParsePackets(img)
	if err != nil {
		t.Fatal(err)
	}
	img[p.FDRIOffset+bitstream.FrameBytes+5] ^= 0x01
	f := New([bitstream.KeySize]byte{})
	if err := f.Load(img); err == nil {
		t.Fatal("device accepted bitstream with bad CRC")
	}
	// Disabling the CRC (paper Section V-B) makes the same image load.
	if err := bitstream.DisableCRC(img); err != nil {
		t.Fatal(err)
	}
	if err := f.Load(img); err != nil {
		t.Fatalf("device rejected CRC-disabled bitstream: %v", err)
	}
}

func TestLUTModificationChangesBehaviour(t *testing.T) {
	// Zero one z-path LUT directly via its known location (white-box
	// test; the attack does the same through FINDLUT): that keystream
	// bit must go dead.
	img, _, r := buildImage(t, false)
	p, _ := bitstream.ParsePackets(img)
	fdri := p.FDRI(img)
	regions, err := bitstream.ParseRegions(fdri)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := bitstream.UnmarshalDescription(fdri[regions.DescOff : regions.DescOff+regions.DescLen])
	if err != nil {
		t.Fatal(err)
	}
	// Find the description record of the LUT driving z bit 0's register:
	// its O6 root is the FF D net of zreg[0]. Identify via the mapping.
	var zLUT *bitstream.LUTRec
	for _, lut := range r.LUTs {
		if boolfn.PEquivalent(lut.Fn, boolfn.F2) {
			for i := range desc.LUTs {
				if desc.LUTs[i].O6 == uint32(lut.Root) {
					zLUT = &desc.LUTs[i]
				}
			}
			break
		}
	}
	if zLUT == nil {
		t.Fatal("no f2-class LUT found in image")
	}
	clb := fdri[regions.CLBOff : regions.CLBOff+regions.CLBLen]
	if err := bitstream.WriteLUT(clb, zLUT.Loc, boolfn.Const0); err != nil {
		t.Fatal(err)
	}
	if err := bitstream.RecomputeCRC(img); err != nil {
		t.Fatal(err)
	}
	f := New([bitstream.KeySize]byte{})
	if err := f.Load(img); err != nil {
		t.Fatal(err)
	}
	faulty := hdl.GenerateKeystream(f, testIV, 8)
	ref := snow3g.New(snow3g.Fault{})
	ref.Init(testKey, testIV)
	clean := ref.KeystreamWords(8)
	// Exactly one bit position must be stuck at zero and differ from the
	// clean keystream somewhere.
	var changedBits uint32
	for i := range clean {
		changedBits |= clean[i] ^ faulty[i]
	}
	if changedBits == 0 {
		t.Fatal("LUT modification had no effect on keystream")
	}
	// The faulty bit column reads 0 in every word.
	var alwaysZero uint32 = 0xFFFFFFFF
	for _, w := range faulty {
		alwaysZero &= ^w
	}
	if alwaysZero&changedBits == 0 {
		t.Fatal("modified z LUT did not produce a stuck-at-0 column")
	}
}

func TestEncryptedLoadPath(t *testing.T) {
	img, _, _ := buildImage(t, false)
	var kE, kA [bitstream.KeySize]byte
	for i := range kE {
		kE[i], kA[i] = byte(i*3), byte(i*5+1)
	}
	var iv [16]byte
	enc, err := bitstream.Seal(img, kE, kA, iv)
	if err != nil {
		t.Fatal(err)
	}
	right := New(kE)
	if err := right.Program(enc); err != nil {
		t.Fatalf("device with correct eFuse key rejected encrypted image: %v", err)
	}
	got := hdl.GenerateKeystream(right, testIV, 2)
	ref := snow3g.New(snow3g.Fault{})
	ref.Init(testKey, testIV)
	want := ref.KeystreamWords(2)
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatal("encrypted boot produced wrong keystream")
	}
	wrong := New([bitstream.KeySize]byte{9})
	if err := wrong.Load(enc); err == nil {
		t.Fatal("device with wrong eFuse key accepted encrypted image")
	}
	// Bit flip inside ciphertext: HMAC must reject.
	enc[40] ^= 4
	if err := right.Load(enc); err == nil {
		t.Fatal("device accepted tampered encrypted image")
	}
}

func TestReadFlashReturnsProgrammedImage(t *testing.T) {
	img, _, _ := buildImage(t, false)
	f := New([bitstream.KeySize]byte{})
	if err := f.Program(img); err != nil {
		t.Fatal(err)
	}
	probe := f.ReadFlash()
	if len(probe) != len(img) {
		t.Fatal("flash probe length mismatch")
	}
	for i := range img {
		if probe[i] != img[i] {
			t.Fatal("flash probe differs from programmed image")
		}
	}
	// The probe is a copy: mutating it must not affect the device.
	probe[0] ^= 0xFF
	if f.ReadFlash()[0] == probe[0] {
		t.Fatal("ReadFlash aliases internal flash")
	}
}

func TestClockBeforeLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New([bitstream.KeySize]byte{}).Clock()
}

func TestDeviceReinitializable(t *testing.T) {
	img, _, _ := buildImage(t, false)
	f := New([bitstream.KeySize]byte{})
	if err := f.Program(img); err != nil {
		t.Fatal(err)
	}
	a := hdl.GenerateKeystream(f, testIV, 4)
	b := hdl.GenerateKeystream(f, testIV, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("second run diverged at word %d", i)
		}
	}
}

func BenchmarkDeviceLoad(b *testing.B) {
	img, _, _ := buildImage(b, false)
	f := New([bitstream.KeySize]byte{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Load(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceKeystream16(b *testing.B) {
	img, _, _ := buildImage(b, false)
	f := New([bitstream.KeySize]byte{})
	if err := f.Program(img); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hdl.GenerateKeystream(f, testIV, 16)
	}
}

func TestToolchainGeneralityRandomDesigns(t *testing.T) {
	// The synthesis → bitstream → device pipeline is not SNOW-specific:
	// random sequential designs must behave identically in the netlist
	// simulator and on the bitstream-configured device.
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 6; trial++ {
		n := netlist.New()
		ins := make([]netlist.NodeID, 6)
		for i := range ins {
			ins[i] = n.Input(fmt.Sprintf("in[%d]", i))
		}
		regs := n.FFWord("r", 8, uint64(trial*37))
		pool := append(append([]netlist.NodeID{}, ins...), regs...)
		for g := 0; g < 150; g++ {
			a, b := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
			var id netlist.NodeID
			switch rng.Intn(4) {
			case 0:
				id = n.And(a, b)
			case 1:
				id = n.Or(a, b)
			case 2:
				id = n.Xor(a, b)
			default:
				id = n.Mux(pool[rng.Intn(len(pool))], a, b)
			}
			pool = append(pool, id)
		}
		for i := 0; i < 8; i++ {
			n.ConnectFF(regs[i], pool[len(pool)-1-i])
		}
		for i := 0; i < 4; i++ {
			n.Output(fmt.Sprintf("out[%d]", i), pool[len(pool)-9-i])
		}
		r, err := mapper.Map(n, mapper.Options{K: 6})
		if err != nil {
			t.Fatal(err)
		}
		img, err := bitstream.Assemble(n, mapper.Pack(r, mapper.PackPolicy{}),
			bitstream.AssembleOptions{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		dev := New([bitstream.KeySize]byte{})
		if err := dev.Program(img); err != nil {
			t.Fatal(err)
		}
		sim, err := netlist.NewSim(n)
		if err != nil {
			t.Fatal(err)
		}
		for cycle := 0; cycle < 24; cycle++ {
			for i, in := range ins {
				v := rng.Intn(2) == 1
				sim.SetInput(in, v)
				dev.SetInput(fmt.Sprintf("in[%d]", i), v)
			}
			sim.Settle()
			for i := 0; i < 4; i++ {
				name := fmt.Sprintf("out[%d]", i)
				if sim.Output(name) != dev.Read(name) {
					t.Fatalf("trial %d cycle %d: %s diverges", trial, cycle, name)
				}
			}
			sim.Step()
			dev.Clock()
		}
	}
}

func TestReadbackMatchesLoadedConfiguration(t *testing.T) {
	img, _, _ := buildImage(t, false)
	f := New([bitstream.KeySize]byte{})
	if err := f.Program(img); err != nil {
		t.Fatal(err)
	}
	rb, err := f.Readback()
	if err != nil {
		t.Fatal(err)
	}
	// The readback frames must equal the FDRI region of the image.
	p, err := bitstream.ParsePackets(img)
	if err != nil {
		t.Fatal(err)
	}
	fdri := p.FDRI(img)
	if len(rb) != len(fdri) {
		t.Fatalf("readback %d bytes, FDRI %d", len(rb), len(fdri))
	}
	for i := range rb {
		if rb[i] != fdri[i] {
			t.Fatalf("readback differs from loaded FDRI at byte %d", i)
		}
	}
}

func TestReadbackReflectsModification(t *testing.T) {
	// After loading a LUT-modified bitstream, readback must return the
	// MODIFIED truth tables — the property that lets an attacker confirm
	// injected faults without re-probing flash.
	img, _, r := buildImage(t, false)
	p, _ := bitstream.ParsePackets(img)
	fdri := p.FDRI(img)
	regions, err := bitstream.ParseRegions(fdri)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := bitstream.UnmarshalDescription(fdri[regions.DescOff : regions.DescOff+regions.DescLen])
	if err != nil {
		t.Fatal(err)
	}
	loc := desc.LUTs[3].Loc
	clb := fdri[regions.CLBOff : regions.CLBOff+regions.CLBLen]
	if err := bitstream.WriteLUT(clb, loc, boolfn.TT(0x1234567890ABCDEF)); err != nil {
		t.Fatal(err)
	}
	if err := bitstream.RecomputeCRC(img); err != nil {
		t.Fatal(err)
	}
	f := New([bitstream.KeySize]byte{})
	if err := f.Load(img); err != nil {
		t.Fatal(err)
	}
	rb, err := f.Readback()
	if err != nil {
		t.Fatal(err)
	}
	got, err := bitstream.ReadLUT(rb[bitstream.FrameBytes:bitstream.FrameBytes*(1+desc.CLBFrames)], loc)
	if err != nil {
		t.Fatal(err)
	}
	if got != boolfn.TT(0x1234567890ABCDEF) {
		t.Fatalf("readback shows %v, want the modified table", got)
	}
	_ = r
}

func TestReadbackRefusedWhenEncrypted(t *testing.T) {
	img, _, _ := buildImage(t, false)
	var kE, kA [bitstream.KeySize]byte
	var iv [16]byte
	enc, err := bitstream.Seal(img, kE, kA, iv)
	if err != nil {
		t.Fatal(err)
	}
	f := New(kE)
	if err := f.Program(enc); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Readback(); err == nil {
		t.Fatal("readback allowed on an encrypted configuration")
	}
}

func TestReadbackBeforeLoadFails(t *testing.T) {
	if _, err := New([bitstream.KeySize]byte{}).Readback(); err == nil {
		t.Fatal("readback before configuration should fail")
	}
}

func TestPartialReconfigInjectsFaultKeepingState(t *testing.T) {
	img, _, r := buildImage(t, false)
	f := New([bitstream.KeySize]byte{})
	if err := f.Program(img); err != nil {
		t.Fatal(err)
	}
	// Locate an f2-class LUT and the frame holding it.
	p, _ := bitstream.ParsePackets(img)
	fdri := p.FDRI(img)
	regions, err := bitstream.ParseRegions(fdri)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := bitstream.UnmarshalDescription(fdri[regions.DescOff : regions.DescOff+regions.DescLen])
	if err != nil {
		t.Fatal(err)
	}
	var loc bitstream.Loc
	found := false
	for _, lut := range r.LUTs {
		if boolfn.PEquivalent(lut.Fn, boolfn.F2) {
			for _, rec := range desc.LUTs {
				if rec.O6 == uint32(lut.Root) {
					loc, found = rec.Loc, true
				}
			}
			break
		}
	}
	if !found {
		t.Fatal("no f2 LUT located")
	}
	// Build the modified frame: zero that LUT within its frame bytes.
	clbStart := bitstream.FrameBytes // header frame precedes CLB region
	frameIdx := 1 + loc.Frame        // absolute frame index in fdri
	frame := append([]byte(nil),
		fdri[frameIdx*bitstream.FrameBytes:(frameIdx+1)*bitstream.FrameBytes]...)
	sub := bitstream.EncodeLUT(boolfn.Const0, loc.Type)
	for q := 0; q < bitstream.SubVectors; q++ {
		copy(frame[q*bitstream.SubVectorOffset+loc.Slot*bitstream.SubVectorBytes:], sub[q][:])
	}
	_ = clbStart

	// Run half an initialization, inject mid-flight, finish: the fault
	// must take effect without resetting the registers.
	for i := 0; i < 4; i++ {
		f.SetInput(hdl.PortLoad, false)
		f.SetInput(hdl.PortInit, false)
		f.SetInput(hdl.PortRun, false)
		f.SetInput(hdl.PortGen, false)
		f.Clock()
	}
	if err := f.PartialReconfig(frameIdx, frame); err != nil {
		t.Fatal(err)
	}
	z := hdl.GenerateKeystream(f, testIV, 8)
	dead := ^uint32(0)
	for _, w := range z {
		dead &= ^w
	}
	if dead == 0 {
		t.Fatal("partial reconfiguration did not inject the stuck column")
	}
	// Restore the original frame: behaviour returns to normal.
	orig := fdri[frameIdx*bitstream.FrameBytes : (frameIdx+1)*bitstream.FrameBytes]
	if err := f.PartialReconfig(frameIdx, orig); err != nil {
		t.Fatal(err)
	}
	got := hdl.GenerateKeystream(f, testIV, 4)
	ref := snow3g.New(snow3g.Fault{})
	ref.Init(testKey, testIV)
	want := ref.KeystreamWords(4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("device did not recover after frame restore")
		}
	}
}

func TestPartialReconfigValidation(t *testing.T) {
	img, _, _ := buildImage(t, false)
	f := New([bitstream.KeySize]byte{})
	if err := f.PartialReconfig(0, make([]byte, bitstream.FrameBytes)); err == nil {
		t.Fatal("partial reconfig before load accepted")
	}
	if err := f.Program(img); err != nil {
		t.Fatal(err)
	}
	if err := f.PartialReconfig(0, make([]byte, 10)); err == nil {
		t.Fatal("short frame accepted")
	}
	if err := f.PartialReconfig(1<<20, make([]byte, bitstream.FrameBytes)); err == nil {
		t.Fatal("out-of-range frame accepted")
	}
	// Corrupting the header frame must fail and roll back.
	if err := f.PartialReconfig(0, make([]byte, bitstream.FrameBytes)); err == nil {
		t.Fatal("zeroed header frame accepted")
	}
	z := hdl.GenerateKeystream(f, testIV, 2)
	ref := snow3g.New(snow3g.Fault{})
	ref.Init(testKey, testIV)
	want := ref.KeystreamWords(2)
	if z[0] != want[0] || z[1] != want[1] {
		t.Fatal("failed partial reconfig corrupted the device")
	}
}
